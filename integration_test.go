package hsfsim_test

import (
	"math/rand"
	"testing"

	"hsfsim"
	"hsfsim/internal/qaoa"
)

// TestIntegrationInstanceFamily runs the full joint-HSF workflow on every
// scaled Table II instance, cross-checking against Schrödinger simulation
// on a partial-amplitude window — an end-to-end regression over the exact
// workloads the benchmarks measure. Skipped in -short runs.
func TestIntegrationInstanceFamily(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test: skipped in -short mode")
	}
	const maxAmps = 1 << 12
	for _, spec := range qaoa.ScaledInstances() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			inst, err := spec.Generate(qaoa.SingleLayer())
			if err != nil {
				t.Fatal(err)
			}
			ref, err := hsfsim.Simulate(inst.Circuit, hsfsim.Options{
				Method: hsfsim.Schrodinger, MaxAmplitudes: maxAmps,
			})
			if err != nil {
				t.Fatal(err)
			}
			jnt, err := hsfsim.Simulate(inst.Circuit, hsfsim.Options{
				Method: hsfsim.JointHSF, CutPos: spec.CutPos(), MaxAmplitudes: maxAmps,
			})
			if err != nil {
				t.Fatal(err)
			}
			if d := maxDiff(ref.Amplitudes, jnt.Amplitudes); d > 1e-8 {
				t.Fatalf("joint HSF diverges from Schrödinger by %g", d)
			}
			if jnt.NumBlocks == 0 {
				t.Fatal("no cascades on an SBM instance")
			}
			// The analysis must agree with the simulation stats.
			s, err := hsfsim.Analyze(inst.Circuit, spec.CutPos(), hsfsim.BlockCascade, 0)
			if err != nil {
				t.Fatal(err)
			}
			if s.NumPaths != jnt.NumPaths {
				t.Fatalf("Analyze reports %d paths, Simulate %d", s.NumPaths, jnt.NumPaths)
			}
		})
	}
}

// TestIntegrationRandomizedOptions fuzzes option combinations on one
// instance: every combination must agree with the reference amplitudes.
func TestIntegrationRandomizedOptions(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test: skipped in -short mode")
	}
	spec := qaoa.ScaledInstances()[0]
	inst, err := spec.Generate(qaoa.SingleLayer())
	if err != nil {
		t.Fatal(err)
	}
	const maxAmps = 1 << 10
	ref, err := hsfsim.Simulate(inst.Circuit, hsfsim.Options{
		Method: hsfsim.Schrodinger, MaxAmplitudes: maxAmps,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 8; trial++ {
		opts := hsfsim.Options{
			Method:              hsfsim.JointHSF,
			CutPos:              spec.CutPos(),
			MaxAmplitudes:       maxAmps,
			Workers:             1 + rng.Intn(8),
			FusionMaxQubits:     []int{-1, 0, 2, 4}[rng.Intn(4)],
			UseAnalyticCascades: rng.Intn(2) == 0,
			UseDDEngine:         trial == 7, // one DD-engine pass (slow)
			MaxBlockQubits:      []int{0, 4, 6}[rng.Intn(3)],
		}
		res, err := hsfsim.Simulate(inst.Circuit, opts)
		if err != nil {
			t.Fatalf("trial %d (%+v): %v", trial, opts, err)
		}
		if d := maxDiff(ref.Amplitudes, res.Amplitudes); d > 1e-8 {
			t.Fatalf("trial %d (%+v): diverges by %g", trial, opts, d)
		}
	}
}
