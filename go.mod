module hsfsim

go 1.22
