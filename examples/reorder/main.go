// Qubit reordering: the paper's future-work idea implemented — when the
// natural qubit labeling scatters strongly-coupled qubits across the cut,
// relabeling them can shrink both the crossing-gate count and the joint-cut
// path count by orders of magnitude. The example simulates a QAOA instance
// whose cluster structure is hidden by an interleaved labeling, optimizes
// the order, and verifies the permuted simulation agrees with the original.
package main

import (
	"fmt"
	"log"
	"math/cmplx"
	"math/rand"

	"hsfsim"
	"hsfsim/internal/graph"
	"hsfsim/internal/qaoa"
	"hsfsim/internal/reorder"
)

func main() {
	// Build a two-cluster SBM graph, then interleave the labels so cluster
	// membership alternates: 0,2,4,… vs 1,3,5,… — the worst case for a
	// cut placed at the register midpoint.
	const half = 7
	rng := rand.New(rand.NewSource(7))
	g, err := graph.TwoBlockModel(half, half, 0.8, 0.15, rng)
	if err != nil {
		log.Fatal(err)
	}
	interleave := make([]int, 2*half)
	for i := 0; i < half; i++ {
		interleave[i] = 2 * i        // cluster A -> even labels
		interleave[half+i] = 2*i + 1 // cluster B -> odd labels
	}
	shuffled := graph.New(2 * half)
	for _, e := range g.Edges {
		if err := shuffled.AddEdge(interleave[e.U], interleave[e.V], e.W); err != nil {
			log.Fatal(err)
		}
	}
	shuffled.SortEdges()

	c, err := qaoa.Build(shuffled, qaoa.SingleLayer())
	if err != nil {
		log.Fatal(err)
	}
	cutPos := half - 1

	res, err := reorder.Optimize(c, cutPos, reorder.Options{Seed: 1, SwapTrials: 32})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interleaved labeling: %3d crossing gates, joint paths 2^%.1f\n",
		res.CrossingBefore, res.Log2PathsBefore)
	fmt.Printf("optimized labeling:   %3d crossing gates, joint paths 2^%.1f\n",
		res.CrossingAfter, res.Log2PathsAfter)
	fmt.Printf("permutation: %v\n", res.Perm)

	// Simulate both orders and verify they describe the same state.
	before, err := hsfsim.Simulate(c, hsfsim.Options{Method: hsfsim.JointHSF, CutPos: cutPos})
	if err != nil {
		log.Fatal(err)
	}
	after, err := hsfsim.Simulate(res.Circuit, hsfsim.Options{Method: hsfsim.JointHSF, CutPos: cutPos})
	if err != nil {
		log.Fatal(err)
	}
	back := reorder.PermuteState(after.Amplitudes, res.Perm)
	var maxDiff float64
	for i := range back {
		if d := cmplx.Abs(back[i] - before.Amplitudes[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("\nsimulation agreement after un-permuting: max diff %.2e\n", maxDiff)
	fmt.Printf("paths simulated: %d before vs %d after reordering\n",
		before.NumPaths, after.NumPaths)
	if after.TotalTime() < before.TotalTime() {
		fmt.Printf("wall-clock speedup: %.1fx\n",
			before.TotalTime().Seconds()/after.TotalTime().Seconds())
	}
}
