// QAOA MaxCut: the paper's evaluation workload end to end — sample a
// stochastic block model graph, build the single-layer QAOA circuit, compare
// standard and joint HSF cutting, and score the circuit against the true
// maximum cut.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hsfsim"
	"hsfsim/internal/graph"
	"hsfsim/internal/obs"
	"hsfsim/internal/qaoa"
)

func main() {
	// Two blocks of 9 vertices; dense inside (p=0.8), sparse across
	// (p=0.15) — a scaled-down Table II instance.
	const sizeA, sizeB = 9, 9
	rng := rand.New(rand.NewSource(2025))
	g, err := graph.TwoBlockModel(sizeA, sizeB, 0.8, 0.15, rng)
	if err != nil {
		log.Fatal(err)
	}
	cutPos := sizeA - 1
	fmt.Printf("graph: %d vertices, %d edges (%d crossing the partition)\n",
		g.N, g.NumEdges(), g.CrossingEdges(cutPos))

	circuitFor := func(gamma, beta float64) *hsfsim.Circuit {
		c, err := qaoa.Build(g, qaoa.Params{Gammas: []float64{gamma}, Betas: []float64{beta}})
		if err != nil {
			log.Fatal(err)
		}
		return c
	}
	c := circuitFor(0.7, 0.4)
	fmt.Printf("QAOA circuit: %d qubits, %d gates (%d RZZ)\n",
		c.NumQubits, len(c.Gates), c.NumTwoQubitGates())

	// Compare the cutting schemes.
	std, jnt, err := hsfsim.PathCounts(c, cutPos, hsfsim.BlockCascade, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("paths: standard HSF %d, joint HSF %d (%.0fx fewer)\n",
		std, jnt, float64(std)/float64(jnt))

	// Simulate with joint cutting and grid-search the QAOA angles.
	bestCut, bestGamma, bestBeta := -1.0, 0.0, 0.0
	for _, gamma := range []float64{0.3, 0.5, 0.7, 0.9} {
		for _, beta := range []float64{0.2, 0.4, 0.6} {
			res, err := hsfsim.Simulate(circuitFor(gamma, beta), hsfsim.Options{
				Method: hsfsim.JointHSF,
				CutPos: cutPos,
			})
			if err != nil {
				log.Fatal(err)
			}
			probs := make([]float64, len(res.Amplitudes))
			for i, a := range res.Amplitudes {
				probs[i] = real(a)*real(a) + imag(a)*imag(a)
			}
			// Score via the ZZ-correlator form of the cut objective,
			// E[cut] = Σ w·(1-<Z_uZ_v>)/2 — identical to the direct sum
			// but computable from partial amplitudes too.
			e, err := obs.MaxCutEnergy(probs, g)
			if err != nil {
				log.Fatal(err)
			}
			if e > bestCut {
				bestCut, bestGamma, bestBeta = e, gamma, beta
			}
		}
	}

	opt, _, err := g.BruteForceMaxCut()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best QAOA expected cut: %.3f at (γ=%.1f, β=%.1f)\n", bestCut, bestGamma, bestBeta)
	fmt.Printf("optimal max cut:        %.0f  (approximation ratio %.3f)\n", opt, bestCut/opt)
}
