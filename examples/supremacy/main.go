// Supremacy circuits: the paper's Sec. V extension — joint cutting of
// shallow Google-style random grid circuits. With the cut through the middle
// of a row, vertical and horizontal crossing iSWAP gates share boundary
// qubits and can be jointly cut at rank ≤ 4 instead of 4·4 = 16.
package main

import (
	"fmt"
	"log"
	"math/cmplx"
	"math/rand"

	"hsfsim"
	"hsfsim/internal/grcs"
	"hsfsim/internal/xeb"
)

func main() {
	opts := grcs.Options{Rows: 4, Cols: 4, Depth: 6, Entangler: grcs.ISwap, Seed: 7}
	c, err := grcs.Generate(opts)
	if err != nil {
		log.Fatal(err)
	}
	const cutPos = 9 // middle of row 2: rows 0–1 plus half of row 2 below
	fmt.Printf("grid: %dx%d, depth %d, iSWAP entanglers — %d qubits, %d gates\n",
		opts.Rows, opts.Cols, opts.Depth, c.NumQubits, len(c.Gates))

	std, jnt, err := hsfsim.PathCounts(c, cutPos, hsfsim.BlockWindow, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("paths through the mid-row cut: standard %d, joint (window blocks) %d\n", std, jnt)

	// Simulate the first 4096 amplitudes both ways and cross-check.
	const m = 4096
	stdRes, err := hsfsim.Simulate(c, hsfsim.Options{
		Method: hsfsim.StandardHSF, CutPos: cutPos, MaxAmplitudes: m,
	})
	if err != nil {
		log.Fatal(err)
	}
	jntRes, err := hsfsim.Simulate(c, hsfsim.Options{
		Method: hsfsim.JointHSF, BlockStrategy: hsfsim.BlockWindow,
		MaxBlockQubits: 5, CutPos: cutPos, MaxAmplitudes: m,
	})
	if err != nil {
		log.Fatal(err)
	}
	var maxDiff float64
	for i := range stdRes.Amplitudes {
		if d := cmplx.Abs(stdRes.Amplitudes[i] - jntRes.Amplitudes[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("standard HSF:  %8d paths, total %v\n", stdRes.NumPaths, stdRes.TotalTime().Round(1e6))
	fmt.Printf("joint HSF:     %8d paths, total %v (%d blocks)\n",
		jntRes.NumPaths, jntRes.TotalTime().Round(1e6), jntRes.NumBlocks)
	fmt.Printf("max amplitude difference: %.2e\n", maxDiff)
	if jntRes.TotalTime() < stdRes.TotalTime() {
		fmt.Printf("joint cutting speedup: %.1fx\n",
			stdRes.TotalTime().Seconds()/jntRes.TotalTime().Seconds())
	}

	// Validate the joint-HSF amplitudes the shot-based way: sample
	// bitstrings from the computed window, check the windowed linear XEB
	// (window-conditioned; deviates from 1 at shallow depth where the
	// window is not Porter-Thomas-representative), and — assumption-free —
	// the total-variation distance between sampled frequencies and the
	// window distribution.
	probs := xeb.Probabilities(jntRes.Amplitudes)
	sampler, err := xeb.NewSampler(probs)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	const shots = 200000
	samples := sampler.Sample(shots, rng)
	f, err := xeb.LinearXEBWithDim(probs, samples, 1<<c.NumQubits)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("windowed linear XEB of joint-HSF samples: %.3f (PT-ideal 1; shallow-depth bias expected)\n", f)

	var mass float64
	for _, p := range probs {
		mass += p
	}
	freq := make([]float64, len(probs))
	for _, x := range samples {
		freq[x] += 1.0 / shots
	}
	var tv float64
	for i, p := range probs {
		d := freq[i] - p/mass
		if d < 0 {
			d = -d
		}
		tv += d / 2
	}
	fmt.Printf("total variation sampled-vs-computed: %.4f (sampling noise only)\n", tv)
}
