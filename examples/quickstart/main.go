// Quickstart: build small circuits, simulate them with all three methods,
// and verify they agree — the minimal end-to-end tour of the public API.
package main

import (
	"fmt"
	"log"
	"math/cmplx"

	"hsfsim"
)

func main() {
	// 1. A Bell pair (paper Fig. 1).
	bell := hsfsim.NewCircuit(2)
	bell.Append(hsfsim.H(0), hsfsim.CNOT(0, 1))

	res, err := hsfsim.Simulate(bell, hsfsim.Options{Method: hsfsim.Schrodinger})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Bell state amplitudes (Schrödinger):")
	for i, a := range res.Amplitudes {
		fmt.Printf("  |%02b>  % .4f%+.4fi\n", i, real(a), imag(a))
	}

	// 2. A GHZ chain on 10 qubits, simulated by cutting it in half. The
	// CNOT crossing the cut is Schmidt-decomposed into 2 paths (paper
	// Ex. 2: CNOT = P0⊗I + P1⊗X).
	const n = 10
	ghz := hsfsim.NewCircuit(n)
	ghz.Append(hsfsim.H(0))
	for q := 1; q < n; q++ {
		ghz.Append(hsfsim.CNOT(q-1, q))
	}
	hsfRes, err := hsfsim.Simulate(ghz, hsfsim.Options{
		Method: hsfsim.StandardHSF,
		CutPos: n/2 - 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGHZ-%d via standard HSF: %d path(s), |<000…|ψ>|² = %.4f, |<111…|ψ>|² = %.4f\n",
		n, hsfRes.NumPaths,
		prob(hsfRes.Amplitudes[0]),
		prob(hsfRes.Amplitudes[len(hsfRes.Amplitudes)-1]))

	// 3. The joint-cutting win: four RZZ gates fan out from qubit 4 across
	// the cut. Standard cutting pays 2^4 = 16 paths; the joint cut of the
	// cascade needs only 2 (paper Ex. 4).
	fan := hsfsim.NewCircuit(10)
	for q := 0; q < 10; q++ {
		fan.Append(hsfsim.H(q))
	}
	for u := 5; u < 9; u++ {
		fan.Append(hsfsim.RZZ(0.3*float64(u), 4, u))
	}
	std, err := hsfsim.Simulate(fan, hsfsim.Options{Method: hsfsim.StandardHSF, CutPos: 4})
	if err != nil {
		log.Fatal(err)
	}
	jnt, err := hsfsim.Simulate(fan, hsfsim.Options{Method: hsfsim.JointHSF, CutPos: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nRZZ fan across the cut: standard HSF %d paths, joint HSF %d paths\n",
		std.NumPaths, jnt.NumPaths)

	var maxDiff float64
	for i := range std.Amplitudes {
		if d := cmplx.Abs(std.Amplitudes[i] - jnt.Amplitudes[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("max amplitude difference between the two methods: %.2e\n", maxDiff)
}

func prob(a complex128) float64 { return real(a)*real(a) + imag(a)*imag(a) }
