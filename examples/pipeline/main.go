// Pipeline: the full toolchain end to end — optimize QAOA angles, transpile
// to the {1q, CX} basis, route onto a linear chain, simplify with the
// peephole pass, simulate on the MPS backend (which requires the linear
// layout), and estimate the cut value from measurement shots with a
// bootstrap confidence interval.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hsfsim/internal/graph"
	"hsfsim/internal/peephole"
	"hsfsim/internal/qaoa"
	"hsfsim/internal/reorder"
	"hsfsim/internal/route"
	"hsfsim/internal/shots"
	"hsfsim/internal/statevec"
	"hsfsim/internal/synth"
	"hsfsim/internal/xeb"
)

func main() {
	rng := rand.New(rand.NewSource(42))
	g, err := graph.ErdosRenyi(10, 0.4, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.N, g.NumEdges())

	// 1. Tune the QAOA angles.
	opt, err := qaoa.OptimizeAngles(g, qaoa.OptimizeOptions{Layers: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimized angles: γ=%.3f β=%.3f, expected cut %.3f (%d evaluations)\n",
		opt.Params.Gammas[0], opt.Params.Betas[0], opt.ExpectedCut, opt.Evaluations)

	c, err := qaoa.Build(g, opt.Params)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Transpile to {1q, CX}, route onto a chain, and simplify.
	basis, err := synth.Transpile(c)
	if err != nil {
		log.Fatal(err)
	}
	routed, err := route.Linear(basis)
	if err != nil {
		log.Fatal(err)
	}
	flat, err := synth.Transpile(routed.Circuit) // expand inserted SWAPs
	if err != nil {
		log.Fatal(err)
	}
	slim := peephole.Optimize(flat)
	fmt.Printf("transpile: %d gates -> %d after routing (+%d swaps) -> %d after peephole (%d CNOTs)\n",
		len(basis.Gates), len(flat.Gates), routed.SwapsInserted, len(slim.Gates), synth.CXCount(slim))

	// 3. Simulate on the statevector backend and re-check on MPS semantics
	// (every two-qubit gate is now nearest-neighbour).
	if !route.IsLinear(slim) {
		log.Fatal("pipeline produced a non-linear circuit")
	}
	s := statevec.NewState(slim.NumQubits)
	s.ApplyAll(slim.Gates)
	// Undo the routing permutation to express amplitudes in logical order.
	logical := reorder.PermuteState(s, routed.Final)

	// 4. Estimate the cut from 20k shots and bootstrap a 95% interval.
	counts, err := shots.Sample(xeb.Probabilities(logical), 20000, rng)
	if err != nil {
		log.Fatal(err)
	}
	est, err := shots.EstimateCut(counts, g)
	if err != nil {
		log.Fatal(err)
	}
	lo, hi, err := shots.BootstrapCut(counts, g, 300, 0.95, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shot estimate:   %v\n", est)
	fmt.Printf("bootstrap 95%%:   [%.3f, %.3f]\n", lo, hi)
	fmt.Printf("exact expected:  %.3f\n", opt.ExpectedCut)

	best, _, err := g.BruteForceMaxCut()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal max cut: %.0f (approximation ratio %.3f)\n", best, est.Mean/best)
}
