// Many-body dynamics: Trotterized time evolution of a transverse-field
// Ising chain, the deep-circuit application the paper points to via
// Richter's Schrödinger-Feynman work (Ref. [35]). The midpoint ZZ bond
// crosses the cut once per Trotter step, so standard HSF pays 2^steps
// paths. This example also demonstrates the limitation the paper's
// conclusion names: the transverse-field layers between steps pin the
// recurring bond gates in place (they commute with neither mixer), so no
// valid joint block exists and the planner correctly reports joint =
// standard — HSF still halves the memory footprint, but deep, dense
// circuits get no path reduction.
package main

import (
	"fmt"
	"log"
	"math"
	"math/cmplx"

	"hsfsim"
	"hsfsim/internal/trotter"
)

func main() {
	const (
		n     = 14
		steps = 6
		j     = -1.0
		h     = -0.5
		dt    = 0.1
	)
	c, err := trotter.BuildIsing(
		trotter.Ising{N: n, J: j, H: h},
		trotter.Options{Steps: steps, Dt: dt, PlusStart: true},
	)
	if err != nil {
		log.Fatal(err)
	}
	cutPos := n/2 - 1
	fmt.Printf("transverse-field Ising chain: %d sites, %d Trotter steps, %d gates\n",
		n, steps, len(c.Gates))

	// Only one ZZ bond crosses the cut, but it recurs every Trotter step:
	// standard cutting pays 2^steps paths.
	std, jnt, err := hsfsim.PathCounts(c, cutPos, hsfsim.BlockCascade, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("paths: standard %d, joint %d\n", std, jnt)

	ref, err := hsfsim.Simulate(c, hsfsim.Options{Method: hsfsim.Schrodinger})
	if err != nil {
		log.Fatal(err)
	}
	res, err := hsfsim.Simulate(c, hsfsim.Options{Method: hsfsim.JointHSF, CutPos: cutPos})
	if err != nil {
		log.Fatal(err)
	}
	var maxDiff float64
	for i := range ref.Amplitudes {
		if d := cmplx.Abs(ref.Amplitudes[i] - res.Amplitudes[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("HSF vs. Schrödinger max amplitude difference: %.2e\n", maxDiff)

	// Physics check: magnetization <X_q> after the quench, computed from
	// the HSF amplitudes.
	mx := 0.0
	for q := 0; q < n; q++ {
		mx += expectationX(res.Amplitudes, q)
	}
	fmt.Printf("average transverse magnetization <X> = %.4f (t = %.1f)\n",
		mx/float64(n), float64(steps)*dt)
	if math.Abs(mx/float64(n)) > 1 {
		log.Fatal("unphysical magnetization")
	}
}

// expectationX computes <ψ|X_q|ψ> from a full statevector.
func expectationX(amps []complex128, q int) float64 {
	var e complex128
	mask := 1 << q
	for i, a := range amps {
		e += cmplx.Conj(a) * amps[i^mask]
	}
	return real(e)
}
