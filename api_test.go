package hsfsim_test

import (
	"testing"

	"hsfsim"
)

// TestGateReExportsMatchLibrary exercises every public gate constructor and
// checks basic invariants (unitarity, qubit wiring) so the public API stays
// in lock-step with the internal gate library.
func TestGateReExportsMatchLibrary(t *testing.T) {
	gates := []hsfsim.Gate{
		hsfsim.I(0), hsfsim.X(1), hsfsim.Y(2), hsfsim.Z(0), hsfsim.H(1),
		hsfsim.S(2), hsfsim.Sdg(0), hsfsim.T(1), hsfsim.Tdg(2),
		hsfsim.SX(0), hsfsim.SY(1), hsfsim.SW(2),
		hsfsim.RX(0.4, 0), hsfsim.RY(-0.8, 1), hsfsim.RZ(1.2, 2),
		hsfsim.P(0.6, 0), hsfsim.U3(0.1, 0.2, 0.3, 1),
		hsfsim.CNOT(0, 1), hsfsim.CZ(1, 2), hsfsim.CPhase(0.5, 0, 2),
		hsfsim.SWAP(0, 1), hsfsim.ISWAP(1, 2),
		hsfsim.RZZ(0.7, 0, 1), hsfsim.RXX(0.3, 1, 2), hsfsim.RYY(0.9, 0, 2),
		hsfsim.FSim(0.2, 0.4, 0, 1),
		hsfsim.CRX(0.3, 0, 1), hsfsim.CRY(0.5, 1, 2), hsfsim.CRZ(-0.7, 0, 2),
		hsfsim.CCX(0, 1, 2), hsfsim.CCZ(0, 1, 2),
	}
	for _, g := range gates {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
		if !g.IsUnitary(1e-10) {
			t.Errorf("%s: not unitary", g.Name)
		}
	}
	// All of them fit a 3-qubit circuit.
	c := hsfsim.NewCircuit(3)
	c.Append(gates...)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := hsfsim.Simulate(c, hsfsim.Options{Method: hsfsim.Schrodinger})
	if err != nil {
		t.Fatal(err)
	}
	var norm float64
	for _, a := range res.Amplitudes {
		norm += real(a)*real(a) + imag(a)*imag(a)
	}
	if norm < 0.999999 || norm > 1.000001 {
		t.Fatalf("norm = %g", norm)
	}
}

func TestAnalyze(t *testing.T) {
	c := hsfsim.NewCircuit(6)
	c.Append(
		hsfsim.RZZ(0.3, 2, 3), hsfsim.RZZ(0.4, 2, 4), hsfsim.RZZ(0.5, 2, 5),
	)
	s, err := hsfsim.Analyze(c, 2, hsfsim.BlockCascade, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumPaths != 2 || s.NumBlocks != 1 || s.NumCuts != 1 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if len(s.Cuts) != 1 || s.Cuts[0].Rank != 2 || !s.Cuts[0].Block {
		t.Fatalf("cut summary wrong: %+v", s.Cuts)
	}
	if _, err := hsfsim.Analyze(c, 9, hsfsim.BlockCascade, 0); err == nil {
		t.Fatal("invalid cut accepted")
	}
}

func TestMethodStrings(t *testing.T) {
	cases := map[hsfsim.Method]string{
		hsfsim.Schrodinger: "schrodinger",
		hsfsim.StandardHSF: "standard-hsf",
		hsfsim.JointHSF:    "joint-hsf",
		hsfsim.Method(99):  "unknown",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", m, got, want)
		}
	}
}

func TestSchrodingerQubitGuard(t *testing.T) {
	c := hsfsim.NewCircuit(31)
	c.Append(hsfsim.H(0))
	if _, err := hsfsim.Simulate(c, hsfsim.Options{Method: hsfsim.Schrodinger}); err == nil {
		t.Fatal("31-qubit Schrödinger run should be rejected by the memory guard")
	}
}

func TestFusionDisabledOnSchrodinger(t *testing.T) {
	c := hsfsim.NewCircuit(4)
	c.Append(hsfsim.H(0), hsfsim.CNOT(0, 1), hsfsim.T(1), hsfsim.CNOT(1, 2), hsfsim.CNOT(2, 3))
	on, err := hsfsim.Simulate(c, hsfsim.Options{Method: hsfsim.Schrodinger})
	if err != nil {
		t.Fatal(err)
	}
	off, err := hsfsim.Simulate(c, hsfsim.Options{Method: hsfsim.Schrodinger, FusionMaxQubits: -1})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxDiff(on.Amplitudes, off.Amplitudes); d > 1e-10 {
		t.Fatalf("fusion changed Schrödinger output by %g", d)
	}
}
