// Command transpile rewrites an OpenQASM circuit over the {single-qubit,
// CNOT} basis and writes the result as QASM:
//
//	transpile circuit.qasm > basis.qasm
//	transpile -stats circuit.qasm
package main

import (
	"flag"
	"fmt"
	"os"

	"hsfsim/internal/peephole"
	"hsfsim/internal/qasm"
	"hsfsim/internal/route"
	"hsfsim/internal/synth"
)

func main() {
	stats := flag.Bool("stats", false, "print gate statistics instead of QASM")
	optimize := flag.Bool("optimize", false, "run the peephole simplifier on the output")
	linear := flag.Bool("linear", false, "route onto a linear (chain) topology")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: transpile [flags] circuit.qasm")
		flag.PrintDefaults()
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	fail(err)
	c, err := qasm.Parse(f)
	f.Close()
	fail(err)

	out, err := synth.Transpile(c)
	fail(err)
	if *linear {
		res, err := route.Linear(out)
		fail(err)
		fmt.Fprintf(os.Stderr, "routing: %d swaps inserted; final mapping %v\n",
			res.SwapsInserted, res.Final)
		// Expand the inserted SWAPs back into the CX basis.
		out, err = synth.Transpile(res.Circuit)
		fail(err)
	}
	if *optimize {
		before := len(out.Gates)
		out = peephole.Optimize(out)
		fmt.Fprintf(os.Stderr, "peephole: %d -> %d gates\n", before, len(out.Gates))
	}

	if *stats {
		fmt.Printf("input:  %d gates (%d two-qubit), depth %d\n",
			len(c.Gates), c.NumTwoQubitGates(), c.Depth())
		fmt.Printf("output: %d gates (%d CNOTs), depth %d\n",
			len(out.Gates), synth.CXCount(out), out.Depth())
		for name, count := range out.GateCountByName() {
			fmt.Printf("  %-4s %d\n", name, count)
		}
		return
	}
	fail(qasm.Write(os.Stdout, out))
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "transpile:", err)
		os.Exit(1)
	}
}
