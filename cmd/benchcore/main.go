// Command benchcore measures the execution core — the shared path-tree
// walker on both backends plus the statevector gate kernels — and emits the
// results as machine-readable JSON for regression tracking:
//
//	benchcore -o BENCH_core.json
//	benchcore -study kernels -o BENCH_kernels.json
//	benchcore -study telemetry -o BENCH_telemetry.json
//	benchcore -study serving -o BENCH_serving.json
//	benchcore -study dist -o BENCH_dist.json
//	make bench-core bench-kernels bench-telemetry bench-serving bench-dist
//
// The core study's allocs_per_op column is the headline number: steady-state
// walking must stay at zero allocations per replay (see internal/hsf
// TestZeroAllocsPerLeaf for the enforcing test; this tool records the same
// property alongside timing so a regression shows up in the artifact
// history). The kernel study pits every structure-specialized gate kernel
// against the dense-matvec fallback on identical gates (classification flags
// stripped, dense plan forced) and records end-to-end sweeps with and without
// the specialized kernels.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"hsfsim"
	"hsfsim/internal/bench"
	"hsfsim/internal/circuit"
	"hsfsim/internal/cmat"
	"hsfsim/internal/cut"
	"hsfsim/internal/gate"
	"hsfsim/internal/hsf"
	"hsfsim/internal/statevec"
	"hsfsim/internal/telemetry"
	"hsfsim/internal/telemetry/trace"
)

type coreResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type report struct {
	GoVersion  string             `json:"go_version"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	GoMaxProcs int                `json:"gomaxprocs"`
	Timestamp  time.Time          `json:"timestamp"`
	Walker     []*bench.WalkerRow `json:"walker"`
	Core       []coreResult       `json:"core"`
}

func main() {
	out := flag.String("o", "", "output file (- for stdout; default BENCH_<study>.json)")
	study := flag.String("study", "core", "study to run: core | kernels | telemetry | serving | dist")
	isa := flag.String("kernel-isa", "", "force a kernel ISA for the whole run: scalar|span|avx2|neon (default: best available; equivalent to "+statevec.EnvKernelISA+")")
	flag.Parse()
	if *isa != "" {
		fail(statevec.SelectKernelISA(*isa))
	}

	var rep any
	switch *study {
	case "core":
		walkerRows, err := walkerStudy()
		fail(err)
		rep = &report{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			GoMaxProcs: runtime.GOMAXPROCS(0),
			Timestamp:  time.Now().UTC(),
			Walker:     walkerRows,
			Core:       coreBenchmarks(),
		}
	case "kernels":
		rep = kernelStudy()
	case "telemetry":
		rep = telemetryStudy()
	case "serving":
		rep = servingStudy()
	case "dist":
		rep = distStudy()
	default:
		fail(fmt.Errorf("unknown study %q (want core, kernels, telemetry, serving, or dist)", *study))
	}
	if *out == "" {
		*out = "BENCH_" + *study + ".json"
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	fail(err)
	data = append(data, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(data)
	} else {
		err = os.WriteFile(*out, data, 0o644)
		fmt.Fprintf(os.Stderr, "benchcore: wrote %s\n", *out)
	}
	fail(err)
}

func walkerStudy() ([]*bench.WalkerRow, error) {
	cases, err := bench.DefaultWalkerCases()
	if err != nil {
		return nil, err
	}
	return bench.RunWalker(cases)
}

// pathTreePlan builds a standard plan with 2^cuts paths for the end-to-end
// run benchmarks.
func pathTreePlan(n, cuts int) (*cut.Plan, error) {
	rng := rand.New(rand.NewSource(99))
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.Append(gate.H(q))
	}
	for i := 0; i < cuts; i++ {
		a := rng.Intn(n / 2)
		b := n/2 + rng.Intn(n-n/2)
		c.Append(gate.RZZ(rng.Float64(), a, b))
		c.Append(gate.RX(rng.Float64(), a))
	}
	return cut.BuildPlan(c, cut.Options{Partition: cut.Partition{CutPos: n/2 - 1}})
}

func coreBenchmarks() []coreResult {
	var results []coreResult
	measure := func(name string, f func(b *testing.B)) {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			f(b)
		})
		results = append(results, coreResult{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}

	plan, err := pathTreePlan(10, 6)
	fail(err)
	measure("hsf/run-dense-64paths", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hsf.Run(plan, hsf.Options{Backend: hsf.BackendDense}); err != nil {
				b.Fatal(err)
			}
		}
	})
	measure("hsf/run-dd-64paths", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hsf.Run(plan, hsf.Options{Backend: hsf.BackendDD}); err != nil {
				b.Fatal(err)
			}
		}
	})

	const n = 16
	s := statevec.NewState(n)
	h := gate.H(3)
	measure("statevec/apply1-16q", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.ApplyGate(&h)
		}
	})
	cx := gate.CNOT(2, 9)
	measure("statevec/apply2-16q", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.ApplyGate(&cx)
		}
	})
	ccz := gate.CCZ(1, 6, 11)
	statevec.PrepareGate(&ccz)
	measure("statevec/applyK-diag3-16q", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.ApplyGate(&ccz)
		}
	})
	return results
}

// kernelRow compares one structure-specialized kernel against the dense
// fallback on the same gate and state size, in both amplitude layouts:
// spec_ns_per_op is the interleaved complex128 (AoS) kernel retained on
// State, soa_ns_per_op the split real/imag (SoA) kernel on Vector — the
// layout the engine actually runs, under the installed kernel arm — and
// aos_over_soa their ratio (> 1 means the SoA layout is faster).
// arm_ns_per_op re-measures the SoA side once per available kernel arm
// (scalar, span, and the assembly arm when the CPU has it), and
// simd_over_span is the assembly arm's gain over the unrolled-Go span arm —
// the headline per-row number for the SIMD work.
type kernelRow struct {
	Name            string             `json:"name"`
	Qubits          int                `json:"qubits"`
	Class           string             `json:"class"`
	SpecNsPerOp     float64            `json:"spec_ns_per_op"`
	SoANsPerOp      float64            `json:"soa_ns_per_op"`
	DenseNsPerOp    float64            `json:"dense_ns_per_op"`
	Speedup         float64            `json:"speedup"`
	AoSOverSoA      float64            `json:"aos_over_soa"`
	ArmNsPerOp      map[string]float64 `json:"arm_ns_per_op,omitempty"`
	SIMDOverSpan    float64            `json:"simd_over_span,omitempty"`
	SpecAllocsPerOp int64              `json:"spec_allocs_per_op"`
	SoAAllocsPerOp  int64              `json:"soa_allocs_per_op"`
}

type kernelReport struct {
	GoVersion  string       `json:"go_version"`
	GOOS       string       `json:"goos"`
	GOARCH     string       `json:"goarch"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Timestamp  time.Time    `json:"timestamp"`
	TileQubits int          `json:"tile_qubits"`
	KernelISA  string       `json:"kernel_isa"`
	KernelISAs []string     `json:"kernel_isas"`
	Kernels    []kernelRow  `json:"kernels"`
	EndToEnd   []coreResult `json:"end_to_end"`
}

// perArm evaluates measure once per available kernel arm, best-first,
// restoring the installed arm afterwards. It returns the per-arm timings
// plus the installed arm's (ns, allocs) pair, so callers get their headline
// soa columns from the same measurement.
func perArm(measure func() (float64, int64)) (arm map[string]float64, ns float64, allocs int64) {
	orig := statevec.KernelISA()
	defer func() { fail(statevec.SelectKernelISA(orig)) }()
	arm = make(map[string]float64)
	for _, name := range statevec.KernelISAs() {
		fail(statevec.SelectKernelISA(name))
		n, a := measure()
		arm[name] = n
		if name == orig {
			ns, allocs = n, a
		}
	}
	return arm, ns, allocs
}

// simdOverSpan extracts the assembly arm's gain over the span arm from a
// per-arm timing map; 0 when either side is missing.
func simdOverSpan(arm map[string]float64) float64 {
	span, ok := arm["span"]
	if !ok {
		return 0
	}
	for _, simd := range []string{"avx2", "neon"} {
		if ns, ok := arm[simd]; ok && ns > 0 {
			return span / ns
		}
	}
	return 0
}

// strippedDense clones g, erases its structure classification, and forces the
// dense plan, reproducing the pre-classifier code path on the same matrix.
func strippedDense(g *gate.Gate) gate.Gate {
	d := g.Clone()
	d.Diagonal = false
	d.Perm, d.PermPhase = nil, nil
	d.Controls = 0
	statevec.PrepareDense(&d)
	return d
}

// ccrx builds a doubly-controlled RX: identity except the 2×2 rotation on the
// both-controls-set block — a k=3 gate whose kernel is planCtrl.
func ccrx(theta float64, c0, c1, t int) gate.Gate {
	m := cmat.Identity(8)
	cos := complex(math.Cos(theta/2), 0)
	nisin := complex(0, -math.Sin(theta/2))
	m.Set(3, 3, cos)
	m.Set(3, 7, nisin)
	m.Set(7, 3, nisin)
	m.Set(7, 7, cos)
	return gate.New("ccrx", m, []float64{theta}, c0, c1, t)
}

// u4 builds an unstructured dense two-qubit unitary — kron(RX(θ), RY(φ)),
// whose 16 entries are all nonzero with no diagonal, permutation, or control
// structure — so its kernel is the dense 2q matvec (the rot4x4 span
// primitive). This is the dedicated before/after row for the rot4x4 slot,
// which ran through the scalar body before the span/SIMD bodies landed.
func u4(q0, q1 int) gate.Gate {
	rx := gate.RX(0.7, 0).Matrix
	ry := gate.RY(1.1, 0).Matrix
	m := cmat.New(4, 4)
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			m.Set(r, c, rx.At(r>>1, c>>1)*ry.At(r&1, c&1))
		}
	}
	return gate.New("u4", m, nil, q0, q1)
}

// sparse3 builds a multiplexed single-qubit rotation: a different 2×2 block
// per setting of the upper bits — 16 of 64 entries nonzero, no diagonal,
// permutation, or control structure, so its kernel is the CSR matvec.
func sparse3(q0, q1, q2 int) gate.Gate {
	rng := rand.New(rand.NewSource(7))
	m := cmat.New(8, 8)
	for base := 0; base < 8; base += 2 {
		th := rng.Float64() * math.Pi
		cos, sin := complex(math.Cos(th), 0), complex(math.Sin(th), 0)
		m.Set(base, base, cos)
		m.Set(base, base+1, -sin)
		m.Set(base+1, base, sin)
		m.Set(base+1, base+1, cos)
	}
	return gate.New("muxrot", m, nil, q0, q1, q2)
}

func benchApply(s statevec.State, g *gate.Gate) (nsPerOp float64, allocs int64) {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.ApplyGate(g)
		}
	})
	return float64(r.T.Nanoseconds()) / float64(r.N), r.AllocsPerOp()
}

func benchApplyVec(v statevec.Vector, g *gate.Gate) (nsPerOp float64, allocs int64) {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v.ApplyGate(g)
		}
	})
	return float64(r.T.Nanoseconds()) / float64(r.N), r.AllocsPerOp()
}

// kernelStudy measures every specialized kernel against the forced-dense path
// on identical gates at q=16 and q=20, plus end-to-end sweeps.
func kernelStudy() *kernelReport {
	rep := &kernelReport{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC(),
		TileQubits: statevec.DefaultTileQubits,
		KernelISA:  statevec.KernelISA(),
		KernelISAs: statevec.KernelISAs(),
	}
	for _, n := range []int{16, 20} {
		s := statevec.NewState(n)
		s[0] = 0
		for i := range s {
			s[i] = complex(1/math.Sqrt(float64(len(s))), 0)
		}
		v := statevec.FromComplex(s)
		a, b, c := 2, n/2, n-3
		gates := []struct {
			name string
			g    gate.Gate
		}{
			{"p-1q", gate.P(0.7, b)},
			{"rz-1q", gate.RZ(0.7, b)},
			{"x-1q", gate.X(b)},
			{"y-1q", gate.Y(b)},
			{"cz-2q", gate.CZ(a, c)},
			{"crz-2q", gate.CRZ(0.7, a, c)},
			{"rzz-2q", gate.RZZ(0.7, a, c)},
			{"cnot-2q", gate.CNOT(a, c)},
			{"swap-2q", gate.SWAP(a, c)},
			{"iswap-2q", gate.ISWAP(a, c)},
			{"crx-2q", gate.CRX(0.7, a, c)},
			{"ccz-3q", gate.CCZ(a, b, c)},
			{"ccx-3q", gate.CCX(a, b, c)},
			{"ccrx-3q", ccrx(0.7, a, b, c)},
			{"muxrot-3q", sparse3(a, b, c)},
			{"u4-2q", u4(a, c)},
		}
		for i := range gates {
			spec := gates[i].g
			statevec.PrepareGate(&spec)
			den := strippedDense(&spec)
			specNs, specAllocs := benchApply(s, &spec)
			arm, soaNs, soaAllocs := perArm(func() (float64, int64) {
				return benchApplyVec(v, &spec)
			})
			denseNs, _ := benchApply(s, &den)
			rep.Kernels = append(rep.Kernels, kernelRow{
				Name:            gates[i].name,
				Qubits:          n,
				Class:           spec.Class().String(),
				SpecNsPerOp:     specNs,
				SoANsPerOp:      soaNs,
				DenseNsPerOp:    denseNs,
				Speedup:         denseNs / specNs,
				AoSOverSoA:      specNs / soaNs,
				ArmNsPerOp:      arm,
				SIMDOverSpan:    simdOverSpan(arm),
				SpecAllocsPerOp: specAllocs,
				SoAAllocsPerOp:  soaAllocs,
			})
		}
	}
	rep.Kernels = append(rep.Kernels, leafAccumulate(), e2eSchrodinger())
	rep.EndToEnd = e2eRuns()
	return rep
}

// aosAccumulateKron is the interleaved-complex leaf accumulation the dense
// backend used before the SoA refactor, kept here as the AoS side of the
// leaf-sweep comparison row.
func aosAccumulateKron(acc []complex128, coeff complex128, up, lo []complex128, nLower int) {
	dimLo := 1 << nLower
	for x0 := 0; x0 < len(acc); x0 += dimLo {
		u := coeff * up[x0>>nLower]
		if u == 0 {
			continue
		}
		end := x0 + dimLo
		if end > len(acc) {
			end = len(acc)
		}
		blk := acc[x0:end]
		for j := range blk {
			blk[j] += u * lo[j]
		}
	}
}

// leafAccumulate measures the dense-backend leaf sweep — accumulating a
// Schmidt term's Kronecker product into the amplitude accumulator — in both
// layouts at the 20-qubit (10+10 split) size the e2e runs use.
func leafAccumulate() kernelRow {
	const nLower, nUpper = 10, 10
	rng := rand.New(rand.NewSource(13))
	randVec := func(n int) []complex128 {
		s := make([]complex128, 1<<n)
		for i := range s {
			s[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		return s
	}
	lo, up := randVec(nLower), randVec(nUpper)
	accC := make([]complex128, 1<<(nLower+nUpper))
	coeff := complex(0.6, -0.3)
	aos := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			aosAccumulateKron(accC, coeff, up, lo, nLower)
		}
	})
	accV := statevec.MakeVector(len(accC))
	loV, upV := statevec.FromComplex(lo), statevec.FromComplex(up)
	arm, soaNs, soaAllocs := perArm(func() (float64, int64) {
		soa := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				statevec.AccumulateKron(accV, coeff, upV, loV, nLower)
			}
		})
		return float64(soa.T.Nanoseconds()) / float64(soa.N), soa.AllocsPerOp()
	})
	aosNs := float64(aos.T.Nanoseconds()) / float64(aos.N)
	return kernelRow{
		Name:           "leaf-accumulate-kron-20q",
		Qubits:         nLower + nUpper,
		Class:          "leaf-sweep",
		SpecNsPerOp:    aosNs,
		SoANsPerOp:     soaNs,
		AoSOverSoA:     aosNs / soaNs,
		ArmNsPerOp:     arm,
		SIMDOverSpan:   simdOverSpan(arm),
		SoAAllocsPerOp: soaAllocs,
	}
}

// e2eCircuit mixes every kernel class over n qubits: the workload of the
// end-to-end sweeps.
func e2eCircuit(n int) *circuit.Circuit {
	rng := rand.New(rand.NewSource(21))
	c := circuit.New(n)
	for layer := 0; layer < 4; layer++ {
		for q := 0; q < n; q++ {
			c.Append(gate.H(q), gate.RZ(rng.Float64(), q))
		}
		for q := 0; q+1 < n; q += 2 {
			c.Append(gate.CNOT(q, q+1), gate.CZ(q, (q+n/2)%n))
		}
		for q := 0; q+2 < n; q += 3 {
			c.Append(gate.CCX(q, q+1, q+2), gate.RZZ(rng.Float64(), q, q+2))
		}
	}
	return c
}

// e2eSchrodinger runs the full Schrödinger baseline (fusion disabled to
// isolate the kernels) three ways: the shipped SoA sweep (Simulate, which
// drives the Vector kernels), the same classified gates through the retained
// AoS State kernels, and the stripped-dense fallback. Speedup keeps its
// historical meaning (dense over specialized, now on the SoA path);
// aos_over_soa is the layout payoff on the full sweep.
func e2eSchrodinger() kernelRow {
	const n = 20
	c := e2eCircuit(n)
	stripped := circuit.New(n)
	for i := range c.Gates {
		stripped.Append(strippedDense(&c.Gates[i]))
	}
	run := func(cc *circuit.Circuit) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := hsfsim.Simulate(cc, hsfsim.Options{Method: hsfsim.Schrodinger, FusionMaxQubits: -1}); err != nil {
					b.Fatal(err)
				}
			}
		})
		return float64(r.T.Nanoseconds()) / float64(r.N)
	}
	aosGates := append([]gate.Gate(nil), c.Gates...)
	statevec.PrepareGates(aosGates)
	aosRun := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := statevec.NewState(n)
			s.ApplyAll(aosGates)
		}
	})
	aosNs := float64(aosRun.T.Nanoseconds()) / float64(aosRun.N)
	arm, soaNs, _ := perArm(func() (float64, int64) {
		return run(c), 0
	})
	denseNs := run(stripped)
	return kernelRow{
		Name:         "e2e-schrodinger-20q",
		Qubits:       n,
		Class:        "end-to-end",
		SpecNsPerOp:  aosNs,
		SoANsPerOp:   soaNs,
		DenseNsPerOp: denseNs,
		Speedup:      denseNs / soaNs,
		AoSOverSoA:   aosNs / soaNs,
		ArmNsPerOp:   arm,
		SIMDOverSpan: simdOverSpan(arm),
	}
}

// e2eRuns records the shipped configurations for the artifact trajectory: the
// fused Schrödinger sweep and the HSF path-tree run, specialized kernels on.
func e2eRuns() []coreResult {
	var results []coreResult
	measure := func(name string, f func(b *testing.B)) {
		r := testing.Benchmark(f)
		results = append(results, coreResult{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	c := e2eCircuit(20)
	measure("e2e/schrodinger-fused-20q", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hsfsim.Simulate(c, hsfsim.Options{Method: hsfsim.Schrodinger}); err != nil {
				b.Fatal(err)
			}
		}
	})
	plan, err := pathTreePlan(20, 6)
	fail(err)
	measure("e2e/hsf-dense-64paths-20q", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hsf.Run(plan, hsf.Options{Backend: hsf.BackendDense}); err != nil {
				b.Fatal(err)
			}
		}
	})
	return results
}

// telemetryRow measures one run configuration with the recorder off versus
// on. overhead_pct is the headline number: the telemetry design budgets ≤ 2%
// on the leaf loop (per-worker plain counters, 1-in-64 sampled timings).
type telemetryRow struct {
	Name              string  `json:"name"`
	Paths             uint64  `json:"paths"`
	DisabledNsPerPath float64 `json:"disabled_ns_per_path"`
	EnabledNsPerPath  float64 `json:"enabled_ns_per_path"`
	// OverheadPct prices the full observability stack (telemetry recorder
	// plus trace flight recorder) against a bare run; TraceOverheadPct is
	// the marginal cost of the flight recorder alone (traced vs. untraced
	// with telemetry on in both arms) — the number the ≤2%% tracing budget
	// gates on.
	OverheadPct        float64 `json:"overhead_pct"`
	TraceOverheadPct   float64 `json:"trace_overhead_pct"`
	EnabledAllocsPerOp int64   `json:"enabled_allocs_per_op"`
	EnabledBytesPerOp  int64   `json:"enabled_bytes_per_op"`
}

type telemetryReport struct {
	GoVersion         string         `json:"go_version"`
	GOOS              string         `json:"goos"`
	GOARCH            string         `json:"goarch"`
	GoMaxProcs        int            `json:"gomaxprocs"`
	Timestamp         time.Time      `json:"timestamp"`
	OverheadBudgetPct float64        `json:"overhead_budget_pct"`
	Runs              []telemetryRow `json:"runs"`
}

// measureTelemetry benchmarks plan under opts with and without observability
// attached — the "enabled" arm carries both the telemetry recorder and the
// trace flight recorder (prefix-batch spans), so overhead_pct prices the
// full production observability stack. The two variants are interleaved
// sample by sample and compared by median, so scheduler and thermal drift
// cancel instead of landing on one side of the comparison — single best-of-N
// runs swing several percent on a busy box, far more than the effect being
// measured.
func measureTelemetry(name string, plan *cut.Plan, opts hsf.Options) telemetryRow {
	enabled := opts
	enabled.Telemetry = telemetry.New()
	trc := trace.NewRecorder(0)
	tracedCtx := trace.NewContext(context.Background(), trc, trace.SpanContext{})
	run := func(ctx context.Context, o hsf.Options, n int) time.Duration {
		start := time.Now()
		for i := 0; i < n; i++ {
			if _, err := hsf.RunContext(ctx, plan, o); err != nil {
				fail(err)
			}
		}
		return time.Since(start)
	}
	bg := context.Background()

	// Warm pools and caches, then size each sample to ~150 ms of work —
	// long enough that scheduler hiccups land well under the percent-level
	// effects being measured.
	run(bg, opts, 2)
	run(tracedCtx, enabled, 2)
	per := run(bg, opts, 3) / 3
	runsPerSample := int(150*time.Millisecond/per) + 1
	if runsPerSample > 400 {
		runsPerSample = 400
	}

	// Each sample is a back-to-back disabled / telemetry-only / traced
	// triple; the per-sample ratios cancel whatever drift the arms share,
	// and the median of ratios is the overhead estimate. The traced-over-
	// telemetry ratio isolates the flight recorder's marginal cost.
	const samples = 31
	dis := make([]float64, 0, samples)
	ratios := make([]float64, 0, samples)
	traceRatios := make([]float64, 0, samples)
	for k := 0; k < samples; k++ {
		d := float64(run(bg, opts, runsPerSample))
		e1 := float64(run(bg, enabled, runsPerSample))
		e2 := float64(run(tracedCtx, enabled, runsPerSample))
		dis = append(dis, d)
		ratios = append(ratios, e2/d)
		traceRatios = append(traceRatios, e2/e1)
	}
	disMed := median(dis)
	enMed := disMed * median(ratios)
	traceOverheadPct := (median(traceRatios) - 1) * 100

	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := hsf.RunContext(tracedCtx, plan, enabled); err != nil {
				b.Fatal(err)
			}
		}
	})

	np, _ := plan.NumPaths()
	perPath := float64(np) * float64(runsPerSample)
	return telemetryRow{
		Name:               name,
		Paths:              np,
		DisabledNsPerPath:  disMed / perPath,
		EnabledNsPerPath:   enMed / perPath,
		OverheadPct:        (enMed - disMed) / disMed * 100,
		TraceOverheadPct:   traceOverheadPct,
		EnabledAllocsPerOp: r.AllocsPerOp(),
		EnabledBytesPerOp:  r.AllocedBytesPerOp(),
	}
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// telemetryStudy quantifies the recorder's cost on many-leaf path-tree runs:
// small per-leaf segments are the worst case, because the fixed per-leaf
// counter updates amortize over the least kernel work.
func telemetryStudy() *telemetryReport {
	rep := &telemetryReport{
		GoVersion:         runtime.Version(),
		GOOS:              runtime.GOOS,
		GOARCH:            runtime.GOARCH,
		GoMaxProcs:        runtime.GOMAXPROCS(0),
		Timestamp:         time.Now().UTC(),
		OverheadBudgetPct: 2,
	}
	small, err := pathTreePlan(10, 10) // 1024 paths over 5-qubit halves
	fail(err)
	large, err := pathTreePlan(14, 8) // 256 paths over 7-qubit halves
	fail(err)
	rep.Runs = append(rep.Runs,
		measureTelemetry("hsf/dense-1024paths-10q-1w", small, hsf.Options{Backend: hsf.BackendDense, Workers: 1}),
		measureTelemetry("hsf/dense-1024paths-10q", small, hsf.Options{Backend: hsf.BackendDense}),
		measureTelemetry("hsf/dense-256paths-14q-1w", large, hsf.Options{Backend: hsf.BackendDense, Workers: 1}),
		measureTelemetry("hsf/dd-1024paths-10q-1w", small, hsf.Options{Backend: hsf.BackendDD, Workers: 1}),
	)
	return rep
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcore:", err)
		os.Exit(1)
	}
}
