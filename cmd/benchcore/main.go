// Command benchcore measures the execution core — the shared path-tree
// walker on both backends plus the statevector gate kernels — and emits the
// results as machine-readable JSON for regression tracking:
//
//	benchcore -o BENCH_core.json
//	make bench-core
//
// The allocs_per_op column is the headline number: steady-state walking must
// stay at zero allocations per replay (see internal/hsf TestZeroAllocsPerLeaf
// for the enforcing test; this tool records the same property alongside
// timing so a regression shows up in the artifact history).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"hsfsim/internal/bench"
	"hsfsim/internal/circuit"
	"hsfsim/internal/cut"
	"hsfsim/internal/gate"
	"hsfsim/internal/hsf"
	"hsfsim/internal/statevec"
)

type coreResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type report struct {
	GoVersion  string             `json:"go_version"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	GoMaxProcs int                `json:"gomaxprocs"`
	Timestamp  time.Time          `json:"timestamp"`
	Walker     []*bench.WalkerRow `json:"walker"`
	Core       []coreResult       `json:"core"`
}

func main() {
	out := flag.String("o", "BENCH_core.json", "output file (- for stdout)")
	flag.Parse()

	walkerRows, err := walkerStudy()
	fail(err)
	rep := &report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC(),
		Walker:     walkerRows,
		Core:       coreBenchmarks(),
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	fail(err)
	data = append(data, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(data)
	} else {
		err = os.WriteFile(*out, data, 0o644)
		fmt.Fprintf(os.Stderr, "benchcore: wrote %s\n", *out)
	}
	fail(err)
}

func walkerStudy() ([]*bench.WalkerRow, error) {
	cases, err := bench.DefaultWalkerCases()
	if err != nil {
		return nil, err
	}
	return bench.RunWalker(cases)
}

// pathTreePlan builds a standard plan with 2^cuts paths for the end-to-end
// run benchmarks.
func pathTreePlan(n, cuts int) (*cut.Plan, error) {
	rng := rand.New(rand.NewSource(99))
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.Append(gate.H(q))
	}
	for i := 0; i < cuts; i++ {
		a := rng.Intn(n / 2)
		b := n/2 + rng.Intn(n-n/2)
		c.Append(gate.RZZ(rng.Float64(), a, b))
		c.Append(gate.RX(rng.Float64(), a))
	}
	return cut.BuildPlan(c, cut.Options{Partition: cut.Partition{CutPos: n/2 - 1}})
}

func coreBenchmarks() []coreResult {
	var results []coreResult
	measure := func(name string, f func(b *testing.B)) {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			f(b)
		})
		results = append(results, coreResult{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}

	plan, err := pathTreePlan(10, 6)
	fail(err)
	measure("hsf/run-dense-64paths", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hsf.Run(plan, hsf.Options{Backend: hsf.BackendDense}); err != nil {
				b.Fatal(err)
			}
		}
	})
	measure("hsf/run-dd-64paths", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hsf.Run(plan, hsf.Options{Backend: hsf.BackendDD}); err != nil {
				b.Fatal(err)
			}
		}
	})

	const n = 16
	s := statevec.NewState(n)
	h := gate.H(3)
	measure("statevec/apply1-16q", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.ApplyGate(&h)
		}
	})
	cx := gate.CNOT(2, 9)
	measure("statevec/apply2-16q", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.ApplyGate(&cx)
		}
	})
	ccz := gate.CCZ(1, 6, 11)
	statevec.PrepareGate(&ccz)
	measure("statevec/applyK-diag3-16q", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.ApplyGate(&ccz)
		}
	})
	return results
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcore:", err)
		os.Exit(1)
	}
}
