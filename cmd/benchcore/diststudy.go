package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http/httptest"
	"runtime"
	"strings"
	"time"

	"hsfsim/internal/dist"
	"hsfsim/internal/server"
	"hsfsim/internal/telemetry/trace"
)

func quietDistLogger() *log.Logger { return log.New(io.Discard, "", 0) }

// distRow is one distributed run, measured entirely from its trace spans:
// the run's wall clock is the dist-run root span, lease overhead compares
// coordinator-side lease spans against the worker-exec windows nested in
// them, and steals are the lease spans carrying a Link to their victim.
type distRow struct {
	Name      string  `json:"name"`
	Transport string  `json:"transport"` // loopback | http
	Workers   int     `json:"workers"`
	Mode      string  `json:"mode"` // adaptive | fixed batch sizing
	WallMs    float64 `json:"wall_ms"`
	Paths     int64   `json:"paths"`
	// Leases/Steals/Resplits count lease spans (steals are the ones whose
	// span links a victim).
	Leases int `json:"leases"`
	Steals int `json:"steals"`
	// LeaseOverheadPct is (Σ lease − Σ worker-exec) / Σ lease × 100: the
	// share of coordinator-observed lease time not spent executing on the
	// worker (transport, queueing, merge, clock skew residue).
	LeaseOverheadPct float64 `json:"lease_overhead_pct"`
	// StealEfficiencyPct is the share of steal leases that completed and
	// merged (no error), i.e. steals that turned idle time into progress.
	// -1 when the run had no steals.
	StealEfficiencyPct float64 `json:"steal_efficiency_pct"`
	// UtilizationPct is Σ lease span time / (workers × wall) × 100 — how
	// busy the fleet was keeping the lease pipeline full.
	UtilizationPct float64 `json:"utilization_pct"`
	SpansRecorded  int     `json:"spans_recorded"`
}

// distScaling is the adaptive-vs-fixed comparison at one fleet size, the
// number the adaptive BatchSize sizer has to justify itself with.
type distScaling struct {
	Workers        int     `json:"workers"`
	AdaptiveWallMs float64 `json:"adaptive_wall_ms"`
	FixedWallMs    float64 `json:"fixed_wall_ms"`
	// AdaptiveWinPct is (fixed − adaptive) / fixed × 100; positive means
	// adaptive sizing beat the fixed baseline.
	AdaptiveWinPct float64 `json:"adaptive_win_pct"`
}

type distReport struct {
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Timestamp  time.Time     `json:"timestamp"`
	Rows       []distRow     `json:"rows"`
	Scaling    []distScaling `json:"scaling"`
}

// distQASM builds the study workload: a QAOA-style circuit whose crossing
// RZZ entanglers give joint cutting a real prefix-task space to shard.
func distQASM(n, edges int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	fmt.Fprintf(&b, "qreg q[%d];\n", n)
	for q := 0; q < n; q++ {
		fmt.Fprintf(&b, "h q[%d];\n", q)
	}
	for i := 0; i < edges; i++ {
		a := rng.Intn(n)
		c := (a + 1 + rng.Intn(n-1)) % n
		fmt.Fprintf(&b, "rzz(%.6f) q[%d],q[%d];\n", rng.Float64()*2, a, c)
	}
	for q := 0; q < n; q++ {
		fmt.Fprintf(&b, "rx(%.6f) q[%d];\n", rng.Float64(), q)
	}
	return b.String()
}

// distJob is the study workload: standard cutting keeps every crossing gate
// a separate cut, giving a 8192-path prefix space — enough tasks that even
// the 16-worker fleet sees multiple lease rounds and the adaptive sizer has
// room to differentiate workers.
func distJob() *dist.Job {
	return &dist.Job{QASM: distQASM(12, 32, 7), Method: "standard", CutPos: 5}
}

// runDistOnce executes one distributed run under a fresh flight recorder and
// reduces the recorded spans to a row. batchSize 0 is the adaptive sizer.
func runDistOnce(name, transport string, workers int, co *dist.Coordinator, batchSize int) distRow {
	trc := trace.NewRecorder(0)
	ctx := trace.NewContext(context.Background(), trc, trace.SpanContext{})
	res, err := co.Run(ctx, distJob(), dist.RunOptions{})
	fail(err)

	mode := "adaptive"
	if batchSize > 0 {
		mode = "fixed"
	}
	row := distRow{
		Name:               name,
		Transport:          transport,
		Workers:            workers,
		Mode:               mode,
		Paths:              res.PathsSimulated,
		StealEfficiencyPct: -1,
	}
	var wallNS, leaseNS, execNS int64
	var stealsOK int
	events := trc.Snapshot()
	row.SpansRecorded = len(events)
	for i := range events {
		ev := &events[i]
		switch ev.Name {
		case "dist-run":
			wallNS = ev.Dur
		case "lease":
			row.Leases++
			leaseNS += ev.Dur
			if ev.Link.Valid() {
				row.Steals++
				if ev.Str("err") == "" {
					stealsOK++
				}
			}
		case "worker-exec":
			execNS += ev.Dur
		}
	}
	row.WallMs = float64(wallNS) / 1e6
	if leaseNS > 0 {
		row.LeaseOverheadPct = float64(leaseNS-execNS) / float64(leaseNS) * 100
	}
	if row.Steals > 0 {
		row.StealEfficiencyPct = float64(stealsOK) / float64(row.Steals) * 100
	}
	if wallNS > 0 && workers > 0 {
		row.UtilizationPct = float64(leaseNS) / (float64(wallNS) * float64(workers)) * 100
	}
	return row
}

// loopbackRun builds a heterogeneous loopback fleet (every other worker
// delivers replies late, so the adaptive sizer and the stealer both have
// something to react to) and runs the workload once.
func loopbackRun(workers, batchSize int) distRow {
	lb := dist.NewLoopback()
	for i := 0; i < workers; i++ {
		name := fmt.Sprintf("w%d", i)
		lb.AddWorker(name, dist.ExecOptions{Workers: 1})
		if i%2 == 1 {
			lb.Delay(name, 10*time.Millisecond)
		}
	}
	co, err := dist.New(dist.Config{
		Transport:    lb,
		LeaseTimeout: 30 * time.Second,
		StealDelay:   20 * time.Millisecond,
		BatchSize:    batchSize,
		Logger:       quietDistLogger(),
	})
	fail(err)
	for i := 0; i < workers; i++ {
		co.AddWorker(fmt.Sprintf("w%d", i))
	}
	mode := "adaptive"
	if batchSize > 0 {
		mode = "fixed"
	}
	return runDistOnce(fmt.Sprintf("loopback-%dw-%s", workers, mode), "loopback", workers, co, batchSize)
}

// httpRun shards the same workload across real hsfsimd handler trees behind
// httptest listeners, driven by the production HTTPTransport — the
// single-machine stand-in for a real fleet, including traceparent headers
// and worker-exec clock estimation from response headers.
func httpRun(workers int) distRow {
	var addrs []string
	for i := 0; i < workers; i++ {
		srv := httptest.NewServer(server.NewWithConfig(server.Config{Logger: quietDistLogger()}))
		defer srv.Close()
		addrs = append(addrs, strings.TrimPrefix(srv.URL, "http://"))
	}
	co, err := dist.New(dist.Config{
		Transport:    &dist.HTTPTransport{},
		LeaseTimeout: 30 * time.Second,
		Logger:       quietDistLogger(),
	})
	fail(err)
	for _, a := range addrs {
		co.AddWorker(a)
	}
	return runDistOnce(fmt.Sprintf("http-%dw-adaptive", workers), "http", workers, co, 0)
}

// distStudy drives the distributed runtime end to end at 2/4/8/16 loopback
// workers — adaptive and fixed batch sizing at each size — plus a real-HTTP
// variant, computing the protocol numbers from the flight recorder's spans.
func distStudy() *distReport {
	rep := &distReport{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC(),
	}
	loopbackRun(2, 0) // warm the engine pools so row 1 doesn't pay cold costs
	for _, w := range []int{2, 4, 8, 16} {
		ad := loopbackRun(w, 0)
		fx := loopbackRun(w, 4)
		rep.Rows = append(rep.Rows, ad, fx)
		rep.Scaling = append(rep.Scaling, distScaling{
			Workers:        w,
			AdaptiveWallMs: ad.WallMs,
			FixedWallMs:    fx.WallMs,
			AdaptiveWinPct: (fx.WallMs - ad.WallMs) / fx.WallMs * 100,
		})
	}
	rep.Rows = append(rep.Rows, httpRun(4))
	return rep
}
