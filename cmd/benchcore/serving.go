package main

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"hsfsim"
	"hsfsim/internal/circuit"
	"hsfsim/internal/gate"
	"hsfsim/internal/jobs"
	"hsfsim/internal/telemetry"
)

// servingRow measures one job-service scenario: N concurrent submissions
// driven to completion through a jobs.Manager. The same_circuit=true rows
// exercise the plan cache and batching (one compile, few walks); the
// same_circuit=false rows submit N fingerprint-distinct circuits, which is
// the cache-off baseline — every job compiles its own plan and walks alone.
type servingRow struct {
	Name        string  `json:"name"`
	Jobs        int     `json:"jobs"`
	SameCircuit bool    `json:"same_circuit"`
	WallMs      float64 `json:"wall_ms"`
	JobsPerSec  float64 `json:"jobs_per_sec"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	// Manager counters after the scenario: compiles = plan-cache misses.
	PlanCompiles int64 `json:"plan_compiles"`
	PlanHits     int64 `json:"plan_hits"`
	Batches      int64 `json:"batches"`
	BatchedJobs  int64 `json:"batched_jobs"`
}

type servingReport struct {
	GoVersion  string       `json:"go_version"`
	GOOS       string       `json:"goos"`
	GOARCH     string       `json:"goarch"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Timestamp  time.Time    `json:"timestamp"`
	Runners    int          `json:"runners"`
	Rows       []servingRow `json:"rows"`
}

// servingCircuit builds the per-job workload: a standard-HSF walk with
// 2^cuts paths over (n/2)-qubit halves, plus a distinguishing rotation so
// variant > 0 produces a distinct fingerprint.
func servingCircuit(n, cuts, variant int) *circuit.Circuit {
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.Append(gate.H(q))
	}
	c.Append(gate.RZ(0.1+float64(variant)/1000, 0))
	for i := 0; i < cuts; i++ {
		c.Append(gate.RZ(0.2+float64(i)/100, i%n))
		c.Append(gate.CNOT(n/2-1, n/2))
	}
	return c
}

// servingScenario submits n jobs concurrently and waits for all of them,
// recording wall clock, per-job latency quantiles, and the manager counters
// that prove (or disprove) plan sharing.
func servingScenario(name string, n int, same bool, runners int) servingRow {
	var (
		mu      sync.Mutex
		started = map[string]time.Time{}
		hist    telemetry.Histogram
		done    sync.WaitGroup
	)
	mgr, err := jobs.New(jobs.Config{
		Runners:  runners,
		QueueCap: 2 * n,
		Logf:     func(string, ...any) {},
		OnResult: func(snap jobs.Snapshot, res *hsfsim.Result) {
			mu.Lock()
			hist.Observe(time.Since(started[snap.ID]))
			mu.Unlock()
			done.Done()
		},
	})
	fail(err)

	opts := hsfsim.Options{Method: hsfsim.StandardHSF, CutPos: 9}
	wallStart := time.Now()
	for i := 0; i < n; i++ {
		variant := 0
		if !same {
			variant = i + 1
		}
		c := servingCircuit(20, 8, variant)
		done.Add(1)
		mu.Lock()
		snap, err := mgr.Submit(jobs.Request{Circuit: c, Opts: opts})
		if err != nil {
			mu.Unlock()
			fail(fmt.Errorf("serving %s: submit %d: %w", name, i, err))
		}
		started[snap.ID] = time.Now()
		mu.Unlock()
	}
	// OnResult fires per completed job; a failed job would not, so bound the
	// wait instead of hanging the bench tool.
	waited := make(chan struct{})
	go func() { done.Wait(); close(waited) }()
	select {
	case <-waited:
	case <-time.After(5 * time.Minute):
		fail(fmt.Errorf("serving %s: jobs did not complete within 5m", name))
	}
	wall := time.Since(wallStart)

	st := mgr.Stats()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := mgr.Close(ctx); err != nil {
		fail(fmt.Errorf("serving %s: close: %w", name, err))
	}
	if st.Failed > 0 {
		fail(fmt.Errorf("serving %s: %d jobs failed", name, st.Failed))
	}
	snap := hist.Snapshot()
	return servingRow{
		Name:         name,
		Jobs:         n,
		SameCircuit:  same,
		WallMs:       float64(wall.Microseconds()) / 1000,
		JobsPerSec:   float64(n) / wall.Seconds(),
		P50Ms:        snap.Quantile(0.50) * 1000,
		P99Ms:        snap.Quantile(0.99) * 1000,
		PlanCompiles: st.PlanMisses,
		PlanHits:     st.PlanHits,
		Batches:      st.Batches,
		BatchedJobs:  st.BatchedJobs,
	}
}

// servingStudy pits same-circuit submissions (plan cache + batching share
// one compile and few walks) against fingerprint-distinct submissions (the
// cache-off baseline) at two concurrency levels.
func servingStudy() *servingReport {
	runners := runtime.GOMAXPROCS(0)
	if runners > 8 {
		runners = 8
	}
	rep := &servingReport{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC(),
		Runners:    runners,
	}
	// Warm pools and the compiler paths once so row 1 doesn't pay cold costs.
	servingScenario("warmup", 4, true, runners)
	for _, n := range []int{16, 64} {
		rep.Rows = append(rep.Rows,
			servingScenario(fmt.Sprintf("same-circuit-%djobs", n), n, true, runners),
			servingScenario(fmt.Sprintf("distinct-circuit-%djobs", n), n, false, runners),
		)
	}
	return rep
}
