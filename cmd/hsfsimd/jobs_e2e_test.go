package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"hsfsim"
	"hsfsim/internal/jobs"
	"hsfsim/internal/qasm"
	"hsfsim/internal/server"
)

// startJobsDaemon boots run() with a durable job store and returns the base
// URL plus the exit channel. The caller stops it with SIGTERM.
func startJobsDaemon(t *testing.T, storeDir string) (string, chan int) {
	t.Helper()
	addrCh := make(chan net.Addr, 1)
	onListen = func(a net.Addr) { addrCh <- a }
	t.Cleanup(func() { onListen = nil })
	exitCh := make(chan int, 1)
	go func() {
		exitCh <- run([]string{
			"-addr", "127.0.0.1:0",
			"-jobs-store", storeDir,
			"-job-runners", "1",
			"-job-flush", "50ms",
			"-drain-timeout", "10s",
		})
	}()
	select {
	case a := <-addrCh:
		return "http://" + a.String(), exitCh
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not start listening")
		return "", nil
	}
}

// heavyQASM: a standard-HSF walk with 2^15 cheap paths — long enough to be
// killed mid-run with several 50ms checkpoint flushes behind it.
func heavyQASM(n, cuts int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "OPENQASM 2.0;\nqreg q[%d];\n", n)
	for q := 0; q < n; q++ {
		fmt.Fprintf(&b, "h q[%d];\n", q)
	}
	for i := 0; i < cuts; i++ {
		fmt.Fprintf(&b, "rz(0.%d) q[%d];\n", i+1, i%n)
		fmt.Fprintf(&b, "cx q[%d],q[%d];\n", n/2-1, n/2)
	}
	return b.String()
}

func submitE2EJob(t *testing.T, base string, req server.JobSubmitRequest) jobs.Snapshot {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	var snap jobs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

func getJob(t *testing.T, base, id string) (jobs.Snapshot, int) {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap jobs.Snapshot
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
	}
	return snap, resp.StatusCode
}

// TestJobsSurviveDaemonRestart is the job service's acceptance test: submit a
// mix of jobs across two tenants with distinct priorities, SIGTERM the daemon
// while the heavy one is mid-walk, restart on the same store, and require
// that every job completes with amplitudes matching a direct Simulate, that
// the identical pair ran as one batch sharing a plan, and that the
// high-priority tenant's jobs all started before the low-priority tenant's.
func TestJobsSurviveDaemonRestart(t *testing.T) {
	storeDir := t.TempDir()
	base, exitCh := startJobsDaemon(t, storeDir)

	heavy := heavyQASM(16, 15)
	cascade := "OPENQASM 2.0;\nqreg q[6];\nh q[0];\nrzz(0.3) q[2],q[3];\nrzz(0.5) q[2],q[4];\nrzz(0.7) q[2],q[5];\n"
	cut7, cut2 := 7, 2
	type spec struct {
		req    server.JobSubmitRequest
		method hsfsim.Method
		cut    int
	}
	mk := func(qasmSrc, method, tenant string, prio, cutPos int, m hsfsim.Method) spec {
		cp := cutPos
		return spec{
			req: server.JobSubmitRequest{
				SimulateRequest: server.SimulateRequest{QASM: qasmSrc, Method: method, CutPos: &cp},
				Tenant:          tenant,
				Priority:        prio,
			},
			method: m, cut: cutPos,
		}
	}
	specs := []spec{
		// The runner takes this first and is killed inside its walk.
		mk(heavy, "standard", "alice", 5, cut7, hsfsim.StandardHSF),
		// Identical pair: must batch behind one compiled plan and one walk.
		mk(cascade, "joint", "alice", 5, cut2, hsfsim.JointHSF),
		mk(cascade, "joint", "alice", 5, cut2, hsfsim.JointHSF),
		// Low-priority tenant: distinct circuits, must never run before alice.
		mk(cascade+"rx(0.11) q[0];\n", "joint", "bob", 1, cut2, hsfsim.JointHSF),
		mk(cascade+"rx(0.22) q[1];\n", "joint", "bob", 1, cut2, hsfsim.JointHSF),
		mk(cascade+"rx(0.33) q[2];\n", "joint", "bob", 1, cut2, hsfsim.JointHSF),
	}
	snaps := make([]jobs.Snapshot, len(specs))
	for i, sp := range specs {
		snaps[i] = submitE2EJob(t, base, sp.req)
	}
	if snaps[1].Fingerprint != snaps[2].Fingerprint {
		t.Fatalf("identical submissions keyed apart: %x vs %x", snaps[1].Fingerprint, snaps[2].Fingerprint)
	}

	// Wait for the heavy job to be mid-walk (with checkpoint flushes behind
	// it), then kill the daemon.
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap, _ := getJob(t, base, snaps[0].ID)
		if snap.State == jobs.StateRunning && snap.PathsDone > 0 {
			break
		}
		if snap.State.Terminal() {
			t.Fatalf("heavy job finished before the kill (state %s); enlarge the workload", snap.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("heavy job never started running")
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond) // let a couple of 50ms flushes land
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exitCh:
		if code != 0 {
			t.Fatalf("first daemon exit code %d", code)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("first daemon did not exit after SIGTERM")
	}

	// Restart on the same store: unfinished jobs are re-offered (the heavy
	// one from its checkpoint) and all must complete.
	base, exitCh = startJobsDaemon(t, storeDir)
	done := make([]jobs.Snapshot, len(specs))
	deadline = time.Now().Add(120 * time.Second)
	for i := range specs {
		for {
			snap, status := getJob(t, base, snaps[i].ID)
			if status != http.StatusOK {
				t.Fatalf("job %s: status %d after restart", snaps[i].ID, status)
			}
			if snap.State == jobs.StateDone {
				done[i] = snap
				break
			}
			if snap.State.Terminal() {
				t.Fatalf("job %s: state %s (error %q)", snaps[i].ID, snap.State, snap.Error)
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s never completed after restart", snaps[i].ID)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// Every result matches a direct in-process Simulate to 1e-12.
	for i, sp := range specs {
		resp, err := http.Get(base + "/jobs/" + snaps[i].ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		var got server.SimulateResponse
		err = json.NewDecoder(resp.Body).Decode(&got)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		c, err := qasm.Parse(strings.NewReader(sp.req.QASM))
		if err != nil {
			t.Fatal(err)
		}
		want, err := hsfsim.Simulate(c, hsfsim.Options{Method: sp.method, CutPos: sp.cut})
		if err != nil {
			t.Fatal(err)
		}
		// The JSON result echoes at most MaxReturnedAmplitudes; the full
		// vector is for the SSE stream. Compare the echoed prefix.
		wantN := len(want.Amplitudes)
		if wantN > server.MaxReturnedAmplitudes {
			wantN = server.MaxReturnedAmplitudes
		}
		if len(got.Amplitudes) != wantN {
			t.Fatalf("job %d: %d amplitudes, want %d", i, len(got.Amplitudes), wantN)
		}
		for k, a := range got.Amplitudes {
			if math.Abs(a.Re-real(want.Amplitudes[k]))+math.Abs(a.Im-imag(want.Amplitudes[k])) > 1e-12 {
				t.Fatalf("job %d amplitude %d: (%g,%g) vs direct %v", i, k, a.Re, a.Im, want.Amplitudes[k])
			}
		}
	}

	// The identical pair shared one batch (and therefore one plan and walk).
	if done[1].BatchSize != 2 || done[2].BatchSize != 2 {
		t.Errorf("twin batch sizes %d/%d, want 2/2", done[1].BatchSize, done[2].BatchSize)
	}
	// Priority: with one runner, every alice (priority 5) job must have
	// started no later than any bob (priority 1) job.
	var lastAlice, firstBob time.Time
	for i, sp := range specs {
		switch sp.req.Tenant {
		case "alice":
			if done[i].Started.After(lastAlice) {
				lastAlice = done[i].Started
			}
		case "bob":
			if firstBob.IsZero() || done[i].Started.Before(firstBob) {
				firstBob = done[i].Started
			}
		}
	}
	if lastAlice.After(firstBob) {
		t.Errorf("priority inversion: alice job started %v after bob's first start %v", lastAlice, firstBob)
	}

	// The resumed heavy job shows up in the restarted daemon's counters.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := func() ([]byte, error) {
		defer mresp.Body.Close()
		b := new(bytes.Buffer)
		_, e := b.ReadFrom(mresp.Body)
		return b.Bytes(), e
	}()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(metrics, []byte("hsfsimd_jobs_resumed_total 1")) {
		if !done[0].Resumed {
			t.Errorf("heavy job not marked resumed and resumed counter absent")
		}
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exitCh:
		if code != 0 {
			t.Fatalf("second daemon exit code %d", code)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("second daemon did not exit")
	}
}
