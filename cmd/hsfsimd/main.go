// Command hsfsimd serves the simulator over HTTP (see internal/server for
// the API):
//
//	hsfsimd -addr :8080 -max-concurrent 8 -memory-budget 8589934592
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/readyz
//	curl -s -X POST localhost:8080/analyze -d '{"qasm":"qreg q[2]; h q[0]; cx q[0],q[1];"}'
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes, in-flight
// simulations drain for up to -drain-timeout (their request contexts are
// canceled past that), and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hsfsim/internal/server"
)

// onListen, when non-nil, receives the bound address once the listener is
// up. Tests use it with "-addr 127.0.0.1:0" to discover the port.
var onListen func(net.Addr)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("hsfsimd", flag.ExitOnError)
	var (
		addr          = fs.String("addr", "127.0.0.1:8080", "listen address")
		maxConcurrent = fs.Int("max-concurrent", 0, "max simultaneous simulations (0: 2×GOMAXPROCS, <0: unlimited)")
		memoryBudget  = fs.Int64("memory-budget", 0, "admission memory budget in bytes (0: 16 GiB default, <0: unlimited)")
		maxPaths      = fs.Uint64("max-paths", 0, "reject plans with more Feynman paths than this (0: unlimited)")
		workers       = fs.Int("workers", 0, "worker goroutines per simulation (0: all CPUs)")
		maxTimeout    = fs.Duration("max-timeout", 10*time.Minute, "cap on per-request timeout_ms")
		drainTimeout  = fs.Duration("drain-timeout", 30*time.Second, "grace period for in-flight requests on shutdown")
	)
	_ = fs.Parse(args)

	logger := log.New(os.Stderr, "hsfsimd ", log.LstdFlags)
	handler := server.NewWithConfig(server.Config{
		MaxConcurrent: *maxConcurrent,
		MemoryBudget:  *memoryBudget,
		MaxPaths:      *maxPaths,
		Workers:       *workers,
		MaxTimeout:    *maxTimeout,
		Logger:        logger,
	})

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      10 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Printf("listen: %v", err)
		return 1
	}
	if onListen != nil {
		onListen(ln.Addr())
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	logger.Printf("listening on %s", ln.Addr())

	select {
	case err := <-errCh:
		// The listener failed before any shutdown was requested.
		logger.Printf("serve: %v", err)
		return 1
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	logger.Printf("shutting down, draining in-flight requests (up to %v)", *drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		// The drain window expired: force-close, canceling request contexts.
		logger.Printf("drain incomplete: %v; closing", err)
		_ = srv.Close()
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("serve: %v", err)
		return 1
	}
	logger.Printf("shutdown complete")
	return 0
}
