// Command hsfsimd serves the simulator over HTTP (see internal/server for
// the API):
//
//	hsfsimd -addr :8080
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/analyze -d '{"qasm":"qreg q[2]; h q[0]; cx q[0],q[1];"}'
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"hsfsim/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	flag.Parse()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      10 * time.Minute,
	}
	log.Printf("hsfsimd listening on %s", *addr)
	log.Fatal(srv.ListenAndServe())
}
