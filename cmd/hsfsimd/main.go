// Command hsfsimd serves the simulator over HTTP (see internal/server for
// the API):
//
//	hsfsimd -addr :8080 -max-concurrent 8 -memory-budget 8589934592
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/readyz
//	curl -s -X POST localhost:8080/analyze -d '{"qasm":"qreg q[2]; h q[0]; cx q[0],q[1];"}'
//
// Distributed roles (see internal/dist):
//
//	hsfsimd -addr :8081 -worker -join localhost:8080   # join a coordinator's fleet
//	hsfsimd -addr :8080 -dist-workers host1:8081,host2:8081
//	curl -s -X POST localhost:8080/simulate -d '{"qasm":"...","method":"joint","distribute":true}'
//
// A worker heartbeats its registration, so a silently dead worker drops out
// of the fleet after the registry TTL. Every daemon serves /dist/run, so any
// instance can act as a worker; -worker/-join only adds the registration
// loop.
//
// Observability: GET /metrics (on the API address) serves Prometheus text
// exposition; -progress logs a periodic counter summary; -debug-addr opens a
// second, private listener with pprof, expvar, and a runtime snapshot:
//
//	hsfsimd -addr :8080 -debug-addr 127.0.0.1:6060 -progress 30s
//	go tool pprof http://127.0.0.1:6060/debug/pprof/heap
//	curl -s 127.0.0.1:6060/debug/runtime
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes, in-flight
// simulations drain for up to -drain-timeout (their request contexts are
// canceled past that), and the process exits 0.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"hsfsim"
	"hsfsim/internal/dist"
	"hsfsim/internal/server"
)

// onListen, when non-nil, receives the bound address once the listener is
// up. Tests use it with "-addr 127.0.0.1:0" to discover the port.
var onListen func(net.Addr)

// onDebugListen mirrors onListen for the -debug-addr listener.
var onDebugListen func(net.Addr)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("hsfsimd", flag.ExitOnError)
	var (
		addr          = fs.String("addr", "127.0.0.1:8080", "listen address")
		maxConcurrent = fs.Int("max-concurrent", 0, "max simultaneous simulations (0: 2×GOMAXPROCS, <0: unlimited)")
		memoryBudget  = fs.Int64("memory-budget", 0, "admission memory budget in bytes (0: 16 GiB default, <0: unlimited)")
		maxPaths      = fs.Uint64("max-paths", 0, "reject plans with more Feynman paths than this (0: unlimited)")
		workers       = fs.Int("workers", 0, "worker goroutines per simulation (0: all CPUs)")
		backend       = fs.String("backend", "dense", "default HSF walker backend: dense | dd (requests may override)")
		maxTimeout    = fs.Duration("max-timeout", 10*time.Minute, "cap on per-request timeout_ms")
		drainTimeout  = fs.Duration("drain-timeout", 30*time.Second, "grace period for in-flight requests on shutdown")
		worker        = fs.Bool("worker", false, "register with a coordinator as a distributed worker (needs -join)")
		join          = fs.String("join", "", "coordinator address to register with (implies -worker)")
		advertise     = fs.String("advertise", "", "address advertised to the coordinator (default: the bound listen address)")
		rejoin        = fs.Duration("rejoin", 0, "retry cadence while the coordinator is unreachable (0: 5s)")
		distWorkers   = fs.String("dist-workers", "", "comma-separated worker addresses pinned for distributed /simulate")
		leaseTimeout  = fs.Duration("lease-timeout", 0, "distributed lease deadline as coordinator (0: 2m)")
		workerTTL     = fs.Duration("worker-ttl", 0, "registered-worker heartbeat TTL as coordinator (0: 1m)")
		heartbeat     = fs.Duration("heartbeat", 0, "heartbeat cadence advertised to registered workers (0: worker-ttl/3)")
		maxStrikes    = fs.Int("max-strikes", 0, "lease failures before a worker is retired as coordinator (0: 3)")
		debugAddr     = fs.String("debug-addr", "", "serve pprof + expvar + runtime stats on this separate listener (keep it private)")
		progressEvery = fs.Duration("progress", 0, "log a periodic counter summary at this interval (0: off)")
		jobStore      = fs.String("jobs-store", "", "directory for durable job state (manifests, checkpoints, results); empty keeps jobs in memory")
		jobRunners    = fs.Int("job-runners", 0, "concurrent async job batches (0: 2)")
		jobQueueCap   = fs.Int("job-queue-cap", 0, "max queued async jobs before 429 (0: 256)")
		tenantQuota   = fs.Int("tenant-quota", 0, "max outstanding jobs per tenant (0: unlimited)")
		tenantQuotas  = fs.String("tenant-quotas", "", "per-tenant overrides as name=N,name=N")
		jobFlush      = fs.Duration("job-flush", 0, "mid-run job checkpoint flush cadence (0: 2s)")
		traceBuffer   = fs.Int("trace-buffer", 0, "flight-recorder capacity in span events (0: 16384, <0: disable tracing)")
	)
	_ = fs.Parse(args)
	if *worker && *join == "" {
		logger := log.New(os.Stderr, "hsfsimd ", log.LstdFlags)
		logger.Printf("-worker needs -join <coordinator>")
		return 2
	}

	logger := log.New(os.Stderr, "hsfsimd ", log.LstdFlags)
	if _, err := hsfsim.ParseBackend(*backend); err != nil {
		logger.Printf("-backend %q: want dense or dd", *backend)
		return 2
	}
	quotas, err := parseQuotas(*tenantQuotas)
	if err != nil {
		logger.Printf("-tenant-quotas: %v", err)
		return 2
	}
	cfg := server.Config{
		MaxConcurrent:     *maxConcurrent,
		MemoryBudget:      *memoryBudget,
		MaxPaths:          *maxPaths,
		Workers:           *workers,
		Backend:           *backend,
		MaxTimeout:        *maxTimeout,
		Logger:            logger,
		DistLeaseTimeout:  *leaseTimeout,
		WorkerTTL:         *workerTTL,
		HeartbeatInterval: *heartbeat,
		DistMaxStrikes:    *maxStrikes,
		JobStoreDir:       *jobStore,
		JobRunners:        *jobRunners,
		JobQueueCap:       *jobQueueCap,
		TenantQuota:       *tenantQuota,
		TenantQuotas:      quotas,
		JobFlushInterval:  *jobFlush,
		TraceCapacity:     *traceBuffer,
	}
	if err := cfg.Validate(); err != nil {
		logger.Printf("%v", err)
		return 2
	}
	svc := server.NewService(cfg)
	for _, a := range strings.Split(*distWorkers, ",") {
		if a = strings.TrimSpace(a); a != "" {
			svc.AddWorker(a)
			logger.Printf("pinned distributed worker %s", a)
		}
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      10 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The diagnostics listener is separate from the API listener so pprof and
	// expvar never ride the public address; bind it to localhost or a
	// firewalled interface only — profiles leak code and heap contents.
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			logger.Printf("debug listen: %v", err)
			return 1
		}
		dsrv := &http.Server{Handler: debugMux(), ReadHeaderTimeout: 10 * time.Second}
		go func() { _ = dsrv.Serve(dln) }()
		defer dsrv.Close()
		if onDebugListen != nil {
			onDebugListen(dln.Addr())
		}
		logger.Printf("debug listener on %s (pprof, expvar, runtime; do not expose publicly)", dln.Addr())
	}

	if *progressEvery > 0 {
		go logProgress(ctx, logger, *progressEvery)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Printf("listen: %v", err)
		return 1
	}
	if onListen != nil {
		onListen(ln.Addr())
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	logger.Printf("listening on %s", ln.Addr())

	self := *advertise
	if self == "" {
		self = ln.Addr().String()
	}
	if *join != "" {
		go dist.Heartbeat(ctx, nil, *join, self, dist.HeartbeatOptions{
			RejoinInterval: *rejoin,
			Logger:         logger,
		})
	}

	select {
	case err := <-errCh:
		// The listener failed before any shutdown was requested.
		logger.Printf("serve: %v", err)
		return 1
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	if *join != "" {
		// Drain the worker role first: new leases are refused, in-flight
		// leases are canceled so their completed prefixes return as partials,
		// and the coordinator is told not to wait for our heartbeats to lapse.
		logger.Printf("draining worker role, returning unfinished lease prefixes")
		svc.Drain()
		dctx, dcancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := dist.DeregisterWorker(dctx, nil, *join, self); err != nil {
			logger.Printf("deregister: %v", err)
		}
		dcancel()
	}

	// Park the async job service: running walks flush their checkpoints and
	// stay "running" in the store, so the next start resumes them instead of
	// redoing the work.
	logger.Printf("closing job service, parking unfinished jobs for resume")
	jctx, jcancel := context.WithTimeout(context.Background(), *drainTimeout)
	if err := svc.CloseJobs(jctx); err != nil {
		logger.Printf("job drain incomplete: %v", err)
	}
	jcancel()

	logger.Printf("shutting down, draining in-flight requests (up to %v)", *drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		// The drain window expired: force-close, canceling request contexts.
		logger.Printf("drain incomplete: %v; closing", err)
		_ = srv.Close()
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("serve: %v", err)
		return 1
	}
	logger.Printf("shutdown complete")
	return 0
}

// parseQuotas parses the -tenant-quotas form "name=N,name=N".
func parseQuotas(s string) (map[string]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	out := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		var n int
		if _, err := fmt.Sscanf(val, "%d", &n); !ok || err != nil || name == "" || n < 0 {
			return nil, fmt.Errorf("bad quota %q (want name=N)", part)
		}
		out[name] = n
	}
	return out, nil
}

// debugMux builds the -debug-addr handler tree: pprof profiles, the expvar
// counters, and a JSON runtime snapshot. The handlers are registered
// explicitly so nothing here touches http.DefaultServeMux.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/runtime", handleDebugRuntime)
	return mux
}

// handleDebugRuntime reports heap and GC health as JSON: the numbers an
// operator checks before reaching for a full pprof heap profile.
func handleDebugRuntime(w http.ResponseWriter, r *http.Request) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"heap_alloc_bytes":    ms.HeapAlloc,
		"heap_sys_bytes":      ms.HeapSys,
		"heap_inuse_bytes":    ms.HeapInuse,
		"total_alloc_bytes":   ms.TotalAlloc,
		"mallocs":             ms.Mallocs,
		"frees":               ms.Frees,
		"gc_cycles":           ms.NumGC,
		"gc_pause_total_ns":   ms.PauseTotalNs,
		"gc_cpu_fraction":     ms.GCCPUFraction,
		"next_gc_bytes":       ms.NextGC,
		"goroutines":          runtime.NumGoroutine(),
		"gomaxprocs":          runtime.GOMAXPROCS(0),
		"last_gc_unix_nanos":  ms.LastGC,
		"stack_inuse_bytes":   ms.StackInuse,
		"heap_released_bytes": ms.HeapReleased,
		"heap_objects":        ms.HeapObjects,
	})
}

// logProgress periodically logs the load-relevant expvar counters, giving a
// headless daemon a liveness trace without any scraper attached.
func logProgress(ctx context.Context, logger *log.Logger, every time.Duration) {
	read := func(m *expvar.Map, key string) string {
		if v := m.Get(key); v != nil {
			return v.String()
		}
		return "0"
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	// Suppress repeats while the daemon is idle: a quiet process should not
	// fill its log with identical progress lines.
	var last string
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			m, ok := expvar.Get("hsfsimd").(*expvar.Map)
			if !ok {
				return
			}
			line := fmt.Sprintf("progress: requests=%s simulations=%s paths=%s in_flight=%s shed=%s worker_runs=%s leases=%s",
				read(m, "requests_total"), read(m, "simulations_total"),
				read(m, "paths_simulated_total"), read(m, "in_flight"),
				read(m, "shed_429_total"), read(m, "worker_runs_total"),
				read(m, "dist_leases_granted_total"))
			if line == last {
				continue
			}
			last = line
			logger.Print(line)
		}
	}
}
