// Command hsfsimd serves the simulator over HTTP (see internal/server for
// the API):
//
//	hsfsimd -addr :8080 -max-concurrent 8 -memory-budget 8589934592
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/readyz
//	curl -s -X POST localhost:8080/analyze -d '{"qasm":"qreg q[2]; h q[0]; cx q[0],q[1];"}'
//
// Distributed roles (see internal/dist):
//
//	hsfsimd -addr :8081 -worker -join localhost:8080   # join a coordinator's fleet
//	hsfsimd -addr :8080 -dist-workers host1:8081,host2:8081
//	curl -s -X POST localhost:8080/simulate -d '{"qasm":"...","method":"joint","distribute":true}'
//
// A worker heartbeats its registration, so a silently dead worker drops out
// of the fleet after the registry TTL. Every daemon serves /dist/run, so any
// instance can act as a worker; -worker/-join only adds the registration
// loop.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes, in-flight
// simulations drain for up to -drain-timeout (their request contexts are
// canceled past that), and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hsfsim"
	"hsfsim/internal/dist"
	"hsfsim/internal/server"
)

// onListen, when non-nil, receives the bound address once the listener is
// up. Tests use it with "-addr 127.0.0.1:0" to discover the port.
var onListen func(net.Addr)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("hsfsimd", flag.ExitOnError)
	var (
		addr          = fs.String("addr", "127.0.0.1:8080", "listen address")
		maxConcurrent = fs.Int("max-concurrent", 0, "max simultaneous simulations (0: 2×GOMAXPROCS, <0: unlimited)")
		memoryBudget  = fs.Int64("memory-budget", 0, "admission memory budget in bytes (0: 16 GiB default, <0: unlimited)")
		maxPaths      = fs.Uint64("max-paths", 0, "reject plans with more Feynman paths than this (0: unlimited)")
		workers       = fs.Int("workers", 0, "worker goroutines per simulation (0: all CPUs)")
		backend       = fs.String("backend", "dense", "default HSF walker backend: dense | dd (requests may override)")
		maxTimeout    = fs.Duration("max-timeout", 10*time.Minute, "cap on per-request timeout_ms")
		drainTimeout  = fs.Duration("drain-timeout", 30*time.Second, "grace period for in-flight requests on shutdown")
		worker        = fs.Bool("worker", false, "register with a coordinator as a distributed worker (needs -join)")
		join          = fs.String("join", "", "coordinator address to register with (implies -worker)")
		advertise     = fs.String("advertise", "", "address advertised to the coordinator (default: the bound listen address)")
		distWorkers   = fs.String("dist-workers", "", "comma-separated worker addresses pinned for distributed /simulate")
		leaseTimeout  = fs.Duration("lease-timeout", 0, "distributed lease deadline as coordinator (0: 2m)")
		workerTTL     = fs.Duration("worker-ttl", 0, "registered-worker heartbeat TTL as coordinator (0: 1m)")
	)
	_ = fs.Parse(args)
	if *worker && *join == "" {
		logger := log.New(os.Stderr, "hsfsimd ", log.LstdFlags)
		logger.Printf("-worker needs -join <coordinator>")
		return 2
	}

	logger := log.New(os.Stderr, "hsfsimd ", log.LstdFlags)
	if _, err := hsfsim.ParseBackend(*backend); err != nil {
		logger.Printf("-backend %q: want dense or dd", *backend)
		return 2
	}
	svc := server.NewService(server.Config{
		MaxConcurrent:    *maxConcurrent,
		MemoryBudget:     *memoryBudget,
		MaxPaths:         *maxPaths,
		Workers:          *workers,
		Backend:          *backend,
		MaxTimeout:       *maxTimeout,
		Logger:           logger,
		DistLeaseTimeout: *leaseTimeout,
		WorkerTTL:        *workerTTL,
	})
	for _, a := range strings.Split(*distWorkers, ",") {
		if a = strings.TrimSpace(a); a != "" {
			svc.AddWorker(a)
			logger.Printf("pinned distributed worker %s", a)
		}
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      10 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Printf("listen: %v", err)
		return 1
	}
	if onListen != nil {
		onListen(ln.Addr())
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	logger.Printf("listening on %s", ln.Addr())

	if *join != "" {
		self := *advertise
		if self == "" {
			self = ln.Addr().String()
		}
		go dist.Heartbeat(ctx, nil, *join, self, logger)
	}

	select {
	case err := <-errCh:
		// The listener failed before any shutdown was requested.
		logger.Printf("serve: %v", err)
		return 1
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	logger.Printf("shutting down, draining in-flight requests (up to %v)", *drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		// The drain window expired: force-close, canceling request contexts.
		logger.Printf("drain incomplete: %v; closing", err)
		_ = srv.Close()
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("serve: %v", err)
		return 1
	}
	logger.Printf("shutdown complete")
	return 0
}
