package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestDebugListener boots the daemon with -debug-addr and checks the private
// diagnostics listener: pprof index, expvar JSON, and the runtime snapshot
// must all serve, and none of them may leak onto the public API address.
func TestDebugListener(t *testing.T) {
	addrCh := make(chan net.Addr, 1)
	debugCh := make(chan net.Addr, 1)
	onListen = func(a net.Addr) { addrCh <- a }
	onDebugListen = func(a net.Addr) { debugCh <- a }
	defer func() { onListen, onDebugListen = nil, nil }()

	exitCh := make(chan int, 1)
	go func() {
		exitCh <- run([]string{"-addr", "127.0.0.1:0", "-debug-addr", "127.0.0.1:0"})
	}()
	var api, debug string
	select {
	case a := <-addrCh:
		api = "http://" + a.String()
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not start listening")
	}
	select {
	case a := <-debugCh:
		debug = "http://" + a.String()
	case <-time.After(5 * time.Second):
		t.Fatal("debug listener did not start")
	}

	get := func(url string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(body)
	}

	if resp, body := get(debug + "/debug/pprof/"); resp.StatusCode != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: status %d, body %.80q", resp.StatusCode, body)
	}
	if resp, _ := get(debug + "/debug/pprof/heap?debug=1"); resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof heap: status %d", resp.StatusCode)
	}
	if resp, body := get(debug + "/debug/vars"); resp.StatusCode != http.StatusOK || !strings.Contains(body, "hsfsimd") {
		t.Fatalf("debug expvar: status %d, body %.80q", resp.StatusCode, body)
	}

	resp, body := get(debug + "/debug/runtime")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug runtime: status %d", resp.StatusCode)
	}
	var rt map[string]any
	if err := json.Unmarshal([]byte(body), &rt); err != nil {
		t.Fatalf("debug runtime not JSON: %v", err)
	}
	for _, key := range []string{"heap_alloc_bytes", "gc_cycles", "goroutines", "gomaxprocs"} {
		if _, ok := rt[key]; !ok {
			t.Fatalf("debug runtime missing %q: %v", key, rt)
		}
	}

	// The public API listener must not serve the profiler.
	if resp, _ := get(api + "/debug/pprof/"); resp.StatusCode == http.StatusOK {
		t.Fatal("pprof reachable on the public API address")
	}
	// And both surfaces stay alive simultaneously.
	if resp, _ := get(api + "/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exitCh:
		if code != 0 {
			t.Fatalf("exit code %d, want 0", code)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}
