package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"syscall"
	"testing"
	"time"
)

// TestGracefulShutdownDrainsInFlight is the daemon's core acceptance test:
// SIGTERM during an in-flight /simulate must let the request finish (no
// dropped connection) and run() must return 0, not crash on
// http.ErrServerClosed.
func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	addrCh := make(chan net.Addr, 1)
	onListen = func(a net.Addr) { addrCh <- a }
	defer func() { onListen = nil }()

	exitCh := make(chan int, 1)
	go func() {
		exitCh <- run([]string{"-addr", "127.0.0.1:0", "-drain-timeout", "10s"})
	}()
	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a.String()
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not start listening")
	}

	// A moderately heavy standard-HSF job to keep in flight: 2^12 paths.
	qasm := "qreg q[10];\n"
	for i := 0; i < 12; i++ {
		qasm += fmt.Sprintf("rzz(0.3) q[%d],q[%d];\nrx(0.2) q[%d];\n", i%5, 5+i%5, i%5)
	}
	body, _ := json.Marshal(map[string]any{"qasm": qasm, "method": "standard", "cut_pos": 4})

	respCh := make(chan *http.Response, 1)
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.Post(base+"/simulate", "application/json", bytes.NewReader(body))
		if err != nil {
			errCh <- err
			return
		}
		respCh <- resp
	}()

	// Give the request a moment to be in flight, then deliver SIGTERM to
	// ourselves — signal.NotifyContext inside run() catches it.
	time.Sleep(50 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-errCh:
		t.Fatalf("in-flight request dropped during shutdown: %v", err)
	case resp := <-respCh:
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("in-flight request status %d, want 200", resp.StatusCode)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("in-flight request never completed")
	}

	select {
	case code := <-exitCh:
		if code != 0 {
			t.Fatalf("exit code %d, want 0", code)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}

	// The listener is gone: new connections must fail.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("daemon still accepting connections after shutdown")
	}
}
