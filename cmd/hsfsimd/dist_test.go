package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestWorkerJoinsCoordinator runs two daemons in-process: one coordinator
// and one -worker -join instance. The worker must appear in the
// coordinator's fleet via its heartbeat, and a distribute:true /simulate on
// the coordinator must complete through it.
func TestWorkerJoinsCoordinator(t *testing.T) {
	addrCh := make(chan net.Addr, 2)
	onListen = func(a net.Addr) { addrCh <- a }
	defer func() { onListen = nil }()

	waitAddr := func(what string) string {
		t.Helper()
		select {
		case a := <-addrCh:
			return a.String()
		case <-time.After(5 * time.Second):
			t.Fatalf("%s did not start listening", what)
			return ""
		}
	}

	exitCh := make(chan int, 2)
	go func() { exitCh <- run([]string{"-addr", "127.0.0.1:0"}) }()
	coAddr := waitAddr("coordinator")
	go func() { exitCh <- run([]string{"-addr", "127.0.0.1:0", "-worker", "-join", coAddr}) }()
	workerAddr := waitAddr("worker")

	// The heartbeat loop registers the worker; poll the fleet.
	base := "http://" + coAddr
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/dist/workers")
		if err != nil {
			t.Fatal(err)
		}
		var list struct {
			Workers []string `json:"workers"`
		}
		err = json.NewDecoder(resp.Body).Decode(&list)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(list.Workers) == 1 && list.Workers[0] == workerAddr {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker %s never registered; fleet %v", workerAddr, list.Workers)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// A distributed simulation through the registered worker.
	body, _ := json.Marshal(map[string]any{
		"qasm":       "qreg q[4];\nh q[0];\nh q[2];\nrzz(0.4) q[1],q[2];\nrzz(0.7) q[0],q[3];\n",
		"method":     "joint",
		"cut_pos":    1,
		"distribute": true,
	})
	resp, err := http.Post(base+"/simulate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sim struct {
		Distributed bool   `json:"distributed"`
		DistWorkers int    `json:"dist_workers"`
		Error       string `json:"error"`
	}
	err = json.NewDecoder(resp.Body).Decode(&sim)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("distributed simulate: status %d: %s", resp.StatusCode, sim.Error)
	}
	if !sim.Distributed || sim.DistWorkers != 1 {
		t.Fatalf("distributed simulate reply: %+v", sim)
	}

	// One SIGTERM shuts both daemons down cleanly.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case code := <-exitCh:
			if code != 0 {
				t.Fatalf("daemon exit code %d, want 0", code)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("daemon did not exit after SIGTERM")
		}
	}
}

// TestWorkerFlagRequiresJoin pins the usage error.
func TestWorkerFlagRequiresJoin(t *testing.T) {
	if code := run([]string{"-addr", "127.0.0.1:0", "-worker"}); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}

// TestDistWorkersFlagPinsFleet checks that -dist-workers seeds the registry.
func TestDistWorkersFlagPinsFleet(t *testing.T) {
	addrCh := make(chan net.Addr, 1)
	onListen = func(a net.Addr) { addrCh <- a }
	defer func() { onListen = nil }()

	exitCh := make(chan int, 1)
	go func() {
		exitCh <- run([]string{"-addr", "127.0.0.1:0", "-dist-workers", "hostA:1, hostB:2"})
	}()
	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a.String()
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not start listening")
	}

	resp, err := http.Get(base + "/dist/workers")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Workers []string `json:"workers"`
	}
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(list.Workers, ",") != "hostA:1,hostB:2" {
		t.Fatalf("fleet %v, want [hostA:1 hostB:2]", list.Workers)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exitCh:
		if code != 0 {
			t.Fatalf("exit code %d, want 0", code)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit")
	}
}
