// Command paths analyzes a circuit's cut structure without simulating: it
// reports the crossing gates, the joint-cut blocks found by each strategy,
// and the resulting path counts — a textual rendering of the paper's Fig. 6.
//
//	paths -cut 14 circuit.qasm
package main

import (
	"flag"
	"fmt"
	"os"

	"hsfsim/internal/cut"
	"hsfsim/internal/draw"
	"hsfsim/internal/qasm"
	"hsfsim/internal/reorder"
)

func main() {
	var (
		cutPos   = flag.Int("cut", -1, "cut position (default n/2-1)")
		maxBlock = flag.Int("max-block-qubits", 0, "block qubit budget (0: default)")
		render   = flag.Bool("draw", false, "render the joint-cut layout (Fig. 6 style)")
		bestCut  = flag.Bool("best-cut", false, "search for the best cut position")
		optimize = flag.Bool("reorder", false, "optimize the qubit order (paper's future work)")
		jsonOut  = flag.Bool("json", false, "emit the cascade plan summary as JSON and exit")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: paths [flags] circuit.qasm")
		flag.PrintDefaults()
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	fail(err)
	c, err := qasm.Parse(f)
	f.Close()
	fail(err)

	pos := *cutPos
	if pos < 0 {
		pos = c.NumQubits/2 - 1
	}
	p := cut.Partition{CutPos: pos}

	if *jsonOut {
		plan, err := cut.BuildPlan(c, cut.Options{Partition: p, Strategy: cut.StrategyCascade, MaxBlockQubits: *maxBlock})
		fail(err)
		fail(plan.WriteJSON(os.Stdout))
		return
	}

	crossing := cut.CrossingGateIndices(c, p)
	fmt.Printf("circuit: %d qubits, %d gates, cut after qubit %d\n", c.NumQubits, len(c.Gates), pos)
	fmt.Printf("crossing gates: %d\n\n", len(crossing))

	for _, strat := range []cut.Strategy{cut.StrategyNone, cut.StrategyCascade, cut.StrategyWindow} {
		plan, err := cut.BuildPlan(c, cut.Options{Partition: p, Strategy: strat, MaxBlockQubits: *maxBlock})
		fail(err)
		n, exact := plan.NumPaths()
		count := fmt.Sprintf("%d", n)
		if !exact {
			count = "overflow"
		}
		fmt.Printf("%-9s paths = 2^%-6.1f (%s)  cuts = %d (%d blocks + %d separate)\n",
			strat.String()+":", plan.Log2Paths(), count, len(plan.Cuts), plan.NumBlocks(), plan.NumSeparateCuts())
		if strat != cut.StrategyNone {
			for _, cp := range plan.Cuts {
				if cp.IsBlock() {
					fmt.Printf("    %-18s rank %-3d lower %v upper %v\n",
						cp.Label, cp.Rank(), cp.LowerQubits, cp.UpperQubits)
				}
			}
		}
		if *render && strat == cut.StrategyCascade {
			fmt.Println(draw.Circuit(c, plan))
			fmt.Println(draw.Legend())
		}
		fmt.Println()
	}

	if *bestCut {
		best, all, err := cut.FindBestCut(c, cut.StrategyCascade, *maxBlock, 0.25)
		fail(err)
		fmt.Println("cut-position search (cascade strategy):")
		for _, cand := range all {
			marker := " "
			if cand.CutPos == best.CutPos {
				marker = "*"
			}
			fmt.Printf("  %s cut %-3d crossing %-3d blocks %-2d paths 2^%.1f\n",
				marker, cand.CutPos, cand.Crossing, cand.Blocks, cand.Log2Paths)
		}
		fmt.Println()
	}

	if *optimize {
		res, err := reorder.Optimize(c, pos, reorder.Options{MaxBlockQubits: *maxBlock})
		fail(err)
		fmt.Println("qubit-order optimization (Kernighan-Lin + planner-scored swaps):")
		fmt.Printf("  crossing gates: %d -> %d\n", res.CrossingBefore, res.CrossingAfter)
		fmt.Printf("  joint paths:    2^%.1f -> 2^%.1f\n", res.Log2PathsBefore, res.Log2PathsAfter)
		fmt.Printf("  permutation:    %v\n", res.Perm)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "paths:", err)
		os.Exit(1)
	}
}
