// Command benchtab regenerates every table and figure of the paper's
// evaluation:
//
//	benchtab -table1           # Table I: method runtimes on QAOA instances
//	benchtab -table2           # Table II: instance specifications
//	benchtab -fig3b            # Fig. 3b: path count vs. depth
//	benchtab -cascades         # Ex. 4: CNOT cascade study
//	benchtab -supremacy        # Sec. V extension: grid circuits
//	benchtab -all              # everything
//
// The default -scale small runs laptop-sized analogues of the paper's
// instances (q = 16…20); -scale paper builds the exact q30–q33 family, which
// needs a machine comparable to the paper's (16 cores, 128 GB RAM).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"hsfsim/internal/bench"
	"hsfsim/internal/qaoa"
)

func main() {
	var (
		table1    = flag.Bool("table1", false, "regenerate Table I (runtimes)")
		table2    = flag.Bool("table2", false, "regenerate Table II (instance specs)")
		fig3b     = flag.Bool("fig3b", false, "regenerate Fig. 3b (paths vs. depth)")
		cascades  = flag.Bool("cascades", false, "regenerate the Ex. 4 cascade study")
		supremacy = flag.Bool("supremacy", false, "run the Sec. V supremacy extension")
		layers    = flag.Bool("layers", false, "run the multi-layer QAOA depth study")
		backends  = flag.Bool("backends", false, "compare array / DD / MPS backends")
		walker    = flag.Bool("walker", false, "compare dense vs DD HSF execution through the shared walker")
		manybody  = flag.Bool("manybody", false, "run the many-body Trotter study (ref [35])")
		all       = flag.Bool("all", false, "run every experiment")
		scale     = flag.String("scale", "small", "instance scale: small | medium | paper")
		reps      = flag.Int("reps", 3, "repetitions per Table I measurement")
		amps      = flag.Int("amplitudes", 1<<14, "number of output amplitudes")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-run timeout for standard HSF")
		workers   = flag.Int("workers", 0, "worker goroutines (0: all CPUs)")
		csvDir    = flag.String("csv", "", "also write each study as CSV into this directory")
	)
	flag.Parse()
	if *all {
		*table1, *table2, *fig3b, *cascades = true, true, true, true
		*supremacy, *layers, *backends, *manybody, *walker = true, true, true, true, true
	}
	if !*table1 && !*table2 && !*fig3b && !*cascades && !*supremacy && !*layers && !*backends && !*manybody && !*walker {
		flag.Usage()
		os.Exit(2)
	}

	var specs []qaoa.InstanceSpec
	switch *scale {
	case "small":
		specs = qaoa.ScaledInstances()
	case "medium":
		specs = qaoa.MediumInstances()
	case "paper":
		specs = qaoa.PaperInstances()
		fmt.Fprintln(os.Stderr, "warning: paper scale needs ~128 GB RAM and hours of runtime")
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (small | medium | paper)\n", *scale)
		os.Exit(2)
	}

	if *fig3b {
		points, err := bench.Fig3Series(bench.Fig3MaxDepth)
		fail(err)
		fmt.Println(bench.RenderFig3(points))
		saveCSV(*csvDir, "fig3b", func(w io.Writer) error { return bench.WriteFig3CSV(w, points) })
	}
	if *cascades {
		points, err := bench.CascadeSeries(8)
		fail(err)
		fmt.Println(bench.RenderCascades(points))
		saveCSV(*csvDir, "cascades", func(w io.Writer) error { return bench.WriteCascadesCSV(w, points) })
	}
	if *table2 {
		rows, err := bench.RunTable2(specs)
		fail(err)
		fmt.Println(bench.RenderTable2(rows))
		saveCSV(*csvDir, "table2", func(w io.Writer) error { return bench.WriteTable2CSV(w, rows) })
	}
	if *table1 {
		cfg := bench.RunConfig{
			MaxAmplitudes: *amps,
			Timeout:       *timeout,
			Repetitions:   *reps,
			Workers:       *workers,
		}
		rows, err := bench.RunTable1(specs, cfg)
		fail(err)
		fmt.Println(bench.RenderTable1(rows, cfg))
		saveCSV(*csvDir, "table1", func(w io.Writer) error { return bench.WriteTable1CSV(w, rows) })
	}
	if *supremacy {
		rows, err := bench.RunSupremacy(bench.DefaultSupremacyCases(), *amps, *timeout)
		fail(err)
		fmt.Println(bench.RenderSupremacy(rows, *timeout))
		saveCSV(*csvDir, "supremacy", func(w io.Writer) error { return bench.WriteSupremacyCSV(w, rows) })
	}
	if *layers {
		spec := specs[0]
		points, err := bench.LayerSeries(spec, 4, *amps, *timeout)
		fail(err)
		fmt.Println(bench.RenderLayers(spec, points, *timeout))
		saveCSV(*csvDir, "layers", func(w io.Writer) error { return bench.WriteLayersCSV(w, points) })
	}
	if *backends {
		cases, err := bench.DefaultBackendCases()
		fail(err)
		rows, err := bench.RunBackends(cases)
		fail(err)
		fmt.Println(bench.RenderBackends(rows))
		saveCSV(*csvDir, "backends", func(w io.Writer) error { return bench.WriteBackendsCSV(w, rows) })
	}
	if *walker {
		cases, err := bench.DefaultWalkerCases()
		fail(err)
		rows, err := bench.RunWalker(cases)
		fail(err)
		fmt.Println(bench.RenderWalker(rows))
		saveCSV(*csvDir, "walker", func(w io.Writer) error { return bench.WriteWalkerCSV(w, rows) })
	}
	if *manybody {
		const sites = 16
		points, err := bench.ManybodySeries(sites, 8, *amps, *timeout)
		fail(err)
		fmt.Println(bench.RenderManybody(sites, points, *timeout))
		saveCSV(*csvDir, "manybody", func(w io.Writer) error { return bench.WriteManybodyCSV(w, points) })
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

// saveCSV writes one study to <dir>/<name>.csv when -csv is set.
func saveCSV(dir, name string, write func(io.Writer) error) {
	if dir == "" {
		return
	}
	fail(os.MkdirAll(dir, 0o755))
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	fail(err)
	fail(write(f))
	fail(f.Close())
}
