// Command qaoagen generates QAOA MaxCut instances over stochastic block
// model graphs (the paper's Table II workload) and writes them as OpenQASM
// plus a JSON metadata sidecar:
//
//	qaoagen -size-a 15 -size-b 15 -p-intra 0.8 -p-inter 0.1 -seed 3001 -o q30-1
//
// produces q30-1.qasm and q30-1.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"hsfsim/internal/cut"
	"hsfsim/internal/qaoa"
	"hsfsim/internal/qasm"
)

type metadata struct {
	Name          string  `json:"name"`
	Qubits        int     `json:"qubits"`
	CutPos        int     `json:"cut_pos"`
	SizeA         int     `json:"size_a"`
	SizeB         int     `json:"size_b"`
	PIntra        float64 `json:"p_intra"`
	PInter        float64 `json:"p_inter"`
	Seed          int64   `json:"seed"`
	Edges         int     `json:"edges"`
	CrossingEdges int     `json:"crossing_edges"`
	TwoQubitGates int     `json:"two_qubit_gates"`
	Gamma         float64 `json:"gamma"`
	Beta          float64 `json:"beta"`
	StdLog2Paths  float64 `json:"standard_log2_paths"`
	JntLog2Paths  float64 `json:"joint_log2_paths"`
}

func main() {
	var (
		sizeA  = flag.Int("size-a", 8, "vertices in block A")
		sizeB  = flag.Int("size-b", 8, "vertices in block B")
		pIntra = flag.Float64("p-intra", 0.8, "intra-block edge probability")
		pInter = flag.Float64("p-inter", 0.1, "inter-block edge probability")
		seed   = flag.Int64("seed", 1, "graph seed")
		gamma  = flag.Float64("gamma", 0.7, "problem-layer angle")
		beta   = flag.Float64("beta", 0.4, "mixer-layer angle")
		layers = flag.Int("layers", 1, "QAOA layers")
		out    = flag.String("o", "instance", "output file prefix")
		dot    = flag.Bool("dot", false, "also write the problem graph as Graphviz DOT")
	)
	flag.Parse()

	spec := qaoa.InstanceSpec{
		Name:  *out,
		SizeA: *sizeA, SizeB: *sizeB,
		PIntra: *pIntra, PInter: *pInter,
		Seed: *seed,
	}
	params := qaoa.Params{}
	for i := 0; i < *layers; i++ {
		params.Gammas = append(params.Gammas, *gamma)
		params.Betas = append(params.Betas, *beta)
	}
	inst, err := spec.Generate(params)
	fail(err)

	p := cut.Partition{CutPos: spec.CutPos()}
	std, err := cut.BuildPlan(inst.Circuit, cut.Options{Partition: p, Strategy: cut.StrategyNone})
	fail(err)
	jnt, err := cut.BuildPlan(inst.Circuit, cut.Options{Partition: p, Strategy: cut.StrategyCascade})
	fail(err)

	qf, err := os.Create(*out + ".qasm")
	fail(err)
	fail(qasm.Write(qf, inst.Circuit))
	fail(qf.Close())

	meta := metadata{
		Name:   spec.Name,
		Qubits: spec.NumQubits(), CutPos: spec.CutPos(),
		SizeA: spec.SizeA, SizeB: spec.SizeB,
		PIntra: spec.PIntra, PInter: spec.PInter, Seed: spec.Seed,
		Edges:         inst.Graph.NumEdges(),
		CrossingEdges: inst.Graph.CrossingEdges(spec.CutPos()),
		TwoQubitGates: inst.Circuit.NumTwoQubitGates(),
		Gamma:         *gamma, Beta: *beta,
		StdLog2Paths: std.Log2Paths(),
		JntLog2Paths: jnt.Log2Paths(),
	}
	jf, err := os.Create(*out + ".json")
	fail(err)
	enc := json.NewEncoder(jf)
	enc.SetIndent("", "  ")
	fail(enc.Encode(meta))
	fail(jf.Close())

	if *dot {
		df, err := os.Create(*out + ".dot")
		fail(err)
		fail(inst.Graph.WriteDOT(df, spec.CutPos()))
		fail(df.Close())
	}

	fmt.Printf("wrote %s.qasm (%d qubits, %d gates) and %s.json\n",
		*out, inst.Circuit.NumQubits, len(inst.Circuit.Gates), *out)
	fmt.Printf("paths: standard 2^%.1f, joint 2^%.1f\n", std.Log2Paths(), jnt.Log2Paths())
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "qaoagen:", err)
		os.Exit(1)
	}
}
