// Command hsfsim simulates an OpenQASM 2.0 circuit with any of the three
// methods and prints amplitudes plus run statistics:
//
//	hsfsim -method joint -cut 7 -amplitudes 16 circuit.qasm
//	hsfsim -method schrodinger circuit.qasm
//	hsfsim -method standard -cut 7 -timeout 1h circuit.qasm
//	hsfsim -method joint -cut 7 -backend dd circuit.qasm
//	hsfsim -method joint -cut 7 -progress 1s -report run.json circuit.qasm
//
// Interrupting a run (Ctrl-C / SIGTERM) cancels it cooperatively; with
// -checkpoint set, an interrupted or failed HSF run snapshots its completed
// prefix tasks so a later -resume run picks up where it left off.
//
// With -distribute, the HSF prefix-task space is sharded across hsfsimd
// worker daemons instead of local goroutines:
//
//	hsfsim -method joint -cut 7 -distribute host1:8081,host2:8081 circuit.qasm
//
// The same -checkpoint/-resume flags apply: a run that fails mid-way (all
// workers lost, Ctrl-C) snapshots the merged partial state for a later
// -distribute or local -resume.
//
// The submit/status/watch/result/cancel/jobs subcommands run circuits as
// asynchronous jobs on a hsfsimd daemon instead of simulating locally; see
// jobs.go.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/cmplx"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hsfsim"
	"hsfsim/internal/dd"
	"hsfsim/internal/dist"
	"hsfsim/internal/hsf"
	"hsfsim/internal/mps"
	"hsfsim/internal/qasm"
	"hsfsim/internal/telemetry/trace"
)

// -trace wiring: one process-wide flight recorder plus a root span that
// every engine/coordinator span parents under. Nil when -trace is unset,
// which makes every hook below a no-op.
var (
	traceRec  *trace.Recorder
	traceRoot trace.Span
)

// withTrace attaches the recorder and root span to a run context so the
// engine (and, distributed, the coordinator) record into the flight
// recorder.
func withTrace(ctx context.Context) context.Context {
	if traceRec == nil {
		return ctx
	}
	return trace.NewContext(ctx, traceRec, traceRoot.Context())
}

// writeTrace ends the root span and dumps the recorder as Chrome
// trace-event JSON, loadable in chrome://tracing.
func writeTrace(path string) {
	if traceRec == nil {
		return
	}
	traceRoot.End()
	f, err := os.Create(path)
	fail(err)
	err = trace.WriteChromeTrace(f, traceRec.Snapshot())
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	fail(err)
	fmt.Fprintf(os.Stderr, "hsfsim: trace written to %s\n", path)
}

func main() {
	// Job subcommands talk to a running hsfsimd instead of simulating
	// locally; they parse their own flags (see jobs.go).
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "submit", "status", "watch", "result", "cancel", "jobs":
			jobsCLI(os.Args[1], os.Args[2:])
			return
		}
	}
	var (
		method    = flag.String("method", "joint", "schrodinger | standard | joint")
		cutPos    = flag.Int("cut", -1, "cut position (last lower-partition qubit); default n/2-1")
		amps      = flag.Int("amplitudes", 16, "number of amplitudes to print (0: all)")
		maxAmps   = flag.Int("max-amplitudes", 0, "number of amplitudes to compute (0: all)")
		workers   = flag.Int("workers", 0, "worker goroutines (0: all CPUs)")
		timeout   = flag.Duration("timeout", 0, "abort after this duration (0: none)")
		strategy  = flag.String("blocks", "cascade", "joint grouping: cascade | window")
		maxBlock  = flag.Int("max-block-qubits", 0, "joint block qubit budget (0: default)")
		analytic  = flag.Bool("analytic", false, "use analytic cascade decompositions")
		quiet     = flag.Bool("quiet", false, "print statistics only, no amplitudes")
		backend   = flag.String("backend", "dense", "state backend: dense (alias array) | dd; schrodinger also accepts mps")
		engine    = flag.String("engine", "", "deprecated alias of -backend for HSF runs: array | dd")
		memBudget = flag.Int64("memory-budget", 0, "admission memory budget in bytes (0: 16 GiB default, <0: unlimited)")
		maxPaths  = flag.Uint64("max-paths", 0, "reject plans with more Feynman paths than this (0: unlimited)")
		ckptPath  = flag.String("checkpoint", "", "write a resume checkpoint here if the run is interrupted")
		resume    = flag.String("resume", "", "resume an HSF run from this checkpoint file")
		distrib   = flag.String("distribute", "", "comma-separated hsfsimd worker addresses; shard the HSF run across them")
		storeDir  = flag.String("store", "", "durable checkpoint directory for distributed runs (enables takeover)")
		runID     = flag.String("run-id", "", "run identifier inside -store (default: derived from the plan)")
		takeover  = flag.Bool("takeover", false, "resume the -run-id run from -store on a fresh coordinator (no circuit file needed)")
		fusion    = flag.Int("fusion", 0, "max fused gate qubits (0: default, <0: disable fusion and run per-gate structure kernels)")
		report    = flag.String("report", "", "write a JSON telemetry report (spans, counters, histograms) here after the run")
		progress  = flag.Duration("progress", 0, "print a live progress line to stderr at this interval (0: off)")
		tracePath = flag.String("trace", "", "write a Chrome trace-event JSON dump (load in chrome://tracing) here after the run")
	)
	flag.Parse()
	if *takeover {
		// The job definition lives in the store's manifest; a circuit file on
		// the command line would be ignored, so reject the ambiguity.
		switch {
		case *storeDir == "" || *runID == "":
			fail(fmt.Errorf("-takeover needs -store and -run-id"))
		case *distrib == "":
			fail(fmt.Errorf("-takeover needs -distribute (the fresh worker fleet)"))
		case flag.NArg() != 0:
			fail(fmt.Errorf("-takeover reads the circuit from the store manifest; drop the circuit argument"))
		}
		runTakeover(*storeDir, *runID, *distrib, *timeout, *ckptPath, *amps, *quiet)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hsfsim [flags] circuit.qasm")
		flag.PrintDefaults()
		os.Exit(2)
	}

	src, err := os.ReadFile(flag.Arg(0))
	fail(err)
	c, err := qasm.Parse(strings.NewReader(string(src)))
	fail(err)

	opts := hsfsim.Options{
		MaxAmplitudes:       *maxAmps,
		Workers:             *workers,
		Timeout:             *timeout,
		MaxBlockQubits:      *maxBlock,
		UseAnalyticCascades: *analytic,
		MemoryBudget:        *memBudget,
		MaxPaths:            *maxPaths,
		FusionMaxQubits:     *fusion,
	}
	switch *method {
	case "schrodinger":
		opts.Method = hsfsim.Schrodinger
	case "standard":
		opts.Method = hsfsim.StandardHSF
	case "joint":
		opts.Method = hsfsim.JointHSF
	default:
		fail(fmt.Errorf("unknown method %q", *method))
	}
	switch *strategy {
	case "cascade":
		opts.BlockStrategy = hsfsim.BlockCascade
	case "window":
		opts.BlockStrategy = hsfsim.BlockWindow
	default:
		fail(fmt.Errorf("unknown block strategy %q", *strategy))
	}
	if opts.Method != hsfsim.Schrodinger {
		if c.NumQubits < 2 {
			fail(fmt.Errorf("HSF methods need at least 2 qubits to bipartition (circuit has %d); use -method schrodinger", c.NumQubits))
		}
		opts.CutPos = *cutPos
		if opts.CutPos < 0 {
			opts.CutPos = c.NumQubits/2 - 1
		}
		if opts.CutPos > c.NumQubits-2 {
			fail(fmt.Errorf("cut position %d out of range [0, %d] for %d qubits", opts.CutPos, c.NumQubits-2, c.NumQubits))
		}
		name := *backend
		if *engine != "" {
			name = *engine // deprecated spelling wins when set
		}
		b, err := hsfsim.ParseBackend(name)
		if err != nil {
			fail(fmt.Errorf("HSF methods run on the dense or dd backend, got %q", name))
		}
		opts.Backend = b
	}

	// Telemetry is opt-in: -report attaches a recorder, -progress a live
	// ticker. Both ride hsfsim.Options, so local and distributed runs share
	// the wiring.
	var rec *hsfsim.TelemetryRecorder
	if *report != "" {
		rec = hsfsim.NewTelemetryRecorder()
		opts.Telemetry = rec
	}
	stopProgress := func() {}
	if *progress > 0 {
		opts.Progress = new(hsfsim.ProgressTracker)
		stopProgress = opts.Progress.Go(os.Stderr, *progress) // idempotent
		defer stopProgress()
	}
	if *tracePath != "" {
		traceRec = trace.NewRecorder(0)
		traceRoot = traceRec.Start(trace.SpanContext{}, "hsfsim")
	}

	if *distrib != "" {
		if opts.Method == hsfsim.Schrodinger {
			fail(fmt.Errorf("-distribute needs an HSF method (standard | joint)"))
		}
		runDistributed(string(src), c, &opts, *method, *strategy, *distrib, *ckptPath, *resume, *storeDir, *runID, *amps, *quiet)
		writeReport(*report, rec)
		writeTrace(*tracePath)
		return
	}

	// An interrupted HSF run can snapshot its completed prefix tasks.
	var ckptFile *os.File
	if *ckptPath != "" {
		ckptFile, err = os.Create(*ckptPath)
		fail(err)
		opts.CheckpointWriter = ckptFile
	}
	if *resume != "" {
		rf, err := os.Open(*resume)
		fail(err)
		defer rf.Close()
		opts.ResumeFrom = rf
	}

	// Ctrl-C / SIGTERM cancel the simulation cooperatively.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx = withTrace(ctx)

	var res *hsfsim.Result
	if opts.Method == hsfsim.Schrodinger && *backend != "array" && *backend != "dense" {
		res, err = simulateAlternateBackend(c, *backend, *maxAmps)
	} else {
		res, err = hsfsim.SimulateContext(ctx, c, opts)
	}
	if ckptFile != nil {
		if cerr := ckptFile.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if err == nil {
			// The run completed; the empty checkpoint file is useless.
			os.Remove(*ckptPath)
		} else if errors.Is(err, context.Canceled) || errors.Is(err, hsfsim.ErrTimeout) {
			fmt.Fprintf(os.Stderr, "hsfsim: interrupted; checkpoint written to %s (resume with -resume)\n", *ckptPath)
		}
	}
	fail(err)
	stopProgress()
	writeReport(*report, rec)
	writeTrace(*tracePath)
	if opts.Method == hsfsim.Schrodinger && *backend != "array" && *backend != "dense" {
		fmt.Printf("backend:         %s\n", *backend)
	} else if opts.Method != hsfsim.Schrodinger && opts.Backend != hsfsim.BackendDense {
		fmt.Printf("backend:         %v\n", opts.Backend)
	}

	fmt.Printf("method:          %v\n", res.Method)
	fmt.Printf("qubits:          %d\n", c.NumQubits)
	fmt.Printf("gates:           %d (%d two-qubit)\n", len(c.Gates), c.NumTwoQubitGates())
	if res.Method != hsfsim.Schrodinger {
		fmt.Printf("cut position:    %d\n", opts.CutPos)
		fmt.Printf("cuts:            %d (%d blocks + %d separate)\n", res.NumCuts, res.NumBlocks, res.NumSeparateCuts)
		fmt.Printf("paths:           2^%.1f (%d)\n", res.Log2Paths, res.NumPaths)
	}
	fmt.Printf("preprocessing:   %v\n", res.PreprocessTime)
	fmt.Printf("simulation:      %v\n", res.SimTime)
	if *quiet {
		return
	}
	n := *amps
	if n <= 0 || n > len(res.Amplitudes) {
		n = len(res.Amplitudes)
	}
	fmt.Println("amplitudes:")
	for i := 0; i < n; i++ {
		a := res.Amplitudes[i]
		fmt.Printf("  |%0*b>  % .6f%+.6fi   p=%.6f\n", c.NumQubits, i, real(a), imag(a), cmplx.Abs(a)*cmplx.Abs(a))
	}
}

// writeReport serializes the recorder's telemetry report to path as indented
// JSON; the report reconciles with the printed run statistics (paths, spans,
// kernel classes, latency histograms).
func writeReport(path string, rec *hsfsim.TelemetryRecorder) {
	if path == "" || rec == nil {
		return
	}
	data, err := json.MarshalIndent(rec.Report(), "", "  ")
	fail(err)
	fail(os.WriteFile(path, append(data, '\n'), 0o644))
}

// runDistributed drives the job as a coordinator over hsfsimd workers: the
// prefix-task space is sharded into leased batches, failed workers have
// their leases reassigned, and the merged amplitudes print exactly like a
// local run.
func runDistributed(src string, c *hsfsim.Circuit, opts *hsfsim.Options, method, strategy, workersCSV, ckptPath, resumePath, storeDir, runID string, ampsN int, quiet bool) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx = withTrace(ctx)
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, opts.Timeout, hsfsim.ErrTimeout)
		defer cancel()
	}

	job := &dist.Job{
		QASM:           src,
		Method:         method,
		CutPos:         opts.CutPos,
		Strategy:       strategy,
		MaxBlockQubits: opts.MaxBlockQubits,
		UseAnalytic:    opts.UseAnalyticCascades,
		MaxAmplitudes:  opts.MaxAmplitudes,
	}
	if opts.Backend != hsfsim.BackendDense {
		// Dense stays the absent field, so dense jobs interoperate with
		// workers predating the backend field.
		job.Backend = opts.Backend.String()
	}
	co, err := dist.New(dist.Config{
		Transport: &dist.HTTPTransport{},
		Logger:    log.New(os.Stderr, "hsfsim dist ", log.LstdFlags),
	})
	fail(err)
	for _, a := range strings.Split(workersCSV, ",") {
		if a = strings.TrimSpace(a); a != "" {
			co.AddWorker(a)
		}
	}

	var ropts dist.RunOptions
	if storeDir != "" {
		// Durable checkpoints: a later hsfsim -takeover -store ... -run-id ...
		// resumes this run even if this coordinator process dies.
		st, err := dist.NewDirStore(storeDir)
		fail(err)
		ropts.Store = st
		ropts.RunID = runID
	}
	// Same recorder/tracker as a local run: the coordinator fills the lease
	// timeline and advances progress as batches merge.
	ropts.Telemetry = opts.Telemetry
	ropts.Progress = opts.Progress
	if resumePath != "" {
		rf, err := os.Open(resumePath)
		fail(err)
		ck, err := hsf.ReadCheckpoint(rf)
		rf.Close()
		fail(err)
		ropts.Resume = ck
	}
	var ckptFile *os.File
	if ckptPath != "" {
		f, err := os.Create(ckptPath)
		fail(err)
		ckptFile = f
		ropts.CheckpointWriter = ckptFile
	}

	start := time.Now()
	res, err := co.Run(ctx, job, ropts)
	elapsed := time.Since(start)
	if ckptFile != nil {
		if cerr := ckptFile.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if err == nil {
			os.Remove(ckptPath)
		} else {
			fmt.Fprintf(os.Stderr, "hsfsim: distributed run failed; checkpoint written to %s (resume with -resume)\n", ckptPath)
		}
	}
	fail(err)

	fmt.Printf("method:          %s-hsf (distributed)\n", method)
	fmt.Printf("qubits:          %d\n", c.NumQubits)
	fmt.Printf("gates:           %d (%d two-qubit)\n", len(c.Gates), c.NumTwoQubitGates())
	fmt.Printf("cut position:    %d\n", opts.CutPos)
	fmt.Printf("cuts:            %d (%d blocks + %d separate)\n", res.NumCuts, res.NumBlocks, res.NumSeparateCuts)
	fmt.Printf("paths:           2^%.1f (%d)\n", res.Log2Paths, res.NumPaths)
	fmt.Printf("workers:         %d (%d batches over %d split levels, %d reassignments)\n",
		res.Workers, res.Batches, res.SplitLevels, res.Reassignments)
	fmt.Printf("simulation:      %v\n", elapsed)
	if quiet {
		return
	}
	n := ampsN
	if n <= 0 || n > len(res.Amplitudes) {
		n = len(res.Amplitudes)
	}
	fmt.Println("amplitudes:")
	for i := 0; i < n; i++ {
		a := res.Amplitudes[i]
		fmt.Printf("  |%0*b>  % .6f%+.6fi   p=%.6f\n", c.NumQubits, i, real(a), imag(a), cmplx.Abs(a)*cmplx.Abs(a))
	}
}

// runTakeover resumes a durable distributed run on a fresh coordinator: the
// job and latest checkpoint are loaded from the store, already-merged prefix
// tasks are skipped, and the remainder is sharded across the given fleet.
func runTakeover(storeDir, runID, workersCSV string, timeout time.Duration, ckptPath string, ampsN int, quiet bool) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, timeout, hsfsim.ErrTimeout)
		defer cancel()
	}

	store, err := dist.NewDirStore(storeDir)
	fail(err)
	m, err := store.LoadManifest(runID)
	fail(err)
	c, err := qasm.Parse(strings.NewReader(m.Job.QASM))
	fail(err)

	co, err := dist.New(dist.Config{
		Transport: &dist.HTTPTransport{},
		Logger:    log.New(os.Stderr, "hsfsim dist ", log.LstdFlags),
	})
	fail(err)
	for _, a := range strings.Split(workersCSV, ",") {
		if a = strings.TrimSpace(a); a != "" {
			co.AddWorker(a)
		}
	}

	var ropts dist.RunOptions
	var ckptFile *os.File
	if ckptPath != "" {
		ckptFile, err = os.Create(ckptPath)
		fail(err)
		ropts.CheckpointWriter = ckptFile
	}

	start := time.Now()
	res, err := co.Takeover(ctx, store, runID, ropts)
	elapsed := time.Since(start)
	if ckptFile != nil {
		if cerr := ckptFile.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if err == nil {
			os.Remove(ckptPath)
		}
	}
	fail(err)

	fmt.Printf("method:          %s-hsf (takeover of run %s)\n", m.Job.Method, runID)
	fmt.Printf("qubits:          %d\n", c.NumQubits)
	fmt.Printf("cuts:            %d (%d blocks + %d separate)\n", res.NumCuts, res.NumBlocks, res.NumSeparateCuts)
	fmt.Printf("paths:           2^%.1f (%d)\n", res.Log2Paths, res.NumPaths)
	fmt.Printf("workers:         %d (%d batches over %d split levels, %d reassignments)\n",
		res.Workers, res.Batches, res.SplitLevels, res.Reassignments)
	fmt.Printf("simulation:      %v\n", elapsed)
	if quiet {
		return
	}
	n := ampsN
	if n <= 0 || n > len(res.Amplitudes) {
		n = len(res.Amplitudes)
	}
	fmt.Println("amplitudes:")
	for i := 0; i < n; i++ {
		a := res.Amplitudes[i]
		fmt.Printf("  |%0*b>  % .6f%+.6fi   p=%.6f\n", c.NumQubits, i, real(a), imag(a), cmplx.Abs(a)*cmplx.Abs(a))
	}
}

// simulateAlternateBackend runs Schrödinger simulation on the decision-
// diagram or MPS representation and adapts the output to hsfsim.Result.
func simulateAlternateBackend(c *hsfsim.Circuit, backend string, maxAmps int) (*hsfsim.Result, error) {
	m := maxAmps
	if m <= 0 || m > 1<<c.NumQubits {
		m = 1 << c.NumQubits
	}
	start := time.Now()
	amps := make([]complex128, m)
	switch backend {
	case "dd":
		d := dd.New(c.NumQubits, 0)
		if err := d.ApplyCircuit(c); err != nil {
			return nil, err
		}
		for x := range amps {
			amps[x] = d.Amplitude(uint64(x))
		}
		fmt.Printf("dd nodes:        %d\n", d.NumNodes())
	case "mps":
		t := mps.New(c.NumQubits)
		if err := t.ApplyCircuit(c); err != nil {
			return nil, err
		}
		for x := range amps {
			amps[x] = t.Amplitude(uint64(x))
		}
		fmt.Printf("mps max bond:    %d\n", t.MaxBondDim())
	default:
		return nil, fmt.Errorf("unknown backend %q", backend)
	}
	return &hsfsim.Result{
		Amplitudes: amps,
		Method:     hsfsim.Schrodinger,
		NumPaths:   1,
		SimTime:    time.Since(start),
	}, nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hsfsim:", err)
		os.Exit(1)
	}
}
