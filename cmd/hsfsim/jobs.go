// Async job subcommands against a running hsfsimd daemon:
//
//	hsfsim submit -server localhost:8080 -tenant alice -priority 5 circuit.qasm
//	hsfsim jobs   -server localhost:8080 [-tenant alice]
//	hsfsim status -server localhost:8080 job-0123456789abcdef
//	hsfsim watch  -server localhost:8080 job-0123456789abcdef
//	hsfsim result -server localhost:8080 -amplitudes 16 job-0123456789abcdef
//	hsfsim cancel -server localhost:8080 job-0123456789abcdef
//
// submit enqueues and returns immediately with a job ID; watch follows the
// job's SSE stream (progress ticks, then amplitudes) until it finishes.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/cmplx"
	"net/http"
	"os"
	"strings"
	"time"

	"hsfsim/internal/jobs"
	"hsfsim/internal/server"
)

// jobsCLI dispatches one job subcommand. Flags are shared across commands;
// each ignores the ones it has no use for.
func jobsCLI(cmd string, args []string) {
	fs := flag.NewFlagSet("hsfsim "+cmd, flag.ExitOnError)
	var (
		srv      = fs.String("server", "127.0.0.1:8080", "hsfsimd address (host:port or URL)")
		tenant   = fs.String("tenant", "", "tenant name (empty: the default tenant)")
		priority = fs.Int("priority", 0, "scheduling priority; higher runs first")
		method   = fs.String("method", "joint", "schrodinger | standard | joint")
		cutPos   = fs.Int("cut", -1, "cut position (last lower-partition qubit); default n/2-1")
		ampsN    = fs.Int("amplitudes", 16, "number of amplitudes to print (0: all)")
		maxAmps  = fs.Int("max-amplitudes", 0, "number of amplitudes to compute (0: all)")
		strategy = fs.String("blocks", "cascade", "joint grouping: cascade | window")
		maxBlock = fs.Int("max-block-qubits", 0, "joint block qubit budget (0: default)")
		backend  = fs.String("backend", "", "HSF walker backend: dense | dd (empty: daemon default)")
		timeout  = fs.Duration("timeout", 0, "job execution timeout (0: none)")
		distrib  = fs.Bool("distribute", false, "run the job on the daemon's distributed worker fleet")
	)
	_ = fs.Parse(args)
	base := *srv
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}

	switch cmd {
	case "submit":
		if fs.NArg() != 1 {
			fail(fmt.Errorf("usage: hsfsim submit [flags] circuit.qasm"))
		}
		src, err := os.ReadFile(fs.Arg(0))
		fail(err)
		req := server.JobSubmitRequest{
			SimulateRequest: server.SimulateRequest{
				QASM:           string(src),
				Method:         *method,
				MaxAmplitudes:  *maxAmps,
				Strategy:       *strategy,
				MaxBlockQubits: *maxBlock,
				TimeoutMillis:  int(*timeout / time.Millisecond),
				Backend:        *backend,
				Distribute:     *distrib,
			},
			Tenant:   *tenant,
			Priority: *priority,
		}
		if *cutPos >= 0 {
			req.CutPos = cutPos
		}
		var snap jobs.Snapshot
		doJSON(http.MethodPost, base+"/jobs", req, &snap)
		printSnapshot(&snap)
		fmt.Printf("follow with:  hsfsim watch -server %s %s\n", *srv, snap.ID)
	case "jobs":
		url := base + "/jobs"
		if *tenant != "" {
			url += "?tenant=" + *tenant
		}
		var list server.JobListResponse
		doJSON(http.MethodGet, url, nil, &list)
		if len(list.Jobs) == 0 {
			fmt.Println("no jobs")
			return
		}
		fmt.Printf("%-22s %-10s %-10s %4s %6s %s\n", "ID", "TENANT", "STATE", "PRIO", "BATCH", "CREATED")
		for _, s := range list.Jobs {
			fmt.Printf("%-22s %-10s %-10s %4d %6d %s\n",
				s.ID, s.Tenant, s.State, s.Priority, s.BatchSize, s.Created.Format(time.RFC3339))
		}
	case "status":
		var snap jobs.Snapshot
		doJSON(http.MethodGet, base+"/jobs/"+jobArg(fs), nil, &snap)
		printSnapshot(&snap)
	case "cancel":
		var snap jobs.Snapshot
		doJSON(http.MethodPost, base+"/jobs/"+jobArg(fs)+"/cancel", struct{}{}, &snap)
		printSnapshot(&snap)
	case "result":
		var resp server.SimulateResponse
		doJSON(http.MethodGet, base+"/jobs/"+jobArg(fs)+"/result", nil, &resp)
		fmt.Printf("method:          %s\n", resp.Method)
		fmt.Printf("qubits:          %d\n", resp.NumQubits)
		fmt.Printf("paths simulated: %d\n", resp.PathsSimulated)
		fmt.Printf("simulation:      %.3fms\n", resp.SimMs)
		n := *ampsN
		if n <= 0 || n > len(resp.Amplitudes) {
			n = len(resp.Amplitudes)
		}
		fmt.Println("amplitudes:")
		for i := 0; i < n; i++ {
			printAmp(resp.NumQubits, i, resp.Amplitudes[i].Re, resp.Amplitudes[i].Im)
		}
	case "watch":
		watchJob(base, jobArg(fs), *ampsN)
	default:
		fail(fmt.Errorf("unknown subcommand %q", cmd))
	}
}

func jobArg(fs interface {
	NArg() int
	Arg(int) string
}) string {
	if fs.NArg() != 1 {
		fail(fmt.Errorf("need exactly one job ID argument"))
	}
	return fs.Arg(0)
}

func printSnapshot(s *jobs.Snapshot) {
	fmt.Printf("job:          %s\n", s.ID)
	fmt.Printf("tenant:       %s (priority %d)\n", s.Tenant, s.Priority)
	fmt.Printf("state:        %s\n", s.State)
	if s.PathsTotal > 0 {
		fmt.Printf("progress:     %d/%d paths\n", s.PathsDone, s.PathsTotal)
	}
	if s.BatchSize > 1 || s.PlanShared {
		fmt.Printf("batch:        %d jobs, plan shared: %t\n", s.BatchSize, s.PlanShared)
	}
	if s.Resumed {
		fmt.Printf("resumed:      from a durable checkpoint\n")
	}
	if s.Error != "" {
		fmt.Printf("error:        %s\n", s.Error)
	}
}

func printAmp(numQubits, i int, re, im float64) {
	a := complex(re, im)
	fmt.Printf("  |%0*b>  % .6f%+.6fi   p=%.6f\n", numQubits, i, re, im, cmplx.Abs(a)*cmplx.Abs(a))
}

// watchJob follows a job's SSE stream: progress lines to stderr while it
// runs, then the streamed amplitude chunks and final state to stdout. Exits
// nonzero if the job fails.
func watchJob(base, id string, ampsN int) {
	// Seed the register width from a snapshot: a job that is already done
	// streams its amplitude chunks immediately, with no progress event to
	// carry num_qubits first.
	var seed jobs.Snapshot
	doJSON(http.MethodGet, base+"/jobs/"+id, nil, &seed)

	resp, err := http.Get(base + "/jobs/" + id + "/events")
	fail(err)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fail(fmt.Errorf("watch %s: %s", id, httpErrBody(resp)))
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var event string
	var data []byte
	numQubits := seed.NumQubits
	printed := 0
	headerOut := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "":
			if event == "" {
				continue
			}
			switch event {
			case "progress":
				var s jobs.Snapshot
				if json.Unmarshal(data, &s) == nil {
					if s.NumQubits > 0 {
						numQubits = s.NumQubits
					}
					fmt.Fprintf(os.Stderr, "\rjob %s: %-8s %d/%d paths", s.ID, s.State, s.PathsDone, s.PathsTotal)
				}
			case "amplitudes":
				var ch server.AmplitudeChunk
				if json.Unmarshal(data, &ch) == nil {
					if !headerOut {
						fmt.Fprintln(os.Stderr)
						fmt.Println("amplitudes:")
						headerOut = true
					}
					for i, a := range ch.Amplitudes {
						if ampsN > 0 && printed >= ampsN {
							break
						}
						printAmp(numQubits, ch.Offset+i, a.Re, a.Im)
						printed++
					}
				}
			default: // terminal event, named after the final state
				var s jobs.Snapshot
				if json.Unmarshal(data, &s) == nil {
					if !headerOut {
						fmt.Fprintln(os.Stderr)
					}
					printSnapshot(&s)
					if s.State == jobs.StateFailed {
						os.Exit(1)
					}
				}
				return
			}
			event, data = "", nil
		}
	}
	fail(fmt.Errorf("watch %s: stream ended before the job finished", id))
}

// doJSON performs one JSON request/response round trip, exiting with the
// server's error envelope (and Retry-After hint, if any) on a 4xx/5xx.
func doJSON(method, url string, in, out any) {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		fail(err)
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, body)
	fail(err)
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	fail(err)
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		fail(fmt.Errorf("%s %s: %s", method, url, httpErrBody(resp)))
	}
	if out != nil {
		fail(json.NewDecoder(resp.Body).Decode(out))
	}
}

// httpErrBody renders an error response: the JSON envelope's message when
// present, with the Retry-After backoff hint appended for shed requests.
func httpErrBody(resp *http.Response) string {
	msg := resp.Status
	var eb struct {
		Error string `json:"error"`
	}
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&eb) == nil && eb.Error != "" {
		msg = fmt.Sprintf("%s: %s", resp.Status, eb.Error)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		msg += fmt.Sprintf(" (retry after %ss)", ra)
	}
	return msg
}
