// Benchmarks regenerating the paper's tables and figures. Each benchmark
// maps to one experiment of the evaluation (see DESIGN.md's experiment
// index); cmd/benchtab renders the same data as formatted tables.
//
//	go test -bench=TableI -benchmem        # Table I method comparison
//	go test -bench=TableII                 # Table II instance statistics
//	go test -bench=Fig3b                   # Fig. 3b path growth
//	go test -bench=Cascade                 # Ex. 4 cascade study
//	go test -bench=Supremacy               # Sec. V extension
//	go test -bench=Ablation                # design-choice ablations
package hsfsim_test

import (
	"testing"
	"time"

	"hsfsim"
	"hsfsim/internal/bench"
	"hsfsim/internal/qaoa"
)

// benchAmplitudes mirrors the paper's partial-amplitude setting, scaled.
const benchAmplitudes = 1 << 14

// tableIInstances is the scaled Table I family, one density per size, so a
// full -bench run stays in minutes. cmd/benchtab measures all nine.
func tableIInstances() []qaoa.InstanceSpec {
	all := qaoa.ScaledInstances()
	return []qaoa.InstanceSpec{all[0], all[3], all[6]}
}

func simulateOnce(b *testing.B, c *hsfsim.Circuit, opts hsfsim.Options) {
	b.Helper()
	res, err := hsfsim.Simulate(c, opts)
	if err != nil {
		b.Fatal(err)
	}
	_ = res
}

// BenchmarkTableI measures the three methods on the scaled QAOA instances.
// Standard HSF is benchmarked only where its path count is feasible; the
// paper's timed-out rows correspond to exactly these skipped cases.
func BenchmarkTableI(b *testing.B) {
	for _, spec := range tableIInstances() {
		inst, err := spec.Generate(qaoa.SingleLayer())
		if err != nil {
			b.Fatal(err)
		}
		std, _, err := hsfsim.PathCounts(inst.Circuit, spec.CutPos(), hsfsim.BlockCascade, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(spec.Name+"/schrodinger", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				simulateOnce(b, inst.Circuit, hsfsim.Options{
					Method: hsfsim.Schrodinger, MaxAmplitudes: benchAmplitudes,
				})
			}
		})
		if std <= 1<<16 {
			b.Run(spec.Name+"/standard-hsf", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					simulateOnce(b, inst.Circuit, hsfsim.Options{
						Method: hsfsim.StandardHSF, CutPos: spec.CutPos(),
						MaxAmplitudes: benchAmplitudes,
					})
				}
			})
		}
		b.Run(spec.Name+"/joint-hsf", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				simulateOnce(b, inst.Circuit, hsfsim.Options{
					Method: hsfsim.JointHSF, CutPos: spec.CutPos(),
					MaxAmplitudes: benchAmplitudes,
				})
			}
		})
	}
}

// BenchmarkTableII measures the instance-analysis cost (plan construction
// over the full scaled family).
func BenchmarkTableII(b *testing.B) {
	specs := qaoa.ScaledInstances()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunTable2(specs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3b regenerates the Fig. 3b path-count series.
func BenchmarkFig3b(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		points, err := bench.Fig3Series(bench.Fig3MaxDepth)
		if err != nil {
			b.Fatal(err)
		}
		if points[len(points)-1].JointPaths > 16 {
			b.Fatal("saturation bound violated")
		}
	}
}

// BenchmarkCascade regenerates the Ex. 4 cascade study.
func BenchmarkCascade(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.CascadeSeries(8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSupremacy measures the Sec. V extension configurations.
func BenchmarkSupremacy(b *testing.B) {
	cases := bench.DefaultSupremacyCases()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunSupremacy(cases, 1024, time.Minute); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBackends measures the array / DD / MPS backend study.
func BenchmarkBackends(b *testing.B) {
	cases, err := bench.DefaultBackendCases()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunBackends(cases); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkManybody measures the Trotterized Ising study (ref [35]).
func BenchmarkManybody(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.ManybodySeries(12, 6, benchAmplitudes, time.Minute); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablations (DESIGN.md "Ablations") ---

func ablationInstance(b *testing.B) (*hsfsim.Circuit, int) {
	b.Helper()
	spec := qaoa.ScaledInstances()[3] // q18-1
	inst, err := spec.Generate(qaoa.SingleLayer())
	if err != nil {
		b.Fatal(err)
	}
	return inst.Circuit, spec.CutPos()
}

// BenchmarkAblationFusion compares the Schrödinger baseline with and without
// gate fusion.
func BenchmarkAblationFusion(b *testing.B) {
	c, _ := ablationInstance(b)
	for _, cfg := range []struct {
		name string
		fq   int
	}{{"fusion-on", 0}, {"fusion-off", -1}} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				simulateOnce(b, c, hsfsim.Options{
					Method: hsfsim.Schrodinger, MaxAmplitudes: benchAmplitudes,
					FusionMaxQubits: cfg.fq,
				})
			}
		})
	}
}

// BenchmarkAblationWorkers compares single-worker and all-core joint HSF.
func BenchmarkAblationWorkers(b *testing.B) {
	c, cutPos := ablationInstance(b)
	for _, cfg := range []struct {
		name    string
		workers int
	}{{"workers-1", 1}, {"workers-all", 0}} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				simulateOnce(b, c, hsfsim.Options{
					Method: hsfsim.JointHSF, CutPos: cutPos,
					MaxAmplitudes: benchAmplitudes, Workers: cfg.workers,
				})
			}
		})
	}
}

// BenchmarkAblationAnalytic compares numeric SVD and analytic cascade
// decompositions during joint-cut preprocessing.
func BenchmarkAblationAnalytic(b *testing.B) {
	c, cutPos := ablationInstance(b)
	for _, cfg := range []struct {
		name     string
		analytic bool
	}{{"numeric-svd", false}, {"analytic-cascade", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				simulateOnce(b, c, hsfsim.Options{
					Method: hsfsim.JointHSF, CutPos: cutPos,
					MaxAmplitudes: benchAmplitudes, UseAnalyticCascades: cfg.analytic,
				})
			}
		})
	}
}

// BenchmarkAblationEngine compares the array and decision-diagram HSF path
// engines (ref [10]) on the same plan.
func BenchmarkAblationEngine(b *testing.B) {
	c, cutPos := ablationInstance(b)
	for _, cfg := range []struct {
		name string
		dd   bool
	}{{"array-engine", false}, {"dd-engine", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				simulateOnce(b, c, hsfsim.Options{
					Method: hsfsim.JointHSF, CutPos: cutPos,
					MaxAmplitudes: benchAmplitudes, UseDDEngine: cfg.dd,
				})
			}
		})
	}
}

// BenchmarkAblationBlockStrategy compares cascade and window grouping on the
// same QAOA instance.
func BenchmarkAblationBlockStrategy(b *testing.B) {
	c, cutPos := ablationInstance(b)
	for _, cfg := range []struct {
		name     string
		strategy hsfsim.BlockStrategy
	}{{"cascade", hsfsim.BlockCascade}, {"window", hsfsim.BlockWindow}} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				simulateOnce(b, c, hsfsim.Options{
					Method: hsfsim.JointHSF, CutPos: cutPos, BlockStrategy: cfg.strategy,
					MaxAmplitudes: benchAmplitudes,
				})
			}
		})
	}
}
