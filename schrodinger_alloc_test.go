package hsfsim

import (
	"math/rand"
	"testing"

	"hsfsim/internal/fuse"
	"hsfsim/internal/gate"
	"hsfsim/internal/statevec"
)

// TestSchrodingerSegmentZeroAllocs mirrors the walker's TestZeroAllocsPerLeaf
// for the Schrödinger baseline: after compilation, replaying the fused gate
// sequence over the statevector must not allocate. This guards the regression
// where the baseline fused gates but never prepared them, so every k-qubit
// application rebuilt its kernel plan on the heap.
func TestSchrodingerSegmentZeroAllocs(t *testing.T) {
	const n = 12
	rng := rand.New(rand.NewSource(42))
	c := NewCircuit(n)
	for layer := 0; layer < 3; layer++ {
		for q := 0; q < n; q++ {
			c.Append(gate.H(q), gate.RZ(rng.Float64(), q))
		}
		for q := 0; q+2 < n; q += 3 {
			c.Append(gate.CNOT(q, q+1), gate.CCX(q, q+1, q+2), gate.RZZ(rng.Float64(), q+1, q+2))
		}
	}
	gates := fuse.Fuse(c.Gates, 3)
	has3q := false
	for i := range gates {
		if gates[i].NumQubits() >= 3 {
			has3q = true
		}
	}
	if !has3q {
		t.Fatal("fusion produced no k≥3 gates; the guard would not exercise kernel plans")
	}
	seg := statevec.CompileSegment(gates, n)
	s := statevec.NewVector(n)
	seg.Apply(s) // warm the scratch pool
	allocs := testing.AllocsPerRun(10, func() { seg.Apply(s) })
	if allocs != 0 {
		t.Errorf("compiled segment replay allocates %v allocs/op, want 0", allocs)
	}
}
