package hsfsim_test

import (
	"fmt"

	"hsfsim"
)

// ExampleSimulate builds an RZZ cascade across the cut and shows the
// joint-cut path saving.
func ExampleSimulate() {
	c := hsfsim.NewCircuit(6)
	for q := 0; q < 6; q++ {
		c.Append(hsfsim.H(q))
	}
	// Three RZZ gates fan out from qubit 2 into the upper half.
	c.Append(
		hsfsim.RZZ(0.3, 2, 3),
		hsfsim.RZZ(0.5, 2, 4),
		hsfsim.RZZ(0.7, 2, 5),
	)
	std, _ := hsfsim.Simulate(c, hsfsim.Options{Method: hsfsim.StandardHSF, CutPos: 2})
	jnt, _ := hsfsim.Simulate(c, hsfsim.Options{Method: hsfsim.JointHSF, CutPos: 2})
	fmt.Printf("standard paths: %d\n", std.NumPaths)
	fmt.Printf("joint paths:    %d\n", jnt.NumPaths)
	// Output:
	// standard paths: 8
	// joint paths:    2
}

// ExampleAnalyze inspects the cut plan without simulating.
func ExampleAnalyze() {
	c := hsfsim.NewCircuit(4)
	c.Append(
		hsfsim.RZZ(0.4, 1, 2),
		hsfsim.RZZ(0.6, 1, 3),
		hsfsim.SWAP(0, 2),
	)
	s, _ := hsfsim.Analyze(c, 1, hsfsim.BlockCascade, 0)
	fmt.Printf("cuts: %d (%d blocks), paths: %d\n", s.NumCuts, s.NumBlocks, s.NumPaths)
	// Output:
	// cuts: 2 (1 blocks), paths: 8
}

// ExamplePathCounts compares the two cutting schemes on a CNOT cascade
// (paper Ex. 4).
func ExamplePathCounts() {
	c := hsfsim.NewCircuit(5)
	for t := 1; t < 5; t++ {
		c.Append(hsfsim.CNOT(0, t)) // shared control below the cut
	}
	std, jnt, _ := hsfsim.PathCounts(c, 0, hsfsim.BlockCascade, 0)
	fmt.Printf("standard: %d, joint: %d\n", std, jnt)
	// Output:
	// standard: 16, joint: 2
}
