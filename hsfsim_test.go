package hsfsim_test

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"time"

	"hsfsim"
)

func bell() *hsfsim.Circuit {
	c := hsfsim.NewCircuit(2)
	c.Append(hsfsim.H(0), hsfsim.CNOT(0, 1))
	return c
}

// qaoaLike builds a seeded RZZ/RX circuit with crossing structure.
func qaoaLike(seed int64, n, edges int) *hsfsim.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := hsfsim.NewCircuit(n)
	for q := 0; q < n; q++ {
		c.Append(hsfsim.H(q))
	}
	for i := 0; i < edges; i++ {
		a := rng.Intn(n)
		b := (a + 1 + rng.Intn(n-1)) % n
		c.Append(hsfsim.RZZ(rng.Float64()*2, a, b))
	}
	for q := 0; q < n; q++ {
		c.Append(hsfsim.RX(0.7, q))
	}
	return c
}

func maxDiff(a, b []complex128) float64 {
	var d float64
	for i := range a {
		if e := cmplx.Abs(a[i] - b[i]); e > d {
			d = e
		}
	}
	return d
}

func TestSimulateBellAllMethods(t *testing.T) {
	want := complex(math.Sqrt2/2, 0)
	for _, m := range []hsfsim.Method{hsfsim.Schrodinger, hsfsim.StandardHSF, hsfsim.JointHSF} {
		res, err := hsfsim.Simulate(bell(), hsfsim.Options{Method: m, CutPos: 0})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		a := res.Amplitudes
		if cmplx.Abs(a[0]-want) > 1e-12 || cmplx.Abs(a[3]-want) > 1e-12 ||
			cmplx.Abs(a[1]) > 1e-12 || cmplx.Abs(a[2]) > 1e-12 {
			t.Fatalf("%v: wrong Bell amplitudes %v", m, a)
		}
	}
}

func TestMethodsAgreeOnRandomCircuits(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		c := qaoaLike(seed, 8, 12)
		ref, err := hsfsim.Simulate(c, hsfsim.Options{Method: hsfsim.Schrodinger})
		if err != nil {
			t.Fatal(err)
		}
		std, err := hsfsim.Simulate(c, hsfsim.Options{Method: hsfsim.StandardHSF, CutPos: 3})
		if err != nil {
			t.Fatal(err)
		}
		jnt, err := hsfsim.Simulate(c, hsfsim.Options{Method: hsfsim.JointHSF, CutPos: 3})
		if err != nil {
			t.Fatal(err)
		}
		if d := maxDiff(ref.Amplitudes, std.Amplitudes); d > 1e-8 {
			t.Fatalf("seed %d: standard HSF diverges by %g", seed, d)
		}
		if d := maxDiff(ref.Amplitudes, jnt.Amplitudes); d > 1e-8 {
			t.Fatalf("seed %d: joint HSF diverges by %g", seed, d)
		}
		if jnt.NumPaths > std.NumPaths {
			t.Fatalf("seed %d: joint paths %d exceed standard %d", seed, jnt.NumPaths, std.NumPaths)
		}
	}
}

func TestJointReducesPathsOnCascades(t *testing.T) {
	// Star-coupled halves: every crossing RZZ shares qubit 3.
	c := hsfsim.NewCircuit(8)
	for u := 4; u < 8; u++ {
		c.Append(hsfsim.RZZ(0.3*float64(u), 3, u))
	}
	std, err := hsfsim.Simulate(c, hsfsim.Options{Method: hsfsim.StandardHSF, CutPos: 3})
	if err != nil {
		t.Fatal(err)
	}
	jnt, err := hsfsim.Simulate(c, hsfsim.Options{Method: hsfsim.JointHSF, CutPos: 3})
	if err != nil {
		t.Fatal(err)
	}
	if std.NumPaths != 16 {
		t.Fatalf("standard paths = %d, want 16", std.NumPaths)
	}
	if jnt.NumPaths != 2 {
		t.Fatalf("joint paths = %d, want 2", jnt.NumPaths)
	}
	if jnt.NumBlocks != 1 || jnt.NumSeparateCuts != 0 {
		t.Fatalf("blocks %d, sep %d", jnt.NumBlocks, jnt.NumSeparateCuts)
	}
	if d := maxDiff(std.Amplitudes, jnt.Amplitudes); d > 1e-9 {
		t.Fatalf("methods disagree by %g", d)
	}
}

func TestMaxAmplitudesTruncates(t *testing.T) {
	c := qaoaLike(7, 6, 8)
	full, err := hsfsim.Simulate(c, hsfsim.Options{Method: hsfsim.Schrodinger})
	if err != nil {
		t.Fatal(err)
	}
	part, err := hsfsim.Simulate(c, hsfsim.Options{Method: hsfsim.JointHSF, CutPos: 2, MaxAmplitudes: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(part.Amplitudes) != 7 {
		t.Fatalf("got %d amplitudes", len(part.Amplitudes))
	}
	if d := maxDiff(part.Amplitudes, full.Amplitudes[:7]); d > 1e-8 {
		t.Fatalf("prefix mismatch %g", d)
	}
}

func TestSimulateErrors(t *testing.T) {
	if _, err := hsfsim.Simulate(nil, hsfsim.Options{}); err == nil {
		t.Fatal("nil circuit accepted")
	}
	c := hsfsim.NewCircuit(2)
	c.Append(hsfsim.CNOT(0, 5)) // out of range
	if _, err := hsfsim.Simulate(c, hsfsim.Options{}); err == nil {
		t.Fatal("invalid circuit accepted")
	}
	c = bell()
	if _, err := hsfsim.Simulate(c, hsfsim.Options{Method: hsfsim.StandardHSF, CutPos: 5}); err == nil {
		t.Fatal("out-of-range cut accepted")
	}
	if _, err := hsfsim.Simulate(c, hsfsim.Options{Method: hsfsim.Method(42)}); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestTimeoutOnStandardHSF(t *testing.T) {
	// Many separate cuts — the immediate timeout must fire.
	rng := rand.New(rand.NewSource(9))
	c := hsfsim.NewCircuit(12)
	for i := 0; i < 26; i++ {
		a := rng.Intn(6)
		b := 6 + rng.Intn(6)
		c.Append(hsfsim.RZZ(rng.Float64(), a, b), hsfsim.RX(0.3, a))
	}
	_, err := hsfsim.Simulate(c, hsfsim.Options{
		Method: hsfsim.StandardHSF, CutPos: 5, Timeout: time.Microsecond,
	})
	if err != hsfsim.ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestPathCounts(t *testing.T) {
	c := hsfsim.NewCircuit(6)
	c.Append(
		hsfsim.RZZ(0.3, 2, 3), hsfsim.RZZ(0.4, 2, 4), hsfsim.RZZ(0.5, 2, 5),
	)
	std, jnt, err := hsfsim.PathCounts(c, 2, hsfsim.BlockCascade, 0)
	if err != nil {
		t.Fatal(err)
	}
	if std != 8 || jnt != 2 {
		t.Fatalf("paths = %d/%d, want 8/2", std, jnt)
	}
}

func TestStatsReported(t *testing.T) {
	c := qaoaLike(11, 8, 14)
	res, err := hsfsim.Simulate(c, hsfsim.Options{Method: hsfsim.JointHSF, CutPos: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumCuts == 0 {
		t.Fatal("no cuts reported")
	}
	if res.NumBlocks+res.NumSeparateCuts != res.NumCuts {
		t.Fatal("cut bookkeeping inconsistent")
	}
	if res.TotalTime() < res.SimTime {
		t.Fatal("total time < sim time")
	}
	if math.Abs(res.Log2Paths-math.Log2(float64(res.NumPaths))) > 1e-9 {
		t.Fatal("Log2Paths inconsistent with NumPaths")
	}
}

func TestDDEngineOptionAgrees(t *testing.T) {
	c := qaoaLike(17, 8, 12)
	arr, err := hsfsim.Simulate(c, hsfsim.Options{Method: hsfsim.JointHSF, CutPos: 3})
	if err != nil {
		t.Fatal(err)
	}
	dd, err := hsfsim.Simulate(c, hsfsim.Options{Method: hsfsim.JointHSF, CutPos: 3, UseDDEngine: true})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxDiff(arr.Amplitudes, dd.Amplitudes); d > 1e-8 {
		t.Fatalf("DD engine diverges by %g", d)
	}
	if arr.NumPaths != dd.NumPaths {
		t.Fatalf("path counts differ: %d vs %d", arr.NumPaths, dd.NumPaths)
	}
}

func TestAnalyticOptionAgrees(t *testing.T) {
	c := qaoaLike(13, 8, 12)
	num, err := hsfsim.Simulate(c, hsfsim.Options{Method: hsfsim.JointHSF, CutPos: 3})
	if err != nil {
		t.Fatal(err)
	}
	ana, err := hsfsim.Simulate(c, hsfsim.Options{
		Method: hsfsim.JointHSF, CutPos: 3, UseAnalyticCascades: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxDiff(num.Amplitudes, ana.Amplitudes); d > 1e-9 {
		t.Fatalf("analytic option changed amplitudes by %g", d)
	}
}
