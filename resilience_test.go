package hsfsim_test

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"

	"hsfsim"
)

// interruptible builds a circuit with many separate crossing cuts so HSF
// runs have enough paths to interrupt.
func interruptible(n, cuts int) *hsfsim.Circuit {
	rng := rand.New(rand.NewSource(123))
	c := hsfsim.NewCircuit(n)
	for q := 0; q < n; q++ {
		c.Append(hsfsim.H(q))
	}
	for i := 0; i < cuts; i++ {
		a := rng.Intn(n / 2)
		b := n/2 + rng.Intn(n-n/2)
		c.Append(hsfsim.RZZ(rng.Float64(), a, b), hsfsim.RX(0.2, a))
	}
	return c
}

// TestSimulateContextCanceled verifies ctx plumbing for every method ×
// engine combination: a canceled context surfaces context.Canceled, never
// ErrTimeout, for Schrödinger, standard/joint HSF, dense and DD engines.
func TestSimulateContextCanceled(t *testing.T) {
	c := interruptible(8, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cases := []struct {
		name string
		opts hsfsim.Options
	}{
		{"schrodinger", hsfsim.Options{Method: hsfsim.Schrodinger}},
		{"standard", hsfsim.Options{Method: hsfsim.StandardHSF, CutPos: 3}},
		{"joint", hsfsim.Options{Method: hsfsim.JointHSF, CutPos: 3}},
		{"standard-dd", hsfsim.Options{Method: hsfsim.StandardHSF, CutPos: 3, UseDDEngine: true}},
		{"joint-dd", hsfsim.Options{Method: hsfsim.JointHSF, CutPos: 3, UseDDEngine: true}},
	}
	for _, tc := range cases {
		_, err := hsfsim.SimulateContext(ctx, c, tc.opts)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", tc.name, err)
		}
		if errors.Is(err, hsfsim.ErrTimeout) {
			t.Errorf("%s: cancellation misreported as ErrTimeout", tc.name)
		}
	}
}

// TestTimeoutDistinctFromDeadline checks the three stop causes stay
// distinguishable at the public API.
func TestTimeoutDistinctFromDeadline(t *testing.T) {
	c := interruptible(10, 24)
	opts := hsfsim.Options{Method: hsfsim.StandardHSF, CutPos: 4, Timeout: 1}
	if _, err := hsfsim.Simulate(c, opts); !errors.Is(err, hsfsim.ErrTimeout) {
		t.Fatalf("timeout: err = %v, want ErrTimeout", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 1)
	defer cancel()
	<-ctx.Done()
	opts.Timeout = 0
	if _, err := hsfsim.SimulateContext(ctx, c, opts); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline: err = %v, want context.DeadlineExceeded", err)
	}
}

func TestBudgetGate(t *testing.T) {
	// Schrödinger: a 31-qubit register exceeds the 16 GiB default budget.
	big := hsfsim.NewCircuit(31)
	big.Append(hsfsim.H(0))
	_, err := hsfsim.Simulate(big, hsfsim.Options{Method: hsfsim.Schrodinger})
	if !errors.Is(err, hsfsim.ErrBudget) {
		t.Fatalf("schrodinger: err = %v, want ErrBudget", err)
	}
	var be *hsfsim.BudgetError
	if !errors.As(err, &be) || be.Estimate.TotalBytes <= 0 {
		t.Fatalf("schrodinger: not a BudgetError with estimate: %v", err)
	}

	// HSF: MaxPaths rejects before simulating.
	c := interruptible(8, 8)
	_, err = hsfsim.Simulate(c, hsfsim.Options{Method: hsfsim.StandardHSF, CutPos: 3, MaxPaths: 4})
	if !errors.Is(err, hsfsim.ErrBudget) {
		t.Fatalf("hsf paths: err = %v, want ErrBudget", err)
	}
	// ... and MemoryBudget likewise, on both engines.
	for _, dd := range []bool{false, true} {
		_, err = hsfsim.Simulate(c, hsfsim.Options{
			Method: hsfsim.StandardHSF, CutPos: 3, MemoryBudget: 1, UseDDEngine: dd,
		})
		if !errors.Is(err, hsfsim.ErrBudget) {
			t.Fatalf("hsf memory (dd=%v): err = %v, want ErrBudget", dd, err)
		}
	}
}

func TestEstimateCost(t *testing.T) {
	c := interruptible(8, 8)
	est, err := hsfsim.EstimateCost(c, hsfsim.Options{Method: hsfsim.StandardHSF, CutPos: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if est.Paths != 1<<8 || !est.PathsExact {
		t.Fatalf("paths = %d exact=%v, want 256 exact", est.Paths, est.PathsExact)
	}
	if est.TotalBytes <= 0 || est.Workers != 2 {
		t.Fatalf("estimate: %+v", est)
	}
	sch, err := hsfsim.EstimateCost(c, hsfsim.Options{Method: hsfsim.Schrodinger})
	if err != nil {
		t.Fatal(err)
	}
	if sch.TotalBytes != 16<<8 {
		t.Fatalf("schrodinger bytes = %d, want %d", sch.TotalBytes, 16<<8)
	}
}

// TestCheckpointResumePublicAPI drives the crash/resume loop end-to-end
// through Options: fault-inject at half the paths, capture the checkpoint,
// resume, and compare with an uninterrupted run.
func TestCheckpointResumePublicAPI(t *testing.T) {
	c := interruptible(8, 8) // 256 paths
	base := hsfsim.Options{Method: hsfsim.StandardHSF, CutPos: 3, Workers: 2}

	want, err := hsfsim.Simulate(c, base)
	if err != nil {
		t.Fatal(err)
	}

	var ckpt bytes.Buffer
	crash := base
	crash.CheckpointWriter = &ckpt
	crash.FailAfterPaths = 128
	if _, err := hsfsim.Simulate(c, crash); err == nil {
		t.Fatal("fault injection did not fire")
	}
	if ckpt.Len() == 0 {
		t.Fatal("no checkpoint written")
	}

	res := base
	res.ResumeFrom = bytes.NewReader(ckpt.Bytes())
	got, err := hsfsim.Simulate(c, res)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Amplitudes {
		d := want.Amplitudes[i] - got.Amplitudes[i]
		if abs2(d) > 1e-24 { // |d| > 1e-12
			t.Fatalf("amplitude %d diverges: %v vs %v", i, got.Amplitudes[i], want.Amplitudes[i])
		}
	}

	// Resuming with a different circuit is rejected.
	other := interruptible(8, 9)
	res.ResumeFrom = bytes.NewReader(ckpt.Bytes())
	if _, err := hsfsim.Simulate(other, res); !errors.Is(err, hsfsim.ErrCheckpointMismatch) {
		t.Fatalf("mismatch: err = %v, want ErrCheckpointMismatch", err)
	}
}

func abs2(z complex128) float64 { return real(z)*real(z) + imag(z)*imag(z) }

// TestDDBackendCheckpointResume verifies the DD backend inherits
// checkpoint/resume from the shared walker: a fault-injected DD run writes a
// checkpoint, and resuming it (still on DD) reproduces the uninterrupted
// dense result to 1e-12.
func TestDDBackendCheckpointResume(t *testing.T) {
	c := interruptible(6, 4)
	base := hsfsim.Options{Method: hsfsim.JointHSF, CutPos: 2, Backend: hsfsim.BackendDD}

	want, err := hsfsim.Simulate(c, hsfsim.Options{Method: hsfsim.JointHSF, CutPos: 2})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	failing := base
	failing.CheckpointWriter = &buf
	failing.FailAfterPaths = 3
	if _, err := hsfsim.Simulate(c, failing); !errors.Is(err, hsfsim.ErrInjectedFault) {
		t.Fatalf("fault-injected DD run: err = %v, want ErrInjectedFault", err)
	}
	if buf.Len() == 0 {
		t.Fatal("DD backend wrote no checkpoint on fault")
	}

	resumed := base
	resumed.ResumeFrom = &buf
	got, err := hsfsim.Simulate(c, resumed)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Amplitudes {
		if d := got.Amplitudes[i] - want.Amplitudes[i]; real(d)*real(d)+imag(d)*imag(d) > 1e-24 {
			t.Fatalf("amplitude %d differs after DD resume: %v vs %v", i, got.Amplitudes[i], want.Amplitudes[i])
		}
	}
}

// TestDDBackendRejectsWorkers pins the typed rejection: the DD backend's
// node store is single-threaded, so Workers > 1 is ErrUnsupported instead of
// a silent downgrade.
func TestDDBackendRejectsWorkers(t *testing.T) {
	c := interruptible(6, 4)
	_, err := hsfsim.Simulate(c, hsfsim.Options{
		Method: hsfsim.JointHSF, CutPos: 2, Backend: hsfsim.BackendDD, Workers: 2,
	})
	if !errors.Is(err, hsfsim.ErrUnsupported) {
		t.Fatalf("err = %v, want ErrUnsupported", err)
	}
}
