package hsfsim

import (
	"encoding/json"
	"testing"
)

// telemetryTestCircuit builds a small circuit with crossing RZZ cascades so
// both HSF methods produce a multi-path plan at CutPos 2.
func telemetryTestCircuit() *Circuit {
	c := NewCircuit(6)
	for q := 0; q < 6; q++ {
		c.Append(H(q))
	}
	c.Append(RZZ(0.3, 0, 3), RZZ(0.7, 1, 4), RX(0.2, 1), RZZ(0.9, 2, 5))
	return c
}

// TestSimulateTelemetryReport checks the public surface: Options.Telemetry
// populates Result.Report, and the report's path/segment/kernel-class totals
// reconcile with the Result (the -report CLI flag serializes exactly this).
func TestSimulateTelemetryReport(t *testing.T) {
	for _, method := range []Method{StandardHSF, JointHSF} {
		rec := NewTelemetryRecorder()
		res, err := Simulate(telemetryTestCircuit(), Options{
			Method: method, CutPos: 2, Telemetry: rec,
		})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if res.Report == nil {
			t.Fatalf("%v: Result.Report not populated", method)
		}
		rep := res.Report
		if rep.Paths.Simulated != res.PathsSimulated {
			t.Fatalf("%v: report simulated %d != Result.PathsSimulated %d",
				method, rep.Paths.Simulated, res.PathsSimulated)
		}
		if rep.Paths.Total != int64(res.NumPaths) {
			t.Fatalf("%v: report total %d != Result.NumPaths %d", method, rep.Paths.Total, res.NumPaths)
		}
		if rep.Counters.Leaves != res.PathsSimulated {
			t.Fatalf("%v: leaves %d != paths simulated %d", method, rep.Counters.Leaves, res.PathsSimulated)
		}
		if len(rep.Segments) == 0 || len(rep.KernelClasses) == 0 {
			t.Fatalf("%v: missing segment or class stats: %+v", method, rep)
		}
		var spans []string
		for _, s := range rep.Spans {
			spans = append(spans, s.Name)
		}
		if len(spans) < 2 {
			t.Fatalf("%v: want plan+compile spans, got %v", method, spans)
		}
		if _, err := json.Marshal(rep); err != nil {
			t.Fatalf("%v: report not serializable: %v", method, err)
		}
	}
}

// TestSimulateTelemetrySchrodinger checks the baseline path: one "path",
// per-step sweep timings, and a kernel-class census that matches the gate
// count exactly when fusion is disabled.
func TestSimulateTelemetrySchrodinger(t *testing.T) {
	c := telemetryTestCircuit()
	rec := NewTelemetryRecorder()
	res, err := Simulate(c, Options{Method: Schrodinger, FusionMaxQubits: -1, Telemetry: rec})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if rep == nil {
		t.Fatal("Result.Report not populated")
	}
	if rep.Paths.Simulated != 1 || rep.Paths.Total != 1 {
		t.Fatalf("paths = %+v, want 1/1", rep.Paths)
	}
	var classTotal int64
	for _, n := range rep.KernelClasses {
		classTotal += n
	}
	if want := int64(len(c.Gates)); classTotal != want {
		t.Fatalf("kernel-class census = %d, want %d (one per gate, fusion off)", classTotal, want)
	}
	if rep.SegmentSweep.Count == 0 {
		t.Fatalf("no segment sweep timings recorded")
	}
}

// TestSimulateWithoutTelemetry pins that the default path stays untouched.
func TestSimulateWithoutTelemetry(t *testing.T) {
	res, err := Simulate(telemetryTestCircuit(), Options{Method: JointHSF, CutPos: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report != nil {
		t.Fatalf("Report should be nil without Options.Telemetry")
	}
}
