# Developer entry points. Everything is plain `go` underneath; the targets
# just name the common workflows.

GO ?= go

.PHONY: all build test test-purego race race-core race-sweep race-telemetry trace-test fuzz dist-test chaos-test jobs-test vet cover bench bench-core bench-kernels bench-telemetry bench-serving bench-dist bench-smoke bench-tables examples fmt clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Portable-dispatch arm: build and test with the scalar SoA kernel bodies
# selected (no unsafe alignment, spanMin disabled). CI runs this leg so the
# fallback the span kernels shadow can never rot.
test-purego:
	$(GO) build -tags purego ./...
	$(GO) test -tags purego ./...

# Race-detector run (CI gate): the HSF worker pool, the server's concurrency
# limiter, and checkpoint merging must stay race-clean.
race:
	$(GO) test -race ./...

# Execution-core race pass plus the allocation guard. The guard runs without
# -race (the detector's instrumentation allocates, so the zero-alloc test
# skips itself under it).
race-core:
	$(GO) test -race ./internal/hsf/... ./internal/statevec/... ./internal/par/...
	$(GO) test -run 'TestZeroAllocsPerLeaf|TestPoisonedPoolRunStaysFinite' -count=1 ./internal/hsf/

# Sweep-executor race pass: the tiled segment sweeps fan gate applications out
# across the worker pool with a shared scratch discipline; run the kernel and
# segment parity suites under the detector to catch any aliasing regression.
race-sweep:
	$(GO) test -race -run 'Segment|Kernel|Parity' -count=1 ./internal/statevec/ ./internal/hsf/

# Telemetry race pass: per-worker counters flush into the shared recorder and
# the atomic histograms are hammered from every walker goroutine; the guard
# that telemetry keeps the leaf loop at zero allocations runs without -race
# (the detector's instrumentation allocates).
race-telemetry:
	$(GO) test -race ./internal/telemetry/
	$(GO) test -race -run 'Telemetry|Prometheus|DistStats' -count=1 ./internal/hsf/ ./internal/dist/ ./internal/server/ .
	$(GO) test -run 'TestZeroAllocsPerLeafWithTelemetry' -count=1 ./internal/hsf/

# Tracing suite under the race detector: traceparent propagation over
# loopback and real HTTP, span continuity across transport retries and work
# stealing, the chaos-run fleet timeline's wall-clock coverage, flight
# recorder eviction, and /debug/trace addressing. The zero-alloc guard with
# tracing enabled runs without -race (the detector's instrumentation
# allocates).
trace-test:
	$(GO) test -race ./internal/telemetry/trace/
	$(GO) test -race -run 'Trace|Span|Timeline|Recorder|Tenant|DebugTrace' -count=1 ./internal/dist/ ./internal/server/ ./internal/jobs/ ./internal/hsf/
	$(GO) test -run 'TestZeroAllocsPerLeafWithTracing' -count=1 ./internal/hsf/

# Short fuzz pass over the daemon's untrusted input surface.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/qasm/
	$(GO) test -fuzz=FuzzReadCheckpoint -fuzztime=30s ./internal/hsf/

# Distributed-execution integration tests under the race detector: loopback
# and real-HTTP fleets, including a worker killed mid-run whose leases must
# be reassigned (the amplitudes still match single-process to 1e-12).
dist-test:
	$(GO) test -race -run 'Dist|Worker|Lease|HTTP' -v ./internal/dist/ ./internal/server/ ./cmd/hsfsimd/

# Chaos and elasticity suite under the race detector: seeded fault injection
# (dropped/duplicated replies, worker kills, registry partitions), mid-run
# joins, work stealing, durable takeover. Each test logs its chaos seed; set
# CHAOS_SEED to reproduce a failure or explore new fault schedules.
chaos-test:
	$(GO) test -race -run 'Chaos|Steal|Takeover|Partition|Join|Drain|Truncated' -v -count=1 ./internal/dist/ ./internal/server/

# Job-service suite under the race detector: queues, quotas, plan-cache
# batching, SSE streaming, fingerprint stability, and the
# kill-the-daemon-mid-job resume test (SIGTERM during a walk, restart on the
# same store, every job completes with correct amplitudes).
jobs-test:
	$(GO) test -race -run 'Job|Fingerprint|Manager|Queue|Quota|Batch|Plan|Store' -v -count=1 ./internal/jobs/ ./internal/hsf/ ./internal/server/ ./cmd/hsfsimd/

cover:
	$(GO) test -cover ./...

# Full benchmark sweep (one iteration each; see bench_test.go for targets).
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# Execution-core microbenchmarks (walker backends + gate kernels) as a
# machine-readable artifact.
bench-core:
	$(GO) run ./cmd/benchcore -o BENCH_core.json

# Structure-specialized kernel study: every specialized kernel vs. the forced
# dense-matvec path on identical gates, plus end-to-end sweeps.
bench-kernels:
	$(GO) run ./cmd/benchcore -study kernels -o BENCH_kernels.json

# Telemetry overhead study: path-tree runs with the recorder off vs. on,
# paired-sample median comparison. The overhead_pct column must stay within
# the ±2% budget DESIGN.md documents.
bench-telemetry:
	$(GO) run ./cmd/benchcore -study telemetry -o BENCH_telemetry.json

# Quick kernel-bench smoke: one benchtime iteration over the statevec
# kernels under the best arm runtime dispatch selects (avx2/neon where the
# CPU has it). The old GOAMD64=v3 override is obsolete — the hand-written
# assembly arms carry the AVX2/FMA (and NEON) code on every build, and
# HSFSIM_KERNEL_ISA forces a weaker arm when needed.
bench-smoke:
	$(GO) test -run=NONE -bench='Apply|Kernel|Segment' -benchtime=1x ./internal/statevec/

# Job-service serving study: N concurrent same-circuit jobs through the
# manager (plan cache + batching) vs. fingerprint-distinct submissions, with
# throughput and p50/p99 latency per scenario.
bench-serving:
	$(GO) run ./cmd/benchcore -study serving -o BENCH_serving.json

# Distributed scaling study: loopback fleets at 2/4/8/16 workers (adaptive
# vs. fixed batch sizing) plus a real-HTTP variant, with lease overhead,
# steal efficiency, and utilization computed from the trace spans the run
# itself recorded. Closes the ROADMAP [scale] item.
bench-dist:
	$(GO) run ./cmd/benchcore -study dist -o BENCH_dist.json

# Regenerate every table and figure at laptop scale.
bench-tables:
	$(GO) run ./cmd/benchtab -all | tee benchtab_small.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/qaoa_maxcut
	$(GO) run ./examples/supremacy
	$(GO) run ./examples/manybody
	$(GO) run ./examples/reorder
	$(GO) run ./examples/pipeline

fmt:
	gofmt -w .

clean:
	$(GO) clean ./...
