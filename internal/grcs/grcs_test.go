package grcs

import (
	"testing"

	"hsfsim/internal/cut"
	"hsfsim/internal/statevec"
)

func TestGenerateStructure(t *testing.T) {
	opts := Options{Rows: 3, Cols: 4, Depth: 4, Seed: 1}
	c, err := Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 12 {
		t.Fatalf("qubits = %d", c.NumQubits)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	h := c.GateCountByName()
	if h["h"] != 12 {
		t.Fatalf("hadamard wall: %d", h["h"])
	}
	singles := h["sx"] + h["sy"] + h["sw"]
	if singles != 12*4 {
		t.Fatalf("singles = %d, want 48", singles)
	}
	if h["cz"] == 0 {
		t.Fatal("no entanglers")
	}
}

func TestGenerateISwap(t *testing.T) {
	c, err := Generate(Options{Rows: 2, Cols: 3, Depth: 4, Entangler: ISwap, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	h := c.GateCountByName()
	if h["iswap"] == 0 || h["cz"] != 0 {
		t.Fatalf("entangler histogram: %v", h)
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Options{Rows: 0, Cols: 3, Depth: 1}); err == nil {
		t.Fatal("zero rows accepted")
	}
	if _, err := Generate(Options{Rows: 2, Cols: 2, Depth: -1}); err == nil {
		t.Fatal("negative depth accepted")
	}
}

func TestNoRepeatedSingles(t *testing.T) {
	c, err := Generate(Options{Rows: 2, Cols: 2, Depth: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	last := map[int]string{}
	for i := range c.Gates {
		g := &c.Gates[i]
		if g.Name == "sx" || g.Name == "sy" || g.Name == "sw" {
			q := g.Qubits[0]
			if last[q] == g.Name {
				t.Fatalf("qubit %d repeats %s", q, g.Name)
			}
			last[q] = g.Name
		}
	}
}

func TestRowCutPos(t *testing.T) {
	opts := Options{Rows: 4, Cols: 3}
	if p := RowCutPos(opts, 2); p != 5 {
		t.Fatalf("RowCutPos = %d, want 5", p)
	}
}

func TestOnlyVerticalGatesCrossRowCut(t *testing.T) {
	opts := Options{Rows: 4, Cols: 3, Depth: 8, Seed: 4}
	c, err := Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	p := cut.Partition{CutPos: RowCutPos(opts, 2)}
	for i := range c.Gates {
		g := &c.Gates[i]
		if g.Name != "cz" || !p.Crosses(g) {
			continue
		}
		// A crossing CZ must connect rows 1 and 2 (vertical pair).
		r0 := g.Qubits[0] / opts.Cols
		r1 := g.Qubits[1] / opts.Cols
		if !(r0 == 1 && r1 == 2 || r0 == 2 && r1 == 1) {
			t.Fatalf("crossing gate between rows %d and %d", r0, r1)
		}
	}
}

func TestJointCuttingNeverWorseOnRowCut(t *testing.T) {
	// With a row-aligned cut the crossing gates never share qubits, so joint
	// cutting finds nothing to group — but it must never be *worse* than
	// standard cutting (the benefit filter guarantees this).
	opts := Options{Rows: 4, Cols: 2, Depth: 6, Seed: 5}
	c, err := Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	p := cut.Partition{CutPos: RowCutPos(opts, 2)}
	std, err := cut.BuildPlan(c, cut.Options{Partition: p, Strategy: cut.StrategyNone})
	if err != nil {
		t.Fatal(err)
	}
	win, err := cut.BuildPlan(c, cut.Options{Partition: p, Strategy: cut.StrategyWindow, MaxBlockQubits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if win.Log2Paths() > std.Log2Paths() {
		t.Fatalf("window joint cutting increased paths: %.1f vs %.1f",
			win.Log2Paths(), std.Log2Paths())
	}
}

func TestJointCuttingReducesSupremacyPathsMidRowCut(t *testing.T) {
	// A cut through the middle of a row makes vertical and horizontal
	// crossing entanglers share boundary qubits; for iSWAP gates (rank 4
	// each) the anchored blocks cut jointly at rank ≤ 4 instead of 16
	// (paper Sec. V extension experiment).
	opts := Options{Rows: 4, Cols: 4, Depth: 6, Entangler: ISwap, Seed: 7}
	c, err := Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	p := cut.Partition{CutPos: 9}
	std, err := cut.BuildPlan(c, cut.Options{Partition: p, Strategy: cut.StrategyNone})
	if err != nil {
		t.Fatal(err)
	}
	win, err := cut.BuildPlan(c, cut.Options{Partition: p, Strategy: cut.StrategyWindow, MaxBlockQubits: 5})
	if err != nil {
		t.Fatal(err)
	}
	if win.Log2Paths() >= std.Log2Paths() {
		t.Fatalf("mid-row joint cutting did not reduce paths: %.1f vs %.1f",
			win.Log2Paths(), std.Log2Paths())
	}
	if win.NumBlocks() == 0 {
		t.Fatal("no blocks found on mid-row cut iSWAP circuit")
	}
}

func TestGeneratedCircuitSimulates(t *testing.T) {
	c, err := Generate(Options{Rows: 2, Cols: 3, Depth: 5, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	s := statevec.NewState(c.NumQubits)
	s.ApplyAll(c.Gates)
	if n := s.Norm(); n < 0.999999 || n > 1.000001 {
		t.Fatalf("norm = %g", n)
	}
}

func TestSycamoreSchedule(t *testing.T) {
	// ABCDCDAB: patterns at depths 2 and 4 (C) repeat at distance two; the
	// circuits must differ from the plain cycle but stay valid.
	plain, err := Generate(Options{Rows: 3, Cols: 3, Depth: 8, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	syc, err := Generate(Options{Rows: 3, Cols: 3, Depth: 8, Seed: 12, Sycamore: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := syc.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(plain.Gates) != len(syc.Gates) {
		t.Fatalf("gate counts differ: %d vs %d", len(plain.Gates), len(syc.Gates))
	}
	// Same single-qubit stream (same seed), different entangler placement.
	diff := false
	for i := range plain.Gates {
		a, b := &plain.Gates[i], &syc.Gates[i]
		if a.Name != b.Name || a.Qubits[0] != b.Qubits[0] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("Sycamore schedule identical to the plain cycle")
	}
}
