// Package grcs generates Google-random-circuit-sampling style ("supremacy")
// circuits on a 2D qubit grid: layers of random single-qubit gates from
// {√X, √Y, √W} interleaved with a cycling pattern of two-qubit CZ or iSWAP
// entanglers, following Boixo et al. The paper's Sec. V notes joint cutting
// applies to shallow instances of these circuits; this package provides the
// workload for that extension experiment.
package grcs

import (
	"fmt"
	"math"
	"math/rand"

	"hsfsim/internal/circuit"
	"hsfsim/internal/gate"
)

// EntanglerKind selects the two-qubit gate of the entangling layers.
type EntanglerKind int

// Entangler kinds.
const (
	CZ EntanglerKind = iota
	ISwap
	// FSimGate mimics Sycamore's fSim(π/2, π/6) two-qubit gate.
	FSimGate
)

// Options configures circuit generation.
type Options struct {
	// Rows, Cols define the qubit grid; qubit index = r*Cols + c.
	Rows, Cols int
	// Depth is the number of entangling layers.
	Depth int
	// Entangler selects CZ (default) or iSWAP two-qubit gates.
	Entangler EntanglerKind
	// Seed drives the random single-qubit gate choice.
	Seed int64
	// Sycamore switches the entangling-pattern schedule from the simple
	// 0,1,2,3 cycle to the ABCDCDAB sequence of the supremacy experiment,
	// which repeats patterns at distance two and thereby exposes more
	// same-pair entangler sandwiches to joint cutting.
	Sycamore bool
}

// Generate builds the circuit: an initial Hadamard wall, then Depth cycles
// of (random single-qubit layer, entangling pattern). The entangling
// patterns alternate between vertical and horizontal neighbour pairings with
// two offsets each, giving the standard four-pattern cycle.
func Generate(opts Options) (*circuit.Circuit, error) {
	if opts.Rows <= 0 || opts.Cols <= 0 {
		return nil, fmt.Errorf("grcs: invalid grid %dx%d", opts.Rows, opts.Cols)
	}
	if opts.Depth < 0 {
		return nil, fmt.Errorf("grcs: negative depth %d", opts.Depth)
	}
	n := opts.Rows * opts.Cols
	rng := rand.New(rand.NewSource(opts.Seed))
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.Append(gate.H(q))
	}
	qubit := func(r, col int) int { return r*opts.Cols + col }
	singles := []func(int) gate.Gate{gate.SX, gate.SY, gate.SW}
	lastSingle := make([]int, n)
	for i := range lastSingle {
		lastSingle[i] = -1
	}
	for d := 0; d < opts.Depth; d++ {
		// Random single-qubit layer: never repeat the previous gate on the
		// same qubit (the GRCS rule preventing gate cancellation).
		for q := 0; q < n; q++ {
			k := rng.Intn(len(singles))
			for k == lastSingle[q] {
				k = rng.Intn(len(singles))
			}
			lastSingle[q] = k
			c.Append(singles[k](q))
		}
		// Entangling pattern: either the plain 4-cycle or the supremacy
		// experiment's ABCDCDAB 8-cycle (A=0, B=1, C=2, D=3).
		pattern := d % 4
		if opts.Sycamore {
			seq := [8]int{0, 1, 2, 3, 2, 3, 0, 1}
			pattern = seq[d%8]
		}
		addPair := func(a, b int) {
			switch opts.Entangler {
			case ISwap:
				c.Append(gate.ISWAP(a, b))
			case FSimGate:
				c.Append(gate.FSim(math.Pi/2, math.Pi/6, a, b))
			default:
				c.Append(gate.CZ(a, b))
			}
		}
		switch pattern {
		case 0, 1: // vertical pairs (r, r+1), starting row parity = pattern
			for r := pattern % 2; r+1 < opts.Rows; r += 2 {
				for col := 0; col < opts.Cols; col++ {
					addPair(qubit(r, col), qubit(r+1, col))
				}
			}
		case 2, 3: // horizontal pairs (c, c+1), starting col parity
			for r := 0; r < opts.Rows; r++ {
				for col := pattern % 2; col+1 < opts.Cols; col += 2 {
					addPair(qubit(r, col), qubit(r, col+1))
				}
			}
		}
	}
	return c, nil
}

// RowCutPos returns the cut position that bipartitions the grid between row
// cutRow-1 and cutRow: all qubits of rows < cutRow are in the lower
// partition. Only vertical entanglers cross this cut.
func RowCutPos(opts Options, cutRow int) int {
	return cutRow*opts.Cols - 1
}
