package shots

import (
	"math"
	"math/rand"
	"testing"

	"hsfsim/internal/gate"
	"hsfsim/internal/graph"
	"hsfsim/internal/statevec"
)

func TestSampleCountsTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	counts, err := Sample([]float64{0.25, 0.75}, 1000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if counts.Total() != 1000 {
		t.Fatalf("total = %d", counts.Total())
	}
	if counts[1] < 650 || counts[1] > 850 {
		t.Fatalf("counts[1] = %d, want ~750", counts[1])
	}
}

func TestEstimateParityBellState(t *testing.T) {
	s := statevec.NewState(2)
	h := gate.H(0)
	cx := gate.CNOT(0, 1)
	s.ApplyGate(&h)
	s.ApplyGate(&cx)
	rng := rand.New(rand.NewSource(2))
	counts, err := FromAmplitudes(s, 20000, rng)
	if err != nil {
		t.Fatal(err)
	}
	// <ZZ> = +1 exactly on a Bell state: every shot has even parity.
	zz, err := EstimateParity(counts, 0b11)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(zz.Mean-1) > 1e-12 || zz.StdErr > 1e-12 {
		t.Fatalf("ZZ estimate %v, want exactly 1", zz)
	}
	// <Z_0> = 0: estimate within 5 standard errors.
	z0, err := EstimateParity(counts, 0b01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(z0.Mean) > 5*z0.StdErr+1e-9 {
		t.Fatalf("Z0 estimate %v inconsistent with 0", z0)
	}
}

func TestEstimateCutConvergesToExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := graph.ErdosRenyi(6, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform superposition: E[cut] = |E|/2 exactly.
	probs := make([]float64, 64)
	for i := range probs {
		probs[i] = 1.0 / 64
	}
	counts, err := Sample(probs, 40000, rng)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateCut(counts, g)
	if err != nil {
		t.Fatal(err)
	}
	exact := float64(g.NumEdges()) / 2
	if math.Abs(est.Mean-exact) > 5*est.StdErr+1e-9 {
		t.Fatalf("estimate %v vs exact %g", est, exact)
	}
	if est.StdErr <= 0 {
		t.Fatal("missing standard error")
	}
}

func TestBootstrapCutCoversEstimate(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, err := graph.ErdosRenyi(5, 0.6, rng)
	if err != nil {
		t.Fatal(err)
	}
	probs := make([]float64, 32)
	for i := range probs {
		probs[i] = 1.0 / 32
	}
	counts, err := Sample(probs, 5000, rng)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateCut(counts, g)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, err := BootstrapCut(counts, g, 200, 0.95, rng)
	if err != nil {
		t.Fatal(err)
	}
	if lo > est.Mean || hi < est.Mean {
		t.Fatalf("CI [%g, %g] does not cover the point estimate %g", lo, hi, est.Mean)
	}
	if hi-lo <= 0 {
		t.Fatal("degenerate interval")
	}
}

func TestErrorsOnEmpty(t *testing.T) {
	if _, err := Sample(nil, 10, rand.New(rand.NewSource(5))); err == nil {
		t.Fatal("empty distribution accepted")
	}
	if _, err := EstimateParity(Counts{}, 1); err == nil {
		t.Fatal("empty counts accepted")
	}
	if _, err := EstimateCut(Counts{}, graph.New(2)); err == nil {
		t.Fatal("empty counts accepted")
	}
	if _, _, err := BootstrapCut(Counts{}, graph.New(2), 10, 0.95, rand.New(rand.NewSource(6))); err == nil {
		t.Fatal("empty counts accepted")
	}
}
