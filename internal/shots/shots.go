// Package shots turns exact simulator output into measurement statistics —
// the form in which any real experiment (and the QCC field the paper
// relates to) consumes quantum states. It samples bitstring counts,
// estimates diagonal observables with standard errors, and bootstraps
// confidence intervals.
package shots

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"hsfsim/internal/graph"
	"hsfsim/internal/xeb"
)

// Counts maps basis-state index to the number of times it was measured.
type Counts map[int]int

// Total returns the shot count.
func (c Counts) Total() int {
	n := 0
	for _, v := range c {
		n += v
	}
	return n
}

// Sample draws n measurement shots from the (possibly truncated)
// probability vector.
func Sample(probs []float64, n int, rng *rand.Rand) (Counts, error) {
	s, err := xeb.NewSampler(probs)
	if err != nil {
		return nil, err
	}
	counts := make(Counts)
	for _, x := range s.Sample(n, rng) {
		counts[x]++
	}
	return counts, nil
}

// FromAmplitudes samples counts directly from amplitudes.
func FromAmplitudes(amps []complex128, n int, rng *rand.Rand) (Counts, error) {
	return Sample(xeb.Probabilities(amps), n, rng)
}

// Estimate is a sample estimate with its standard error.
type Estimate struct {
	Mean   float64
	StdErr float64
	Shots  int
}

// String renders "mean ± stderr".
func (e Estimate) String() string {
	return fmt.Sprintf("%.4f ± %.4f (n=%d)", e.Mean, e.StdErr, e.Shots)
}

// EstimateParity estimates <Π_{q∈mask} Z_q> from counts: each shot
// contributes ±1 by the parity of the masked bits.
func EstimateParity(counts Counts, mask int) (Estimate, error) {
	n := counts.Total()
	if n == 0 {
		return Estimate{}, fmt.Errorf("shots: no shots")
	}
	sum := 0
	for x, c := range counts {
		if parity(x&mask) == 0 {
			sum += c
		} else {
			sum -= c
		}
	}
	mean := float64(sum) / float64(n)
	// Var of a ±1 variable: 1 - mean².
	variance := 1 - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Estimate{Mean: mean, StdErr: math.Sqrt(variance / float64(n)), Shots: n}, nil
}

// EstimateCut estimates the expected cut value of g from shots: each shot's
// bitstring is scored with the exact cut function, so the estimate is
// unbiased with variance from the cut-value spread.
func EstimateCut(counts Counts, g *graph.Graph) (Estimate, error) {
	n := counts.Total()
	if n == 0 {
		return Estimate{}, fmt.Errorf("shots: no shots")
	}
	var sum, sumSq float64
	for x, c := range counts {
		v := g.CutValue(uint64(x))
		sum += v * float64(c)
		sumSq += v * v * float64(c)
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	se := 0.0
	if n > 1 {
		se = math.Sqrt(variance / float64(n-1))
	}
	return Estimate{Mean: mean, StdErr: se, Shots: n}, nil
}

// BootstrapCut computes a percentile bootstrap confidence interval for the
// expected cut at the given level (e.g. 0.95) using resamples resampled
// count tables.
func BootstrapCut(counts Counts, g *graph.Graph, resamples int, level float64, rng *rand.Rand) (lo, hi float64, err error) {
	n := counts.Total()
	if n == 0 {
		return 0, 0, fmt.Errorf("shots: no shots")
	}
	if resamples <= 0 {
		resamples = 200
	}
	if level <= 0 || level >= 1 {
		level = 0.95
	}
	// Flatten to a shot list for resampling.
	flat := make([]int, 0, n)
	for x, c := range counts {
		for i := 0; i < c; i++ {
			flat = append(flat, x)
		}
	}
	means := make([]float64, resamples)
	for r := 0; r < resamples; r++ {
		var sum float64
		for i := 0; i < n; i++ {
			sum += g.CutValue(uint64(flat[rng.Intn(n)]))
		}
		means[r] = sum / float64(n)
	}
	sort.Float64s(means)
	alpha := (1 - level) / 2
	loIdx := int(alpha * float64(resamples))
	hiIdx := int((1 - alpha) * float64(resamples))
	if hiIdx >= resamples {
		hiIdx = resamples - 1
	}
	return means[loIdx], means[hiIdx], nil
}

func parity(x int) int {
	p := 0
	for x != 0 {
		p ^= x & 1
		x >>= 1
	}
	return p
}
