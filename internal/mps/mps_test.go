package mps

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"hsfsim/internal/circuit"
	"hsfsim/internal/gate"
	"hsfsim/internal/statevec"
)

func randomCircuit(rng *rand.Rand, n, gates int) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < gates; i++ {
		a := rng.Intn(n)
		b := (a + 1 + rng.Intn(n-1)) % n
		switch rng.Intn(6) {
		case 0:
			c.Append(gate.H(a))
		case 1:
			c.Append(gate.RX(rng.Float64()*3, a))
		case 2:
			c.Append(gate.T(a))
		case 3:
			c.Append(gate.CNOT(a, b))
		case 4:
			c.Append(gate.RZZ(rng.Float64(), a, b))
		default:
			c.Append(gate.ISWAP(a, b))
		}
	}
	return c
}

func TestInitialState(t *testing.T) {
	m := New(3)
	if cmplx.Abs(m.Amplitude(0)-1) > 1e-12 {
		t.Fatal("initial amplitude |000> != 1")
	}
	for x := uint64(1); x < 8; x++ {
		if cmplx.Abs(m.Amplitude(x)) > 1e-12 {
			t.Fatalf("initial amplitude %d nonzero", x)
		}
	}
	if math.Abs(m.Norm()-1) > 1e-12 {
		t.Fatal("initial norm != 1")
	}
}

func TestBellState(t *testing.T) {
	m := New(2)
	h := gate.H(0)
	cx := gate.CNOT(0, 1)
	if err := m.ApplyGate(&h); err != nil {
		t.Fatal(err)
	}
	if err := m.ApplyGate(&cx); err != nil {
		t.Fatal(err)
	}
	want := complex(math.Sqrt2/2, 0)
	if cmplx.Abs(m.Amplitude(0)-want) > 1e-10 || cmplx.Abs(m.Amplitude(3)-want) > 1e-10 {
		t.Fatalf("Bell amplitudes: %v %v", m.Amplitude(0), m.Amplitude(3))
	}
	if d := m.BondDims(); d[0] != 2 {
		t.Fatalf("Bell bond dim = %d, want 2", d[0])
	}
}

func TestGHZBondDimension(t *testing.T) {
	n := 8
	m := New(n)
	h := gate.H(0)
	if err := m.ApplyGate(&h); err != nil {
		t.Fatal(err)
	}
	for q := 1; q < n; q++ {
		cx := gate.CNOT(q-1, q)
		if err := m.ApplyGate(&cx); err != nil {
			t.Fatal(err)
		}
	}
	// GHZ has Schmidt rank 2 across every bond.
	for i, d := range m.BondDims() {
		if d != 2 {
			t.Fatalf("GHZ bond %d = %d, want 2", i, d)
		}
	}
	want := complex(math.Sqrt2/2, 0)
	if cmplx.Abs(m.Amplitude(0)-want) > 1e-10 || cmplx.Abs(m.Amplitude((1<<n)-1)-want) > 1e-10 {
		t.Fatal("GHZ amplitudes wrong")
	}
}

func TestMatchesStatevectorRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(5)
		c := randomCircuit(rng, n, 6+rng.Intn(14))
		ref := statevec.NewState(n)
		ref.ApplyAll(c.Gates)
		m := New(n)
		if err := m.ApplyCircuit(c); err != nil {
			t.Fatal(err)
		}
		if d := statevec.MaxAbsDiff(m.ToStatevector(), ref); d > 1e-8 {
			t.Fatalf("trial %d: MPS diverges by %g", trial, d)
		}
	}
}

func TestNonAdjacentGates(t *testing.T) {
	// A CNOT between the ends of the chain exercises the SWAP routing.
	n := 6
	c := circuit.New(n)
	c.Append(gate.H(0), gate.CNOT(0, 5), gate.RZZ(0.7, 5, 0), gate.ISWAP(1, 4))
	ref := statevec.NewState(n)
	ref.ApplyAll(c.Gates)
	m := New(n)
	if err := m.ApplyCircuit(c); err != nil {
		t.Fatal(err)
	}
	if d := statevec.MaxAbsDiff(m.ToStatevector(), ref); d > 1e-9 {
		t.Fatalf("non-adjacent routing diverges by %g", d)
	}
}

func TestNormPreservedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		c := randomCircuit(rng, n, 10)
		m := New(n)
		if err := m.ApplyCircuit(c); err != nil {
			return false
		}
		return math.Abs(m.Norm()-1) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTruncationApproximates(t *testing.T) {
	// A heavily entangling circuit truncated to bond 2 must stay normalized
	// enough to be a sensible approximation, and unbounded must stay exact.
	rng := rand.New(rand.NewSource(101))
	n := 6
	c := randomCircuit(rng, n, 30)
	exact := New(n)
	if err := exact.ApplyCircuit(c); err != nil {
		t.Fatal(err)
	}
	ref := statevec.NewState(n)
	ref.ApplyAll(c.Gates)
	if d := statevec.MaxAbsDiff(exact.ToStatevector(), ref); d > 1e-8 {
		t.Fatalf("unbounded MPS not exact: %g", d)
	}
	trunc := New(n)
	trunc.MaxBond = 2
	if err := trunc.ApplyCircuit(c); err != nil {
		t.Fatal(err)
	}
	if trunc.MaxBondDim() > 2 {
		t.Fatalf("truncation ignored: max bond %d", trunc.MaxBondDim())
	}
	// Fidelity with the exact state must be meaningfully nonzero (the state
	// loses weight under truncation but should not collapse to garbage).
	f := statevec.Fidelity(trunc.ToStatevector(), ref)
	if f < 0.05 {
		t.Fatalf("truncated fidelity %g unreasonably low", f)
	}
}

func TestBondDimensionBoundedByCutRank(t *testing.T) {
	// A single RZZ across the middle gives bond dimension 2 at that bond —
	// the MPS analogue of the paper's rank-2 cut.
	n := 4
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.Append(gate.H(q))
	}
	c.Append(gate.RZZ(0.7, 1, 2))
	m := New(n)
	if err := m.ApplyCircuit(c); err != nil {
		t.Fatal(err)
	}
	if d := m.BondDims(); d[1] != 2 {
		t.Fatalf("middle bond = %d, want 2", d[1])
	}
}

func TestRejectsLargeGates(t *testing.T) {
	m := New(3)
	ccx := gate.CCX(0, 1, 2)
	if err := m.ApplyGate(&ccx); err == nil {
		t.Fatal("3-qubit gate accepted")
	}
}

func TestApplyCircuitQubitMismatch(t *testing.T) {
	m := New(3)
	c := circuit.New(4)
	if err := m.ApplyCircuit(c); err == nil {
		t.Fatal("qubit mismatch accepted")
	}
}

func BenchmarkMPSQAOALayer(b *testing.B) {
	rng := rand.New(rand.NewSource(102))
	c := randomCircuit(rng, 16, 60)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := New(16)
		if err := m.ApplyCircuit(c); err != nil {
			b.Fatal(err)
		}
	}
}
