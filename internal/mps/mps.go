// Package mps implements a matrix product state simulator — the
// tensor-network alternative to array-based statevector simulation that the
// paper's background surveys (refs [5]-[8]). Gates are applied locally and
// two-site updates are split with the same SVD machinery that drives the
// joint-cut Schmidt decompositions; with an unbounded bond dimension the
// simulation is exact, and bounding the bond dimension yields the usual
// truncated-MPS approximation.
package mps

import (
	"fmt"
	"math"
	"math/cmplx"

	"hsfsim/internal/circuit"
	"hsfsim/internal/cmat"
	"hsfsim/internal/gate"
	"hsfsim/internal/statevec"
)

// tensor is one MPS site tensor with shape (chiL, 2, chiR), stored
// row-major as data[(l*2+s)*chiR + r].
type tensor struct {
	chiL, chiR int
	data       []complex128
}

func newTensor(chiL, chiR int) *tensor {
	return &tensor{chiL: chiL, chiR: chiR, data: make([]complex128, chiL*2*chiR)}
}

func (t *tensor) at(l, s, r int) complex128     { return t.data[(l*2+s)*t.chiR+r] }
func (t *tensor) set(l, s, r int, v complex128) { t.data[(l*2+s)*t.chiR+r] = v }

// MPS is a matrix product state on N qubits; site k carries qubit k.
type MPS struct {
	N int
	// MaxBond truncates every two-site split to at most this bond dimension
	// (0: unlimited, exact simulation).
	MaxBond int
	// Tol drops singular values below Tol·σ_max at each split (0: 1e-12).
	Tol   float64
	sites []*tensor
}

// New returns the product state |0…0> with bond dimension 1.
func New(n int) *MPS {
	if n <= 0 {
		panic(fmt.Sprintf("mps: invalid qubit count %d", n))
	}
	m := &MPS{N: n, sites: make([]*tensor, n)}
	for i := range m.sites {
		t := newTensor(1, 1)
		t.set(0, 0, 0, 1)
		m.sites[i] = t
	}
	return m
}

// BondDims returns the N-1 internal bond dimensions.
func (m *MPS) BondDims() []int {
	dims := make([]int, m.N-1)
	for i := 0; i < m.N-1; i++ {
		dims[i] = m.sites[i].chiR
	}
	return dims
}

// MaxBondDim returns the largest internal bond dimension.
func (m *MPS) MaxBondDim() int {
	mx := 1
	for _, d := range m.BondDims() {
		if d > mx {
			mx = d
		}
	}
	return mx
}

// ApplyGate applies a 1- or 2-qubit gate. Non-adjacent 2-qubit gates are
// routed with a SWAP chain. Larger gates are rejected.
func (m *MPS) ApplyGate(g *gate.Gate) error {
	switch g.NumQubits() {
	case 1:
		return m.apply1(g.Matrix, g.Qubits[0])
	case 2:
		return m.apply2(g)
	default:
		return fmt.Errorf("mps: %d-qubit gate %q unsupported (decompose first)", g.NumQubits(), g.Name)
	}
}

// ApplyCircuit applies every gate of the circuit.
func (m *MPS) ApplyCircuit(c *circuit.Circuit) error {
	if c.NumQubits != m.N {
		return fmt.Errorf("mps: circuit has %d qubits, state has %d", c.NumQubits, m.N)
	}
	for i := range c.Gates {
		if err := m.ApplyGate(&c.Gates[i]); err != nil {
			return fmt.Errorf("mps: gate %d: %w", i, err)
		}
	}
	return nil
}

func (m *MPS) apply1(u *cmat.Matrix, q int) error {
	if q < 0 || q >= m.N {
		return fmt.Errorf("mps: qubit %d out of range", q)
	}
	t := m.sites[q]
	out := newTensor(t.chiL, t.chiR)
	for l := 0; l < t.chiL; l++ {
		for r := 0; r < t.chiR; r++ {
			a0, a1 := t.at(l, 0, r), t.at(l, 1, r)
			out.set(l, 0, r, u.At(0, 0)*a0+u.At(0, 1)*a1)
			out.set(l, 1, r, u.At(1, 0)*a0+u.At(1, 1)*a1)
		}
	}
	m.sites[q] = out
	return nil
}

func (m *MPS) apply2(g *gate.Gate) error {
	a, b := g.Qubits[0], g.Qubits[1]
	if a < 0 || b < 0 || a >= m.N || b >= m.N {
		return fmt.Errorf("mps: gate %v out of range", g.Qubits)
	}
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	// Swap the lower qubit up until the pair is adjacent.
	for q := lo; q < hi-1; q++ {
		if err := m.applySwapAdjacent(q); err != nil {
			return err
		}
	}
	// Now the operands are at sites hi-1 and hi; site hi-1 holds what was
	// qubit lo. Matrix bit 0 belongs to Qubits[0] = a.
	leftIsBit0 := a == lo
	if err := m.applyTwoSite(g.Matrix, hi-1, leftIsBit0); err != nil {
		return err
	}
	// Swap back.
	for q := hi - 2; q >= lo; q-- {
		if err := m.applySwapAdjacent(q); err != nil {
			return err
		}
	}
	return nil
}

var swapMatrix = func() *cmat.Matrix {
	m := cmat.New(4, 4)
	m.Set(0, 0, 1)
	m.Set(1, 2, 1)
	m.Set(2, 1, 1)
	m.Set(3, 3, 1)
	return m
}()

func (m *MPS) applySwapAdjacent(q int) error {
	return m.applyTwoSite(swapMatrix, q, true)
}

// applyTwoSite applies a 4×4 matrix to adjacent sites (q, q+1). If
// leftIsBit0, site q supplies matrix index bit 0, else bit 1.
func (m *MPS) applyTwoSite(u *cmat.Matrix, q int, leftIsBit0 bool) error {
	if q < 0 || q+1 >= m.N {
		return fmt.Errorf("mps: adjacent pair at %d out of range", q)
	}
	A, B := m.sites[q], m.sites[q+1]
	if A.chiR != B.chiL {
		return fmt.Errorf("mps: bond mismatch at %d", q)
	}
	chiL, chiM, chiR := A.chiL, A.chiR, B.chiR

	// theta[l, sL, sR, r] = Σ_k A[l,sL,k]·B[k,sR,r], then the gate.
	idx := func(sL, sR int) int {
		if leftIsBit0 {
			return sL | sR<<1
		}
		return sR | sL<<1
	}
	theta := make([]complex128, chiL*2*2*chiR)
	thAt := func(l, sL, sR, r int) int { return ((l*2+sL)*2+sR)*chiR + r }
	for l := 0; l < chiL; l++ {
		for sL := 0; sL < 2; sL++ {
			for k := 0; k < chiM; k++ {
				av := A.at(l, sL, k)
				if av == 0 {
					continue
				}
				for sR := 0; sR < 2; sR++ {
					for r := 0; r < chiR; r++ {
						theta[thAt(l, sL, sR, r)] += av * B.at(k, sR, r)
					}
				}
			}
		}
	}
	// Apply the gate on the (sL, sR) indices.
	out := make([]complex128, len(theta))
	for l := 0; l < chiL; l++ {
		for r := 0; r < chiR; r++ {
			for sL := 0; sL < 2; sL++ {
				for sR := 0; sR < 2; sR++ {
					var acc complex128
					row := idx(sL, sR)
					for tL := 0; tL < 2; tL++ {
						for tR := 0; tR < 2; tR++ {
							uv := u.At(row, idx(tL, tR))
							if uv == 0 {
								continue
							}
							acc += uv * theta[thAt(l, tL, tR, r)]
						}
					}
					out[thAt(l, sL, sR, r)] = acc
				}
			}
		}
	}

	// Split with an SVD over the (l,sL) × (sR,r) matricization.
	mat := cmat.New(chiL*2, 2*chiR)
	for l := 0; l < chiL; l++ {
		for sL := 0; sL < 2; sL++ {
			for sR := 0; sR < 2; sR++ {
				for r := 0; r < chiR; r++ {
					mat.Set(l*2+sL, sR*chiR+r, out[thAt(l, sL, sR, r)])
				}
			}
		}
	}
	svd, err := cmat.SVD(mat)
	if err != nil {
		return err
	}
	tol := m.Tol
	if tol <= 0 {
		tol = 1e-12
	}
	rank := svd.Rank(tol)
	if rank == 0 {
		rank = 1
	}
	if m.MaxBond > 0 && rank > m.MaxBond {
		rank = m.MaxBond
	}
	newA := newTensor(chiL, rank)
	for l := 0; l < chiL; l++ {
		for sL := 0; sL < 2; sL++ {
			for k := 0; k < rank; k++ {
				newA.set(l, sL, k, svd.U.At(l*2+sL, k))
			}
		}
	}
	newB := newTensor(rank, chiR)
	for k := 0; k < rank; k++ {
		sv := complex(svd.S[k], 0)
		for sR := 0; sR < 2; sR++ {
			for r := 0; r < chiR; r++ {
				newB.set(k, sR, r, sv*cmplx.Conj(svd.V.At(sR*chiR+r, k)))
			}
		}
	}
	m.sites[q] = newA
	m.sites[q+1] = newB
	return nil
}

// Amplitude returns <x|ψ> for the basis state with bit q of x at site q.
func (m *MPS) Amplitude(x uint64) complex128 {
	vec := []complex128{1}
	for q := 0; q < m.N; q++ {
		t := m.sites[q]
		s := int((x >> uint(q)) & 1)
		next := make([]complex128, t.chiR)
		for r := 0; r < t.chiR; r++ {
			var acc complex128
			for l := 0; l < t.chiL; l++ {
				acc += vec[l] * t.at(l, s, r)
			}
			next[r] = acc
		}
		vec = next
	}
	return vec[0]
}

// Norm returns sqrt(<ψ|ψ>) contracted site by site.
func (m *MPS) Norm() float64 {
	// rho[l][l'] transfer matrix, starting from 1x1.
	rho := [][]complex128{{1}}
	for q := 0; q < m.N; q++ {
		t := m.sites[q]
		next := make([][]complex128, t.chiR)
		for i := range next {
			next[i] = make([]complex128, t.chiR)
		}
		for l := 0; l < t.chiL; l++ {
			for lp := 0; lp < t.chiL; lp++ {
				rv := rho[l][lp]
				if rv == 0 {
					continue
				}
				for s := 0; s < 2; s++ {
					for r := 0; r < t.chiR; r++ {
						av := t.at(l, s, r)
						if av == 0 {
							continue
						}
						for rp := 0; rp < t.chiR; rp++ {
							next[r][rp] += rv * cmplx.Conj(av) * t.at(lp, s, rp)
						}
					}
				}
			}
		}
		rho = next
	}
	return math.Sqrt(real(rho[0][0]))
}

// ToStatevector expands the MPS to a dense statevector (exponential in N;
// for verification on small systems).
func (m *MPS) ToStatevector() statevec.State {
	out := make(statevec.State, 1<<m.N)
	for x := range out {
		out[x] = m.Amplitude(uint64(x))
	}
	return out
}
