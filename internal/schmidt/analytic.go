package schmidt

import (
	"math/cmplx"

	"hsfsim/internal/cmat"
)

// This file provides the analytic rank-2 decompositions of gate "cascades"
// from paper Sec. IV-D (Ex. 4): a fan of two-qubit gates sharing a single
// anchor qubit on one side of the cut decomposes as
//
//	C = P0_anchor ⊗ A0^(1)⊗…⊗A0^(k)  +  P1_anchor ⊗ A1^(1)⊗…⊗A1^(k)
//
// keeping the Schmidt rank at 2 regardless of the cascade length, whereas
// separate cuts would cost 2^k paths.

func p0() *cmat.Matrix { return cmat.FromSlice(2, 2, []complex128{1, 0, 0, 0}) }
func p1() *cmat.Matrix { return cmat.FromSlice(2, 2, []complex128{0, 0, 0, 1}) }

// kronChain returns m_k-1 ⊗ … ⊗ m_0, i.e. element i of ms supplies bit i.
func kronChain(ms []*cmat.Matrix) *cmat.Matrix {
	out := ms[len(ms)-1]
	for i := len(ms) - 2; i >= 0; i-- {
		out = cmat.Kron(out, ms[i])
	}
	if len(ms) == 1 {
		out = ms[0].Clone()
	}
	return out
}

// cascade assembles the two-term decomposition given the per-fan factors for
// the anchor-|0> and anchor-|1> branches. When anchorUpper is true the anchor
// qubit forms the (single-qubit) upper partition; otherwise the lower one.
func cascade(branch0, branch1 []*cmat.Matrix, anchorUpper bool) *Decomposition {
	f0 := kronChain(branch0)
	f1 := kronChain(branch1)
	k := len(branch0)
	d := &Decomposition{}
	if anchorUpper {
		d.NumUpper = 1
		d.NumLower = k
		d.Terms = []Term{
			{Sigma: 1, Upper: p0(), Lower: f0},
			{Sigma: 1, Upper: p1(), Lower: f1},
		}
	} else {
		d.NumLower = 1
		d.NumUpper = k
		d.Terms = []Term{
			{Sigma: 1, Upper: f0, Lower: p0()},
			{Sigma: 1, Upper: f1, Lower: p1()},
		}
	}
	d.SingularValues = []float64{1, 1}
	return d
}

// CNOTCascade returns the analytic decomposition of k CNOT gates sharing
// their control (the anchor): P0 ⊗ I^⊗k + P1 ⊗ X^⊗k (paper Eq. 11).
func CNOTCascade(k int, anchorUpper bool) *Decomposition {
	id := cmat.Identity(2)
	x := cmat.FromSlice(2, 2, []complex128{0, 1, 1, 0})
	b0 := make([]*cmat.Matrix, k)
	b1 := make([]*cmat.Matrix, k)
	for i := range b0 {
		b0[i] = id
		b1[i] = x
	}
	return cascade(b0, b1, anchorUpper)
}

// CZCascade returns the analytic decomposition of k CZ gates sharing one
// qubit: P0 ⊗ I^⊗k + P1 ⊗ Z^⊗k.
func CZCascade(k int, anchorUpper bool) *Decomposition {
	id := cmat.Identity(2)
	z := cmat.FromSlice(2, 2, []complex128{1, 0, 0, -1})
	b0 := make([]*cmat.Matrix, k)
	b1 := make([]*cmat.Matrix, k)
	for i := range b0 {
		b0[i] = id
		b1[i] = z
	}
	return cascade(b0, b1, anchorUpper)
}

// CPhaseCascade returns the analytic decomposition of controlled-phase
// gates CP(φ_j) sharing their anchor qubit:
//
//	Π_j CP(φ_j) = P0 ⊗ I^⊗k + P1 ⊗ (⊗_j diag(1, e^{iφ_j})).
func CPhaseCascade(phis []float64, anchorUpper bool) *Decomposition {
	id := cmat.Identity(2)
	ph := func(phi float64) *cmat.Matrix {
		return cmat.FromSlice(2, 2, []complex128{1, 0, 0, cmplx.Exp(complex(0, phi))})
	}
	b0 := make([]*cmat.Matrix, len(phis))
	b1 := make([]*cmat.Matrix, len(phis))
	for i, phi := range phis {
		b0[i] = id
		b1[i] = ph(phi)
	}
	return cascade(b0, b1, anchorUpper)
}

// RZZCascade returns the analytic decomposition of RZZ(θ_j) gates all
// sharing the anchor qubit:
//
//	Π_j RZZ(θ_j) = P0 ⊗ (⊗_j RZ(θ_j)) + P1 ⊗ (⊗_j RZ(-θ_j)).
func RZZCascade(thetas []float64, anchorUpper bool) *Decomposition {
	rz := func(theta float64) *cmat.Matrix {
		return cmat.FromSlice(2, 2, []complex128{
			cmplx.Exp(complex(0, -theta/2)), 0,
			0, cmplx.Exp(complex(0, theta/2)),
		})
	}
	b0 := make([]*cmat.Matrix, len(thetas))
	b1 := make([]*cmat.Matrix, len(thetas))
	for i, th := range thetas {
		b0[i] = rz(th)
		b1[i] = rz(-th)
	}
	return cascade(b0, b1, anchorUpper)
}
