package schmidt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hsfsim/internal/circuit"
	"hsfsim/internal/cmat"
	"hsfsim/internal/gate"
)

// opOnQubits builds the matrix of a sequence of gates on a k-qubit register.
func opOnQubits(k int, gs ...gate.Gate) *cmat.Matrix {
	c := circuit.New(k)
	c.Append(gs...)
	return c.Unitary()
}

func TestCNOTSchmidtRank2(t *testing.T) {
	// CNOT across the 1|1 bipartition has Schmidt rank 2 (paper Ex. 2).
	op := opOnQubits(2, gate.CNOT(0, 1))
	d, err := Decompose(op, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Rank() != 2 {
		t.Fatalf("CNOT rank = %d, want 2 (S=%v)", d.Rank(), d.SingularValues)
	}
	if e := d.ReconstructionError(op); e > 1e-9 {
		t.Fatalf("reconstruction error %g", e)
	}
}

func TestGateRanks(t *testing.T) {
	cases := []struct {
		name string
		g    gate.Gate
		rank int
	}{
		{"cz", gate.CZ(0, 1), 2},
		{"cx", gate.CNOT(0, 1), 2},
		{"cp", gate.CPhase(0.7, 0, 1), 2},
		{"rzz", gate.RZZ(0.5, 0, 1), 2},
		{"rzz-pi-multiple", gate.RZZ(0, 0, 1), 1}, // identity up to phase
		{"swap", gate.SWAP(0, 1), 4},              // paper Fig. 3 caption
		{"iswap", gate.ISWAP(0, 1), 4},
		{"fsim", gate.FSim(0.5, 0.4, 0, 1), 4},
		{"rxx", gate.RXX(0.9, 0, 1), 2},
	}
	for _, c := range cases {
		op := opOnQubits(2, c.g)
		d, err := Decompose(op, 1, 1, 0)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if d.Rank() != c.rank {
			t.Errorf("%s rank = %d, want %d (S=%v)", c.name, d.Rank(), c.rank, d.SingularValues)
		}
		if e := d.ReconstructionError(op); e > 1e-9 {
			t.Errorf("%s reconstruction error %g", c.name, e)
		}
	}
}

func TestLocalProductHasRank1(t *testing.T) {
	// H ⊗ T acts locally on each side: rank 1.
	op := opOnQubits(2, gate.H(1), gate.T(0))
	d, err := Decompose(op, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Rank() != 1 {
		t.Fatalf("local product rank = %d, want 1", d.Rank())
	}
}

func TestCNOTCascadeNumericRank2(t *testing.T) {
	// A cascade of k CNOTs sharing the control keeps rank 2 (paper Ex. 4).
	for k := 1; k <= 4; k++ {
		gs := make([]gate.Gate, k)
		for i := 0; i < k; i++ {
			// Control = top qubit (index k), targets below.
			gs[i] = gate.CNOT(k, i)
		}
		op := opOnQubits(k+1, gs...)
		d, err := Decompose(op, k, 1, 0) // lower: k targets, upper: control
		if err != nil {
			t.Fatal(err)
		}
		if d.Rank() != 2 {
			t.Fatalf("k=%d cascade rank = %d, want 2", k, d.Rank())
		}
		if e := d.ReconstructionError(op); e > 1e-9 {
			t.Fatalf("k=%d reconstruction error %g", k, e)
		}
	}
}

func TestAnalyticCascadesMatchOperators(t *testing.T) {
	// CNOT cascade with anchor as the single upper qubit.
	for k := 1; k <= 4; k++ {
		gs := make([]gate.Gate, k)
		for i := 0; i < k; i++ {
			gs[i] = gate.CNOT(k, i)
		}
		op := opOnQubits(k+1, gs...)
		d := CNOTCascade(k, true)
		if e := d.ReconstructionError(op); e > 1e-9 {
			t.Fatalf("CNOT cascade k=%d analytic error %g", k, e)
		}
	}
	// CZ cascade.
	for k := 1; k <= 3; k++ {
		gs := make([]gate.Gate, k)
		for i := 0; i < k; i++ {
			gs[i] = gate.CZ(k, i)
		}
		op := opOnQubits(k+1, gs...)
		d := CZCascade(k, true)
		if e := d.ReconstructionError(op); e > 1e-9 {
			t.Fatalf("CZ cascade k=%d analytic error %g", k, e)
		}
	}
	// RZZ cascade with distinct angles.
	thetas := []float64{0.3, -0.8, 1.7}
	gs := make([]gate.Gate, len(thetas))
	for i, th := range thetas {
		gs[i] = gate.RZZ(th, 3, i)
	}
	op := opOnQubits(4, gs...)
	d := RZZCascade(thetas, true)
	if e := d.ReconstructionError(op); e > 1e-9 {
		t.Fatalf("RZZ cascade analytic error %g", e)
	}
}

func TestAnalyticCascadeAnchorLower(t *testing.T) {
	// Anchor on the lower side: control is qubit 0, targets above.
	thetas := []float64{0.4, 0.9}
	gs := []gate.Gate{gate.RZZ(0.4, 0, 1), gate.RZZ(0.9, 0, 2)}
	op := opOnQubits(3, gs...)
	d := RZZCascade(thetas, false)
	if e := d.ReconstructionError(op); e > 1e-9 {
		t.Fatalf("anchor-lower RZZ cascade error %g", e)
	}
}

func TestRankBound(t *testing.T) {
	// Random unitaries never exceed the min(4^na, 4^nb) bound (Sec. IV-B).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nLo := 1 + rng.Intn(2)
		nUp := 1 + rng.Intn(2)
		n := nLo + nUp
		c := circuit.New(n)
		for i := 0; i < 10; i++ {
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			c.Append(gate.CNOT(a, b), gate.RX(rng.Float64()*3, rng.Intn(n)), gate.T(rng.Intn(n)))
		}
		op := c.Unitary()
		d, err := Decompose(op, nLo, nUp, 0)
		if err != nil {
			return false
		}
		return d.Rank() <= MaxRank(nLo, nUp) && d.ReconstructionError(op) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedNormEqualsFrobenius(t *testing.T) {
	op := opOnQubits(2, gate.CNOT(0, 1))
	d, err := Decompose(op, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.WeightedNorm()-op.FrobeniusNorm()) > 1e-9 {
		t.Fatalf("Σσ² = %g, ||A||_F = %g", d.WeightedNorm(), op.FrobeniusNorm())
	}
}

func TestMaxRank(t *testing.T) {
	if MaxRank(1, 1) != 4 || MaxRank(2, 1) != 4 || MaxRank(2, 2) != 16 || MaxRank(3, 1) != 4 {
		t.Fatal("MaxRank wrong")
	}
}

func TestDecomposeErrors(t *testing.T) {
	if _, err := Decompose(cmat.Identity(4), 2, 1, 0); err == nil {
		t.Fatal("dimension mismatch not rejected")
	}
	if _, err := Decompose(cmat.Identity(4), 2, 0, 0); err == nil {
		t.Fatal("trivial bipartition not rejected")
	}
}

func TestOperatorSchmidtRank(t *testing.T) {
	op := opOnQubits(2, gate.SWAP(0, 1))
	r, err := OperatorSchmidtRank(op, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r != 4 {
		t.Fatalf("SWAP rank = %d, want 4", r)
	}
}

func TestSchmidtOfTwoRZZBlockSharedAnchor(t *testing.T) {
	// Two RZZ gates sharing the anchor across the cut: joint rank 2, while
	// separate cutting would give 2·2 = 4 paths. This is the core joint-cut
	// win on QAOA circuits.
	gs := []gate.Gate{gate.RZZ(0.7, 2, 0), gate.RZZ(1.1, 2, 1)}
	op := opOnQubits(3, gs...)
	d, err := Decompose(op, 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Rank() != 2 {
		t.Fatalf("joint rank = %d, want 2", d.Rank())
	}
}

func BenchmarkDecompose2Qubit(b *testing.B) {
	op := opOnQubits(2, gate.RZZ(0.5, 0, 1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decompose(op, 1, 1, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompose4QubitBlock(b *testing.B) {
	gs := []gate.Gate{gate.RZZ(0.5, 3, 0), gate.RZZ(0.6, 3, 1), gate.RZZ(0.7, 3, 2)}
	op := opOnQubits(4, gs...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decompose(op, 3, 1, 0); err != nil {
			b.Fatal(err)
		}
	}
}
