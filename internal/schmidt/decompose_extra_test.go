package schmidt

import (
	"math"
	"testing"

	"hsfsim/internal/circuit"
	"hsfsim/internal/gate"
)

func TestSingularValuesOfCommonGates(t *testing.T) {
	// The Schmidt spectrum is a gate fingerprint: verify the known values.
	cases := []struct {
		name string
		g    gate.Gate
		want []float64
	}{
		// CNOT/CZ: σ = (√2, √2) — the two projector terms carry equal weight.
		{"cx", gate.CNOT(0, 1), []float64{math.Sqrt2, math.Sqrt2}},
		{"cz", gate.CZ(0, 1), []float64{math.Sqrt2, math.Sqrt2}},
		// SWAP: four equal singular values of 1.
		{"swap", gate.SWAP(0, 1), []float64{1, 1, 1, 1}},
	}
	for _, c := range cases {
		op := opOnQubits(2, c.g)
		d, err := Decompose(op, 1, 1, 0)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if d.Rank() != len(c.want) {
			t.Fatalf("%s: rank %d, want %d", c.name, d.Rank(), len(c.want))
		}
		for i, w := range c.want {
			if math.Abs(d.Terms[i].Sigma-w) > 1e-9 {
				t.Errorf("%s: σ[%d] = %g, want %g", c.name, i, d.Terms[i].Sigma, w)
			}
		}
	}
}

func TestRZZSigmaAngleDependence(t *testing.T) {
	// RZZ(θ): σ = (2|cos θ/2|, 2|sin θ/2|) — the joint-cut branch weights.
	for _, theta := range []float64{0.2, 1.0, math.Pi / 2, 2.5} {
		op := opOnQubits(2, gate.RZZ(theta, 0, 1))
		d, err := Decompose(op, 1, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		c := 2 * math.Abs(math.Cos(theta/2))
		s := 2 * math.Abs(math.Sin(theta/2))
		hi, lo := c, s
		if lo > hi {
			hi, lo = lo, hi
		}
		if math.Abs(d.Terms[0].Sigma-hi) > 1e-9 || math.Abs(d.Terms[1].Sigma-lo) > 1e-9 {
			t.Fatalf("θ=%g: σ = (%g, %g), want (%g, %g)",
				theta, d.Terms[0].Sigma, d.Terms[1].Sigma, hi, lo)
		}
	}
}

func TestUnbalancedBipartitions(t *testing.T) {
	// A 4-qubit operator cut 1|3 and 3|1: ranks bounded by 4 either way.
	gs := []gate.Gate{gate.CNOT(0, 1), gate.CNOT(1, 2), gate.CNOT(2, 3)}
	op := opOnQubits(4, gs...)
	for _, split := range [][2]int{{1, 3}, {3, 1}, {2, 2}} {
		d, err := Decompose(op, split[0], split[1], 0)
		if err != nil {
			t.Fatalf("split %v: %v", split, err)
		}
		if d.Rank() > MaxRank(split[0], split[1]) {
			t.Fatalf("split %v: rank %d exceeds bound %d", split, d.Rank(), MaxRank(split[0], split[1]))
		}
		if e := d.ReconstructionError(op); e > 1e-9 {
			t.Fatalf("split %v: reconstruction error %g", split, e)
		}
	}
}

func TestTermsKroneckerDimensions(t *testing.T) {
	gs := []gate.Gate{gate.RZZ(0.5, 0, 2), gate.RZZ(0.7, 1, 2)}
	block := circuit.New(3)
	block.Append(gs...)
	d, err := Decompose(block.Unitary(), 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, term := range d.Terms {
		if term.Lower.Rows != 4 || term.Upper.Rows != 2 {
			t.Fatalf("term shapes: lower %d, upper %d", term.Lower.Rows, term.Upper.Rows)
		}
	}
}
