// Package schmidt implements the Schmidt decomposition of quantum operators
// across a qubit bipartition (paper Sec. IV-A): the operator matrix is
// reshaped so that the row index collects the lower-partition in/out indices
// and the column index the upper-partition ones, an SVD is performed, and the
// factors are absorbed into per-partition operators, yielding
//
//	A = Σ_m σ_m · X_m ⊗ Y_m
//
// with X_m acting on the upper partition, Y_m on the lower partition, and the
// number of terms equal to the Schmidt rank r ≤ min(4^{n_a}, 4^{n_b}).
package schmidt

import (
	"fmt"
	"math"

	"hsfsim/internal/cmat"
)

// DefaultTol is the relative singular-value threshold below which a Schmidt
// term is discarded as numerically zero.
const DefaultTol = 1e-10

// Term is one summand of a Schmidt decomposition. Upper has dimension
// 2^{n_a} × 2^{n_a}, Lower 2^{n_b} × 2^{n_b}. Neither factor needs to be
// unitary (cf. the projector decomposition of a CNOT in paper Ex. 2).
type Term struct {
	Sigma float64
	Upper *cmat.Matrix // X_m: acts on the upper partition (high bits)
	Lower *cmat.Matrix // Y_m: acts on the lower partition (low bits)
}

// Decomposition is the full result of a Schmidt decomposition.
type Decomposition struct {
	Terms          []Term
	NumLower       int // n_b: qubits in the lower partition (low bits)
	NumUpper       int // n_a: qubits in the upper partition (high bits)
	SingularValues []float64
}

// Rank returns the number of retained terms (the Schmidt rank).
func (d *Decomposition) Rank() int { return len(d.Terms) }

// MaxRank returns the theoretical rank bound min(4^{n_a}, 4^{n_b}) from
// paper Sec. IV-B (Nielsen et al. 2003).
func MaxRank(nLower, nUpper int) int {
	a := 1 << (2 * nUpper)
	b := 1 << (2 * nLower)
	if a < b {
		return a
	}
	return b
}

// Decompose computes the Schmidt decomposition of op, an operator on
// nLower+nUpper qubits whose matrix index uses bits [0,nLower) for the lower
// partition and [nLower, nLower+nUpper) for the upper partition. Terms with
// σ ≤ tol·σ_max are dropped; tol ≤ 0 selects DefaultTol.
func Decompose(op *cmat.Matrix, nLower, nUpper int, tol float64) (*Decomposition, error) {
	n := nLower + nUpper
	dim := 1 << n
	if op.Rows != dim || op.Cols != dim {
		return nil, fmt.Errorf("schmidt: operator is %dx%d, want %dx%d for %d qubits", op.Rows, op.Cols, dim, dim, n)
	}
	if nLower == 0 || nUpper == 0 {
		return nil, fmt.Errorf("schmidt: trivial bipartition (%d, %d)", nLower, nUpper)
	}
	if tol <= 0 {
		tol = DefaultTol
	}

	dimLo := 1 << nLower
	dimUp := 1 << nUpper

	// Reshape: Ã[(i_b, j_b), (i_a, j_a)] = A[i, j] with i = i_a·dimLo + i_b.
	rows := dimLo * dimLo
	cols := dimUp * dimUp
	reshaped := cmat.New(rows, cols)
	for ia := 0; ia < dimUp; ia++ {
		for ib := 0; ib < dimLo; ib++ {
			i := ia*dimLo + ib
			for ja := 0; ja < dimUp; ja++ {
				for jb := 0; jb < dimLo; jb++ {
					j := ja*dimLo + jb
					reshaped.Set(ib*dimLo+jb, ia*dimUp+ja, op.At(i, j))
				}
			}
		}
	}

	svd, err := cmat.SVD(reshaped)
	if err != nil {
		return nil, fmt.Errorf("schmidt: %w", err)
	}
	rank := svd.Rank(tol)

	d := &Decomposition{NumLower: nLower, NumUpper: nUpper, SingularValues: svd.S}
	for m := 0; m < rank; m++ {
		lower := cmat.New(dimLo, dimLo)
		for ib := 0; ib < dimLo; ib++ {
			for jb := 0; jb < dimLo; jb++ {
				lower.Set(ib, jb, svd.U.At(ib*dimLo+jb, m))
			}
		}
		upper := cmat.New(dimUp, dimUp)
		for ia := 0; ia < dimUp; ia++ {
			for ja := 0; ja < dimUp; ja++ {
				// V† row m: conj(V[(i_a,j_a), m]).
				v := svd.V.At(ia*dimUp+ja, m)
				upper.Set(ia, ja, complex(real(v), -imag(v)))
			}
		}
		d.Terms = append(d.Terms, Term{Sigma: svd.S[m], Upper: upper, Lower: lower})
	}
	return d, nil
}

// Reconstruct recomputes Σ σ_m X_m ⊗ Y_m for verification.
func (d *Decomposition) Reconstruct() *cmat.Matrix {
	dim := 1 << (d.NumLower + d.NumUpper)
	out := cmat.New(dim, dim)
	for _, t := range d.Terms {
		out = cmat.Add(out, cmat.Scale(complex(t.Sigma, 0), cmat.Kron(t.Upper, t.Lower)))
	}
	return out
}

// ReconstructionError returns max |op - Σ σ X⊗Y| entry-wise.
func (d *Decomposition) ReconstructionError(op *cmat.Matrix) float64 {
	return cmat.MaxAbsDiff(op, d.Reconstruct())
}

// OperatorSchmidtRank computes just the Schmidt rank of op across the given
// bipartition, without building the term matrices.
func OperatorSchmidtRank(op *cmat.Matrix, nLower, nUpper int, tol float64) (int, error) {
	d, err := Decompose(op, nLower, nUpper, tol)
	if err != nil {
		return 0, err
	}
	return d.Rank(), nil
}

// WeightedNorm returns sqrt(Σ σ_m²); for a unitary on n qubits this equals
// 2^{n/2}·... — more precisely it equals the Frobenius norm of the operator,
// a useful sanity invariant.
func (d *Decomposition) WeightedNorm() float64 {
	var s float64
	for _, t := range d.Terms {
		s += t.Sigma * t.Sigma
	}
	return math.Sqrt(s)
}
