// Package trotter builds Trotterized time-evolution circuits for spin-chain
// Hamiltonians — the quantum many-body workload the paper points to through
// Richter's Schrödinger-Feynman study (ref [35]). First- and second-order
// product formulas are provided; the two-qubit terms map to RZZ/RXX/RYY
// rotations that the HSF cut planner understands natively.
package trotter

import (
	"fmt"

	"hsfsim/internal/circuit"
	"hsfsim/internal/gate"
)

// Order selects the product formula.
type Order int

// Product formula orders.
const (
	// FirstOrder is the Lie-Trotter formula e^{-iAδ}e^{-iBδ} per step.
	FirstOrder Order = iota
	// SecondOrder is the symmetric Suzuki-Trotter formula
	// e^{-iAδ/2}e^{-iBδ}e^{-iAδ/2} per step.
	SecondOrder
)

// Ising describes a transverse-field Ising chain
//
//	H = J Σ_i Z_i Z_{i+1} + h Σ_i X_i
//
// on N sites with open boundary conditions (Periodic adds the wrap bond).
type Ising struct {
	N        int
	J        float64
	H        float64
	Periodic bool
}

// Heisenberg describes an XXZ chain
//
//	H = Σ_i [ Jx (X_iX_{i+1} + Y_iY_{i+1}) + Jz Z_iZ_{i+1} ]
//
// on N sites with open boundary conditions.
type Heisenberg struct {
	N        int
	Jx, Jz   float64
	Periodic bool
}

// Options configures circuit construction.
type Options struct {
	// Steps is the number of Trotter steps.
	Steps int
	// Dt is the step duration δt.
	Dt float64
	// Order selects the product formula (default FirstOrder).
	Order Order
	// PlusStart prepends a Hadamard wall so the evolution starts from
	// |+…+> (a global quench); otherwise the initial state is |0…0>.
	PlusStart bool
}

func (o Options) validate() error {
	if o.Steps < 0 {
		return fmt.Errorf("trotter: negative step count %d", o.Steps)
	}
	return nil
}

// bonds enumerates the chain's nearest-neighbour bonds.
func bonds(n int, periodic bool) [][2]int {
	var bs [][2]int
	for i := 0; i+1 < n; i++ {
		bs = append(bs, [2]int{i, i + 1})
	}
	if periodic && n > 2 {
		bs = append(bs, [2]int{0, n - 1})
	}
	return bs
}

// BuildIsing constructs the Trotter circuit for the Ising chain. The ZZ
// layer uses RZZ(2·J·δ) per bond and the field layer RX(2·h·δ) per site,
// since RZZ(θ) = e^{-iθZZ/2}.
func BuildIsing(m Ising, opts Options) (*circuit.Circuit, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if m.N < 2 {
		return nil, fmt.Errorf("trotter: chain needs ≥ 2 sites, got %d", m.N)
	}
	c := circuit.New(m.N)
	if opts.PlusStart {
		for q := 0; q < m.N; q++ {
			c.Append(gate.H(q))
		}
	}
	zz := func(scale float64) {
		for _, b := range bonds(m.N, m.Periodic) {
			c.Append(gate.RZZ(2*m.J*opts.Dt*scale, b[0], b[1]))
		}
	}
	field := func(scale float64) {
		for q := 0; q < m.N; q++ {
			c.Append(gate.RX(2*m.H*opts.Dt*scale, q))
		}
	}
	for s := 0; s < opts.Steps; s++ {
		if opts.Order == SecondOrder {
			zz(0.5)
			field(1)
			zz(0.5)
		} else {
			zz(1)
			field(1)
		}
	}
	return c, nil
}

// BuildHeisenberg constructs the Trotter circuit for the XXZ chain: per bond
// RXX, RYY, and RZZ rotations.
func BuildHeisenberg(m Heisenberg, opts Options) (*circuit.Circuit, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if m.N < 2 {
		return nil, fmt.Errorf("trotter: chain needs ≥ 2 sites, got %d", m.N)
	}
	c := circuit.New(m.N)
	if opts.PlusStart {
		for q := 0; q < m.N; q++ {
			c.Append(gate.H(q))
		}
	}
	bond := func(b [2]int, scale float64) {
		c.Append(gate.RXX(2*m.Jx*opts.Dt*scale, b[0], b[1]))
		c.Append(gate.RYY(2*m.Jx*opts.Dt*scale, b[0], b[1]))
		c.Append(gate.RZZ(2*m.Jz*opts.Dt*scale, b[0], b[1]))
	}
	bs := bonds(m.N, m.Periodic)
	// Even/odd bond layers (the standard brick-wall decomposition), so
	// gates within a layer commute.
	layer := func(parity int, scale float64) {
		for _, b := range bs {
			if b[0]%2 == parity {
				bond(b, scale)
			}
		}
	}
	for s := 0; s < opts.Steps; s++ {
		if opts.Order == SecondOrder {
			layer(0, 0.5)
			layer(1, 1)
			layer(0, 0.5)
		} else {
			layer(0, 1)
			layer(1, 1)
		}
	}
	return c, nil
}
