package trotter

import (
	"math"
	"math/cmplx"
	"testing"

	"hsfsim/internal/circuit"
	"hsfsim/internal/cmat"
	"hsfsim/internal/gate"
	"hsfsim/internal/statevec"
)

// exactEvolution computes e^{-iHt}|ψ0> with the shared matrix exponential.
func exactEvolution(h *cmat.Matrix, t float64, psi0 []complex128) []complex128 {
	return cmat.MulVec(cmat.ExpmHermitian(h, -t), psi0)
}

// isingHamiltonian builds the dense Ising H for testing.
func isingHamiltonian(m Ising) *cmat.Matrix {
	dim := 1 << m.N
	h := cmat.New(dim, dim)
	zzAdd := func(a, b int, w float64) {
		for x := 0; x < dim; x++ {
			sa := 1.0 - 2*float64((x>>a)&1)
			sb := 1.0 - 2*float64((x>>b)&1)
			h.Set(x, x, h.At(x, x)+complex(w*sa*sb, 0))
		}
	}
	for _, b := range bonds(m.N, m.Periodic) {
		zzAdd(b[0], b[1], m.J)
	}
	// X terms.
	for q := 0; q < m.N; q++ {
		for x := 0; x < dim; x++ {
			y := x ^ (1 << q)
			h.Set(x, y, h.At(x, y)+complex(m.H, 0))
		}
	}
	return h
}

func TestIsingFirstOrderConverges(t *testing.T) {
	m := Ising{N: 4, J: 1, H: 0.7}
	ham := isingHamiltonian(m)
	const tTotal = 0.5
	psi0 := make([]complex128, 1<<m.N)
	psi0[0] = 1
	want := exactEvolution(ham, tTotal, psi0)

	errFor := func(steps int, order Order) float64 {
		c, err := BuildIsing(m, Options{Steps: steps, Dt: tTotal / float64(steps), Order: order})
		if err != nil {
			t.Fatal(err)
		}
		s := statevec.NewState(m.N)
		s.ApplyAll(c.Gates)
		var worst float64
		for i := range s {
			if d := cmplx.Abs(s[i] - want[i]); d > worst {
				worst = d
			}
		}
		return worst
	}

	e8 := errFor(8, FirstOrder)
	e32 := errFor(32, FirstOrder)
	if e32 > e8/2 {
		t.Fatalf("first order not converging: err(8)=%g err(32)=%g", e8, e32)
	}
	// Second order must beat first order at equal step count.
	s8 := errFor(8, SecondOrder)
	if s8 > e8 {
		t.Fatalf("second order (%g) worse than first (%g)", s8, e8)
	}
}

func TestSecondOrderScaling(t *testing.T) {
	// Second-order error ~ O(δ²·T): quadrupling steps should cut the error
	// by roughly 16; accept ≥ 8 to stay robust.
	m := Ising{N: 3, J: 0.8, H: 0.5}
	ham := isingHamiltonian(m)
	const tTotal = 0.6
	psi0 := make([]complex128, 1<<m.N)
	psi0[0] = 1
	want := exactEvolution(ham, tTotal, psi0)
	errFor := func(steps int) float64 {
		c, err := BuildIsing(m, Options{Steps: steps, Dt: tTotal / float64(steps), Order: SecondOrder})
		if err != nil {
			t.Fatal(err)
		}
		s := statevec.NewState(m.N)
		s.ApplyAll(c.Gates)
		var worst float64
		for i := range s {
			if d := cmplx.Abs(s[i] - want[i]); d > worst {
				worst = d
			}
		}
		return worst
	}
	e4 := errFor(4)
	e16 := errFor(16)
	if e16 > e4/8 {
		t.Fatalf("second order scaling off: err(4)=%g err(16)=%g", e4, e16)
	}
}

func TestHeisenbergConservesMagnetization(t *testing.T) {
	// XXZ conserves total Z magnetization: starting from |0011> the
	// expectation of Σ Z_q stays 0 under evolution.
	m := Heisenberg{N: 4, Jx: 0.9, Jz: 0.4}
	c, err := BuildHeisenberg(m, Options{Steps: 12, Dt: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	s := statevec.NewState(4)
	// Prepare |0011>: flip qubits 0,1.
	x0, x1 := gate.X(0), gate.X(1)
	s.ApplyGate(&x0)
	s.ApplyGate(&x1)
	s.ApplyAll(c.Gates)
	var mz float64
	for x := range s {
		p := s.Probability(x)
		if p == 0 {
			continue
		}
		zsum := 0.0
		for q := 0; q < 4; q++ {
			zsum += 1 - 2*float64((x>>q)&1)
		}
		mz += p * zsum
	}
	if math.Abs(mz) > 1e-9 {
		t.Fatalf("total magnetization drifted: %g", mz)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := BuildIsing(Ising{N: 1, J: 1, H: 1}, Options{Steps: 1, Dt: 0.1}); err == nil {
		t.Fatal("single-site chain accepted")
	}
	if _, err := BuildIsing(Ising{N: 4, J: 1, H: 1}, Options{Steps: -1, Dt: 0.1}); err == nil {
		t.Fatal("negative steps accepted")
	}
	if _, err := BuildHeisenberg(Heisenberg{N: 1, Jx: 1, Jz: 1}, Options{Steps: 1, Dt: 0.1}); err == nil {
		t.Fatal("single-site Heisenberg accepted")
	}
}

func TestPeriodicAddsWrapBond(t *testing.T) {
	open, err := BuildIsing(Ising{N: 5, J: 1, H: 0}, Options{Steps: 1, Dt: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	per, err := BuildIsing(Ising{N: 5, J: 1, H: 0, Periodic: true}, Options{Steps: 1, Dt: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if per.NumTwoQubitGates() != open.NumTwoQubitGates()+1 {
		t.Fatalf("wrap bond missing: %d vs %d", per.NumTwoQubitGates(), open.NumTwoQubitGates())
	}
}

func TestPlusStartPrependsHadamards(t *testing.T) {
	c, err := BuildIsing(Ising{N: 3, J: 1, H: 0.5}, Options{Steps: 1, Dt: 0.1, PlusStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if c.GateCountByName()["h"] != 3 {
		t.Fatal("Hadamard wall missing")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	_ = circuit.New // keep the import meaningful if the test shrinks
}
