package jobs

import "sort"

// tenantQueue is the scheduler's ready set: strict priority across levels,
// round-robin across tenants within a level, FIFO within a tenant. Strict
// priority gives the "higher priority is never starved" guarantee; the
// round-robin keeps one chatty tenant from monopolizing a level.
//
// Not safe for concurrent use — the Manager serializes access under its own
// lock (the queue is never touched from the walk hot path, so a single lock
// is plenty).
type tenantQueue struct {
	levels map[int]*prioLevel
	prios  []int // sorted descending
	depth  int
}

type prioLevel struct {
	order []string          // tenant round-robin rotation
	fifos map[string][]*job // per-tenant FIFO
}

func newTenantQueue() *tenantQueue {
	return &tenantQueue{levels: map[int]*prioLevel{}}
}

func (q *tenantQueue) len() int { return q.depth }

func (q *tenantQueue) push(j *job) {
	lvl := q.levels[j.priority]
	if lvl == nil {
		lvl = &prioLevel{fifos: map[string][]*job{}}
		q.levels[j.priority] = lvl
		i := sort.Search(len(q.prios), func(i int) bool { return q.prios[i] < j.priority })
		q.prios = append(q.prios, 0)
		copy(q.prios[i+1:], q.prios[i:])
		q.prios[i] = j.priority
	}
	if _, ok := lvl.fifos[j.tenant]; !ok {
		lvl.order = append(lvl.order, j.tenant)
	}
	lvl.fifos[j.tenant] = append(lvl.fifos[j.tenant], j)
	q.depth++
}

// pop removes and returns the next job to run, or nil when empty.
func (q *tenantQueue) pop() *job {
	for len(q.prios) > 0 {
		p := q.prios[0]
		lvl := q.levels[p]
		for len(lvl.order) > 0 {
			t := lvl.order[0]
			fifo := lvl.fifos[t]
			if len(fifo) == 0 {
				lvl.order = lvl.order[1:]
				delete(lvl.fifos, t)
				continue
			}
			j := fifo[0]
			fifo[0] = nil
			lvl.fifos[t] = fifo[1:]
			// Rotate the tenant to the back of the level.
			lvl.order = append(lvl.order[1:], t)
			if len(lvl.fifos[t]) == 0 {
				lvl.order = lvl.order[:len(lvl.order)-1]
				delete(lvl.fifos, t)
			}
			q.depth--
			return j
		}
		delete(q.levels, p)
		q.prios = q.prios[1:]
	}
	return nil
}

// takeBatch removes and returns every queued job whose batch key matches.
// Batch mates ride along regardless of tenant or priority:
// the marginal cost of adding a member to an already-scheduled walk is one
// amplitude-slice copy, so letting them jump the queue only frees capacity.
func (q *tenantQueue) takeBatch(key batchKey) []*job {
	var out []*job
	for _, p := range append([]int(nil), q.prios...) {
		lvl := q.levels[p]
		if lvl == nil {
			continue
		}
		for t, fifo := range lvl.fifos {
			kept := fifo[:0]
			for _, j := range fifo {
				if !j.distribute && j.batchKeyOf() == key {
					out = append(out, j)
					q.depth--
				} else {
					kept = append(kept, j)
				}
			}
			for i := len(kept); i < len(fifo); i++ {
				fifo[i] = nil
			}
			if len(kept) == 0 {
				delete(lvl.fifos, t)
				for i, name := range lvl.order {
					if name == t {
						lvl.order = append(lvl.order[:i], lvl.order[i+1:]...)
						break
					}
				}
			} else {
				lvl.fifos[t] = kept
			}
		}
		if len(lvl.fifos) == 0 {
			delete(q.levels, p)
			for i, pp := range q.prios {
				if pp == p {
					q.prios = append(q.prios[:i], q.prios[i+1:]...)
					break
				}
			}
		}
	}
	return out
}

// remove deletes one queued job by ID (cancellation); reports whether it
// was present.
func (q *tenantQueue) remove(id string) bool {
	for p, lvl := range q.levels {
		for t, fifo := range lvl.fifos {
			for i, j := range fifo {
				if j.id != id {
					continue
				}
				copy(fifo[i:], fifo[i+1:])
				fifo[len(fifo)-1] = nil
				lvl.fifos[t] = fifo[:len(fifo)-1]
				if len(lvl.fifos[t]) == 0 {
					delete(lvl.fifos, t)
					for k, name := range lvl.order {
						if name == t {
							lvl.order = append(lvl.order[:k], lvl.order[k+1:]...)
							break
						}
					}
				}
				if len(lvl.fifos) == 0 {
					delete(q.levels, p)
					for k, pp := range q.prios {
						if pp == p {
							q.prios = append(q.prios[:k], q.prios[k+1:]...)
							break
						}
					}
				}
				q.depth--
				return true
			}
		}
	}
	return false
}
