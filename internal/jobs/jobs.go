// Package jobs is the asynchronous multi-tenant job layer over the
// simulator: submissions enter per-tenant priority queues behind quota and
// cost admission, a bounded runner pool executes them through the unified
// walker, and job state survives process restarts through a durable Store
// using the PR-1 binary checkpoint format.
//
// The subsystem's central economy is the plan cache: jobs are keyed by a
// circuit fingerprint (hsfsim.Fingerprint), so concurrent submissions of the
// same circuit compile one plan, and queued same-fingerprint jobs are
// batched behind one path-tree walk whose accumulator serves every member —
// the walker already sums multiple amplitudes per leaf, so N identical jobs
// cost one simulation plus N result copies.
//
// Lifecycle: queued → running → done | failed | cancelled. Queued and
// running jobs are re-offered (re-enqueued) when a restarted Manager loads
// the store; running batches additionally flush mid-run checkpoints, so a
// re-offered batch resumes from the last flushed prefix instead of
// restarting.
package jobs

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"hsfsim"
	"hsfsim/internal/telemetry/trace"
)

// State is a job's lifecycle position.
type State int

// Job lifecycle states. Terminal states are StateDone, StateFailed,
// StateCancelled.
const (
	StateQueued State = iota
	StateRunning
	StateDone
	StateFailed
	StateCancelled
)

func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// MarshalText serializes the state name for JSON manifests and API bodies.
func (s State) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses a state name.
func (s *State) UnmarshalText(b []byte) error {
	for st := StateQueued; st <= StateCancelled; st++ {
		if st.String() == string(b) {
			*s = st
			return nil
		}
	}
	return fmt.Errorf("jobs: unknown state %q", b)
}

// ErrNotFound is returned for unknown job IDs.
var ErrNotFound = errors.New("jobs: job not found")

// ErrClosed is returned by Submit after the manager has been closed.
var ErrClosed = errors.New("jobs: manager closed")

// ErrQueueFull is the sentinel matched by errors.Is when the global queue is
// at capacity; the concrete error is a *QueueFullError carrying a
// Retry-After hint.
var ErrQueueFull = errors.New("jobs: queue full")

// ErrQuota is the sentinel matched by errors.Is when a tenant's outstanding
// job quota is exhausted; the concrete error is a *QuotaError.
var ErrQuota = errors.New("jobs: tenant quota exhausted")

// ErrNoResult is returned by Result for jobs that are not done.
var ErrNoResult = errors.New("jobs: job has no result")

// QueueFullError reports a submission shed because the queue is at
// capacity. It wraps ErrQueueFull; RetryAfter estimates when a slot frees.
type QueueFullError struct {
	Depth, Capacity int
	RetryAfter      time.Duration
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("jobs: queue full (%d/%d queued); retry in %s",
		e.Depth, e.Capacity, e.RetryAfter.Round(time.Millisecond))
}

// Unwrap makes errors.Is(err, ErrQueueFull) match.
func (e *QueueFullError) Unwrap() error { return ErrQueueFull }

// QuotaError reports a submission rejected because the tenant already has
// its full quota of outstanding (queued + running) jobs. It wraps ErrQuota.
type QuotaError struct {
	Tenant      string
	Outstanding int
	Quota       int
	RetryAfter  time.Duration
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("jobs: tenant %q has %d outstanding jobs (quota %d); retry in %s",
		e.Tenant, e.Outstanding, e.Quota, e.RetryAfter.Round(time.Millisecond))
}

// Unwrap makes errors.Is(err, ErrQuota) match.
func (e *QuotaError) Unwrap() error { return ErrQuota }

// Request describes one submission.
type Request struct {
	// Tenant namespaces quotas and fairness; empty means the "default"
	// tenant.
	Tenant string
	// Priority orders execution: higher runs first. Jobs of equal priority
	// are served FIFO with round-robin across tenants.
	Priority int
	// RequestID is the originating HTTP request ID (or any caller
	// correlation token); it is propagated into logs and snapshots so a
	// job's compile/walk phases are attributable end to end.
	RequestID string
	// TraceParent, when valid, parents the job's lifecycle spans under the
	// submitting request's span, so one trace covers submission, queue
	// wait, and the batch walk. A zero value roots a fresh trace.
	TraceParent trace.SpanContext
	// QASM is the OpenQASM 2.0 source — the durable form of the circuit.
	// Optional if Circuit is set (the manager serializes it for the store).
	QASM string
	// Circuit is the parsed circuit; optional if QASM is set.
	Circuit *hsfsim.Circuit
	// Distribute routes execution through the configured dist-fleet runner
	// (Config.RunDistributed) instead of the in-process walker. Distributed
	// jobs keep queueing, quotas, and durability but bypass the plan cache
	// and batching — the dist coordinator compiles its own plan.
	Distribute bool
	// Opts carries the simulation options. Plan-affecting fields key the
	// plan cache; execution fields apply to this job's run. Callback fields
	// (CheckpointWriter, ResumeFrom, OnCheckpoint, Telemetry, Progress) are
	// owned by the manager and ignored if set.
	Opts hsfsim.Options
}

// Snapshot is a point-in-time copy of a job's externally visible state,
// safe to serialize.
type Snapshot struct {
	ID        string    `json:"id"`
	Tenant    string    `json:"tenant"`
	Priority  int       `json:"priority"`
	RequestID string    `json:"request_id,omitempty"`
	State     State     `json:"state"`
	Created   time.Time `json:"created"`
	Started   time.Time `json:"started"`
	Finished  time.Time `json:"finished"`
	// Fingerprint is the plan-cache key (circuit + plan-affecting options).
	Fingerprint uint64 `json:"fingerprint,string"`
	// NumQubits is the circuit width (0 only for terminal jobs reloaded
	// from a store predating the field).
	NumQubits int `json:"num_qubits,omitempty"`
	// PathsDone/PathsTotal expose live walk progress while running and the
	// final counts afterwards.
	PathsDone  int64 `json:"paths_done"`
	PathsTotal int64 `json:"paths_total"`
	// BatchSize is the number of jobs sharing this job's walk (1 when it
	// ran alone); PlanShared reports whether the compiled plan came from
	// the cache rather than being compiled for this batch.
	BatchSize  int  `json:"batch_size,omitempty"`
	PlanShared bool `json:"plan_shared,omitempty"`
	// Resumed reports that the run continued from a durable mid-run
	// checkpoint after a restart.
	Resumed bool `json:"resumed,omitempty"`
	// Error holds the failure message for StateFailed.
	Error string `json:"error,omitempty"`
}

// newID returns a process-unique, restart-unique job identifier.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; fall back to the
		// clock rather than crashing a service.
		binary.LittleEndian.PutUint64(b[:], uint64(time.Now().UnixNano()))
	}
	return fmt.Sprintf("job-%016x", binary.LittleEndian.Uint64(b[:]))
}
