package jobs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hsfsim"
	"hsfsim/internal/hsf"
	"hsfsim/internal/qasm"
	"hsfsim/internal/telemetry"
	"hsfsim/internal/telemetry/trace"
)

// Config tunes a Manager; the zero value selects sane defaults.
type Config struct {
	// Runners bounds concurrent batch executions. 0 selects 2.
	Runners int
	// QueueCap bounds the total number of queued jobs; submissions beyond
	// it are shed with *QueueFullError (HTTP 429 upstream). 0 selects 256.
	QueueCap int
	// TenantQuota caps one tenant's outstanding (queued + running) jobs;
	// 0 means unlimited. Quotas overrides it per tenant.
	TenantQuota int
	Quotas      map[string]int
	// PlanCacheSize bounds the compiled-plan LRU. 0 selects 128.
	PlanCacheSize int
	// Store, when non-nil, makes jobs durable: manifests on every state
	// transition, mid-run checkpoints every FlushInterval, results on
	// completion. A restarted Manager over the same store re-offers
	// queued/running jobs and resumes their walks from the checkpoints.
	Store Store
	// FlushInterval rate-limits mid-run checkpoint flushes. 0 selects 2s.
	FlushInterval time.Duration
	// Logf receives job lifecycle log lines (always tagged with job= and,
	// when present, req=). Nil disables logging.
	Logf func(format string, args ...any)
	// OnResult, when non-nil, observes every successfully finished job
	// (after its state is visible as done).
	OnResult func(snap Snapshot, res *hsfsim.Result)
	// OnRunTelemetry, when non-nil, receives each in-process batch's
	// request-scoped telemetry recorder once its walk ends (success or
	// failure). The server merges these into service-lifetime histograms.
	OnRunTelemetry func(rec *hsfsim.TelemetryRecorder)
	// RunDistributed, when non-nil, executes jobs submitted with
	// Request.Distribute through the dist fleet instead of in-process.
	// Distributed jobs bypass the plan cache and batching — the dist
	// coordinator owns its own plan — but keep queueing, quotas, and
	// durability. When nil, distributed submissions are rejected.
	RunDistributed func(ctx context.Context, qasmSrc string, opts hsfsim.Options) (*hsfsim.Result, error)
	// Trace, when non-nil, records job lifecycle spans (queued wait, batch
	// execution) into the flight recorder, and batch walks run under a
	// trace context so engine spans join the job's trace.
	Trace *trace.Recorder
}

// maxTenantLabels caps the distinct tenants tracked for per-tenant metrics;
// tenants beyond the cap aggregate into the "_other" bucket so a tenant-ID
// churn cannot blow up metric cardinality.
const maxTenantLabels = 64

// otherTenant is the overflow bucket label.
const otherTenant = "_other"

// tenantCounters is one tenant's lifetime counters, guarded by Manager.mu.
type tenantCounters struct {
	submitted int64
	completed int64
	failed    int64
	cancelled int64
}

type batchKey = uint64

// job is the manager-internal record; all mutable fields are guarded by
// Manager.mu except progress (an atomic tracker shared with the walk).
type job struct {
	id         string
	tenant     string
	priority   int
	requestID  string
	qasm       string
	circuit    *hsfsim.Circuit
	opts       hsfsim.Options
	fp         uint64
	distribute bool

	// queued is the job's open queue-wait span (created → popped); sc is
	// the job's trace context, under which its batch execution records.
	queued trace.Span
	sc     trace.SpanContext

	state      State
	created    time.Time
	started    time.Time
	finished   time.Time
	err        error
	resumed    bool
	planShared bool
	batchSize  int
	batch      *batch
	cancelled  bool
	amps       []complex128
	resMeta    *ResultMeta
	progress   *telemetry.Tracker
	watchers   []chan struct{}
}

func (j *job) batchKeyOf() batchKey { return j.fp }

// numQubits reads the circuit width, falling back to the stored result
// metadata for terminal jobs reloaded without a parsed circuit.
func (j *job) numQubits() int {
	if j.circuit != nil {
		return j.circuit.NumQubits
	}
	if j.resMeta != nil {
		return j.resMeta.NumQubits
	}
	return 0
}

// batch is one scheduled walk serving one or more same-fingerprint jobs.
type batch struct {
	key    batchKey
	jobs   []*job
	cancel context.CancelFunc
	live   int // members not yet cancelled
}

// Manager owns the queues, the runner pool, the plan cache, and the store.
type Manager struct {
	cfg   Config
	store Store
	cache *planCache

	mu          sync.Mutex
	cond        *sync.Cond
	q           *tenantQueue
	jobs        map[string]*job
	outstanding map[string]int // per-tenant queued+running
	running     map[*batch]struct{}
	tenants     map[string]*tenantCounters // capped at maxTenantLabels
	closed      bool

	wg sync.WaitGroup

	submitted  atomic.Int64
	completed  atomic.Int64
	failedN    atomic.Int64
	cancelledN atomic.Int64
	resumedN   atomic.Int64
	batchesN   atomic.Int64
	batchedN   atomic.Int64 // jobs that shared a walk with at least one other
	runningN   atomic.Int64
	ewmaRunNS  atomic.Int64

	waitHist telemetry.Histogram // queue wait per job
	runHist  telemetry.Histogram // wall time per batch
}

// New starts a Manager: loads the store (re-offering unfinished jobs) and
// launches the runner pool.
func New(cfg Config) (*Manager, error) {
	if cfg.Runners <= 0 {
		cfg.Runners = 2
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 256
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 2 * time.Second
	}
	m := &Manager{
		cfg:         cfg,
		store:       cfg.Store,
		cache:       newPlanCache(cfg.PlanCacheSize),
		q:           newTenantQueue(),
		jobs:        map[string]*job{},
		outstanding: map[string]int{},
		running:     map[*batch]struct{}{},
		tenants:     map[string]*tenantCounters{},
	}
	m.cond = sync.NewCond(&m.mu)
	if m.store != nil {
		if err := m.loadStore(); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Runners; i++ {
		m.wg.Add(1)
		go m.runner()
	}
	return m, nil
}

func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// loadStore rebuilds the in-memory job table from manifests. Queued and
// running jobs are re-offered: back into the queue, FIFO by creation time.
// A previously running job is marked resumed — its batch will seed from the
// store's mid-run checkpoint if one survived.
func (m *Manager) loadStore() error {
	mans, err := m.store.Jobs()
	if err != nil {
		return fmt.Errorf("jobs: load store: %w", err)
	}
	sort.Slice(mans, func(i, k int) bool { return mans[i].Created.Before(mans[k].Created) })
	for _, man := range mans {
		j := &job{
			id:        man.ID,
			tenant:    man.Tenant,
			priority:  man.Priority,
			requestID: man.RequestID,
			qasm:      man.QASM,
			opts:      man.Opts.Options(),
			fp:        man.Fingerprint,
			state:     man.State,
			created:   man.Created,
			started:   man.Started,
			finished:  man.Finished,
			resumed:   man.Resumed,
			resMeta:   man.ResultMeta,
		}
		if man.Error != "" {
			j.err = errors.New(man.Error)
		}
		if !man.State.Terminal() {
			c, err := qasm.Parse(strings.NewReader(man.QASM))
			if err != nil {
				j.state = StateFailed
				j.err = fmt.Errorf("jobs: stored circuit unparseable: %w", err)
				j.finished = time.Now()
				m.jobs[j.id] = j
				m.persist(j, m.manifestOf(j))
				continue
			}
			j.circuit = c
			if man.State == StateRunning {
				// The previous process died mid-walk; the checkpoint (if
				// any) lets the re-offered batch resume instead of restart.
				j.resumed = true
				m.resumedN.Add(1)
			}
			j.state = StateQueued
			j.started = time.Time{}
			m.q.push(j)
			m.outstanding[j.tenant]++
			m.logf("jobs: re-offered job=%s tenant=%s state=%s", j.id, j.tenant, man.State)
		}
		m.jobs[j.id] = j
	}
	return nil
}

// sanitizeOpts strips caller-owned callbacks: the manager owns
// checkpointing, telemetry, and progress for queued jobs.
func sanitizeOpts(o hsfsim.Options) hsfsim.Options {
	o.CheckpointWriter = nil
	o.ResumeFrom = nil
	o.OnCheckpoint = nil
	o.Telemetry = nil
	o.Progress = nil
	return o
}

// Submit validates, admits, and enqueues one job, returning its initial
// snapshot. Errors: *QueueFullError / *QuotaError (shed, retryable),
// *hsfsim.BudgetError (over cost budget, permanent), parse and validation
// errors (permanent), ErrClosed.
func (m *Manager) Submit(req Request) (Snapshot, error) {
	c := req.Circuit
	if c == nil {
		if req.QASM == "" {
			return Snapshot{}, errors.New("jobs: submission needs a circuit or QASM source")
		}
		parsed, err := qasm.Parse(strings.NewReader(req.QASM))
		if err != nil {
			return Snapshot{}, err
		}
		c = parsed
	}
	qasmSrc := req.QASM
	if qasmSrc == "" {
		var buf bytes.Buffer
		if err := qasm.Write(&buf, c); err != nil {
			return Snapshot{}, fmt.Errorf("jobs: circuit not serializable: %w", err)
		}
		qasmSrc = buf.String()
	}
	opts := sanitizeOpts(req.Opts)
	fp, err := hsfsim.Fingerprint(c, opts)
	if err != nil {
		return Snapshot{}, err
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = "default"
	}

	// Fast-fail admission (queue capacity, tenant quota) before paying for
	// any compile. Rechecked at enqueue: the compile below runs unlocked.
	m.mu.Lock()
	if err := m.admitLocked(tenant); err != nil {
		m.mu.Unlock()
		return Snapshot{}, err
	}
	m.mu.Unlock()

	distribute := req.Distribute
	if distribute && m.cfg.RunDistributed == nil {
		return Snapshot{}, fmt.Errorf("jobs: distributed execution unavailable: %w", hsfsim.ErrUnsupported)
	}
	if !distribute {
		// Cost admission through the plan cache: the first submission of a
		// fingerprint compiles (and caches) the plan; repeats and
		// concurrent duplicates estimate against the cached plan for free.
		cp, _, err := m.cache.get(fp, c, opts)
		if err != nil {
			return Snapshot{}, err
		}
		if err := admitCost(cp, opts); err != nil {
			return Snapshot{}, err
		}
	}

	j := &job{
		id:         newID(),
		tenant:     tenant,
		priority:   req.Priority,
		requestID:  req.RequestID,
		qasm:       qasmSrc,
		circuit:    c,
		opts:       opts,
		fp:         fp,
		distribute: distribute,
		state:      StateQueued,
		created:    time.Now(),
	}
	// The queue-wait span opens now and ends when a runner pops the job;
	// a provided parent (the submitting HTTP request's span) stitches the
	// job's whole lifecycle into that request's trace.
	j.queued = m.cfg.Trace.Start(req.TraceParent, "job-queued")
	j.queued.SetStr("job", j.id)
	j.queued.SetStr("tenant", tenant)
	if j.requestID != "" {
		j.queued.SetStr("req", j.requestID)
	}
	j.sc = j.queued.Context()

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return Snapshot{}, ErrClosed
	}
	if err := m.admitLocked(tenant); err != nil {
		m.mu.Unlock()
		return Snapshot{}, err
	}
	m.q.push(j)
	m.outstanding[tenant]++
	m.tenantCountersLocked(tenant).submitted++
	m.jobs[j.id] = j
	snap := m.snapshotLocked(j)
	man := m.manifestOf(j)
	m.mu.Unlock()

	m.submitted.Add(1)
	m.persist(j, man)
	m.logf("jobs: queued job=%s req=%s tenant=%s prio=%d fp=%016x", j.id, j.requestID, tenant, j.priority, fp)
	m.cond.Signal()
	return snap, nil
}

// tenantCountersLocked returns the tenant's counter block, folding tenants
// beyond the cardinality cap into the shared overflow bucket.
func (m *Manager) tenantCountersLocked(tenant string) *tenantCounters {
	if tc := m.tenants[tenant]; tc != nil {
		return tc
	}
	if len(m.tenants) >= maxTenantLabels {
		tc := m.tenants[otherTenant]
		if tc == nil {
			tc = &tenantCounters{}
			m.tenants[otherTenant] = tc
		}
		return tc
	}
	tc := &tenantCounters{}
	m.tenants[tenant] = tc
	return tc
}

// tenantLabelLocked maps a tenant onto its metrics label: its own name
// while under the cardinality cap, the overflow bucket beyond it.
func (m *Manager) tenantLabelLocked(tenant string) string {
	if _, ok := m.tenants[tenant]; ok {
		return tenant
	}
	return otherTenant
}

// admitLocked enforces queue capacity and tenant quota.
func (m *Manager) admitLocked(tenant string) error {
	if depth := m.q.len(); depth >= m.cfg.QueueCap {
		return &QueueFullError{Depth: depth, Capacity: m.cfg.QueueCap, RetryAfter: m.retryAfterLocked()}
	}
	quota := m.cfg.TenantQuota
	if q, ok := m.cfg.Quotas[tenant]; ok {
		quota = q
	}
	if quota > 0 && m.outstanding[tenant] >= quota {
		return &QuotaError{Tenant: tenant, Outstanding: m.outstanding[tenant], Quota: quota, RetryAfter: m.retryAfterLocked()}
	}
	return nil
}

// admitCost applies the hsf.Cost-driven budget gate at submission time, so
// over-budget work is rejected synchronously (422) instead of failing later
// in the queue.
func admitCost(cp *hsfsim.CompiledPlan, opts hsfsim.Options) error {
	est := cp.EstimateCost(opts)
	budget := opts.MemoryBudget
	if budget == 0 {
		budget = hsfsim.DefaultMemoryBudget
	}
	if budget > 0 && est.TotalBytes > budget {
		return &hsf.BudgetError{
			Estimate:     *est,
			MemoryBudget: budget,
			Reason:       fmt.Sprintf("estimated %d bytes exceed the memory budget of %d bytes", est.TotalBytes, budget),
		}
	}
	if opts.MaxPaths > 0 && (!est.PathsExact || est.Paths > opts.MaxPaths) {
		return &hsf.BudgetError{
			Estimate: *est,
			MaxPaths: opts.MaxPaths,
			Reason:   fmt.Sprintf("2^%.1f paths exceed the path budget %d", est.Log2Paths, opts.MaxPaths),
		}
	}
	return nil
}

// retryAfterLocked estimates when queued work will have drained: queue
// depth over the runner pool, paced by the EWMA batch duration.
func (m *Manager) retryAfterLocked() time.Duration {
	ewma := time.Duration(m.ewmaRunNS.Load())
	if ewma <= 0 {
		ewma = time.Second
	}
	waves := m.q.len()/m.cfg.Runners + 1
	d := ewma * time.Duration(waves)
	if d < time.Second {
		d = time.Second
	}
	if d > 5*time.Minute {
		d = 5 * time.Minute
	}
	return d
}

// RetryAfter is the public form of the drain estimate, for HTTP 429s that
// account for queued work and not just in-flight requests.
func (m *Manager) RetryAfter() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.retryAfterLocked()
}

// QueueDepth reports the queued-job count against capacity.
func (m *Manager) QueueDepth() (depth, capacity int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.q.len(), m.cfg.QueueCap
}

// runner is one scheduler worker: pop the highest-priority job, sweep its
// queued batch mates, execute the walk, repeat.
func (m *Manager) runner() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for m.q.len() == 0 && !m.closed {
			m.cond.Wait()
		}
		if m.closed {
			m.mu.Unlock()
			return
		}
		leader := m.q.pop()
		var mates []*job
		if !leader.distribute {
			mates = m.q.takeBatch(leader.batchKeyOf())
		}
		members := append([]*job{leader}, mates...)
		ctx, cancel := context.WithCancel(context.Background())
		b := &batch{key: leader.batchKeyOf(), jobs: members, cancel: cancel, live: len(members)}
		now := time.Now()
		tracker := &telemetry.Tracker{}
		resumed := false
		for _, j := range members {
			j.state = StateRunning
			j.started = now
			j.batch = b
			j.batchSize = len(members)
			j.progress = tracker
			resumed = resumed || j.resumed
		}
		m.running[b] = struct{}{}
		mans := make([]*Manifest, len(members))
		for i, j := range members {
			mans[i] = m.manifestOf(j)
		}
		m.mu.Unlock()

		m.runningN.Add(int64(len(members)))
		m.batchesN.Add(1)
		if len(members) > 1 {
			m.batchedN.Add(int64(len(members)))
		}
		for i, j := range members {
			m.waitHist.Observe(now.Sub(j.created))
			j.queued.End() // queue wait is over; the batch span takes it from here
			m.persist(j, mans[i])
			m.notify(j)
			m.logf("jobs: running job=%s req=%s tenant=%s batch=%d resume=%t", j.id, j.requestID, j.tenant, len(members), resumed)
		}

		// The batch span parents the leader's trace; the walk runs under its
		// context, so engine compile/walk/prefix spans join the job's trace.
		bsp := m.cfg.Trace.Start(leader.sc, "job-batch")
		bsp.SetStr("job", leader.id)
		bsp.SetInt("jobs", int64(len(members)))
		if m.cfg.Trace != nil {
			ctx = trace.NewContext(ctx, m.cfg.Trace, bsp.Context())
		}
		start := time.Now()
		m.execute(ctx, b, tracker, resumed)
		bsp.End()
		cancel()
		dur := time.Since(start)
		m.runHist.Observe(dur)
		// EWMA with alpha 0.2, the Retry-After pacing signal.
		old := m.ewmaRunNS.Load()
		if old == 0 {
			m.ewmaRunNS.Store(int64(dur))
		} else {
			m.ewmaRunNS.Store(old + (int64(dur)-old)/5)
		}

		m.mu.Lock()
		delete(m.running, b)
		m.mu.Unlock()
	}
}

// resolveM maps a MaxAmplitudes request to the concrete accumulator length
// for an n-qubit register (0 or over-range means the full statevector).
func resolveM(n, maxAmps int) int {
	full := 1 << uint(n)
	if maxAmps <= 0 || maxAmps > full {
		return full
	}
	return maxAmps
}

// ckptKey names the store slot for a batch's mid-run checkpoint. Keyed by
// fingerprint alone: concurrent batches of the same circuit overwrite each
// other's flushes (last writer wins), which only costs resume granularity —
// any surviving checkpoint is a valid partial state of the shared plan.
func ckptKey(key batchKey) string { return fmt.Sprintf("%016x", uint64(key)) }

// execute runs one batch to completion and distributes the outcome.
func (m *Manager) execute(ctx context.Context, b *batch, tracker *telemetry.Tracker, resumed bool) {
	leader := b.jobs[0]

	if leader.distribute {
		res, err := m.cfg.RunDistributed(ctx, leader.qasm, leader.opts)
		if err != nil {
			m.finishErr(b, err)
			return
		}
		m.finishOK(b, res, res.Amplitudes, leader.circuit.NumQubits)
		return
	}

	cp, shared, err := m.cache.get(leader.fp, leader.circuit, leader.opts)
	if err != nil {
		m.finishErr(b, err)
		return
	}
	m.mu.Lock()
	for _, j := range b.jobs {
		j.planShared = shared || len(b.jobs) > 1
	}
	m.mu.Unlock()

	// The batch accumulator must cover every member's amplitude request;
	// members read prefixes of it, so the max wins.
	need := 0
	runOpts := leader.opts
	runOpts.Timeout = 0
	for _, j := range b.jobs {
		if n := resolveM(cp.NumQubits(), j.opts.MaxAmplitudes); n > need {
			need = n
		}
		// One member's timeout must not kill its batch mates: the batch
		// inherits the loosest bound (0 = none dominates).
		if j.opts.Timeout > runOpts.Timeout {
			runOpts.Timeout = j.opts.Timeout
		}
		if j.opts.Timeout == 0 {
			runOpts.Timeout = 0
		}
	}
	runOpts.MaxAmplitudes = need
	rec := hsfsim.NewTelemetryRecorder()
	runOpts.Telemetry = rec
	runOpts.Progress = tracker
	if m.cfg.OnRunTelemetry != nil {
		defer m.cfg.OnRunTelemetry(rec)
	}

	key := ckptKey(b.key)
	var finalCkpt bytes.Buffer
	if m.store != nil && cp.Method() != hsfsim.Schrodinger {
		runOpts.CheckpointWriter = &finalCkpt
		runOpts.OnCheckpoint = m.newFlusher(ctx, key)
		if ck, _ := m.store.GetCheckpoint(key); ck != nil && ck.M >= need {
			// Resume the walk from the flushed partial state. Running with
			// the checkpoint's (possibly larger) M keeps it valid; members
			// still read their own prefixes.
			runOpts.MaxAmplitudes = ck.M
			var buf bytes.Buffer
			if err := hsf.WriteCheckpoint(&buf, ck); err == nil {
				runOpts.ResumeFrom = &buf
				resumed = true
			}
		}
	}

	res, err := hsfsim.SimulateCompiledContext(ctx, cp, runOpts)
	if err != nil && errors.Is(err, hsfsim.ErrCheckpointMismatch) && runOpts.ResumeFrom != nil {
		// The stored checkpoint belonged to a different plan generation
		// (fingerprint collision or stale file): drop it and run clean.
		_ = m.store.DeleteCheckpoint(key)
		runOpts.ResumeFrom = nil
		runOpts.MaxAmplitudes = need
		finalCkpt.Reset()
		resumed = false
		res, err = hsfsim.SimulateCompiledContext(ctx, cp, runOpts)
	}
	if err != nil {
		// A prematurely stopped walk hands its final state to the
		// CheckpointWriter; make it durable so a restart resumes from here.
		if m.store != nil && finalCkpt.Len() > 0 {
			if ck, rerr := hsf.ReadCheckpoint(bytes.NewReader(finalCkpt.Bytes())); rerr == nil {
				_ = m.store.PutCheckpoint(key, ck)
			}
		}
		m.finishErr(b, err)
		return
	}
	if resumed {
		m.mu.Lock()
		for _, j := range b.jobs {
			j.resumed = true
		}
		m.mu.Unlock()
	}
	if m.store != nil {
		_ = m.store.DeleteCheckpoint(key)
	}
	m.finishOK(b, res, res.Amplitudes, cp.NumQubits())
}

// newFlusher builds the OnCheckpoint callback: called under the engine's
// merge lock, it rate-limits, clones, and hands the snapshot to a writer
// goroutine so the walk never blocks on disk.
func (m *Manager) newFlusher(ctx context.Context, key string) func(*hsfsim.Checkpoint) {
	ch := make(chan *hsfsim.Checkpoint, 1)
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		for {
			select {
			case ck := <-ch:
				if err := m.store.PutCheckpoint(key, ck); err != nil {
					m.logf("jobs: checkpoint flush failed key=%s: %v", key, err)
				}
			case <-ctx.Done():
				return
			}
		}
	}()
	var last time.Time // guarded by the engine's merge lock
	interval := m.cfg.FlushInterval
	return func(ck *hsfsim.Checkpoint) {
		now := time.Now()
		if now.Sub(last) < interval {
			return
		}
		last = now
		select {
		case ch <- ck.Clone():
		default: // writer busy: drop this snapshot, a fresher one follows
		}
	}
}

// finishOK distributes a successful result to every live member: each gets
// its own prefix of the batch accumulator, copied so results are
// independent of each other and of the engine's buffers.
func (m *Manager) finishOK(b *batch, res *hsfsim.Result, amps []complex128, numQubits int) {
	meta := &ResultMeta{
		NumQubits:       numQubits,
		NumPaths:        res.NumPaths,
		Log2Paths:       res.Log2Paths,
		PathsSimulated:  res.PathsSimulated,
		NumCuts:         res.NumCuts,
		NumBlocks:       res.NumBlocks,
		NumSeparateCuts: res.NumSeparateCuts,
		PreprocessNS:    int64(res.PreprocessTime),
		SimNS:           int64(res.SimTime),
	}
	now := time.Now()
	var finished []*job
	var mans []*Manifest
	var snaps []Snapshot
	m.mu.Lock()
	n := 0
	for _, j := range b.jobs {
		if j.cancelled {
			continue
		}
		mj := resolveM(numQubits, j.opts.MaxAmplitudes)
		if mj > len(amps) {
			mj = len(amps)
		}
		j.amps = append([]complex128(nil), amps[:mj]...)
		j.resMeta = meta
		j.state = StateDone
		j.finished = now
		m.outstanding[j.tenant]--
		m.tenantCountersLocked(j.tenant).completed++
		finished = append(finished, j)
		mans = append(mans, m.manifestOf(j))
		snaps = append(snaps, m.snapshotLocked(j))
		n++
	}
	m.mu.Unlock()
	m.runningN.Add(-int64(n))
	m.completed.Add(int64(n))
	for i, j := range finished {
		if m.store != nil {
			_ = m.store.PutResult(j.id, &hsfsim.Checkpoint{
				PlanHash:       j.fp,
				NumQubits:      numQubits,
				M:              len(j.amps),
				PathsSimulated: res.PathsSimulated,
				Acc:            j.amps,
			})
		}
		m.persist(j, mans[i])
		m.notify(j)
		m.logf("jobs: done job=%s req=%s tenant=%s paths=%d batch=%d", j.id, j.requestID, j.tenant, res.PathsSimulated, j.batchSize)
		if m.cfg.OnResult != nil {
			r := *res
			r.Amplitudes = j.amps
			m.cfg.OnResult(snaps[i], &r)
		}
	}
}

// finishErr marks every live member failed — unless the manager is closing,
// in which case the members stay "running" in the store so the next start
// re-offers and resumes them.
func (m *Manager) finishErr(b *batch, err error) {
	m.mu.Lock()
	if m.closed && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		m.mu.Unlock()
		for _, j := range b.jobs {
			m.logf("jobs: parked for re-offer job=%s (shutdown)", j.id)
		}
		return
	}
	now := time.Now()
	var finished []*job
	var mans []*Manifest
	n := 0
	for _, j := range b.jobs {
		if j.cancelled {
			continue
		}
		j.state = StateFailed
		j.err = err
		j.finished = now
		m.outstanding[j.tenant]--
		m.tenantCountersLocked(j.tenant).failed++
		finished = append(finished, j)
		mans = append(mans, m.manifestOf(j))
		n++
	}
	m.mu.Unlock()
	m.runningN.Add(-int64(n))
	m.failedN.Add(int64(n))
	for i, j := range finished {
		m.persist(j, mans[i])
		m.notify(j)
		m.logf("jobs: failed job=%s req=%s tenant=%s: %v", j.id, j.requestID, j.tenant, err)
	}
}

// Cancel cancels a queued or running job (idempotent on terminal jobs).
// Cancelling the last live member of a running batch cancels the walk.
func (m *Manager) Cancel(id string) (Snapshot, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return Snapshot{}, ErrNotFound
	}
	var man *Manifest
	switch j.state {
	case StateQueued:
		m.q.remove(id)
		j.state = StateCancelled
		j.finished = time.Now()
		j.queued.SetStr("err", "cancelled")
		j.queued.End()
		m.outstanding[j.tenant]--
		m.cancelledN.Add(1)
		m.tenantCountersLocked(j.tenant).cancelled++
		man = m.manifestOf(j)
	case StateRunning:
		if !j.cancelled {
			j.cancelled = true
			j.state = StateCancelled
			j.finished = time.Now()
			m.outstanding[j.tenant]--
			m.runningN.Add(-1)
			m.cancelledN.Add(1)
			m.tenantCountersLocked(j.tenant).cancelled++
			b := j.batch
			b.live--
			if b.live == 0 {
				b.cancel() // last member gone: stop the walk
			}
			man = m.manifestOf(j)
		}
	}
	snap := m.snapshotLocked(j)
	m.mu.Unlock()
	if man != nil {
		m.persist(j, man)
		m.notify(j)
		m.logf("jobs: cancelled job=%s req=%s tenant=%s", j.id, j.requestID, j.tenant)
	}
	return snap, nil
}

// Get returns a job's snapshot.
func (m *Manager) Get(id string) (Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, ErrNotFound
	}
	return m.snapshotLocked(j), nil
}

// List returns snapshots of every known job (optionally one tenant's),
// oldest first.
func (m *Manager) List(tenant string) []Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Snapshot, 0, len(m.jobs))
	for _, j := range m.jobs {
		if tenant != "" && j.tenant != tenant {
			continue
		}
		out = append(out, m.snapshotLocked(j))
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Created.Before(out[k].Created) })
	return out
}

// Result returns a done job's full result (amplitudes lazily reloaded from
// the store after a restart). Failed jobs return their failure error;
// non-terminal and cancelled jobs return ErrNoResult.
func (m *Manager) Result(id string) (*hsfsim.Result, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, ErrNotFound
	}
	state, jerr := j.state, j.err
	amps := j.amps
	meta := j.resMeta
	method := j.opts.Method
	m.mu.Unlock()
	switch state {
	case StateFailed:
		return nil, jerr
	case StateDone:
	default:
		return nil, ErrNoResult
	}
	if amps == nil && m.store != nil {
		ck, err := m.store.GetResult(id)
		if err != nil {
			return nil, err
		}
		if ck == nil {
			return nil, ErrNoResult
		}
		amps = ck.Acc
		m.mu.Lock()
		j.amps = amps
		m.mu.Unlock()
	}
	res := &hsfsim.Result{Amplitudes: amps, Method: method}
	if meta != nil {
		res.NumPaths = meta.NumPaths
		res.Log2Paths = meta.Log2Paths
		res.PathsSimulated = meta.PathsSimulated
		res.NumCuts = meta.NumCuts
		res.NumBlocks = meta.NumBlocks
		res.NumSeparateCuts = meta.NumSeparateCuts
		res.PreprocessTime = time.Duration(meta.PreprocessNS)
		res.SimTime = time.Duration(meta.SimNS)
	}
	return res, nil
}

// Watch registers a coalescing notification channel for a job: the channel
// receives (at least) one signal after every state transition. The returned
// stop function unregisters it.
func (m *Manager) Watch(id string) (<-chan struct{}, func(), error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, nil, ErrNotFound
	}
	ch := make(chan struct{}, 1)
	j.watchers = append(j.watchers, ch)
	stop := func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		for i, w := range j.watchers {
			if w == ch {
				j.watchers = append(j.watchers[:i], j.watchers[i+1:]...)
				break
			}
		}
	}
	return ch, stop, nil
}

func (m *Manager) notify(j *job) {
	m.mu.Lock()
	watchers := append([]chan struct{}(nil), j.watchers...)
	m.mu.Unlock()
	for _, ch := range watchers {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

func (m *Manager) snapshotLocked(j *job) Snapshot {
	s := Snapshot{
		ID:          j.id,
		Tenant:      j.tenant,
		Priority:    j.priority,
		RequestID:   j.requestID,
		State:       j.state,
		Created:     j.created,
		Started:     j.started,
		Finished:    j.finished,
		Fingerprint: j.fp,
		NumQubits:   j.numQubits(),
		BatchSize:   j.batchSize,
		PlanShared:  j.planShared,
		Resumed:     j.resumed,
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	if j.resMeta != nil && j.state == StateDone {
		s.PathsDone = j.resMeta.PathsSimulated
		s.PathsTotal = j.resMeta.PathsSimulated
	} else if j.progress != nil {
		s.PathsDone = j.progress.Done()
		s.PathsTotal = j.progress.Total()
	}
	return s
}

func (m *Manager) manifestOf(j *job) *Manifest {
	man := &Manifest{
		ID:          j.id,
		Tenant:      j.tenant,
		Priority:    j.priority,
		RequestID:   j.requestID,
		QASM:        j.qasm,
		Opts:        wireOptions(j.opts),
		Fingerprint: j.fp,
		State:       j.state,
		Created:     j.created,
		Started:     j.started,
		Finished:    j.finished,
		Resumed:     j.resumed,
		ResultMeta:  j.resMeta,
	}
	if j.err != nil {
		man.Error = j.err.Error()
	}
	return man
}

func (m *Manager) persist(j *job, man *Manifest) {
	if m.store == nil {
		return
	}
	if err := m.store.PutJob(man); err != nil {
		m.logf("jobs: persist failed job=%s: %v", j.id, err)
	}
}

// StatsSnapshot is the manager's observable state for /metrics and /readyz.
type StatsSnapshot struct {
	Queued    int   `json:"queued"`
	QueueCap  int   `json:"queue_cap"`
	Running   int64 `json:"running"`
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
	Resumed   int64 `json:"resumed"`
	// Batches counts executed walks; BatchedJobs counts jobs that shared a
	// walk with at least one other job. PlanHits/PlanMisses expose the
	// compiled-plan cache.
	Batches        int64                       `json:"batches"`
	BatchedJobs    int64                       `json:"batched_jobs"`
	PlanHits       int64                       `json:"plan_hits"`
	PlanMisses     int64                       `json:"plan_misses"`
	PlanEvictions  int64                       `json:"plan_evictions"`
	QueueWait      telemetry.HistogramSnapshot `json:"queue_wait"`
	BatchDurations telemetry.HistogramSnapshot `json:"batch_durations"`
}

// Stats returns a point-in-time copy of the manager's counters.
func (m *Manager) Stats() StatsSnapshot {
	hits, misses, evictions := m.cache.stats()
	depth, capQ := m.QueueDepth()
	return StatsSnapshot{
		Queued:         depth,
		QueueCap:       capQ,
		Running:        m.runningN.Load(),
		Submitted:      m.submitted.Load(),
		Completed:      m.completed.Load(),
		Failed:         m.failedN.Load(),
		Cancelled:      m.cancelledN.Load(),
		Resumed:        m.resumedN.Load(),
		Batches:        m.batchesN.Load(),
		BatchedJobs:    m.batchedN.Load(),
		PlanHits:       hits,
		PlanMisses:     misses,
		PlanEvictions:  evictions,
		QueueWait:      m.waitHist.Snapshot(),
		BatchDurations: m.runHist.Snapshot(),
	}
}

// TenantStats is one tenant's point-in-time standing for per-tenant
// metrics: lifetime counters plus live queue state. The "_other" row
// aggregates every tenant beyond the cardinality cap.
type TenantStats struct {
	Tenant    string `json:"tenant"`
	Queued    int    `json:"queued"`
	Running   int    `json:"running"`
	Submitted int64  `json:"submitted"`
	Completed int64  `json:"completed"`
	Failed    int64  `json:"failed"`
	Cancelled int64  `json:"cancelled"`
	// OldestQueuedAgeSeconds is how long the tenant's oldest queued job
	// has been waiting (0 when nothing is queued) — the queue-age gauge
	// that makes one tenant's backlog visible next to fleet totals.
	OldestQueuedAgeSeconds float64 `json:"oldest_queued_age_seconds"`
}

// TenantStats returns per-tenant counters and queue ages, sorted by tenant
// label. Cardinality is bounded by maxTenantLabels plus the overflow row.
func (m *Manager) TenantStats() []TenantStats {
	now := time.Now()
	m.mu.Lock()
	rows := make(map[string]*TenantStats, len(m.tenants))
	for label, tc := range m.tenants {
		rows[label] = &TenantStats{
			Tenant:    label,
			Submitted: tc.submitted,
			Completed: tc.completed,
			Failed:    tc.failed,
			Cancelled: tc.cancelled,
		}
	}
	for _, j := range m.jobs {
		row := rows[m.tenantLabelLocked(j.tenant)]
		if row == nil {
			continue // tenant loaded from the store without new submissions
		}
		switch j.state {
		case StateQueued:
			row.Queued++
			if age := now.Sub(j.created).Seconds(); age > row.OldestQueuedAgeSeconds {
				row.OldestQueuedAgeSeconds = age
			}
		case StateRunning:
			row.Running++
		}
	}
	m.mu.Unlock()
	out := make([]TenantStats, 0, len(rows))
	for _, r := range rows {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Tenant < out[k].Tenant })
	return out
}

// Close stops the manager: running walks are cancelled (their final
// checkpoints flushed to the store so a successor resumes them) and the
// runner pool drains. Queued and running jobs stay queued/running in the
// store — a restarted Manager re-offers them. ctx bounds the wait.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	for b := range m.running {
		b.cancel()
	}
	m.cond.Broadcast()
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
