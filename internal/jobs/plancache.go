package jobs

import (
	"container/list"
	"sync"

	"hsfsim"
)

// planCache is a single-flight LRU of compiled plans keyed by fingerprint.
// The first submission for a fingerprint compiles (paying the Schmidt
// decompositions once); concurrent submissions for the same fingerprint
// block on the in-flight compile instead of duplicating it, and later ones
// hit the finished entry. Compile errors are cached too — resubmitting a
// circuit the planner rejects should not re-run the planner — but error
// entries still count toward the LRU bound, so they age out.
type planCache struct {
	mu      sync.Mutex
	max     int
	entries map[uint64]*planEntry
	lru     *list.List // front = most recently used; values are *planEntry

	hits, misses, evictions int64
}

type planEntry struct {
	fp    uint64
	ready chan struct{} // closed once cp/err are set
	cp    *hsfsim.CompiledPlan
	err   error
	elem  *list.Element
}

func newPlanCache(max int) *planCache {
	if max <= 0 {
		max = 128
	}
	return &planCache{max: max, entries: map[uint64]*planEntry{}, lru: list.New()}
}

// get returns the compiled plan for (c, opts), compiling it if this is the
// fingerprint's first appearance. shared reports whether the plan already
// existed (or was being compiled by a concurrent caller) — the signal tests
// use to prove same-circuit jobs share one plan.
func (pc *planCache) get(fp uint64, c *hsfsim.Circuit, opts hsfsim.Options) (cp *hsfsim.CompiledPlan, shared bool, err error) {
	pc.mu.Lock()
	if e, ok := pc.entries[fp]; ok {
		pc.hits++
		pc.lru.MoveToFront(e.elem)
		pc.mu.Unlock()
		<-e.ready
		return e.cp, true, e.err
	}
	pc.misses++
	e := &planEntry{fp: fp, ready: make(chan struct{})}
	e.elem = pc.lru.PushFront(e)
	pc.entries[fp] = e
	for pc.lru.Len() > pc.max {
		back := pc.lru.Back()
		old := back.Value.(*planEntry)
		pc.lru.Remove(back)
		delete(pc.entries, old.fp)
		pc.evictions++
	}
	pc.mu.Unlock()

	e.cp, e.err = hsfsim.Compile(c, opts)
	close(e.ready)
	return e.cp, false, e.err
}

// stats returns the cache counters (hits, misses, evictions).
func (pc *planCache) stats() (hits, misses, evictions int64) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.hits, pc.misses, pc.evictions
}
