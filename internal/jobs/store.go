package jobs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"time"

	"hsfsim"
	"hsfsim/internal/hsf"
)

// Manifest is the durable JSON record of one job: the submission (QASM
// source + wire-form options) and its lifecycle state. Amplitude payloads —
// mid-run checkpoints and final results — are stored separately in the PR-1
// binary checkpoint format; the manifest carries only metadata.
type Manifest struct {
	ID          string      `json:"id"`
	Tenant      string      `json:"tenant"`
	Priority    int         `json:"priority"`
	RequestID   string      `json:"request_id,omitempty"`
	QASM        string      `json:"qasm"`
	Opts        WireOptions `json:"opts"`
	Fingerprint uint64      `json:"fingerprint,string"`
	State       State       `json:"state"`
	Created     time.Time   `json:"created"`
	Started     time.Time   `json:"started,omitempty"`
	Finished    time.Time   `json:"finished,omitempty"`
	Resumed     bool        `json:"resumed,omitempty"`
	Error       string      `json:"error,omitempty"`
	// Result metadata for done jobs; the amplitudes live in the result
	// checkpoint file (Acc field), retrievable via Store.GetResult.
	ResultMeta *ResultMeta `json:"result,omitempty"`
}

// ResultMeta is the scalar part of a finished job's result.
type ResultMeta struct {
	NumQubits       int     `json:"num_qubits"`
	NumPaths        uint64  `json:"num_paths,string"`
	Log2Paths       float64 `json:"log2_paths"`
	PathsSimulated  int64   `json:"paths_simulated"`
	NumCuts         int     `json:"num_cuts"`
	NumBlocks       int     `json:"num_blocks"`
	NumSeparateCuts int     `json:"num_separate_cuts"`
	PreprocessNS    int64   `json:"preprocess_ns"`
	SimNS           int64   `json:"sim_ns"`
}

// WireOptions is the JSON-serializable subset of hsfsim.Options a job
// carries: everything that affects the plan or the run, nothing that is a
// live callback. Methods, strategies, and backends serialize as their
// stable integer constants.
type WireOptions struct {
	Method          int     `json:"method"`
	CutPos          int     `json:"cut_pos"`
	MaxAmplitudes   int     `json:"max_amplitudes,omitempty"`
	Workers         int     `json:"workers,omitempty"`
	Strategy        int     `json:"strategy,omitempty"`
	MaxBlockQubits  int     `json:"max_block_qubits,omitempty"`
	FusionMaxQubits int     `json:"fusion_max_qubits,omitempty"`
	UseAnalytic     bool    `json:"use_analytic,omitempty"`
	Tol             float64 `json:"tol,omitempty"`
	TimeoutNS       int64   `json:"timeout_ns,omitempty"`
	Backend         int     `json:"backend,omitempty"`
	MemoryBudget    int64   `json:"memory_budget,omitempty"`
	MaxPaths        uint64  `json:"max_paths,omitempty,string"`
}

// wireOptions captures the durable fields of opts.
func wireOptions(opts hsfsim.Options) WireOptions {
	backend := opts.Backend
	if opts.UseDDEngine {
		backend = hsfsim.BackendDD
	}
	return WireOptions{
		Method:          int(opts.Method),
		CutPos:          opts.CutPos,
		MaxAmplitudes:   opts.MaxAmplitudes,
		Workers:         opts.Workers,
		Strategy:        int(opts.BlockStrategy),
		MaxBlockQubits:  opts.MaxBlockQubits,
		FusionMaxQubits: opts.FusionMaxQubits,
		UseAnalytic:     opts.UseAnalyticCascades,
		Tol:             opts.Tol,
		TimeoutNS:       int64(opts.Timeout),
		Backend:         int(backend),
		MemoryBudget:    opts.MemoryBudget,
		MaxPaths:        opts.MaxPaths,
	}
}

// Options reconstructs the hsfsim.Options a stored job runs with.
func (w WireOptions) Options() hsfsim.Options {
	return hsfsim.Options{
		Method:              hsfsim.Method(w.Method),
		CutPos:              w.CutPos,
		MaxAmplitudes:       w.MaxAmplitudes,
		Workers:             w.Workers,
		BlockStrategy:       hsfsim.BlockStrategy(w.Strategy),
		MaxBlockQubits:      w.MaxBlockQubits,
		FusionMaxQubits:     w.FusionMaxQubits,
		UseAnalyticCascades: w.UseAnalytic,
		Tol:                 w.Tol,
		Timeout:             time.Duration(w.TimeoutNS),
		Backend:             hsfsim.Backend(w.Backend),
		MemoryBudget:        w.MemoryBudget,
		MaxPaths:            w.MaxPaths,
	}
}

// Store persists job manifests and amplitude payloads. Implementations must
// make Put* atomic (a torn write must not corrupt an existing record);
// Get* return (nil, nil) for absent keys.
type Store interface {
	// PutJob durably records a manifest, replacing any prior record of the
	// same job ID.
	PutJob(m *Manifest) error
	// Jobs returns every stored manifest, in unspecified order.
	Jobs() ([]*Manifest, error)
	// PutCheckpoint durably records a mid-run walk checkpoint under key.
	PutCheckpoint(key string, ck *hsfsim.Checkpoint) error
	// GetCheckpoint returns the checkpoint stored under key, or (nil, nil).
	GetCheckpoint(key string) (*hsfsim.Checkpoint, error)
	// DeleteCheckpoint removes a checkpoint; absent keys are not an error.
	DeleteCheckpoint(key string) error
	// PutResult durably records a finished job's amplitudes (as a PR-1
	// checkpoint whose Acc holds them).
	PutResult(id string, ck *hsfsim.Checkpoint) error
	// GetResult returns a finished job's stored amplitudes, or (nil, nil).
	GetResult(id string) (*hsfsim.Checkpoint, error)
}

// DirStore is the filesystem Store: one JSON manifest per job under jobs/,
// binary checkpoints under ckpt/, result payloads under results/. Every
// write goes tmp → fsync → rename, the same torn-write discipline as
// dist.DirStore, so a kill at any instant leaves either the old record or
// the new one, never a hybrid.
type DirStore struct {
	dir string
}

// NewDirStore creates (if needed) and opens the store rooted at dir.
func NewDirStore(dir string) (*DirStore, error) {
	for _, sub := range []string{"jobs", "ckpt", "results"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("jobs: create store: %w", err)
		}
	}
	return &DirStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *DirStore) Dir() string { return s.dir }

// writeAtomic writes data to path via tmp → fsync → rename. The tmp name is
// unique per call: the same record can be persisted concurrently (e.g. the
// submitter writing a job's queued state while a runner writes its running
// state), and a shared tmp name would let one rename steal the other's file
// out from under it. Whichever rename lands last wins whole; for manifests
// the stalest possible survivor is an earlier state, which restart handles
// by re-offering the job.
func writeAtomic(path string, data []byte) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := f.Chmod(0o644); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// sanitizeKey keeps store keys safe as file names.
func sanitizeKey(key string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, key)
}

func (s *DirStore) PutJob(m *Manifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("jobs: marshal manifest: %w", err)
	}
	return writeAtomic(filepath.Join(s.dir, "jobs", sanitizeKey(m.ID)+".json"), data)
}

func (s *DirStore) Jobs() ([]*Manifest, error) {
	ents, err := os.ReadDir(filepath.Join(s.dir, "jobs"))
	if err != nil {
		return nil, err
	}
	var out []*Manifest
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, "jobs", e.Name()))
		if err != nil {
			return nil, err
		}
		var m Manifest
		if err := json.Unmarshal(data, &m); err != nil {
			// A torn manifest can only be a crashed pre-rename tmp that a
			// broken filesystem surfaced; skip it rather than refusing to
			// start the whole service.
			continue
		}
		out = append(out, &m)
	}
	return out, nil
}

func (s *DirStore) putCkptFile(path string, ck *hsfsim.Checkpoint) error {
	var buf bytes.Buffer
	if err := hsf.WriteCheckpoint(&buf, ck); err != nil {
		return err
	}
	return writeAtomic(path, buf.Bytes())
}

func (s *DirStore) getCkptFile(path string) (*hsfsim.Checkpoint, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	ck, err := hsf.ReadCheckpoint(bytes.NewReader(data))
	if err != nil {
		// A corrupt checkpoint only costs resume granularity; callers fall
		// back to running the batch from scratch.
		return nil, nil
	}
	return ck, nil
}

func (s *DirStore) PutCheckpoint(key string, ck *hsfsim.Checkpoint) error {
	return s.putCkptFile(filepath.Join(s.dir, "ckpt", sanitizeKey(key)+".ckpt"), ck)
}

func (s *DirStore) GetCheckpoint(key string) (*hsfsim.Checkpoint, error) {
	return s.getCkptFile(filepath.Join(s.dir, "ckpt", sanitizeKey(key)+".ckpt"))
}

func (s *DirStore) DeleteCheckpoint(key string) error {
	err := os.Remove(filepath.Join(s.dir, "ckpt", sanitizeKey(key)+".ckpt"))
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	return err
}

func (s *DirStore) PutResult(id string, ck *hsfsim.Checkpoint) error {
	return s.putCkptFile(filepath.Join(s.dir, "results", sanitizeKey(id)+".ckpt"), ck)
}

func (s *DirStore) GetResult(id string) (*hsfsim.Checkpoint, error) {
	return s.getCkptFile(filepath.Join(s.dir, "results", sanitizeKey(id)+".ckpt"))
}
