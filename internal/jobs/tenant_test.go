// Per-tenant accounting: TenantStats rows, the cardinality cap folding
// excess tenants into the overflow bucket, and job lifecycle spans joining
// a submitted trace parent.
package jobs

import (
	"fmt"
	"testing"

	"hsfsim/internal/telemetry/trace"
)

func TestTenantStatsCardinalityCap(t *testing.T) {
	m, err := New(Config{Runners: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer closeNow(t, m)

	const tenants = maxTenantLabels + 8
	var last string
	for i := 0; i < tenants; i++ {
		snap, err := m.Submit(Request{
			Tenant:  fmt.Sprintf("tenant-%03d", i),
			Circuit: crossCircuit(int64(100+i), 6, 2),
			Opts:    hsfOpts(6),
		})
		if err != nil {
			t.Fatalf("submit for tenant %d: %v", i, err)
		}
		last = snap.ID
	}
	waitState(t, m, last, StateDone)

	rows := m.TenantStats()
	if len(rows) > maxTenantLabels+1 {
		t.Fatalf("TenantStats has %d rows, want <= %d (cap plus overflow bucket)", len(rows), maxTenantLabels+1)
	}
	var total int64
	var other *TenantStats
	for i := range rows {
		total += rows[i].Submitted
		if rows[i].Tenant == otherTenant {
			other = &rows[i]
		}
	}
	if total != tenants {
		t.Fatalf("summed Submitted = %d, want %d (no submission may vanish under the cap)", total, tenants)
	}
	if other == nil {
		t.Fatalf("no %q overflow row despite %d tenants over the %d cap", otherTenant, tenants, maxTenantLabels)
	}
	if want := int64(tenants - maxTenantLabels); other.Submitted != want {
		t.Fatalf("overflow bucket Submitted = %d, want %d", other.Submitted, want)
	}
	// Overflowed tenants must not have gotten their own rows.
	for _, r := range rows {
		if r.Tenant > fmt.Sprintf("tenant-%03d", maxTenantLabels-1) && r.Tenant != otherTenant {
			t.Fatalf("tenant %q has its own row but arrived after the cap", r.Tenant)
		}
	}
	// Everything ran to completion, so nothing is queued and ages are zero.
	for _, r := range rows {
		if r.Queued != 0 || r.OldestQueuedAgeSeconds != 0 {
			t.Fatalf("tenant %q reports queued=%d age=%.3f after drain, want zeros", r.Tenant, r.Queued, r.OldestQueuedAgeSeconds)
		}
	}
}

// TestJobSpansParentSubmittedTrace hands Submit a trace parent and asserts
// the job-queued span joins it and the job-batch span nests under job-queued.
func TestJobSpansParentSubmittedTrace(t *testing.T) {
	rec := trace.NewRecorder(0)
	m, err := New(Config{Runners: 1, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer closeNow(t, m)

	root := rec.Start(trace.SpanContext{}, "submit-root")
	rc := root.Context()
	snap, err := m.Submit(Request{
		Tenant:      "acme",
		RequestID:   "req-42",
		TraceParent: rc,
		Circuit:     crossCircuit(200, 6, 3),
		Opts:        hsfOpts(6),
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, snap.ID, StateDone)
	root.End()

	var queued, batch *trace.Event
	events := rec.Snapshot()
	for i := range events {
		switch events[i].Name {
		case "job-queued":
			queued = &events[i]
		case "job-batch":
			batch = &events[i]
		}
	}
	if queued == nil || batch == nil {
		t.Fatalf("missing lifecycle spans: job-queued=%v job-batch=%v", queued != nil, batch != nil)
	}
	if queued.Trace != rc.Trace || queued.Parent != rc.Span {
		t.Fatalf("job-queued (trace %s parent %s) does not join the submitted parent (trace %s span %s)",
			queued.Trace, queued.Parent, rc.Trace, rc.Span)
	}
	if batch.Trace != rc.Trace || batch.Parent != queued.Span {
		t.Fatalf("job-batch (trace %s parent %s) does not nest under job-queued (span %s)",
			batch.Trace, batch.Parent, queued.Span)
	}
	if queued.Str("job") != snap.ID || queued.Str("req") != "req-42" || queued.Str("tenant") != "acme" {
		t.Fatalf("job-queued attrs job=%q req=%q tenant=%q, want the submitted identifiers",
			queued.Str("job"), queued.Str("req"), queued.Str("tenant"))
	}
}
