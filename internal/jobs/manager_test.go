package jobs

import (
	"context"
	"errors"
	"math/cmplx"
	"math/rand"
	"testing"
	"time"

	"hsfsim"
)

// crossCircuit builds an n-qubit circuit with k RZZ gates crossing the
// CutPos=n/2-1 bipartition: under StandardHSF every crossing gate is a
// separate rank-2 cut, so the walk has 2^k paths — a knob for run length.
func crossCircuit(seed int64, n, k int) *hsfsim.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := hsfsim.NewCircuit(n)
	for q := 0; q < n; q++ {
		c.Append(hsfsim.H(q))
	}
	cut := n/2 - 1
	for i := 0; i < k; i++ {
		c.Append(hsfsim.RZZ(rng.Float64()*2, cut, cut+1))
		c.Append(hsfsim.RX(rng.Float64(), rng.Intn(n)))
	}
	return c
}

func hsfOpts(n int) hsfsim.Options {
	return hsfsim.Options{Method: hsfsim.StandardHSF, CutPos: n/2 - 1}
}

func waitState(t *testing.T, m *Manager, id string, want State) Snapshot {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		snap, err := m.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if snap.State == want {
			return snap
		}
		if snap.State.Terminal() {
			t.Fatalf("job %s reached %v (error %q) while waiting for %v", id, snap.State, snap.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %v", id, want)
	return Snapshot{}
}

func maxDiff(a, b []complex128) float64 {
	var d float64
	for i := range a {
		if e := cmplx.Abs(a[i] - b[i]); e > d {
			d = e
		}
	}
	return d
}

func closeNow(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestSubmitRunDone(t *testing.T) {
	m, err := New(Config{Runners: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer closeNow(t, m)
	c := crossCircuit(1, 8, 6)
	opts := hsfOpts(8)
	opts.MaxAmplitudes = 32
	snap, err := m.Submit(Request{Tenant: "acme", RequestID: "req-1", Circuit: c, Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateQueued || snap.Tenant != "acme" || snap.RequestID != "req-1" {
		t.Fatalf("bad initial snapshot %+v", snap)
	}
	done := waitState(t, m, snap.ID, StateDone)
	if done.PathsDone != done.PathsTotal || done.PathsDone == 0 {
		t.Fatalf("progress not final: %d/%d", done.PathsDone, done.PathsTotal)
	}
	res, err := m.Result(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	want, err := hsfsim.Simulate(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Amplitudes) != 32 {
		t.Fatalf("got %d amplitudes, want 32", len(res.Amplitudes))
	}
	if d := maxDiff(res.Amplitudes, want.Amplitudes); d > 1e-12 {
		t.Fatalf("amplitudes diverge from direct Simulate by %g", d)
	}
	if res.PathsSimulated != want.PathsSimulated {
		t.Fatalf("paths %d != %d", res.PathsSimulated, want.PathsSimulated)
	}
}

func TestSchrodingerJob(t *testing.T) {
	m, err := New(Config{Runners: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer closeNow(t, m)
	c := crossCircuit(2, 6, 4)
	opts := hsfsim.Options{Method: hsfsim.Schrodinger, MaxAmplitudes: 16}
	snap, err := m.Submit(Request{Circuit: c, Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, snap.ID, StateDone)
	res, err := m.Result(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := hsfsim.Simulate(c, opts)
	if d := maxDiff(res.Amplitudes, want.Amplitudes); d > 1e-12 {
		t.Fatalf("schrodinger job diverges by %g", d)
	}
}

// submitBlocker submits a job long enough to hold the single runner while
// the test stages queued work behind it, and waits until it is running.
func submitBlocker(t *testing.T, m *Manager) Snapshot {
	t.Helper()
	c := crossCircuit(99, 8, 13)
	snap, err := m.Submit(Request{Tenant: "blocker", Circuit: c, Opts: hsfOpts(8)})
	if err != nil {
		t.Fatal(err)
	}
	return waitState(t, m, snap.ID, StateRunning)
}

func TestBatchingSharesPlanAndWalk(t *testing.T) {
	m, err := New(Config{Runners: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer closeNow(t, m)
	blocker := submitBlocker(t, m)

	// Four identical circuits across two tenants with distinct priorities
	// and distinct amplitude windows: one compiled plan, one walk.
	c := crossCircuit(7, 8, 8)
	maxAmps := []int{4, 16, 0, 7}
	tenants := []string{"a", "b", "a", "b"}
	prios := []int{0, 5, 2, 1}
	ids := make([]string, len(maxAmps))
	for i := range maxAmps {
		opts := hsfOpts(8)
		opts.MaxAmplitudes = maxAmps[i]
		snap, err := m.Submit(Request{Tenant: tenants[i], Priority: prios[i], Circuit: crossCircuit(7, 8, 8), Opts: opts})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = snap.ID
	}
	waitState(t, m, blocker.ID, StateDone)
	for i, id := range ids {
		snap := waitState(t, m, id, StateDone)
		if snap.BatchSize != len(ids) {
			t.Fatalf("job %d: batch size %d, want %d", i, snap.BatchSize, len(ids))
		}
		if !snap.PlanShared {
			t.Fatalf("job %d: plan not shared", i)
		}
	}

	st := m.Stats()
	if st.Batches != 2 {
		t.Fatalf("got %d batches (blocker + one shared walk expected)", st.Batches)
	}
	if st.BatchedJobs != int64(len(ids)) {
		t.Fatalf("batched jobs %d, want %d", st.BatchedJobs, len(ids))
	}
	// Two distinct fingerprints compiled (blocker + the shared circuit) for
	// six jobs: the duplicate submissions and both executions hit the cache.
	if st.PlanMisses != 2 {
		t.Fatalf("%d plan compiles for %d jobs, want 2", st.PlanMisses, len(ids)+1)
	}
	if st.PlanHits < int64(len(ids)-1) {
		t.Fatalf("plan cache hits=%d, want at least %d", st.PlanHits, len(ids)-1)
	}

	want, err := hsfsim.Simulate(c, hsfOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		res, err := m.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		wantLen := maxAmps[i]
		if wantLen == 0 {
			wantLen = 1 << 8
		}
		if len(res.Amplitudes) != wantLen {
			t.Fatalf("job %d: %d amplitudes, want %d", i, len(res.Amplitudes), wantLen)
		}
		if d := maxDiff(res.Amplitudes, want.Amplitudes[:wantLen]); d > 1e-12 {
			t.Fatalf("job %d diverges from direct Simulate by %g", i, d)
		}
	}
}

func TestPriorityNeverStarved(t *testing.T) {
	m, err := New(Config{Runners: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer closeNow(t, m)
	blocker := submitBlocker(t, m)

	// Low-priority jobs enqueue first, high-priority after; with one
	// runner, strict priority must start every high job before any low.
	var lowIDs, highIDs []string
	for i := 0; i < 3; i++ {
		snap, err := m.Submit(Request{Tenant: "low", Priority: 0, Circuit: crossCircuit(int64(10+i), 8, 5), Opts: hsfOpts(8)})
		if err != nil {
			t.Fatal(err)
		}
		lowIDs = append(lowIDs, snap.ID)
	}
	for i := 0; i < 3; i++ {
		snap, err := m.Submit(Request{Tenant: "high", Priority: 9, Circuit: crossCircuit(int64(20+i), 8, 5), Opts: hsfOpts(8)})
		if err != nil {
			t.Fatal(err)
		}
		highIDs = append(highIDs, snap.ID)
	}
	waitState(t, m, blocker.ID, StateDone)
	var lastHighStart, firstLowStart time.Time
	for _, id := range highIDs {
		snap := waitState(t, m, id, StateDone)
		if snap.Started.After(lastHighStart) {
			lastHighStart = snap.Started
		}
	}
	for _, id := range lowIDs {
		snap := waitState(t, m, id, StateDone)
		if firstLowStart.IsZero() || snap.Started.Before(firstLowStart) {
			firstLowStart = snap.Started
		}
	}
	if lastHighStart.After(firstLowStart) {
		t.Fatalf("a high-priority job started at %v, after a low-priority one at %v: starvation",
			lastHighStart, firstLowStart)
	}
	// Bounded wait: no high-priority job may wait longer than the point at
	// which the first low-priority job got served.
	for _, id := range highIDs {
		snap, _ := m.Get(id)
		if snap.Started.After(firstLowStart) {
			t.Fatalf("high-priority job %s waited past the first low-priority start", id)
		}
	}
}

func TestQueueFullAndQuota(t *testing.T) {
	m, err := New(Config{Runners: 1, QueueCap: 3, Quotas: map[string]int{"limited": 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer closeNow(t, m)
	submitBlocker(t, m)

	// Tenant quota: two outstanding jobs fill tenant "limited"'s quota; the
	// third is rejected even though the queue still has room.
	for i := 0; i < 2; i++ {
		if _, err := m.Submit(Request{Tenant: "limited", Circuit: crossCircuit(int64(30+i), 8, 4), Opts: hsfOpts(8)}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	_, err = m.Submit(Request{Tenant: "limited", Circuit: crossCircuit(32, 8, 4), Opts: hsfOpts(8)})
	var qe *QuotaError
	if !errors.As(err, &qe) || !errors.Is(err, ErrQuota) {
		t.Fatalf("want QuotaError, got %v", err)
	}
	if qe.RetryAfter <= 0 {
		t.Fatalf("QuotaError without Retry-After hint: %+v", qe)
	}

	// Queue capacity: a third queued job fills QueueCap=3; the next is shed.
	if _, err := m.Submit(Request{Tenant: "other", Circuit: crossCircuit(33, 8, 4), Opts: hsfOpts(8)}); err != nil {
		t.Fatal(err)
	}
	_, err = m.Submit(Request{Tenant: "other", Circuit: crossCircuit(34, 8, 4), Opts: hsfOpts(8)})
	var fe *QueueFullError
	if !errors.As(err, &fe) || !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want QueueFullError, got %v", err)
	}
	if fe.RetryAfter <= 0 || fe.Depth != 3 || fe.Capacity != 3 {
		t.Fatalf("bad QueueFullError %+v", fe)
	}
}

func TestBudgetRejectionAtSubmit(t *testing.T) {
	m, err := New(Config{Runners: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer closeNow(t, m)
	opts := hsfOpts(8)
	opts.MaxPaths = 4 // the circuit has 2^6 paths
	_, err = m.Submit(Request{Circuit: crossCircuit(40, 8, 6), Opts: opts})
	if !errors.Is(err, hsfsim.ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
	if st := m.Stats(); st.Submitted != 0 || st.Queued != 0 {
		t.Fatalf("rejected job was counted: %+v", st)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	m, err := New(Config{Runners: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer closeNow(t, m)
	blocker := submitBlocker(t, m)

	queued, err := m.Submit(Request{Circuit: crossCircuit(50, 8, 4), Opts: hsfOpts(8)})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := m.Cancel(queued.ID)
	if err != nil || snap.State != StateCancelled {
		t.Fatalf("cancel queued: %v %+v", err, snap)
	}

	// Cancel the running blocker: its walk must stop without failing it.
	snap, err = m.Cancel(blocker.ID)
	if err != nil || snap.State != StateCancelled {
		t.Fatalf("cancel running: %v %+v", err, snap)
	}
	// Idempotent on terminal jobs.
	if snap, err = m.Cancel(blocker.ID); err != nil || snap.State != StateCancelled {
		t.Fatalf("re-cancel: %v %+v", err, snap)
	}
	if _, err := m.Cancel("job-nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if _, err := m.Result(queued.ID); !errors.Is(err, ErrNoResult) {
		t.Fatalf("cancelled job yielded a result: %v", err)
	}
	// The runner must come back for new work after the cancelled walk.
	again, err := m.Submit(Request{Circuit: crossCircuit(51, 8, 4), Opts: hsfOpts(8)})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, again.ID, StateDone)
}

func TestWatchSignalsTransitions(t *testing.T) {
	m, err := New(Config{Runners: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer closeNow(t, m)
	snap, err := m.Submit(Request{Circuit: crossCircuit(60, 8, 5), Opts: hsfOpts(8)})
	if err != nil {
		t.Fatal(err)
	}
	ch, stop, err := m.Watch(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	deadline := time.After(30 * time.Second)
	for {
		cur, _ := m.Get(snap.ID)
		if cur.State == StateDone {
			return
		}
		select {
		case <-ch:
		case <-deadline:
			t.Fatal("no watch signal before completion")
		}
	}
}

func TestKillRestartResumesFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	store1, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := New(Config{Runners: 1, Store: store1, FlushInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	// A long walk (2^15 paths) plus one job queued behind it.
	c := crossCircuit(70, 8, 15)
	opts := hsfOpts(8)
	opts.MaxAmplitudes = 64
	running, err := m1.Submit(Request{Tenant: "t1", RequestID: "req-kill", Circuit: c, Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	c2 := crossCircuit(71, 8, 5)
	queued, err := m1.Submit(Request{Tenant: "t2", Circuit: c2, Opts: hsfOpts(8)})
	if err != nil {
		t.Fatal(err)
	}

	// Wait for a durable mid-run checkpoint, then kill the manager. Close
	// also flushes the final engine checkpoint, so the successor provably
	// resumes rather than restarts.
	key := ckptKey(running.Fingerprint)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if ck, _ := store1.GetCheckpoint(key); ck != nil && ck.PathsSimulated > 0 {
			break
		}
		if snap, _ := m1.Get(running.ID); snap.State.Terminal() {
			t.Fatalf("job finished before a checkpoint flush; grow the workload (state %v)", snap.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("no mid-run checkpoint appeared")
		}
		time.Sleep(time.Millisecond)
	}
	closeNow(t, m1)
	ck, err := store1.GetCheckpoint(key)
	if err != nil || ck == nil {
		t.Fatalf("no checkpoint survived the kill: %v", err)
	}
	if ck.PathsSimulated <= 0 || ck.PathsSimulated >= 1<<15 {
		t.Fatalf("checkpoint covers %d paths, want a strict mid-run state", ck.PathsSimulated)
	}

	// Restart over the same store: both jobs must be re-offered and finish.
	store2, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := New(Config{Runners: 1, Store: store2})
	if err != nil {
		t.Fatal(err)
	}
	defer closeNow(t, m2)
	snap := waitState(t, m2, running.ID, StateDone)
	if !snap.Resumed {
		t.Fatal("restarted job not marked resumed")
	}
	if snap.RequestID != "req-kill" {
		t.Fatalf("request ID lost across restart: %+v", snap)
	}
	waitState(t, m2, queued.ID, StateDone)

	res, err := m2.Result(running.ID)
	if err != nil {
		t.Fatal(err)
	}
	want, err := hsfsim.Simulate(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxDiff(res.Amplitudes, want.Amplitudes); d > 1e-12 {
		t.Fatalf("resumed result diverges from direct Simulate by %g", d)
	}
	if res.PathsSimulated != 1<<15 {
		t.Fatalf("resumed run covered %d paths, want %d", res.PathsSimulated, 1<<15)
	}
	res2, err := m2.Result(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	want2, _ := hsfsim.Simulate(c2, hsfOpts(8))
	if d := maxDiff(res2.Amplitudes, want2.Amplitudes); d > 1e-12 {
		t.Fatalf("re-offered queued job diverges by %g", d)
	}
	if st := m2.Stats(); st.Resumed < 1 {
		t.Fatalf("resume not counted: %+v", st)
	}
}

func TestResultsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	store1, _ := NewDirStore(dir)
	m1, err := New(Config{Runners: 1, Store: store1})
	if err != nil {
		t.Fatal(err)
	}
	c := crossCircuit(80, 8, 4)
	opts := hsfOpts(8)
	opts.MaxAmplitudes = 8
	snap, err := m1.Submit(Request{Circuit: c, Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m1, snap.ID, StateDone)
	closeNow(t, m1)

	store2, _ := NewDirStore(dir)
	m2, err := New(Config{Runners: 1, Store: store2})
	if err != nil {
		t.Fatal(err)
	}
	defer closeNow(t, m2)
	got, err := m2.Get(snap.ID)
	if err != nil || got.State != StateDone {
		t.Fatalf("done job lost across restart: %v %+v", err, got)
	}
	res, err := m2.Result(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := hsfsim.Simulate(c, opts)
	if d := maxDiff(res.Amplitudes, want.Amplitudes); d > 1e-12 {
		t.Fatalf("stored result diverges by %g", d)
	}
}

func TestWireOptionsRoundTrip(t *testing.T) {
	in := hsfsim.Options{
		Method:         hsfsim.JointHSF,
		CutPos:         3,
		MaxAmplitudes:  100,
		Workers:        2,
		BlockStrategy:  hsfsim.BlockWindow,
		MaxBlockQubits: 5,
		Tol:            1e-9,
		Timeout:        3 * time.Second,
		Backend:        hsfsim.BackendDD,
		MemoryBudget:   1 << 30,
		MaxPaths:       12345,
	}
	w := wireOptions(in)
	if w2 := wireOptions(w.Options()); w != w2 {
		t.Fatalf("wire round trip lost fields:\n in %+v\nout %+v", w, w2)
	}
	out := w.Options()
	if out.Method != in.Method || out.BlockStrategy != in.BlockStrategy ||
		out.Backend != in.Backend || out.Timeout != in.Timeout || out.MaxPaths != in.MaxPaths {
		t.Fatalf("options reconstruction mismatch: %+v", out)
	}
}
