package jobs

import (
	"fmt"
	"sync"
	"testing"
)

// TestDirStorePutJobConcurrentSameID pins the atomic-write contract under
// contention: the submitter persisting a job's queued state races the runner
// persisting its running state for the same ID. With a shared tmp name one
// rename steals the other's file and the loser fails with ENOENT; every
// PutJob must succeed and the surviving manifest must be one of the written
// states, whole.
func TestDirStorePutJobConcurrentSameID(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	const rounds = 50
	var wg sync.WaitGroup
	errs := make(chan error, writers*rounds)
	for w := 0; w < writers; w++ {
		state := State(w % int(StateCancelled+1))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				m := &Manifest{ID: "job-contended", Tenant: "t", QASM: "qreg q[1];", State: state}
				if err := store.PutJob(m); err != nil {
					errs <- fmt.Errorf("writer state=%v round=%d: %w", state, r, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	ms, err := store.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].ID != "job-contended" {
		t.Fatalf("loaded %d manifests, want the single contended job", len(ms))
	}
}
