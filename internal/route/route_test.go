package route

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hsfsim/internal/circuit"
	"hsfsim/internal/gate"
	"hsfsim/internal/reorder"
	"hsfsim/internal/statevec"
)

func randomCircuit(rng *rand.Rand, n, gates int) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < gates; i++ {
		a := rng.Intn(n)
		b := (a + 1 + rng.Intn(n-1)) % n
		switch rng.Intn(4) {
		case 0:
			c.Append(gate.H(a))
		case 1:
			c.Append(gate.RX(rng.Float64(), a))
		case 2:
			c.Append(gate.CNOT(a, b))
		default:
			c.Append(gate.RZZ(rng.Float64(), a, b))
		}
	}
	return c
}

func TestLinearAlreadyAdjacent(t *testing.T) {
	c := circuit.New(4)
	c.Append(gate.H(0), gate.CNOT(0, 1), gate.CNOT(1, 2), gate.CNOT(2, 3))
	res, err := Linear(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapsInserted != 0 {
		t.Fatalf("swaps = %d, want 0", res.SwapsInserted)
	}
	if !IsLinear(res.Circuit) {
		t.Fatal("output not linear")
	}
	for q, p := range res.Final {
		if q != p {
			t.Fatal("identity mapping expected")
		}
	}
}

func TestLinearInsertsSwaps(t *testing.T) {
	c := circuit.New(5)
	c.Append(gate.CNOT(0, 4))
	res, err := Linear(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapsInserted != 3 {
		t.Fatalf("swaps = %d, want 3", res.SwapsInserted)
	}
	if !IsLinear(res.Circuit) {
		t.Fatal("output not linear")
	}
}

func TestLinearSemanticsPreserved(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		c := randomCircuit(rng, n, 10)
		res, err := Linear(c)
		if err != nil {
			return false
		}
		if !IsLinear(res.Circuit) {
			return false
		}
		want := statevec.NewState(n)
		want.ApplyAll(c.Gates)
		got := statevec.NewState(n)
		got.ApplyAll(res.Circuit.Gates)
		back := reorder.PermuteState(got, res.Final)
		return statevec.MaxAbsDiff(want, statevec.State(back)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearRejectsWideGates(t *testing.T) {
	c := circuit.New(3)
	c.Append(gate.CCX(0, 1, 2))
	if _, err := Linear(c); err == nil {
		t.Fatal("3-qubit gate accepted")
	}
}

func TestIsLinear(t *testing.T) {
	c := circuit.New(3)
	c.Append(gate.CNOT(0, 2))
	if IsLinear(c) {
		t.Fatal("non-adjacent gate not detected")
	}
	c = circuit.New(3)
	c.Append(gate.CNOT(2, 1), gate.H(0))
	if !IsLinear(c) {
		t.Fatal("adjacent circuit misreported")
	}
}
