// Package route maps circuits onto restricted qubit connectivity by
// inserting SWAP gates. Two topologies are provided: the linear chain (the
// constraint under which MPS backends and many hardware platforms operate)
// and the 2D grid of supremacy-style processors. After routing, every
// multi-qubit gate acts on coupled wires.
package route

import (
	"fmt"

	"hsfsim/internal/circuit"
	"hsfsim/internal/gate"
)

// Result is a routed circuit plus the final logical→physical wire mapping.
type Result struct {
	// Circuit acts on physical wires; all multi-qubit gates are adjacent in
	// the chosen topology.
	Circuit *circuit.Circuit
	// Final maps each logical qubit to the physical wire holding it after
	// the last gate (Final[logical] = physical). States simulated from the
	// routed circuit are un-permuted with reorder.PermuteState when the
	// wire count equals the qubit count.
	Final []int
	// SwapsInserted counts the routing overhead.
	SwapsInserted int
}

// routerState tracks the logical↔physical mapping while gates are emitted.
type routerState struct {
	pos   []int // logical -> physical
	owner []int // physical -> logical (-1: unused wire)
	out   *circuit.Circuit
	swaps int
}

func newState(c *circuit.Circuit, wires int) *routerState {
	st := &routerState{
		pos:   make([]int, c.NumQubits),
		owner: make([]int, wires),
		out:   circuit.New(wires),
	}
	for w := range st.owner {
		st.owner[w] = -1
	}
	for q := 0; q < c.NumQubits; q++ {
		st.pos[q] = q
		st.owner[q] = q
	}
	return st
}

// emit appends g remapped to physical wires.
func (st *routerState) emit(g *gate.Gate) {
	st.out.Append(g.Remap(func(q int) int { return st.pos[q] }))
}

// swapPhys exchanges the contents of two physical wires.
func (st *routerState) swapPhys(a, b int) {
	st.out.Append(gate.SWAP(a, b))
	la, lb := st.owner[a], st.owner[b]
	st.owner[a], st.owner[b] = lb, la
	if la >= 0 {
		st.pos[la] = b
	}
	if lb >= 0 {
		st.pos[lb] = a
	}
	st.swaps++
}

func (st *routerState) result(nLogical int) *Result {
	final := make([]int, nLogical)
	copy(final, st.pos[:nLogical])
	return &Result{Circuit: st.out, Final: final, SwapsInserted: st.swaps}
}

// Linear routes the circuit onto a chain: physical wire w couples only to
// w±1. Single-qubit gates relocate with their logical qubit; two-qubit
// gates bubble their first operand next to the second with SWAP chains.
// Gates on three or more qubits are rejected — transpile them first.
func Linear(c *circuit.Circuit) (*Result, error) {
	st := newState(c, c.NumQubits)
	for i := range c.Gates {
		g := &c.Gates[i]
		switch g.NumQubits() {
		case 1:
			st.emit(g)
		case 2:
			pa, pb := st.pos[g.Qubits[0]], st.pos[g.Qubits[1]]
			for pa < pb-1 {
				st.swapPhys(pa, pa+1)
				pa++
			}
			for pa > pb+1 {
				st.swapPhys(pa, pa-1)
				pa--
			}
			st.emit(g)
		default:
			return nil, fmt.Errorf("route: %d-qubit gate %q unsupported (transpile first)", g.NumQubits(), g.Name)
		}
	}
	return st.result(c.NumQubits), nil
}

// IsLinear reports whether every multi-qubit gate of c acts on adjacent
// wires — the postcondition of Linear.
func IsLinear(c *circuit.Circuit) bool {
	for i := range c.Gates {
		g := &c.Gates[i]
		if g.NumQubits() != 2 {
			continue
		}
		d := g.Qubits[0] - g.Qubits[1]
		if d != 1 && d != -1 {
			return false
		}
	}
	return true
}
