package route

import (
	"fmt"

	"hsfsim/internal/circuit"
)

// GridSpec describes a rows×cols qubit grid; wire w sits at row w/cols,
// column w%cols, and couples to its four nearest neighbours — the topology
// of the supremacy-style processors behind the grcs workload.
type GridSpec struct {
	Rows, Cols int
}

// NumWires returns the wire count.
func (g GridSpec) NumWires() int { return g.Rows * g.Cols }

// Adjacent reports whether physical wires a and b are grid neighbours.
func (g GridSpec) Adjacent(a, b int) bool {
	ra, ca := a/g.Cols, a%g.Cols
	rb, cb := b/g.Cols, b%g.Cols
	dr, dc := ra-rb, ca-cb
	if dr < 0 {
		dr = -dr
	}
	if dc < 0 {
		dc = -dc
	}
	return dr+dc == 1
}

// Grid routes the circuit onto the grid topology: two-qubit gates bubble
// their first operand along a Manhattan path (row first, then column) until
// the operands are neighbours. Gates on three or more qubits are rejected.
func Grid(c *circuit.Circuit, spec GridSpec) (*Result, error) {
	if spec.Rows <= 0 || spec.Cols <= 0 {
		return nil, fmt.Errorf("route: invalid grid %dx%d", spec.Rows, spec.Cols)
	}
	n := c.NumQubits
	if n > spec.NumWires() {
		return nil, fmt.Errorf("route: %d qubits exceed the %dx%d grid", n, spec.Rows, spec.Cols)
	}
	st := newState(c, spec.NumWires())

	for i := range c.Gates {
		g := &c.Gates[i]
		switch g.NumQubits() {
		case 1:
			st.emit(g)
		case 2:
			pa := st.pos[g.Qubits[0]]
			pb := st.pos[g.Qubits[1]]
			for !spec.Adjacent(pa, pb) && pa != pb {
				next := stepToward(spec, pa, pb)
				st.swapPhys(pa, next)
				pa = next
			}
			st.emit(g)
		default:
			return nil, fmt.Errorf("route: %d-qubit gate %q unsupported (transpile first)", g.NumQubits(), g.Name)
		}
	}
	return st.result(n), nil
}

// stepToward returns the grid neighbour of a one Manhattan step closer to b
// (row direction first).
func stepToward(spec GridSpec, a, b int) int {
	ra, ca := a/spec.Cols, a%spec.Cols
	rb, cb := b/spec.Cols, b%spec.Cols
	switch {
	case ra < rb:
		return a + spec.Cols
	case ra > rb:
		return a - spec.Cols
	case ca < cb:
		return a + 1
	default:
		return a - 1
	}
}

// IsGrid reports whether every two-qubit gate of c is grid-adjacent.
func IsGrid(c *circuit.Circuit, spec GridSpec) bool {
	for i := range c.Gates {
		g := &c.Gates[i]
		if g.NumQubits() == 2 && !spec.Adjacent(g.Qubits[0], g.Qubits[1]) {
			return false
		}
	}
	return true
}
