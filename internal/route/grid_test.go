package route

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hsfsim/internal/circuit"
	"hsfsim/internal/gate"
	"hsfsim/internal/reorder"
	"hsfsim/internal/statevec"
)

func TestGridSpecAdjacency(t *testing.T) {
	g := GridSpec{Rows: 3, Cols: 4}
	if !g.Adjacent(0, 1) || !g.Adjacent(0, 4) {
		t.Fatal("neighbours not detected")
	}
	if g.Adjacent(3, 4) { // row wrap
		t.Fatal("row wrap treated as adjacent")
	}
	if g.Adjacent(0, 5) { // diagonal
		t.Fatal("diagonal treated as adjacent")
	}
	if g.NumWires() != 12 {
		t.Fatal("wire count wrong")
	}
}

func TestGridRoutesDiagonalGate(t *testing.T) {
	c := circuit.New(9)
	c.Append(gate.CNOT(0, 8)) // opposite corners of a 3x3 grid
	res, err := Grid(c, GridSpec{Rows: 3, Cols: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapsInserted != 3 { // Manhattan distance 4 → 3 swaps
		t.Fatalf("swaps = %d, want 3", res.SwapsInserted)
	}
	if !IsGrid(res.Circuit, GridSpec{Rows: 3, Cols: 3}) {
		t.Fatal("output not grid-adjacent")
	}
}

func TestGridSemanticsPreserved(t *testing.T) {
	spec := GridSpec{Rows: 2, Cols: 3}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng, 6, 10)
		res, err := Grid(c, spec)
		if err != nil {
			return false
		}
		if !IsGrid(res.Circuit, spec) {
			return false
		}
		want := statevec.NewState(6)
		want.ApplyAll(c.Gates)
		got := statevec.NewState(6)
		got.ApplyAll(res.Circuit.Gates)
		back := reorder.PermuteState(got, res.Final)
		return statevec.MaxAbsDiff(want, statevec.State(back)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestGridValidation(t *testing.T) {
	c := circuit.New(10)
	c.Append(gate.H(0))
	if _, err := Grid(c, GridSpec{Rows: 3, Cols: 3}); err == nil {
		t.Fatal("oversubscribed grid accepted")
	}
	if _, err := Grid(c, GridSpec{}); err == nil {
		t.Fatal("empty grid accepted")
	}
	c3 := circuit.New(3)
	c3.Append(gate.CCX(0, 1, 2))
	if _, err := Grid(c3, GridSpec{Rows: 2, Cols: 2}); err == nil {
		t.Fatal("3-qubit gate accepted")
	}
}

func TestGridFewerQubitsThanWires(t *testing.T) {
	// 2 logical qubits on a 2x2 grid: routing works and the result wire
	// count is the grid size.
	c := circuit.New(2)
	c.Append(gate.H(0), gate.CNOT(0, 1))
	res, err := Grid(c, GridSpec{Rows: 2, Cols: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Circuit.NumQubits != 4 {
		t.Fatalf("routed circuit on %d wires, want 4", res.Circuit.NumQubits)
	}
	if len(res.Final) != 2 {
		t.Fatalf("Final length %d, want 2", len(res.Final))
	}
}
