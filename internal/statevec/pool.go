package statevec

import "math"

// Pool is a size-keyed free list of statevector buffers in SoA layout. The
// HSF path walker forks and releases one (lower, upper) vector pair per
// path-tree node, so a per-worker Pool turns the O(paths) large allocations
// of naive cloning into a handful of buffers reused for the whole run (live
// count = tree depth).
//
// A Pool is not safe for concurrent use; each worker goroutine owns its own.
type Pool struct {
	// Poison, when set, fills every released buffer with NaN. A stale-read
	// bug (using a vector after release, or trusting pool contents before
	// initialization) then corrupts results loudly instead of silently;
	// tests enable it as a canary.
	Poison bool

	free map[int][]Vector

	gets, reuses int
}

// NewPool returns an empty pool.
func NewPool() *Pool {
	return &Pool{free: make(map[int][]Vector)}
}

// Get returns a vector of exactly n amplitudes with unspecified contents,
// reusing a released buffer of the same size when one is available.
func (p *Pool) Get(n int) Vector {
	p.gets++
	if list := p.free[n]; len(list) > 0 {
		v := list[len(list)-1]
		p.free[n] = list[:len(list)-1]
		p.reuses++
		return v
	}
	return MakeVector(n)
}

// GetZero returns the basis state |0...0> in an n-amplitude vector.
func (p *Pool) GetZero(n int) Vector {
	v := p.Get(n)
	v.SetBasis()
	return v
}

// Put releases a vector back to the pool. The caller must not use v
// afterwards. Releasing the zero Vector is a no-op.
func (p *Pool) Put(v Vector) {
	if v.Re == nil {
		return
	}
	if p.Poison {
		nan := math.NaN()
		for i := range v.Re {
			v.Re[i] = nan
			v.Im[i] = nan
		}
	}
	p.free[v.Len()] = append(p.free[v.Len()], v)
}

// Stats reports how many Get calls the pool served and how many of those
// reused a released buffer. Steady-state walker execution has
// reuses == gets - (live-state high-water mark).
func (p *Pool) Stats() (gets, reuses int) { return p.gets, p.reuses }
