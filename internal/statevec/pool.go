package statevec

import "math"

// Pool is a size-keyed free list of statevector buffers. The HSF path walker
// forks and releases one (lower, upper) state pair per path-tree node, so a
// per-worker Pool turns the O(paths) large allocations of naive cloning into
// a handful of buffers reused for the whole run (live count = tree depth).
//
// A Pool is not safe for concurrent use; each worker goroutine owns its own.
type Pool struct {
	// Poison, when set, fills every released buffer with NaN. A stale-read
	// bug (using a state after release, or trusting pool contents before
	// initialization) then corrupts results loudly instead of silently;
	// tests enable it as a canary.
	Poison bool

	free map[int][]State

	gets, reuses int
}

// NewPool returns an empty pool.
func NewPool() *Pool {
	return &Pool{free: make(map[int][]State)}
}

// Get returns a buffer of exactly n amplitudes with unspecified contents,
// reusing a released buffer of the same size when one is available.
func (p *Pool) Get(n int) State {
	p.gets++
	if list := p.free[n]; len(list) > 0 {
		s := list[len(list)-1]
		p.free[n] = list[:len(list)-1]
		p.reuses++
		return s
	}
	return make(State, n)
}

// GetZero returns the basis state |0...0> in an n-amplitude buffer.
func (p *Pool) GetZero(n int) State {
	s := p.Get(n)
	clear(s)
	s[0] = 1
	return s
}

// Put releases a buffer back to the pool. The caller must not use s
// afterwards. Releasing nil is a no-op.
func (p *Pool) Put(s State) {
	if s == nil {
		return
	}
	if p.Poison {
		canary := complex(math.NaN(), math.NaN())
		for i := range s {
			s[i] = canary
		}
	}
	p.free[len(s)] = append(p.free[len(s)], s)
}

// Stats reports how many Get calls the pool served and how many of those
// reused a released buffer. Steady-state walker execution has
// reuses == gets - (live-state high-water mark).
func (p *Pool) Stats() (gets, reuses int) { return p.gets, p.reuses }
