//go:build !purego

package statevec

import "unsafe"

// Default arm: the unrolled span primitives plus 64-byte aligned plane
// allocation, so the contiguous runs the kernels hand to the table start on
// cache-line (and future AVX-512 register) boundaries.

// nativeSpanMin is the run length at which span dispatch beats the inlined
// scalar loop: below it, the call through the function pointer costs more
// than the unrolling saves.
const nativeSpanMin = 8

func init() {
	ops = kernelOps{
		name:    "span",
		spanMin: nativeSpanMin,
		scale:   spanScale,
		rot2x2:  spanRot2x2,
		swap:    spanSwap,
		cross:   spanCross,
		axpy:    spanAxpy,
		rot4x4:  scalarRot4x4,
	}
}

// alignedFloats returns a zeroed n-element slice whose first element sits on
// a 64-byte boundary. It over-allocates by one cache line and re-slices; the
// returned slice points into the padded array, which keeps it live.
func alignedFloats(n int) []float64 {
	if n == 0 {
		return []float64{}
	}
	const line = 64
	buf := make([]float64, n+line/8)
	addr := uintptr(unsafe.Pointer(unsafe.SliceData(buf)))
	off := 0
	if rem := addr % line; rem != 0 {
		off = int((line - rem) / 8)
	}
	return buf[off : off+n : off+n]
}
