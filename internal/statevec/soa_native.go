//go:build !purego

package statevec

import "unsafe"

// Default build: candidate arms are the architecture's assembly arm (when
// the CPU feature probe admits it — see soa_amd64.go / soa_arm64.go), the
// unrolled-Go span arm, and the scalar reference arm, best-first. Plane
// allocation is 64-byte aligned so the contiguous runs the kernels hand to
// the table start on cache-line (and full-register) boundaries.

// nativeSpanMin is the run length at which span dispatch beats the inlined
// scalar loop: below it, the call through the function pointer costs more
// than the unrolling saves.
const nativeSpanMin = 8

func buildArms() []kernelOps {
	return append(archArms(), spanArm(), scalarArm())
}

// spanArm is the portable unrolled-Go arm: the fallback when the CPU lacks
// the assembly arm's extensions, and the baseline the per-arm benchmarks
// compare the assembly against.
func spanArm() kernelOps {
	return kernelOps{
		name:    "span",
		spanMin: nativeSpanMin,
		scale:   spanScale,
		rot2x2:  spanRot2x2,
		swap:    spanSwap,
		cross:   spanCross,
		axpy:    spanAxpy,
		rot4x4:  spanRot4x4,
	}
}

// alignedFloats returns a zeroed n-element slice whose first element sits on
// a 64-byte boundary. It over-allocates by one cache line and re-slices; the
// returned slice points into the padded array, which keeps it live.
func alignedFloats(n int) []float64 {
	if n == 0 {
		return []float64{}
	}
	const line = 64
	buf := make([]float64, n+line/8)
	addr := uintptr(unsafe.Pointer(unsafe.SliceData(buf)))
	off := 0
	if rem := addr % line; rem != 0 {
		off = int((line - rem) / 8)
	}
	return buf[off : off+n : off+n]
}
