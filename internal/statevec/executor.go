package statevec

import (
	"runtime"
	"sync"
)

// The persistent executor replaces per-gate goroutine spawning: GOMAXPROCS
// worker goroutines are started once (on the first large parallel kernel)
// and fed chunk spans over an unbuffered channel. Submission is non-blocking
// — if no executor worker is free the caller runs the chunk inline — so a
// saturated process degrades to sequential execution instead of queueing or
// oversubscribing, and the executor can never deadlock its callers.

// span is one contiguous chunk of a parallel kernel invocation.
type span struct {
	fn     func(lo, hi int)
	lo, hi int
	wg     *sync.WaitGroup
}

var (
	execOnce sync.Once
	execCh   chan span
)

// executor returns the shared chunk channel, starting the worker goroutines
// on first use.
func executor() chan span {
	execOnce.Do(func() {
		execCh = make(chan span)
		for i := 0; i < runtime.GOMAXPROCS(0); i++ {
			go func() {
				for t := range execCh {
					t.fn(t.lo, t.hi)
					t.wg.Done()
				}
			}()
		}
	})
	return execCh
}
