//go:build !purego

package statevec

import "hsfsim/internal/cpufeat"

// AVX2+FMA arm. The assembly bodies (soa_amd64.s; generator under asm/)
// process 4 float64 lanes per YMM register with unaligned loads — plane
// allocation is 64-byte aligned but spans start at arbitrary gate-offset
// positions, so the bodies assume nothing. Each wrapper below picks the
// real-coefficient entry point when the imaginary parts are exactly zero
// (Hadamard, CZ's −1, X-basis rotations: half the arithmetic, same result),
// hands the largest 4-lane-divisible head to the assembly, and finishes the
// sub-register tail (≤3 elements) with the inline scalar epilogue. The
// assembly uses FMA contractions, so results can differ from the span/scalar
// arms in the last ulp — the parity suites compare at 1e-12, not bitwise.

// avx2SpanMin is the run length at which dispatching into the assembly beats
// the inlined scalar loop. One YMM iteration covers 4 lanes with no tail, and
// the callers' scalar fallback recomputes the strided index per element while
// the span path computes it once per run — so the assembly arm profitably
// dispatches runs half as short as the Go span arm (low-qubit controlled and
// permutation gates spend most of their time in exactly these length-4 runs).
const avx2SpanMin = 4

// archArms returns the amd64 assembly candidates, best-first. The AVX2 arm
// needs AVX2 and FMA3, OS-enabled (see internal/cpufeat).
func archArms() []kernelOps {
	if !cpufeat.X86.HasAVX2 || !cpufeat.X86.HasFMA {
		return nil
	}
	return []kernelOps{{
		name:    "avx2",
		spanMin: avx2SpanMin,
		scale:   avx2Scale,
		rot2x2:  avx2Rot2x2,
		swap:    avx2Swap,
		cross:   avx2Cross,
		axpy:    avx2Axpy,
		rot4x4:  avx2Rot4x4,
		rot1lo:  avx2Rot1Lo,
		diag1lo: avx2Diag1Lo,
	}}
}

//go:noescape
func avx2ScaleRe(xr, xi *float64, n int, cr float64)

//go:noescape
func avx2ScaleCx(xr, xi *float64, n int, cr, ci float64)

//go:noescape
func avx2SwapN(xr, xi, yr, yi *float64, n int)

//go:noescape
func avx2CrossRe(xr, xi, yr, yi *float64, n int, br, cr float64)

//go:noescape
func avx2CrossCx(xr, xi, yr, yi *float64, n int, br, bi, cr, ci float64)

//go:noescape
func avx2AxpyRe(dstRe, dstIm, srcRe, srcIm *float64, n int, cr float64)

//go:noescape
func avx2AxpyCx(dstRe, dstIm, srcRe, srcIm *float64, n int, cr, ci float64)

//go:noescape
func avx2Rot2x2Re(xr, xi, yr, yi *float64, n int, ar, br, cr, dr float64)

//go:noescape
func avx2Rot2x2Cx(xr, xi, yr, yi *float64, n int, ar, ai, br, bi, cr, ci, dr, di float64)

//go:noescape
func avx2Rot4x4N(x0r, x0i, x1r, x1i, x2r, x2i, x3r, x3i *float64, n int, m *complex128)

//go:noescape
func avx2Rot1LoQ0Re(p *float64, n int, ar, br, cr, dr float64)

//go:noescape
func avx2Rot1LoQ1Re(p *float64, n int, ar, br, cr, dr float64)

//go:noescape
func avx2Rot1LoQ0Cx(re, im *float64, n int, ar, ai, br, bi, cr, ci, dr, di float64)

//go:noescape
func avx2Rot1LoQ1Cx(re, im *float64, n int, ar, ai, br, bi, cr, ci, dr, di float64)

//go:noescape
func avx2Diag1LoQ0(re, im *float64, n int, ar, ai, dr, di float64)

//go:noescape
func avx2Diag1LoQ1(re, im *float64, n int, ar, ai, dr, di float64)

func avx2Scale(xr, xi []float64, cr, ci float64) {
	n := len(xr)
	xi = xi[:n]
	h := n &^ 3
	if h > 0 {
		if ci == 0 {
			avx2ScaleRe(&xr[0], &xi[0], h, cr)
		} else {
			avx2ScaleCx(&xr[0], &xi[0], h, cr, ci)
		}
	}
	for i := h; i < n; i++ {
		r, m := xr[i], xi[i]
		xr[i] = cr*r - ci*m
		xi[i] = cr*m + ci*r
	}
}

func avx2Swap(xr, xi, yr, yi []float64) {
	n := len(xr)
	xi, yr, yi = xi[:n], yr[:n], yi[:n]
	h := n &^ 3
	if h > 0 {
		avx2SwapN(&xr[0], &xi[0], &yr[0], &yi[0], h)
	}
	for i := h; i < n; i++ {
		xr[i], yr[i] = yr[i], xr[i]
		xi[i], yi[i] = yi[i], xi[i]
	}
}

func avx2Cross(xr, xi, yr, yi []float64, br, bi, cr, ci float64) {
	n := len(xr)
	xi, yr, yi = xi[:n], yr[:n], yi[:n]
	h := n &^ 3
	if h > 0 {
		if bi == 0 && ci == 0 {
			avx2CrossRe(&xr[0], &xi[0], &yr[0], &yi[0], h, br, cr)
		} else {
			avx2CrossCx(&xr[0], &xi[0], &yr[0], &yi[0], h, br, bi, cr, ci)
		}
	}
	for i := h; i < n; i++ {
		x, xm := xr[i], xi[i]
		y, ym := yr[i], yi[i]
		xr[i] = br*y - bi*ym
		xi[i] = br*ym + bi*y
		yr[i] = cr*x - ci*xm
		yi[i] = cr*xm + ci*x
	}
}

func avx2Axpy(dstRe, dstIm, srcRe, srcIm []float64, cr, ci float64) {
	n := len(dstRe)
	dstIm, srcRe, srcIm = dstIm[:n], srcRe[:n], srcIm[:n]
	h := n &^ 3
	if h > 0 {
		if ci == 0 {
			avx2AxpyRe(&dstRe[0], &dstIm[0], &srcRe[0], &srcIm[0], h, cr)
		} else {
			avx2AxpyCx(&dstRe[0], &dstIm[0], &srcRe[0], &srcIm[0], h, cr, ci)
		}
	}
	for i := h; i < n; i++ {
		s, t := srcRe[i], srcIm[i]
		dstRe[i] += cr*s - ci*t
		dstIm[i] += cr*t + ci*s
	}
}

func avx2Rot2x2(xr, xi, yr, yi []float64, ar, ai, br, bi, cr, ci, dr, di float64) {
	n := len(xr)
	xi, yr, yi = xi[:n], yr[:n], yi[:n]
	h := n &^ 3
	if h > 0 {
		if ai == 0 && bi == 0 && ci == 0 && di == 0 {
			avx2Rot2x2Re(&xr[0], &xi[0], &yr[0], &yi[0], h, ar, br, cr, dr)
		} else {
			avx2Rot2x2Cx(&xr[0], &xi[0], &yr[0], &yi[0], h, ar, ai, br, bi, cr, ci, dr, di)
		}
	}
	for i := h; i < n; i++ {
		x, xm := xr[i], xi[i]
		y, ym := yr[i], yi[i]
		xr[i] = ar*x - ai*xm + br*y - bi*ym
		xi[i] = ar*xm + ai*x + br*ym + bi*y
		yr[i] = cr*x - ci*xm + dr*y - di*ym
		yi[i] = cr*xm + ci*x + dr*ym + di*y
	}
}

// avx2Rot1Lo vectorizes the dense 1q rotation on qubits 0 and 1 — runs too
// short for the span path — over the half-block pairs [lo,hi). The assembly
// processes 8 float64 per plane per iteration (4 amplitude pairs), so the
// wrapper aligns lo to a 4-element group for q=1 (parallelRange may split at
// an odd pair) and peels the <4-pair tail with the scalar pair body.
func avx2Rot1Lo(re, im []float64, q, lo, hi int, ar, ai, br, bi, cr, ci, dr, di float64) {
	if q == 1 && lo&1 != 0 && lo < hi {
		rot1Pair(re, im, q, lo, ar, ai, br, bi, cr, ci, dr, di)
		lo++
	}
	f0 := lo << 1
	h := ((hi - lo) << 1) &^ 7
	if h > 0 {
		if ai == 0 && bi == 0 && ci == 0 && di == 0 {
			if q == 0 {
				avx2Rot1LoQ0Re(&re[f0], h, ar, br, cr, dr)
				avx2Rot1LoQ0Re(&im[f0], h, ar, br, cr, dr)
			} else {
				avx2Rot1LoQ1Re(&re[f0], h, ar, br, cr, dr)
				avx2Rot1LoQ1Re(&im[f0], h, ar, br, cr, dr)
			}
		} else {
			if q == 0 {
				avx2Rot1LoQ0Cx(&re[f0], &im[f0], h, ar, ai, br, bi, cr, ci, dr, di)
			} else {
				avx2Rot1LoQ1Cx(&re[f0], &im[f0], h, ar, ai, br, bi, cr, ci, dr, di)
			}
		}
	}
	for o := lo + h>>1; o < hi; o++ {
		rot1Pair(re, im, q, o, ar, ai, br, bi, cr, ci, dr, di)
	}
}

// avx2Diag1Lo is the diag(a, d) analogue of avx2Rot1Lo (phase1 reuses it
// with a = 1).
func avx2Diag1Lo(re, im []float64, q, lo, hi int, ar, ai, dr, di float64) {
	if q == 1 && lo&1 != 0 && lo < hi {
		diag1Pair(re, im, q, lo, ar, ai, dr, di)
		lo++
	}
	f0 := lo << 1
	h := ((hi - lo) << 1) &^ 7
	if h > 0 {
		if q == 0 {
			avx2Diag1LoQ0(&re[f0], &im[f0], h, ar, ai, dr, di)
		} else {
			avx2Diag1LoQ1(&re[f0], &im[f0], h, ar, ai, dr, di)
		}
	}
	for o := lo + h>>1; o < hi; o++ {
		diag1Pair(re, im, q, o, ar, ai, dr, di)
	}
}

func avx2Rot4x4(x0r, x0i, x1r, x1i, x2r, x2i, x3r, x3i []float64, m []complex128) {
	n := len(x0r)
	x0i, x1r, x1i = x0i[:n], x1r[:n], x1i[:n]
	x2r, x2i, x3r, x3i = x2r[:n], x2i[:n], x3r[:n], x3i[:n]
	h := n &^ 3
	if h > 0 {
		avx2Rot4x4N(&x0r[0], &x0i[0], &x1r[0], &x1i[0], &x2r[0], &x2i[0], &x3r[0], &x3i[0], h, &m[0])
	}
	if h == n {
		return
	}
	scalarRot4x4(x0r[h:], x0i[h:], x1r[h:], x1i[h:], x2r[h:], x2i[h:], x3r[h:], x3i[h:], m)
}
