package statevec

import (
	"runtime"
	"sort"
	"sync"
	"testing"

	"hsfsim/internal/par"
)

// withProcs runs fn with GOMAXPROCS pinned to n. The process runs with
// whatever core count CI gives it, so budget behavior is tested against an
// explicit value rather than the machine's.
func withProcs(t *testing.T, n int, fn func()) {
	t.Helper()
	old := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(old)
	fn()
}

// TestParallelRangeSequentialWhenBudgetSaturated is the degradation
// guarantee: once coarse-grained workers have reserved every core,
// parallelRange makes exactly one inline call — no chunking, no executor
// handoff, no goroutines.
func TestParallelRangeSequentialWhenBudgetSaturated(t *testing.T) {
	withProcs(t, 4, func() {
		release := par.Reserve(4)
		defer release()
		n := 4 * parallelThreshold
		var mu sync.Mutex
		var calls [][2]int
		parallelRange(n, func(lo, hi int) {
			mu.Lock()
			calls = append(calls, [2]int{lo, hi})
			mu.Unlock()
		})
		if len(calls) != 1 || calls[0] != [2]int{0, n} {
			t.Fatalf("calls = %v, want exactly [[0 %d]]", calls, n)
		}
		if !sequential(n) {
			t.Fatal("sequential(n) = false with a saturated budget")
		}
	})
}

// TestParallelRangeChunksWithinBudget checks the complementary case: with
// budget available, a large range is split into par.Inner() contiguous
// chunks that exactly tile [0, n).
func TestParallelRangeChunksWithinBudget(t *testing.T) {
	withProcs(t, 4, func() {
		if got := par.Inner(); got != 4 {
			t.Fatalf("Inner() = %d with nothing reserved, want 4", got)
		}
		n := 4 * parallelThreshold
		var mu sync.Mutex
		var calls [][2]int
		parallelRange(n, func(lo, hi int) {
			mu.Lock()
			calls = append(calls, [2]int{lo, hi})
			mu.Unlock()
		})
		if len(calls) != 4 {
			t.Fatalf("got %d chunks, want 4: %v", len(calls), calls)
		}
		sort.Slice(calls, func(i, j int) bool { return calls[i][0] < calls[j][0] })
		next := 0
		for _, c := range calls {
			if c[0] != next {
				t.Fatalf("chunks do not tile [0,%d): %v", n, calls)
			}
			next = c[1]
		}
		if next != n {
			t.Fatalf("chunks cover [0,%d), want [0,%d)", next, n)
		}
	})
}

// TestSequentialCutoff pins the size cutoff at the dispatch gate: every
// kernel branches on sequential(n) before reaching parallelRange (which no
// longer re-checks), so domains below parallelThreshold never pay handoff
// overhead regardless of budget.
func TestSequentialCutoff(t *testing.T) {
	withProcs(t, 4, func() {
		if !sequential(parallelThreshold - 1) {
			t.Fatal("sequential(parallelThreshold-1) = false; small kernels would enter parallelRange")
		}
		if sequential(parallelThreshold) {
			t.Fatal("sequential(parallelThreshold) = true with an unreserved budget")
		}
	})
}

// TestPartialReservationShrinksChunks checks proportional degradation:
// reserving 3 of 4 cores leaves Inner() = 1, which also forces the inline
// path.
func TestPartialReservationShrinksChunks(t *testing.T) {
	withProcs(t, 4, func() {
		release := par.Reserve(3)
		defer release()
		if got := par.Inner(); got != 1 {
			t.Fatalf("Inner() = %d with 3 of 4 reserved, want 1", got)
		}
		var calls int
		parallelRange(4*parallelThreshold, func(lo, hi int) { calls++ })
		if calls != 1 {
			t.Fatalf("calls = %d, want 1 inline call", calls)
		}
	})
}
