// Package statevec implements Schrödinger-style statevector simulation: the
// full 2^n amplitude array with in-place k-qubit gate application. It is the
// kernel shared by the Schrödinger baseline and the per-path subcircuit
// simulations of the HSF engine, mirroring the role qsim plays in the paper.
//
// The canonical amplitude layout is Vector — split real/imag float64 planes
// (SoA) driven by the startup-selected span kernels in soa.go — while State
// ([]complex128, AoS) remains as the boundary representation and reference
// implementation. See DESIGN.md § "Amplitude layout".
package statevec

import (
	"fmt"
	"math"
	"math/cmplx"
)

// State is a quantum statevector with 2^n amplitudes for an n-qubit register.
// Amplitude index bit k is the value of qubit k (qubit 0 least significant).
//
// State is the interleaved-complex (AoS) compatibility representation: the
// execution engine stores amplitudes as split real/imag planes (Vector) and
// only converts at public boundaries (FromComplex/Vector.ToComplex). Direct
// indexing of a State is deprecated outside those edges and the parity
// oracles — new hot-path code should operate on Vector so it reaches the
// span kernel dispatch; use Vector.Amplitude/SetAmplitude for point access.
type State []complex128

// NewState returns the all-zeros computational basis state |0...0> on n
// qubits.
func NewState(n int) State {
	if n < 0 || n > 62 {
		panic(fmt.Sprintf("statevec: invalid qubit count %d", n))
	}
	s := make(State, 1<<n)
	s[0] = 1
	return s
}

// NumQubits returns n for a state of length 2^n.
func (s State) NumQubits() int {
	n := 0
	for 1<<n < len(s) {
		n++
	}
	return n
}

// Clone returns a copy of the state.
func (s State) Clone() State {
	c := make(State, len(s))
	copy(c, s)
	return c
}

// Norm returns the 2-norm of the state (1 for a normalized state).
func (s State) Norm() float64 {
	var sum float64
	for _, a := range s {
		sum += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(sum)
}

// Probability returns |s[i]|².
func (s State) Probability(i int) float64 {
	a := s[i]
	return real(a)*real(a) + imag(a)*imag(a)
}

// Fidelity returns |<s|t>|² for two states of equal dimension.
func Fidelity(s, t State) float64 {
	if len(s) != len(t) {
		panic("statevec: Fidelity dimension mismatch")
	}
	var dot complex128
	for i := range s {
		dot += cmplx.Conj(s[i]) * t[i]
	}
	return real(dot)*real(dot) + imag(dot)*imag(dot)
}

// MaxAbsDiff returns max_i |s[i]-t[i]|.
func MaxAbsDiff(s, t State) float64 {
	if len(s) != len(t) {
		panic("statevec: MaxAbsDiff dimension mismatch")
	}
	var d float64
	for i := range s {
		if e := cmplx.Abs(s[i] - t[i]); e > d {
			d = e
		}
	}
	return d
}

// Kron returns the tensor product upper ⊗ lower: the resulting amplitude at
// index (a<<nLower | b) is upper[a]*lower[b]. This is the HSF reconstruction
// primitive (paper Sec. II-B).
func Kron(upper, lower State) State {
	out := make(State, len(upper)*len(lower))
	i := 0
	for _, ua := range upper {
		if ua == 0 {
			i += len(lower)
			continue
		}
		for _, lb := range lower {
			out[i] = ua * lb
			i++
		}
	}
	return out
}

// EqualUpToGlobalPhase reports whether s = e^{iφ}·t for some φ, within tol.
func EqualUpToGlobalPhase(s, t State, tol float64) bool {
	if len(s) != len(t) {
		return false
	}
	// Find the largest amplitude of s to fix the phase.
	best := 0
	bestAbs := 0.0
	for i := range s {
		if a := cmplx.Abs(s[i]); a > bestAbs {
			bestAbs = a
			best = i
		}
	}
	if bestAbs < tol {
		return MaxAbsDiff(s, t) < tol
	}
	if cmplx.Abs(t[best]) < tol {
		return false
	}
	phase := s[best] / t[best]
	phase /= complex(cmplx.Abs(phase), 0)
	for i := range s {
		if cmplx.Abs(s[i]-phase*t[i]) > tol {
			return false
		}
	}
	return true
}
