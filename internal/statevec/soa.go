package statevec

// The SoA kernel seam. Every Vector gate kernel lowers its inner loop onto a
// small set of span primitives — stride-1 operations over contiguous runs of
// the split real/imag planes — dispatched through a package-level table
// selected once at startup:
//
//   - default builds install the best available arm (soa_dispatch.go):
//     Go-assembly vector bodies — AVX2+FMA on amd64 (soa_amd64.s), NEON on
//     arm64 (soa_arm64.s) — when the CPU feature probe admits them, else the
//     unrolled-Go span arm (this file); kernels take the span path whenever
//     a gate's contiguous run length reaches ops.spanMin;
//   - `-tags purego` builds install the plain scalar arm (soa_purego.go) with
//     spanMin=0, so every kernel runs its scalar fallback loop — the
//     reference semantics, and the portability floor for exotic targets.
//
// The HSFSIM_KERNEL_ISA environment variable (or SelectKernelISA) forces a
// weaker arm; see soa_dispatch.go. The primitives are chosen so each maps to
// one obvious vertical SIMD loop: no lane shuffles, no horizontal
// reductions.

// kernelOps is the startup-selected table of span primitives. All spans
// passed to these functions are equal-length and non-aliasing (x and y spans
// of one call never overlap; re/im planes are distinct arrays by
// construction).
type kernelOps struct {
	// name identifies the installed arm (KernelISA reports it).
	name string

	// spanMin is the minimum contiguous run length at which kernels prefer
	// the span path over their scalar loop. Zero disables span dispatch.
	spanMin int

	// scale: x *= c, elementwise over the span.
	scale func(xr, xi []float64, cr, ci float64)

	// rot2x2: (x, y) ← (a·x + b·y, c·x + d·y) — the 1q dense matvec over a
	// pair of spans.
	rot2x2 func(xr, xi, yr, yi []float64, ar, ai, br, bi, cr, ci, dr, di float64)

	// swap: x ↔ y with no arithmetic (X gate, permutation transpositions).
	swap func(xr, xi, yr, yi []float64)

	// cross: (x, y) ← (b·y, c·x) — a phased transposition (Y gate, ISWAP).
	cross func(xr, xi, yr, yi []float64, br, bi, cr, ci float64)

	// axpy: dst += c·src — the HSF leaf accumulate primitive.
	axpy func(dstRe, dstIm, srcRe, srcIm []float64, cr, ci float64)

	// rot4x4: the 2q dense matvec over four spans; m is the row-major 4×4
	// complex matrix.
	rot4x4 func(x0r, x0i, x1r, x1i, x2r, x2i, x3r, x3i []float64, m []complex128)

	// rot1lo and diag1lo are optional interleaved-pair kernels for 1q gates
	// on qubits 0 and 1, whose runs (length 1 and 2) never reach spanMin.
	// The assembly arms vectorize them with in-register shuffles — a trick
	// the span primitives above cannot express — over the half-block pairs
	// [lo,hi) of rot1/diag1. Nil on arms without them; callers must check.
	rot1lo  func(re, im []float64, q, lo, hi int, ar, ai, br, bi, cr, ci, dr, di float64)
	diag1lo func(re, im []float64, q, lo, hi int, ar, ai, dr, di float64)
}

// ops is the installed primitive table. soa_dispatch.go assigns it in init
// from the build's candidate arms; there is no default, so forgetting an arm
// is an immediate nil dereference in every test.
var ops kernelOps

// KernelISA reports which kernel arm this process is running: "avx2" or
// "neon" when the assembly arm is live, "span" for the unrolled-Go fallback,
// "scalar" under -tags purego or a forced override. Telemetry and the bench
// studies record it so artifacts say which arm produced them.
func KernelISA() string { return ops.name }

// scalarArm is the reference arm: plain one-element loops, span dispatch
// disabled. Always last in the candidate list, always available.
func scalarArm() kernelOps {
	return kernelOps{
		name:    "scalar",
		spanMin: 0,
		scale:   scalarScale,
		rot2x2:  scalarRot2x2,
		swap:    scalarSwap,
		cross:   scalarCross,
		axpy:    scalarAxpy,
		rot4x4:  scalarRot4x4,
	}
}

// --- scalar arm -------------------------------------------------------------
//
// Straight one-element-at-a-time loops: the reference semantics every span
// implementation must reproduce (same per-element operation order, up to
// exactly-zero terms the span arm's real-coefficient branches drop), and the
// bodies the purego build runs everywhere.

func scalarScale(xr, xi []float64, cr, ci float64) {
	xi = xi[:len(xr)]
	for i := range xr {
		r, m := xr[i], xi[i]
		xr[i] = cr*r - ci*m
		xi[i] = cr*m + ci*r
	}
}

func scalarRot2x2(xr, xi, yr, yi []float64, ar, ai, br, bi, cr, ci, dr, di float64) {
	n := len(xr)
	xi, yr, yi = xi[:n], yr[:n], yi[:n]
	for i := range xr {
		x, xm := xr[i], xi[i]
		y, ym := yr[i], yi[i]
		xr[i] = ar*x - ai*xm + br*y - bi*ym
		xi[i] = ar*xm + ai*x + br*ym + bi*y
		yr[i] = cr*x - ci*xm + dr*y - di*ym
		yi[i] = cr*xm + ci*x + dr*ym + di*y
	}
}

// rot1Pair applies the dense 1q rotation to the single half-block pair o for
// qubit q: the per-pair body of rot1's scalar loop, shared by the assembly
// arms' rot1lo wrappers for their unaligned head and sub-register tail pairs.
func rot1Pair(re, im []float64, q, o int, ar, ai, br, bi, cr, ci, dr, di float64) {
	mask := 1 << q
	i0 := (o>>q)<<(q+1) | (o & (mask - 1))
	i1 := i0 | mask
	x, xm := re[i0], im[i0]
	y, ym := re[i1], im[i1]
	re[i0] = ar*x - ai*xm + br*y - bi*ym
	im[i0] = ar*xm + ai*x + br*ym + bi*y
	re[i1] = cr*x - ci*xm + dr*y - di*ym
	im[i1] = cr*xm + ci*x + dr*ym + di*y
}

// diag1Pair is the per-pair body of diag1's scalar loop, same role as
// rot1Pair for the diag1lo wrappers.
func diag1Pair(re, im []float64, q, o int, ar, ai, dr, di float64) {
	mask := 1 << q
	i0 := (o>>q)<<(q+1) | (o & (mask - 1))
	i1 := i0 | mask
	r, m := re[i0], im[i0]
	re[i0] = ar*r - ai*m
	im[i0] = ar*m + ai*r
	r, m = re[i1], im[i1]
	re[i1] = dr*r - di*m
	im[i1] = dr*m + di*r
}

func scalarSwap(xr, xi, yr, yi []float64) {
	n := len(xr)
	xi, yr, yi = xi[:n], yr[:n], yi[:n]
	for i := range xr {
		xr[i], yr[i] = yr[i], xr[i]
		xi[i], yi[i] = yi[i], xi[i]
	}
}

func scalarCross(xr, xi, yr, yi []float64, br, bi, cr, ci float64) {
	n := len(xr)
	xi, yr, yi = xi[:n], yr[:n], yi[:n]
	for i := range xr {
		x, xm := xr[i], xi[i]
		y, ym := yr[i], yi[i]
		xr[i] = br*y - bi*ym
		xi[i] = br*ym + bi*y
		yr[i] = cr*x - ci*xm
		yi[i] = cr*xm + ci*x
	}
}

func scalarAxpy(dstRe, dstIm, srcRe, srcIm []float64, cr, ci float64) {
	n := len(dstRe)
	dstIm, srcRe, srcIm = dstIm[:n], srcRe[:n], srcIm[:n]
	for i := range dstRe {
		sr, si := srcRe[i], srcIm[i]
		dstRe[i] += cr*sr - ci*si
		dstIm[i] += cr*si + ci*sr
	}
}

func scalarRot4x4(x0r, x0i, x1r, x1i, x2r, x2i, x3r, x3i []float64, m []complex128) {
	n := len(x0r)
	x0i, x1r, x1i = x0i[:n], x1r[:n], x1i[:n]
	x2r, x2i, x3r, x3i = x2r[:n], x2i[:n], x3r[:n], x3i[:n]
	for i := 0; i < n; i++ {
		a0 := complex(x0r[i], x0i[i])
		a1 := complex(x1r[i], x1i[i])
		a2 := complex(x2r[i], x2i[i])
		a3 := complex(x3r[i], x3i[i])
		b0 := m[0]*a0 + m[1]*a1 + m[2]*a2 + m[3]*a3
		b1 := m[4]*a0 + m[5]*a1 + m[6]*a2 + m[7]*a3
		b2 := m[8]*a0 + m[9]*a1 + m[10]*a2 + m[11]*a3
		b3 := m[12]*a0 + m[13]*a1 + m[14]*a2 + m[15]*a3
		x0r[i], x0i[i] = real(b0), imag(b0)
		x1r[i], x1i[i] = real(b1), imag(b1)
		x2r[i], x2i[i] = real(b2), imag(b2)
		x3r[i], x3i[i] = real(b3), imag(b3)
	}
}

// --- span arm ---------------------------------------------------------------
//
// Manually 4-wide unrolled bodies over bounds-check-eliminated windows. gc
// does not auto-vectorize, so the wins here are real but bounded: independent
// FMA chains per unrolled lane, no complex128 shuffle traffic, pure stride-1
// loads on both planes. These bodies are also the shape the future assembly
// kernels replace — same signature, same span contract.
//
// Each body starts with a coefficient-shape check: purely real coefficients
// (Hadamard and every X-basis rotation, CZ's −1, real controlled blocks)
// drop the cross-plane terms and halve the arithmetic. The check runs once
// per span, and the dropped terms are exact zeros, so results agree with the
// scalar arm to the sign of zero.

func spanScale(xr, xi []float64, cr, ci float64) {
	n := len(xr)
	xi = xi[:n]
	i := 0
	if ci == 0 {
		if cr == -1 {
			for ; i+4 <= n; i += 4 {
				xr[i], xi[i] = -xr[i], -xi[i]
				xr[i+1], xi[i+1] = -xr[i+1], -xi[i+1]
				xr[i+2], xi[i+2] = -xr[i+2], -xi[i+2]
				xr[i+3], xi[i+3] = -xr[i+3], -xi[i+3]
			}
			for ; i < n; i++ {
				xr[i], xi[i] = -xr[i], -xi[i]
			}
			return
		}
		for ; i+4 <= n; i += 4 {
			xr[i] *= cr
			xi[i] *= cr
			xr[i+1] *= cr
			xi[i+1] *= cr
			xr[i+2] *= cr
			xi[i+2] *= cr
			xr[i+3] *= cr
			xi[i+3] *= cr
		}
		for ; i < n; i++ {
			xr[i] *= cr
			xi[i] *= cr
		}
		return
	}
	for ; i+4 <= n; i += 4 {
		r0, m0 := xr[i], xi[i]
		r1, m1 := xr[i+1], xi[i+1]
		r2, m2 := xr[i+2], xi[i+2]
		r3, m3 := xr[i+3], xi[i+3]
		xr[i] = cr*r0 - ci*m0
		xi[i] = cr*m0 + ci*r0
		xr[i+1] = cr*r1 - ci*m1
		xi[i+1] = cr*m1 + ci*r1
		xr[i+2] = cr*r2 - ci*m2
		xi[i+2] = cr*m2 + ci*r2
		xr[i+3] = cr*r3 - ci*m3
		xi[i+3] = cr*m3 + ci*r3
	}
	for ; i < n; i++ {
		r, m := xr[i], xi[i]
		xr[i] = cr*r - ci*m
		xi[i] = cr*m + ci*r
	}
}

func spanRot2x2(xr, xi, yr, yi []float64, ar, ai, br, bi, cr, ci, dr, di float64) {
	n := len(xr)
	xi, yr, yi = xi[:n], yr[:n], yi[:n]
	i := 0
	if ai == 0 && bi == 0 && ci == 0 && di == 0 {
		for ; i+2 <= n; i += 2 {
			x0, xm0 := xr[i], xi[i]
			y0, ym0 := yr[i], yi[i]
			x1, xm1 := xr[i+1], xi[i+1]
			y1, ym1 := yr[i+1], yi[i+1]
			xr[i] = ar*x0 + br*y0
			xi[i] = ar*xm0 + br*ym0
			yr[i] = cr*x0 + dr*y0
			yi[i] = cr*xm0 + dr*ym0
			xr[i+1] = ar*x1 + br*y1
			xi[i+1] = ar*xm1 + br*ym1
			yr[i+1] = cr*x1 + dr*y1
			yi[i+1] = cr*xm1 + dr*ym1
		}
		for ; i < n; i++ {
			x, xm := xr[i], xi[i]
			y, ym := yr[i], yi[i]
			xr[i] = ar*x + br*y
			xi[i] = ar*xm + br*ym
			yr[i] = cr*x + dr*y
			yi[i] = cr*xm + dr*ym
		}
		return
	}
	for ; i+2 <= n; i += 2 {
		x0, xm0 := xr[i], xi[i]
		y0, ym0 := yr[i], yi[i]
		x1, xm1 := xr[i+1], xi[i+1]
		y1, ym1 := yr[i+1], yi[i+1]
		xr[i] = ar*x0 - ai*xm0 + br*y0 - bi*ym0
		xi[i] = ar*xm0 + ai*x0 + br*ym0 + bi*y0
		yr[i] = cr*x0 - ci*xm0 + dr*y0 - di*ym0
		yi[i] = cr*xm0 + ci*x0 + dr*ym0 + di*y0
		xr[i+1] = ar*x1 - ai*xm1 + br*y1 - bi*ym1
		xi[i+1] = ar*xm1 + ai*x1 + br*ym1 + bi*y1
		yr[i+1] = cr*x1 - ci*xm1 + dr*y1 - di*ym1
		yi[i+1] = cr*xm1 + ci*x1 + dr*ym1 + di*y1
	}
	for ; i < n; i++ {
		x, xm := xr[i], xi[i]
		y, ym := yr[i], yi[i]
		xr[i] = ar*x - ai*xm + br*y - bi*ym
		xi[i] = ar*xm + ai*x + br*ym + bi*y
		yr[i] = cr*x - ci*xm + dr*y - di*ym
		yi[i] = cr*xm + ci*x + dr*ym + di*y
	}
}

func spanSwap(xr, xi, yr, yi []float64) {
	n := len(xr)
	xi, yr, yi = xi[:n], yr[:n], yi[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		xr[i], yr[i] = yr[i], xr[i]
		xi[i], yi[i] = yi[i], xi[i]
		xr[i+1], yr[i+1] = yr[i+1], xr[i+1]
		xi[i+1], yi[i+1] = yi[i+1], xi[i+1]
		xr[i+2], yr[i+2] = yr[i+2], xr[i+2]
		xi[i+2], yi[i+2] = yi[i+2], xi[i+2]
		xr[i+3], yr[i+3] = yr[i+3], xr[i+3]
		xi[i+3], yi[i+3] = yi[i+3], xi[i+3]
	}
	for ; i < n; i++ {
		xr[i], yr[i] = yr[i], xr[i]
		xi[i], yi[i] = yi[i], xi[i]
	}
}

func spanCross(xr, xi, yr, yi []float64, br, bi, cr, ci float64) {
	n := len(xr)
	xi, yr, yi = xi[:n], yr[:n], yi[:n]
	i := 0
	if bi == 0 && ci == 0 {
		for ; i+2 <= n; i += 2 {
			x0, xm0 := xr[i], xi[i]
			x1, xm1 := xr[i+1], xi[i+1]
			xr[i] = br * yr[i]
			xi[i] = br * yi[i]
			yr[i] = cr * x0
			yi[i] = cr * xm0
			xr[i+1] = br * yr[i+1]
			xi[i+1] = br * yi[i+1]
			yr[i+1] = cr * x1
			yi[i+1] = cr * xm1
		}
		for ; i < n; i++ {
			x, xm := xr[i], xi[i]
			xr[i] = br * yr[i]
			xi[i] = br * yi[i]
			yr[i] = cr * x
			yi[i] = cr * xm
		}
		return
	}
	for ; i+2 <= n; i += 2 {
		x0, xm0 := xr[i], xi[i]
		y0, ym0 := yr[i], yi[i]
		x1, xm1 := xr[i+1], xi[i+1]
		y1, ym1 := yr[i+1], yi[i+1]
		xr[i] = br*y0 - bi*ym0
		xi[i] = br*ym0 + bi*y0
		yr[i] = cr*x0 - ci*xm0
		yi[i] = cr*xm0 + ci*x0
		xr[i+1] = br*y1 - bi*ym1
		xi[i+1] = br*ym1 + bi*y1
		yr[i+1] = cr*x1 - ci*xm1
		yi[i+1] = cr*xm1 + ci*x1
	}
	for ; i < n; i++ {
		x, xm := xr[i], xi[i]
		y, ym := yr[i], yi[i]
		xr[i] = br*y - bi*ym
		xi[i] = br*ym + bi*y
		yr[i] = cr*x - ci*xm
		yi[i] = cr*xm + ci*x
	}
}

func spanAxpy(dstRe, dstIm, srcRe, srcIm []float64, cr, ci float64) {
	n := len(dstRe)
	dstIm, srcRe, srcIm = dstIm[:n], srcRe[:n], srcIm[:n]
	i := 0
	if ci == 0 {
		for ; i+4 <= n; i += 4 {
			dstRe[i] += cr * srcRe[i]
			dstIm[i] += cr * srcIm[i]
			dstRe[i+1] += cr * srcRe[i+1]
			dstIm[i+1] += cr * srcIm[i+1]
			dstRe[i+2] += cr * srcRe[i+2]
			dstIm[i+2] += cr * srcIm[i+2]
			dstRe[i+3] += cr * srcRe[i+3]
			dstIm[i+3] += cr * srcIm[i+3]
		}
		for ; i < n; i++ {
			dstRe[i] += cr * srcRe[i]
			dstIm[i] += cr * srcIm[i]
		}
		return
	}
	for ; i+4 <= n; i += 4 {
		s0, t0 := srcRe[i], srcIm[i]
		s1, t1 := srcRe[i+1], srcIm[i+1]
		s2, t2 := srcRe[i+2], srcIm[i+2]
		s3, t3 := srcRe[i+3], srcIm[i+3]
		dstRe[i] += cr*s0 - ci*t0
		dstIm[i] += cr*t0 + ci*s0
		dstRe[i+1] += cr*s1 - ci*t1
		dstIm[i+1] += cr*t1 + ci*s1
		dstRe[i+2] += cr*s2 - ci*t2
		dstIm[i+2] += cr*t2 + ci*s2
		dstRe[i+3] += cr*s3 - ci*t3
		dstIm[i+3] += cr*t3 + ci*s3
	}
	for ; i < n; i++ {
		s, t := srcRe[i], srcIm[i]
		dstRe[i] += cr*s - ci*t
		dstIm[i] += cr*t + ci*s
	}
}

// spanRot4x4 is the 2q dense matvec with the 16 complex coefficients hoisted
// into scalars once per span (scalarRot4x4 re-reads m and runs complex128
// arithmetic per element). An all-real matrix — real 2q rotations, X-basis
// entanglers — drops every cross-plane term, halving the flops.
func spanRot4x4(x0r, x0i, x1r, x1i, x2r, x2i, x3r, x3i []float64, m []complex128) {
	n := len(x0r)
	x0i, x1r, x1i = x0i[:n], x1r[:n], x1i[:n]
	x2r, x2i, x3r, x3i = x2r[:n], x2i[:n], x3r[:n], x3i[:n]
	var mr, mi [16]float64
	allReal := true
	for k, c := range m[:16] {
		mr[k], mi[k] = real(c), imag(c)
		if mi[k] != 0 {
			allReal = false
		}
	}
	if allReal {
		for i := 0; i < n; i++ {
			a0, b0 := x0r[i], x0i[i]
			a1, b1 := x1r[i], x1i[i]
			a2, b2 := x2r[i], x2i[i]
			a3, b3 := x3r[i], x3i[i]
			x0r[i] = mr[0]*a0 + mr[1]*a1 + mr[2]*a2 + mr[3]*a3
			x0i[i] = mr[0]*b0 + mr[1]*b1 + mr[2]*b2 + mr[3]*b3
			x1r[i] = mr[4]*a0 + mr[5]*a1 + mr[6]*a2 + mr[7]*a3
			x1i[i] = mr[4]*b0 + mr[5]*b1 + mr[6]*b2 + mr[7]*b3
			x2r[i] = mr[8]*a0 + mr[9]*a1 + mr[10]*a2 + mr[11]*a3
			x2i[i] = mr[8]*b0 + mr[9]*b1 + mr[10]*b2 + mr[11]*b3
			x3r[i] = mr[12]*a0 + mr[13]*a1 + mr[14]*a2 + mr[15]*a3
			x3i[i] = mr[12]*b0 + mr[13]*b1 + mr[14]*b2 + mr[15]*b3
		}
		return
	}
	for i := 0; i < n; i++ {
		a0, b0 := x0r[i], x0i[i]
		a1, b1 := x1r[i], x1i[i]
		a2, b2 := x2r[i], x2i[i]
		a3, b3 := x3r[i], x3i[i]
		x0r[i] = mr[0]*a0 - mi[0]*b0 + mr[1]*a1 - mi[1]*b1 + mr[2]*a2 - mi[2]*b2 + mr[3]*a3 - mi[3]*b3
		x0i[i] = mr[0]*b0 + mi[0]*a0 + mr[1]*b1 + mi[1]*a1 + mr[2]*b2 + mi[2]*a2 + mr[3]*b3 + mi[3]*a3
		x1r[i] = mr[4]*a0 - mi[4]*b0 + mr[5]*a1 - mi[5]*b1 + mr[6]*a2 - mi[6]*b2 + mr[7]*a3 - mi[7]*b3
		x1i[i] = mr[4]*b0 + mi[4]*a0 + mr[5]*b1 + mi[5]*a1 + mr[6]*b2 + mi[6]*a2 + mr[7]*b3 + mi[7]*a3
		x2r[i] = mr[8]*a0 - mi[8]*b0 + mr[9]*a1 - mi[9]*b1 + mr[10]*a2 - mi[10]*b2 + mr[11]*a3 - mi[11]*b3
		x2i[i] = mr[8]*b0 + mi[8]*a0 + mr[9]*b1 + mi[9]*a1 + mr[10]*b2 + mi[10]*a2 + mr[11]*b3 + mi[11]*a3
		x3r[i] = mr[12]*a0 - mi[12]*b0 + mr[13]*a1 - mi[13]*b1 + mr[14]*a2 - mi[14]*b2 + mr[15]*a3 - mi[15]*b3
		x3i[i] = mr[12]*b0 + mi[12]*a0 + mr[13]*b1 + mi[13]*a1 + mr[14]*b2 + mi[14]*a2 + mr[15]*b3 + mi[15]*a3
	}
}
