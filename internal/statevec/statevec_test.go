package statevec

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"hsfsim/internal/cmat"
	"hsfsim/internal/gate"
)

const tol = 1e-10

// randomState returns a normalized random state on n qubits.
func randomState(rng *rand.Rand, n int) State {
	s := make(State, 1<<n)
	for i := range s {
		s[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	norm := complex(1/s.Norm(), 0)
	for i := range s {
		s[i] *= norm
	}
	return s
}

// randomGate builds a random unitary gate on k random distinct qubits of an
// n-qubit register.
func randomGate(rng *rand.Rand, n, k int) gate.Gate {
	perm := rng.Perm(n)
	qs := perm[:k]
	return gate.New("rand", randUnitary(rng, 1<<k), nil, qs...)
}

// randUnitary builds a Haar-ish random dim×dim unitary via Gram-Schmidt.
func randUnitary(rng *rand.Rand, dim int) *cmat.Matrix {
	m := cmat.New(dim, dim)
	for i := range m.Data {
		m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	for j := 0; j < dim; j++ {
		for c := 0; c < j; c++ {
			var dot complex128
			for i := 0; i < dim; i++ {
				dot += cmplx.Conj(m.At(i, c)) * m.At(i, j)
			}
			for i := 0; i < dim; i++ {
				m.Set(i, j, m.At(i, j)-dot*m.At(i, c))
			}
		}
		var norm float64
		for i := 0; i < dim; i++ {
			v := m.At(i, j)
			norm += real(v)*real(v) + imag(v)*imag(v)
		}
		inv := complex(1/math.Sqrt(norm), 0)
		for i := 0; i < dim; i++ {
			m.Set(i, j, m.At(i, j)*inv)
		}
	}
	return m
}

// applyReference is a brute-force reference: build the embedded 2^n matrix
// and multiply.
func applyReference(g *gate.Gate, s State) State {
	n := s.NumQubits()
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	// Embed the gate on the full register using circuit's embedding logic
	// replicated here to avoid an import cycle: spread gate bits.
	dim := len(s)
	kdim := g.Matrix.Rows
	out := make(State, dim)
	k := g.NumQubits()
	rest := make([]int, 0, n-k)
	inGate := make(map[int]bool)
	for _, q := range g.Qubits {
		inGate[q] = true
	}
	for q := 0; q < n; q++ {
		if !inGate[q] {
			rest = append(rest, q)
		}
	}
	for o := 0; o < 1<<len(rest); o++ {
		base := 0
		for j, q := range rest {
			base |= ((o >> j) & 1) << q
		}
		for ti := 0; ti < kdim; ti++ {
			oi := base
			for j, q := range g.Qubits {
				oi |= ((ti >> j) & 1) << q
			}
			var acc complex128
			for tj := 0; tj < kdim; tj++ {
				ij := base
				for j, q := range g.Qubits {
					ij |= ((tj >> j) & 1) << q
				}
				acc += g.Matrix.At(ti, tj) * s[ij]
			}
			out[oi] = acc
		}
	}
	return out
}

func TestNewState(t *testing.T) {
	s := NewState(3)
	if len(s) != 8 || s[0] != 1 {
		t.Fatalf("bad initial state %v", s)
	}
	if s.NumQubits() != 3 {
		t.Fatal("NumQubits wrong")
	}
	if math.Abs(s.Norm()-1) > tol {
		t.Fatal("initial norm != 1")
	}
}

func TestBellState(t *testing.T) {
	s := NewState(2)
	h := gate.H(0)
	cx := gate.CNOT(0, 1)
	s.ApplyGate(&h)
	s.ApplyGate(&cx)
	want := complex(math.Sqrt2/2, 0)
	if cmplx.Abs(s[0]-want) > tol || cmplx.Abs(s[3]-want) > tol ||
		cmplx.Abs(s[1]) > tol || cmplx.Abs(s[2]) > tol {
		t.Fatalf("Bell state wrong: %v", s)
	}
}

func TestGHZState(t *testing.T) {
	n := 5
	s := NewState(n)
	h := gate.H(0)
	s.ApplyGate(&h)
	for q := 1; q < n; q++ {
		cx := gate.CNOT(q-1, q)
		s.ApplyGate(&cx)
	}
	want := complex(math.Sqrt2/2, 0)
	if cmplx.Abs(s[0]-want) > tol || cmplx.Abs(s[(1<<n)-1]-want) > tol {
		t.Fatalf("GHZ state wrong: s[0]=%v s[max]=%v", s[0], s[(1<<n)-1])
	}
}

func TestApply1MatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(5)
		s := randomState(rng, n)
		g := randomGate(rng, n, 1)
		want := applyReference(&g, s)
		s.ApplyGate(&g)
		if MaxAbsDiff(s, want) > 1e-9 {
			t.Fatalf("trial %d: 1-qubit apply mismatch", trial)
		}
	}
}

func TestApply2MatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(5)
		s := randomState(rng, n)
		g := randomGate(rng, n, 2)
		want := applyReference(&g, s)
		s.ApplyGate(&g)
		if MaxAbsDiff(s, want) > 1e-9 {
			t.Fatalf("trial %d: 2-qubit apply mismatch (qubits %v)", trial, g.Qubits)
		}
	}
}

func TestApplyKMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(4)
		k := 3
		if n > 3 && rng.Intn(2) == 0 {
			k = 4
		}
		if k > n {
			k = n
		}
		s := randomState(rng, n)
		g := randomGate(rng, n, k)
		want := applyReference(&g, s)
		s.ApplyGate(&g)
		if MaxAbsDiff(s, want) > 1e-9 {
			t.Fatalf("trial %d: %d-qubit apply mismatch (qubits %v)", trial, k, g.Qubits)
		}
	}
}

func TestDiagonalKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	n := 5
	s := randomState(rng, n)
	for _, g := range []gate.Gate{gate.RZ(0.7, 2), gate.RZZ(0.9, 1, 4), gate.CZ(0, 3), gate.CPhase(0.4, 2, 4), gate.CCZ(0, 2, 4), gate.CCZ(4, 1, 3)} {
		want := applyReference(&g, s.Clone())
		got := s.Clone()
		got.ApplyGate(&g)
		if MaxAbsDiff(got, want) > 1e-9 {
			t.Fatalf("%s: diagonal kernel mismatch", g.Name)
		}
	}
}

func TestUnitaryPreservesNorm(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		s := randomState(rng, n)
		for i := 0; i < 5; i++ {
			g := randomGate(rng, n, 1+rng.Intn(min(n, 3)))
			s.ApplyGate(&g)
		}
		return math.Abs(s.Norm()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGateOrderNonCommuting(t *testing.T) {
	// HX|0> != XH|0>
	s1 := NewState(1)
	s2 := NewState(1)
	h, x := gate.H(0), gate.X(0)
	s1.ApplyGate(&h)
	s1.ApplyGate(&x)
	s2.ApplyGate(&x)
	s2.ApplyGate(&h)
	if MaxAbsDiff(s1, s2) < 0.1 {
		t.Fatal("HX and XH should differ on |0>")
	}
}

func TestKron(t *testing.T) {
	upper := State{1, 2}      // 1 qubit
	lower := State{3, 4}      // 1 qubit
	out := Kron(upper, lower) // index a<<1 | b
	want := State{3, 4, 6, 8}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("Kron = %v, want %v", out, want)
		}
	}
}

func TestKronOfStatesMatchesCircuit(t *testing.T) {
	// (H|0>) ⊗ (X|0>) over a 2-qubit register equals applying H(1), X(0).
	up := NewState(1)
	lo := NewState(1)
	h0 := gate.H(0)
	x0 := gate.X(0)
	up.ApplyGate(&h0)
	lo.ApplyGate(&x0)
	combined := Kron(up, lo)

	full := NewState(2)
	h1 := gate.H(1)
	full.ApplyGate(&h1)
	full.ApplyGate(&x0)
	if MaxAbsDiff(combined, full) > tol {
		t.Fatalf("Kron mismatch: %v vs %v", combined, full)
	}
}

func TestFidelity(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	s := randomState(rng, 4)
	if math.Abs(Fidelity(s, s)-1) > tol {
		t.Fatal("self-fidelity != 1")
	}
	o := s.Clone()
	// Orthogonalize o against s.
	var dot complex128
	for i := range s {
		dot += cmplx.Conj(s[i]) * o[i]
	}
	// o == s, so build an orthogonal state manually.
	o = make(State, len(s))
	o[0] = cmplx.Conj(s[1])
	o[1] = -cmplx.Conj(s[0])
	norm := complex(1/o.Norm(), 0)
	for i := range o {
		o[i] *= norm
	}
	var d2 complex128
	for i := range s {
		d2 += cmplx.Conj(s[i]) * o[i]
	}
	if f := Fidelity(s, o); math.Abs(f-real(d2)*real(d2)-imag(d2)*imag(d2)) > tol {
		t.Fatal("fidelity formula inconsistent")
	}
}

func TestEqualUpToGlobalPhase(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	s := randomState(rng, 3)
	phase := cmplx.Exp(1i * 0.8)
	p := s.Clone()
	for i := range p {
		p[i] *= phase
	}
	if !EqualUpToGlobalPhase(s, p, 1e-9) {
		t.Fatal("global phase copy not recognized")
	}
	q := randomState(rng, 3)
	if EqualUpToGlobalPhase(s, q, 1e-9) {
		t.Fatal("different states reported phase-equal")
	}
}

func TestLargeStateParallelPath(t *testing.T) {
	// Exercise the parallel branch (size above parallelThreshold).
	n := 16
	s := NewState(n)
	h := gate.H(0)
	s.ApplyGate(&h)
	for q := 1; q < n; q++ {
		cx := gate.CNOT(q-1, q)
		s.ApplyGate(&cx)
	}
	want := complex(math.Sqrt2/2, 0)
	if cmplx.Abs(s[0]-want) > tol || cmplx.Abs(s[len(s)-1]-want) > tol {
		t.Fatal("large GHZ state wrong")
	}
	if math.Abs(s.Norm()-1) > tol {
		t.Fatal("norm drifted")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkApply1Q20(b *testing.B) {
	s := NewState(20)
	g := gate.H(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.ApplyGate(&g)
	}
}

func BenchmarkApply2Q20(b *testing.B) {
	s := NewState(20)
	g := gate.CNOT(3, 15)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.ApplyGate(&g)
	}
}

func BenchmarkApplyDiagonalQ20(b *testing.B) {
	s := NewState(20)
	g := gate.RZZ(0.4, 3, 15)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.ApplyGate(&g)
	}
}

// SoA counterparts of the three State benchmarks above: same gates, same
// size, split-plane layout through the selected dispatch arm.

func BenchmarkApplyVec1Q20(b *testing.B) {
	v := NewVector(20)
	g := gate.H(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.ApplyGate(&g)
	}
}

func BenchmarkApplyVec2Q20(b *testing.B) {
	v := NewVector(20)
	g := gate.CNOT(3, 15)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.ApplyGate(&g)
	}
}

func BenchmarkApplyVecDiagonalQ20(b *testing.B) {
	v := NewVector(20)
	g := gate.RZZ(0.4, 3, 15)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.ApplyGate(&g)
	}
}
