package statevec

import (
	"math"
	"math/cmplx"
	"testing"

	"hsfsim/internal/gate"
)

func TestProductStateEntropyZero(t *testing.T) {
	s := NewState(4)
	h := gate.H(0)
	s.ApplyGate(&h) // |+>⊗|000>: still a product across any cut
	e, err := s.EntanglementEntropy(2)
	if err != nil {
		t.Fatal(err)
	}
	if e > 1e-10 {
		t.Fatalf("product state entropy = %g", e)
	}
	r, err := s.SchmidtRank(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 {
		t.Fatalf("product state rank = %d", r)
	}
}

func TestGHZEntropyOneBit(t *testing.T) {
	n := 6
	s := NewState(n)
	h := gate.H(0)
	s.ApplyGate(&h)
	for q := 1; q < n; q++ {
		cx := gate.CNOT(q-1, q)
		s.ApplyGate(&cx)
	}
	for _, cut := range []int{1, 2, 3} {
		e, err := s.EntanglementEntropy(cut)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(e-1) > 1e-9 {
			t.Fatalf("GHZ entropy at cut %d = %g, want 1", cut, e)
		}
		r, err := s.SchmidtRank(cut, 0)
		if err != nil {
			t.Fatal(err)
		}
		if r != 2 {
			t.Fatalf("GHZ rank = %d, want 2", r)
		}
	}
}

func TestBellPairsAdditiveEntropy(t *testing.T) {
	// Two Bell pairs across the cut: entropy 2 bits, rank 4.
	s := NewState(4) // pairs (0,2) and (1,3), cut at 1|2
	for _, q := range []int{0, 1} {
		h := gate.H(q)
		s.ApplyGate(&h)
		cx := gate.CNOT(q, q+2)
		s.ApplyGate(&cx)
	}
	e, err := s.EntanglementEntropy(2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-2) > 1e-9 {
		t.Fatalf("two Bell pairs entropy = %g, want 2", e)
	}
	r, err := s.SchmidtRank(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r != 4 {
		t.Fatalf("rank = %d, want 4", r)
	}
}

func TestSchmidtSpectrumNormalization(t *testing.T) {
	s := NewState(4)
	h := gate.H(0)
	s.ApplyGate(&h)
	cx := gate.CNOT(0, 2)
	s.ApplyGate(&cx)
	spec, err := s.SchmidtSpectrum(2)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, sv := range spec {
		sum += sv * sv
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("Σλ² = %g, want 1", sum)
	}
}

func TestEntangleErrors(t *testing.T) {
	s := NewState(3)
	if _, err := s.SchmidtSpectrum(0); err == nil {
		t.Fatal("empty partition accepted")
	}
	if _, err := s.SchmidtSpectrum(3); err == nil {
		t.Fatal("full partition accepted")
	}
}

func TestReducedDensityMatrixBell(t *testing.T) {
	s := NewState(2)
	h := gate.H(0)
	cx := gate.CNOT(0, 1)
	s.ApplyGate(&h)
	s.ApplyGate(&cx)
	rho, err := s.ReducedDensityMatrix([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	// Bell pair: the single-qubit reduced state is maximally mixed I/2.
	if cmplx.Abs(rho.At(0, 0)-0.5) > 1e-12 || cmplx.Abs(rho.At(1, 1)-0.5) > 1e-12 ||
		cmplx.Abs(rho.At(0, 1)) > 1e-12 {
		t.Fatalf("rho = %v", rho)
	}
	p, err := s.Purity([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.5) > 1e-12 {
		t.Fatalf("purity = %g, want 0.5", p)
	}
}

func TestPurityProductState(t *testing.T) {
	s := NewState(3)
	h := gate.H(1)
	s.ApplyGate(&h)
	p, err := s.Purity([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-1) > 1e-12 {
		t.Fatalf("product purity = %g", p)
	}
}

func TestPurityMatchesSchmidtSpectrum(t *testing.T) {
	// tr(ρ_A²) = Σ λ⁴ over the Schmidt coefficients of the A|B split.
	s := NewState(4)
	gs := []gate.Gate{gate.H(0), gate.CNOT(0, 2), gate.RY(0.7, 1), gate.CNOT(1, 3), gate.RZZ(0.4, 0, 1)}
	for i := range gs {
		s.ApplyGate(&gs[i])
	}
	spec, err := s.SchmidtSpectrum(2)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for _, sv := range spec {
		want += sv * sv * sv * sv
	}
	p, err := s.Purity([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-want) > 1e-9 {
		t.Fatalf("purity %g vs Σλ⁴ %g", p, want)
	}
}

func TestReducedDensityMatrixValidation(t *testing.T) {
	s := NewState(3)
	if _, err := s.ReducedDensityMatrix(nil); err == nil {
		t.Fatal("empty keep accepted")
	}
	if _, err := s.ReducedDensityMatrix([]int{0, 1, 2}); err == nil {
		t.Fatal("full keep accepted")
	}
	if _, err := s.ReducedDensityMatrix([]int{1, 0}); err == nil {
		t.Fatal("unsorted keep accepted")
	}
	if _, err := s.ReducedDensityMatrix([]int{0, 0}); err == nil {
		t.Fatal("duplicate keep accepted")
	}
	if _, err := s.ReducedDensityMatrix([]int{5}); err == nil {
		t.Fatal("out of range keep accepted")
	}
}
