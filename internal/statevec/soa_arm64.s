//go:build !purego

// NEON (ASIMD) span-primitive bodies. See asm/README.md for the maintenance
// notes; the committed text is authoritative so builds need no codegen step.
//
// Contract shared by every TEXT below: pointer arguments address the first
// element of equal-length, non-aliasing float64 spans; n > 0 and n%2 == 0
// (the Go wrappers in soa_arm64.go peel the at-most-one-element tail).
// Two float64 lanes per 128-bit vector register. The Go arm64 assembler
// accepts FMLA/FMLS but not vector FMUL/FADD/FSUB, so every product term is
// accumulated into a VEOR-zeroed register — each primitive is a sum of
// products, so the shape costs one VEOR per result vector and nothing else.
// Spans advance by post-incrementing the pointer on the store (VST1.P),
// which keeps the loop free of separate index arithmetic.

#include "textflag.h"

// func neonScaleRe(xr, xi *float64, n int, cr float64)
TEXT ·neonScaleRe(SB), NOSPLIT, $0-32
	MOVD  xr+0(FP), R0
	MOVD  xi+8(FP), R1
	MOVD  n+16(FP), R8
	FMOVD cr+24(FP), F0
	VDUP  V0.D[0], V0.D2
loop:
	VLD1 (R0), [V1.D2]
	VLD1 (R1), [V2.D2]
	VEOR  V3.B16, V3.B16, V3.B16
	VFMLA V0.D2, V1.D2, V3.D2 // cr·r
	VEOR  V4.B16, V4.B16, V4.B16
	VFMLA V0.D2, V2.D2, V4.D2 // cr·m
	VST1.P [V3.D2], 16(R0)
	VST1.P [V4.D2], 16(R1)
	SUB  $2, R8, R8
	CBNZ R8, loop
	RET

// func neonScaleCx(xr, xi *float64, n int, cr, ci float64)
TEXT ·neonScaleCx(SB), NOSPLIT, $0-40
	MOVD  xr+0(FP), R0
	MOVD  xi+8(FP), R1
	MOVD  n+16(FP), R8
	FMOVD cr+24(FP), F0
	FMOVD ci+32(FP), F1
	VDUP  V0.D[0], V0.D2
	VDUP  V1.D[0], V1.D2
loop:
	VLD1 (R0), [V2.D2] // r
	VLD1 (R1), [V3.D2] // m
	VEOR  V4.B16, V4.B16, V4.B16
	VFMLA V0.D2, V2.D2, V4.D2 // cr·r
	VFMLS V1.D2, V3.D2, V4.D2 // − ci·m
	VEOR  V5.B16, V5.B16, V5.B16
	VFMLA V0.D2, V3.D2, V5.D2 // cr·m
	VFMLA V1.D2, V2.D2, V5.D2 // + ci·r
	VST1.P [V4.D2], 16(R0)
	VST1.P [V5.D2], 16(R1)
	SUB  $2, R8, R8
	CBNZ R8, loop
	RET

// func neonSwapN(xr, xi, yr, yi *float64, n int)
TEXT ·neonSwapN(SB), NOSPLIT, $0-40
	MOVD xr+0(FP), R0
	MOVD xi+8(FP), R1
	MOVD yr+16(FP), R2
	MOVD yi+24(FP), R3
	MOVD n+32(FP), R8
loop:
	VLD1 (R0), [V0.D2]
	VLD1 (R2), [V1.D2]
	VLD1 (R1), [V2.D2]
	VLD1 (R3), [V3.D2]
	VST1.P [V1.D2], 16(R0)
	VST1.P [V0.D2], 16(R2)
	VST1.P [V3.D2], 16(R1)
	VST1.P [V2.D2], 16(R3)
	SUB  $2, R8, R8
	CBNZ R8, loop
	RET

// func neonCrossRe(xr, xi, yr, yi *float64, n int, br, cr float64)
TEXT ·neonCrossRe(SB), NOSPLIT, $0-56
	MOVD  xr+0(FP), R0
	MOVD  xi+8(FP), R1
	MOVD  yr+16(FP), R2
	MOVD  yi+24(FP), R3
	MOVD  n+32(FP), R8
	FMOVD br+40(FP), F0
	FMOVD cr+48(FP), F1
	VDUP  V0.D[0], V0.D2
	VDUP  V1.D[0], V1.D2
loop:
	VLD1 (R0), [V2.D2] // x
	VLD1 (R1), [V3.D2] // xm
	VLD1 (R2), [V4.D2] // y
	VLD1 (R3), [V5.D2] // ym
	VEOR  V6.B16, V6.B16, V6.B16
	VFMLA V0.D2, V4.D2, V6.D2 // br·y
	VEOR  V7.B16, V7.B16, V7.B16
	VFMLA V0.D2, V5.D2, V7.D2 // br·ym
	VEOR  V8.B16, V8.B16, V8.B16
	VFMLA V1.D2, V2.D2, V8.D2 // cr·x
	VEOR  V9.B16, V9.B16, V9.B16
	VFMLA V1.D2, V3.D2, V9.D2 // cr·xm
	VST1.P [V6.D2], 16(R0)
	VST1.P [V7.D2], 16(R1)
	VST1.P [V8.D2], 16(R2)
	VST1.P [V9.D2], 16(R3)
	SUB  $2, R8, R8
	CBNZ R8, loop
	RET

// func neonCrossCx(xr, xi, yr, yi *float64, n int, br, bi, cr, ci float64)
TEXT ·neonCrossCx(SB), NOSPLIT, $0-72
	MOVD  xr+0(FP), R0
	MOVD  xi+8(FP), R1
	MOVD  yr+16(FP), R2
	MOVD  yi+24(FP), R3
	MOVD  n+32(FP), R8
	FMOVD br+40(FP), F0
	FMOVD bi+48(FP), F1
	FMOVD cr+56(FP), F2
	FMOVD ci+64(FP), F3
	VDUP  V0.D[0], V0.D2
	VDUP  V1.D[0], V1.D2
	VDUP  V2.D[0], V2.D2
	VDUP  V3.D[0], V3.D2
loop:
	VLD1 (R0), [V4.D2] // x
	VLD1 (R1), [V5.D2] // xm
	VLD1 (R2), [V6.D2] // y
	VLD1 (R3), [V7.D2] // ym
	VEOR  V8.B16, V8.B16, V8.B16
	VFMLA V0.D2, V6.D2, V8.D2 // br·y
	VFMLS V1.D2, V7.D2, V8.D2 // − bi·ym
	VEOR  V9.B16, V9.B16, V9.B16
	VFMLA V0.D2, V7.D2, V9.D2 // br·ym
	VFMLA V1.D2, V6.D2, V9.D2 // + bi·y
	VEOR  V10.B16, V10.B16, V10.B16
	VFMLA V2.D2, V4.D2, V10.D2 // cr·x
	VFMLS V3.D2, V5.D2, V10.D2 // − ci·xm
	VEOR  V11.B16, V11.B16, V11.B16
	VFMLA V2.D2, V5.D2, V11.D2 // cr·xm
	VFMLA V3.D2, V4.D2, V11.D2 // + ci·x
	VST1.P [V8.D2], 16(R0)
	VST1.P [V9.D2], 16(R1)
	VST1.P [V10.D2], 16(R2)
	VST1.P [V11.D2], 16(R3)
	SUB  $2, R8, R8
	CBNZ R8, loop
	RET

// func neonAxpyRe(dstRe, dstIm, srcRe, srcIm *float64, n int, cr float64)
// The accumulator is the destination itself, so no VEOR is needed.
TEXT ·neonAxpyRe(SB), NOSPLIT, $0-48
	MOVD  dstRe+0(FP), R0
	MOVD  dstIm+8(FP), R1
	MOVD  srcRe+16(FP), R2
	MOVD  srcIm+24(FP), R3
	MOVD  n+32(FP), R8
	FMOVD cr+40(FP), F0
	VDUP  V0.D[0], V0.D2
loop:
	VLD1.P 16(R2), [V1.D2] // s
	VLD1.P 16(R3), [V2.D2] // t
	VLD1 (R0), [V3.D2]
	VLD1 (R1), [V4.D2]
	VFMLA V0.D2, V1.D2, V3.D2 // dstRe += cr·s
	VFMLA V0.D2, V2.D2, V4.D2 // dstIm += cr·t
	VST1.P [V3.D2], 16(R0)
	VST1.P [V4.D2], 16(R1)
	SUB  $2, R8, R8
	CBNZ R8, loop
	RET

// func neonAxpyCx(dstRe, dstIm, srcRe, srcIm *float64, n int, cr, ci float64)
TEXT ·neonAxpyCx(SB), NOSPLIT, $0-56
	MOVD  dstRe+0(FP), R0
	MOVD  dstIm+8(FP), R1
	MOVD  srcRe+16(FP), R2
	MOVD  srcIm+24(FP), R3
	MOVD  n+32(FP), R8
	FMOVD cr+40(FP), F0
	FMOVD ci+48(FP), F1
	VDUP  V0.D[0], V0.D2
	VDUP  V1.D[0], V1.D2
loop:
	VLD1.P 16(R2), [V2.D2] // s
	VLD1.P 16(R3), [V3.D2] // t
	VLD1 (R0), [V4.D2]
	VLD1 (R1), [V5.D2]
	VFMLA V0.D2, V2.D2, V4.D2 // dstRe += cr·s
	VFMLS V1.D2, V3.D2, V4.D2 // dstRe −= ci·t
	VFMLA V0.D2, V3.D2, V5.D2 // dstIm += cr·t
	VFMLA V1.D2, V2.D2, V5.D2 // dstIm += ci·s
	VST1.P [V4.D2], 16(R0)
	VST1.P [V5.D2], 16(R1)
	SUB  $2, R8, R8
	CBNZ R8, loop
	RET

// func neonRot2x2Re(xr, xi, yr, yi *float64, n int, ar, br, cr, dr float64)
TEXT ·neonRot2x2Re(SB), NOSPLIT, $0-72
	MOVD  xr+0(FP), R0
	MOVD  xi+8(FP), R1
	MOVD  yr+16(FP), R2
	MOVD  yi+24(FP), R3
	MOVD  n+32(FP), R8
	FMOVD ar+40(FP), F0
	FMOVD br+48(FP), F1
	FMOVD cr+56(FP), F2
	FMOVD dr+64(FP), F3
	VDUP  V0.D[0], V0.D2
	VDUP  V1.D[0], V1.D2
	VDUP  V2.D[0], V2.D2
	VDUP  V3.D[0], V3.D2
loop:
	VLD1 (R0), [V4.D2] // x
	VLD1 (R1), [V5.D2] // xm
	VLD1 (R2), [V6.D2] // y
	VLD1 (R3), [V7.D2] // ym
	VEOR  V8.B16, V8.B16, V8.B16
	VFMLA V0.D2, V4.D2, V8.D2 // ar·x
	VFMLA V1.D2, V6.D2, V8.D2 // + br·y
	VEOR  V9.B16, V9.B16, V9.B16
	VFMLA V0.D2, V5.D2, V9.D2 // ar·xm
	VFMLA V1.D2, V7.D2, V9.D2 // + br·ym
	VEOR  V10.B16, V10.B16, V10.B16
	VFMLA V2.D2, V4.D2, V10.D2 // cr·x
	VFMLA V3.D2, V6.D2, V10.D2 // + dr·y
	VEOR  V11.B16, V11.B16, V11.B16
	VFMLA V2.D2, V5.D2, V11.D2 // cr·xm
	VFMLA V3.D2, V7.D2, V11.D2 // + dr·ym
	VST1.P [V8.D2], 16(R0)
	VST1.P [V9.D2], 16(R1)
	VST1.P [V10.D2], 16(R2)
	VST1.P [V11.D2], 16(R3)
	SUB  $2, R8, R8
	CBNZ R8, loop
	RET

// func neonRot2x2Cx(xr, xi, yr, yi *float64, n int, ar, ai, br, bi, cr, ci, dr, di float64)
TEXT ·neonRot2x2Cx(SB), NOSPLIT, $0-104
	MOVD  xr+0(FP), R0
	MOVD  xi+8(FP), R1
	MOVD  yr+16(FP), R2
	MOVD  yi+24(FP), R3
	MOVD  n+32(FP), R8
	FMOVD ar+40(FP), F0
	FMOVD ai+48(FP), F1
	FMOVD br+56(FP), F2
	FMOVD bi+64(FP), F3
	FMOVD cr+72(FP), F4
	FMOVD ci+80(FP), F5
	FMOVD dr+88(FP), F6
	FMOVD di+96(FP), F7
	VDUP  V0.D[0], V0.D2
	VDUP  V1.D[0], V1.D2
	VDUP  V2.D[0], V2.D2
	VDUP  V3.D[0], V3.D2
	VDUP  V4.D[0], V4.D2
	VDUP  V5.D[0], V5.D2
	VDUP  V6.D[0], V6.D2
	VDUP  V7.D[0], V7.D2
loop:
	VLD1 (R0), [V8.D2]  // x
	VLD1 (R1), [V9.D2]  // xm
	VLD1 (R2), [V10.D2] // y
	VLD1 (R3), [V11.D2] // ym
	VEOR  V12.B16, V12.B16, V12.B16
	VFMLA V0.D2, V8.D2, V12.D2  // ar·x
	VFMLS V1.D2, V9.D2, V12.D2  // − ai·xm
	VFMLA V2.D2, V10.D2, V12.D2 // + br·y
	VFMLS V3.D2, V11.D2, V12.D2 // − bi·ym
	VEOR  V13.B16, V13.B16, V13.B16
	VFMLA V0.D2, V9.D2, V13.D2  // ar·xm
	VFMLA V1.D2, V8.D2, V13.D2  // + ai·x
	VFMLA V2.D2, V11.D2, V13.D2 // + br·ym
	VFMLA V3.D2, V10.D2, V13.D2 // + bi·y
	VEOR  V14.B16, V14.B16, V14.B16
	VFMLA V4.D2, V8.D2, V14.D2  // cr·x
	VFMLS V5.D2, V9.D2, V14.D2  // − ci·xm
	VFMLA V6.D2, V10.D2, V14.D2 // + dr·y
	VFMLS V7.D2, V11.D2, V14.D2 // − di·ym
	VEOR  V15.B16, V15.B16, V15.B16
	VFMLA V4.D2, V9.D2, V15.D2  // cr·xm
	VFMLA V5.D2, V8.D2, V15.D2  // + ci·x
	VFMLA V6.D2, V11.D2, V15.D2 // + dr·ym
	VFMLA V7.D2, V10.D2, V15.D2 // + di·y
	VST1.P [V12.D2], 16(R0)
	VST1.P [V13.D2], 16(R1)
	VST1.P [V14.D2], 16(R2)
	VST1.P [V15.D2], 16(R3)
	SUB  $2, R8, R8
	CBNZ R8, loop
	RET

// func neonRot4x4N(x0r, x0i, x1r, x1i, x2r, x2i, x3r, x3i *float64, n int, m *complex128)
// Coefficients are re-broadcast from m (row-major, interleaved re/im) every
// iteration row; the eight input vectors V0–V7 stay live across all four
// rows, so each output row stores (and post-increments its pointers)
// immediately after its accumulation completes.
TEXT ·neonRot4x4N(SB), NOSPLIT, $0-80
	MOVD x0r+0(FP), R0
	MOVD x0i+8(FP), R1
	MOVD x1r+16(FP), R2
	MOVD x1i+24(FP), R3
	MOVD x2r+32(FP), R4
	MOVD x2i+40(FP), R5
	MOVD x3r+48(FP), R6
	MOVD x3i+56(FP), R7
	MOVD n+64(FP), R8
	MOVD m+72(FP), R9
loop:
	VLD1 (R0), [V0.D2] // x0 re
	VLD1 (R1), [V1.D2] // x0 im
	VLD1 (R2), [V2.D2] // x1 re
	VLD1 (R3), [V3.D2] // x1 im
	VLD1 (R4), [V4.D2] // x2 re
	VLD1 (R5), [V5.D2] // x2 im
	VLD1 (R6), [V6.D2] // x3 re
	VLD1 (R7), [V7.D2] // x3 im

	// row 0
	FMOVD 0(R9), F10
	FMOVD 8(R9), F11
	VDUP  V10.D[0], V10.D2
	VDUP  V11.D[0], V11.D2
	VEOR  V8.B16, V8.B16, V8.B16
	VEOR  V9.B16, V9.B16, V9.B16
	VFMLA V10.D2, V0.D2, V8.D2
	VFMLS V11.D2, V1.D2, V8.D2
	VFMLA V10.D2, V1.D2, V9.D2
	VFMLA V11.D2, V0.D2, V9.D2
	FMOVD 16(R9), F10
	FMOVD 24(R9), F11
	VDUP  V10.D[0], V10.D2
	VDUP  V11.D[0], V11.D2
	VFMLA V10.D2, V2.D2, V8.D2
	VFMLS V11.D2, V3.D2, V8.D2
	VFMLA V10.D2, V3.D2, V9.D2
	VFMLA V11.D2, V2.D2, V9.D2
	FMOVD 32(R9), F10
	FMOVD 40(R9), F11
	VDUP  V10.D[0], V10.D2
	VDUP  V11.D[0], V11.D2
	VFMLA V10.D2, V4.D2, V8.D2
	VFMLS V11.D2, V5.D2, V8.D2
	VFMLA V10.D2, V5.D2, V9.D2
	VFMLA V11.D2, V4.D2, V9.D2
	FMOVD 48(R9), F10
	FMOVD 56(R9), F11
	VDUP  V10.D[0], V10.D2
	VDUP  V11.D[0], V11.D2
	VFMLA V10.D2, V6.D2, V8.D2
	VFMLS V11.D2, V7.D2, V8.D2
	VFMLA V10.D2, V7.D2, V9.D2
	VFMLA V11.D2, V6.D2, V9.D2
	VST1.P [V8.D2], 16(R0)
	VST1.P [V9.D2], 16(R1)

	// row 1
	FMOVD 64(R9), F10
	FMOVD 72(R9), F11
	VDUP  V10.D[0], V10.D2
	VDUP  V11.D[0], V11.D2
	VEOR  V8.B16, V8.B16, V8.B16
	VEOR  V9.B16, V9.B16, V9.B16
	VFMLA V10.D2, V0.D2, V8.D2
	VFMLS V11.D2, V1.D2, V8.D2
	VFMLA V10.D2, V1.D2, V9.D2
	VFMLA V11.D2, V0.D2, V9.D2
	FMOVD 80(R9), F10
	FMOVD 88(R9), F11
	VDUP  V10.D[0], V10.D2
	VDUP  V11.D[0], V11.D2
	VFMLA V10.D2, V2.D2, V8.D2
	VFMLS V11.D2, V3.D2, V8.D2
	VFMLA V10.D2, V3.D2, V9.D2
	VFMLA V11.D2, V2.D2, V9.D2
	FMOVD 96(R9), F10
	FMOVD 104(R9), F11
	VDUP  V10.D[0], V10.D2
	VDUP  V11.D[0], V11.D2
	VFMLA V10.D2, V4.D2, V8.D2
	VFMLS V11.D2, V5.D2, V8.D2
	VFMLA V10.D2, V5.D2, V9.D2
	VFMLA V11.D2, V4.D2, V9.D2
	FMOVD 112(R9), F10
	FMOVD 120(R9), F11
	VDUP  V10.D[0], V10.D2
	VDUP  V11.D[0], V11.D2
	VFMLA V10.D2, V6.D2, V8.D2
	VFMLS V11.D2, V7.D2, V8.D2
	VFMLA V10.D2, V7.D2, V9.D2
	VFMLA V11.D2, V6.D2, V9.D2
	VST1.P [V8.D2], 16(R2)
	VST1.P [V9.D2], 16(R3)

	// row 2
	FMOVD 128(R9), F10
	FMOVD 136(R9), F11
	VDUP  V10.D[0], V10.D2
	VDUP  V11.D[0], V11.D2
	VEOR  V8.B16, V8.B16, V8.B16
	VEOR  V9.B16, V9.B16, V9.B16
	VFMLA V10.D2, V0.D2, V8.D2
	VFMLS V11.D2, V1.D2, V8.D2
	VFMLA V10.D2, V1.D2, V9.D2
	VFMLA V11.D2, V0.D2, V9.D2
	FMOVD 144(R9), F10
	FMOVD 152(R9), F11
	VDUP  V10.D[0], V10.D2
	VDUP  V11.D[0], V11.D2
	VFMLA V10.D2, V2.D2, V8.D2
	VFMLS V11.D2, V3.D2, V8.D2
	VFMLA V10.D2, V3.D2, V9.D2
	VFMLA V11.D2, V2.D2, V9.D2
	FMOVD 160(R9), F10
	FMOVD 168(R9), F11
	VDUP  V10.D[0], V10.D2
	VDUP  V11.D[0], V11.D2
	VFMLA V10.D2, V4.D2, V8.D2
	VFMLS V11.D2, V5.D2, V8.D2
	VFMLA V10.D2, V5.D2, V9.D2
	VFMLA V11.D2, V4.D2, V9.D2
	FMOVD 176(R9), F10
	FMOVD 184(R9), F11
	VDUP  V10.D[0], V10.D2
	VDUP  V11.D[0], V11.D2
	VFMLA V10.D2, V6.D2, V8.D2
	VFMLS V11.D2, V7.D2, V8.D2
	VFMLA V10.D2, V7.D2, V9.D2
	VFMLA V11.D2, V6.D2, V9.D2
	VST1.P [V8.D2], 16(R4)
	VST1.P [V9.D2], 16(R5)

	// row 3
	FMOVD 192(R9), F10
	FMOVD 200(R9), F11
	VDUP  V10.D[0], V10.D2
	VDUP  V11.D[0], V11.D2
	VEOR  V8.B16, V8.B16, V8.B16
	VEOR  V9.B16, V9.B16, V9.B16
	VFMLA V10.D2, V0.D2, V8.D2
	VFMLS V11.D2, V1.D2, V8.D2
	VFMLA V10.D2, V1.D2, V9.D2
	VFMLA V11.D2, V0.D2, V9.D2
	FMOVD 208(R9), F10
	FMOVD 216(R9), F11
	VDUP  V10.D[0], V10.D2
	VDUP  V11.D[0], V11.D2
	VFMLA V10.D2, V2.D2, V8.D2
	VFMLS V11.D2, V3.D2, V8.D2
	VFMLA V10.D2, V3.D2, V9.D2
	VFMLA V11.D2, V2.D2, V9.D2
	FMOVD 224(R9), F10
	FMOVD 232(R9), F11
	VDUP  V10.D[0], V10.D2
	VDUP  V11.D[0], V11.D2
	VFMLA V10.D2, V4.D2, V8.D2
	VFMLS V11.D2, V5.D2, V8.D2
	VFMLA V10.D2, V5.D2, V9.D2
	VFMLA V11.D2, V4.D2, V9.D2
	FMOVD 240(R9), F10
	FMOVD 248(R9), F11
	VDUP  V10.D[0], V10.D2
	VDUP  V11.D[0], V11.D2
	VFMLA V10.D2, V6.D2, V8.D2
	VFMLS V11.D2, V7.D2, V8.D2
	VFMLA V10.D2, V7.D2, V9.D2
	VFMLA V11.D2, V6.D2, V9.D2
	VST1.P [V8.D2], 16(R6)
	VST1.P [V9.D2], 16(R7)

	SUB  $2, R8, R8
	CBNZ R8, loop
	RET

// --- interleaved low-qubit 1q kernels ---------------------------------------
//
// Qubits 0 and 1 never produce runs long enough for the span bodies above, so
// these kernels vectorize the pair structure itself over 4 float64 per plane
// per iteration (2 amplitude pairs); n > 0 and n%4 == 0, wrappers peel the
// rest. For q=0 the x/y halves alternate element-wise and are split with
// VUZP1/VUZP2 and rejoined with VZIP1/VZIP2; for q=1 each 4-element group is
// [x0 x1 y0 y1], so the two vector registers of a 32-byte load are already
// the x and y halves and no shuffle is needed.

// func neonRot1LoQ0Re(p *float64, n int, ar, br, cr, dr float64)
// Real 1q rotation on qubit 0 over one plane (planes are independent when
// every coefficient is real): x' = ar·x + br·y, y' = cr·x + dr·y.
TEXT ·neonRot1LoQ0Re(SB), NOSPLIT, $0-48
	MOVD  p+0(FP), R0
	MOVD  n+8(FP), R8
	FMOVD ar+16(FP), F0
	FMOVD br+24(FP), F1
	FMOVD cr+32(FP), F2
	FMOVD dr+40(FP), F3
	VDUP  V0.D[0], V0.D2
	VDUP  V1.D[0], V1.D2
	VDUP  V2.D[0], V2.D2
	VDUP  V3.D[0], V3.D2
loop:
	VLD1  (R0), [V4.D2, V5.D2]
	VUZP1 V5.D2, V4.D2, V6.D2 // xs
	VUZP2 V5.D2, V4.D2, V7.D2 // ys
	VEOR  V16.B16, V16.B16, V16.B16
	VFMLA V0.D2, V6.D2, V16.D2 // ar·xs
	VFMLA V1.D2, V7.D2, V16.D2 // + br·ys
	VEOR  V17.B16, V17.B16, V17.B16
	VFMLA V2.D2, V6.D2, V17.D2 // cr·xs
	VFMLA V3.D2, V7.D2, V17.D2 // + dr·ys
	VZIP1 V17.D2, V16.D2, V4.D2
	VZIP2 V17.D2, V16.D2, V5.D2
	VST1.P [V4.D2, V5.D2], 32(R0)
	SUB  $4, R8, R8
	CBNZ R8, loop
	RET

// func neonRot1LoQ1Re(p *float64, n int, ar, br, cr, dr float64)
// As Q0Re for qubit 1: the two registers of each load are the halves.
TEXT ·neonRot1LoQ1Re(SB), NOSPLIT, $0-48
	MOVD  p+0(FP), R0
	MOVD  n+8(FP), R8
	FMOVD ar+16(FP), F0
	FMOVD br+24(FP), F1
	FMOVD cr+32(FP), F2
	FMOVD dr+40(FP), F3
	VDUP  V0.D[0], V0.D2
	VDUP  V1.D[0], V1.D2
	VDUP  V2.D[0], V2.D2
	VDUP  V3.D[0], V3.D2
loop:
	VLD1  (R0), [V4.D2, V5.D2] // xs, ys
	VEOR  V16.B16, V16.B16, V16.B16
	VFMLA V0.D2, V4.D2, V16.D2 // ar·xs
	VFMLA V1.D2, V5.D2, V16.D2 // + br·ys
	VEOR  V17.B16, V17.B16, V17.B16
	VFMLA V2.D2, V4.D2, V17.D2 // cr·xs
	VFMLA V3.D2, V5.D2, V17.D2 // + dr·ys
	VST1.P [V16.D2, V17.D2], 32(R0)
	SUB  $4, R8, R8
	CBNZ R8, loop
	RET

// func neonRot1LoQ0Cx(re, im *float64, n int, ar, ai, br, bi, cr, ci, dr, di float64)
// Complex 1q rotation on qubit 0: full rot2x2 arithmetic on deinterleaved
// pairs of both planes.
TEXT ·neonRot1LoQ0Cx(SB), NOSPLIT, $0-88
	MOVD  re+0(FP), R0
	MOVD  im+8(FP), R1
	MOVD  n+16(FP), R8
	FMOVD ar+24(FP), F0
	FMOVD ai+32(FP), F1
	FMOVD br+40(FP), F2
	FMOVD bi+48(FP), F3
	FMOVD cr+56(FP), F4
	FMOVD ci+64(FP), F5
	FMOVD dr+72(FP), F6
	FMOVD di+80(FP), F7
	VDUP  V0.D[0], V0.D2
	VDUP  V1.D[0], V1.D2
	VDUP  V2.D[0], V2.D2
	VDUP  V3.D[0], V3.D2
	VDUP  V4.D[0], V4.D2
	VDUP  V5.D[0], V5.D2
	VDUP  V6.D[0], V6.D2
	VDUP  V7.D[0], V7.D2
loop:
	VLD1  (R0), [V8.D2, V9.D2]
	VLD1  (R1), [V10.D2, V11.D2]
	VUZP1 V9.D2, V8.D2, V12.D2   // xr
	VUZP2 V9.D2, V8.D2, V13.D2   // yr
	VUZP1 V11.D2, V10.D2, V14.D2 // xm
	VUZP2 V11.D2, V10.D2, V15.D2 // ym
	VEOR  V16.B16, V16.B16, V16.B16
	VFMLA V0.D2, V12.D2, V16.D2 // nxr = ar·xr
	VFMLS V1.D2, V14.D2, V16.D2 // − ai·xm
	VFMLA V2.D2, V13.D2, V16.D2 // + br·yr
	VFMLS V3.D2, V15.D2, V16.D2 // − bi·ym
	VEOR  V17.B16, V17.B16, V17.B16
	VFMLA V4.D2, V12.D2, V17.D2 // nyr = cr·xr
	VFMLS V5.D2, V14.D2, V17.D2 // − ci·xm
	VFMLA V6.D2, V13.D2, V17.D2 // + dr·yr
	VFMLS V7.D2, V15.D2, V17.D2 // − di·ym
	VEOR  V18.B16, V18.B16, V18.B16
	VFMLA V0.D2, V14.D2, V18.D2 // nxi = ar·xm
	VFMLA V1.D2, V12.D2, V18.D2 // + ai·xr
	VFMLA V2.D2, V15.D2, V18.D2 // + br·ym
	VFMLA V3.D2, V13.D2, V18.D2 // + bi·yr
	VEOR  V19.B16, V19.B16, V19.B16
	VFMLA V4.D2, V14.D2, V19.D2 // nyi = cr·xm
	VFMLA V5.D2, V12.D2, V19.D2 // + ci·xr
	VFMLA V6.D2, V15.D2, V19.D2 // + dr·ym
	VFMLA V7.D2, V13.D2, V19.D2 // + di·yr
	VZIP1 V17.D2, V16.D2, V8.D2
	VZIP2 V17.D2, V16.D2, V9.D2
	VZIP1 V19.D2, V18.D2, V10.D2
	VZIP2 V19.D2, V18.D2, V11.D2
	VST1.P [V8.D2, V9.D2], 32(R0)
	VST1.P [V10.D2, V11.D2], 32(R1)
	SUB  $4, R8, R8
	CBNZ R8, loop
	RET

// func neonRot1LoQ1Cx(re, im *float64, n int, ar, ai, br, bi, cr, ci, dr, di float64)
// As Q0Cx for qubit 1 (no shuffles needed).
TEXT ·neonRot1LoQ1Cx(SB), NOSPLIT, $0-88
	MOVD  re+0(FP), R0
	MOVD  im+8(FP), R1
	MOVD  n+16(FP), R8
	FMOVD ar+24(FP), F0
	FMOVD ai+32(FP), F1
	FMOVD br+40(FP), F2
	FMOVD bi+48(FP), F3
	FMOVD cr+56(FP), F4
	FMOVD ci+64(FP), F5
	FMOVD dr+72(FP), F6
	FMOVD di+80(FP), F7
	VDUP  V0.D[0], V0.D2
	VDUP  V1.D[0], V1.D2
	VDUP  V2.D[0], V2.D2
	VDUP  V3.D[0], V3.D2
	VDUP  V4.D[0], V4.D2
	VDUP  V5.D[0], V5.D2
	VDUP  V6.D[0], V6.D2
	VDUP  V7.D[0], V7.D2
loop:
	VLD1  (R0), [V12.D2, V13.D2] // xr, yr
	VLD1  (R1), [V14.D2, V15.D2] // xm, ym
	VEOR  V16.B16, V16.B16, V16.B16
	VFMLA V0.D2, V12.D2, V16.D2 // nxr
	VFMLS V1.D2, V14.D2, V16.D2
	VFMLA V2.D2, V13.D2, V16.D2
	VFMLS V3.D2, V15.D2, V16.D2
	VEOR  V17.B16, V17.B16, V17.B16
	VFMLA V4.D2, V12.D2, V17.D2 // nyr
	VFMLS V5.D2, V14.D2, V17.D2
	VFMLA V6.D2, V13.D2, V17.D2
	VFMLS V7.D2, V15.D2, V17.D2
	VEOR  V18.B16, V18.B16, V18.B16
	VFMLA V0.D2, V14.D2, V18.D2 // nxi
	VFMLA V1.D2, V12.D2, V18.D2
	VFMLA V2.D2, V15.D2, V18.D2
	VFMLA V3.D2, V13.D2, V18.D2
	VEOR  V19.B16, V19.B16, V19.B16
	VFMLA V4.D2, V14.D2, V19.D2 // nyi
	VFMLA V5.D2, V12.D2, V19.D2
	VFMLA V6.D2, V15.D2, V19.D2
	VFMLA V7.D2, V13.D2, V19.D2
	VST1.P [V16.D2, V17.D2], 32(R0)
	VST1.P [V18.D2, V19.D2], 32(R1)
	SUB  $4, R8, R8
	CBNZ R8, loop
	RET

// func neonDiag1LoQ0(re, im *float64, n int, ar, ai, dr, di float64)
// diag(a, d) on qubit 0: x *= a, y *= d on deinterleaved pairs.
TEXT ·neonDiag1LoQ0(SB), NOSPLIT, $0-56
	MOVD  re+0(FP), R0
	MOVD  im+8(FP), R1
	MOVD  n+16(FP), R8
	FMOVD ar+24(FP), F0
	FMOVD ai+32(FP), F1
	FMOVD dr+40(FP), F2
	FMOVD di+48(FP), F3
	VDUP  V0.D[0], V0.D2
	VDUP  V1.D[0], V1.D2
	VDUP  V2.D[0], V2.D2
	VDUP  V3.D[0], V3.D2
loop:
	VLD1  (R0), [V8.D2, V9.D2]
	VLD1  (R1), [V10.D2, V11.D2]
	VUZP1 V9.D2, V8.D2, V12.D2   // xr
	VUZP2 V9.D2, V8.D2, V13.D2   // yr
	VUZP1 V11.D2, V10.D2, V14.D2 // xm
	VUZP2 V11.D2, V10.D2, V15.D2 // ym
	VEOR  V16.B16, V16.B16, V16.B16
	VFMLA V0.D2, V12.D2, V16.D2 // ar·xr
	VFMLS V1.D2, V14.D2, V16.D2 // − ai·xm
	VEOR  V17.B16, V17.B16, V17.B16
	VFMLA V2.D2, V13.D2, V17.D2 // dr·yr
	VFMLS V3.D2, V15.D2, V17.D2 // − di·ym
	VEOR  V18.B16, V18.B16, V18.B16
	VFMLA V0.D2, V14.D2, V18.D2 // ar·xm
	VFMLA V1.D2, V12.D2, V18.D2 // + ai·xr
	VEOR  V19.B16, V19.B16, V19.B16
	VFMLA V2.D2, V15.D2, V19.D2 // dr·ym
	VFMLA V3.D2, V13.D2, V19.D2 // + di·yr
	VZIP1 V17.D2, V16.D2, V8.D2
	VZIP2 V17.D2, V16.D2, V9.D2
	VZIP1 V19.D2, V18.D2, V10.D2
	VZIP2 V19.D2, V18.D2, V11.D2
	VST1.P [V8.D2, V9.D2], 32(R0)
	VST1.P [V10.D2, V11.D2], 32(R1)
	SUB  $4, R8, R8
	CBNZ R8, loop
	RET

// func neonDiag1LoQ1(re, im *float64, n int, ar, ai, dr, di float64)
// As Diag1LoQ0 for qubit 1 (no shuffles needed).
TEXT ·neonDiag1LoQ1(SB), NOSPLIT, $0-56
	MOVD  re+0(FP), R0
	MOVD  im+8(FP), R1
	MOVD  n+16(FP), R8
	FMOVD ar+24(FP), F0
	FMOVD ai+32(FP), F1
	FMOVD dr+40(FP), F2
	FMOVD di+48(FP), F3
	VDUP  V0.D[0], V0.D2
	VDUP  V1.D[0], V1.D2
	VDUP  V2.D[0], V2.D2
	VDUP  V3.D[0], V3.D2
loop:
	VLD1  (R0), [V12.D2, V13.D2] // xr, yr
	VLD1  (R1), [V14.D2, V15.D2] // xm, ym
	VEOR  V16.B16, V16.B16, V16.B16
	VFMLA V0.D2, V12.D2, V16.D2 // ar·xr
	VFMLS V1.D2, V14.D2, V16.D2 // − ai·xm
	VEOR  V17.B16, V17.B16, V17.B16
	VFMLA V2.D2, V13.D2, V17.D2 // dr·yr
	VFMLS V3.D2, V15.D2, V17.D2 // − di·ym
	VEOR  V18.B16, V18.B16, V18.B16
	VFMLA V0.D2, V14.D2, V18.D2 // ar·xm
	VFMLA V1.D2, V12.D2, V18.D2 // + ai·xr
	VEOR  V19.B16, V19.B16, V19.B16
	VFMLA V2.D2, V15.D2, V19.D2 // dr·ym
	VFMLA V3.D2, V13.D2, V19.D2 // + di·yr
	VST1.P [V16.D2, V17.D2], 32(R0)
	VST1.P [V18.D2, V19.D2], 32(R1)
	SUB  $4, R8, R8
	CBNZ R8, loop
	RET
