package statevec

import (
	"hsfsim/internal/gate"
	"hsfsim/internal/par"
)

// DefaultTileQubits sets the cache-blocked sweep tile: 2^13 amplitudes of
// complex128 = 128 KiB, sized to stay resident in a per-core L2 cache while a
// run of gates replays over it.
const DefaultTileQubits = 13

// segStep is one unit of a compiled segment: either a run of low gates swept
// tile by tile, or a single high gate applied as a full-state pass.
type segStep struct {
	gates []gate.Gate // aliases the compiled gate slice
	tiled bool
}

// CompiledSegment is a gate sequence preprocessed for repeated application:
// every k≥3 gate carries its kernel plan, the shared gather-scratch
// requirement is precomputed, and consecutive gates acting only on qubits
// below the tile boundary are grouped into cache-blocked sweeps — one pass
// over the statevector in 2^TileQubits-amplitude tiles applying the whole run
// per tile, instead of one full memory sweep per gate. For states at or below
// one tile (every HSF partition state small enough to be cache-resident
// anyway) compilation degrades to prepared inline application with a single
// shared scratch.
type CompiledSegment struct {
	steps   []segStep
	tileQ   int
	scratch int // max kernel gather-buffer length across all gates
	n       int // qubit count the segment was compiled for
}

// CompileSegment prepares gs (attaching kernel plans) and groups it into
// sweep steps for an n-qubit register. The compiled segment aliases gs, so
// the caller must not mutate the gates afterwards.
func CompileSegment(gs []gate.Gate, n int) *CompiledSegment {
	PrepareGates(gs)
	cs := &CompiledSegment{tileQ: DefaultTileQubits, n: n}
	if cs.tileQ > n {
		cs.tileQ = n
	}
	runStart := -1
	flush := func(end int) {
		if runStart >= 0 {
			cs.steps = append(cs.steps, segStep{gates: gs[runStart:end], tiled: true})
			runStart = -1
		}
	}
	for i := range gs {
		g := &gs[i]
		if plan, ok := g.KernelCache().(*kernelPlan); ok && plan.scratch > cs.scratch {
			cs.scratch = plan.scratch
		}
		if g.MaxQubit() < cs.tileQ {
			if runStart < 0 {
				runStart = i
			}
			continue
		}
		flush(i)
		cs.steps = append(cs.steps, segStep{gates: gs[i : i+1]})
	}
	flush(len(gs))
	return cs
}

// NumSteps returns the number of sweep steps; drive ApplyStep over
// [0,NumSteps) to interleave cancellation checks with bounded-size units of
// work.
func (cs *CompiledSegment) NumSteps() int { return len(cs.steps) }

// NumQubits returns the register size the segment was compiled for.
func (cs *CompiledSegment) NumQubits() int { return cs.n }

// Apply runs the whole compiled segment over v.
func (cs *CompiledSegment) Apply(v Vector) {
	for i := range cs.steps {
		cs.ApplyStep(v, i)
	}
}

// borrow fetches the segment's shared gather scratch from the pool, or nil
// when no gate in the segment needs one.
func (cs *CompiledSegment) borrow() (*[]complex128, []complex128) {
	if cs.scratch == 0 {
		return nil, nil
	}
	return getScratch(cs.scratch)
}

// ApplyStep runs sweep step i over v. Tiled steps iterate aligned
// 2^tileQ-amplitude tiles — each tile is a self-contained sub-register for
// gates below the boundary — applying every gate of the run while the tile is
// cache-hot; tiles are distributed across the parallelism budget. High gates
// run as ordinary full-state passes. Tiles slice both SoA planes, so a tile
// is itself a Vector and the kernels' span dispatch applies within it.
func (cs *CompiledSegment) ApplyStep(v Vector, i int) {
	st := &cs.steps[i]
	if !st.tiled {
		v.ApplyGate(&st.gates[0])
		return
	}
	tiles := v.Len() >> cs.tileQ
	if tiles <= 1 {
		sp, buf := cs.borrow()
		for g := range st.gates {
			v.applyInline(&st.gates[g], buf)
		}
		if sp != nil {
			scratchPool.Put(sp)
		}
		return
	}
	if par.Inner() <= 1 {
		sp, buf := cs.borrow()
		for t := 0; t < tiles; t++ {
			sub := v.Slice(t<<cs.tileQ, (t+1)<<cs.tileQ)
			for g := range st.gates {
				sub.applyInline(&st.gates[g], buf)
			}
		}
		if sp != nil {
			scratchPool.Put(sp)
		}
		return
	}
	parallelRange(tiles, func(lo, hi int) {
		sp, buf := cs.borrow()
		for t := lo; t < hi; t++ {
			sub := v.Slice(t<<cs.tileQ, (t+1)<<cs.tileQ)
			for g := range st.gates {
				sub.applyInline(&st.gates[g], buf)
			}
		}
		if sp != nil {
			scratchPool.Put(sp)
		}
	})
}
