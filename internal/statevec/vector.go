package statevec

import (
	"fmt"
	"math"
)

// Vector is a statevector in split real/imaginary (structure-of-arrays)
// layout: amplitude i is complex(Re[i], Im[i]). This is the canonical storage
// of every hot path — the Schrödinger baseline, the HSF dense backend, the
// path-tree accumulators — because stride-1 sweeps over two flat []float64
// arrays are what the gate kernels (and the Go-assembly kernels planned
// behind the same seam) vectorize over; the interleaved State layout defeats
// that.
//
// The two slices always have equal length. Vector is a pair of slice
// headers: copying a Vector aliases the same storage, exactly like a slice.
// Conversions to and from the interleaved []complex128 layout happen only at
// API edges (FromComplex/ToComplex, the checkpoint encoder, Result
// amplitudes), never inside kernels.
type Vector struct {
	Re, Im []float64
}

// MakeVector returns a zeroed n-amplitude vector. The backing arrays are
// 64-byte aligned on builds that support it (see alignedFloats), so SIMD
// kernels can assume aligned loads on both planes.
func MakeVector(n int) Vector {
	if n < 0 {
		panic(fmt.Sprintf("statevec: invalid vector length %d", n))
	}
	return Vector{Re: alignedFloats(n), Im: alignedFloats(n)}
}

// NewVector returns the all-zeros computational basis state |0...0> on n
// qubits in SoA layout — the Vector analogue of NewState.
func NewVector(nQubits int) Vector {
	if nQubits < 0 || nQubits > 62 {
		panic(fmt.Sprintf("statevec: invalid qubit count %d", nQubits))
	}
	v := MakeVector(1 << nQubits)
	v.Re[0] = 1
	return v
}

// FromComplex converts an interleaved amplitude slice into a freshly
// allocated SoA vector. It is the inbound edge conversion: call it once at an
// API boundary, not inside a loop.
func FromComplex(s []complex128) Vector {
	v := MakeVector(len(s))
	v.CopyFromComplex(s)
	return v
}

// Len returns the number of amplitudes.
func (v Vector) Len() int { return len(v.Re) }

// NumQubits returns n for a vector of length 2^n.
func (v Vector) NumQubits() int {
	n := 0
	for 1<<n < len(v.Re) {
		n++
	}
	return n
}

// Amplitude returns amplitude i as a complex128. This is the element-access
// compatibility API; kernels never use it — they sweep the planes directly.
func (v Vector) Amplitude(i int) complex128 {
	return complex(v.Re[i], v.Im[i])
}

// SetAmplitude stores a into amplitude i.
func (v Vector) SetAmplitude(i int, a complex128) {
	v.Re[i] = real(a)
	v.Im[i] = imag(a)
}

// Clear zeroes every amplitude in place.
func (v Vector) Clear() {
	clear(v.Re)
	clear(v.Im)
}

// SetBasis resets v to |0...0> in place.
func (v Vector) SetBasis() {
	v.Clear()
	v.Re[0] = 1
}

// Clone returns an independent copy.
func (v Vector) Clone() Vector {
	c := MakeVector(v.Len())
	c.CopyFrom(v)
	return c
}

// CopyFrom copies u's amplitudes into v (lengths must match).
func (v Vector) CopyFrom(u Vector) {
	copy(v.Re, u.Re)
	copy(v.Im, u.Im)
}

// Slice returns the sub-vector of amplitudes [lo, hi), sharing storage —
// the Vector analogue of s[lo:hi]. Cache-blocked segment sweeps tile with it.
func (v Vector) Slice(lo, hi int) Vector {
	return Vector{Re: v.Re[lo:hi], Im: v.Im[lo:hi]}
}

// CopyFromComplex fills v from an interleaved slice of the same length.
func (v Vector) CopyFromComplex(s []complex128) {
	re, im := v.Re, v.Im
	if len(s) != len(re) {
		panic("statevec: CopyFromComplex length mismatch")
	}
	for i, a := range s {
		re[i] = real(a)
		im[i] = imag(a)
	}
}

// ToComplex converts v into a freshly allocated interleaved State. It is the
// outbound edge conversion (Result amplitudes, checkpoint encoding).
func (v Vector) ToComplex() State {
	s := make(State, v.Len())
	v.CopyToComplex(s)
	return s
}

// CopyToComplex interleaves v into dst (lengths must match).
func (v Vector) CopyToComplex(dst []complex128) {
	re, im := v.Re, v.Im
	if len(dst) != len(re) {
		panic("statevec: CopyToComplex length mismatch")
	}
	for i := range dst {
		dst[i] = complex(re[i], im[i])
	}
}

// AddToComplex adds v's amplitudes into dst: dst[i] += v[i]. The engine uses
// it to merge a worker's SoA scratch accumulator into the interleaved
// checkpoint accumulator at the merge (edge) boundary.
func (v Vector) AddToComplex(dst []complex128) {
	re, im := v.Re, v.Im
	if len(dst) != len(re) {
		panic("statevec: AddToComplex length mismatch")
	}
	for i := range dst {
		dst[i] += complex(re[i], im[i])
	}
}

// Norm returns the 2-norm of the vector.
func (v Vector) Norm() float64 {
	var sum float64
	re, im := v.Re, v.Im
	im = im[:len(re)]
	for i, r := range re {
		sum += r*r + im[i]*im[i]
	}
	return math.Sqrt(sum)
}

// Probability returns |v[i]|².
func (v Vector) Probability(i int) float64 {
	return v.Re[i]*v.Re[i] + v.Im[i]*v.Im[i]
}

// MaxAbsDiffVec returns max_i |a[i]-b[i]| for two vectors of equal length.
func MaxAbsDiffVec(a, b Vector) float64 {
	if a.Len() != b.Len() {
		panic("statevec: MaxAbsDiffVec dimension mismatch")
	}
	var d float64
	for i := range a.Re {
		dr := a.Re[i] - b.Re[i]
		di := a.Im[i] - b.Im[i]
		if e := math.Hypot(dr, di); e > d {
			d = e
		}
	}
	return d
}

// AccumulateKron adds coeff · (up ⊗ lo) to the first acc.Len() amplitudes of
// acc: acc[a<<nLower|b] += coeff·up[a]·lo[b]. This is the HSF leaf-sweep hot
// loop — per upper amplitude one stride-1 complex AXPY over the lower
// partition, dispatched through the SoA kernel table.
func AccumulateKron(acc Vector, coeff complex128, up, lo Vector, nLower int) {
	m := acc.Len()
	dimLo := 1 << nLower
	cr, ci := real(coeff), imag(coeff)
	for x0 := 0; x0 < m; x0 += dimLo {
		upr, upi := up.Re[x0>>nLower], up.Im[x0>>nLower]
		ur := cr*upr - ci*upi
		ui := cr*upi + ci*upr
		if ur == 0 && ui == 0 {
			continue
		}
		end := x0 + dimLo
		if end > m {
			end = m
		}
		n := end - x0
		ops.axpy(acc.Re[x0:end], acc.Im[x0:end], lo.Re[:n], lo.Im[:n], ur, ui)
	}
}

// AccumulateKronComplex is AccumulateKron with interleaved up/lo factors. The
// DD backend expands leaves into complex scratch buffers (the decision
// diagram's natural output) and folds them into the SoA accumulator through
// this edge conversion without materializing SoA copies.
func AccumulateKronComplex(acc Vector, coeff complex128, up, lo []complex128, nLower int) {
	m := acc.Len()
	dimLo := 1 << nLower
	for x0 := 0; x0 < m; x0 += dimLo {
		u := coeff * up[x0>>nLower]
		if u == 0 {
			continue
		}
		ur, ui := real(u), imag(u)
		end := x0 + dimLo
		if end > m {
			end = m
		}
		accRe, accIm := acc.Re[x0:end], acc.Im[x0:end]
		block := lo[:end-x0]
		for i, lv := range block {
			lr, li := real(lv), imag(lv)
			accRe[i] += ur*lr - ui*li
			accIm[i] += ur*li + ui*lr
		}
	}
}
