package statevec

import (
	"hsfsim/internal/gate"
)

// Vector gate application. Dispatch mirrors State.ApplyGate — the same
// classification arms, the same kernelPlan machinery for k≥3 gates, the same
// sequential/parallelRange split — but every arm sweeps the split real/imag
// planes. Each 1q/2q arm has two bodies: a span path that hands contiguous
// runs of the planes to the startup-selected primitive table (taken when the
// gate's run length 2^q reaches ops.spanMin), and an inline scalar loop for
// low qubits and the purego arm. The scalar loops are the reference
// semantics; soa_parity_test.go pins both against the complex128 kernels at
// 1e-12.

// ApplyGate applies g to the vector in place.
func (v Vector) ApplyGate(g *gate.Gate) {
	switch g.NumQubits() {
	case 1:
		half := v.Len() >> 1
		if sequential(half) {
			v.kernel1(g, 0, half)
			return
		}
		parallelRange(half, func(lo, hi int) { v.kernel1(g, lo, hi) })
	case 2:
		quarter := v.Len() >> 2
		if sequential(quarter) {
			v.kernel2(g, 0, quarter)
			return
		}
		parallelRange(quarter, func(lo, hi int) { v.kernel2(g, lo, hi) })
	default:
		v.applyK(g)
	}
}

// ApplyAll applies a sequence of gates in order.
func (v Vector) ApplyAll(gs []gate.Gate) {
	for i := range gs {
		v.ApplyGate(&gs[i])
	}
}

// applyInline applies g on the caller's goroutine with no parallel split,
// borrowing scratch for k≥3 kernels that gather (the k-qubit kernels gather
// into complex scratch and scatter back to the planes, so the buffer type is
// shared with the State path). A nil or undersized scratch falls back to the
// pool.
func (v Vector) applyInline(g *gate.Gate, scratch []complex128) {
	switch g.NumQubits() {
	case 1:
		v.kernel1(g, 0, v.Len()>>1)
	case 2:
		v.kernel2(g, 0, v.Len()>>2)
	default:
		plan := planOf(g)
		n := plan.domain(v.Len())
		if plan.scratch > 0 && len(scratch) < plan.scratch {
			sp, buf := getScratch(plan.scratch)
			v.kernelK(g, plan, 0, n, buf)
			scratchPool.Put(sp)
			return
		}
		v.kernelK(g, plan, 0, n, scratch)
	}
}

// kernel1 applies a single-qubit gate to the half-blocks [lo,hi), choosing
// the same structure arms as State.kernel1.
func (v Vector) kernel1(g *gate.Gate, lo, hi int) {
	q := g.Qubits[0]
	m := g.Matrix.Data
	switch {
	case g.Diagonal && g.Controls != 0:
		v.phase1(m[3], q, lo, hi)
	case g.Diagonal:
		v.diag1(m[0], m[3], q, lo, hi)
	case g.Perm != nil && g.PermPhase == nil:
		v.perm1(q, lo, hi)
	case g.Perm != nil:
		v.permPhase1(m[1], m[2], q, lo, hi)
	default:
		v.rot1(m[0], m[1], m[2], m[3], q, lo, hi)
	}
}

// span1 visits the contiguous runs covering half-blocks [lo,hi) for qubit q:
// each run is n consecutive amplitudes starting at i0 (bit q clear) paired
// with the run at i0|mask. Callers iterate it open-coded (no closures — the
// sequential path must stay allocation-free):
//
//	for o := lo; o < hi; {
//		g := o >> q
//		end := min((g+1)<<q, hi)
//		i0 := g<<(q+1) | (o & (mask - 1))
//		n := end - o
//		... spans [i0, i0+n) and [i0+mask, i0+mask+n) ...
//		o = end
//	}
//
// Adding j < n to i0 never carries into bit q, so both spans are contiguous.

// phase1: diag(1, d) — scale only the bit-set run of each pair.
func (v Vector) phase1(d complex128, q, lo, hi int) {
	mask := 1 << q
	dr, di := real(d), imag(d)
	if sm := ops.spanMin; sm > 0 && mask >= sm {
		re, im := v.Re, v.Im
		for o := lo; o < hi; {
			g := o >> q
			end := (g + 1) << q
			if end > hi {
				end = hi
			}
			i1 := g<<(q+1) | (o & (mask - 1)) | mask
			n := end - o
			ops.scale(re[i1:i1+n], im[i1:i1+n], dr, di)
			o = end
		}
		return
	}
	if q < 2 && ops.diag1lo != nil {
		ops.diag1lo(v.Re, v.Im, q, lo, hi, 1, 0, dr, di)
		return
	}
	re, im := v.Re, v.Im
	for o := lo; o < hi; o++ {
		i := (o>>q)<<(q+1) | (o & (mask - 1)) | mask
		r, m := re[i], im[i]
		re[i] = dr*r - di*m
		im[i] = dr*m + di*r
	}
}

// diag1: diag(a, d) with no unit entry (RZ).
func (v Vector) diag1(a, d complex128, q, lo, hi int) {
	mask := 1 << q
	ar, ai := real(a), imag(a)
	dr, di := real(d), imag(d)
	if sm := ops.spanMin; sm > 0 && mask >= sm {
		re, im := v.Re, v.Im
		for o := lo; o < hi; {
			g := o >> q
			end := (g + 1) << q
			if end > hi {
				end = hi
			}
			i0 := g<<(q+1) | (o & (mask - 1))
			i1 := i0 + mask
			n := end - o
			ops.scale(re[i0:i0+n], im[i0:i0+n], ar, ai)
			ops.scale(re[i1:i1+n], im[i1:i1+n], dr, di)
			o = end
		}
		return
	}
	if q < 2 && ops.diag1lo != nil {
		ops.diag1lo(v.Re, v.Im, q, lo, hi, ar, ai, dr, di)
		return
	}
	re, im := v.Re, v.Im
	for o := lo; o < hi; o++ {
		i0 := (o>>q)<<(q+1) | (o & (mask - 1))
		i1 := i0 | mask
		r0, m0 := re[i0], im[i0]
		re[i0] = ar*r0 - ai*m0
		im[i0] = ar*m0 + ai*r0
		r1, m1 := re[i1], im[i1]
		re[i1] = dr*r1 - di*m1
		im[i1] = dr*m1 + di*r1
	}
}

// perm1: the bit flip (X) — swap paired runs, no arithmetic.
func (v Vector) perm1(q, lo, hi int) {
	mask := 1 << q
	if sm := ops.spanMin; sm > 0 && mask >= sm {
		re, im := v.Re, v.Im
		for o := lo; o < hi; {
			g := o >> q
			end := (g + 1) << q
			if end > hi {
				end = hi
			}
			i0 := g<<(q+1) | (o & (mask - 1))
			i1 := i0 + mask
			n := end - o
			ops.swap(re[i0:i0+n], im[i0:i0+n], re[i1:i1+n], im[i1:i1+n])
			o = end
		}
		return
	}
	re, im := v.Re, v.Im
	for o := lo; o < hi; o++ {
		i0 := (o>>q)<<(q+1) | (o & (mask - 1))
		i1 := i0 | mask
		re[i0], re[i1] = re[i1], re[i0]
		im[i0], im[i1] = im[i1], im[i0]
	}
}

// permPhase1: antidiagonal (b over c) — a flip with one multiply per move (Y).
func (v Vector) permPhase1(b, c complex128, q, lo, hi int) {
	mask := 1 << q
	br, bi := real(b), imag(b)
	cr, ci := real(c), imag(c)
	if sm := ops.spanMin; sm > 0 && mask >= sm {
		re, im := v.Re, v.Im
		for o := lo; o < hi; {
			g := o >> q
			end := (g + 1) << q
			if end > hi {
				end = hi
			}
			i0 := g<<(q+1) | (o & (mask - 1))
			i1 := i0 + mask
			n := end - o
			ops.cross(re[i0:i0+n], im[i0:i0+n], re[i1:i1+n], im[i1:i1+n], br, bi, cr, ci)
			o = end
		}
		return
	}
	re, im := v.Re, v.Im
	for o := lo; o < hi; o++ {
		i0 := (o>>q)<<(q+1) | (o & (mask - 1))
		i1 := i0 | mask
		x, xm := re[i0], im[i0]
		y, ym := re[i1], im[i1]
		re[i0] = br*y - bi*ym
		im[i0] = br*ym + bi*y
		re[i1] = cr*x - ci*xm
		im[i1] = cr*xm + ci*x
	}
}

func (v Vector) rot1(a, b, c, d complex128, q, lo, hi int) {
	mask := 1 << q
	ar, ai := real(a), imag(a)
	br, bi := real(b), imag(b)
	cr, ci := real(c), imag(c)
	dr, di := real(d), imag(d)
	if sm := ops.spanMin; sm > 0 && mask >= sm {
		re, im := v.Re, v.Im
		for o := lo; o < hi; {
			g := o >> q
			end := (g + 1) << q
			if end > hi {
				end = hi
			}
			i0 := g<<(q+1) | (o & (mask - 1))
			i1 := i0 + mask
			n := end - o
			ops.rot2x2(re[i0:i0+n], im[i0:i0+n], re[i1:i1+n], im[i1:i1+n],
				ar, ai, br, bi, cr, ci, dr, di)
			o = end
		}
		return
	}
	if q < 2 && ops.rot1lo != nil {
		ops.rot1lo(v.Re, v.Im, q, lo, hi, ar, ai, br, bi, cr, ci, dr, di)
		return
	}
	re, im := v.Re, v.Im
	for o := lo; o < hi; o++ {
		i0 := (o>>q)<<(q+1) | (o & (mask - 1))
		i1 := i0 | mask
		x, xm := re[i0], im[i0]
		y, ym := re[i1], im[i1]
		re[i0] = ar*x - ai*xm + br*y - bi*ym
		im[i0] = ar*xm + ai*x + br*ym + bi*y
		re[i1] = cr*x - ci*xm + dr*y - di*ym
		im[i1] = cr*xm + ci*x + dr*ym + di*y
	}
}

// kernel2 applies a two-qubit gate to the quarter-blocks [lo,hi), same arm
// selection as State.kernel2.
func (v Vector) kernel2(g *gate.Gate, lo, hi int) {
	m := g.Matrix.Data
	q0, q1 := g.Qubits[0], g.Qubits[1]
	switch {
	case g.Diagonal:
		v.diag2(m, g.Controls, q0, q1, lo, hi)
	case g.Perm != nil:
		v.perm2(g, lo, hi)
	case g.Controls == 1:
		v.ctrl2(m[5], m[7], m[13], m[15], 1<<q0, 1<<q1, q0, q1, lo, hi)
	case g.Controls == 2:
		v.ctrl2(m[10], m[11], m[14], m[15], 1<<q1, 1<<q0, q0, q1, lo, hi)
	default:
		v.rot2(m, q0, q1, lo, hi)
	}
}

// span2 analogue of span1: quarter-blocks [lo,hi) decompose into runs of
// length up to 2^pLo; within one run the four offsets base, base|m0, base|m1,
// base|m0|m1 each advance contiguously (the run index only occupies bits
// below pLo, so ORing the gate-bit masks never collides with it).

func (v Vector) diag2(m []complex128, ctrl, q0, q1, lo, hi int) {
	m0, m1 := 1<<q0, 1<<q1
	pLo, pHi := order2(q0, q1)
	d0, d1, d2, d3 := m[0], m[5], m[10], m[15]
	if sm := ops.spanMin; sm > 0 && 1<<pLo >= sm {
		re, im := v.Re, v.Im
		for o := lo; o < hi; {
			g := o >> pLo
			end := (g + 1) << pLo
			if end > hi {
				end = hi
			}
			base := insert2(o, pLo, pHi)
			n := end - o
			switch ctrl {
			case 3:
				i := base | m0 | m1
				ops.scale(re[i:i+n], im[i:i+n], real(d3), imag(d3))
			case 1:
				i := base | m0
				ops.scale(re[i:i+n], im[i:i+n], real(d1), imag(d1))
				i |= m1
				ops.scale(re[i:i+n], im[i:i+n], real(d3), imag(d3))
			case 2:
				i := base | m1
				ops.scale(re[i:i+n], im[i:i+n], real(d2), imag(d2))
				i |= m0
				ops.scale(re[i:i+n], im[i:i+n], real(d3), imag(d3))
			default:
				ops.scale(re[base:base+n], im[base:base+n], real(d0), imag(d0))
				i := base | m0
				ops.scale(re[i:i+n], im[i:i+n], real(d1), imag(d1))
				i = base | m1
				ops.scale(re[i:i+n], im[i:i+n], real(d2), imag(d2))
				i |= m0
				ops.scale(re[i:i+n], im[i:i+n], real(d3), imag(d3))
			}
			o = end
		}
		return
	}
	re, im := v.Re, v.Im
	mulAt := func(i int, c complex128) {
		cr, ci := real(c), imag(c)
		r, mm := re[i], im[i]
		re[i] = cr*r - ci*mm
		im[i] = cr*mm + ci*r
	}
	switch ctrl {
	case 3:
		for o := lo; o < hi; o++ {
			mulAt(insert2(o, pLo, pHi)|m0|m1, d3)
		}
	case 1:
		for o := lo; o < hi; o++ {
			i := insert2(o, pLo, pHi) | m0
			mulAt(i, d1)
			mulAt(i|m1, d3)
		}
	case 2:
		for o := lo; o < hi; o++ {
			i := insert2(o, pLo, pHi) | m1
			mulAt(i, d2)
			mulAt(i|m0, d3)
		}
	default:
		for o := lo; o < hi; o++ {
			i := insert2(o, pLo, pHi)
			mulAt(i, d0)
			mulAt(i|m0, d1)
			mulAt(i|m1, d2)
			mulAt(i|m0|m1, d3)
		}
	}
}

// ctrl2 applies the 2×2 submatrix to the control-satisfied run pair.
func (v Vector) ctrl2(u00, u01, u10, u11 complex128, ctrlMask, tgtMask, q0, q1, lo, hi int) {
	pLo, pHi := order2(q0, q1)
	ar, ai := real(u00), imag(u00)
	br, bi := real(u01), imag(u01)
	cr, ci := real(u10), imag(u10)
	dr, di := real(u11), imag(u11)
	if sm := ops.spanMin; sm > 0 && 1<<pLo >= sm {
		re, im := v.Re, v.Im
		for o := lo; o < hi; {
			g := o >> pLo
			end := (g + 1) << pLo
			if end > hi {
				end = hi
			}
			ia := insert2(o, pLo, pHi) | ctrlMask
			ib := ia | tgtMask
			n := end - o
			ops.rot2x2(re[ia:ia+n], im[ia:ia+n], re[ib:ib+n], im[ib:ib+n],
				ar, ai, br, bi, cr, ci, dr, di)
			o = end
		}
		return
	}
	re, im := v.Re, v.Im
	for o := lo; o < hi; o++ {
		ia := insert2(o, pLo, pHi) | ctrlMask
		ib := ia | tgtMask
		x, xm := re[ia], im[ia]
		y, ym := re[ib], im[ib]
		re[ia] = ar*x - ai*xm + br*y - bi*ym
		im[ia] = ar*xm + ai*x + br*ym + bi*y
		re[ib] = cr*x - ci*xm + dr*y - di*ym
		im[ib] = cr*xm + ci*x + dr*ym + di*y
	}
}

// perm2 applies a two-qubit (phase-)permutation; the common single
// transposition (CNOT, SWAP, ISWAP) runs as paired-span cross/swap calls.
func (v Vector) perm2(g *gate.Gate, lo, hi int) {
	perm := g.Perm
	ph := g.PermPhase
	q0, q1 := g.Qubits[0], g.Qubits[1]
	pLo, pHi := order2(q0, q1)
	off := [4]int{0, 1 << q0, 1 << q1, 1<<q0 | 1<<q1}
	a, b := -1, -1
	simple := true
	for c := 0; c < 4; c++ {
		if perm[c] == c {
			if ph != nil && ph[c] != 1 {
				simple = false
			}
			continue
		}
		if a < 0 {
			a = c
		} else if b < 0 {
			b = c
		} else {
			simple = false
		}
	}
	if simple && b >= 0 && perm[a] == b {
		pa, pb := complex128(1), complex128(1)
		if ph != nil {
			pa, pb = ph[a], ph[b]
		}
		offA, offB := off[a], off[b]
		re, im := v.Re, v.Im
		if sm := ops.spanMin; sm > 0 && 1<<pLo >= sm {
			pure := pa == 1 && pb == 1
			for o := lo; o < hi; {
				gg := o >> pLo
				end := (gg + 1) << pLo
				if end > hi {
					end = hi
				}
				i := insert2(o, pLo, pHi)
				ia, ib := i|offA, i|offB
				n := end - o
				if pure {
					ops.swap(re[ia:ia+n], im[ia:ia+n], re[ib:ib+n], im[ib:ib+n])
				} else {
					// new[a] = pb·old[b], new[b] = pa·old[a] — cross with
					// x = span a, y = span b.
					ops.cross(re[ia:ia+n], im[ia:ia+n], re[ib:ib+n], im[ib:ib+n],
						real(pb), imag(pb), real(pa), imag(pa))
				}
				o = end
			}
			return
		}
		paR, paI := real(pa), imag(pa)
		pbR, pbI := real(pb), imag(pb)
		for o := lo; o < hi; o++ {
			i := insert2(o, pLo, pHi)
			ia, ib := i|offA, i|offB
			x, xm := re[ia], im[ia]
			y, ym := re[ib], im[ib]
			re[ia] = pbR*y - pbI*ym
			im[ia] = pbR*ym + pbI*y
			re[ib] = paR*x - paI*xm
			im[ib] = paR*xm + paI*x
		}
		return
	}
	re, im := v.Re, v.Im
	for o := lo; o < hi; o++ {
		i := insert2(o, pLo, pHi)
		var tr, ti [4]float64
		for c := 0; c < 4; c++ {
			idx := i | off[c]
			r, m := re[idx], im[idx]
			if ph != nil {
				pr, pi := real(ph[c]), imag(ph[c])
				r, m = pr*r-pi*m, pr*m+pi*r
			}
			tr[perm[c]], ti[perm[c]] = r, m
		}
		for c := 0; c < 4; c++ {
			idx := i | off[c]
			re[idx], im[idx] = tr[c], ti[c]
		}
	}
}

func (v Vector) rot2(m []complex128, q0, q1, lo, hi int) {
	m0, m1 := 1<<q0, 1<<q1
	pLo, pHi := order2(q0, q1)
	re, im := v.Re, v.Im
	if sm := ops.spanMin; sm > 0 && 1<<pLo >= sm {
		for o := lo; o < hi; {
			g := o >> pLo
			end := (g + 1) << pLo
			if end > hi {
				end = hi
			}
			i := insert2(o, pLo, pHi)
			i1, i2, i3 := i|m0, i|m1, i|m0|m1
			n := end - o
			ops.rot4x4(re[i:i+n], im[i:i+n], re[i1:i1+n], im[i1:i1+n],
				re[i2:i2+n], im[i2:i2+n], re[i3:i3+n], im[i3:i3+n], m)
			o = end
		}
		return
	}
	for o := lo; o < hi; o++ {
		i := insert2(o, pLo, pHi)
		i1, i2, i3 := i|m0, i|m1, i|m0|m1
		x0 := complex(re[i], im[i])
		x1 := complex(re[i1], im[i1])
		x2 := complex(re[i2], im[i2])
		x3 := complex(re[i3], im[i3])
		b0 := m[0]*x0 + m[1]*x1 + m[2]*x2 + m[3]*x3
		b1 := m[4]*x0 + m[5]*x1 + m[6]*x2 + m[7]*x3
		b2 := m[8]*x0 + m[9]*x1 + m[10]*x2 + m[11]*x3
		b3 := m[12]*x0 + m[13]*x1 + m[14]*x2 + m[15]*x3
		re[i], im[i] = real(b0), imag(b0)
		re[i1], im[i1] = real(b1), imag(b1)
		re[i2], im[i2] = real(b2), imag(b2)
		re[i3], im[i3] = real(b3), imag(b3)
	}
}

// applyK is the general k-qubit dispatcher on the SoA planes. The k≥3
// kernels gather blocks into complex scratch, run the plan's arithmetic in
// complex form (these kernels are structure-dominated, not bandwidth-
// dominated), and scatter back — so they share scratchPool with the State
// path and stay allocation-free per call.
func (v Vector) applyK(g *gate.Gate) {
	plan := planOf(g)
	n := plan.domain(v.Len())
	if sequential(n) {
		if plan.scratch == 0 {
			v.kernelK(g, plan, 0, n, nil)
			return
		}
		sp, buf := getScratch(plan.scratch)
		v.kernelK(g, plan, 0, n, buf)
		scratchPool.Put(sp)
		return
	}
	parallelRange(n, func(lo, hi int) {
		if plan.scratch == 0 {
			v.kernelK(g, plan, lo, hi, nil)
			return
		}
		sp, buf := getScratch(plan.scratch)
		v.kernelK(g, plan, lo, hi, buf)
		scratchPool.Put(sp)
	})
}

// kernelK runs the plan's kernel over blocks [lo,hi) of the plan's domain.
func (v Vector) kernelK(g *gate.Gate, p *kernelPlan, lo, hi int, in []complex128) {
	switch p.kind {
	case planDiag:
		v.mulDiagK(g.Qubits, p.diag, lo, hi)
	case planCtrlDiag:
		v.ctrlDiagK(p, lo, hi)
	case planPerm:
		v.permK(p, lo, hi)
	case planCtrl:
		v.ctrlK(p, lo, hi, in)
	case planSparse:
		v.sparseK(p, lo, hi, in)
	default:
		v.rotK(g.Matrix.Data, p, p.k, lo, hi, in)
	}
}

func (v Vector) mulDiagK(qubits []int, diag []complex128, lo, hi int) {
	re, im := v.Re, v.Im
	for i := lo; i < hi; i++ {
		t := 0
		for j, q := range qubits {
			t |= ((i >> q) & 1) << j
		}
		dr, di := real(diag[t]), imag(diag[t])
		r, m := re[i], im[i]
		re[i] = dr*r - di*m
		im[i] = dr*m + di*r
	}
}

func (v Vector) ctrlDiagK(p *kernelPlan, lo, hi int) {
	re, im := v.Re, v.Im
	for o := lo; o < hi; o++ {
		i := o
		for _, q := range p.ctrlSorted {
			i = (i>>q)<<(q+1) | (i & (1<<q - 1)) | 1<<q
		}
		u := 0
		for j, q := range p.freeQubits {
			u |= ((i >> q) & 1) << j
		}
		dr, di := real(p.diag[u]), imag(p.diag[u])
		r, m := re[i], im[i]
		re[i] = dr*r - di*m
		im[i] = dr*m + di*r
	}
}

func (v Vector) permK(p *kernelPlan, lo, hi int) {
	re, im := v.Re, v.Im
	// Single-transposition fast path (CCX and friends): one 2-cycle plus
	// optional fixed-state phases. Free-bit runs below the lowest gate qubit
	// are contiguous, so the cycle is a paired-span swap/cross and each fixed
	// phase a span scale — the same shape perm2 uses for CNOT.
	if len(p.cycStart) == 2 && p.cycStart[1]-p.cycStart[0] == 2 {
		pLo := p.sorted[0]
		if sm := ops.spanMin; sm > 0 && 1<<pLo >= sm {
			offA, offB := p.cycNode[0], p.cycNode[1]
			pa, pb := complex128(1), complex128(1)
			if p.cycPhase != nil {
				pa, pb = p.cycPhase[0], p.cycPhase[1]
			}
			pure := pa == 1 && pb == 1
			for o := lo; o < hi; {
				g := o >> pLo
				end := (g + 1) << pLo
				if end > hi {
					end = hi
				}
				base := o
				for _, q := range p.sorted {
					base = (base>>q)<<(q+1) | (base & (1<<q - 1))
				}
				ia, ib := base|offA, base|offB
				n := end - o
				if pure {
					ops.swap(re[ia:ia+n], im[ia:ia+n], re[ib:ib+n], im[ib:ib+n])
				} else {
					// The cycle moves pa·old[a] into b and the carried
					// pb·old[b] into a: with x = span a and y = span b that
					// is cross's x' = pb·y, y' = pa·x.
					ops.cross(re[ia:ia+n], im[ia:ia+n], re[ib:ib+n], im[ib:ib+n],
						real(pb), imag(pb), real(pa), imag(pa))
				}
				for i, off := range p.fixOff {
					idx := base | off
					ops.scale(re[idx:idx+n], im[idx:idx+n],
						real(p.fixPhase[i]), imag(p.fixPhase[i]))
				}
				o = end
			}
			return
		}
	}
	for o := lo; o < hi; o++ {
		base := o
		for _, q := range p.sorted {
			base = (base>>q)<<(q+1) | (base & (1<<q - 1))
		}
		for ci := 0; ci+1 < len(p.cycStart); ci++ {
			st, en := p.cycStart[ci], p.cycStart[ci+1]
			last := en - 1
			li := base | p.cycNode[last]
			carryR, carryI := re[li], im[li]
			for i := last; i > st; i-- {
				si := base | p.cycNode[i-1]
				r, m := re[si], im[si]
				if p.cycPhase != nil {
					pr, pi := real(p.cycPhase[i-1]), imag(p.cycPhase[i-1])
					r, m = pr*r-pi*m, pr*m+pi*r
				}
				di := base | p.cycNode[i]
				re[di], im[di] = r, m
			}
			if p.cycPhase != nil {
				pr, pi := real(p.cycPhase[last]), imag(p.cycPhase[last])
				carryR, carryI = pr*carryR-pi*carryI, pr*carryI+pi*carryR
			}
			si := base | p.cycNode[st]
			re[si], im[si] = carryR, carryI
		}
		for i, off := range p.fixOff {
			idx := base | off
			pr, pi := real(p.fixPhase[i]), imag(p.fixPhase[i])
			r, m := re[idx], im[idx]
			re[idx] = pr*r - pi*m
			im[idx] = pr*m + pi*r
		}
	}
}

func (v Vector) ctrlK(p *kernelPlan, lo, hi int, in []complex128) {
	fdim := len(p.freeOff)
	re, im := v.Re, v.Im
	for o := lo; o < hi; o++ {
		base := o
		for _, q := range p.sorted {
			base = (base>>q)<<(q+1) | (base & (1<<q - 1))
		}
		base |= p.ctrlOff
		for u := 0; u < fdim; u++ {
			i := base | p.freeOff[u]
			in[u] = complex(re[i], im[i])
		}
		for u := 0; u < fdim; u++ {
			row := p.sub[u*fdim : (u+1)*fdim]
			var acc complex128
			for w := 0; w < fdim; w++ {
				acc += row[w] * in[w]
			}
			i := base | p.freeOff[u]
			re[i], im[i] = real(acc), imag(acc)
		}
	}
}

func (v Vector) sparseK(p *kernelPlan, lo, hi int, in []complex128) {
	kdim := len(p.offsets)
	re, im := v.Re, v.Im
	for o := lo; o < hi; o++ {
		base := o
		for _, q := range p.sorted {
			base = (base>>q)<<(q+1) | (base & (1<<q - 1))
		}
		for t := 0; t < kdim; t++ {
			i := base | p.offsets[t]
			in[t] = complex(re[i], im[i])
		}
		for ri, r := range p.rows {
			var acc complex128
			for e := p.rowStart[ri]; e < p.rowStart[ri+1]; e++ {
				acc += p.vals[e] * in[p.cols[e]]
			}
			i := base | p.offsets[r]
			re[i], im[i] = real(acc), imag(acc)
		}
	}
}

func (v Vector) rotK(m []complex128, plan *kernelPlan, k, lo, hi int, in []complex128) {
	kdim := 1 << k
	re, im := v.Re, v.Im
	for o := lo; o < hi; o++ {
		base := o
		for _, p := range plan.sorted {
			base = (base>>p)<<(p+1) | (base & (1<<p - 1))
		}
		for t := 0; t < kdim; t++ {
			i := base | plan.offsets[t]
			in[t] = complex(re[i], im[i])
		}
		for t := 0; t < kdim; t++ {
			row := m[t*kdim : (t+1)*kdim]
			var acc complex128
			for u := 0; u < kdim; u++ {
				acc += row[u] * in[u]
			}
			i := base | plan.offsets[t]
			re[i], im[i] = real(acc), imag(acc)
		}
	}
}
