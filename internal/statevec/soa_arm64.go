//go:build !purego

package statevec

import "hsfsim/internal/cpufeat"

// NEON (ASIMD) arm. The assembly bodies (soa_arm64.s; generator notes under
// asm/) process 2 float64 lanes per 128-bit vector register. ASIMD is
// baseline ARMv8 so the probe always admits the arm on arm64, but the gate
// stays explicit to keep the registry uniform. As on amd64, each wrapper
// picks the real-coefficient entry point when the imaginary parts are
// exactly zero, hands the largest even-length head to the assembly, and
// finishes the at-most-one-element tail inline. The bodies use fused
// multiply-accumulate (FMLA/FMLS), so results can differ from the
// span/scalar arms in the last ulp — parity is checked at 1e-12.

// neonSpanMin is the run length at which dispatching into the assembly beats
// the inlined scalar loop. As on amd64, the callers' scalar fallback
// recomputes the strided index per element while the span path computes it
// once per run, so the assembly arm profitably dispatches runs half as short
// as the Go span arm.
const neonSpanMin = 4

// archArms returns the arm64 assembly candidates, best-first.
func archArms() []kernelOps {
	if !cpufeat.ARM64.HasASIMD {
		return nil
	}
	return []kernelOps{{
		name:    "neon",
		spanMin: neonSpanMin,
		scale:   neonScale,
		rot2x2:  neonRot2x2,
		swap:    neonSwap,
		cross:   neonCross,
		axpy:    neonAxpy,
		rot4x4:  neonRot4x4,
		rot1lo:  neonRot1Lo,
		diag1lo: neonDiag1Lo,
	}}
}

//go:noescape
func neonScaleRe(xr, xi *float64, n int, cr float64)

//go:noescape
func neonScaleCx(xr, xi *float64, n int, cr, ci float64)

//go:noescape
func neonSwapN(xr, xi, yr, yi *float64, n int)

//go:noescape
func neonCrossRe(xr, xi, yr, yi *float64, n int, br, cr float64)

//go:noescape
func neonCrossCx(xr, xi, yr, yi *float64, n int, br, bi, cr, ci float64)

//go:noescape
func neonAxpyRe(dstRe, dstIm, srcRe, srcIm *float64, n int, cr float64)

//go:noescape
func neonAxpyCx(dstRe, dstIm, srcRe, srcIm *float64, n int, cr, ci float64)

//go:noescape
func neonRot2x2Re(xr, xi, yr, yi *float64, n int, ar, br, cr, dr float64)

//go:noescape
func neonRot2x2Cx(xr, xi, yr, yi *float64, n int, ar, ai, br, bi, cr, ci, dr, di float64)

//go:noescape
func neonRot4x4N(x0r, x0i, x1r, x1i, x2r, x2i, x3r, x3i *float64, n int, m *complex128)

//go:noescape
func neonRot1LoQ0Re(p *float64, n int, ar, br, cr, dr float64)

//go:noescape
func neonRot1LoQ1Re(p *float64, n int, ar, br, cr, dr float64)

//go:noescape
func neonRot1LoQ0Cx(re, im *float64, n int, ar, ai, br, bi, cr, ci, dr, di float64)

//go:noescape
func neonRot1LoQ1Cx(re, im *float64, n int, ar, ai, br, bi, cr, ci, dr, di float64)

//go:noescape
func neonDiag1LoQ0(re, im *float64, n int, ar, ai, dr, di float64)

//go:noescape
func neonDiag1LoQ1(re, im *float64, n int, ar, ai, dr, di float64)

// neonRot1Lo vectorizes the dense 1q rotation on qubits 0 and 1 — runs too
// short for the span path — over the half-block pairs [lo,hi). The assembly
// processes 4 float64 per plane per iteration (2 amplitude pairs), so the
// wrapper aligns lo to a 2-pair group for q=1 (parallelRange may split at an
// odd pair) and peels the <2-pair tail with the scalar pair body.
func neonRot1Lo(re, im []float64, q, lo, hi int, ar, ai, br, bi, cr, ci, dr, di float64) {
	if q == 1 && lo&1 != 0 && lo < hi {
		rot1Pair(re, im, q, lo, ar, ai, br, bi, cr, ci, dr, di)
		lo++
	}
	f0 := lo << 1
	h := ((hi - lo) << 1) &^ 3
	if h > 0 {
		if ai == 0 && bi == 0 && ci == 0 && di == 0 {
			if q == 0 {
				neonRot1LoQ0Re(&re[f0], h, ar, br, cr, dr)
				neonRot1LoQ0Re(&im[f0], h, ar, br, cr, dr)
			} else {
				neonRot1LoQ1Re(&re[f0], h, ar, br, cr, dr)
				neonRot1LoQ1Re(&im[f0], h, ar, br, cr, dr)
			}
		} else {
			if q == 0 {
				neonRot1LoQ0Cx(&re[f0], &im[f0], h, ar, ai, br, bi, cr, ci, dr, di)
			} else {
				neonRot1LoQ1Cx(&re[f0], &im[f0], h, ar, ai, br, bi, cr, ci, dr, di)
			}
		}
	}
	for o := lo + h>>1; o < hi; o++ {
		rot1Pair(re, im, q, o, ar, ai, br, bi, cr, ci, dr, di)
	}
}

// neonDiag1Lo is the diag(a, d) analogue of neonRot1Lo (phase1 reuses it
// with a = 1).
func neonDiag1Lo(re, im []float64, q, lo, hi int, ar, ai, dr, di float64) {
	if q == 1 && lo&1 != 0 && lo < hi {
		diag1Pair(re, im, q, lo, ar, ai, dr, di)
		lo++
	}
	f0 := lo << 1
	h := ((hi - lo) << 1) &^ 3
	if h > 0 {
		if q == 0 {
			neonDiag1LoQ0(&re[f0], &im[f0], h, ar, ai, dr, di)
		} else {
			neonDiag1LoQ1(&re[f0], &im[f0], h, ar, ai, dr, di)
		}
	}
	for o := lo + h>>1; o < hi; o++ {
		diag1Pair(re, im, q, o, ar, ai, dr, di)
	}
}

func neonScale(xr, xi []float64, cr, ci float64) {
	n := len(xr)
	xi = xi[:n]
	h := n &^ 1
	if h > 0 {
		if ci == 0 {
			neonScaleRe(&xr[0], &xi[0], h, cr)
		} else {
			neonScaleCx(&xr[0], &xi[0], h, cr, ci)
		}
	}
	for i := h; i < n; i++ {
		r, m := xr[i], xi[i]
		xr[i] = cr*r - ci*m
		xi[i] = cr*m + ci*r
	}
}

func neonSwap(xr, xi, yr, yi []float64) {
	n := len(xr)
	xi, yr, yi = xi[:n], yr[:n], yi[:n]
	h := n &^ 1
	if h > 0 {
		neonSwapN(&xr[0], &xi[0], &yr[0], &yi[0], h)
	}
	for i := h; i < n; i++ {
		xr[i], yr[i] = yr[i], xr[i]
		xi[i], yi[i] = yi[i], xi[i]
	}
}

func neonCross(xr, xi, yr, yi []float64, br, bi, cr, ci float64) {
	n := len(xr)
	xi, yr, yi = xi[:n], yr[:n], yi[:n]
	h := n &^ 1
	if h > 0 {
		if bi == 0 && ci == 0 {
			neonCrossRe(&xr[0], &xi[0], &yr[0], &yi[0], h, br, cr)
		} else {
			neonCrossCx(&xr[0], &xi[0], &yr[0], &yi[0], h, br, bi, cr, ci)
		}
	}
	for i := h; i < n; i++ {
		x, xm := xr[i], xi[i]
		y, ym := yr[i], yi[i]
		xr[i] = br*y - bi*ym
		xi[i] = br*ym + bi*y
		yr[i] = cr*x - ci*xm
		yi[i] = cr*xm + ci*x
	}
}

func neonAxpy(dstRe, dstIm, srcRe, srcIm []float64, cr, ci float64) {
	n := len(dstRe)
	dstIm, srcRe, srcIm = dstIm[:n], srcRe[:n], srcIm[:n]
	h := n &^ 1
	if h > 0 {
		if ci == 0 {
			neonAxpyRe(&dstRe[0], &dstIm[0], &srcRe[0], &srcIm[0], h, cr)
		} else {
			neonAxpyCx(&dstRe[0], &dstIm[0], &srcRe[0], &srcIm[0], h, cr, ci)
		}
	}
	for i := h; i < n; i++ {
		s, t := srcRe[i], srcIm[i]
		dstRe[i] += cr*s - ci*t
		dstIm[i] += cr*t + ci*s
	}
}

func neonRot2x2(xr, xi, yr, yi []float64, ar, ai, br, bi, cr, ci, dr, di float64) {
	n := len(xr)
	xi, yr, yi = xi[:n], yr[:n], yi[:n]
	h := n &^ 1
	if h > 0 {
		if ai == 0 && bi == 0 && ci == 0 && di == 0 {
			neonRot2x2Re(&xr[0], &xi[0], &yr[0], &yi[0], h, ar, br, cr, dr)
		} else {
			neonRot2x2Cx(&xr[0], &xi[0], &yr[0], &yi[0], h, ar, ai, br, bi, cr, ci, dr, di)
		}
	}
	for i := h; i < n; i++ {
		x, xm := xr[i], xi[i]
		y, ym := yr[i], yi[i]
		xr[i] = ar*x - ai*xm + br*y - bi*ym
		xi[i] = ar*xm + ai*x + br*ym + bi*y
		yr[i] = cr*x - ci*xm + dr*y - di*ym
		yi[i] = cr*xm + ci*x + dr*ym + di*y
	}
}

func neonRot4x4(x0r, x0i, x1r, x1i, x2r, x2i, x3r, x3i []float64, m []complex128) {
	n := len(x0r)
	x0i, x1r, x1i = x0i[:n], x1r[:n], x1i[:n]
	x2r, x2i, x3r, x3i = x2r[:n], x2i[:n], x3r[:n], x3i[:n]
	h := n &^ 1
	if h > 0 {
		neonRot4x4N(&x0r[0], &x0i[0], &x1r[0], &x1i[0], &x2r[0], &x2i[0], &x3r[0], &x3i[0], h, &m[0])
	}
	if h == n {
		return
	}
	scalarRot4x4(x0r[h:], x0i[h:], x1r[h:], x1i[h:], x2r[h:], x2i[h:], x3r[h:], x3i[h:], m)
}
