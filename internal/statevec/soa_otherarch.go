//go:build !purego && !amd64 && !arm64

package statevec

// No assembly arm on this architecture: the span arm is the best candidate.
func archArms() []kernelOps {
	return nil
}
