//go:build ignore

// Command gen_amd64 regenerates ../soa_amd64.s with avo. See README.md for
// how to run it (avo is intentionally not a module dependency; the committed
// assembly is authoritative). The emitted bodies must keep the contract
// documented there: n > 0, n%4 == 0 (n%8 == 0 for the interleaved low-qubit
// kernels), unaligned VMOVUPD, NOSPLIT $0, VZEROUPPER before RET.
package main

import (
	"fmt"

	. "github.com/mmcloughlin/avo/build"
	. "github.com/mmcloughlin/avo/operand"
	. "github.com/mmcloughlin/avo/reg"
)

// loop emits the canonical span loop around body: index in AX, bound in CX
// (both set up by the caller), 4 lanes per iteration.
func loop(body func(idx GPVirtual)) {
	idx := GP64()
	XORQ(idx, idx)
	n := Load(Param("n"), GP64())
	Label("loop")
	body(idx)
	ADDQ(Imm(4), idx)
	CMPQ(idx, n)
	JLT(LabelRef("loop"))
	VZEROUPPER()
	RET()
}

// span loads a pointer parameter.
func span(name string) GPVirtual { return Load(Param(name), GP64()) }

// bcast broadcasts a float64 parameter into a fresh YMM register.
func bcast(name string) VecVirtual {
	y := YMM()
	VBROADCASTSD(NewParamAddr(name, 0), y) // offset resolved by avo
	return y
}

// at returns the memory operand base[idx*8].
func at(base GPVirtual, idx GPVirtual) Mem {
	return Mem{Base: base, Index: idx, Scale: 8}
}

// cmul emits acc_re/acc_im = (cr + i·ci)·(re + i·im) with fresh accumulators.
func cmul(cr, ci, re, im VecVirtual) (VecVirtual, VecVirtual) {
	ar, ai := YMM(), YMM()
	VMULPD(cr, re, ar)
	VFNMADD231PD(ci, im, ar)
	VMULPD(cr, im, ai)
	VFMADD231PD(ci, re, ai)
	return ar, ai
}

// cfma accumulates (cr + i·ci)·(re + i·im) into (ar, ai).
func cfma(cr, ci, re, im, ar, ai VecVirtual) {
	VFMADD231PD(cr, re, ar)
	VFNMADD231PD(ci, im, ar)
	VFMADD231PD(cr, im, ai)
	VFMADD231PD(ci, re, ai)
}

func genScale() {
	TEXT("avx2ScaleRe", NOSPLIT, "func(xr, xi *float64, n int, cr float64)")
	xr, xi, cr := span("xr"), span("xi"), bcast("cr")
	loop(func(i GPVirtual) {
		for _, p := range []GPVirtual{xr, xi} {
			v := YMM()
			VMOVUPD(at(p, i), v)
			VMULPD(cr, v, v)
			VMOVUPD(v, at(p, i))
		}
	})

	TEXT("avx2ScaleCx", NOSPLIT, "func(xr, xi *float64, n int, cr, ci float64)")
	xr, xi = span("xr"), span("xi")
	cr, ci := bcast("cr"), bcast("ci")
	loop(func(i GPVirtual) {
		r, m := YMM(), YMM()
		VMOVUPD(at(xr, i), r)
		VMOVUPD(at(xi, i), m)
		or, oi := cmul(cr, ci, r, m)
		VMOVUPD(or, at(xr, i))
		VMOVUPD(oi, at(xi, i))
	})
}

func genSwap() {
	TEXT("avx2SwapN", NOSPLIT, "func(xr, xi, yr, yi *float64, n int)")
	xr, xi, yr, yi := span("xr"), span("xi"), span("yr"), span("yi")
	loop(func(i GPVirtual) {
		for _, pair := range [][2]GPVirtual{{xr, yr}, {xi, yi}} {
			a, b := YMM(), YMM()
			VMOVUPD(at(pair[0], i), a)
			VMOVUPD(at(pair[1], i), b)
			VMOVUPD(b, at(pair[0], i))
			VMOVUPD(a, at(pair[1], i))
		}
	})
}

func genCross() {
	TEXT("avx2CrossRe", NOSPLIT, "func(xr, xi, yr, yi *float64, n int, br, cr float64)")
	xr, xi, yr, yi := span("xr"), span("xi"), span("yr"), span("yi")
	br, cr := bcast("br"), bcast("cr")
	loop(func(i GPVirtual) {
		x, xm, y, ym := YMM(), YMM(), YMM(), YMM()
		VMOVUPD(at(xr, i), x)
		VMOVUPD(at(xi, i), xm)
		VMOVUPD(at(yr, i), y)
		VMOVUPD(at(yi, i), ym)
		VMULPD(br, y, y)
		VMULPD(br, ym, ym)
		VMULPD(cr, x, x)
		VMULPD(cr, xm, xm)
		VMOVUPD(y, at(xr, i))
		VMOVUPD(ym, at(xi, i))
		VMOVUPD(x, at(yr, i))
		VMOVUPD(xm, at(yi, i))
	})

	TEXT("avx2CrossCx", NOSPLIT, "func(xr, xi, yr, yi *float64, n int, br, bi, cr, ci float64)")
	xr, xi, yr, yi = span("xr"), span("xi"), span("yr"), span("yi")
	brv, biv, crv, civ := bcast("br"), bcast("bi"), bcast("cr"), bcast("ci")
	loop(func(i GPVirtual) {
		x, xm, y, ym := YMM(), YMM(), YMM(), YMM()
		VMOVUPD(at(xr, i), x)
		VMOVUPD(at(xi, i), xm)
		VMOVUPD(at(yr, i), y)
		VMOVUPD(at(yi, i), ym)
		nxr, nxi := cmul(brv, biv, y, ym)
		nyr, nyi := cmul(crv, civ, x, xm)
		VMOVUPD(nxr, at(xr, i))
		VMOVUPD(nxi, at(xi, i))
		VMOVUPD(nyr, at(yr, i))
		VMOVUPD(nyi, at(yi, i))
	})
}

func genAxpy() {
	TEXT("avx2AxpyRe", NOSPLIT, "func(dstRe, dstIm, srcRe, srcIm *float64, n int, cr float64)")
	dr, di, sr, si := span("dstRe"), span("dstIm"), span("srcRe"), span("srcIm")
	cr := bcast("cr")
	loop(func(i GPVirtual) {
		for _, pair := range [][2]GPVirtual{{dr, sr}, {di, si}} {
			s, d := YMM(), YMM()
			VMOVUPD(at(pair[1], i), s)
			VMOVUPD(at(pair[0], i), d)
			VFMADD231PD(cr, s, d)
			VMOVUPD(d, at(pair[0], i))
		}
	})

	TEXT("avx2AxpyCx", NOSPLIT, "func(dstRe, dstIm, srcRe, srcIm *float64, n int, cr, ci float64)")
	dr, di, sr, si = span("dstRe"), span("dstIm"), span("srcRe"), span("srcIm")
	crv, civ := bcast("cr"), bcast("ci")
	loop(func(i GPVirtual) {
		s, t, ar, ai := YMM(), YMM(), YMM(), YMM()
		VMOVUPD(at(sr, i), s)
		VMOVUPD(at(si, i), t)
		VMOVUPD(at(dr, i), ar)
		VMOVUPD(at(di, i), ai)
		cfma(crv, civ, s, t, ar, ai)
		VMOVUPD(ar, at(dr, i))
		VMOVUPD(ai, at(di, i))
	})
}

func genRot2x2() {
	TEXT("avx2Rot2x2Re", NOSPLIT, "func(xr, xi, yr, yi *float64, n int, ar, br, cr, dr float64)")
	xr, xi, yr, yi := span("xr"), span("xi"), span("yr"), span("yi")
	a, b, c, d := bcast("ar"), bcast("br"), bcast("cr"), bcast("dr")
	loop(func(i GPVirtual) {
		x, xm, y, ym := YMM(), YMM(), YMM(), YMM()
		VMOVUPD(at(xr, i), x)
		VMOVUPD(at(xi, i), xm)
		VMOVUPD(at(yr, i), y)
		VMOVUPD(at(yi, i), ym)
		for _, row := range []struct {
			p, q   VecVirtual // row coefficients
			r0, r1 GPVirtual  // output spans (re, im)
		}{{a, b, xr, xi}, {c, d, yr, yi}} {
			or, oi := YMM(), YMM()
			VMULPD(row.p, x, or)
			VFMADD231PD(row.q, y, or)
			VMULPD(row.p, xm, oi)
			VFMADD231PD(row.q, ym, oi)
			VMOVUPD(or, at(row.r0, i))
			VMOVUPD(oi, at(row.r1, i))
		}
	})

	TEXT("avx2Rot2x2Cx", NOSPLIT, "func(xr, xi, yr, yi *float64, n int, ar, ai, br, bi, cr, ci, dr, di float64)")
	xr, xi, yr, yi = span("xr"), span("xi"), span("yr"), span("yi")
	ar, ai := bcast("ar"), bcast("ai")
	br, bi := bcast("br"), bcast("bi")
	cr, ci := bcast("cr"), bcast("ci")
	dr, di := bcast("dr"), bcast("di")
	loop(func(i GPVirtual) {
		x, xm, y, ym := YMM(), YMM(), YMM(), YMM()
		VMOVUPD(at(xr, i), x)
		VMOVUPD(at(xi, i), xm)
		VMOVUPD(at(yr, i), y)
		VMOVUPD(at(yi, i), ym)
		nxr, nxi := cmul(ar, ai, x, xm)
		cfma(br, bi, y, ym, nxr, nxi)
		nyr, nyi := cmul(cr, ci, x, xm)
		cfma(dr, di, y, ym, nyr, nyi)
		VMOVUPD(nxr, at(xr, i))
		VMOVUPD(nxi, at(xi, i))
		VMOVUPD(nyr, at(yr, i))
		VMOVUPD(nyi, at(yi, i))
	})
}

func genRot4x4() {
	TEXT("avx2Rot4x4N", NOSPLIT, "func(x0r, x0i, x1r, x1i, x2r, x2i, x3r, x3i *float64, n int, m *complex128)")
	ptrs := make([]GPVirtual, 8)
	for k, name := range []string{"x0r", "x0i", "x1r", "x1i", "x2r", "x2i", "x3r", "x3i"} {
		ptrs[k] = span(name)
	}
	m := span("m")
	loop(func(i GPVirtual) {
		in := make([]VecVirtual, 8)
		for k := range in {
			in[k] = YMM()
			VMOVUPD(at(ptrs[k], i), in[k])
		}
		for row := 0; row < 4; row++ {
			ar, ai := YMM(), YMM()
			for col := 0; col < 4; col++ {
				mre, mim := YMM(), YMM()
				off := (row*4 + col) * 16
				VBROADCASTSD(Mem{Base: m, Disp: off}, mre)
				VBROADCASTSD(Mem{Base: m, Disp: off + 8}, mim)
				re, im := in[2*col], in[2*col+1]
				if col == 0 {
					VMULPD(mre, re, ar)
					VFNMADD231PD(mim, im, ar)
					VMULPD(mre, im, ai)
					VFMADD231PD(mim, re, ai)
				} else {
					cfma(mre, mim, re, im, ar, ai)
				}
			}
			VMOVUPD(ar, at(ptrs[2*row], i))
			VMOVUPD(ai, at(ptrs[2*row+1], i))
		}
	})
}

// deint splits the x/y halves of two loaded group registers for the
// interleaved low-qubit kernels: element unpacks for q=0 (pairs alternate
// element-wise), lane shuffles for q=1 (pairs alternate 128-bit lanes).
func deint(q int, a, b VecVirtual) (VecVirtual, VecVirtual) {
	x, y := YMM(), YMM()
	if q == 0 {
		VUNPCKLPD(b, a, x)
		VUNPCKHPD(b, a, y)
	} else {
		VPERM2F128(Imm(0x20), b, a, x)
		VPERM2F128(Imm(0x31), b, a, y)
	}
	return x, y
}

// reint is the inverse of deint: interleave the transformed x/y halves back
// into two storable group registers. The shuffle set is self-inverse, so the
// emitted instructions are the same with the roles of the operands swapped.
func reint(q int, x, y VecVirtual) (VecVirtual, VecVirtual) {
	return deint(q, x, y)
}

// loLoop emits the 8-elements-per-iteration loop the low-qubit kernels use
// (two YMM registers per plane per step).
func loLoop(body func(idx GPVirtual)) {
	idx := GP64()
	XORQ(idx, idx)
	n := Load(Param("n"), GP64())
	Label("loop")
	body(idx)
	ADDQ(Imm(8), idx)
	CMPQ(idx, n)
	JLT(LabelRef("loop"))
	VZEROUPPER()
	RET()
}

func genRot1Lo() {
	for q := 0; q < 2; q++ {
		TEXT(fmt.Sprintf("avx2Rot1LoQ%dRe", q), NOSPLIT, "func(p *float64, n int, ar, br, cr, dr float64)")
		p := span("p")
		a, b, c, d := bcast("ar"), bcast("br"), bcast("cr"), bcast("dr")
		loLoop(func(i GPVirtual) {
			g0, g1 := YMM(), YMM()
			VMOVUPD(at(p, i), g0)
			VMOVUPD(at(p, i).Offset(32), g1)
			xs, ys := deint(q, g0, g1)
			nx, ny := YMM(), YMM()
			VMULPD(xs, a, nx)
			VFMADD231PD(ys, b, nx)
			VMULPD(xs, c, ny)
			VFMADD231PD(ys, d, ny)
			o0, o1 := reint(q, nx, ny)
			VMOVUPD(o0, at(p, i))
			VMOVUPD(o1, at(p, i).Offset(32))
		})
	}
	for q := 0; q < 2; q++ {
		TEXT(fmt.Sprintf("avx2Rot1LoQ%dCx", q), NOSPLIT, "func(re, im *float64, n int, ar, ai, br, bi, cr, ci, dr, di float64)")
		re, im := span("re"), span("im")
		ar, ai := bcast("ar"), bcast("ai")
		br, bi := bcast("br"), bcast("bi")
		cr, ci := bcast("cr"), bcast("ci")
		dr, di := bcast("dr"), bcast("di")
		loLoop(func(i GPVirtual) {
			r0, r1, m0, m1 := YMM(), YMM(), YMM(), YMM()
			VMOVUPD(at(re, i), r0)
			VMOVUPD(at(re, i).Offset(32), r1)
			VMOVUPD(at(im, i), m0)
			VMOVUPD(at(im, i).Offset(32), m1)
			xr, yr := deint(q, r0, r1)
			xm, ym := deint(q, m0, m1)
			nxr, nxi := cmul(ar, ai, xr, xm)
			cfma(br, bi, yr, ym, nxr, nxi)
			nyr, nyi := cmul(cr, ci, xr, xm)
			cfma(dr, di, yr, ym, nyr, nyi)
			o0, o1 := reint(q, nxr, nyr)
			p0, p1 := reint(q, nxi, nyi)
			VMOVUPD(o0, at(re, i))
			VMOVUPD(o1, at(re, i).Offset(32))
			VMOVUPD(p0, at(im, i))
			VMOVUPD(p1, at(im, i).Offset(32))
		})
	}
}

func genDiag1Lo() {
	for q := 0; q < 2; q++ {
		TEXT(fmt.Sprintf("avx2Diag1LoQ%d", q), NOSPLIT, "func(re, im *float64, n int, ar, ai, dr, di float64)")
		re, im := span("re"), span("im")
		ar, ai := bcast("ar"), bcast("ai")
		dr, di := bcast("dr"), bcast("di")
		loLoop(func(i GPVirtual) {
			r0, r1, m0, m1 := YMM(), YMM(), YMM(), YMM()
			VMOVUPD(at(re, i), r0)
			VMOVUPD(at(re, i).Offset(32), r1)
			VMOVUPD(at(im, i), m0)
			VMOVUPD(at(im, i).Offset(32), m1)
			xr, yr := deint(q, r0, r1)
			xm, ym := deint(q, m0, m1)
			nxr, nxi := cmul(ar, ai, xr, xm)
			nyr, nyi := cmul(dr, di, yr, ym)
			o0, o1 := reint(q, nxr, nyr)
			p0, p1 := reint(q, nxi, nyi)
			VMOVUPD(o0, at(re, i))
			VMOVUPD(o1, at(re, i).Offset(32))
			VMOVUPD(p0, at(im, i))
			VMOVUPD(p1, at(im, i).Offset(32))
		})
	}
}

func main() {
	Package("hsfsim/internal/statevec")
	ConstraintExpr("!purego")
	genScale()
	genSwap()
	genCross()
	genAxpy()
	genRot2x2()
	genRot4x4()
	genRot1Lo()
	genDiag1Lo()
	Generate()
}
