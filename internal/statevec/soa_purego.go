//go:build purego

package statevec

// Fallback arm (`-tags purego`): every primitive is the plain scalar
// reference body, spanMin=0 disables span dispatch entirely so the kernels
// run their inline scalar fallback loops, and allocation needs no alignment
// because nothing assumes it. This arm is the portability floor and the
// semantics oracle the parity suite pins the span arm against.

func init() {
	ops = kernelOps{
		name:    "scalar",
		spanMin: 0,
		scale:   scalarScale,
		rot2x2:  scalarRot2x2,
		swap:    scalarSwap,
		cross:   scalarCross,
		axpy:    scalarAxpy,
		rot4x4:  scalarRot4x4,
	}
}

func alignedFloats(n int) []float64 {
	return make([]float64, n)
}
