//go:build purego

package statevec

// Fallback build (`-tags purego`): the only arm is the plain scalar
// reference one — spanMin=0 disables span dispatch entirely so the kernels
// run their inline scalar fallback loops, and allocation needs no alignment
// because nothing assumes it. This arm is the portability floor and the
// semantics oracle the parity suite pins every other arm against.

func buildArms() []kernelOps {
	return []kernelOps{scalarArm()}
}

func alignedFloats(n int) []float64 {
	return make([]float64, n)
}
