package statevec

import (
	"runtime"
	"sync"

	"hsfsim/internal/gate"
)

// parallelThreshold is the state size above which gate application is split
// across goroutines. Below it, goroutine overhead dominates.
const parallelThreshold = 1 << 14

// ApplyGate applies g to the state in place. Gates with one or two qubits use
// specialized kernels; larger gates fall back to a general gather/scatter
// implementation. Application is parallelized across goroutines for large
// states.
func (s State) ApplyGate(g *gate.Gate) {
	switch g.NumQubits() {
	case 1:
		s.apply1(g)
	case 2:
		s.apply2(g)
	default:
		s.applyK(g)
	}
}

// ApplyAll applies a sequence of gates in order.
func (s State) ApplyAll(gs []gate.Gate) {
	for i := range gs {
		s.ApplyGate(&gs[i])
	}
}

// parallelRange runs fn over [0,n) split into contiguous chunks across
// NumCPU goroutines when n is large enough.
func parallelRange(n int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if n < parallelThreshold || workers <= 1 {
		fn(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// apply1 applies a single-qubit gate with a tight two-amplitude kernel.
func (s State) apply1(g *gate.Gate) {
	q := g.Qubits[0]
	m := g.Matrix.Data
	a, b, c, d := m[0], m[1], m[2], m[3]
	mask := 1 << q
	if g.Diagonal {
		parallelRange(len(s), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if i&mask == 0 {
					s[i] *= a
				} else {
					s[i] *= d
				}
			}
		})
		return
	}
	half := len(s) >> 1
	parallelRange(half, func(lo, hi int) {
		for o := lo; o < hi; o++ {
			// Insert a zero bit at position q.
			i0 := (o>>q)<<(q+1) | (o & (mask - 1))
			i1 := i0 | mask
			x, y := s[i0], s[i1]
			s[i0] = a*x + b*y
			s[i1] = c*x + d*y
		}
	})
}

// apply2 applies a two-qubit gate with an unrolled four-amplitude kernel.
func (s State) apply2(g *gate.Gate) {
	q0, q1 := g.Qubits[0], g.Qubits[1]
	m := g.Matrix.Data
	m0, m1 := 1<<q0, 1<<q1
	if g.Diagonal {
		d0, d1, d2, d3 := m[0], m[5], m[10], m[15]
		parallelRange(len(s), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				t := 0
				if i&m0 != 0 {
					t |= 1
				}
				if i&m1 != 0 {
					t |= 2
				}
				switch t {
				case 0:
					s[i] *= d0
				case 1:
					s[i] *= d1
				case 2:
					s[i] *= d2
				default:
					s[i] *= d3
				}
			}
		})
		return
	}
	// Sort positions for bit insertion.
	pLo, pHi := q0, q1
	if pLo > pHi {
		pLo, pHi = pHi, pLo
	}
	quarter := len(s) >> 2
	parallelRange(quarter, func(lo, hi int) {
		for o := lo; o < hi; o++ {
			// Insert zero bits at pLo then pHi (ascending).
			i := (o>>pLo)<<(pLo+1) | (o & (1<<pLo - 1))
			i = (i>>pHi)<<(pHi+1) | (i & (1<<pHi - 1))
			i0 := i
			i1 := i | m0
			i2 := i | m1
			i3 := i | m0 | m1
			x0, x1, x2, x3 := s[i0], s[i1], s[i2], s[i3]
			s[i0] = m[0]*x0 + m[1]*x1 + m[2]*x2 + m[3]*x3
			s[i1] = m[4]*x0 + m[5]*x1 + m[6]*x2 + m[7]*x3
			s[i2] = m[8]*x0 + m[9]*x1 + m[10]*x2 + m[11]*x3
			s[i3] = m[12]*x0 + m[13]*x1 + m[14]*x2 + m[15]*x3
		}
	})
}

// applyK is the general k-qubit kernel.
func (s State) applyK(g *gate.Gate) {
	k := g.NumQubits()
	kdim := 1 << k
	m := g.Matrix.Data

	if g.Diagonal {
		// Diagonal gates (e.g. analytic RZZ-cascade terms, CCZ) multiply
		// each amplitude by the diagonal entry selected by the gate bits.
		diag := make([]complex128, kdim)
		for t := 0; t < kdim; t++ {
			diag[t] = m[t*kdim+t]
		}
		qubits := g.Qubits
		parallelRange(len(s), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				t := 0
				for j, q := range qubits {
					t |= ((i >> q) & 1) << j
				}
				s[i] *= diag[t]
			}
		})
		return
	}

	// Sorted qubit positions for bit insertion; strides for bit spreading.
	sorted := append([]int(nil), g.Qubits...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	// offsets[t] = Σ_j ((t>>j)&1) << Qubits[j]
	offsets := make([]int, kdim)
	for t := 0; t < kdim; t++ {
		o := 0
		for j, q := range g.Qubits {
			o |= ((t >> j) & 1) << q
		}
		offsets[t] = o
	}

	outer := len(s) >> k
	parallelRange(outer, func(lo, hi int) {
		in := make([]complex128, kdim)
		for o := lo; o < hi; o++ {
			base := o
			for _, p := range sorted {
				base = (base>>p)<<(p+1) | (base & (1<<p - 1))
			}
			for t := 0; t < kdim; t++ {
				in[t] = s[base|offsets[t]]
			}
			for t := 0; t < kdim; t++ {
				row := m[t*kdim : (t+1)*kdim]
				var acc complex128
				for u := 0; u < kdim; u++ {
					acc += row[u] * in[u]
				}
				s[base|offsets[t]] = acc
			}
		}
	})
}
