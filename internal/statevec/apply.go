package statevec

import (
	"sync"

	"hsfsim/internal/gate"
	"hsfsim/internal/par"
)

// parallelThreshold is the state size above which gate application is split
// across goroutines. Below it, goroutine overhead dominates.
const parallelThreshold = 1 << 14

// ApplyGate applies g to the state in place. Gates with one or two qubits use
// specialized kernels; larger gates fall back to a general gather/scatter
// implementation. Application is parallelized across the persistent executor
// for large states, within the process-wide parallelism budget (par.Inner).
func (s State) ApplyGate(g *gate.Gate) {
	switch g.NumQubits() {
	case 1:
		s.apply1(g)
	case 2:
		s.apply2(g)
	default:
		s.applyK(g)
	}
}

// ApplyAll applies a sequence of gates in order.
func (s State) ApplyAll(gs []gate.Gate) {
	for i := range gs {
		s.ApplyGate(&gs[i])
	}
}

// sequential reports whether a kernel over n items should run inline on the
// caller's goroutine: the work is too small to amortize handoff, or the
// parallelism budget is already spent on coarser-grained workers. The size
// check comes first so small states never touch the budget.
//
// The kernels branch on this before building their chunk closures, keeping
// the sequential hot path (every per-path gate in an HSF run) free of
// closure allocations.
func sequential(n int) bool {
	return n < parallelThreshold || par.Inner() <= 1
}

// parallelRange runs fn over [0,n) split into contiguous chunks sized by the
// current parallelism budget. Chunks are handed to the persistent executor
// with a non-blocking submit — the caller always runs the first chunk itself
// and absorbs any chunk no executor worker is free to take.
func parallelRange(n int, fn func(lo, hi int)) {
	workers := par.Inner()
	if n < parallelThreshold || workers <= 1 {
		fn(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	ch := executor()
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		select {
		case ch <- span{fn: fn, lo: lo, hi: hi, wg: &wg}:
		default:
			fn(lo, hi)
			wg.Done()
		}
	}
	fn(0, chunk)
	wg.Wait()
}

// apply1 applies a single-qubit gate with a tight two-amplitude kernel.
func (s State) apply1(g *gate.Gate) {
	q := g.Qubits[0]
	m := g.Matrix.Data
	mask := 1 << q
	if g.Diagonal {
		if sequential(len(s)) {
			s.mulDiag1(m[0], m[3], mask, 0, len(s))
			return
		}
		parallelRange(len(s), func(lo, hi int) { s.mulDiag1(m[0], m[3], mask, lo, hi) })
		return
	}
	half := len(s) >> 1
	if sequential(half) {
		s.rot1(m[0], m[1], m[2], m[3], q, 0, half)
		return
	}
	parallelRange(half, func(lo, hi int) { s.rot1(m[0], m[1], m[2], m[3], q, lo, hi) })
}

func (s State) mulDiag1(a, d complex128, mask, lo, hi int) {
	for i := lo; i < hi; i++ {
		if i&mask == 0 {
			s[i] *= a
		} else {
			s[i] *= d
		}
	}
}

func (s State) rot1(a, b, c, d complex128, q, lo, hi int) {
	mask := 1 << q
	for o := lo; o < hi; o++ {
		// Insert a zero bit at position q.
		i0 := (o>>q)<<(q+1) | (o & (mask - 1))
		i1 := i0 | mask
		x, y := s[i0], s[i1]
		s[i0] = a*x + b*y
		s[i1] = c*x + d*y
	}
}

// apply2 applies a two-qubit gate with an unrolled four-amplitude kernel.
func (s State) apply2(g *gate.Gate) {
	q0, q1 := g.Qubits[0], g.Qubits[1]
	m := g.Matrix.Data
	if g.Diagonal {
		if sequential(len(s)) {
			s.mulDiag2(m, 1<<q0, 1<<q1, 0, len(s))
			return
		}
		parallelRange(len(s), func(lo, hi int) { s.mulDiag2(m, 1<<q0, 1<<q1, lo, hi) })
		return
	}
	quarter := len(s) >> 2
	if sequential(quarter) {
		s.rot2(m, q0, q1, 0, quarter)
		return
	}
	parallelRange(quarter, func(lo, hi int) { s.rot2(m, q0, q1, lo, hi) })
}

func (s State) mulDiag2(m []complex128, m0, m1, lo, hi int) {
	d0, d1, d2, d3 := m[0], m[5], m[10], m[15]
	for i := lo; i < hi; i++ {
		t := 0
		if i&m0 != 0 {
			t |= 1
		}
		if i&m1 != 0 {
			t |= 2
		}
		switch t {
		case 0:
			s[i] *= d0
		case 1:
			s[i] *= d1
		case 2:
			s[i] *= d2
		default:
			s[i] *= d3
		}
	}
}

func (s State) rot2(m []complex128, q0, q1, lo, hi int) {
	m0, m1 := 1<<q0, 1<<q1
	// Sort positions for bit insertion.
	pLo, pHi := q0, q1
	if pLo > pHi {
		pLo, pHi = pHi, pLo
	}
	for o := lo; o < hi; o++ {
		// Insert zero bits at pLo then pHi (ascending).
		i := (o>>pLo)<<(pLo+1) | (o & (1<<pLo - 1))
		i = (i>>pHi)<<(pHi+1) | (i & (1<<pHi - 1))
		i0 := i
		i1 := i | m0
		i2 := i | m1
		i3 := i | m0 | m1
		x0, x1, x2, x3 := s[i0], s[i1], s[i2], s[i3]
		s[i0] = m[0]*x0 + m[1]*x1 + m[2]*x2 + m[3]*x3
		s[i1] = m[4]*x0 + m[5]*x1 + m[6]*x2 + m[7]*x3
		s[i2] = m[8]*x0 + m[9]*x1 + m[10]*x2 + m[11]*x3
		s[i3] = m[12]*x0 + m[13]*x1 + m[14]*x2 + m[15]*x3
	}
}

// kernelPlan is the precomputed index machinery of the general k-qubit
// kernel: sorted qubit positions for bit insertion, per-term bit-spread
// offsets, and (for diagonal gates) the extracted diagonal. Building it per
// call made every segment replay of a fused gate allocate; PrepareGate hoists
// it onto the gate so the path tree replays allocation-free.
type kernelPlan struct {
	sorted  []int
	offsets []int
	diag    []complex128 // non-nil iff the gate is diagonal
}

func buildKernelPlan(g *gate.Gate) *kernelPlan {
	k := g.NumQubits()
	kdim := 1 << k
	p := &kernelPlan{}
	if g.Diagonal {
		m := g.Matrix.Data
		p.diag = make([]complex128, kdim)
		for t := 0; t < kdim; t++ {
			p.diag[t] = m[t*kdim+t]
		}
		return p
	}
	p.sorted = append([]int(nil), g.Qubits...)
	for i := 1; i < len(p.sorted); i++ {
		for j := i; j > 0 && p.sorted[j] < p.sorted[j-1]; j-- {
			p.sorted[j], p.sorted[j-1] = p.sorted[j-1], p.sorted[j]
		}
	}
	// offsets[t] = Σ_j ((t>>j)&1) << Qubits[j]
	p.offsets = make([]int, kdim)
	for t := 0; t < kdim; t++ {
		o := 0
		for j, q := range g.Qubits {
			o |= ((t >> j) & 1) << q
		}
		p.offsets[t] = o
	}
	return p
}

// PrepareGate precomputes and attaches the general-kernel plan for a gate
// with three or more qubits (one- and two-qubit kernels need none). It must
// run while the gate is still owned by one goroutine — the HSF engine calls
// it at compile time, before segments are shared across path workers.
func PrepareGate(g *gate.Gate) {
	if g.NumQubits() < 3 {
		return
	}
	if _, ok := g.KernelCache().(*kernelPlan); ok {
		return
	}
	g.SetKernelCache(buildKernelPlan(g))
}

// PrepareGates runs PrepareGate over a slice.
func PrepareGates(gs []gate.Gate) {
	for i := range gs {
		PrepareGate(&gs[i])
	}
}

// scratchPool recycles the gather buffer of the dense k-qubit kernel. It is
// shared process-wide (a per-plan buffer would race: many path workers replay
// the same compiled gate concurrently) and holds pointers so Get/Put do not
// allocate.
var scratchPool = sync.Pool{New: func() any { return new([]complex128) }}

// applyK is the general k-qubit kernel.
func (s State) applyK(g *gate.Gate) {
	plan, ok := g.KernelCache().(*kernelPlan)
	if !ok {
		plan = buildKernelPlan(g) // unprepared gate: plan built per call
	}
	k := g.NumQubits()

	if g.Diagonal {
		// Diagonal gates (e.g. analytic RZZ-cascade terms, CCZ) multiply
		// each amplitude by the diagonal entry selected by the gate bits.
		if sequential(len(s)) {
			s.mulDiagK(g.Qubits, plan.diag, 0, len(s))
			return
		}
		parallelRange(len(s), func(lo, hi int) { s.mulDiagK(g.Qubits, plan.diag, lo, hi) })
		return
	}

	outer := len(s) >> k
	if sequential(outer) {
		s.rotK(g.Matrix.Data, plan, k, 0, outer)
		return
	}
	parallelRange(outer, func(lo, hi int) { s.rotK(g.Matrix.Data, plan, k, lo, hi) })
}

func (s State) mulDiagK(qubits []int, diag []complex128, lo, hi int) {
	for i := lo; i < hi; i++ {
		t := 0
		for j, q := range qubits {
			t |= ((i >> q) & 1) << j
		}
		s[i] *= diag[t]
	}
}

func (s State) rotK(m []complex128, plan *kernelPlan, k, lo, hi int) {
	kdim := 1 << k
	sp := scratchPool.Get().(*[]complex128)
	if cap(*sp) < kdim {
		*sp = make([]complex128, kdim)
	}
	in := (*sp)[:kdim]
	for o := lo; o < hi; o++ {
		base := o
		for _, p := range plan.sorted {
			base = (base>>p)<<(p+1) | (base & (1<<p - 1))
		}
		for t := 0; t < kdim; t++ {
			in[t] = s[base|plan.offsets[t]]
		}
		for t := 0; t < kdim; t++ {
			row := m[t*kdim : (t+1)*kdim]
			var acc complex128
			for u := 0; u < kdim; u++ {
				acc += row[u] * in[u]
			}
			s[base|plan.offsets[t]] = acc
		}
	}
	scratchPool.Put(sp)
}
