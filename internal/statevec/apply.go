package statevec

import (
	"math/cmplx"
	"sync"

	"hsfsim/internal/gate"
	"hsfsim/internal/par"
)

// parallelThreshold is the kernel-domain size above which gate application is
// split across goroutines. Below it, goroutine overhead dominates.
const parallelThreshold = 1 << 14

// sparseTol is the matrix-entry threshold below which the k-qubit plan
// builder treats an element as zero (and within which it treats an element as
// one). It matches gate classification's tolerance, so the sparse kernel
// drops exactly the entries the diagonal flag already ignores.
const sparseTol = 1e-14

// ApplyGate applies g to the state in place. The kernel is chosen from the
// gate's structure classification (see gate.Kind): diagonal, permutation, and
// controlled gates use kernels that touch only the amplitudes the structure
// says can change; everything else falls back to a dense matvec. Application
// is parallelized across the persistent executor for large states, within the
// process-wide parallelism budget (par.Inner).
func (s State) ApplyGate(g *gate.Gate) {
	switch g.NumQubits() {
	case 1:
		half := len(s) >> 1
		if sequential(half) {
			s.kernel1(g, 0, half)
			return
		}
		parallelRange(half, func(lo, hi int) { s.kernel1(g, lo, hi) })
	case 2:
		quarter := len(s) >> 2
		if sequential(quarter) {
			s.kernel2(g, 0, quarter)
			return
		}
		parallelRange(quarter, func(lo, hi int) { s.kernel2(g, lo, hi) })
	default:
		s.applyK(g)
	}
}

// ApplyAll applies a sequence of gates in order.
func (s State) ApplyAll(gs []gate.Gate) {
	for i := range gs {
		s.ApplyGate(&gs[i])
	}
}

// applyInline applies g on the caller's goroutine with no parallel split,
// borrowing scratch for kernels that need a gather buffer. The compiled
// segment sweep uses it to replay many gates per tile while holding one
// scratch buffer across the whole sweep; a nil or undersized scratch falls
// back to the pool.
func (s State) applyInline(g *gate.Gate, scratch []complex128) {
	switch g.NumQubits() {
	case 1:
		s.kernel1(g, 0, len(s)>>1)
	case 2:
		s.kernel2(g, 0, len(s)>>2)
	default:
		plan := planOf(g)
		n := plan.domain(len(s))
		if plan.scratch > 0 && len(scratch) < plan.scratch {
			sp, buf := getScratch(plan.scratch)
			s.kernelK(g, plan, 0, n, buf)
			scratchPool.Put(sp)
			return
		}
		s.kernelK(g, plan, 0, n, scratch)
	}
}

// sequential reports whether a kernel over n items should run inline on the
// caller's goroutine: the work is too small to amortize handoff, or the
// parallelism budget is already spent on coarser-grained workers. The size
// check comes first so small states never touch the budget.
//
// Every dispatch site branches on this before building its chunk closure,
// keeping the sequential hot path (every per-path gate in an HSF run) free of
// closure allocations. parallelRange relies on that gating and does not
// re-check.
func sequential(n int) bool {
	return n < parallelThreshold || par.Inner() <= 1
}

// parallelRange runs fn over [0,n) split into contiguous chunks sized by the
// current parallelism budget. Chunks are handed to the persistent executor
// with a non-blocking submit — the caller always runs the first chunk itself
// and absorbs any chunk no executor worker is free to take. Callers must gate
// on sequential(n) first; if the budget collapses between that check and this
// call, the chunk math degrades to a single inline fn(0,n).
func parallelRange(n int, fn func(lo, hi int)) {
	workers := par.Inner()
	if workers > n {
		workers = n
	}
	ch := executor()
	chunk := n
	if workers > 1 {
		chunk = (n + workers - 1) / workers
	}
	var wg sync.WaitGroup
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		select {
		case ch <- span{fn: fn, lo: lo, hi: hi, wg: &wg}:
		default:
			fn(lo, hi)
			wg.Done()
		}
	}
	fn(0, chunk)
	wg.Wait()
}

// kernel1 applies a single-qubit gate to the half-blocks [lo,hi): block o
// addresses the amplitude pair (i0, i0|1<<q). The arms, cheapest first:
// controlled phases touch one amplitude per pair, diagonals skip the
// cross terms, permutations move without arithmetic.
func (s State) kernel1(g *gate.Gate, lo, hi int) {
	q := g.Qubits[0]
	m := g.Matrix.Data
	switch {
	case g.Diagonal && g.Controls != 0:
		s.phase1(m[3], q, lo, hi)
	case g.Diagonal:
		s.diag1(m[0], m[3], q, lo, hi)
	case g.Perm != nil && g.PermPhase == nil:
		s.perm1(q, lo, hi)
	case g.Perm != nil:
		s.permPhase1(m[1], m[2], q, lo, hi)
	default:
		s.rot1(m[0], m[1], m[2], m[3], q, lo, hi)
	}
}

// phase1: diag(1, d) — multiply only the bit-set amplitude of each pair
// (Z, S, T, P). Half the memory traffic of a full diagonal sweep.
func (s State) phase1(d complex128, q, lo, hi int) {
	mask := 1 << q
	for o := lo; o < hi; o++ {
		i := (o>>q)<<(q+1) | (o & (mask - 1)) | mask
		s[i] *= d
	}
}

// diag1: diag(a, d) with no unit entry (RZ).
func (s State) diag1(a, d complex128, q, lo, hi int) {
	mask := 1 << q
	for o := lo; o < hi; o++ {
		i0 := (o>>q)<<(q+1) | (o & (mask - 1))
		s[i0] *= a
		s[i0|mask] *= d
	}
}

// perm1: the bit flip (X) — swap each pair, no arithmetic.
func (s State) perm1(q, lo, hi int) {
	mask := 1 << q
	for o := lo; o < hi; o++ {
		i0 := (o>>q)<<(q+1) | (o & (mask - 1))
		i1 := i0 | mask
		s[i0], s[i1] = s[i1], s[i0]
	}
}

// permPhase1: antidiagonal (b over c) — a flip with one multiply per move (Y).
func (s State) permPhase1(b, c complex128, q, lo, hi int) {
	mask := 1 << q
	for o := lo; o < hi; o++ {
		i0 := (o>>q)<<(q+1) | (o & (mask - 1))
		i1 := i0 | mask
		s[i0], s[i1] = b*s[i1], c*s[i0]
	}
}

func (s State) rot1(a, b, c, d complex128, q, lo, hi int) {
	mask := 1 << q
	for o := lo; o < hi; o++ {
		// Insert a zero bit at position q.
		i0 := (o>>q)<<(q+1) | (o & (mask - 1))
		i1 := i0 | mask
		x, y := s[i0], s[i1]
		s[i0] = a*x + b*y
		s[i1] = c*x + d*y
	}
}

// kernel2 applies a two-qubit gate to the quarter-blocks [lo,hi): block o
// addresses the four amplitudes (i, i|m0, i|m1, i|m0|m1) with both gate bits
// cleared in i. Matrix bit 0 is Qubits[0], bit 1 is Qubits[1].
func (s State) kernel2(g *gate.Gate, lo, hi int) {
	m := g.Matrix.Data
	q0, q1 := g.Qubits[0], g.Qubits[1]
	switch {
	case g.Diagonal:
		s.diag2(m, g.Controls, q0, q1, lo, hi)
	case g.Perm != nil:
		s.perm2(g, lo, hi)
	case g.Controls == 1:
		// Control on matrix bit 0: a 2×2 matvec on bit 1 over the bit-0-set
		// pair (CRX, CRY, controlled-U). Rows/cols {1,3} of the 4×4.
		s.ctrl2(m[5], m[7], m[13], m[15], 1<<q0, 1<<q1, q0, q1, lo, hi)
	case g.Controls == 2:
		// Control on matrix bit 1: rows/cols {2,3}.
		s.ctrl2(m[10], m[11], m[14], m[15], 1<<q1, 1<<q0, q0, q1, lo, hi)
	default:
		s.rot2(m, q0, q1, lo, hi)
	}
}

// insert2 spreads block index o over the state, clearing the two gate bit
// positions pLo < pHi.
func insert2(o, pLo, pHi int) int {
	i := (o>>pLo)<<(pLo+1) | (o & (1<<pLo - 1))
	return (i>>pHi)<<(pHi+1) | (i & (1<<pHi - 1))
}

func order2(q0, q1 int) (int, int) {
	if q0 < q1 {
		return q0, q1
	}
	return q1, q0
}

// diag2 multiplies by the diagonal (d0,d1,d2,d3), restricted by the control
// mask: a controlled diagonal (CZ, CPhase: ctrl=3; CRZ: ctrl=1) skips the
// amplitudes its identity blocks leave untouched — CZ moves a quarter of the
// memory a full diagonal sweep does.
func (s State) diag2(m []complex128, ctrl, q0, q1, lo, hi int) {
	m0, m1 := 1<<q0, 1<<q1
	pLo, pHi := order2(q0, q1)
	d0, d1, d2, d3 := m[0], m[5], m[10], m[15]
	switch ctrl {
	case 3:
		for o := lo; o < hi; o++ {
			s[insert2(o, pLo, pHi)|m0|m1] *= d3
		}
	case 1:
		for o := lo; o < hi; o++ {
			i := insert2(o, pLo, pHi) | m0
			s[i] *= d1
			s[i|m1] *= d3
		}
	case 2:
		for o := lo; o < hi; o++ {
			i := insert2(o, pLo, pHi) | m1
			s[i] *= d2
			s[i|m0] *= d3
		}
	default:
		for o := lo; o < hi; o++ {
			i := insert2(o, pLo, pHi)
			s[i] *= d0
			s[i|m0] *= d1
			s[i|m1] *= d2
			s[i|m0|m1] *= d3
		}
	}
}

// ctrl2 applies the 2×2 submatrix (u00 u01; u10 u11) to the amplitude pair
// with the control bit set: (i|ctrlMask, i|ctrlMask|tgtMask). Two loads and
// stores and four multiplies per block versus rot2's four and sixteen.
func (s State) ctrl2(u00, u01, u10, u11 complex128, ctrlMask, tgtMask, q0, q1, lo, hi int) {
	pLo, pHi := order2(q0, q1)
	for o := lo; o < hi; o++ {
		ia := insert2(o, pLo, pHi) | ctrlMask
		ib := ia | tgtMask
		x, y := s[ia], s[ib]
		s[ia] = u00*x + u01*y
		s[ib] = u10*x + u11*y
	}
}

// perm2 applies a two-qubit (phase-)permutation. The common shapes — CNOT
// swaps matrix indices 1↔3, SWAP 1↔2, ISWAP 1↔2 with phase i — are a single
// transposition touching two of the four amplitudes per block; anything else
// (fused permutation chains) goes through a generic gather/scatter on stack
// arrays.
func (s State) perm2(g *gate.Gate, lo, hi int) {
	perm := g.Perm
	ph := g.PermPhase
	q0, q1 := g.Qubits[0], g.Qubits[1]
	pLo, pHi := order2(q0, q1)
	off := [4]int{0, 1 << q0, 1 << q1, 1<<q0 | 1<<q1}
	a, b := -1, -1
	simple := true
	for c := 0; c < 4; c++ {
		if perm[c] == c {
			if ph != nil && ph[c] != 1 {
				simple = false
			}
			continue
		}
		if a < 0 {
			a = c
		} else if b < 0 {
			b = c
		} else {
			simple = false
		}
	}
	if simple && b >= 0 && perm[a] == b {
		pa, pb := complex128(1), complex128(1)
		if ph != nil {
			pa, pb = ph[a], ph[b]
		}
		offA, offB := off[a], off[b]
		for o := lo; o < hi; o++ {
			i := insert2(o, pLo, pHi)
			ia, ib := i|offA, i|offB
			// new[b] = pa·old[a], new[a] = pb·old[b]
			s[ia], s[ib] = pb*s[ib], pa*s[ia]
		}
		return
	}
	for o := lo; o < hi; o++ {
		i := insert2(o, pLo, pHi)
		var t [4]complex128
		for c := 0; c < 4; c++ {
			v := s[i|off[c]]
			if ph != nil {
				v *= ph[c]
			}
			t[perm[c]] = v
		}
		s[i|off[0]], s[i|off[1]], s[i|off[2]], s[i|off[3]] = t[0], t[1], t[2], t[3]
	}
}

func (s State) rot2(m []complex128, q0, q1, lo, hi int) {
	m0, m1 := 1<<q0, 1<<q1
	pLo, pHi := order2(q0, q1)
	for o := lo; o < hi; o++ {
		i := insert2(o, pLo, pHi)
		i0 := i
		i1 := i | m0
		i2 := i | m1
		i3 := i | m0 | m1
		x0, x1, x2, x3 := s[i0], s[i1], s[i2], s[i3]
		s[i0] = m[0]*x0 + m[1]*x1 + m[2]*x2 + m[3]*x3
		s[i1] = m[4]*x0 + m[5]*x1 + m[6]*x2 + m[7]*x3
		s[i2] = m[8]*x0 + m[9]*x1 + m[10]*x2 + m[11]*x3
		s[i3] = m[12]*x0 + m[13]*x1 + m[14]*x2 + m[15]*x3
	}
}

// planKind selects the k-qubit kernel a plan drives, in the same priority
// order as gate.Kind: the cheaper the structure, the fewer amplitudes and
// multiplies the kernel spends.
type planKind uint8

const (
	planDense    planKind = iota // full gather/matvec/scatter (rotK)
	planDiag                     // multiply each amplitude by a diagonal entry
	planCtrlDiag                 // diagonal restricted to the control-satisfied subspace
	planPerm                     // amplitude moves along permutation cycles
	planCtrl                     // dense submatrix on the non-control bits only
	planSparse                   // matvec skipping zero entries and identity rows
)

// kernelPlan is the precomputed index machinery of the k-qubit kernels.
// Building it per call made every segment replay of a fused gate allocate;
// PrepareGate hoists it onto the gate so the path tree replays
// allocation-free.
type kernelPlan struct {
	kind    planKind
	k       int // gate qubit count
	scratch int // gather-buffer length the kernel borrows (0: none)

	sorted  []int // ascending qubit positions for zero-bit insertion
	offsets []int // offsets[t]: matrix index t spread over the gate qubits

	// planDiag: the full diagonal, indexed by matrix index.
	// planCtrlDiag: compacted to the control-satisfied block, indexed by the
	// free-bit pattern.
	diag []complex128

	// planCtrlDiag / planCtrl control geometry.
	ctrlSorted []int        // ascending control qubit positions (one-bit insertion)
	freeQubits []int        // non-control qubit positions, ascending matrix bit order
	ctrlOff    int          // OR of the control qubit masks
	freeOff    []int        // free-bit pattern u spread over the free qubits
	sub        []complex128 // planCtrl: fdim×fdim submatrix on the free bits

	// planPerm cycle program: cycNode[cycStart[c]:cycStart[c+1]] lists the
	// bit-spread offsets of one cycle in traversal order; cycPhase aligns
	// with cycNode (nil for pure permutations). Phased fixed points are
	// listed separately.
	cycStart []int
	cycNode  []int
	cycPhase []complex128
	fixOff   []int
	fixPhase []complex128

	// planSparse: rows[] lists non-identity matrix rows; row rows[i] holds
	// entries vals[rowStart[i]:rowStart[i+1]] over columns cols[...].
	rows     []int
	rowStart []int
	cols     []int
	vals     []complex128
}

// domain is the block count the plan's kernel iterates for a state of n
// amplitudes: full for a plain diagonal, the control-satisfied subspace for a
// controlled diagonal, one block per 2^k amplitudes otherwise.
func (p *kernelPlan) domain(n int) int {
	switch p.kind {
	case planDiag:
		return n
	case planCtrlDiag:
		return n >> len(p.ctrlSorted)
	}
	return n >> p.k
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// splitControls partitions the gate's matrix bits into control and free
// sets, returning the control qubit positions (sorted, for one-bit
// insertion), the free qubit positions (ascending matrix-bit order), and the
// free matrix-bit positions in the same order.
func splitControls(g *gate.Gate) (ctrlSorted, freeQubits, freeBits []int) {
	for b := 0; b < g.NumQubits(); b++ {
		if g.Controls&(1<<b) != 0 {
			ctrlSorted = append(ctrlSorted, g.Qubits[b])
		} else {
			freeQubits = append(freeQubits, g.Qubits[b])
			freeBits = append(freeBits, b)
		}
	}
	sortInts(ctrlSorted)
	return
}

// spreadOffsets returns offsets[t] = matrix index t spread over the gate's
// qubit positions.
func spreadOffsets(g *gate.Gate) []int {
	kdim := 1 << g.NumQubits()
	offs := make([]int, kdim)
	for t := 0; t < kdim; t++ {
		o := 0
		for j, q := range g.Qubits {
			o |= ((t >> j) & 1) << q
		}
		offs[t] = o
	}
	return offs
}

// sortedQubits returns the gate's qubit positions in ascending order, for
// zero-bit insertion.
func sortedQubits(g *gate.Gate) []int {
	sq := append([]int(nil), g.Qubits...)
	sortInts(sq)
	return sq
}

func buildKernelPlan(g *gate.Gate) *kernelPlan {
	k := g.NumQubits()
	kdim := 1 << k
	m := g.Matrix.Data
	p := &kernelPlan{k: k}

	spread := func() []int { return spreadOffsets(g) }
	sorted := func() []int { return sortedQubits(g) }

	switch {
	case g.Diagonal && g.Controls != 0:
		p.kind = planCtrlDiag
		var freeBits []int
		p.ctrlSorted, p.freeQubits, freeBits = splitControls(g)
		fdim := 1 << len(freeBits)
		p.diag = make([]complex128, fdim)
		for u := 0; u < fdim; u++ {
			t := g.Controls
			for j, b := range freeBits {
				t |= ((u >> j) & 1) << b
			}
			p.diag[u] = m[t*kdim+t]
		}

	case g.Diagonal:
		p.kind = planDiag
		p.diag = make([]complex128, kdim)
		for t := 0; t < kdim; t++ {
			p.diag[t] = m[t*kdim+t]
		}

	case g.Perm != nil:
		p.kind = planPerm
		p.sorted = sorted()
		offs := spread()
		seen := make([]bool, kdim)
		for c := 0; c < kdim; c++ {
			if seen[c] {
				continue
			}
			if g.Perm[c] == c {
				seen[c] = true
				if g.PermPhase != nil && g.PermPhase[c] != 1 {
					p.fixOff = append(p.fixOff, offs[c])
					p.fixPhase = append(p.fixPhase, g.PermPhase[c])
				}
				continue
			}
			p.cycStart = append(p.cycStart, len(p.cycNode))
			for x := c; !seen[x]; x = g.Perm[x] {
				seen[x] = true
				p.cycNode = append(p.cycNode, offs[x])
				if g.PermPhase != nil {
					p.cycPhase = append(p.cycPhase, g.PermPhase[x])
				}
			}
		}
		p.cycStart = append(p.cycStart, len(p.cycNode))

	case g.Controls != 0:
		p.kind = planCtrl
		p.sorted = sorted()
		var freeBits []int
		p.ctrlSorted, p.freeQubits, freeBits = splitControls(g)
		for _, q := range p.ctrlSorted {
			p.ctrlOff |= 1 << q
		}
		fdim := 1 << len(freeBits)
		p.freeOff = make([]int, fdim)
		tOf := make([]int, fdim)
		for u := 0; u < fdim; u++ {
			o, t := 0, g.Controls
			for j, b := range freeBits {
				bit := (u >> j) & 1
				o |= bit << p.freeQubits[j]
				t |= bit << b
			}
			p.freeOff[u] = o
			tOf[u] = t
		}
		p.sub = make([]complex128, fdim*fdim)
		for u := 0; u < fdim; u++ {
			for v := 0; v < fdim; v++ {
				p.sub[u*fdim+v] = m[tOf[u]*kdim+tOf[v]]
			}
		}
		p.scratch = fdim

	default:
		p.sorted = sorted()
		p.offsets = spread()
		p.scratch = kdim
		// Sparsity census: a fused k-qubit gate often has blocks of exact
		// zeros and whole identity rows; when at least half the entries
		// vanish the CSR kernel wins.
		nnz := 0
		for _, v := range m {
			if cmplx.Abs(v) > sparseTol {
				nnz++
			}
		}
		if nnz <= kdim*kdim/2 {
			p.kind = planSparse
			for r := 0; r < kdim; r++ {
				identity := true
				for c := 0; c < kdim; c++ {
					v := m[r*kdim+c]
					want := complex128(0)
					if r == c {
						want = 1
					}
					if cmplx.Abs(v-want) > sparseTol {
						identity = false
						break
					}
				}
				if identity {
					continue
				}
				p.rows = append(p.rows, r)
				p.rowStart = append(p.rowStart, len(p.cols))
				for c := 0; c < kdim; c++ {
					if v := m[r*kdim+c]; cmplx.Abs(v) > sparseTol {
						p.cols = append(p.cols, c)
						p.vals = append(p.vals, v)
					}
				}
			}
			p.rowStart = append(p.rowStart, len(p.cols))
		} else {
			p.kind = planDense
		}
	}
	return p
}

// planOf returns the gate's cached plan, building one per call for
// unprepared gates (which allocates — fusion sites call PrepareGates so the
// hot path never does).
func planOf(g *gate.Gate) *kernelPlan {
	if plan, ok := g.KernelCache().(*kernelPlan); ok {
		return plan
	}
	return buildKernelPlan(g)
}

// PrepareGate precomputes and attaches the kernel plan for a gate with three
// or more qubits (one- and two-qubit kernels dispatch straight off the
// classification flags and need none). It must run while the gate is still
// owned by one goroutine — the HSF engine calls it at compile time, before
// segments are shared across path workers.
func PrepareGate(g *gate.Gate) {
	if g.NumQubits() < 3 {
		return
	}
	if _, ok := g.KernelCache().(*kernelPlan); ok {
		return
	}
	g.SetKernelCache(buildKernelPlan(g))
}

// PrepareGates runs PrepareGate over a slice.
func PrepareGates(gs []gate.Gate) {
	for i := range gs {
		PrepareGate(&gs[i])
	}
}

// PrepareDense attaches a forced dense-matvec plan to a k≥3 gate, bypassing
// structure detection. Benchmarks use it to measure the specialized kernels
// against the fallback path on identical gates; production code should never
// call it.
func PrepareDense(g *gate.Gate) {
	k := g.NumQubits()
	if k < 3 {
		return
	}
	g.SetKernelCache(&kernelPlan{
		kind:    planDense,
		k:       k,
		scratch: 1 << k,
		sorted:  sortedQubits(g),
		offsets: spreadOffsets(g),
	})
}

// scratchPool recycles the gather buffers of the k-qubit kernels. It is
// shared process-wide (a per-plan buffer would race: many path workers replay
// the same compiled gate concurrently) and holds pointers so Get/Put do not
// allocate.
var scratchPool = sync.Pool{New: func() any { return new([]complex128) }}

// getScratch borrows a pooled buffer of at least n elements. The caller
// returns the pointer with scratchPool.Put when done; callers applying many
// gates (compiled segments, parallel chunks) borrow once and reuse.
func getScratch(n int) (*[]complex128, []complex128) {
	sp := scratchPool.Get().(*[]complex128)
	if cap(*sp) < n {
		*sp = make([]complex128, n)
	}
	return sp, (*sp)[:n]
}

// applyK is the general k-qubit kernel dispatcher. The scratch Get/Put is
// hoisted out of the kernels themselves: the plan records the buffer length
// it needs, plans that move or scale amplitudes in place record zero and
// never touch the pool.
func (s State) applyK(g *gate.Gate) {
	plan := planOf(g)
	n := plan.domain(len(s))
	if sequential(n) {
		if plan.scratch == 0 {
			s.kernelK(g, plan, 0, n, nil)
			return
		}
		sp, buf := getScratch(plan.scratch)
		s.kernelK(g, plan, 0, n, buf)
		scratchPool.Put(sp)
		return
	}
	parallelRange(n, func(lo, hi int) {
		if plan.scratch == 0 {
			s.kernelK(g, plan, lo, hi, nil)
			return
		}
		sp, buf := getScratch(plan.scratch)
		s.kernelK(g, plan, lo, hi, buf)
		scratchPool.Put(sp)
	})
}

// kernelK runs the plan's kernel over blocks [lo,hi) of the plan's domain.
func (s State) kernelK(g *gate.Gate, p *kernelPlan, lo, hi int, in []complex128) {
	switch p.kind {
	case planDiag:
		s.mulDiagK(g.Qubits, p.diag, lo, hi)
	case planCtrlDiag:
		s.ctrlDiagK(p, lo, hi)
	case planPerm:
		s.permK(p, lo, hi)
	case planCtrl:
		s.ctrlK(p, lo, hi, in)
	case planSparse:
		s.sparseK(p, lo, hi, in)
	default:
		s.rotK(g.Matrix.Data, p, p.k, lo, hi, in)
	}
}

func (s State) mulDiagK(qubits []int, diag []complex128, lo, hi int) {
	for i := lo; i < hi; i++ {
		t := 0
		for j, q := range qubits {
			t |= ((i >> q) & 1) << j
		}
		s[i] *= diag[t]
	}
}

// ctrlDiagK multiplies the control-satisfied subspace by the compacted
// diagonal: block o spreads into an index with every control bit forced to
// one, so a CCZ touches one amplitude in eight.
func (s State) ctrlDiagK(p *kernelPlan, lo, hi int) {
	for o := lo; o < hi; o++ {
		i := o
		for _, q := range p.ctrlSorted {
			i = (i>>q)<<(q+1) | (i & (1<<q - 1)) | 1<<q
		}
		u := 0
		for j, q := range p.freeQubits {
			u |= ((i >> q) & 1) << j
		}
		s[i] *= p.diag[u]
	}
}

// permK walks the permutation's cycle program per block: each cycle is
// rotated in place through a single carried amplitude (new[perm[c]] =
// phase[c]·old[c]), and phased fixed points get their multiply. A Toffoli —
// one transposition — touches two amplitudes per 2^k block.
func (s State) permK(p *kernelPlan, lo, hi int) {
	for o := lo; o < hi; o++ {
		base := o
		for _, q := range p.sorted {
			base = (base>>q)<<(q+1) | (base & (1<<q - 1))
		}
		for ci := 0; ci+1 < len(p.cycStart); ci++ {
			st, en := p.cycStart[ci], p.cycStart[ci+1]
			last := en - 1
			carry := s[base|p.cycNode[last]]
			for i := last; i > st; i-- {
				v := s[base|p.cycNode[i-1]]
				if p.cycPhase != nil {
					v *= p.cycPhase[i-1]
				}
				s[base|p.cycNode[i]] = v
			}
			if p.cycPhase != nil {
				carry *= p.cycPhase[last]
			}
			s[base|p.cycNode[st]] = carry
		}
		for i, off := range p.fixOff {
			s[base|off] *= p.fixPhase[i]
		}
	}
}

// ctrlK applies the dense fdim×fdim submatrix to the control-satisfied
// amplitudes of each block: a CRX buried in a 3-qubit fused gate gathers 4
// amplitudes instead of 8 and multiplies 16 entries instead of 64.
func (s State) ctrlK(p *kernelPlan, lo, hi int, in []complex128) {
	fdim := len(p.freeOff)
	for o := lo; o < hi; o++ {
		base := o
		for _, q := range p.sorted {
			base = (base>>q)<<(q+1) | (base & (1<<q - 1))
		}
		base |= p.ctrlOff
		for u := 0; u < fdim; u++ {
			in[u] = s[base|p.freeOff[u]]
		}
		for u := 0; u < fdim; u++ {
			row := p.sub[u*fdim : (u+1)*fdim]
			var acc complex128
			for v := 0; v < fdim; v++ {
				acc += row[v] * in[v]
			}
			s[base|p.freeOff[u]] = acc
		}
	}
}

// sparseK is the CSR matvec: gather the block, rewrite only the non-identity
// rows, and for each row touch only its stored nonzeros.
func (s State) sparseK(p *kernelPlan, lo, hi int, in []complex128) {
	kdim := len(p.offsets)
	for o := lo; o < hi; o++ {
		base := o
		for _, q := range p.sorted {
			base = (base>>q)<<(q+1) | (base & (1<<q - 1))
		}
		for t := 0; t < kdim; t++ {
			in[t] = s[base|p.offsets[t]]
		}
		for ri, r := range p.rows {
			var acc complex128
			for e := p.rowStart[ri]; e < p.rowStart[ri+1]; e++ {
				acc += p.vals[e] * in[p.cols[e]]
			}
			s[base|p.offsets[r]] = acc
		}
	}
}

// rotK is the dense fallback: full gather, matvec, scatter per block.
func (s State) rotK(m []complex128, plan *kernelPlan, k, lo, hi int, in []complex128) {
	kdim := 1 << k
	for o := lo; o < hi; o++ {
		base := o
		for _, p := range plan.sorted {
			base = (base>>p)<<(p+1) | (base & (1<<p - 1))
		}
		for t := 0; t < kdim; t++ {
			in[t] = s[base|plan.offsets[t]]
		}
		for t := 0; t < kdim; t++ {
			row := m[t*kdim : (t+1)*kdim]
			var acc complex128
			for u := 0; u < kdim; u++ {
				acc += row[u] * in[u]
			}
			s[base|plan.offsets[t]] = acc
		}
	}
}
