package statevec

import (
	"math"
	"testing"
	"unsafe"
)

func vecAddr(f []float64) unsafe.Pointer { return unsafe.Pointer(unsafe.SliceData(f)) }

func TestPoolReusesSameSize(t *testing.T) {
	p := NewPool()
	a := p.Get(8)
	b := p.Get(8)
	if &a.Re[0] == &b.Re[0] {
		t.Fatal("two live buffers share backing storage")
	}
	p.Put(a)
	c := p.Get(8)
	if &c.Re[0] != &a.Re[0] {
		t.Fatal("released buffer was not reused for a same-size Get")
	}
	d := p.Get(16) // no 16-amplitude buffer released yet
	if d.Len() != 16 {
		t.Fatalf("len = %d, want 16", d.Len())
	}
	gets, reuses := p.Stats()
	if gets != 4 || reuses != 1 {
		t.Fatalf("stats = (%d gets, %d reuses), want (4, 1)", gets, reuses)
	}
}

func TestPoolPutNil(t *testing.T) {
	p := NewPool()
	p.Put(Vector{}) // must not panic or pollute the free lists
	if v := p.Get(4); v.Len() != 4 {
		t.Fatalf("len = %d, want 4", v.Len())
	}
}

// TestPoolPoisonCanary pins the canary mechanics: a poisoned release fills
// both planes with NaN, and GetZero hands the same storage back fully
// reinitialized.
func TestPoolPoisonCanary(t *testing.T) {
	p := NewPool()
	p.Poison = true
	v := p.Get(8)
	for i := 0; i < v.Len(); i++ {
		v.SetAmplitude(i, complex(float64(i), 0))
	}
	p.Put(v)
	for i := 0; i < v.Len(); i++ {
		if !math.IsNaN(v.Re[i]) || !math.IsNaN(v.Im[i]) {
			t.Fatalf("released v[%d] = %v, want NaN canary", i, v.Amplitude(i))
		}
	}
	z := p.GetZero(8)
	if &z.Re[0] != &v.Re[0] {
		t.Fatal("GetZero did not reuse the poisoned buffer")
	}
	for i := 0; i < z.Len(); i++ {
		want := complex128(0)
		if i == 0 {
			want = 1
		}
		if z.Amplitude(i) != want {
			t.Fatalf("z[%d] = %v, want %v (canary leaked through GetZero)", i, z.Amplitude(i), want)
		}
	}
}

// TestVectorAlignment pins the allocator contract: on the span arm both
// planes of every MakeVector start on a 64-byte boundary.
func TestVectorAlignment(t *testing.T) {
	if KernelISA() == "scalar" {
		t.Skip("purego arm makes no alignment promise")
	}
	for _, n := range []int{1, 7, 64, 1 << 10} {
		v := MakeVector(n)
		if rem := uintptr(vecAddr(v.Re)) % 64; rem != 0 {
			t.Fatalf("n=%d: Re plane misaligned by %d bytes", n, rem)
		}
		if rem := uintptr(vecAddr(v.Im)) % 64; rem != 0 {
			t.Fatalf("n=%d: Im plane misaligned by %d bytes", n, rem)
		}
	}
}
