package statevec

import (
	"math/cmplx"
	"testing"
)

func TestPoolReusesSameSize(t *testing.T) {
	p := NewPool()
	a := p.Get(8)
	b := p.Get(8)
	if &a[0] == &b[0] {
		t.Fatal("two live buffers share backing storage")
	}
	p.Put(a)
	c := p.Get(8)
	if &c[0] != &a[0] {
		t.Fatal("released buffer was not reused for a same-size Get")
	}
	d := p.Get(16) // no 16-amplitude buffer released yet
	if len(d) != 16 {
		t.Fatalf("len = %d, want 16", len(d))
	}
	gets, reuses := p.Stats()
	if gets != 4 || reuses != 1 {
		t.Fatalf("stats = (%d gets, %d reuses), want (4, 1)", gets, reuses)
	}
}

func TestPoolPutNil(t *testing.T) {
	p := NewPool()
	p.Put(nil) // must not panic or pollute the free lists
	if s := p.Get(4); len(s) != 4 {
		t.Fatalf("len = %d, want 4", len(s))
	}
}

// TestPoolPoisonCanary pins the canary mechanics: a poisoned release fills
// the buffer with NaN, and GetZero hands the same storage back fully
// reinitialized.
func TestPoolPoisonCanary(t *testing.T) {
	p := NewPool()
	p.Poison = true
	s := p.Get(8)
	for i := range s {
		s[i] = complex(float64(i), 0)
	}
	p.Put(s)
	for i, v := range s {
		if !cmplx.IsNaN(v) {
			t.Fatalf("released s[%d] = %v, want NaN canary", i, v)
		}
	}
	z := p.GetZero(8)
	if &z[0] != &s[0] {
		t.Fatal("GetZero did not reuse the poisoned buffer")
	}
	for i, v := range z {
		want := complex128(0)
		if i == 0 {
			want = 1
		}
		if v != want {
			t.Fatalf("z[%d] = %v, want %v (canary leaked through GetZero)", i, v, want)
		}
	}
}
