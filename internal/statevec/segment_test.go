package statevec

import (
	"math/cmplx"
	"math/rand"
	"testing"

	"hsfsim/internal/gate"
)

// zooCircuit builds a gate list mixing every kernel class with both low
// (below tileQ) and high qubits on an n-qubit register.
func zooCircuit(rng *rand.Rand, n int) []gate.Gate {
	var gs []gate.Gate
	for q := 0; q < n; q++ {
		gs = append(gs, gate.H(q))
	}
	for layer := 0; layer < 2; layer++ {
		for q := 0; q+1 < n; q += 2 {
			gs = append(gs, gate.CNOT(q, q+1), gate.RZZ(rng.Float64(), q, q+1))
		}
		gs = append(gs,
			gate.CZ(0, n-1), // crosses the tile boundary for n > tileQ
			gate.CCX(1, n/2, n-2),
			gate.ISWAP(2, 3),
			gate.CRX(rng.Float64(), n-1, 0),
			gate.P(rng.Float64(), n-1),
			gate.New("dense3", randUnitary(rng, 8), nil, 0, 1, 2),
		)
	}
	return gs
}

// TestCompileSegmentParity checks that the compiled sweep — tiling, shared
// scratch, prepared plans — reproduces plain sequential application exactly,
// both above and below the tile boundary.
func TestCompileSegmentParity(t *testing.T) {
	for _, n := range []int{6, DefaultTileQubits, DefaultTileQubits + 2} {
		rng := rand.New(rand.NewSource(int64(n)))
		gs := zooCircuit(rng, n)
		want := randomState(rng, n)
		got := FromComplex(want)
		stepped := FromComplex(want)

		ref := make([]gate.Gate, len(gs))
		for i := range gs {
			ref[i] = gs[i].Clone() // unprepared copies for the reference path
		}
		want.ApplyAll(ref)

		cs := CompileSegment(gs, n)
		cs.Apply(got)
		for i := 0; i < cs.NumSteps(); i++ {
			cs.ApplyStep(stepped, i)
		}
		for i := range want {
			if cmplx.Abs(got.Amplitude(i)-want[i]) > parityTol || cmplx.Abs(stepped.Amplitude(i)-want[i]) > parityTol {
				t.Fatalf("n=%d amplitude %d: apply %v stepped %v want %v", n, i, got.Amplitude(i), stepped.Amplitude(i), want[i])
			}
		}
	}
}

// TestCompileSegmentGrouping pins the sweep structure: consecutive low gates
// collapse into one tiled step, high gates split the runs.
func TestCompileSegmentGrouping(t *testing.T) {
	n := DefaultTileQubits + 3
	gs := []gate.Gate{
		gate.H(0), gate.CNOT(1, 2), gate.RZZ(0.3, 3, 4), // low run
		gate.CZ(0, n-1),           // high
		gate.X(5), gate.P(0.2, 6), // low run
		gate.H(n - 2), // high
	}
	cs := CompileSegment(gs, n)
	if cs.NumSteps() != 4 {
		t.Fatalf("NumSteps = %d, want 4", cs.NumSteps())
	}
	wantTiled := []bool{true, false, true, false}
	wantLens := []int{3, 1, 2, 1}
	for i, st := range cs.steps {
		if st.tiled != wantTiled[i] || len(st.gates) != wantLens[i] {
			t.Fatalf("step %d: tiled=%v len=%d, want tiled=%v len=%d",
				i, st.tiled, len(st.gates), wantTiled[i], wantLens[i])
		}
	}
	// A register at or below the tile size has every gate "low": one step.
	cs = CompileSegment([]gate.Gate{gate.H(0), gate.CZ(0, 5), gate.H(5)}, 6)
	if cs.NumSteps() != 1 || !cs.steps[0].tiled {
		t.Fatalf("small register: steps=%d, want one tiled step", cs.NumSteps())
	}
}

// TestCompileSegmentEmpty: an empty segment compiles and applies as a no-op
// (the HSF engine routinely produces empty leading/trailing segments).
func TestCompileSegmentEmpty(t *testing.T) {
	cs := CompileSegment(nil, 5)
	if cs.NumSteps() != 0 {
		t.Fatalf("NumSteps = %d, want 0", cs.NumSteps())
	}
	v := NewVector(5)
	cs.Apply(v)
	if v.Amplitude(0) != 1 {
		t.Fatal("empty segment mutated the state")
	}
}
