package statevec

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"hsfsim/internal/cmat"
	"hsfsim/internal/gate"
)

// parityTol is the agreement bound between every specialized kernel and the
// naive embedded matvec.
const parityTol = 1e-12

func randPhase(rng *rand.Rand) complex128 {
	return cmplx.Exp(complex(0, rng.Float64()*2*math.Pi))
}

// randDiagGate builds a diagonal gate on qs whose entries are 1 wherever the
// matrix index does not satisfy ctrl, and random phases where it does — so
// classification recovers at least the requested control mask.
func randDiagGate(rng *rand.Rand, ctrl int, qs ...int) gate.Gate {
	kdim := 1 << len(qs)
	m := cmat.New(kdim, kdim)
	for t := 0; t < kdim; t++ {
		if t&ctrl == ctrl {
			m.Set(t, t, randPhase(rng))
		} else {
			m.Set(t, t, 1)
		}
	}
	return gate.New(fmt.Sprintf("diag-c%d", ctrl), m, nil, qs...)
}

// randPermGate builds a (phase-)permutation gate from a uniform random
// permutation of the matrix indices.
func randPermGate(rng *rand.Rand, phased bool, qs ...int) gate.Gate {
	kdim := 1 << len(qs)
	perm := rng.Perm(kdim)
	m := cmat.New(kdim, kdim)
	for c := 0; c < kdim; c++ {
		if phased {
			m.Set(perm[c], c, randPhase(rng))
		} else {
			m.Set(perm[c], c, 1)
		}
	}
	return gate.New("perm", m, nil, qs...)
}

// randCtrlGate embeds a random dense unitary on the non-control bits,
// identity everywhere the control mask is unsatisfied (CRX-like).
func randCtrlGate(rng *rand.Rand, ctrl int, qs ...int) gate.Gate {
	k := len(qs)
	kdim := 1 << k
	var freeBits []int
	for b := 0; b < k; b++ {
		if ctrl&(1<<b) == 0 {
			freeBits = append(freeBits, b)
		}
	}
	fdim := 1 << len(freeBits)
	u := randUnitary(rng, fdim)
	m := cmat.Identity(kdim)
	spread := func(x int) int {
		t := ctrl
		for j, b := range freeBits {
			t |= ((x >> j) & 1) << b
		}
		return t
	}
	for r := 0; r < fdim; r++ {
		for c := 0; c < fdim; c++ {
			m.Set(spread(r), spread(c), u.At(r, c))
		}
	}
	return gate.New(fmt.Sprintf("ctrl-c%d", ctrl), m, nil, qs...)
}

// randSparseGate builds a block-sparse unitary: a random 2×2 unitary on bit 0
// multiplexed by the remaining bits (a different block per setting), which is
// neither diagonal, a permutation, nor controlled, but has only 2·kdim
// nonzeros.
func randSparseGate(rng *rand.Rand, qs ...int) gate.Gate {
	kdim := 1 << len(qs)
	m := cmat.New(kdim, kdim)
	for base := 0; base < kdim; base += 2 {
		u := randUnitary(rng, 2)
		for r := 0; r < 2; r++ {
			for c := 0; c < 2; c++ {
				m.Set(base+r, base+c, u.At(r, c))
			}
		}
	}
	return gate.New("sparse", m, nil, qs...)
}

// checkParity applies g both through the kernel dispatch and the naive
// reference and compares amplitudes.
func checkParity(t *testing.T, rng *rand.Rand, g *gate.Gate, n int) {
	t.Helper()
	s := randomState(rng, n)
	want := applyReference(g, s)
	got := s.Clone()
	got.ApplyGate(g)
	for i := range got {
		if cmplx.Abs(got[i]-want[i]) > parityTol {
			t.Fatalf("%s on %v: amplitude %d: got %v want %v", g.Name, g.Qubits, i, got[i], want[i])
		}
	}
}

// TestKernel1Parity sweeps every single-qubit kernel arm against the
// reference on random states and random qubit placements.
func TestKernel1Parity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 8
	for iter := 0; iter < 40; iter++ {
		q := rng.Intn(n)
		builders := []struct {
			name string
			mk   func() gate.Gate
			want gate.Kind
		}{
			{"phase", func() gate.Gate { return gate.P(rng.Float64()*6, q) }, gate.KindDiagonal},
			{"diag", func() gate.Gate { return gate.RZ(rng.Float64()*6, q) }, gate.KindDiagonal},
			{"flip", func() gate.Gate { return gate.X(q) }, gate.KindPermutation},
			{"phaseflip", func() gate.Gate {
				m := cmat.New(2, 2)
				m.Set(1, 0, randPhase(rng))
				m.Set(0, 1, randPhase(rng))
				return gate.New("pp", m, nil, q)
			}, gate.KindPhasePermutation},
			{"dense", func() gate.Gate { return gate.New("u", randUnitary(rng, 2), nil, q) }, gate.KindDense},
		}
		for _, b := range builders {
			g := b.mk()
			if got := g.Class(); got != b.want {
				t.Fatalf("%s: class %v, want %v", b.name, got, b.want)
			}
			checkParity(t, rng, &g, n)
		}
	}
}

// TestKernel2Parity sweeps every two-qubit kernel arm: controlled diagonals
// for each control mask, simple and generic (phase-)permutations, the
// controlled 2×2 matvec on either control bit, and the dense fallback.
func TestKernel2Parity(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const n = 8
	for iter := 0; iter < 40; iter++ {
		perm := rng.Perm(n)
		q0, q1 := perm[0], perm[1]
		gates := []gate.Gate{
			randDiagGate(rng, 0, q0, q1),
			randDiagGate(rng, 1, q0, q1),
			randDiagGate(rng, 2, q0, q1),
			randDiagGate(rng, 3, q0, q1),
			gate.CNOT(q0, q1),
			gate.SWAP(q0, q1),
			gate.ISWAP(q0, q1),
			randPermGate(rng, false, q0, q1),
			randPermGate(rng, true, q0, q1),
			randCtrlGate(rng, 1, q0, q1),
			randCtrlGate(rng, 2, q0, q1),
			gate.New("u4", randUnitary(rng, 4), nil, q0, q1),
		}
		for i := range gates {
			checkParity(t, rng, &gates[i], n)
		}
	}
}

// TestKernelKParity sweeps the k-qubit plan kinds at k=3 and k=4, asserting
// both that the plan builder picks the intended kernel and that the kernel
// matches the reference.
func TestKernelKParity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const n = 9
	for _, k := range []int{3, 4} {
		for iter := 0; iter < 15; iter++ {
			perm := rng.Perm(n)
			qs := append([]int(nil), perm[:k]...)
			kdim := 1 << k
			cases := []struct {
				g    gate.Gate
				kind planKind
			}{
				{randDiagGate(rng, 0, qs...), planDiag},
				{randDiagGate(rng, 1<<rng.Intn(k), qs...), planCtrlDiag},
				{randDiagGate(rng, kdim-1, qs...), planCtrlDiag}, // CCZ-like: every bit a control
				{randPermGate(rng, false, qs...), planPerm},
				{randPermGate(rng, true, qs...), planPerm},
				{randCtrlGate(rng, 1, qs...), planCtrl},
				{randCtrlGate(rng, (kdim-1)&^2, qs...), planCtrl},
				{randSparseGate(rng, qs...), planSparse},
				{gate.New("dense", randUnitary(rng, kdim), nil, qs...), planDense},
			}
			for i := range cases {
				c := &cases[i]
				plan := buildKernelPlan(&c.g)
				if plan.kind != c.kind {
					t.Fatalf("k=%d %s: plan kind %d, want %d", k, c.g.Name, plan.kind, c.kind)
				}
				checkParity(t, rng, &c.g, n)
				// Again with the plan prepared, exercising the cached path.
				PrepareGate(&c.g)
				checkParity(t, rng, &c.g, n)
			}
		}
	}
}

// TestNamedGateKernels pins the exact library gates the ISSUE calls out,
// crossing several placements.
func TestNamedGateKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	const n = 7
	for iter := 0; iter < 20; iter++ {
		p := rng.Perm(n)
		gates := []gate.Gate{
			gate.CZ(p[0], p[1]),
			gate.RZZ(0.7, p[0], p[1]),
			gate.CCZ(p[0], p[1], p[2]),
			gate.CCX(p[0], p[1], p[2]),
			gate.CRX(1.1, p[0], p[1]),
			gate.CRY(0.4, p[0], p[1]),
			gate.CRZ(0.9, p[0], p[1]),
			gate.ISWAP(p[0], p[1]),
			gate.Y(p[3]),
		}
		for i := range gates {
			checkParity(t, rng, &gates[i], n)
		}
	}
}

// TestKernelParityParallel reruns a slice of the zoo on a state large enough
// to cross parallelThreshold, exercising the chunked parallelRange path of
// every kernel (when the host has more than one core).
func TestKernelParityParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("large state")
	}
	rng := rand.New(rand.NewSource(15))
	const n = 16
	gates := []gate.Gate{
		gate.P(0.8, 13),
		gate.X(2),
		gate.New("pp", func() *cmat.Matrix {
			m := cmat.New(2, 2)
			m.Set(1, 0, randPhase(rng))
			m.Set(0, 1, randPhase(rng))
			return m
		}(), nil, 9),
		gate.CZ(3, 14),
		gate.CNOT(15, 0),
		gate.ISWAP(5, 11),
		randCtrlGate(rng, 2, 1, 12),
		gate.CCX(4, 10, 15),
		gate.CCZ(0, 7, 13),
		randCtrlGate(rng, 1, 2, 8, 14),
		randSparseGate(rng, 3, 9, 15),
		gate.New("dense3", randUnitary(rng, 8), nil, 6, 1, 11),
	}
	PrepareGates(gates)
	s := randomState(rng, n)
	want := s.Clone()
	for i := range gates {
		want = applyReference(&gates[i], want)
	}
	got := s.Clone()
	got.ApplyAll(gates)
	for i := range got {
		if cmplx.Abs(got[i]-want[i]) > parityTol {
			t.Fatalf("amplitude %d: got %v want %v", i, got[i], want[i])
		}
	}
}

// TestApplyInlineMatchesApplyGate checks the segment-sweep entry point
// (shared scratch, no parallel split) against the standard dispatcher.
func TestApplyInlineMatchesApplyGate(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	const n = 8
	gates := []gate.Gate{
		gate.H(0),
		gate.CNOT(0, 5),
		gate.CCX(1, 3, 6),
		randSparseGate(rng, 2, 4, 7),
		gate.New("dense3", randUnitary(rng, 8), nil, 0, 2, 5),
	}
	PrepareGates(gates)
	s := randomState(rng, n)
	want := s.Clone()
	want.ApplyAll(gates)
	got := s.Clone()
	_, scratch := getScratch(16)
	for i := range gates {
		got.applyInline(&gates[i], scratch)
	}
	// Also the fallback: nil scratch borrows from the pool internally.
	got2 := s.Clone()
	for i := range gates {
		got2.applyInline(&gates[i], nil)
	}
	for i := range got {
		if cmplx.Abs(got[i]-want[i]) > parityTol || cmplx.Abs(got2[i]-want[i]) > parityTol {
			t.Fatalf("amplitude %d: inline %v pooled %v want %v", i, got[i], got2[i], want[i])
		}
	}
}

// TestPreparedKernelZeroAllocs: once a gate is prepared, sequential
// application of any kernel kind must not allocate — this is what keeps the
// HSF per-path hot loop allocation-free.
func TestPreparedKernelZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const n = 10 // below parallelThreshold: sequential dispatch
	gates := []gate.Gate{
		gate.P(0.3, 4),
		gate.X(1),
		gate.CZ(2, 8),
		gate.CNOT(0, 9),
		gate.CRX(0.5, 3, 7),
		randDiagGate(rng, 0, 1, 4, 6),
		gate.CCZ(0, 4, 9),
		gate.CCX(1, 5, 8),
		randCtrlGate(rng, 1, 2, 6, 9),
		randSparseGate(rng, 0, 3, 7),
		gate.New("dense3", randUnitary(rng, 8), nil, 2, 5, 8),
	}
	PrepareGates(gates)
	s := randomState(rng, n)
	s.ApplyAll(gates) // warm the scratch pool
	for i := range gates {
		g := &gates[i]
		allocs := testing.AllocsPerRun(20, func() { s.ApplyGate(g) })
		if allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", g.Name, allocs)
		}
	}
}
