package statevec

import (
	"fmt"
	"os"
	"strings"
)

// Runtime kernel-arm dispatch. The build selects a candidate set (purego:
// scalar only; default: the architecture's assembly arm when the CPU
// supports it, then the unrolled span arm, then scalar), and the best
// available arm is installed at startup. Two overrides force a weaker arm
// for per-arm testing and honest same-machine benchmarking:
//
//   - the HSFSIM_KERNEL_ISA environment variable, applied at package init
//     (the process dies with a clear message if the named arm is not
//     available — silently falling back would mislabel benchmark artifacts);
//   - SelectKernelISA, the programmatic equivalent (cmd/benchcore's
//     -kernel-isa flag, the per-arm parity sweep).
//
// Overrides can only choose among the compiled-in, CPU-supported arms: you
// can force avx2 down to span or scalar, never scalar up to avx2.

// EnvKernelISA names the environment variable that forces a kernel arm at
// startup: one of "scalar", "span", "avx2", "neon" (subject to availability).
const EnvKernelISA = "HSFSIM_KERNEL_ISA"

// kernelISANames is every arm name any build knows, used to distinguish "not
// available here" from "no such arm" in override errors.
var kernelISANames = []string{"scalar", "span", "avx2", "neon"}

// arms holds the available kernel arms, best-first. buildArms is supplied by
// the build-tag arms (soa_native.go / soa_purego.go); the per-architecture
// assembly candidates come from archArms.
var arms = buildArms()

func init() {
	ops = arms[0]
	if name := os.Getenv(EnvKernelISA); name != "" {
		if err := SelectKernelISA(name); err != nil {
			panic("statevec: " + EnvKernelISA + ": " + err.Error())
		}
	}
}

// KernelISAs lists the kernel arms available to this process, best-first.
// The first entry is what init installed absent an override.
func KernelISAs() []string {
	names := make([]string, len(arms))
	for i := range arms {
		names[i] = arms[i].name
	}
	return names
}

// SelectKernelISA installs the named kernel arm, replacing the current one.
// It errors (leaving the installed arm unchanged) when the arm is not
// compiled in or the CPU lacks it. Not safe to call concurrently with
// running kernels: switch arms at startup or between runs.
func SelectKernelISA(name string) error {
	for i := range arms {
		if arms[i].name == name {
			ops = arms[i]
			return nil
		}
	}
	avail := strings.Join(KernelISAs(), ", ")
	for _, known := range kernelISANames {
		if name == known {
			return fmt.Errorf("kernel ISA %q not available on this CPU/build (available: %s)", name, avail)
		}
	}
	return fmt.Errorf("unknown kernel ISA %q (available: %s)", name, avail)
}
