package statevec

import (
	"fmt"
	"math"

	"hsfsim/internal/cmat"
)

// SchmidtSpectrum computes the Schmidt coefficients of a pure state across
// the bipartition (qubits 0..nLower-1 | rest): the singular values of the
// state reshaped to a 2^{n_upper} × 2^{n_lower} matrix. Their squares are
// the eigenvalues of either reduced density matrix. This is the *state*
// analogue of the operator decomposition driving HSF cuts: a state produced
// by a circuit whose crossing gates have small joint rank has few Schmidt
// coefficients.
func (s State) SchmidtSpectrum(nLower int) ([]float64, error) {
	n := s.NumQubits()
	if nLower <= 0 || nLower >= n {
		return nil, fmt.Errorf("statevec: bipartition %d|%d invalid", nLower, n-nLower)
	}
	dimLo := 1 << nLower
	dimUp := 1 << (n - nLower)
	m := cmat.New(dimUp, dimLo)
	for a := 0; a < dimUp; a++ {
		for b := 0; b < dimLo; b++ {
			m.Set(a, b, s[a<<nLower|b])
		}
	}
	svd, err := cmat.SVD(m)
	if err != nil {
		return nil, err
	}
	return svd.S, nil
}

// EntanglementEntropy returns the von Neumann entropy (in bits) of the
// reduced state across the bipartition: S = -Σ λ² log2 λ².
func (s State) EntanglementEntropy(nLower int) (float64, error) {
	spec, err := s.SchmidtSpectrum(nLower)
	if err != nil {
		return 0, err
	}
	var h float64
	for _, sv := range spec {
		p := sv * sv
		if p > 1e-15 {
			h -= p * math.Log2(p)
		}
	}
	return h, nil
}

// ReducedDensityMatrix traces out all qubits except those in keep (sorted
// ascending) and returns the 2^k × 2^k density matrix of the kept
// subsystem. Exponential in both the state and the kept size; intended for
// small-subsystem diagnostics.
func (s State) ReducedDensityMatrix(keep []int) (*cmat.Matrix, error) {
	n := s.NumQubits()
	seen := make(map[int]bool, len(keep))
	for i, q := range keep {
		if q < 0 || q >= n {
			return nil, fmt.Errorf("statevec: kept qubit %d out of range", q)
		}
		if seen[q] {
			return nil, fmt.Errorf("statevec: duplicate kept qubit %d", q)
		}
		seen[q] = true
		if i > 0 && keep[i] <= keep[i-1] {
			return nil, fmt.Errorf("statevec: keep list must be sorted ascending")
		}
	}
	k := len(keep)
	if k == 0 || k >= n {
		return nil, fmt.Errorf("statevec: trivial subsystem of size %d", k)
	}
	rest := make([]int, 0, n-k)
	for q := 0; q < n; q++ {
		if !seen[q] {
			rest = append(rest, q)
		}
	}
	dimK := 1 << k
	rho := cmat.New(dimK, dimK)
	spread := func(bits int, qs []int) int {
		x := 0
		for j, q := range qs {
			x |= ((bits >> j) & 1) << q
		}
		return x
	}
	for e := 0; e < 1<<len(rest); e++ {
		env := spread(e, rest)
		for a := 0; a < dimK; a++ {
			xa := env | spread(a, keep)
			va := s[xa]
			if va == 0 {
				continue
			}
			for b := 0; b < dimK; b++ {
				xb := env | spread(b, keep)
				rho.Set(a, b, rho.At(a, b)+va*conj(s[xb]))
			}
		}
	}
	return rho, nil
}

func conj(v complex128) complex128 { return complex(real(v), -imag(v)) }

// Purity returns tr(ρ²) of the reduced state on keep: 1 for product states,
// 1/2^k for maximal mixing.
func (s State) Purity(keep []int) (float64, error) {
	rho, err := s.ReducedDensityMatrix(keep)
	if err != nil {
		return 0, err
	}
	return real(cmat.Mul(rho, rho).Trace()), nil
}

// SchmidtRank returns the number of Schmidt coefficients above tol (state
// entanglement rank across the cut). tol ≤ 0 selects 1e-10.
func (s State) SchmidtRank(nLower int, tol float64) (int, error) {
	spec, err := s.SchmidtSpectrum(nLower)
	if err != nil {
		return 0, err
	}
	return rankOf(spec, tol), nil
}

func rankOf(spec []float64, tol float64) int {
	if tol <= 0 {
		tol = 1e-10
	}
	if len(spec) == 0 || spec[0] == 0 {
		return 0
	}
	r := 0
	for _, sv := range spec {
		if sv > tol*spec[0] {
			r++
		}
	}
	return r
}

// SchmidtSpectrum is the Vector (SoA) analogue of State.SchmidtSpectrum: the
// reshape matrix is filled straight from the split planes, so no interleaved
// copy of the state is materialized.
func (v Vector) SchmidtSpectrum(nLower int) ([]float64, error) {
	n := v.NumQubits()
	if nLower <= 0 || nLower >= n {
		return nil, fmt.Errorf("statevec: bipartition %d|%d invalid", nLower, n-nLower)
	}
	dimLo := 1 << nLower
	dimUp := 1 << (n - nLower)
	m := cmat.New(dimUp, dimLo)
	re, im := v.Re, v.Im
	for a := 0; a < dimUp; a++ {
		row := a << nLower
		for b := 0; b < dimLo; b++ {
			m.Set(a, b, complex(re[row|b], im[row|b]))
		}
	}
	svd, err := cmat.SVD(m)
	if err != nil {
		return nil, err
	}
	return svd.S, nil
}

// EntanglementEntropy returns the von Neumann entropy (in bits) of the
// reduced state across the bipartition.
func (v Vector) EntanglementEntropy(nLower int) (float64, error) {
	spec, err := v.SchmidtSpectrum(nLower)
	if err != nil {
		return 0, err
	}
	var h float64
	for _, sv := range spec {
		p := sv * sv
		if p > 1e-15 {
			h -= p * math.Log2(p)
		}
	}
	return h, nil
}

// SchmidtRank returns the number of Schmidt coefficients above tol.
func (v Vector) SchmidtRank(nLower int, tol float64) (int, error) {
	spec, err := v.SchmidtSpectrum(nLower)
	if err != nil {
		return 0, err
	}
	return rankOf(spec, tol), nil
}
