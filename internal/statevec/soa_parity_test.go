package statevec

import (
	"fmt"
	"math/cmplx"
	"math/rand"
	"strings"
	"testing"

	"hsfsim/internal/cmat"
	"hsfsim/internal/gate"
)

// SoA parity suite: every Vector kernel arm against the State (interleaved
// complex128) kernels, which kernel_parity_test.go in turn pins against the
// naive embedded matvec. The suite runs identically under the default (span)
// and `-tags purego` (scalar) arms — CI runs both — so the two dispatch
// paths are held to the same 1e-12 bound.

// checkSoAParity applies g to the same random state through both layouts and
// compares amplitudes.
func checkSoAParity(t *testing.T, rng *rand.Rand, g *gate.Gate, n int) {
	t.Helper()
	s := randomState(rng, n)
	want := s.Clone()
	want.ApplyGate(g)
	v := FromComplex(s)
	v.ApplyGate(g)
	for i := range want {
		if cmplx.Abs(v.Amplitude(i)-want[i]) > parityTol {
			t.Fatalf("%s on %v [%s arm]: amplitude %d: got %v want %v",
				g.Name, g.Qubits, KernelISA(), i, v.Amplitude(i), want[i])
		}
	}
}

// TestSoAKernel1Parity sweeps the five single-qubit arms over every qubit
// position of the register, so both the scalar fallback (low qubits, runs
// shorter than spanMin) and the span path (high qubits) are exercised.
func TestSoAKernel1Parity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const n = 9
	for q := 0; q < n; q++ {
		for iter := 0; iter < 5; iter++ {
			gates := []gate.Gate{
				gate.P(rng.Float64()*6, q),
				gate.RZ(rng.Float64()*6, q),
				gate.X(q),
				func() gate.Gate {
					m := cmat.New(2, 2)
					m.Set(1, 0, randPhase(rng))
					m.Set(0, 1, randPhase(rng))
					return gate.New("pp", m, nil, q)
				}(),
				gate.New("u", randUnitary(rng, 2), nil, q),
			}
			for i := range gates {
				checkSoAParity(t, rng, &gates[i], n)
			}
		}
	}
}

// TestSoAKernel2Parity sweeps the two-qubit arms over ordered and swapped
// qubit pairs including adjacent low pairs (pure scalar), mixed (one span
// boundary), and high pairs (full span path).
func TestSoAKernel2Parity(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const n = 9
	pairs := [][2]int{{0, 1}, {1, 0}, {0, n - 1}, {n - 1, 0}, {4, 7}, {n - 2, n - 1}}
	for iter := 0; iter < 8; iter++ {
		p := rng.Perm(n)
		pairs = append(pairs, [2]int{p[0], p[1]})
	}
	for _, pr := range pairs {
		q0, q1 := pr[0], pr[1]
		gates := []gate.Gate{
			randDiagGate(rng, 0, q0, q1),
			randDiagGate(rng, 1, q0, q1),
			randDiagGate(rng, 2, q0, q1),
			randDiagGate(rng, 3, q0, q1),
			gate.CNOT(q0, q1),
			gate.SWAP(q0, q1),
			gate.ISWAP(q0, q1),
			randPermGate(rng, false, q0, q1),
			randPermGate(rng, true, q0, q1),
			randCtrlGate(rng, 1, q0, q1),
			randCtrlGate(rng, 2, q0, q1),
			gate.New("u4", randUnitary(rng, 4), nil, q0, q1),
		}
		for i := range gates {
			checkSoAParity(t, rng, &gates[i], n)
		}
	}
}

// TestSoAKernelKParity sweeps every k-qubit plan kind — diagonal, controlled
// diagonal, (phase-)permutation, controlled, sparse, dense — at k=3..5,
// through both the on-the-fly and the prepared (cached-plan) paths.
func TestSoAKernelKParity(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const n = 10
	for _, k := range []int{3, 4, 5} {
		iters := 8
		if k == 5 {
			iters = 3 // 32×32 dense matvec; keep runtime bounded
		}
		for iter := 0; iter < iters; iter++ {
			perm := rng.Perm(n)
			qs := append([]int(nil), perm[:k]...)
			kdim := 1 << k
			gates := []gate.Gate{
				randDiagGate(rng, 0, qs...),
				randDiagGate(rng, 1<<rng.Intn(k), qs...),
				randDiagGate(rng, kdim-1, qs...),
				randPermGate(rng, false, qs...),
				randPermGate(rng, true, qs...),
				randCtrlGate(rng, 1, qs...),
				randCtrlGate(rng, (kdim-1)&^2, qs...),
				randSparseGate(rng, qs...),
				gate.New(fmt.Sprintf("dense%d", k), randUnitary(rng, kdim), nil, qs...),
			}
			for i := range gates {
				checkSoAParity(t, rng, &gates[i], n)
				PrepareGate(&gates[i])
				checkSoAParity(t, rng, &gates[i], n)
			}
		}
	}
}

// TestSoAParityParallel reruns a kernel zoo on a state crossing
// parallelThreshold, exercising the chunked parallelRange path of the Vector
// kernels.
func TestSoAParityParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("large state")
	}
	rng := rand.New(rand.NewSource(24))
	const n = 16
	gates := []gate.Gate{
		gate.P(0.8, 13),
		gate.RZ(0.4, 2),
		gate.X(11),
		gate.Y(6),
		gate.H(15),
		gate.CZ(3, 14),
		gate.CRZ(1.2, 0, 12),
		gate.CNOT(15, 0),
		gate.SWAP(1, 13),
		gate.ISWAP(5, 11),
		randCtrlGate(rng, 2, 1, 12),
		gate.New("u4", randUnitary(rng, 4), nil, 9, 2),
		gate.CCX(4, 10, 15),
		gate.CCZ(0, 7, 13),
		randSparseGate(rng, 3, 9, 15),
		gate.New("dense3", randUnitary(rng, 8), nil, 6, 1, 11),
	}
	PrepareGates(gates)
	s := randomState(rng, n)
	want := s.Clone()
	want.ApplyAll(gates)
	v := FromComplex(s)
	v.ApplyAll(gates)
	for i := range want {
		if cmplx.Abs(v.Amplitude(i)-want[i]) > parityTol {
			t.Fatalf("amplitude %d: got %v want %v", i, v.Amplitude(i), want[i])
		}
	}
}

// TestSoAApplyInlineMatchesApplyGate checks the Vector segment-sweep entry
// point (shared scratch, no parallel split) against the standard dispatcher.
func TestSoAApplyInlineMatchesApplyGate(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	const n = 8
	gates := []gate.Gate{
		gate.H(0),
		gate.CNOT(0, 5),
		gate.CCX(1, 3, 6),
		randSparseGate(rng, 2, 4, 7),
		gate.New("dense3", randUnitary(rng, 8), nil, 0, 2, 5),
	}
	PrepareGates(gates)
	s := randomState(rng, n)
	want := FromComplex(s)
	want.ApplyAll(gates)
	got := FromComplex(s)
	_, scratch := getScratch(16)
	for i := range gates {
		got.applyInline(&gates[i], scratch)
	}
	got2 := FromComplex(s)
	for i := range gates {
		got2.applyInline(&gates[i], nil) // nil scratch borrows from the pool
	}
	if d := MaxAbsDiffVec(got, want); d > parityTol {
		t.Fatalf("inline diverges from dispatch: max diff %g", d)
	}
	if d := MaxAbsDiffVec(got2, want); d > parityTol {
		t.Fatalf("pooled inline diverges from dispatch: max diff %g", d)
	}
}

// TestSoAPreparedKernelZeroAllocs: sequential Vector application of every
// prepared kernel kind must not allocate — the dense HSF walker applies
// every per-path gate through these kernels.
func TestSoAPreparedKernelZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	const n = 10 // below parallelThreshold: sequential dispatch
	gates := []gate.Gate{
		gate.P(0.3, 4),
		gate.X(1),
		gate.Y(8),
		gate.CZ(2, 8),
		gate.CNOT(0, 9),
		gate.SWAP(3, 9),
		gate.CRX(0.5, 3, 7),
		gate.New("u4", randUnitary(rng, 4), nil, 2, 9),
		randDiagGate(rng, 0, 1, 4, 6),
		gate.CCZ(0, 4, 9),
		gate.CCX(1, 5, 8),
		randCtrlGate(rng, 1, 2, 6, 9),
		randSparseGate(rng, 0, 3, 7),
		gate.New("dense3", randUnitary(rng, 8), nil, 2, 5, 8),
	}
	PrepareGates(gates)
	v := FromComplex(randomState(rng, n))
	v.ApplyAll(gates) // warm the scratch pool
	for i := range gates {
		g := &gates[i]
		allocs := testing.AllocsPerRun(20, func() { v.ApplyGate(g) })
		if allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", g.Name, allocs)
		}
	}
}

// TestAccumulateKronParity pins the SoA leaf accumulate (and its interleaved
// edge-converting variant) against the naive complex tensor accumulation,
// including a truncated accumulator (MaxAmplitudes cutting mid-block).
func TestAccumulateKronParity(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	const nLower, nUpper = 4, 3
	lo := randomState(rng, nLower)
	up := randomState(rng, nUpper)
	for _, m := range []int{1 << (nLower + nUpper), 100, 1 << nLower, 7} {
		coeff := complex(rng.NormFloat64(), rng.NormFloat64())
		want := make([]complex128, m)
		for i := range want {
			want[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		accSoA := FromComplex(want)
		accCpx := FromComplex(want)
		for x := 0; x < m; x++ {
			want[x] += coeff * up[x>>nLower] * lo[x&(1<<nLower-1)]
		}
		AccumulateKron(accSoA, coeff, FromComplex(up), FromComplex(lo), nLower)
		AccumulateKronComplex(accCpx, coeff, up, lo, nLower)
		for i := range want {
			if cmplx.Abs(accSoA.Amplitude(i)-want[i]) > parityTol {
				t.Fatalf("m=%d AccumulateKron amplitude %d: got %v want %v", m, i, accSoA.Amplitude(i), want[i])
			}
			if cmplx.Abs(accCpx.Amplitude(i)-want[i]) > parityTol {
				t.Fatalf("m=%d AccumulateKronComplex amplitude %d: got %v want %v", m, i, accCpx.Amplitude(i), want[i])
			}
		}
	}
}

// TestVectorConversionRoundTrip pins the compatibility API: FromComplex /
// ToComplex / CopyToComplex / AddToComplex / Amplitude agree with the
// interleaved representation exactly (conversion must be lossless, not just
// 1e-12-close).
func TestVectorConversionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	s := randomState(rng, 6)
	v := FromComplex(s)
	if v.Len() != len(s) || v.NumQubits() != 6 {
		t.Fatalf("Len/NumQubits = %d/%d, want %d/6", v.Len(), v.NumQubits(), len(s))
	}
	back := v.ToComplex()
	for i := range s {
		if back[i] != s[i] || v.Amplitude(i) != s[i] {
			t.Fatalf("amplitude %d: round trip %v, Amplitude %v, want %v", i, back[i], v.Amplitude(i), s[i])
		}
	}
	dst := make([]complex128, len(s))
	v.CopyToComplex(dst)
	acc := make([]complex128, len(s))
	copy(acc, s)
	v.AddToComplex(acc)
	for i := range s {
		if dst[i] != s[i] || acc[i] != s[i]+s[i] {
			t.Fatalf("amplitude %d: copy %v add %v, want %v / %v", i, dst[i], acc[i], s[i], s[i]+s[i])
		}
	}
	v.SetAmplitude(3, 2+3i)
	if v.Amplitude(3) != 2+3i {
		t.Fatalf("SetAmplitude: got %v", v.Amplitude(3))
	}
	if got, want := v.Probability(3), 13.0; got != want {
		t.Fatalf("Probability = %v, want %v", got, want)
	}
}

// realHH is H⊗H: a real orthogonal 4×4 dense matrix, chosen so the u4 kernel
// hits the all-real rot4x4 fast path in every arm.
func realHH() *cmat.Matrix {
	m := cmat.New(4, 4)
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			sign := 1.0
			if r&c&1 != 0 {
				sign = -sign
			}
			if (r>>1)&(c>>1)&1 != 0 {
				sign = -sign
			}
			m.Set(r, c, complex(sign*0.5, 0))
		}
	}
	return m
}

// TestSoAParityAllArms re-runs a condensed gate zoo under every kernel arm
// this process has (scalar always; span and the assembly arm when compiled
// in and the CPU supports it), switching arms with SelectKernelISA. The zoo
// deliberately covers both coefficient classes of each primitive: real
// (Hadamard, X, CZ, H⊗H) and complex (phases, ISWAP, random unitaries).
func TestSoAParityAllArms(t *testing.T) {
	orig := KernelISA()
	defer func() {
		if err := SelectKernelISA(orig); err != nil {
			t.Fatalf("restoring arm %q: %v", orig, err)
		}
	}()
	for _, isa := range KernelISAs() {
		t.Run(isa, func(t *testing.T) {
			if err := SelectKernelISA(isa); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(30))
			const n = 9
			for q := 0; q < n; q++ {
				q2, q3 := (q+3)%n, (q+6)%n
				gates := []gate.Gate{
					gate.H(q),
					gate.X(q),
					gate.RZ(rng.Float64()*6, q),
					gate.RX(rng.Float64()*6, q),
					gate.P(rng.Float64()*6, q),
					gate.New("u", randUnitary(rng, 2), nil, q),
					gate.CZ(q, q2),
					gate.CNOT(q, q2),
					gate.SWAP(q, q2),
					gate.ISWAP(q, q2),
					gate.New("hh", realHH(), nil, q, q2),
					gate.New("u4", randUnitary(rng, 4), nil, q, q2),
					gate.CCX(q, q2, q3),
					gate.New("cphaseswap", phasedPerm3(), nil, q, q2, q3),
				}
				for i := range gates {
					checkSoAParity(t, rng, &gates[i], n)
				}
			}
		})
	}
}

// phasedPerm3 builds a 3q phased permutation — one 2-cycle carrying phase i
// on both moves plus a fixed state with phase −1 — so permK's
// single-transposition fast path exercises both its cross branch and its
// fixed-phase span scaling, under every arm.
func phasedPerm3() *cmat.Matrix {
	m := cmat.New(8, 8)
	for i := 0; i < 8; i++ {
		m.Set(i, i, 1)
	}
	m.Set(5, 5, 0)
	m.Set(6, 6, 0)
	m.Set(5, 6, 1i)
	m.Set(6, 5, 1i)
	m.Set(7, 7, -1)
	return m
}

// TestLoQubitKernelsAllArms pins the interleaved low-qubit kernels (rot1lo /
// diag1lo, installed by the assembly arms for qubits 0 and 1) against the
// scalar pair bodies over uneven [lo,hi) splits — including the odd-lo
// starts parallelRange can produce, which force the q=1 group-alignment
// peel — for both coefficient classes. Arms without the kernels run their
// scalar fallbacks and must agree too.
func TestLoQubitKernelsAllArms(t *testing.T) {
	orig := KernelISA()
	defer func() {
		if err := SelectKernelISA(orig); err != nil {
			t.Fatalf("restoring arm %q: %v", orig, err)
		}
	}()
	rng := rand.New(rand.NewSource(33))
	const n = 6
	half := 1 << (n - 1)
	splits := [][2]int{{0, half}, {1, half}, {0, half - 1}, {3, half - 3}, {5, 29}, {7, 8}, {9, 10}}
	coeffs := func(re bool) [8]float64 {
		var c [8]float64
		for i := range c {
			if re || i%2 == 0 {
				c[i] = rng.NormFloat64()
			}
		}
		return c
	}
	for _, isa := range KernelISAs() {
		t.Run(isa, func(t *testing.T) {
			if err := SelectKernelISA(isa); err != nil {
				t.Fatal(err)
			}
			for q := 0; q < 2; q++ {
				for _, sp := range splits {
					lo, hi := sp[0], sp[1]
					for _, re := range []bool{true, false} {
						c := coeffs(re)
						s := randomState(rng, n)
						got, want := FromComplex(s), FromComplex(s)
						got.rot1(complex(c[0], c[1]), complex(c[2], c[3]),
							complex(c[4], c[5]), complex(c[6], c[7]), q, lo, hi)
						for o := lo; o < hi; o++ {
							rot1Pair(want.Re, want.Im, q, o, c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7])
						}
						for i := 0; i < want.Len(); i++ {
							if cmplx.Abs(got.Amplitude(i)-want.Amplitude(i)) > parityTol {
								t.Fatalf("rot1 q=%d lo=%d hi=%d re=%v: amplitude %d: got %v want %v",
									q, lo, hi, re, i, got.Amplitude(i), want.Amplitude(i))
							}
						}
						got, want = FromComplex(s), FromComplex(s)
						got.diag1(complex(c[0], c[1]), complex(c[6], c[7]), q, lo, hi)
						for o := lo; o < hi; o++ {
							diag1Pair(want.Re, want.Im, q, o, c[0], c[1], c[6], c[7])
						}
						for i := 0; i < want.Len(); i++ {
							if cmplx.Abs(got.Amplitude(i)-want.Amplitude(i)) > parityTol {
								t.Fatalf("diag1 q=%d lo=%d hi=%d re=%v: amplitude %d: got %v want %v",
									q, lo, hi, re, i, got.Amplitude(i), want.Amplitude(i))
							}
						}
						got, want = FromComplex(s), FromComplex(s)
						got.phase1(complex(c[6], c[7]), q, lo, hi)
						for o := lo; o < hi; o++ {
							diag1Pair(want.Re, want.Im, q, o, 1, 0, c[6], c[7])
						}
						for i := 0; i < want.Len(); i++ {
							if cmplx.Abs(got.Amplitude(i)-want.Amplitude(i)) > parityTol {
								t.Fatalf("phase1 q=%d lo=%d hi=%d re=%v: amplitude %d: got %v want %v",
									q, lo, hi, re, i, got.Amplitude(i), want.Amplitude(i))
							}
						}
					}
				}
			}
		})
	}
}

// TestSpanPrimitivesAllArms hammers the six span primitives of every arm
// directly against the scalar reference bodies, over lengths below spanMin,
// odd lengths, and unaligned offsets — the span shapes kernel dispatch
// produces at low qubit positions and odd gate offsets. Both coefficient
// classes (real-only and complex) are exercised so the Re/Cx assembly entry
// points and their tail epilogues are all covered.
func TestSpanPrimitivesAllArms(t *testing.T) {
	ref := scalarArm()
	lengths := []int{1, 2, 3, 4, 5, 7, 8, 9, 12, 15, 16, 17, 31, 33, 100}
	offsets := []int{0, 1, 3}
	rng := rand.New(rand.NewSource(31))
	window := func(n, off int) []float64 {
		buf := alignedFloats(n + off)
		for i := range buf {
			buf[i] = rng.NormFloat64()
		}
		return buf[off:]
	}
	maxDiff := func(a, b []float64) float64 {
		d := 0.0
		for i := range a {
			if e := a[i] - b[i]; e > d {
				d = e
			} else if -e > d {
				d = -e
			}
		}
		return d
	}
	check := func(t *testing.T, what string, n, off int, got, want [][]float64) {
		t.Helper()
		for p := range got {
			if d := maxDiff(got[p], want[p]); d > parityTol {
				t.Fatalf("%s n=%d off=%d plane %d: max diff %g", what, n, off, p, d)
			}
		}
	}
	for _, arm := range arms {
		arm := arm
		t.Run(arm.name, func(t *testing.T) {
			for _, n := range lengths {
				for _, off := range offsets {
					planes := func(k int) (a, b [][]float64) {
						a = make([][]float64, k)
						b = make([][]float64, k)
						for p := 0; p < k; p++ {
							a[p] = window(n, off)
							b[p] = append([]float64(nil), a[p]...)
						}
						return a, b
					}
					cr, ci := rng.NormFloat64(), rng.NormFloat64()
					br, bi := rng.NormFloat64(), rng.NormFloat64()
					ar, ai := rng.NormFloat64(), rng.NormFloat64()
					dr, di := rng.NormFloat64(), rng.NormFloat64()

					for _, im := range []float64{0, ci} {
						g, w := planes(2)
						arm.scale(g[0], g[1], cr, im)
						ref.scale(w[0], w[1], cr, im)
						check(t, "scale", n, off, g, w)
					}
					{
						g, w := planes(4)
						arm.swap(g[0], g[1], g[2], g[3])
						ref.swap(w[0], w[1], w[2], w[3])
						check(t, "swap", n, off, g, w)
					}
					for _, im := range []float64{0, 1} {
						g, w := planes(4)
						arm.cross(g[0], g[1], g[2], g[3], br, bi*im, cr, ci*im)
						ref.cross(w[0], w[1], w[2], w[3], br, bi*im, cr, ci*im)
						check(t, "cross", n, off, g, w)
						g, w = planes(4)
						arm.axpy(g[0], g[1], g[2], g[3], cr, ci*im)
						ref.axpy(w[0], w[1], w[2], w[3], cr, ci*im)
						check(t, "axpy", n, off, g, w)
						g, w = planes(4)
						arm.rot2x2(g[0], g[1], g[2], g[3], ar, ai*im, br, bi*im, cr, ci*im, dr, di*im)
						ref.rot2x2(w[0], w[1], w[2], w[3], ar, ai*im, br, bi*im, cr, ci*im, dr, di*im)
						check(t, "rot2x2", n, off, g, w)
					}
					for _, im := range []float64{0, 1} {
						m := make([]complex128, 16)
						for k := range m {
							m[k] = complex(rng.NormFloat64(), im*rng.NormFloat64())
						}
						g, w := planes(8)
						arm.rot4x4(g[0], g[1], g[2], g[3], g[4], g[5], g[6], g[7], m)
						ref.rot4x4(w[0], w[1], w[2], w[3], w[4], w[5], w[6], w[7], m)
						check(t, "rot4x4", n, off, g, w)
					}
				}
			}
		})
	}
}

// TestSelectKernelISA pins the override surface: the installed arm is always
// one of KernelISAs, scalar is always available, every available arm can be
// selected and reported, an unavailable-but-known arm errors with "not
// available" (leaving the installed arm unchanged), and an unknown name
// errors with "unknown".
func TestSelectKernelISA(t *testing.T) {
	orig := KernelISA()
	defer func() {
		if err := SelectKernelISA(orig); err != nil {
			t.Fatalf("restoring arm %q: %v", orig, err)
		}
	}()
	avail := map[string]bool{}
	for _, name := range KernelISAs() {
		avail[name] = true
	}
	if !avail[orig] {
		t.Fatalf("installed arm %q not in KernelISAs %v", orig, KernelISAs())
	}
	if !avail["scalar"] {
		t.Fatalf("scalar arm missing from KernelISAs %v", KernelISAs())
	}
	if err := SelectKernelISA("sse9"); err == nil || !strings.Contains(err.Error(), "unknown kernel ISA") {
		t.Fatalf("unknown arm: err = %v", err)
	}
	if got := KernelISA(); got != orig {
		t.Fatalf("failed select changed the arm to %q", got)
	}
	for _, known := range kernelISANames {
		if avail[known] {
			if err := SelectKernelISA(known); err != nil {
				t.Fatalf("selecting available arm %q: %v", known, err)
			}
			if got := KernelISA(); got != known {
				t.Fatalf("KernelISA() = %q after selecting %q", got, known)
			}
		} else {
			before := KernelISA()
			if err := SelectKernelISA(known); err == nil || !strings.Contains(err.Error(), "not available") {
				t.Fatalf("unavailable arm %q: err = %v", known, err)
			}
			if got := KernelISA(); got != before {
				t.Fatalf("failed select changed the arm to %q", got)
			}
		}
	}
}

// TestVectorSchmidtMatchesState: the Vector entanglement diagnostics agree
// with the State implementations on the same state.
func TestVectorSchmidtMatchesState(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	s := randomState(rng, 6)
	v := FromComplex(s)
	for cut := 1; cut < 6; cut++ {
		specS, err := s.SchmidtSpectrum(cut)
		if err != nil {
			t.Fatal(err)
		}
		specV, err := v.SchmidtSpectrum(cut)
		if err != nil {
			t.Fatal(err)
		}
		for i := range specS {
			if d := specS[i] - specV[i]; d > parityTol || d < -parityTol {
				t.Fatalf("cut %d singular value %d: %v vs %v", cut, i, specS[i], specV[i])
			}
		}
		eS, _ := s.EntanglementEntropy(cut)
		eV, _ := v.EntanglementEntropy(cut)
		if d := eS - eV; d > parityTol || d < -parityTol {
			t.Fatalf("cut %d entropy: %v vs %v", cut, eS, eV)
		}
		rS, _ := s.SchmidtRank(cut, 0)
		rV, _ := v.SchmidtRank(cut, 0)
		if rS != rV {
			t.Fatalf("cut %d rank: %d vs %d", cut, rS, rV)
		}
	}
	if _, err := v.SchmidtSpectrum(0); err == nil {
		t.Fatal("degenerate bipartition accepted")
	}
}
