//go:build !purego

// AVX2+FMA span-primitive bodies. Generated shape: see asm/gen_amd64.go for
// the avo generator these bodies are maintained against; the committed text
// is authoritative so builds need no codegen step.
//
// Contract shared by every TEXT below: pointer arguments address the first
// element of equal-length, non-aliasing float64 spans; n > 0 and n%4 == 0
// (the Go wrappers in soa_amd64.go peel the sub-register tail); loads and
// stores are unaligned (VMOVUPD) because spans start at arbitrary
// gate-offset positions inside the 64-byte-aligned planes. No function
// calls, no stack frame, YMM state cleared with VZEROUPPER before RET.

#include "textflag.h"

// func avx2ScaleRe(xr, xi *float64, n int, cr float64)
// x *= cr on both planes: the all-real diagonal fast branch.
TEXT ·avx2ScaleRe(SB), NOSPLIT, $0-32
	MOVQ xr+0(FP), DI
	MOVQ xi+8(FP), SI
	MOVQ n+16(FP), CX
	VBROADCASTSD cr+24(FP), Y0
	XORQ AX, AX
loop:
	VMOVUPD (DI)(AX*8), Y1
	VMOVUPD (SI)(AX*8), Y2
	VMULPD  Y0, Y1, Y1
	VMULPD  Y0, Y2, Y2
	VMOVUPD Y1, (DI)(AX*8)
	VMOVUPD Y2, (SI)(AX*8)
	ADDQ $4, AX
	CMPQ AX, CX
	JLT  loop
	VZEROUPPER
	RET

// func avx2ScaleCx(xr, xi *float64, n int, cr, ci float64)
// x *= (cr + i·ci): xr' = cr·r − ci·m, xi' = cr·m + ci·r.
TEXT ·avx2ScaleCx(SB), NOSPLIT, $0-40
	MOVQ xr+0(FP), DI
	MOVQ xi+8(FP), SI
	MOVQ n+16(FP), CX
	VBROADCASTSD cr+24(FP), Y0
	VBROADCASTSD ci+32(FP), Y1
	XORQ AX, AX
loop:
	VMOVUPD (DI)(AX*8), Y2 // r
	VMOVUPD (SI)(AX*8), Y3 // m
	VMULPD       Y0, Y2, Y4 // cr·r
	VFNMADD231PD Y1, Y3, Y4 // − ci·m
	VMULPD       Y0, Y3, Y5 // cr·m
	VFMADD231PD  Y1, Y2, Y5 // + ci·r
	VMOVUPD Y4, (DI)(AX*8)
	VMOVUPD Y5, (SI)(AX*8)
	ADDQ $4, AX
	CMPQ AX, CX
	JLT  loop
	VZEROUPPER
	RET

// func avx2SwapN(xr, xi, yr, yi *float64, n int)
// x ↔ y on both planes, no arithmetic.
TEXT ·avx2SwapN(SB), NOSPLIT, $0-40
	MOVQ xr+0(FP), DI
	MOVQ xi+8(FP), SI
	MOVQ yr+16(FP), R8
	MOVQ yi+24(FP), R9
	MOVQ n+32(FP), CX
	XORQ AX, AX
loop:
	VMOVUPD (DI)(AX*8), Y0
	VMOVUPD (R8)(AX*8), Y1
	VMOVUPD (SI)(AX*8), Y2
	VMOVUPD (R9)(AX*8), Y3
	VMOVUPD Y1, (DI)(AX*8)
	VMOVUPD Y0, (R8)(AX*8)
	VMOVUPD Y3, (SI)(AX*8)
	VMOVUPD Y2, (R9)(AX*8)
	ADDQ $4, AX
	CMPQ AX, CX
	JLT  loop
	VZEROUPPER
	RET

// func avx2CrossRe(xr, xi, yr, yi *float64, n int, br, cr float64)
// Real phased transposition: x' = br·y, y' = cr·x.
TEXT ·avx2CrossRe(SB), NOSPLIT, $0-56
	MOVQ xr+0(FP), DI
	MOVQ xi+8(FP), SI
	MOVQ yr+16(FP), R8
	MOVQ yi+24(FP), R9
	MOVQ n+32(FP), CX
	VBROADCASTSD br+40(FP), Y0
	VBROADCASTSD cr+48(FP), Y1
	XORQ AX, AX
loop:
	VMOVUPD (DI)(AX*8), Y2 // x
	VMOVUPD (SI)(AX*8), Y3 // xm
	VMOVUPD (R8)(AX*8), Y4 // y
	VMOVUPD (R9)(AX*8), Y5 // ym
	VMULPD Y0, Y4, Y4      // br·y
	VMULPD Y0, Y5, Y5      // br·ym
	VMULPD Y1, Y2, Y2      // cr·x
	VMULPD Y1, Y3, Y3      // cr·xm
	VMOVUPD Y4, (DI)(AX*8)
	VMOVUPD Y5, (SI)(AX*8)
	VMOVUPD Y2, (R8)(AX*8)
	VMOVUPD Y3, (R9)(AX*8)
	ADDQ $4, AX
	CMPQ AX, CX
	JLT  loop
	VZEROUPPER
	RET

// func avx2CrossCx(xr, xi, yr, yi *float64, n int, br, bi, cr, ci float64)
// Complex phased transposition: x' = (br+i·bi)·y, y' = (cr+i·ci)·x.
TEXT ·avx2CrossCx(SB), NOSPLIT, $0-72
	MOVQ xr+0(FP), DI
	MOVQ xi+8(FP), SI
	MOVQ yr+16(FP), R8
	MOVQ yi+24(FP), R9
	MOVQ n+32(FP), CX
	VBROADCASTSD br+40(FP), Y0
	VBROADCASTSD bi+48(FP), Y1
	VBROADCASTSD cr+56(FP), Y2
	VBROADCASTSD ci+64(FP), Y3
	XORQ AX, AX
loop:
	VMOVUPD (DI)(AX*8), Y4 // x
	VMOVUPD (SI)(AX*8), Y5 // xm
	VMOVUPD (R8)(AX*8), Y6 // y
	VMOVUPD (R9)(AX*8), Y7 // ym
	VMULPD       Y0, Y6, Y8  // br·y
	VFNMADD231PD Y1, Y7, Y8  // − bi·ym
	VMULPD       Y0, Y7, Y9  // br·ym
	VFMADD231PD  Y1, Y6, Y9  // + bi·y
	VMULPD       Y2, Y4, Y10 // cr·x
	VFNMADD231PD Y3, Y5, Y10 // − ci·xm
	VMULPD       Y2, Y5, Y11 // cr·xm
	VFMADD231PD  Y3, Y4, Y11 // + ci·x
	VMOVUPD Y8, (DI)(AX*8)
	VMOVUPD Y9, (SI)(AX*8)
	VMOVUPD Y10, (R8)(AX*8)
	VMOVUPD Y11, (R9)(AX*8)
	ADDQ $4, AX
	CMPQ AX, CX
	JLT  loop
	VZEROUPPER
	RET

// func avx2AxpyRe(dstRe, dstIm, srcRe, srcIm *float64, n int, cr float64)
// dst += cr·src on both planes: the real-coefficient leaf accumulate.
TEXT ·avx2AxpyRe(SB), NOSPLIT, $0-48
	MOVQ dstRe+0(FP), DI
	MOVQ dstIm+8(FP), SI
	MOVQ srcRe+16(FP), R8
	MOVQ srcIm+24(FP), R9
	MOVQ n+32(FP), CX
	VBROADCASTSD cr+40(FP), Y0
	XORQ AX, AX
loop:
	VMOVUPD (R8)(AX*8), Y1 // s
	VMOVUPD (R9)(AX*8), Y2 // t
	VMOVUPD (DI)(AX*8), Y3
	VMOVUPD (SI)(AX*8), Y4
	VFMADD231PD Y0, Y1, Y3 // dstRe += cr·s
	VFMADD231PD Y0, Y2, Y4 // dstIm += cr·t
	VMOVUPD Y3, (DI)(AX*8)
	VMOVUPD Y4, (SI)(AX*8)
	ADDQ $4, AX
	CMPQ AX, CX
	JLT  loop
	VZEROUPPER
	RET

// func avx2AxpyCx(dstRe, dstIm, srcRe, srcIm *float64, n int, cr, ci float64)
// dst += (cr+i·ci)·src: the HSF leaf accumulate primitive.
TEXT ·avx2AxpyCx(SB), NOSPLIT, $0-56
	MOVQ dstRe+0(FP), DI
	MOVQ dstIm+8(FP), SI
	MOVQ srcRe+16(FP), R8
	MOVQ srcIm+24(FP), R9
	MOVQ n+32(FP), CX
	VBROADCASTSD cr+40(FP), Y0
	VBROADCASTSD ci+48(FP), Y1
	XORQ AX, AX
loop:
	VMOVUPD (R8)(AX*8), Y2 // s
	VMOVUPD (R9)(AX*8), Y3 // t
	VMOVUPD (DI)(AX*8), Y4
	VMOVUPD (SI)(AX*8), Y5
	VFMADD231PD  Y0, Y2, Y4 // dstRe += cr·s
	VFNMADD231PD Y1, Y3, Y4 // dstRe −= ci·t
	VFMADD231PD  Y0, Y3, Y5 // dstIm += cr·t
	VFMADD231PD  Y1, Y2, Y5 // dstIm += ci·s
	VMOVUPD Y4, (DI)(AX*8)
	VMOVUPD Y5, (SI)(AX*8)
	ADDQ $4, AX
	CMPQ AX, CX
	JLT  loop
	VZEROUPPER
	RET

// func avx2Rot2x2Re(xr, xi, yr, yi *float64, n int, ar, br, cr, dr float64)
// Real 1q dense matvec (Hadamard, X-basis rotations):
// x' = ar·x + br·y, y' = cr·x + dr·y, per plane.
TEXT ·avx2Rot2x2Re(SB), NOSPLIT, $0-72
	MOVQ xr+0(FP), DI
	MOVQ xi+8(FP), SI
	MOVQ yr+16(FP), R8
	MOVQ yi+24(FP), R9
	MOVQ n+32(FP), CX
	VBROADCASTSD ar+40(FP), Y0
	VBROADCASTSD br+48(FP), Y1
	VBROADCASTSD cr+56(FP), Y2
	VBROADCASTSD dr+64(FP), Y3
	XORQ AX, AX
loop:
	VMOVUPD (DI)(AX*8), Y4 // x
	VMOVUPD (SI)(AX*8), Y5 // xm
	VMOVUPD (R8)(AX*8), Y6 // y
	VMOVUPD (R9)(AX*8), Y7 // ym
	VMULPD      Y0, Y4, Y8  // ar·x
	VFMADD231PD Y1, Y6, Y8  // + br·y
	VMULPD      Y0, Y5, Y9  // ar·xm
	VFMADD231PD Y1, Y7, Y9  // + br·ym
	VMULPD      Y2, Y4, Y10 // cr·x
	VFMADD231PD Y3, Y6, Y10 // + dr·y
	VMULPD      Y2, Y5, Y11 // cr·xm
	VFMADD231PD Y3, Y7, Y11 // + dr·ym
	VMOVUPD Y8, (DI)(AX*8)
	VMOVUPD Y9, (SI)(AX*8)
	VMOVUPD Y10, (R8)(AX*8)
	VMOVUPD Y11, (R9)(AX*8)
	ADDQ $4, AX
	CMPQ AX, CX
	JLT  loop
	VZEROUPPER
	RET

// func avx2Rot2x2Cx(xr, xi, yr, yi *float64, n int, ar, ai, br, bi, cr, ci, dr, di float64)
// Full complex 1q dense matvec:
// x' = (ar+i·ai)·x + (br+i·bi)·y, y' = (cr+i·ci)·x + (dr+i·di)·y.
TEXT ·avx2Rot2x2Cx(SB), NOSPLIT, $0-104
	MOVQ xr+0(FP), DI
	MOVQ xi+8(FP), SI
	MOVQ yr+16(FP), R8
	MOVQ yi+24(FP), R9
	MOVQ n+32(FP), CX
	VBROADCASTSD ar+40(FP), Y0
	VBROADCASTSD ai+48(FP), Y1
	VBROADCASTSD br+56(FP), Y2
	VBROADCASTSD bi+64(FP), Y3
	VBROADCASTSD cr+72(FP), Y4
	VBROADCASTSD ci+80(FP), Y5
	VBROADCASTSD dr+88(FP), Y6
	VBROADCASTSD di+96(FP), Y7
	XORQ AX, AX
loop:
	VMOVUPD (DI)(AX*8), Y8  // x
	VMOVUPD (SI)(AX*8), Y9  // xm
	VMOVUPD (R8)(AX*8), Y10 // y
	VMOVUPD (R9)(AX*8), Y11 // ym
	VMULPD       Y0, Y8, Y12   // ar·x
	VFNMADD231PD Y1, Y9, Y12   // − ai·xm
	VFMADD231PD  Y2, Y10, Y12  // + br·y
	VFNMADD231PD Y3, Y11, Y12  // − bi·ym
	VMULPD       Y0, Y9, Y13   // ar·xm
	VFMADD231PD  Y1, Y8, Y13   // + ai·x
	VFMADD231PD  Y2, Y11, Y13  // + br·ym
	VFMADD231PD  Y3, Y10, Y13  // + bi·y
	VMULPD       Y4, Y8, Y14   // cr·x
	VFNMADD231PD Y5, Y9, Y14   // − ci·xm
	VFMADD231PD  Y6, Y10, Y14  // + dr·y
	VFNMADD231PD Y7, Y11, Y14  // − di·ym
	VMULPD       Y4, Y9, Y15   // cr·xm
	VFMADD231PD  Y5, Y8, Y15   // + ci·x
	VFMADD231PD  Y6, Y11, Y15  // + dr·ym
	VFMADD231PD  Y7, Y10, Y15  // + di·y
	VMOVUPD Y12, (DI)(AX*8)
	VMOVUPD Y13, (SI)(AX*8)
	VMOVUPD Y14, (R8)(AX*8)
	VMOVUPD Y15, (R9)(AX*8)
	ADDQ $4, AX
	CMPQ AX, CX
	JLT  loop
	VZEROUPPER
	RET

// func avx2Rot4x4N(x0r, x0i, x1r, x1i, x2r, x2i, x3r, x3i *float64, n int, m *complex128)
// 2q dense matvec over four span quadruples. The 16 complex coefficients are
// broadcast from m (row-major, interleaved re/im) per row; all eight input
// vectors are held in registers, so each output row stores immediately.
TEXT ·avx2Rot4x4N(SB), NOSPLIT, $0-80
	MOVQ x0r+0(FP), DI
	MOVQ x0i+8(FP), SI
	MOVQ x1r+16(FP), R8
	MOVQ x1i+24(FP), R9
	MOVQ x2r+32(FP), R10
	MOVQ x2i+40(FP), R11
	MOVQ x3r+48(FP), R12
	MOVQ x3i+56(FP), R13
	MOVQ n+64(FP), CX
	MOVQ m+72(FP), BX
	XORQ AX, AX
loop:
	VMOVUPD (DI)(AX*8), Y0  // x0 re
	VMOVUPD (SI)(AX*8), Y1  // x0 im
	VMOVUPD (R8)(AX*8), Y2  // x1 re
	VMOVUPD (R9)(AX*8), Y3  // x1 im
	VMOVUPD (R10)(AX*8), Y4 // x2 re
	VMOVUPD (R11)(AX*8), Y5 // x2 im
	VMOVUPD (R12)(AX*8), Y6 // x3 re
	VMOVUPD (R13)(AX*8), Y7 // x3 im

	// row 0: b0 = m00·x0 + m01·x1 + m02·x2 + m03·x3
	VBROADCASTSD 0(BX), Y10
	VBROADCASTSD 8(BX), Y11
	VMULPD       Y10, Y0, Y8
	VFNMADD231PD Y11, Y1, Y8
	VMULPD       Y10, Y1, Y9
	VFMADD231PD  Y11, Y0, Y9
	VBROADCASTSD 16(BX), Y10
	VBROADCASTSD 24(BX), Y11
	VFMADD231PD  Y10, Y2, Y8
	VFNMADD231PD Y11, Y3, Y8
	VFMADD231PD  Y10, Y3, Y9
	VFMADD231PD  Y11, Y2, Y9
	VBROADCASTSD 32(BX), Y10
	VBROADCASTSD 40(BX), Y11
	VFMADD231PD  Y10, Y4, Y8
	VFNMADD231PD Y11, Y5, Y8
	VFMADD231PD  Y10, Y5, Y9
	VFMADD231PD  Y11, Y4, Y9
	VBROADCASTSD 48(BX), Y10
	VBROADCASTSD 56(BX), Y11
	VFMADD231PD  Y10, Y6, Y8
	VFNMADD231PD Y11, Y7, Y8
	VFMADD231PD  Y10, Y7, Y9
	VFMADD231PD  Y11, Y6, Y9
	VMOVUPD Y8, (DI)(AX*8)
	VMOVUPD Y9, (SI)(AX*8)

	// row 1
	VBROADCASTSD 64(BX), Y10
	VBROADCASTSD 72(BX), Y11
	VMULPD       Y10, Y0, Y8
	VFNMADD231PD Y11, Y1, Y8
	VMULPD       Y10, Y1, Y9
	VFMADD231PD  Y11, Y0, Y9
	VBROADCASTSD 80(BX), Y10
	VBROADCASTSD 88(BX), Y11
	VFMADD231PD  Y10, Y2, Y8
	VFNMADD231PD Y11, Y3, Y8
	VFMADD231PD  Y10, Y3, Y9
	VFMADD231PD  Y11, Y2, Y9
	VBROADCASTSD 96(BX), Y10
	VBROADCASTSD 104(BX), Y11
	VFMADD231PD  Y10, Y4, Y8
	VFNMADD231PD Y11, Y5, Y8
	VFMADD231PD  Y10, Y5, Y9
	VFMADD231PD  Y11, Y4, Y9
	VBROADCASTSD 112(BX), Y10
	VBROADCASTSD 120(BX), Y11
	VFMADD231PD  Y10, Y6, Y8
	VFNMADD231PD Y11, Y7, Y8
	VFMADD231PD  Y10, Y7, Y9
	VFMADD231PD  Y11, Y6, Y9
	VMOVUPD Y8, (R8)(AX*8)
	VMOVUPD Y9, (R9)(AX*8)

	// row 2
	VBROADCASTSD 128(BX), Y10
	VBROADCASTSD 136(BX), Y11
	VMULPD       Y10, Y0, Y8
	VFNMADD231PD Y11, Y1, Y8
	VMULPD       Y10, Y1, Y9
	VFMADD231PD  Y11, Y0, Y9
	VBROADCASTSD 144(BX), Y10
	VBROADCASTSD 152(BX), Y11
	VFMADD231PD  Y10, Y2, Y8
	VFNMADD231PD Y11, Y3, Y8
	VFMADD231PD  Y10, Y3, Y9
	VFMADD231PD  Y11, Y2, Y9
	VBROADCASTSD 160(BX), Y10
	VBROADCASTSD 168(BX), Y11
	VFMADD231PD  Y10, Y4, Y8
	VFNMADD231PD Y11, Y5, Y8
	VFMADD231PD  Y10, Y5, Y9
	VFMADD231PD  Y11, Y4, Y9
	VBROADCASTSD 176(BX), Y10
	VBROADCASTSD 184(BX), Y11
	VFMADD231PD  Y10, Y6, Y8
	VFNMADD231PD Y11, Y7, Y8
	VFMADD231PD  Y10, Y7, Y9
	VFMADD231PD  Y11, Y6, Y9
	VMOVUPD Y8, (R10)(AX*8)
	VMOVUPD Y9, (R11)(AX*8)

	// row 3
	VBROADCASTSD 192(BX), Y10
	VBROADCASTSD 200(BX), Y11
	VMULPD       Y10, Y0, Y8
	VFNMADD231PD Y11, Y1, Y8
	VMULPD       Y10, Y1, Y9
	VFMADD231PD  Y11, Y0, Y9
	VBROADCASTSD 208(BX), Y10
	VBROADCASTSD 216(BX), Y11
	VFMADD231PD  Y10, Y2, Y8
	VFNMADD231PD Y11, Y3, Y8
	VFMADD231PD  Y10, Y3, Y9
	VFMADD231PD  Y11, Y2, Y9
	VBROADCASTSD 224(BX), Y10
	VBROADCASTSD 232(BX), Y11
	VFMADD231PD  Y10, Y4, Y8
	VFNMADD231PD Y11, Y5, Y8
	VFMADD231PD  Y10, Y5, Y9
	VFMADD231PD  Y11, Y4, Y9
	VBROADCASTSD 240(BX), Y10
	VBROADCASTSD 248(BX), Y11
	VFMADD231PD  Y10, Y6, Y8
	VFNMADD231PD Y11, Y7, Y8
	VFMADD231PD  Y10, Y7, Y9
	VFMADD231PD  Y11, Y6, Y9
	VMOVUPD Y8, (R12)(AX*8)
	VMOVUPD Y9, (R13)(AX*8)

	ADDQ $4, AX
	CMPQ AX, CX
	JLT  loop
	VZEROUPPER
	RET

// --- interleaved low-qubit 1q kernels ---------------------------------------
//
// Qubits 0 and 1 never produce runs long enough for the span bodies above, so
// these kernels vectorize the pair structure itself: load two YMM registers
// per plane (8 float64 = 4 amplitude pairs), deinterleave the x/y halves with
// in-register shuffles, run the same rot2x2/diag arithmetic, and interleave
// back. q=0 pairs alternate element-wise (VUNPCKLPD/VUNPCKHPD); q=1 pairs
// alternate 128-bit lanes (VPERM2F128). n counts float64 elements per plane,
// n > 0 and n%8 == 0; the wrappers peel unaligned head and tail pairs.

// func avx2Rot1LoQ0Re(p *float64, n int, ar, br, cr, dr float64)
// Real 1q rotation on qubit 0 over one plane (planes are independent when
// every coefficient is real): x' = ar·x + br·y, y' = cr·x + dr·y.
TEXT ·avx2Rot1LoQ0Re(SB), NOSPLIT, $0-48
	MOVQ p+0(FP), DI
	MOVQ n+8(FP), CX
	VBROADCASTSD ar+16(FP), Y8
	VBROADCASTSD br+24(FP), Y9
	VBROADCASTSD cr+32(FP), Y10
	VBROADCASTSD dr+40(FP), Y11
	XORQ AX, AX
loop:
	VMOVUPD (DI)(AX*8), Y0   // [x0 y0 x1 y1]
	VMOVUPD 32(DI)(AX*8), Y1 // [x2 y2 x3 y3]
	VUNPCKLPD Y1, Y0, Y2 // xs = [x0 x2 x1 x3]
	VUNPCKHPD Y1, Y0, Y3 // ys = [y0 y2 y1 y3]
	VMULPD      Y2, Y8, Y4  // ar·xs
	VFMADD231PD Y3, Y9, Y4  // + br·ys
	VMULPD      Y2, Y10, Y5 // cr·xs
	VFMADD231PD Y3, Y11, Y5 // + dr·ys
	VUNPCKLPD Y5, Y4, Y0
	VUNPCKHPD Y5, Y4, Y1
	VMOVUPD Y0, (DI)(AX*8)
	VMOVUPD Y1, 32(DI)(AX*8)
	ADDQ $8, AX
	CMPQ AX, CX
	JLT  loop
	VZEROUPPER
	RET

// func avx2Rot1LoQ1Re(p *float64, n int, ar, br, cr, dr float64)
// As Q0Re for qubit 1: x/y halves are the 128-bit lanes of each group.
TEXT ·avx2Rot1LoQ1Re(SB), NOSPLIT, $0-48
	MOVQ p+0(FP), DI
	MOVQ n+8(FP), CX
	VBROADCASTSD ar+16(FP), Y8
	VBROADCASTSD br+24(FP), Y9
	VBROADCASTSD cr+32(FP), Y10
	VBROADCASTSD dr+40(FP), Y11
	XORQ AX, AX
loop:
	VMOVUPD (DI)(AX*8), Y0   // [x0 x1 y0 y1]
	VMOVUPD 32(DI)(AX*8), Y1 // [x2 x3 y2 y3]
	VPERM2F128 $0x20, Y1, Y0, Y2 // xs = [x0 x1 x2 x3]
	VPERM2F128 $0x31, Y1, Y0, Y3 // ys = [y0 y1 y2 y3]
	VMULPD      Y2, Y8, Y4  // ar·xs
	VFMADD231PD Y3, Y9, Y4  // + br·ys
	VMULPD      Y2, Y10, Y5 // cr·xs
	VFMADD231PD Y3, Y11, Y5 // + dr·ys
	VPERM2F128 $0x20, Y5, Y4, Y0
	VPERM2F128 $0x31, Y5, Y4, Y1
	VMOVUPD Y0, (DI)(AX*8)
	VMOVUPD Y1, 32(DI)(AX*8)
	ADDQ $8, AX
	CMPQ AX, CX
	JLT  loop
	VZEROUPPER
	RET

// func avx2Rot1LoQ0Cx(re, im *float64, n int, ar, ai, br, bi, cr, ci, dr, di float64)
// Complex 1q rotation on qubit 0: full rot2x2 arithmetic on deinterleaved
// pairs of both planes.
TEXT ·avx2Rot1LoQ0Cx(SB), NOSPLIT, $0-88
	MOVQ re+0(FP), DI
	MOVQ im+8(FP), SI
	MOVQ n+16(FP), CX
	VBROADCASTSD ar+24(FP), Y8
	VBROADCASTSD ai+32(FP), Y9
	VBROADCASTSD br+40(FP), Y10
	VBROADCASTSD bi+48(FP), Y11
	VBROADCASTSD cr+56(FP), Y12
	VBROADCASTSD ci+64(FP), Y13
	VBROADCASTSD dr+72(FP), Y14
	VBROADCASTSD di+80(FP), Y15
	XORQ AX, AX
loop:
	VMOVUPD (DI)(AX*8), Y0
	VMOVUPD 32(DI)(AX*8), Y1
	VMOVUPD (SI)(AX*8), Y2
	VMOVUPD 32(SI)(AX*8), Y3
	VUNPCKLPD Y1, Y0, Y4 // xr
	VUNPCKHPD Y1, Y0, Y5 // yr
	VUNPCKLPD Y3, Y2, Y6 // xm
	VUNPCKHPD Y3, Y2, Y7 // ym
	VMULPD       Y4, Y8, Y0  // nxr = ar·xr
	VFNMADD231PD Y6, Y9, Y0  // − ai·xm
	VFMADD231PD  Y5, Y10, Y0 // + br·yr
	VFNMADD231PD Y7, Y11, Y0 // − bi·ym
	VMULPD       Y6, Y8, Y1  // nxi = ar·xm
	VFMADD231PD  Y4, Y9, Y1  // + ai·xr
	VFMADD231PD  Y7, Y10, Y1 // + br·ym
	VFMADD231PD  Y5, Y11, Y1 // + bi·yr
	VMULPD       Y4, Y12, Y2 // nyr = cr·xr
	VFNMADD231PD Y6, Y13, Y2 // − ci·xm
	VFMADD231PD  Y5, Y14, Y2 // + dr·yr
	VFNMADD231PD Y7, Y15, Y2 // − di·ym
	VMULPD       Y6, Y12, Y3 // nyi = cr·xm
	VFMADD231PD  Y4, Y13, Y3 // + ci·xr
	VFMADD231PD  Y7, Y14, Y3 // + dr·ym
	VFMADD231PD  Y5, Y15, Y3 // + di·yr
	VUNPCKLPD Y2, Y0, Y4
	VUNPCKHPD Y2, Y0, Y5
	VUNPCKLPD Y3, Y1, Y6
	VUNPCKHPD Y3, Y1, Y7
	VMOVUPD Y4, (DI)(AX*8)
	VMOVUPD Y5, 32(DI)(AX*8)
	VMOVUPD Y6, (SI)(AX*8)
	VMOVUPD Y7, 32(SI)(AX*8)
	ADDQ $8, AX
	CMPQ AX, CX
	JLT  loop
	VZEROUPPER
	RET

// func avx2Rot1LoQ1Cx(re, im *float64, n int, ar, ai, br, bi, cr, ci, dr, di float64)
// As Q0Cx for qubit 1 (lane shuffles instead of element unpacks).
TEXT ·avx2Rot1LoQ1Cx(SB), NOSPLIT, $0-88
	MOVQ re+0(FP), DI
	MOVQ im+8(FP), SI
	MOVQ n+16(FP), CX
	VBROADCASTSD ar+24(FP), Y8
	VBROADCASTSD ai+32(FP), Y9
	VBROADCASTSD br+40(FP), Y10
	VBROADCASTSD bi+48(FP), Y11
	VBROADCASTSD cr+56(FP), Y12
	VBROADCASTSD ci+64(FP), Y13
	VBROADCASTSD dr+72(FP), Y14
	VBROADCASTSD di+80(FP), Y15
	XORQ AX, AX
loop:
	VMOVUPD (DI)(AX*8), Y0
	VMOVUPD 32(DI)(AX*8), Y1
	VMOVUPD (SI)(AX*8), Y2
	VMOVUPD 32(SI)(AX*8), Y3
	VPERM2F128 $0x20, Y1, Y0, Y4 // xr
	VPERM2F128 $0x31, Y1, Y0, Y5 // yr
	VPERM2F128 $0x20, Y3, Y2, Y6 // xm
	VPERM2F128 $0x31, Y3, Y2, Y7 // ym
	VMULPD       Y4, Y8, Y0
	VFNMADD231PD Y6, Y9, Y0
	VFMADD231PD  Y5, Y10, Y0
	VFNMADD231PD Y7, Y11, Y0
	VMULPD       Y6, Y8, Y1
	VFMADD231PD  Y4, Y9, Y1
	VFMADD231PD  Y7, Y10, Y1
	VFMADD231PD  Y5, Y11, Y1
	VMULPD       Y4, Y12, Y2
	VFNMADD231PD Y6, Y13, Y2
	VFMADD231PD  Y5, Y14, Y2
	VFNMADD231PD Y7, Y15, Y2
	VMULPD       Y6, Y12, Y3
	VFMADD231PD  Y4, Y13, Y3
	VFMADD231PD  Y7, Y14, Y3
	VFMADD231PD  Y5, Y15, Y3
	VPERM2F128 $0x20, Y2, Y0, Y4
	VPERM2F128 $0x31, Y2, Y0, Y5
	VPERM2F128 $0x20, Y3, Y1, Y6
	VPERM2F128 $0x31, Y3, Y1, Y7
	VMOVUPD Y4, (DI)(AX*8)
	VMOVUPD Y5, 32(DI)(AX*8)
	VMOVUPD Y6, (SI)(AX*8)
	VMOVUPD Y7, 32(SI)(AX*8)
	ADDQ $8, AX
	CMPQ AX, CX
	JLT  loop
	VZEROUPPER
	RET

// func avx2Diag1LoQ0(re, im *float64, n int, ar, ai, dr, di float64)
// diag(a, d) on qubit 0: x *= a, y *= d on deinterleaved pairs.
TEXT ·avx2Diag1LoQ0(SB), NOSPLIT, $0-56
	MOVQ re+0(FP), DI
	MOVQ im+8(FP), SI
	MOVQ n+16(FP), CX
	VBROADCASTSD ar+24(FP), Y8
	VBROADCASTSD ai+32(FP), Y9
	VBROADCASTSD dr+40(FP), Y10
	VBROADCASTSD di+48(FP), Y11
	XORQ AX, AX
loop:
	VMOVUPD (DI)(AX*8), Y0
	VMOVUPD 32(DI)(AX*8), Y1
	VMOVUPD (SI)(AX*8), Y2
	VMOVUPD 32(SI)(AX*8), Y3
	VUNPCKLPD Y1, Y0, Y4 // xr
	VUNPCKHPD Y1, Y0, Y5 // yr
	VUNPCKLPD Y3, Y2, Y6 // xm
	VUNPCKHPD Y3, Y2, Y7 // ym
	VMULPD       Y4, Y8, Y0  // ar·xr
	VFNMADD231PD Y6, Y9, Y0  // − ai·xm
	VMULPD       Y6, Y8, Y1  // ar·xm
	VFMADD231PD  Y4, Y9, Y1  // + ai·xr
	VMULPD       Y5, Y10, Y2 // dr·yr
	VFNMADD231PD Y7, Y11, Y2 // − di·ym
	VMULPD       Y7, Y10, Y3 // dr·ym
	VFMADD231PD  Y5, Y11, Y3 // + di·yr
	VUNPCKLPD Y2, Y0, Y4
	VUNPCKHPD Y2, Y0, Y5
	VUNPCKLPD Y3, Y1, Y6
	VUNPCKHPD Y3, Y1, Y7
	VMOVUPD Y4, (DI)(AX*8)
	VMOVUPD Y5, 32(DI)(AX*8)
	VMOVUPD Y6, (SI)(AX*8)
	VMOVUPD Y7, 32(SI)(AX*8)
	ADDQ $8, AX
	CMPQ AX, CX
	JLT  loop
	VZEROUPPER
	RET

// func avx2Diag1LoQ1(re, im *float64, n int, ar, ai, dr, di float64)
// As Diag1LoQ0 for qubit 1.
TEXT ·avx2Diag1LoQ1(SB), NOSPLIT, $0-56
	MOVQ re+0(FP), DI
	MOVQ im+8(FP), SI
	MOVQ n+16(FP), CX
	VBROADCASTSD ar+24(FP), Y8
	VBROADCASTSD ai+32(FP), Y9
	VBROADCASTSD dr+40(FP), Y10
	VBROADCASTSD di+48(FP), Y11
	XORQ AX, AX
loop:
	VMOVUPD (DI)(AX*8), Y0
	VMOVUPD 32(DI)(AX*8), Y1
	VMOVUPD (SI)(AX*8), Y2
	VMOVUPD 32(SI)(AX*8), Y3
	VPERM2F128 $0x20, Y1, Y0, Y4 // xr
	VPERM2F128 $0x31, Y1, Y0, Y5 // yr
	VPERM2F128 $0x20, Y3, Y2, Y6 // xm
	VPERM2F128 $0x31, Y3, Y2, Y7 // ym
	VMULPD       Y4, Y8, Y0
	VFNMADD231PD Y6, Y9, Y0
	VMULPD       Y6, Y8, Y1
	VFMADD231PD  Y4, Y9, Y1
	VMULPD       Y5, Y10, Y2
	VFNMADD231PD Y7, Y11, Y2
	VMULPD       Y7, Y10, Y3
	VFMADD231PD  Y5, Y11, Y3
	VPERM2F128 $0x20, Y2, Y0, Y4
	VPERM2F128 $0x31, Y2, Y0, Y5
	VPERM2F128 $0x20, Y3, Y1, Y6
	VPERM2F128 $0x31, Y3, Y1, Y7
	VMOVUPD Y4, (DI)(AX*8)
	VMOVUPD Y5, 32(DI)(AX*8)
	VMOVUPD Y6, (SI)(AX*8)
	VMOVUPD Y7, 32(SI)(AX*8)
	ADDQ $8, AX
	CMPQ AX, CX
	JLT  loop
	VZEROUPPER
	RET
