package qaoa

import (
	"math"
	"math/rand"
	"testing"

	"hsfsim/internal/cut"
	"hsfsim/internal/gate"
	"hsfsim/internal/graph"
	"hsfsim/internal/statevec"
)

func TestBuildStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	g, err := graph.TwoBlockModel(4, 4, 0.8, 0.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Build(g, SingleLayer())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	h := c.GateCountByName()
	if h["h"] != 8 || h["rx"] != 8 {
		t.Fatalf("histogram: %v", h)
	}
	if h["rzz"] != g.NumEdges() {
		t.Fatalf("rzz count %d != edges %d", h["rzz"], g.NumEdges())
	}
}

func TestBuildMultiLayer(t *testing.T) {
	g := graph.New(3)
	_ = g.AddEdge(0, 1, 1)
	_ = g.AddEdge(1, 2, 1)
	p := Params{Gammas: []float64{0.3, 0.5}, Betas: []float64{0.2, 0.4}}
	c, err := Build(g, p)
	if err != nil {
		t.Fatal(err)
	}
	h := c.GateCountByName()
	if h["rzz"] != 4 || h["rx"] != 6 || h["h"] != 3 {
		t.Fatalf("multi-layer histogram: %v", h)
	}
}

func TestBuildErrors(t *testing.T) {
	g := graph.New(2)
	if _, err := Build(g, Params{Gammas: []float64{1}, Betas: nil}); err == nil {
		t.Fatal("mismatched layers accepted")
	}
	if _, err := Build(g, Params{}); err == nil {
		t.Fatal("zero layers accepted")
	}
	if _, err := Build(graph.New(0), SingleLayer()); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestRZZAngleEncodesWeight(t *testing.T) {
	g := graph.New(2)
	_ = g.AddEdge(0, 1, 2.5)
	c, err := Build(g, Params{Gammas: []float64{0.3}, Betas: []float64{0.1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, gg := range c.Gates {
		if gg.Name == "rzz" {
			if math.Abs(gg.Params[0]-2*0.3*2.5) > 1e-12 {
				t.Fatalf("rzz angle = %g, want %g", gg.Params[0], 2*0.3*2.5)
			}
			return
		}
	}
	t.Fatal("no rzz gate found")
}

func TestQAOAExpectedCutBeatsRandomGuess(t *testing.T) {
	// On a small graph, the QAOA circuit's expected cut must exceed the
	// uniform-random baseline (half the total edge weight) for decent angles.
	rng := rand.New(rand.NewSource(81))
	g, err := graph.ErdosRenyi(8, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Coarse grid search over (γ, β): p=1 QAOA with tuned angles must beat
	// the uniform-random baseline.
	best := math.Inf(-1)
	for gi := 1; gi <= 6; gi++ {
		for bi := 1; bi <= 6; bi++ {
			c, err := Build(g, Params{
				Gammas: []float64{float64(gi) * 0.15},
				Betas:  []float64{float64(bi) * 0.15},
			})
			if err != nil {
				t.Fatal(err)
			}
			s := statevec.NewState(8)
			s.ApplyAll(c.Gates)
			probs := make([]float64, len(s))
			for i := range s {
				probs[i] = s.Probability(i)
			}
			if e := g.ExpectedCutFromProbabilities(probs); e > best {
				best = e
			}
		}
	}
	var total float64
	for _, e := range g.Edges {
		total += e.W
	}
	if best <= total/2 {
		t.Fatalf("tuned QAOA expected cut %g does not beat random %g", best, total/2)
	}
}

func TestInstanceSpecs(t *testing.T) {
	specs := PaperInstances()
	if len(specs) != 12 {
		t.Fatalf("paper instances: %d, want 12", len(specs))
	}
	// Table II: q30 cut pos 14, q32 cut pos 15.
	if specs[0].NumQubits() != 30 || specs[0].CutPos() != 14 {
		t.Fatalf("q30-1: %d qubits cut %d", specs[0].NumQubits(), specs[0].CutPos())
	}
	if specs[6].NumQubits() != 32 || specs[6].CutPos() != 15 {
		t.Fatalf("q32-1: %d qubits cut %d", specs[6].NumQubits(), specs[6].CutPos())
	}
	for _, s := range ScaledInstances() {
		if s.NumQubits() < 16 || s.NumQubits() > 20 {
			t.Fatalf("scaled instance %s has %d qubits", s.Name, s.NumQubits())
		}
	}
	for _, s := range MediumInstances() {
		if s.NumQubits() < 22 || s.NumQubits() > 24 {
			t.Fatalf("medium instance %s has %d qubits", s.Name, s.NumQubits())
		}
		if s.CutPos() != s.SizeA-1 {
			t.Fatalf("medium instance %s cut pos %d", s.Name, s.CutPos())
		}
	}
}

func TestGenerateInstanceReproducible(t *testing.T) {
	spec := ScaledInstances()[0]
	a, err := spec.Generate(SingleLayer())
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Generate(SingleLayer())
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.NumEdges() != b.Graph.NumEdges() || len(a.Circuit.Gates) != len(b.Circuit.Gates) {
		t.Fatal("instance generation not reproducible")
	}
}

func TestInstanceJointCutBeatsStandard(t *testing.T) {
	// The defining property of the evaluation: on SBM QAOA instances the
	// cascade plan needs far fewer paths than standard cutting.
	spec := InstanceSpec{Name: "test", SizeA: 6, SizeB: 6, PIntra: 0.8, PInter: 0.3, Seed: 99}
	inst, err := spec.Generate(SingleLayer())
	if err != nil {
		t.Fatal(err)
	}
	p := cut.Partition{CutPos: spec.CutPos()}
	std, err := cut.BuildPlan(inst.Circuit, cut.Options{Partition: p, Strategy: cut.StrategyNone})
	if err != nil {
		t.Fatal(err)
	}
	joint, err := cut.BuildPlan(inst.Circuit, cut.Options{Partition: p, Strategy: cut.StrategyCascade})
	if err != nil {
		t.Fatal(err)
	}
	ns, _ := std.NumPaths()
	nj, _ := joint.NumPaths()
	if nj >= ns {
		t.Fatalf("joint %d paths, standard %d: no reduction", nj, ns)
	}
	if joint.NumBlocks() == 0 {
		t.Fatal("no cascades found on a dense SBM instance")
	}
	// Crossing RZZ count must match the graph's crossing edges.
	crossing := 0
	for i := range inst.Circuit.Gates {
		if g := &inst.Circuit.Gates[i]; g.Name == "rzz" && p.Crosses(g) {
			crossing++
		}
	}
	if crossing != inst.Graph.CrossingEdges(spec.CutPos()) {
		t.Fatalf("crossing rzz %d != crossing edges %d", crossing, inst.Graph.CrossingEdges(spec.CutPos()))
	}
}

func TestMixerBreaksCascadesAcrossLayers(t *testing.T) {
	// With two layers, RZZ gates from different layers cannot be grouped
	// across the RX mixer wall on the shared qubit: the planner must respect
	// it (verified indirectly: plan must still reproduce path counts that
	// are products of per-block ranks ≤ those of a single layer squared).
	g := graph.New(4)
	_ = g.AddEdge(1, 2, 1)
	_ = g.AddEdge(1, 3, 1)
	c, err := Build(g, Params{Gammas: []float64{0.3, 0.4}, Betas: []float64{0.2, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	p := cut.Partition{CutPos: 1}
	joint, err := cut.BuildPlan(c, cut.Options{Partition: p, Strategy: cut.StrategyCascade})
	if err != nil {
		t.Fatal(err)
	}
	// Layer 1 block (2 gates, rank 2) and layer 2 block: 2·2 = 4 paths.
	nj, _ := joint.NumPaths()
	if nj != 4 {
		t.Fatalf("two-layer joint paths = %d, want 4", nj)
	}
	// Verify correctness end to end against the gate.RX import requirement.
	_ = gate.RX
}
