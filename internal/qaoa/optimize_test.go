package qaoa

import (
	"math/rand"
	"testing"

	"hsfsim/internal/graph"
)

func TestOptimizeAnglesBeatsDefault(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	g, err := graph.ErdosRenyi(8, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := OptimizeAngles(g, OptimizeOptions{Layers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Must beat (a) the random-guess baseline of half the edges and (b) the
	// untuned default angles.
	var total float64
	for _, e := range g.Edges {
		total += e.W
	}
	if res.ExpectedCut <= total/2 {
		t.Fatalf("optimized cut %g does not beat random %g", res.ExpectedCut, total/2)
	}
	defEval, err := defaultScore(g, SingleLayer())
	if err != nil {
		t.Fatal(err)
	}
	if res.ExpectedCut < defEval-1e-9 {
		t.Fatalf("optimized %g worse than default %g", res.ExpectedCut, defEval)
	}
	if res.Evaluations == 0 {
		t.Fatal("no evaluations recorded")
	}
}

func defaultScore(g *graph.Graph, p Params) (float64, error) {
	res, err := OptimizeAngles(g, OptimizeOptions{
		Layers:         len(p.Gammas),
		MaxEvaluations: 1, // score the start point only
	})
	if err != nil {
		return 0, err
	}
	return res.ExpectedCut, nil
}

func TestOptimizeTwoLayersAtLeastOneLayer(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	g, err := graph.ErdosRenyi(6, 0.6, rng)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := OptimizeAngles(g, OptimizeOptions{Layers: 1, MaxEvaluations: 150})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := OptimizeAngles(g, OptimizeOptions{Layers: 2, MaxEvaluations: 300})
	if err != nil {
		t.Fatal(err)
	}
	// Depth-2 QAOA contains depth-1 as a special case; allow a small search
	// slack but p=2 should not be meaningfully worse.
	if p2.ExpectedCut < p1.ExpectedCut-0.15 {
		t.Fatalf("p=2 cut %g much worse than p=1 %g", p2.ExpectedCut, p1.ExpectedCut)
	}
}

func TestOptimizeCustomEvaluator(t *testing.T) {
	g := graph.New(2)
	_ = g.AddEdge(0, 1, 1)
	calls := 0
	res, err := OptimizeAngles(g, OptimizeOptions{
		MaxEvaluations: 10,
		Evaluate: func(p Params) (float64, error) {
			calls++
			// A synthetic objective peaked at γ=1: the optimizer must walk
			// toward it.
			d := p.Gammas[0] - 1
			return -d * d, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != res.Evaluations || calls == 0 {
		t.Fatalf("calls %d vs evaluations %d", calls, res.Evaluations)
	}
	if res.Params.Gammas[0] <= 0.4 {
		t.Fatalf("optimizer did not move toward the optimum: γ=%g", res.Params.Gammas[0])
	}
}

func TestOptimizeRejectsHugeGraphWithoutEvaluator(t *testing.T) {
	g := graph.New(30)
	if _, err := OptimizeAngles(g, OptimizeOptions{}); err == nil {
		t.Fatal("30-qubit built-in evaluation accepted")
	}
}

func TestInterpolateAngles(t *testing.T) {
	p := Params{Gammas: []float64{0.8}, Betas: []float64{0.4}}
	q := InterpolateAngles(p)
	if len(q.Gammas) != 2 || len(q.Betas) != 2 {
		t.Fatalf("interp lengths: %d/%d", len(q.Gammas), len(q.Betas))
	}
	// p=1: out = [x_0, x_0] by the boundary rule.
	if q.Gammas[0] != 0.8 || q.Gammas[1] != 0.8 {
		t.Fatalf("interp gammas = %v", q.Gammas)
	}
}

func TestOptimizeDeepImprovesOverColdStart(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g, err := graph.ErdosRenyi(6, 0.6, rng)
	if err != nil {
		t.Fatal(err)
	}
	deep, err := OptimizeDeep(g, 2, 240, nil)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := OptimizeAngles(g, OptimizeOptions{Layers: 1, MaxEvaluations: 120})
	if err != nil {
		t.Fatal(err)
	}
	// Iterative deepening must not be meaningfully worse than depth 1.
	if deep.ExpectedCut < p1.ExpectedCut-0.1 {
		t.Fatalf("deep %g much worse than p1 %g", deep.ExpectedCut, p1.ExpectedCut)
	}
}

func TestOptimizeWarmStartValidation(t *testing.T) {
	g := graph.New(2)
	_ = g.AddEdge(0, 1, 1)
	bad := Params{Gammas: []float64{1, 2}, Betas: []float64{1, 2}}
	if _, err := OptimizeAngles(g, OptimizeOptions{Layers: 1, WarmStart: &bad}); err == nil {
		t.Fatal("mismatched warm start accepted")
	}
}
