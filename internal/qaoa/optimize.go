package qaoa

import (
	"fmt"

	"hsfsim/internal/graph"
	"hsfsim/internal/obs"
	"hsfsim/internal/statevec"
)

// OptimizeOptions configures the QAOA angle search.
type OptimizeOptions struct {
	// Layers is the QAOA depth p (default 1).
	Layers int
	// MaxEvaluations bounds the number of circuit simulations (default 120).
	MaxEvaluations int
	// Evaluate scores a parameter set; nil selects the built-in full
	// statevector evaluator (feasible up to ~24 qubits). Custom evaluators
	// can plug in HSF simulation or hardware estimates.
	Evaluate func(Params) (float64, error)
	// WarmStart seeds the search with existing angles (must match Layers).
	WarmStart *Params
}

// OptimizeResult reports the best angles found.
type OptimizeResult struct {
	Params      Params
	ExpectedCut float64
	Evaluations int
}

// OptimizeAngles maximizes the expected cut value over the 2p QAOA angles
// with a derivative-free compass (pattern) search: each axis is probed with
// ± steps that halve whenever no axis improves. Deterministic and cheap —
// the standard baseline for shallow QAOA.
func OptimizeAngles(g *graph.Graph, opts OptimizeOptions) (*OptimizeResult, error) {
	layers := opts.Layers
	if layers <= 0 {
		layers = 1
	}
	budget := opts.MaxEvaluations
	if budget <= 0 {
		budget = 120
	}
	eval := opts.Evaluate
	if eval == nil {
		if g.N > 24 {
			return nil, fmt.Errorf("qaoa: %d qubits exceed the built-in evaluator; supply Evaluate", g.N)
		}
		eval = func(p Params) (float64, error) {
			c, err := Build(g, p)
			if err != nil {
				return 0, err
			}
			s := statevec.NewState(g.N)
			s.ApplyAll(c.Gates)
			probs := make([]float64, len(s))
			for i := range s {
				probs[i] = s.Probability(i)
			}
			return obs.MaxCutEnergy(probs, g)
		}
	}

	// Angle vector x = (γ_1..γ_p, β_1..β_p); standard small-angle start or
	// the caller-provided warm start.
	x := make([]float64, 2*layers)
	if opts.WarmStart != nil {
		if len(opts.WarmStart.Gammas) != layers || len(opts.WarmStart.Betas) != layers {
			return nil, fmt.Errorf("qaoa: warm start has %d layers, want %d", len(opts.WarmStart.Gammas), layers)
		}
		copy(x[:layers], opts.WarmStart.Gammas)
		copy(x[layers:], opts.WarmStart.Betas)
	} else {
		for l := 0; l < layers; l++ {
			x[l] = 0.4 / float64(l+1)
			x[layers+l] = 0.3 / float64(l+1)
		}
	}
	toParams := func(x []float64) Params {
		p := Params{Gammas: make([]float64, layers), Betas: make([]float64, layers)}
		copy(p.Gammas, x[:layers])
		copy(p.Betas, x[layers:])
		return p
	}

	evals := 0
	score := func(x []float64) (float64, error) {
		evals++
		return eval(toParams(x))
	}
	best, err := score(x)
	if err != nil {
		return nil, err
	}
	step := 0.3
	for evals < budget && step > 1e-3 {
		improved := false
		for i := range x {
			for _, dir := range []float64{+1, -1} {
				if evals >= budget {
					break
				}
				cand := append([]float64(nil), x...)
				cand[i] += dir * step
				v, err := score(cand)
				if err != nil {
					return nil, err
				}
				if v > best {
					best = v
					x = cand
					improved = true
					break
				}
			}
		}
		if !improved {
			step /= 2
		}
	}
	return &OptimizeResult{Params: toParams(x), ExpectedCut: best, Evaluations: evals}, nil
}

// InterpolateAngles implements the INTERP depth-growing heuristic (Zhou et
// al.): optimized angles at depth p are linearly interpolated to seed depth
// p+1, which empirically lands near the deeper optimum and makes iterative
// deepening cheap.
func InterpolateAngles(p Params) Params {
	grow := func(xs []float64) []float64 {
		p := len(xs)
		out := make([]float64, p+1)
		for i := 0; i <= p; i++ {
			// out_i = ((i)·x_{i-1} + (p-i)·x_i)/p with 1-based paper indexing
			// adapted to 0-based slices; boundary terms use one neighbour.
			var v float64
			if i > 0 {
				v += float64(i) / float64(p) * xs[i-1]
			}
			if i < p {
				v += float64(p-i) / float64(p) * xs[i]
			}
			out[i] = v
		}
		return out
	}
	return Params{Gammas: grow(p.Gammas), Betas: grow(p.Betas)}
}

// OptimizeDeep runs iterative deepening: optimize at p=1, interpolate to
// seed p=2, and so on up to layers, splitting the evaluation budget evenly.
func OptimizeDeep(g *graph.Graph, layers int, budget int, evaluate func(Params) (float64, error)) (*OptimizeResult, error) {
	if layers <= 0 {
		layers = 1
	}
	if budget <= 0 {
		budget = 120 * layers
	}
	per := budget / layers
	var warm *Params
	var res *OptimizeResult
	for p := 1; p <= layers; p++ {
		r, err := OptimizeAngles(g, OptimizeOptions{
			Layers:         p,
			MaxEvaluations: per,
			Evaluate:       evaluate,
			WarmStart:      warm,
		})
		if err != nil {
			return nil, err
		}
		res = r
		next := InterpolateAngles(r.Params)
		warm = &next
	}
	return res, nil
}
