// Package qaoa builds Quantum Approximate Optimization Algorithm circuits
// for (weighted) MaxCut, the paper's evaluation workload: alternating
// problem layers of mutually commuting RZZ gates (one per graph edge) and
// mixer layers of RX rotations, after an initial Hadamard wall.
package qaoa

import (
	"fmt"

	"hsfsim/internal/circuit"
	"hsfsim/internal/gate"
	"hsfsim/internal/graph"
)

// Params holds the QAOA angles; Gammas[l] scales problem layer l, Betas[l]
// the mixer layer l. len(Gammas) == len(Betas) == number of layers.
type Params struct {
	Gammas []float64
	Betas  []float64
}

// SingleLayer returns the paper's configuration: one problem and one mixer
// layer with representative angles.
func SingleLayer() Params {
	return Params{Gammas: []float64{0.7}, Betas: []float64{0.4}}
}

// Build constructs the QAOA MaxCut circuit for g: H on every qubit, then per
// layer RZZ(2·γ·w) on every edge followed by RX(2·β) on every qubit. Edges
// are emitted in sorted order; since RZZ gates commute, the cut planner is
// free to regroup them into cascades (paper Fig. 6).
func Build(g *graph.Graph, p Params) (*circuit.Circuit, error) {
	if g.N == 0 {
		return nil, fmt.Errorf("qaoa: empty graph")
	}
	if len(p.Gammas) != len(p.Betas) {
		return nil, fmt.Errorf("qaoa: %d gammas but %d betas", len(p.Gammas), len(p.Betas))
	}
	if len(p.Gammas) == 0 {
		return nil, fmt.Errorf("qaoa: no layers")
	}
	c := circuit.New(g.N)
	for q := 0; q < g.N; q++ {
		c.Append(gate.H(q))
	}
	for l := range p.Gammas {
		gamma, beta := p.Gammas[l], p.Betas[l]
		for _, e := range g.Edges {
			c.Append(gate.RZZ(2*gamma*e.W, e.U, e.V))
		}
		for q := 0; q < g.N; q++ {
			c.Append(gate.RX(2*beta, q))
		}
	}
	return c, nil
}
