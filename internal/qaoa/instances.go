package qaoa

import (
	"fmt"
	"math/rand"

	"hsfsim/internal/circuit"
	"hsfsim/internal/graph"
)

// InstanceSpec describes one row of the paper's Table II: a two-block
// stochastic block model QAOA instance with the cut between the blocks.
type InstanceSpec struct {
	// Name labels the instance (e.g. "q30-1").
	Name string
	// SizeA, SizeB are the block sizes; qubits = SizeA + SizeB.
	SizeA, SizeB int
	// PIntra, PInter are the intra-/inter-block edge probabilities.
	PIntra, PInter float64
	// Seed makes the instance reproducible.
	Seed int64
}

// NumQubits returns the register size of the instance.
func (s InstanceSpec) NumQubits() int { return s.SizeA + s.SizeB }

// CutPos returns the qubit label after which the cut is placed: the last
// qubit of block A, matching Table II's "cut pos." column.
func (s InstanceSpec) CutPos() int { return s.SizeA - 1 }

// Instance is a generated QAOA instance: the problem graph and its circuit.
type Instance struct {
	Spec    InstanceSpec
	Graph   *graph.Graph
	Circuit *circuit.Circuit
}

// Generate samples the instance's graph and builds its single-layer QAOA
// circuit.
func (s InstanceSpec) Generate(p Params) (*Instance, error) {
	rng := rand.New(rand.NewSource(s.Seed))
	g, err := graph.TwoBlockModel(s.SizeA, s.SizeB, s.PIntra, s.PInter, rng)
	if err != nil {
		return nil, fmt.Errorf("qaoa: instance %s: %w", s.Name, err)
	}
	c, err := Build(g, p)
	if err != nil {
		return nil, fmt.Errorf("qaoa: instance %s: %w", s.Name, err)
	}
	return &Instance{Spec: s, Graph: g, Circuit: c}, nil
}

// PaperInstances returns the exact instance family of Table II (q30-1 …
// q33-3). The published per-instance seeds are not part of the paper, so
// fixed seeds are used here; the structural parameters (sizes, p_intra,
// p_inter, cut position) are the paper's.
func PaperInstances() []InstanceSpec {
	return []InstanceSpec{
		{Name: "q30-1", SizeA: 15, SizeB: 15, PIntra: 0.8, PInter: 0.10, Seed: 3001},
		{Name: "q30-2", SizeA: 15, SizeB: 15, PIntra: 0.8, PInter: 0.15, Seed: 3002},
		{Name: "q30-3", SizeA: 15, SizeB: 15, PIntra: 0.8, PInter: 0.17, Seed: 3003},
		{Name: "q31-1", SizeA: 15, SizeB: 16, PIntra: 0.8, PInter: 0.10, Seed: 3101},
		{Name: "q31-2", SizeA: 15, SizeB: 16, PIntra: 0.8, PInter: 0.15, Seed: 3102},
		{Name: "q31-3", SizeA: 15, SizeB: 16, PIntra: 0.8, PInter: 0.17, Seed: 3103},
		{Name: "q32-1", SizeA: 16, SizeB: 16, PIntra: 0.8, PInter: 0.10, Seed: 3201},
		{Name: "q32-2", SizeA: 16, SizeB: 16, PIntra: 0.8, PInter: 0.11, Seed: 3202},
		{Name: "q32-3", SizeA: 16, SizeB: 16, PIntra: 0.8, PInter: 0.12, Seed: 3203},
		{Name: "q33-1", SizeA: 16, SizeB: 17, PIntra: 0.8, PInter: 0.10, Seed: 3301},
		{Name: "q33-2", SizeA: 16, SizeB: 17, PIntra: 0.8, PInter: 0.11, Seed: 3302},
		{Name: "q33-3", SizeA: 16, SizeB: 17, PIntra: 0.8, PInter: 0.12, Seed: 3303},
	}
}

// MediumInstances sits between the laptop scale and the paper: q = 22–24
// with the paper's density structure. Schrödinger baselines need up to
// 2^24 amplitudes (~256 MB) and the standard-HSF rows mostly time out —
// closer to the regime of Table I.
func MediumInstances() []InstanceSpec {
	return []InstanceSpec{
		{Name: "q22-1", SizeA: 11, SizeB: 11, PIntra: 0.8, PInter: 0.10, Seed: 2201},
		{Name: "q22-2", SizeA: 11, SizeB: 11, PIntra: 0.8, PInter: 0.15, Seed: 2202},
		{Name: "q22-3", SizeA: 11, SizeB: 11, PIntra: 0.8, PInter: 0.20, Seed: 2203},
		{Name: "q24-1", SizeA: 12, SizeB: 12, PIntra: 0.8, PInter: 0.10, Seed: 2401},
		{Name: "q24-2", SizeA: 12, SizeB: 12, PIntra: 0.8, PInter: 0.12, Seed: 2402},
		{Name: "q24-3", SizeA: 12, SizeB: 12, PIntra: 0.8, PInter: 0.15, Seed: 2403},
	}
}

// ScaledInstances mirrors the paper's family at laptop scale: the same
// p_intra/p_inter structure and block balance on q = 16 … 20 qubits, three
// inter-partition densities per size. The crossing-gate counts shrink with
// the block sizes, keeping standard-vs-joint path ratios qualitatively
// intact while runtimes stay in seconds.
func ScaledInstances() []InstanceSpec {
	return []InstanceSpec{
		{Name: "q16-1", SizeA: 8, SizeB: 8, PIntra: 0.8, PInter: 0.10, Seed: 1601},
		{Name: "q16-2", SizeA: 8, SizeB: 8, PIntra: 0.8, PInter: 0.20, Seed: 1602},
		{Name: "q16-3", SizeA: 8, SizeB: 8, PIntra: 0.8, PInter: 0.30, Seed: 1603},
		{Name: "q18-1", SizeA: 9, SizeB: 9, PIntra: 0.8, PInter: 0.10, Seed: 1801},
		{Name: "q18-2", SizeA: 9, SizeB: 9, PIntra: 0.8, PInter: 0.20, Seed: 1802},
		{Name: "q18-3", SizeA: 9, SizeB: 9, PIntra: 0.8, PInter: 0.30, Seed: 1803},
		{Name: "q20-1", SizeA: 10, SizeB: 10, PIntra: 0.8, PInter: 0.10, Seed: 2001},
		{Name: "q20-2", SizeA: 10, SizeB: 10, PIntra: 0.8, PInter: 0.15, Seed: 2002},
		{Name: "q20-3", SizeA: 10, SizeB: 10, PIntra: 0.8, PInter: 0.20, Seed: 2003},
	}
}
