package circuit

import (
	"sort"

	"hsfsim/internal/cmat"
	"hsfsim/internal/gate"
)

// commuteTol is the tolerance for the explicit commutator check.
const commuteTol = 1e-10

// Commute reports whether two gates commute as operators on the full
// register. Three increasingly expensive checks are used:
//  1. disjoint qubit supports always commute;
//  2. two diagonal gates always commute;
//  3. otherwise the commutator of the two operators embedded on the union of
//     their supports is computed explicitly.
func Commute(a, b *gate.Gate) bool {
	if !a.SharesQubit(b) {
		return true
	}
	if a.Diagonal && b.Diagonal {
		return true
	}
	union := unionQubits(a, b)
	ma := embedOnQubits(a, union)
	mb := embedOnQubits(b, union)
	return cmat.Commutator(ma, mb).FrobeniusNorm() <= commuteTol
}

// unionQubits returns the sorted union of the supports of a and b.
func unionQubits(a, b *gate.Gate) []int {
	seen := make(map[int]bool)
	var union []int
	for _, q := range a.Qubits {
		if !seen[q] {
			seen[q] = true
			union = append(union, q)
		}
	}
	for _, q := range b.Qubits {
		if !seen[q] {
			seen[q] = true
			union = append(union, q)
		}
	}
	sort.Ints(union)
	return union
}

// embedOnQubits returns the matrix of g embedded on the register formed by
// the given (sorted) qubit list: qubits[k] becomes bit k of the embedded
// index. Every qubit of g must appear in qubits.
func embedOnQubits(g *gate.Gate, qubits []int) *cmat.Matrix {
	pos := make(map[int]int, len(qubits))
	for k, q := range qubits {
		pos[q] = k
	}
	local := g.Remap(func(q int) int { return pos[q] })
	dim := 1 << len(qubits)
	u := cmat.Identity(dim)
	return applyGateToMatrix(&local, u, len(qubits))
}

// EmbedOnQubits is the exported form of embedOnQubits used by the schmidt and
// cut packages when constructing joint-cut block matrices.
func EmbedOnQubits(g *gate.Gate, qubits []int) *cmat.Matrix {
	return embedOnQubits(g, qubits)
}

// DependencyDAG captures the ordering constraints of a circuit: an edge
// i -> j (i < j) means gate i must run before gate j because they share a
// qubit and do not commute. Reorderings that respect the DAG leave the
// circuit unitary unchanged.
type DependencyDAG struct {
	N    int
	Succ [][]int // Succ[i]: gates that must come after i
	Pred [][]int // Pred[j]: gates that must come before j
}

// BuildDAG computes the dependency DAG of c. Transitive edges are included
// only between gates with overlapping supports (which is sufficient: any
// dependency chain is preserved by composition of these edges).
func BuildDAG(c *Circuit) *DependencyDAG {
	n := len(c.Gates)
	d := &DependencyDAG{N: n, Succ: make([][]int, n), Pred: make([][]int, n)}
	for j := 0; j < n; j++ {
		for i := 0; i < j; i++ {
			gi, gj := &c.Gates[i], &c.Gates[j]
			if !gi.SharesQubit(gj) {
				continue
			}
			if Commute(gi, gj) {
				continue
			}
			d.Succ[i] = append(d.Succ[i], j)
			d.Pred[j] = append(d.Pred[j], i)
		}
	}
	return d
}

// ContractAndOrder treats each group in groups as a super-node that must be
// scheduled contiguously (members in original relative order) and returns a
// topological order of all gate indices, or ok=false if the contraction
// creates a cycle (i.e. the grouping is invalid under the commutation
// constraints). Gates not in any group are singleton nodes. Ties are broken
// by smallest original index, giving a deterministic, stable order.
func (d *DependencyDAG) ContractAndOrder(groups [][]int) (order []int, ok bool) {
	// node id per gate: groups get ids 0..len(groups)-1, singletons follow.
	nodeOf := make([]int, d.N)
	for i := range nodeOf {
		nodeOf[i] = -1
	}
	for gi, grp := range groups {
		for _, idx := range grp {
			if nodeOf[idx] != -1 {
				return nil, false // overlapping groups
			}
			nodeOf[idx] = gi
		}
	}
	numNodes := len(groups)
	members := make([][]int, len(groups))
	for gi, grp := range groups {
		members[gi] = append([]int(nil), grp...)
		sort.Ints(members[gi])
	}
	for i := 0; i < d.N; i++ {
		if nodeOf[i] == -1 {
			nodeOf[i] = numNodes
			members = append(members, []int{i})
			numNodes++
		}
	}

	// Contracted edges.
	succ := make([]map[int]bool, numNodes)
	indeg := make([]int, numNodes)
	for i := range succ {
		succ[i] = make(map[int]bool)
	}
	for i := 0; i < d.N; i++ {
		for _, j := range d.Succ[i] {
			a, b := nodeOf[i], nodeOf[j]
			if a == b {
				continue
			}
			if !succ[a][b] {
				succ[a][b] = true
				indeg[b]++
			}
		}
	}

	// Kahn's algorithm with smallest-first-member tie-break.
	firstIdx := make([]int, numNodes)
	for v := 0; v < numNodes; v++ {
		firstIdx[v] = members[v][0]
	}
	var ready []int
	for v := 0; v < numNodes; v++ {
		if indeg[v] == 0 {
			ready = append(ready, v)
		}
	}
	order = make([]int, 0, d.N)
	for len(ready) > 0 {
		// Pick the ready node with the smallest first member.
		best := 0
		for i := 1; i < len(ready); i++ {
			if firstIdx[ready[i]] < firstIdx[ready[best]] {
				best = i
			}
		}
		v := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		order = append(order, members[v]...)
		for w := range succ[v] {
			indeg[w]--
			if indeg[w] == 0 {
				ready = append(ready, w)
			}
		}
	}
	if len(order) != d.N {
		return nil, false // cycle: grouping invalid
	}
	return order, true
}

// Reorder returns a new circuit with gates in the given index order.
func (c *Circuit) Reorder(order []int) *Circuit {
	out := New(c.NumQubits)
	out.Gates = make([]gate.Gate, len(order))
	for newI, oldI := range order {
		out.Gates[newI] = c.Gates[oldI]
	}
	return out
}
