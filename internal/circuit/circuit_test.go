package circuit

import (
	"math"
	"math/rand"
	"testing"

	"hsfsim/internal/cmat"
	"hsfsim/internal/gate"
)

func bellCircuit() *Circuit {
	c := New(2)
	c.Append(gate.H(0), gate.CNOT(0, 1))
	return c
}

func TestBellUnitary(t *testing.T) {
	u := bellCircuit().Unitary()
	// Column 0 of the unitary is the Bell state (|00>+|11>)/√2.
	s := math.Sqrt2 / 2
	want := []complex128{complex(s, 0), 0, 0, complex(s, 0)}
	for i, w := range want {
		if d := u.At(i, 0) - w; real(d)*real(d)+imag(d)*imag(d) > 1e-20 {
			t.Fatalf("Bell column = [%v %v %v %v], want (|00>+|11>)/sqrt2",
				u.At(0, 0), u.At(1, 0), u.At(2, 0), u.At(3, 0))
		}
	}
}

func TestValidate(t *testing.T) {
	c := New(2)
	c.Append(gate.H(0))
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	c.Append(gate.CNOT(1, 2)) // out of range
	if err := c.Validate(); err == nil {
		t.Fatal("out-of-range gate not rejected")
	}
}

func TestDepth(t *testing.T) {
	c := New(3)
	if c.Depth() != 0 {
		t.Fatal("empty circuit depth != 0")
	}
	c.Append(gate.H(0), gate.H(1), gate.H(2)) // parallel layer
	if d := c.Depth(); d != 1 {
		t.Fatalf("depth = %d, want 1", d)
	}
	c.Append(gate.CNOT(0, 1), gate.CNOT(1, 2))
	if d := c.Depth(); d != 3 {
		t.Fatalf("depth = %d, want 3", d)
	}
}

func TestNumTwoQubitGates(t *testing.T) {
	c := New(3)
	c.Append(gate.H(0), gate.CNOT(0, 1), gate.RZZ(0.3, 1, 2), gate.X(2))
	if n := c.NumTwoQubitGates(); n != 2 {
		t.Fatalf("NumTwoQubitGates = %d, want 2", n)
	}
	h := c.GateCountByName()
	if h["h"] != 1 || h["cx"] != 1 || h["rzz"] != 1 || h["x"] != 1 {
		t.Fatalf("histogram wrong: %v", h)
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := bellCircuit()
	d := c.Clone()
	d.Gates[0].Matrix.Set(0, 0, 42)
	if c.Gates[0].Matrix.At(0, 0) == 42 {
		t.Fatal("Clone shares gate matrices")
	}
}

func TestCommuteDisjoint(t *testing.T) {
	a := gate.CNOT(0, 1)
	b := gate.CNOT(2, 3)
	if !Commute(&a, &b) {
		t.Fatal("disjoint gates must commute")
	}
}

func TestCommuteDiagonal(t *testing.T) {
	a := gate.RZZ(0.3, 0, 1)
	b := gate.RZZ(0.9, 1, 2)
	if !Commute(&a, &b) {
		t.Fatal("RZZ gates must commute")
	}
	cz := gate.CZ(1, 4)
	if !Commute(&a, &cz) {
		t.Fatal("RZZ and CZ must commute")
	}
}

func TestCommuteExplicit(t *testing.T) {
	// X on the control of a CNOT does not commute with it.
	x := gate.X(0)
	cx := gate.CNOT(0, 1)
	if Commute(&x, &cx) {
		t.Fatal("X on control should not commute with CNOT")
	}
	// X on the *target* of a CNOT commutes with it.
	xt := gate.X(1)
	if !Commute(&xt, &cx) {
		t.Fatal("X on target should commute with CNOT")
	}
	// Z on the control commutes.
	z := gate.Z(0)
	if !Commute(&z, &cx) {
		t.Fatal("Z on control should commute with CNOT")
	}
	// RX does not commute with RZZ on a shared qubit.
	rx := gate.RX(0.5, 1)
	rzz := gate.RZZ(0.5, 1, 2)
	if Commute(&rx, &rzz) {
		t.Fatal("RX should not commute with RZZ on shared qubit")
	}
}

func TestEmbedOnQubits(t *testing.T) {
	// Embedding H(5) on register [3,5] must equal H ⊗ I in the (bit1=5,
	// bit0=3) convention: H acts on bit 1.
	h := gate.H(5)
	m := EmbedOnQubits(&h, []int{3, 5})
	want := cmat.Kron(gate.H(0).Matrix, cmat.Identity(2))
	if !cmat.EqualTol(m, want, 1e-12) {
		t.Fatalf("embed H on high bit wrong:\n%v\nwant\n%v", m, want)
	}
	// Embedding on the low bit: I ⊗ H.
	h3 := gate.H(3)
	m = EmbedOnQubits(&h3, []int{3, 5})
	want = cmat.Kron(cmat.Identity(2), gate.H(0).Matrix)
	if !cmat.EqualTol(m, want, 1e-12) {
		t.Fatal("embed H on low bit wrong")
	}
}

func TestDAGRespectsOrder(t *testing.T) {
	c := New(2)
	c.Append(gate.H(0), gate.RZZ(0.4, 0, 1), gate.RX(0.3, 0))
	d := BuildDAG(c)
	// H(0) -> RZZ and H(0) -> RX (both share qubit 0 and fail to commute),
	// and RZZ -> RX.
	if len(d.Succ[0]) != 2 || d.Succ[0][0] != 1 || d.Succ[0][1] != 2 {
		t.Fatalf("Succ[0] = %v, want [1 2]", d.Succ[0])
	}
	if len(d.Succ[1]) != 1 || d.Succ[1][0] != 2 {
		t.Fatalf("Succ[1] = %v", d.Succ[1])
	}
}

func TestContractAndOrderValidGroup(t *testing.T) {
	// Commuting RZZ layer: [rzz01, rzz12, rzz01'] — grouping gates 0 and 2 is
	// valid because everything commutes.
	c := New(3)
	c.Append(gate.RZZ(0.1, 0, 1), gate.RZZ(0.2, 1, 2), gate.RZZ(0.3, 0, 1))
	d := BuildDAG(c)
	order, ok := d.ContractAndOrder([][]int{{0, 2}})
	if !ok {
		t.Fatal("valid group rejected")
	}
	// Members 0 and 2 must be adjacent in the order.
	pos := make(map[int]int)
	for p, idx := range order {
		pos[idx] = p
	}
	if abs(pos[0]-pos[2]) != 1 {
		t.Fatalf("group not contiguous in order %v", order)
	}
}

func TestContractAndOrderInvalidGroup(t *testing.T) {
	// H(1) between two RZZ gates on qubit 1 creates a dependency cycle when
	// the RZZs are grouped: rzz -> h -> rzz and group -> group.
	c := New(2)
	c.Append(gate.RZZ(0.1, 0, 1), gate.H(1), gate.RZZ(0.2, 0, 1))
	d := BuildDAG(c)
	if _, ok := d.ContractAndOrder([][]int{{0, 2}}); ok {
		t.Fatal("cyclic grouping accepted")
	}
}

func TestContractAndOrderOverlappingGroups(t *testing.T) {
	c := New(2)
	c.Append(gate.RZZ(0.1, 0, 1), gate.RZZ(0.2, 0, 1))
	d := BuildDAG(c)
	if _, ok := d.ContractAndOrder([][]int{{0, 1}, {1}}); ok {
		t.Fatal("overlapping groups accepted")
	}
}

func TestReorderPreservesUnitary(t *testing.T) {
	// Random circuits of commuting diagonal gates: any DAG-respecting order
	// preserves the unitary.
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 10; trial++ {
		c := New(4)
		for i := 0; i < 8; i++ {
			a := rng.Intn(4)
			b := (a + 1 + rng.Intn(3)) % 4
			c.Append(gate.RZZ(rng.Float64(), a, b))
		}
		c.Append(gate.RX(0.7, 0)) // one non-commuting gate at the end
		d := BuildDAG(c)
		// Group the first and fifth gates.
		order, ok := d.ContractAndOrder([][]int{{0, 4}})
		if !ok {
			t.Fatal("grouping commuting gates failed")
		}
		r := c.Reorder(order)
		if !cmat.EqualTol(c.Unitary(), r.Unitary(), 1e-9) {
			t.Fatalf("trial %d: reordering changed the unitary", trial)
		}
	}
}

func TestReorderGeneralCircuitPreservesUnitary(t *testing.T) {
	// A mixed circuit where some gates do not commute: the identity order and
	// the DAG order with no groups must both reproduce the unitary.
	c := New(3)
	c.Append(gate.H(0), gate.CNOT(0, 1), gate.RZZ(0.5, 1, 2), gate.RX(0.3, 2), gate.CZ(0, 2))
	d := BuildDAG(c)
	order, ok := d.ContractAndOrder(nil)
	if !ok {
		t.Fatal("trivial contraction failed")
	}
	r := c.Reorder(order)
	if !cmat.EqualTol(c.Unitary(), r.Unitary(), 1e-9) {
		t.Fatal("DAG order changed the unitary")
	}
}

func TestInverseUndoesCircuit(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	c := New(3)
	for i := 0; i < 10; i++ {
		a := rng.Intn(3)
		b := (a + 1 + rng.Intn(2)) % 3
		switch rng.Intn(4) {
		case 0:
			c.Append(gate.H(a))
		case 1:
			c.Append(gate.T(a))
		case 2:
			c.Append(gate.ISWAP(a, b))
		default:
			c.Append(gate.RZZ(rng.Float64(), a, b))
		}
	}
	inv := c.Inverse()
	if len(inv.Gates) != len(c.Gates) {
		t.Fatal("gate count changed")
	}
	combined := New(3)
	combined.Append(c.Gates...)
	combined.Append(inv.Gates...)
	if !cmat.EqualTol(combined.Unitary(), cmat.Identity(8), 1e-9) {
		t.Fatal("U·U† != I")
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
