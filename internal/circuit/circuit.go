// Package circuit provides the quantum circuit intermediate representation:
// an ordered gate list over a fixed qubit register, plus the structural
// analyses needed by the HSF cut planner — pairwise commutation checks and a
// dependency DAG that decides when gates may be reordered to make joint-cut
// blocks contiguous.
package circuit

import (
	"fmt"

	"hsfsim/internal/cmat"
	"hsfsim/internal/gate"
)

// Circuit is an ordered list of gates acting on NumQubits qubits.
type Circuit struct {
	NumQubits int
	Gates     []gate.Gate
}

// New returns an empty circuit on n qubits.
func New(n int) *Circuit {
	if n <= 0 {
		panic(fmt.Sprintf("circuit: non-positive qubit count %d", n))
	}
	return &Circuit{NumQubits: n}
}

// Append adds gates to the end of the circuit.
func (c *Circuit) Append(gs ...gate.Gate) {
	c.Gates = append(c.Gates, gs...)
}

// Clone returns a deep copy of the circuit.
func (c *Circuit) Clone() *Circuit {
	out := New(c.NumQubits)
	out.Gates = make([]gate.Gate, len(c.Gates))
	for i := range c.Gates {
		out.Gates[i] = c.Gates[i].Clone()
	}
	return out
}

// Validate checks that every gate is self-consistent and fits the register.
func (c *Circuit) Validate() error {
	for i := range c.Gates {
		g := &c.Gates[i]
		if err := g.Validate(); err != nil {
			return fmt.Errorf("gate %d: %w", i, err)
		}
		if g.MaxQubit() >= c.NumQubits {
			return fmt.Errorf("gate %d (%s): qubit out of range for %d-qubit circuit", i, g.Name, c.NumQubits)
		}
	}
	return nil
}

// NumTwoQubitGates counts gates acting on two or more qubits.
func (c *Circuit) NumTwoQubitGates() int {
	n := 0
	for i := range c.Gates {
		if c.Gates[i].NumQubits() >= 2 {
			n++
		}
	}
	return n
}

// Depth returns the circuit depth: the length of the longest chain of gates
// sharing qubits, computed by per-qubit layering.
func (c *Circuit) Depth() int {
	layer := make([]int, c.NumQubits)
	depth := 0
	for i := range c.Gates {
		g := &c.Gates[i]
		l := 0
		for _, q := range g.Qubits {
			if layer[q] > l {
				l = layer[q]
			}
		}
		l++
		for _, q := range g.Qubits {
			layer[q] = l
		}
		if l > depth {
			depth = l
		}
	}
	return depth
}

// GateCountByName returns a histogram of gate names, useful for reporting
// instance specifications (Table II).
func (c *Circuit) GateCountByName() map[string]int {
	h := make(map[string]int)
	for i := range c.Gates {
		h[c.Gates[i].Name]++
	}
	return h
}

// Unitary computes the full 2^n × 2^n circuit unitary by applying every gate
// to an identity matrix. Exponential in NumQubits; intended for verification
// on small circuits and for building joint-cut block matrices on a block's
// touched qubits.
func (c *Circuit) Unitary() *cmat.Matrix {
	dim := 1 << c.NumQubits
	u := cmat.Identity(dim)
	for i := range c.Gates {
		u = applyGateToMatrix(&c.Gates[i], u, c.NumQubits)
	}
	return u
}

// applyGateToMatrix left-multiplies the embedded gate onto u: u <- G·u, by
// applying the gate to each column of u viewed as a statevector.
func applyGateToMatrix(g *gate.Gate, u *cmat.Matrix, n int) *cmat.Matrix {
	dim := u.Rows
	out := cmat.New(dim, u.Cols)
	col := make([]complex128, dim)
	for j := 0; j < u.Cols; j++ {
		for i := 0; i < dim; i++ {
			col[i] = u.Data[i*u.Cols+j]
		}
		applyGateToVector(g, col)
		for i := 0; i < dim; i++ {
			out.Data[i*u.Cols+j] = col[i]
		}
	}
	return out
}

// applyGateToVector applies g in place to a state over n qubits where
// len(state) = 2^n. This is a compact reference implementation; the
// performance-tuned version lives in package statevec.
func applyGateToVector(g *gate.Gate, state []complex128) {
	k := g.NumQubits()
	kdim := 1 << k
	// Enumerate the non-target bits and gather/scatter the target amplitudes.
	targets := append([]int(nil), g.Qubits...)
	outer := len(state) >> k
	in := make([]complex128, kdim)
	for o := 0; o < outer; o++ {
		base := expandIndex(o, targets)
		for t := 0; t < kdim; t++ {
			in[t] = state[base|spreadBits(t, g.Qubits)]
		}
		for t := 0; t < kdim; t++ {
			var s complex128
			row := g.Matrix.Data[t*kdim : (t+1)*kdim]
			for u, iv := range in {
				s += row[u] * iv
			}
			state[base|spreadBits(t, g.Qubits)] = s
		}
	}
}

// spreadBits distributes bit k of t to position qubits[k].
func spreadBits(t int, qubits []int) int {
	out := 0
	for k, q := range qubits {
		out |= ((t >> k) & 1) << q
	}
	return out
}

// expandIndex inserts zero bits at each position in targets (which need not
// be sorted), mapping a compact index over the non-target bits to a full
// index with zeros at the target positions.
func expandIndex(o int, targets []int) int {
	// Insert in ascending position order.
	sorted := append([]int(nil), targets...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	for _, p := range sorted {
		low := o & ((1 << p) - 1)
		o = (o>>p)<<(p+1) | low
	}
	return o
}

// Inverse returns the circuit implementing the adjoint unitary: gates in
// reverse order with each matrix conjugate-transposed.
func (c *Circuit) Inverse() *Circuit {
	out := New(c.NumQubits)
	out.Gates = make([]gate.Gate, len(c.Gates))
	for i := range c.Gates {
		g := c.Gates[len(c.Gates)-1-i].Dagger()
		if g.Name != "" {
			g.Name = g.Name + "†"
		}
		out.Gates[i] = g
	}
	return out
}

// String renders the circuit one gate per line.
func (c *Circuit) String() string {
	s := fmt.Sprintf("circuit(%d qubits, %d gates)\n", c.NumQubits, len(c.Gates))
	for i := range c.Gates {
		s += "  " + c.Gates[i].String() + "\n"
	}
	return s
}
