package graph

import "fmt"

// CutValue returns the weight of edges crossing the bipartition encoded in
// the bitmask assignment: bit v of assignment is the side of vertex v.
func (g *Graph) CutValue(assignment uint64) float64 {
	var w float64
	for _, e := range g.Edges {
		if (assignment>>uint(e.U))&1 != (assignment>>uint(e.V))&1 {
			w += e.W
		}
	}
	return w
}

// BruteForceMaxCut enumerates all bipartitions (feasible up to ~28 vertices)
// and returns the best cut value and one optimal assignment.
func (g *Graph) BruteForceMaxCut() (best float64, assignment uint64, err error) {
	if g.N > 28 {
		return 0, 0, fmt.Errorf("graph: %d vertices too many for brute force", g.N)
	}
	if g.N == 0 {
		return 0, 0, nil
	}
	// Fixing vertex 0 on side 0 halves the search space.
	total := uint64(1) << uint(g.N-1)
	for a := uint64(0); a < total; a++ {
		mask := a << 1 // vertex 0 stays 0
		if v := g.CutValue(mask); v > best {
			best = v
			assignment = mask
		}
	}
	return best, assignment, nil
}

// ExpectedCutFromProbabilities computes E[cut] = Σ_x p(x)·cut(x) given basis
// state probabilities p over the first len(probs) computational basis states
// (vertex v ↔ qubit v). Used by the QAOA example to score circuit output.
func (g *Graph) ExpectedCutFromProbabilities(probs []float64) float64 {
	var e float64
	for x, p := range probs {
		if p == 0 {
			continue
		}
		e += p * g.CutValue(uint64(x))
	}
	return e
}

// QUBO is a quadratic unconstrained binary optimization instance:
// minimize xᵀQx over x ∈ {0,1}^N with symmetric Q (paper Sec. V cites the
// classic reduction of any QUBO to weighted MaxCut).
type QUBO struct {
	N int
	Q [][]float64
}

// NewQUBO returns a zero QUBO on n variables.
func NewQUBO(n int) *QUBO {
	q := make([][]float64, n)
	for i := range q {
		q[i] = make([]float64, n)
	}
	return &QUBO{N: n, Q: q}
}

// Value evaluates xᵀQx for the bitmask x.
func (q *QUBO) Value(x uint64) float64 {
	var v float64
	for i := 0; i < q.N; i++ {
		if (x>>uint(i))&1 == 0 {
			continue
		}
		for j := 0; j < q.N; j++ {
			if (x>>uint(j))&1 == 1 {
				v += q.Q[i][j]
			}
		}
	}
	return v
}

// ToMaxCut reduces the QUBO to a weighted MaxCut instance on N+1 vertices
// using the standard transformation (Ivănescu 1965; Barahona et al. 1989):
// variable i maps to vertex i+1, the extra vertex 0 anchors the linear
// terms, and minimizing xᵀQx equals a constant minus the maximum cut.
//
// With s_i = 1-2x_i ∈ {±1} and s_0 fixed, x_i = (1-s_0·s_{i+1})/2; the cut
// weight between u,v collects the coefficient of s_u·s_v.
func (q *QUBO) ToMaxCut() (*Graph, float64) {
	n := q.N
	g := New(n + 1)
	// Coefficient bookkeeping: x_i x_j = (1 - s_0 s_i - s_0 s_j + s_i s_j)/4
	// (for i≠j, with s_i meaning vertex i+1); x_i² = x_i = (1 - s_0 s_i)/2.
	// Minimize Σ Q_ij x_i x_j  ⇔  maximize the cut of the graph whose edge
	// (u,v) weight is minus the s_u s_v coefficient, up to a constant.
	type key struct{ u, v int }
	coef := make(map[key]float64)
	var constant float64
	addPair := func(u, v int, w float64) {
		if u == v {
			constant += w
			return
		}
		if u > v {
			u, v = v, u
		}
		coef[key{u, v}] += w
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			w := q.Q[i][j]
			if w == 0 {
				continue
			}
			if i == j {
				// x_i = (1 - s_0 s_{i+1})/2
				constant += w / 2
				addPair(0, i+1, -w/2)
			} else {
				// x_i x_j = (1 - s_0 s_{i+1} - s_0 s_{j+1} + s_{i+1} s_{j+1})/4
				constant += w / 4
				addPair(0, i+1, -w/4)
				addPair(0, j+1, -w/4)
				addPair(i+1, j+1, w/4)
			}
		}
	}
	// s_u s_v = 1 - 2·[u,v cut]; Σ c_uv s_u s_v = Σ c_uv - 2 Σ c_uv·cut_uv.
	// Minimizing constant + Σ c_uv s_u s_v means maximizing Σ c_uv·cut_uv.
	var coefSum float64
	for k, w := range coef {
		coefSum += w
		g.Edges = append(g.Edges, Edge{U: k.u, V: k.v, W: w})
	}
	g.SortEdges()
	offset := constant + coefSum
	// minimum QUBO value = offset - 2·maxcut(g)  (weights may be negative).
	return g, offset
}
