// Package graph provides the problem-graph substrate for the QAOA
// evaluation: weighted undirected graphs, the stochastic block model used by
// the paper's Table II instances (networkx' stochastic_block_model
// equivalent), and MaxCut utilities including the QUBO reduction the paper
// cites as motivation.
package graph

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"
)

// Edge is an undirected weighted edge with U < V.
type Edge struct {
	U, V int
	W    float64
}

// Graph is a weighted undirected graph on vertices 0..N-1.
type Graph struct {
	N     int
	Edges []Edge
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	return &Graph{N: n}
}

// AddEdge inserts an undirected edge; endpoints are normalized to U < V.
// Self-loops are rejected.
func (g *Graph) AddEdge(u, v int, w float64) error {
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	if u < 0 || v < 0 || u >= g.N || v >= g.N {
		return fmt.Errorf("graph: edge (%d,%d) out of range for %d vertices", u, v, g.N)
	}
	if u > v {
		u, v = v, u
	}
	g.Edges = append(g.Edges, Edge{U: u, V: v, W: w})
	return nil
}

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// Degree returns the per-vertex degree histogram.
func (g *Graph) Degree() []int {
	d := make([]int, g.N)
	for _, e := range g.Edges {
		d[e.U]++
		d[e.V]++
	}
	return d
}

// SortEdges orders edges lexicographically for deterministic circuits.
func (g *Graph) SortEdges() {
	sort.Slice(g.Edges, func(i, j int) bool {
		if g.Edges[i].U != g.Edges[j].U {
			return g.Edges[i].U < g.Edges[j].U
		}
		return g.Edges[i].V < g.Edges[j].V
	})
}

// StochasticBlockModel samples a graph with len(sizes) vertex blocks;
// vertices in block i and block j are connected independently with
// probability p[i][j] (p must be symmetric). Vertices are numbered block by
// block: block 0 holds vertices 0..sizes[0]-1 and so on, matching networkx'
// stochastic_block_model used for the paper's Table II instances. All edges
// get weight 1.
func StochasticBlockModel(sizes []int, p [][]float64, rng *rand.Rand) (*Graph, error) {
	k := len(sizes)
	if len(p) != k {
		return nil, fmt.Errorf("graph: probability matrix is %dx?, want %dx%d", len(p), k, k)
	}
	n := 0
	offset := make([]int, k)
	for i, s := range sizes {
		if s < 0 {
			return nil, fmt.Errorf("graph: negative block size %d", s)
		}
		if len(p[i]) != k {
			return nil, fmt.Errorf("graph: probability row %d has %d entries, want %d", i, len(p[i]), k)
		}
		offset[i] = n
		n += s
	}
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if p[i][j] < 0 || p[i][j] > 1 {
				return nil, fmt.Errorf("graph: probability p[%d][%d]=%g out of [0,1]", i, j, p[i][j])
			}
			if p[i][j] != p[j][i] {
				return nil, fmt.Errorf("graph: probability matrix not symmetric at (%d,%d)", i, j)
			}
		}
	}
	g := New(n)
	for bi := 0; bi < k; bi++ {
		for bj := bi; bj < k; bj++ {
			prob := p[bi][bj]
			if prob == 0 {
				continue
			}
			for u := offset[bi]; u < offset[bi]+sizes[bi]; u++ {
				vStart := offset[bj]
				if bi == bj {
					vStart = u + 1
				}
				for v := vStart; v < offset[bj]+sizes[bj]; v++ {
					if rng.Float64() < prob {
						g.Edges = append(g.Edges, Edge{U: u, V: v, W: 1})
					}
				}
			}
		}
	}
	g.SortEdges()
	return g, nil
}

// TwoBlockModel is the paper's instance generator: two blocks with intra-
// and inter-partition probabilities (Table II's p_intra / p_inter).
func TwoBlockModel(sizeA, sizeB int, pIntra, pInter float64, rng *rand.Rand) (*Graph, error) {
	return StochasticBlockModel(
		[]int{sizeA, sizeB},
		[][]float64{{pIntra, pInter}, {pInter, pIntra}},
		rng,
	)
}

// ErdosRenyi samples G(n, p) with unit edge weights.
func ErdosRenyi(n int, p float64, rng *rand.Rand) (*Graph, error) {
	return StochasticBlockModel([]int{n}, [][]float64{{p}}, rng)
}

// RandomizeWeights assigns each edge an independent uniform weight in
// [lo, hi), turning an unweighted instance into a weighted MaxCut problem
// (the paper notes any QUBO reduces to *weighted* MaxCut).
func (g *Graph) RandomizeWeights(lo, hi float64, rng *rand.Rand) error {
	if hi < lo {
		return fmt.Errorf("graph: weight range [%g, %g) is empty", lo, hi)
	}
	for i := range g.Edges {
		g.Edges[i].W = lo + rng.Float64()*(hi-lo)
	}
	return nil
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() float64 {
	var w float64
	for _, e := range g.Edges {
		w += e.W
	}
	return w
}

// WriteDOT renders the graph in Graphviz DOT format; vertices up to cutPos
// are grouped in one cluster and the rest in another, visualizing the
// partition the HSF cut uses. Pass cutPos < 0 to skip clustering.
func (g *Graph) WriteDOT(w io.Writer, cutPos int) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "graph G {")
	if cutPos >= 0 && cutPos < g.N-1 {
		fmt.Fprintln(bw, "  subgraph cluster_lower {\n    label=\"lower partition\";")
		for v := 0; v <= cutPos; v++ {
			fmt.Fprintf(bw, "    %d;\n", v)
		}
		fmt.Fprintln(bw, "  }")
		fmt.Fprintln(bw, "  subgraph cluster_upper {\n    label=\"upper partition\";")
		for v := cutPos + 1; v < g.N; v++ {
			fmt.Fprintf(bw, "    %d;\n", v)
		}
		fmt.Fprintln(bw, "  }")
	}
	for _, e := range g.Edges {
		attr := ""
		if cutPos >= 0 && e.U <= cutPos && e.V > cutPos {
			attr = " [color=red]"
		}
		if e.W != 1 {
			if attr == "" {
				attr = fmt.Sprintf(" [label=\"%g\"]", e.W)
			} else {
				attr = fmt.Sprintf(" [color=red,label=\"%g\"]", e.W)
			}
		}
		fmt.Fprintf(bw, "  %d -- %d%s;\n", e.U, e.V, attr)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// CrossingEdges counts edges with one endpoint ≤ cutPos and one above —
// these become the crossing RZZ gates of the QAOA problem layer.
func (g *Graph) CrossingEdges(cutPos int) int {
	n := 0
	for _, e := range g.Edges {
		if e.U <= cutPos && e.V > cutPos {
			n++
		}
	}
	return n
}
