package graph

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 0, 1); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := g.AddEdge(0, 3, 1); err == nil {
		t.Fatal("out-of-range accepted")
	}
	if err := g.AddEdge(2, 1, 1); err != nil {
		t.Fatal(err)
	}
	if e := g.Edges[0]; e.U != 1 || e.V != 2 {
		t.Fatal("edge not normalized")
	}
}

func TestSBMStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	g, err := TwoBlockModel(8, 8, 1.0, 0.0, rng) // complete blocks, no crossing
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * (8 * 7 / 2)
	if g.NumEdges() != want {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), want)
	}
	if g.CrossingEdges(7) != 0 {
		t.Fatal("crossing edges with p_inter=0")
	}
	g, err = TwoBlockModel(4, 4, 0.0, 1.0, rng) // complete bipartite
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 16 || g.CrossingEdges(3) != 16 {
		t.Fatalf("bipartite: %d edges, %d crossing", g.NumEdges(), g.CrossingEdges(3))
	}
}

func TestSBMEdgeProbabilityStatistics(t *testing.T) {
	// Empirical edge density must match p within a loose statistical bound.
	rng := rand.New(rand.NewSource(71))
	const trials = 30
	var intra, inter float64
	for i := 0; i < trials; i++ {
		g, err := TwoBlockModel(10, 10, 0.8, 0.1, rng)
		if err != nil {
			t.Fatal(err)
		}
		cross := g.CrossingEdges(9)
		inter += float64(cross)
		intra += float64(g.NumEdges() - cross)
	}
	intraPairs := float64(trials * 2 * (10 * 9 / 2))
	interPairs := float64(trials * 100)
	if p := intra / intraPairs; math.Abs(p-0.8) > 0.05 {
		t.Fatalf("empirical p_intra = %g, want ~0.8", p)
	}
	if p := inter / interPairs; math.Abs(p-0.1) > 0.05 {
		t.Fatalf("empirical p_inter = %g, want ~0.1", p)
	}
}

func TestSBMDeterministicWithSeed(t *testing.T) {
	a, _ := TwoBlockModel(6, 6, 0.5, 0.2, rand.New(rand.NewSource(5)))
	b, _ := TwoBlockModel(6, 6, 0.5, 0.2, rand.New(rand.NewSource(5)))
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed gave different graphs")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("same seed gave different edges")
		}
	}
}

func TestSBMValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	if _, err := StochasticBlockModel([]int{2}, [][]float64{{1.5}}, rng); err == nil {
		t.Fatal("p > 1 accepted")
	}
	if _, err := StochasticBlockModel([]int{2, 2}, [][]float64{{0.5, 0.1}, {0.2, 0.5}}, rng); err == nil {
		t.Fatal("asymmetric matrix accepted")
	}
	if _, err := StochasticBlockModel([]int{2, 2}, [][]float64{{0.5}}, rng); err == nil {
		t.Fatal("ragged matrix accepted")
	}
	if _, err := StochasticBlockModel([]int{-1}, [][]float64{{0.5}}, rng); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestErdosRenyiDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	g, err := ErdosRenyi(40, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	pairs := 40 * 39 / 2
	density := float64(g.NumEdges()) / float64(pairs)
	if math.Abs(density-0.3) > 0.08 {
		t.Fatalf("density %g, want ~0.3", density)
	}
}

func TestCutValue(t *testing.T) {
	// Triangle with unit weights: any nontrivial bipartition cuts 2 edges.
	g := New(3)
	_ = g.AddEdge(0, 1, 1)
	_ = g.AddEdge(1, 2, 1)
	_ = g.AddEdge(0, 2, 1)
	if v := g.CutValue(0b001); v != 2 {
		t.Fatalf("cut = %g, want 2", v)
	}
	if v := g.CutValue(0); v != 0 {
		t.Fatalf("empty cut = %g", v)
	}
}

func TestBruteForceMaxCut(t *testing.T) {
	// Complete bipartite K_{2,3}: max cut = 6 (all edges).
	g := New(5)
	for u := 0; u < 2; u++ {
		for v := 2; v < 5; v++ {
			_ = g.AddEdge(u, v, 1)
		}
	}
	best, assign, err := g.BruteForceMaxCut()
	if err != nil {
		t.Fatal(err)
	}
	if best != 6 {
		t.Fatalf("max cut = %g, want 6", best)
	}
	if g.CutValue(assign) != best {
		t.Fatal("assignment does not achieve the reported value")
	}
}

func TestBruteForceMatchesExhaustive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := ErdosRenyi(8, 0.5, rng)
		if err != nil {
			return false
		}
		best, _, err := g.BruteForceMaxCut()
		if err != nil {
			return false
		}
		// Exhaustive check over all assignments (not halved).
		var m float64
		for a := uint64(0); a < 256; a++ {
			if v := g.CutValue(a); v > m {
				m = v
			}
		}
		return best == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestExpectedCutFromProbabilities(t *testing.T) {
	g := New(2)
	_ = g.AddEdge(0, 1, 3)
	// 50/50 mix of |01> and |00>: expected cut 1.5.
	probs := []float64{0.5, 0.5, 0, 0}
	if e := g.ExpectedCutFromProbabilities(probs); math.Abs(e-1.5) > 1e-12 {
		t.Fatalf("expected cut = %g, want 1.5", e)
	}
}

func TestQUBOToMaxCutConsistency(t *testing.T) {
	// For random small QUBOs, min_x xᵀQx must equal offset - 2·maxcut.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		q := NewQUBO(n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				w := math.Round(rng.NormFloat64()*4) / 2
				q.Q[i][j] = w
				q.Q[j][i] = w
			}
		}
		// Brute-force QUBO minimum.
		minV := math.Inf(1)
		for x := uint64(0); x < 1<<uint(n); x++ {
			if v := q.Value(x); v < minV {
				minV = v
			}
		}
		g, offset := q.ToMaxCut()
		// Brute-force max cut (weights may be negative; CutValue handles it).
		best := math.Inf(-1)
		for a := uint64(0); a < 1<<uint(g.N); a++ {
			if v := g.CutValue(a); v > best {
				best = v
			}
		}
		return math.Abs((offset-2*best)-minV) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDegree(t *testing.T) {
	g := New(4)
	_ = g.AddEdge(0, 1, 1)
	_ = g.AddEdge(0, 2, 1)
	_ = g.AddEdge(0, 3, 1)
	d := g.Degree()
	if d[0] != 3 || d[1] != 1 || d[2] != 1 || d[3] != 1 {
		t.Fatalf("degree = %v", d)
	}
}

func TestWriteDOT(t *testing.T) {
	g := New(4)
	_ = g.AddEdge(0, 1, 1)
	_ = g.AddEdge(1, 2, 2.5) // crossing + weighted
	_ = g.AddEdge(2, 3, 1)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph G {", "cluster_lower", "cluster_upper", "1 -- 2", "color=red", "2.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
	// No clustering when cutPos < 0.
	buf.Reset()
	if err := g.WriteDOT(&buf, -1); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "cluster") {
		t.Fatal("unexpected clusters")
	}
}
