// Checkpoint/resume for the array engine. The engine fans the leading cut
// levels out into independent prefix tasks; a checkpoint records which
// prefixes finished plus the partial accumulator merged from exactly those
// prefixes, so a resumed run only re-simulates the unfinished subtrees and
// produces the same amplitudes as an uninterrupted run.
//
// The on-disk format is a little-endian binary stream (encoding/gob cannot
// represent complex128):
//
//	magic "HSFCKP1\n" | planHash u64 | numQubits u32 | m u64 |
//	splitLevels u32 | numPrefixes u64 | prefixes (splitLevels × u32 each) |
//	pathsSimulated u64 | acc (m × 2 float64)
package hsf

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"

	"hsfsim/internal/cut"
)

var checkpointMagic = [8]byte{'H', 'S', 'F', 'C', 'K', 'P', '1', '\n'}

// ErrCheckpointMismatch is returned when a checkpoint was produced by a
// different plan (or different MaxAmplitudes) than the one being resumed.
var ErrCheckpointMismatch = errors.New("hsf: checkpoint does not match plan")

// ErrPrefixOverlap is returned by Checkpoint.Merge when the partial being
// merged contains a prefix that was already merged: folding it in would
// double-count its subtree's amplitudes.
var ErrPrefixOverlap = errors.New("hsf: partial overlaps already-merged prefixes")

// maxCheckpointPrefixes bounds the prefix table accepted from an untrusted
// checkpoint stream (the engine itself never exceeds ~4×workers tasks).
const maxCheckpointPrefixes = 1 << 24

// maxCheckpointSplitLevels bounds the per-prefix vector length accepted from
// an untrusted stream; real split depths are at most the plan's cut count.
const maxCheckpointSplitLevels = 1 << 16

// Checkpoint is a resumable snapshot of a partially executed plan.
type Checkpoint struct {
	// PlanHash fingerprints the plan (structure, cut ranks, Schmidt terms);
	// resuming against a different plan is rejected.
	PlanHash uint64
	// NumQubits and M pin the register size and accumulator length.
	NumQubits int
	M         int
	// SplitLevels is the number of leading cut levels expanded into prefix
	// tasks; a resumed run reuses it regardless of its own worker count.
	SplitLevels int
	// Prefixes lists the completed prefix choice vectors (each of length
	// SplitLevels).
	Prefixes [][]int
	// PathsSimulated counts the leaves contained in Acc.
	PathsSimulated int64
	// Acc is the partial accumulator summed over the completed prefixes.
	Acc []complex128
}

// Clone returns an independent deep copy. The prefix vectors themselves are
// shared: they are never mutated after creation. A distributed coordinator
// snapshots its merged state this way before streaming it to durable
// storage outside the merge lock.
func (ck *Checkpoint) Clone() *Checkpoint {
	cp := *ck
	cp.Prefixes = append([][]int(nil), ck.Prefixes...)
	cp.Acc = append([]complex128(nil), ck.Acc...)
	return &cp
}

// PlanHash fingerprints the structural identity of a plan: register size,
// partition, step sequence, and every cut's Schmidt spectrum. Two plans with
// equal hashes execute the same path tree.
func PlanHash(plan *cut.Plan) uint64 {
	h := fnv.New64a()
	buf := make([]byte, 8)
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(buf, v)
		h.Write(buf)
	}
	wf := func(v float64) { wu(math.Float64bits(v)) }
	wu(uint64(plan.NumQubits))
	wu(uint64(int64(plan.Partition.CutPos)))
	for _, st := range plan.Steps {
		wu(uint64(st.Kind))
		switch {
		case st.Cut != nil:
			wu(uint64(st.Cut.Rank()))
			for _, t := range st.Cut.Terms {
				wf(t.Sigma)
			}
			for _, q := range st.Cut.LowerQubits {
				wu(uint64(q))
			}
			for _, q := range st.Cut.UpperQubits {
				wu(uint64(q))
			}
		default:
			wu(uint64(st.Side))
			h.Write([]byte(st.Gate.Name))
			for _, q := range st.Gate.Qubits {
				wu(uint64(q))
			}
			for _, p := range st.Gate.Params {
				wf(p)
			}
			if mat := st.Gate.Matrix; mat != nil {
				for _, v := range mat.Data {
					wf(real(v))
					wf(imag(v))
				}
			}
		}
	}
	return h.Sum64()
}

// WriteCheckpoint serializes ck to w.
func WriteCheckpoint(w io.Writer, ck *Checkpoint) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(checkpointMagic[:]); err != nil {
		return err
	}
	wu := func(v uint64) error {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		_, err := bw.Write(buf[:])
		return err
	}
	w32 := func(v uint32) error {
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], v)
		_, err := bw.Write(buf[:])
		return err
	}
	if err := wu(ck.PlanHash); err != nil {
		return err
	}
	if err := w32(uint32(ck.NumQubits)); err != nil {
		return err
	}
	if err := wu(uint64(ck.M)); err != nil {
		return err
	}
	if err := w32(uint32(ck.SplitLevels)); err != nil {
		return err
	}
	if err := wu(uint64(len(ck.Prefixes))); err != nil {
		return err
	}
	for _, p := range ck.Prefixes {
		if len(p) != ck.SplitLevels {
			return fmt.Errorf("hsf: checkpoint prefix length %d != split levels %d", len(p), ck.SplitLevels)
		}
		for _, t := range p {
			if err := w32(uint32(t)); err != nil {
				return err
			}
		}
	}
	if err := wu(uint64(ck.PathsSimulated)); err != nil {
		return err
	}
	for _, a := range ck.Acc {
		if err := wu(math.Float64bits(real(a))); err != nil {
			return err
		}
		if err := wu(math.Float64bits(imag(a))); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCheckpoint deserializes a checkpoint written by WriteCheckpoint.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("hsf: reading checkpoint magic: %w", err)
	}
	if magic != checkpointMagic {
		return nil, errors.New("hsf: not a checkpoint file")
	}
	var buf [8]byte
	ru := func() (uint64, error) {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:]), nil
	}
	r32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(buf[:4]), nil
	}
	ck := &Checkpoint{}
	var err error
	if ck.PlanHash, err = ru(); err != nil {
		return nil, fmt.Errorf("hsf: reading checkpoint: %w", err)
	}
	nq, err := r32()
	if err != nil {
		return nil, fmt.Errorf("hsf: reading checkpoint: %w", err)
	}
	ck.NumQubits = int(nq)
	m, err := ru()
	if err != nil {
		return nil, fmt.Errorf("hsf: reading checkpoint: %w", err)
	}
	if m > uint64(math.MaxInt/bytesPerAmp) {
		return nil, fmt.Errorf("hsf: checkpoint accumulator length %d too large", m)
	}
	ck.M = int(m)
	sl, err := r32()
	if err != nil {
		return nil, fmt.Errorf("hsf: reading checkpoint: %w", err)
	}
	if sl > maxCheckpointSplitLevels {
		return nil, fmt.Errorf("hsf: checkpoint split levels %d too large", sl)
	}
	ck.SplitLevels = int(sl)
	np, err := ru()
	if err != nil {
		return nil, fmt.Errorf("hsf: reading checkpoint: %w", err)
	}
	if np > maxCheckpointPrefixes {
		return nil, fmt.Errorf("hsf: checkpoint prefix count %d too large", np)
	}
	// The prefix table and accumulator are appended to incrementally: the
	// hostile-length headers above only ever cost allocation proportional to
	// the bytes actually present in the stream, never the declared count.
	for i := uint64(0); i < np; i++ {
		p := make([]int, ck.SplitLevels)
		for j := range p {
			t, err := r32()
			if err != nil {
				return nil, fmt.Errorf("hsf: reading checkpoint prefixes: %w", err)
			}
			p[j] = int(t)
		}
		ck.Prefixes = append(ck.Prefixes, p)
	}
	ps, err := ru()
	if err != nil {
		return nil, fmt.Errorf("hsf: reading checkpoint: %w", err)
	}
	ck.PathsSimulated = int64(ps)
	for i := 0; i < ck.M; i++ {
		re, err := ru()
		if err != nil {
			return nil, fmt.Errorf("hsf: reading checkpoint accumulator: %w", err)
		}
		im, err := ru()
		if err != nil {
			return nil, fmt.Errorf("hsf: reading checkpoint accumulator: %w", err)
		}
		ck.Acc = append(ck.Acc, complex(math.Float64frombits(re), math.Float64frombits(im)))
	}
	return ck, nil
}

// Merge folds a partial accumulation over a disjoint prefix set into ck:
// the accumulators are summed, the prefix table and leaf counts extended.
// Both snapshots must come from the same plan, accumulator length, and split
// depth (ErrCheckpointMismatch otherwise), and no prefix may appear on both
// sides (ErrPrefixOverlap) — the guard that makes distributed merging
// at-most-once per prefix even when a lease is delivered twice. On error ck
// is unchanged.
func (ck *Checkpoint) Merge(p *Checkpoint) error {
	switch {
	case p.PlanHash != ck.PlanHash:
		return fmt.Errorf("%w: plan hash %016x != partial %016x",
			ErrCheckpointMismatch, ck.PlanHash, p.PlanHash)
	case p.NumQubits != ck.NumQubits:
		return fmt.Errorf("%w: %d qubits != partial %d",
			ErrCheckpointMismatch, ck.NumQubits, p.NumQubits)
	case p.M != ck.M || len(p.Acc) != len(ck.Acc):
		return fmt.Errorf("%w: accumulator length %d != partial %d",
			ErrCheckpointMismatch, ck.M, p.M)
	case p.SplitLevels != ck.SplitLevels:
		return fmt.Errorf("%w: split levels %d != partial %d",
			ErrCheckpointMismatch, ck.SplitLevels, p.SplitLevels)
	}
	seen := make(map[string]bool, len(ck.Prefixes))
	for _, q := range ck.Prefixes {
		seen[PrefixKey(q)] = true
	}
	for _, q := range p.Prefixes {
		if seen[PrefixKey(q)] {
			return fmt.Errorf("%w: prefix %v", ErrPrefixOverlap, q)
		}
	}
	for i, v := range p.Acc {
		ck.Acc[i] += v
	}
	ck.Prefixes = append(ck.Prefixes, p.Prefixes...)
	ck.PathsSimulated += p.PathsSimulated
	return nil
}

// validateFor checks that the checkpoint belongs to plan with accumulator
// length m and a compatible split depth.
func (ck *Checkpoint) validateFor(plan *cut.Plan, m int) error {
	if ck.PlanHash != PlanHash(plan) {
		return fmt.Errorf("%w: plan hash %016x != checkpoint %016x",
			ErrCheckpointMismatch, PlanHash(plan), ck.PlanHash)
	}
	if ck.NumQubits != plan.NumQubits {
		return fmt.Errorf("%w: %d qubits != checkpoint %d",
			ErrCheckpointMismatch, plan.NumQubits, ck.NumQubits)
	}
	if ck.M != m {
		return fmt.Errorf("%w: accumulator length %d != checkpoint %d (set MaxAmplitudes to match)",
			ErrCheckpointMismatch, m, ck.M)
	}
	if len(ck.Acc) != ck.M {
		return fmt.Errorf("%w: accumulator payload %d != header %d",
			ErrCheckpointMismatch, len(ck.Acc), ck.M)
	}
	if ck.SplitLevels < 0 || ck.SplitLevels > len(plan.Cuts) {
		return fmt.Errorf("%w: split levels %d out of range [0, %d]",
			ErrCheckpointMismatch, ck.SplitLevels, len(plan.Cuts))
	}
	for _, p := range ck.Prefixes {
		if len(p) != ck.SplitLevels {
			return fmt.Errorf("%w: prefix length %d != split levels %d",
				ErrCheckpointMismatch, len(p), ck.SplitLevels)
		}
		for l, t := range p {
			if t < 0 || t >= plan.Cuts[l].Rank() {
				return fmt.Errorf("%w: prefix term %d out of range for cut %d (rank %d)",
					ErrCheckpointMismatch, t, l, plan.Cuts[l].Rank())
			}
		}
	}
	return nil
}
