package hsf

import (
	"context"
	"math"
	"math/cmplx"
	"testing"

	"hsfsim/internal/cut"
	"hsfsim/internal/statevec"
	"hsfsim/internal/telemetry/trace"
)

// allocHarness compiles a many-cut plan and returns a dense-backend walker
// with its scratch accumulator, warmed so the workspace pool, the pair free
// list, and the frame stack have reached steady state.
func allocHarness(tb testing.TB) (*walker, statevec.Vector) {
	tb.Helper()
	c := manyCutCircuit(8, 6) // 2^6 = 64 leaves per replay
	plan, err := cut.BuildPlan(c, cut.Options{Partition: cut.Partition{CutPos: 3}})
	if err != nil {
		tb.Fatal(err)
	}
	e := &engine{
		backend: BackendDense,
		nLower:  plan.Partition.NumLower(),
		nUpper:  plan.Partition.NumUpper(plan.NumQubits),
		m:       resolveAmplitudes(plan, 0),
	}
	e.compile(plan, 0)
	ws, err := e.newWorkspace()
	if err != nil {
		tb.Fatal(err)
	}
	walk := &walker{e: e, ws: ws}
	scratch := statevec.MakeVector(e.m)
	for i := 0; i < 2; i++ { // warm the pools
		scratch.Clear()
		if _, err := walk.runPrefix(context.Background(), nil, scratch); err != nil {
			tb.Fatal(err)
		}
	}
	return walk, scratch
}

// BenchmarkRunBranchSteadyState measures one full path-tree replay (64
// leaves) on a warm walker. The interesting number is allocs/op: the pooled
// workspace keeps it at zero.
func BenchmarkRunBranchSteadyState(b *testing.B) {
	walk, scratch := allocHarness(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch.Clear()
		if _, err := walk.runPrefix(ctx, nil, scratch); err != nil {
			b.Fatal(err)
		}
	}
}

// TestZeroAllocsPerLeaf is the allocation regression guard: once the
// workspace is warm, simulating a path subtree must not allocate at all —
// forked states come from the pool, pair structs from the free list, frames
// from the retained stack, and the sequential gate kernels build no closures.
func TestZeroAllocsPerLeaf(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	walk, scratch := allocHarness(t)
	ctx := context.Background()
	var leaves int64
	allocs := testing.AllocsPerRun(10, func() {
		scratch.Clear()
		n, err := walk.runPrefix(ctx, nil, scratch)
		if err != nil {
			t.Fatal(err)
		}
		leaves += n
	})
	if allocs != 0 {
		t.Fatalf("steady-state walk allocated %.1f times per replay (%d leaves), want 0", allocs, leaves)
	}
}

// TestZeroAllocsPerLeafWithTracing re-runs the allocation guard with the
// flight recorder attached, exercising exactly what runTasks does per
// prefix task: start a span, walk the subtree, annotate, end. Tracing is
// recorded at prefix-batch granularity only, so the leaf loop — and the
// span lifecycle wrapped around it — must stay at zero allocations.
func TestZeroAllocsPerLeafWithTracing(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	walk, scratch := allocHarness(t)
	e := walk.e
	e.trc = trace.NewRecorder(512)
	root := e.trc.Start(trace.SpanContext{}, "walk")
	e.tsc = root.Context()
	defer root.End()

	ctx := context.Background()
	allocs := testing.AllocsPerRun(10, func() {
		scratch.Clear()
		sp := e.trc.Start(e.tsc, "prefix")
		sp.SetLane(1)
		n, err := walk.runPrefix(ctx, nil, scratch)
		sp.SetInt("leaves", n)
		if err != nil {
			t.Fatal(err)
		}
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("traced steady-state walk allocated %.1f times per replay, want 0", allocs)
	}
	if e.trc.Len() == 0 {
		t.Fatal("no spans recorded: the guard exercised nothing")
	}
}

// TestPoisonedPoolRunStaysFinite turns on the pool's NaN poisoning and
// replays the tree: if any code path read a released buffer before
// reinitializing it, the canary would propagate into the amplitudes.
func TestPoisonedPoolRunStaysFinite(t *testing.T) {
	walk, scratch := allocHarness(t)
	dws, ok := walk.ws.(*denseWorkspace)
	if !ok {
		t.Fatalf("workspace is %T, want *denseWorkspace", walk.ws)
	}
	dws.pool.Poison = true

	scratch.Clear()
	if _, err := walk.runPrefix(context.Background(), nil, scratch); err != nil {
		t.Fatal(err)
	}
	want := scratch.ToComplex()

	scratch.Clear()
	if _, err := walk.runPrefix(context.Background(), nil, scratch); err != nil {
		t.Fatal(err)
	}
	var norm float64
	for i := 0; i < scratch.Len(); i++ {
		v := scratch.Amplitude(i)
		if cmplx.IsNaN(v) || cmplx.IsInf(v) {
			t.Fatalf("amplitude %d = %v: a poisoned buffer leaked into the result", i, v)
		}
		norm += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Fatalf("norm = %g, want 1", norm)
	}
	if d := statevec.MaxAbsDiff(scratch.ToComplex(), want); d > 1e-12 {
		t.Fatalf("poisoned replays disagree: max diff %g", d)
	}
	if gets, reuses := dws.pool.Stats(); reuses == 0 {
		t.Fatalf("pool never reused a buffer (gets=%d): the poisoning test exercised nothing", gets)
	}
}
