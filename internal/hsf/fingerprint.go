// Circuit fingerprinting for plan caches and request batching. A fingerprint
// keys "would these two submissions compile to the same plan and produce the
// same amplitudes": the register size, the exact gate sequence (names,
// qubits, parameters, matrices), and — through FingerprintOptions — every
// plan-affecting knob. Unlike PlanHash it is computed without building the
// plan, so a cache can decide "hit" before paying for any Schmidt
// decomposition.
//
// The fingerprint is a cache key, not a canonical form: structurally
// equivalent circuits written differently (reordered commuting gates, a
// custom matrix equal to a library gate) may hash apart. That direction only
// costs a cache miss; two circuits with equal fingerprints always execute
// identically, because every byte that reaches the simulator is hashed.
package hsf

import (
	"encoding/binary"
	"hash/fnv"
	"math"

	"hsfsim/internal/circuit"
)

// CircuitFingerprint hashes the circuit itself: register size and the
// ordered gate list with names, qubit operands, parameters, and matrix
// entries. Stable across Clone and across parse/re-parse of the same source.
func CircuitFingerprint(c *circuit.Circuit) uint64 {
	h := fnv.New64a()
	buf := make([]byte, 8)
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(buf, v)
		h.Write(buf)
	}
	wf := func(v float64) { wu(math.Float64bits(v)) }
	wu(uint64(c.NumQubits))
	for i := range c.Gates {
		g := &c.Gates[i]
		h.Write([]byte(g.Name))
		h.Write([]byte{0}) // name terminator: ("ab","c") != ("a","bc")
		wu(uint64(len(g.Qubits)))
		for _, q := range g.Qubits {
			wu(uint64(q))
		}
		wu(uint64(len(g.Params)))
		for _, p := range g.Params {
			wf(p)
		}
		if g.Matrix != nil {
			wu(uint64(g.Matrix.Rows))
			for _, v := range g.Matrix.Data {
				wf(real(v))
				wf(imag(v))
			}
		} else {
			wu(0)
		}
	}
	return h.Sum64()
}

// FingerprintOptions extends a circuit fingerprint with the plan-affecting
// execution options; the values are hashed in the order given. Callers pass
// the normalized method, cut position, strategy, block budget, tolerance and
// flags — anything that changes the compiled plan or the amplitudes.
func FingerprintOptions(circuitFP uint64, fields ...uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], circuitFP)
	h.Write(buf[:])
	for _, f := range fields {
		binary.LittleEndian.PutUint64(buf[:], f)
		h.Write(buf[:])
	}
	return h.Sum64()
}
