package hsf

import (
	"math/rand"
	"testing"

	"hsfsim/internal/circuit"
	"hsfsim/internal/cut"
	"hsfsim/internal/gate"
	"hsfsim/internal/statevec"
)

func TestHSFMoreWorkersThanPaths(t *testing.T) {
	// A single rank-2 cut with 64 requested workers: the pool must shrink
	// to the available prefixes and still be correct.
	c := circuit.New(4)
	c.Append(gate.H(0), gate.RZZ(0.4, 1, 2))
	want := schrodinger(c)
	res := runHSF(t, c, 1, cut.StrategyNone, Options{Workers: 64})
	if d := statevec.MaxAbsDiff(res.Amplitudes, want); d > 1e-9 {
		t.Fatalf("max diff %g", d)
	}
	if res.PathsSimulated != 2 {
		t.Fatalf("paths simulated = %d", res.PathsSimulated)
	}
}

func TestHSFDeepCutChain(t *testing.T) {
	// Many consecutive separate cuts stress the recursion depth and the
	// clone-on-branch logic.
	rng := rand.New(rand.NewSource(400))
	c := circuit.New(6)
	for i := 0; i < 10; i++ {
		c.Append(gate.RZZ(rng.Float64(), 2, 3))
		c.Append(gate.RX(rng.Float64(), 2), gate.RX(rng.Float64(), 3))
	}
	want := schrodinger(c)
	res := runHSF(t, c, 2, cut.StrategyNone, Options{})
	if res.NumPaths != 1<<10 {
		t.Fatalf("paths = %d, want 1024", res.NumPaths)
	}
	if d := statevec.MaxAbsDiff(res.Amplitudes, want); d > 1e-8 {
		t.Fatalf("max diff %g", d)
	}
}

func TestHSFFusedSegmentsStayLocal(t *testing.T) {
	// Fusion inside the engine must never fuse across a cut point; verified
	// by agreement with no-fusion runs on a cut-heavy circuit with big
	// fusion budgets.
	rng := rand.New(rand.NewSource(401))
	c := randomQAOAish(rng, 7, 12)
	plan, err := cut.BuildPlan(c, cut.Options{Partition: cut.Partition{CutPos: 3}, Strategy: cut.StrategyCascade})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(plan, Options{FusionMaxQubits: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, fq := range []int{1, 2, 3, 4} {
		res, err := Run(plan, Options{FusionMaxQubits: fq})
		if err != nil {
			t.Fatal(err)
		}
		if d := statevec.MaxAbsDiff(base.Amplitudes, res.Amplitudes); d > 1e-9 {
			t.Fatalf("fusion budget %d diverges by %g", fq, d)
		}
	}
}
