//go:build !race

package hsf

// raceEnabled reports whether the race detector is compiled in. The
// zero-allocation guard skips under -race: the detector instruments
// allocations of its own.
const raceEnabled = false
