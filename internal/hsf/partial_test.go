// Tests for partial prefix runs: a canceled RunPrefixesPartialContext must
// return the prefixes it completed (not an error), and the returned partial
// must merge with the remainder into the exact full-run amplitudes. This is
// the primitive behind drained distributed workers returning their unfinished
// leases.
package hsf

import (
	"context"
	"math/cmplx"
	"math/rand"
	"testing"

	"hsfsim/internal/cut"
)

func TestRunPrefixesPartialContextReturnsCompletedSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := randomQAOAish(rng, 9, 12)
	plan, err := cut.BuildPlan(c, cut.Options{Partition: cut.Partition{CutPos: 4}, Strategy: cut.StrategyCascade})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	splitLevels := ChooseSplitLevels(plan, 8)
	prefixes := EnumeratePrefixes(plan, splitLevels)
	if len(prefixes) < 4 {
		t.Fatalf("want ≥ 4 prefix tasks, got %d", len(prefixes))
	}

	// Cancel after the first leaf: with one worker the run stops somewhere
	// strictly inside the prefix list.
	ctx, cancel := context.WithCancel(context.Background())
	opts := Options{Workers: 1, testHookLeaf: func(leaves int64) {
		if leaves >= 1 {
			cancel()
		}
	}}
	part, err := RunPrefixesPartialContext(ctx, plan, opts, splitLevels, prefixes)
	if err != nil {
		t.Fatalf("partial run: %v (want nil error on cancellation)", err)
	}
	if len(part.Prefixes) >= len(prefixes) {
		t.Fatalf("partial run completed all %d prefixes; cancellation had no effect", len(prefixes))
	}

	// The same cancellation through the strict entry point is an error.
	ctx2, cancel2 := context.WithCancel(context.Background())
	opts2 := Options{Workers: 1, testHookLeaf: func(leaves int64) {
		if leaves >= 1 {
			cancel2()
		}
	}}
	if _, err := RunPrefixesContext(ctx2, plan, opts2, splitLevels, prefixes); err == nil {
		t.Fatal("strict run returned nil error on cancellation")
	}

	// The partial plus the uncompleted remainder reproduces the full run:
	// nothing was lost, nothing double-counted.
	done := make(map[string]bool, len(part.Prefixes))
	for _, p := range part.Prefixes {
		done[PrefixKey(p)] = true
	}
	var rest [][]int
	for _, p := range prefixes {
		if !done[PrefixKey(p)] {
			rest = append(rest, p)
		}
	}
	if len(rest) == 0 {
		t.Fatal("no prefixes left after partial run")
	}
	restCk, err := RunPrefixesContext(context.Background(), plan, Options{}, splitLevels, rest)
	if err != nil {
		t.Fatal(err)
	}
	if err := part.Merge(restCk); err != nil {
		t.Fatal(err)
	}
	if part.PathsSimulated != full.PathsSimulated {
		t.Fatalf("partial+rest simulated %d paths, full run %d", part.PathsSimulated, full.PathsSimulated)
	}
	for i := range full.Amplitudes {
		if d := cmplx.Abs(part.Acc[i] - full.Amplitudes[i]); d > 1e-12 {
			t.Fatalf("amplitude %d differs by %g", i, d)
		}
	}
}

func TestRunPrefixesPartialContextPassesThroughRealErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	c := randomQAOAish(rng, 8, 8)
	plan, err := cut.BuildPlan(c, cut.Options{Partition: cut.Partition{CutPos: 3}, Strategy: cut.StrategyCascade})
	if err != nil {
		t.Fatal(err)
	}
	splitLevels := ChooseSplitLevels(plan, 4)
	prefixes := EnumeratePrefixes(plan, splitLevels)
	// An injected engine fault is not a cancellation and must surface.
	if _, err := RunPrefixesPartialContext(context.Background(), plan,
		Options{Workers: 1, FailAfterPaths: 1}, splitLevels, prefixes); err == nil {
		t.Fatal("injected failure returned nil error from partial run")
	}
}
