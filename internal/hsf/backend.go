package hsf

import (
	"errors"
	"fmt"

	"hsfsim/internal/statevec"
)

// ErrUnsupported is the sentinel matched by errors.Is when an option
// combination is not supported by the selected backend (e.g. Workers > 1 on
// the DD backend, whose node store is single-threaded) or the backend itself
// is unknown. Unsupported combinations are rejected up front instead of
// silently ignored.
var ErrUnsupported = errors.New("hsf: unsupported option")

// Backend selects the pair-state representation the path-tree walker runs
// on. Both backends execute through the same walker, so prefix tasks,
// checkpoint/resume, fault injection, and cancellation behave identically.
type Backend int

const (
	// BackendDense evolves the partition states as dense statevector arrays
	// (the default). Forking copies the arrays, so path workers parallelize
	// freely.
	BackendDense Backend = iota
	// BackendDD evolves the partition states as decision diagrams
	// (Burgholzer/Bauer/Wille, QCE 2021 — the paper's ref [10]). Forking is
	// free (sub-diagrams are shared), but the DD node store is
	// single-threaded, so this backend runs exactly one path worker.
	BackendDD
)

func (b Backend) String() string {
	switch b {
	case BackendDense:
		return "dense"
	case BackendDD:
		return "dd"
	}
	return fmt.Sprintf("backend(%d)", int(b))
}

// ParseBackend maps a CLI/wire name to a Backend. The empty string and
// "array" (the historical name of the dense engine) alias to BackendDense,
// so requests from older clients keep working. Unknown names wrap
// ErrUnsupported.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "dense", "array":
		return BackendDense, nil
	case "dd":
		return BackendDD, nil
	}
	return 0, fmt.Errorf("hsf: unknown backend %q (want dense or dd): %w", s, ErrUnsupported)
}

// ParallelWorkers reports whether the backend's pair states may be simulated
// by concurrent path workers. The DD backend's shared node store is
// single-threaded, so it runs exactly one worker.
func (b Backend) ParallelWorkers() bool { return b == BackendDense }

// valid reports whether b names a known backend.
func (b Backend) valid() bool { return b == BackendDense || b == BackendDD }

// backendWorkers resolves the effective path-worker count for the selected
// backend. Backends without parallel-worker support run exactly one worker
// and reject an explicit Workers > 1 with ErrUnsupported rather than
// silently dropping the request.
func (o Options) backendWorkers() (int, error) {
	if !o.Backend.valid() {
		return 0, fmt.Errorf("hsf: %v: %w", o.Backend, ErrUnsupported)
	}
	if o.Backend.ParallelWorkers() {
		return resolveWorkers(o.Workers), nil
	}
	if o.Workers > 1 {
		return 0, fmt.Errorf("hsf: Workers=%d on the %v backend (single-threaded node store): %w",
			o.Workers, o.Backend, ErrUnsupported)
	}
	return 1, nil
}

// pairState is one (lower, upper) partition state pair at a node of the path
// tree — the unit the walker forks at cuts, advances through segments, and
// folds into the dense accumulator at leaves. Implementations are owned by a
// single worker goroutine.
//
// Ownership discipline: fork produces an independent sibling; release returns
// the state to its workspace, after which it must not be used. The walker
// releases every state exactly once, so live states never exceed the tree
// depth.
type pairState interface {
	// applySegment advances both partitions through a segment's local gates.
	applySegment(seg *segment) error
	// applyCutTerm applies term t of a compiled cut to both partitions.
	applyCutTerm(c *compiledCut, t int) error
	// fork returns an independent copy for a sibling branch.
	fork() (pairState, error)
	// release returns the state to its workspace free list.
	release()
	// accumulate adds coeff · (upper ⊗ lower) into the first acc.Len()
	// amplitudes of the SoA accumulator acc.
	accumulate(acc statevec.Vector, coeff complex128)
}

// workspace is one worker goroutine's private pair-state factory: it owns
// the free lists (and, for dense, the buffer pool) its states recycle
// through. Workspaces are not safe for concurrent use.
type workspace interface {
	newRoot() (pairState, error)
}

// newWorkspace builds the per-worker workspace for the engine's backend.
func (e *engine) newWorkspace() (workspace, error) {
	switch e.backend {
	case BackendDense:
		return newDenseWorkspace(e), nil
	case BackendDD:
		return newDDWorkspace(e), nil
	}
	return nil, fmt.Errorf("hsf: %v: %w", e.backend, ErrUnsupported)
}
