//go:build race

package hsf

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
