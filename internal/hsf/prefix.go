// Exported prefix-task API. The engine executes a plan as a set of
// independent "prefix tasks": the leading splitLevels cut levels are expanded
// breadth-first into term-choice vectors, and each vector owns the whole
// subtree below it. This file exposes that task space so external schedulers
// (checkpoint resume, the internal/dist coordinator) can enumerate, shard,
// execute, and merge prefix work without reaching into the engine.
package hsf

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"hsfsim/internal/cut"
	"hsfsim/internal/telemetry/trace"
)

// PrefixKey encodes a prefix choice vector into a collision-free string key.
// Terms are uvarint-encoded: the encoding is self-delimiting, so two distinct
// vectors of the same length never collide even when a joint block's Schmidt
// rank exceeds 255 (r ≤ 4^min(n_a,n_b) grows past a byte at 4 qubits per
// side). All keys compared against each other come from vectors of equal
// length (the run's split depth), so cross-length collisions cannot occur.
func PrefixKey(p []int) string {
	b := make([]byte, 0, len(p)+4)
	for _, t := range p {
		b = binary.AppendUvarint(b, uint64(t))
	}
	return string(b)
}

// ChooseSplitLevels returns how many leading cut levels to expand so that the
// prefix-task count reaches at least minTasks (capped at the full cut depth).
// It is the engine's own sizing rule, exported so a distributed coordinator
// picks split depths the same way a local run does.
func ChooseSplitLevels(plan *cut.Plan, minTasks int) int {
	splitLevels := 0
	tasks := 1
	for splitLevels < len(plan.Cuts) && tasks < minTasks {
		tasks *= plan.Cuts[splitLevels].Rank()
		splitLevels++
	}
	return splitLevels
}

// EnumeratePrefixes expands the first splitLevels cut levels of the plan
// breadth-first into prefix choice vectors, in the engine's deterministic
// order. Every complete Feynman path belongs to exactly one prefix.
func EnumeratePrefixes(plan *cut.Plan, splitLevels int) [][]int {
	prefixes := [][]int{{}}
	for l := 0; l < splitLevels; l++ {
		r := plan.Cuts[l].Rank()
		next := make([][]int, 0, len(prefixes)*r)
		for _, p := range prefixes {
			for t := 0; t < r; t++ {
				np := make([]int, len(p)+1)
				copy(np, p)
				np[len(p)] = t
				next = append(next, np)
			}
		}
		prefixes = next
	}
	return prefixes
}

// AccumulatorLen returns the accumulator length a run of plan with the given
// MaxAmplitudes produces — the M field of its checkpoints and partials.
func AccumulatorLen(plan *cut.Plan, maxAmplitudes int) int {
	return resolveAmplitudes(plan, maxAmplitudes)
}

// validatePrefixes checks that every prefix is a term-choice vector of length
// splitLevels with each term inside its cut's rank.
func validatePrefixes(plan *cut.Plan, splitLevels int, prefixes [][]int) error {
	if splitLevels < 0 || splitLevels > len(plan.Cuts) {
		return fmt.Errorf("hsf: split levels %d out of range [0, %d]", splitLevels, len(plan.Cuts))
	}
	for _, p := range prefixes {
		if len(p) != splitLevels {
			return fmt.Errorf("hsf: prefix length %d != split levels %d", len(p), splitLevels)
		}
		for l, t := range p {
			if t < 0 || t >= plan.Cuts[l].Rank() {
				return fmt.Errorf("hsf: prefix term %d out of range for cut %d (rank %d)",
					t, l, plan.Cuts[l].Rank())
			}
		}
	}
	return nil
}

// RunPrefixesContext executes exactly the given prefix tasks of the plan and
// returns their partial accumulation as a Checkpoint: the prefixes completed,
// the leaf count, and the accumulator summed over those subtrees alone.
// Partials over disjoint prefix sets merge with Checkpoint.Merge; merging the
// full enumeration reproduces RunContext's amplitudes exactly.
//
// This is the worker half of distributed execution: a coordinator enumerates
// the task space once and hands out disjoint prefix batches, each of which a
// worker process runs through this function.
func RunPrefixesContext(ctx context.Context, plan *cut.Plan, opts Options, splitLevels int, prefixes [][]int) (*Checkpoint, error) {
	return runPrefixes(ctx, plan, opts, splitLevels, prefixes, false)
}

// RunPrefixesPartialContext is RunPrefixesContext with drain semantics:
// when the context is canceled or its deadline expires mid-batch, the
// prefixes completed so far are returned as a valid partial checkpoint with
// a nil error instead of the cancellation error. The returned checkpoint's
// Prefixes may therefore be any subset (including none) of the requested
// batch; every listed prefix is fully accumulated. Non-cancellation failures
// (admission rejection, a panicking path worker) still return an error.
//
// This is what lets a draining or deadline-bound distributed worker hand its
// finished work back to the coordinator instead of abandoning the lease.
func RunPrefixesPartialContext(ctx context.Context, plan *cut.Plan, opts Options, splitLevels int, prefixes [][]int) (*Checkpoint, error) {
	return runPrefixes(ctx, plan, opts, splitLevels, prefixes, true)
}

// isCancellation reports whether err is a cooperative-stop cause (rather
// than a real execution failure): context cancellation, a deadline, or the
// engine's own timeout sentinel.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, ErrTimeout)
}

func runPrefixes(ctx context.Context, plan *cut.Plan, opts Options, splitLevels int, prefixes [][]int, partialOnCancel bool) (*Checkpoint, error) {
	nLower := plan.Partition.NumLower()
	nUpper := plan.Partition.NumUpper(plan.NumQubits)
	if nLower <= 0 || nUpper <= 0 {
		return nil, fmt.Errorf("hsf: degenerate partition %d|%d", nLower, nUpper)
	}
	workers, err := opts.backendWorkers()
	if err != nil {
		return nil, err
	}
	costOpts := opts
	costOpts.Workers = workers
	if err := admit(Cost(plan, costOpts), costOpts); err != nil {
		return nil, err
	}
	if err := validatePrefixes(plan, splitLevels, prefixes); err != nil {
		return nil, err
	}
	m := resolveAmplitudes(plan, opts.MaxAmplitudes)

	e := &engine{backend: opts.Backend, nLower: nLower, nUpper: nUpper, m: m,
		failAfter: opts.FailAfterPaths, hook: opts.testHookLeaf, tel: opts.Telemetry}
	e.trc, e.tsc = trace.FromContext(ctx)
	endCompile := opts.Telemetry.Span("compile")
	csp := e.trc.Start(e.tsc, "compile")
	e.compile(plan, opts.FusionMaxQubits)
	csp.SetInt("segments", int64(len(e.segs)))
	csp.SetInt("cuts", int64(len(e.cuts)))
	csp.End()
	endCompile()

	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, opts.Timeout, ErrTimeout)
		defer cancel()
	}

	ck := &Checkpoint{
		PlanHash:    PlanHash(plan),
		NumQubits:   plan.NumQubits,
		M:           m,
		SplitLevels: splitLevels,
		Acc:         make([]complex128, m),
	}
	if len(prefixes) == 0 {
		if err := stopped(ctx); err != nil && !(partialOnCancel && isCancellation(err)) {
			return ck, err
		}
		return ck, nil
	}
	start := time.Now()
	wsp := e.trc.Start(e.tsc, "walk")
	wsp.SetInt("prefixes", int64(len(prefixes)))
	e.tsc = wsp.Context() // prefix-task spans parent to the walk phase
	err = e.runTasks(ctx, workers, prefixes, ck)
	wsp.SetInt("paths", ck.PathsSimulated)
	wsp.End()
	np, _ := plan.NumPaths()
	e.finishTelemetry(opts.Telemetry, np, plan.Log2Paths(), ck.PathsSimulated, 0, workers, time.Since(start))
	if err != nil {
		if partialOnCancel && isCancellation(err) {
			return ck, nil
		}
		return nil, err
	}
	return ck, nil
}
