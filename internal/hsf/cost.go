package hsf

import (
	"errors"
	"fmt"
	"math"
	"runtime"

	"hsfsim/internal/cut"
)

// DefaultMemoryBudget is the admission-control ceiling applied when
// Options.MemoryBudget is zero: 16 GiB, the footprint of a 30-qubit dense
// statevector — matching the simulator's historical hard qubit cap.
const DefaultMemoryBudget int64 = 16 << 30

// ErrBudget is the sentinel matched by errors.Is for admission-control
// rejections. The concrete error is always a *BudgetError carrying the
// estimate that triggered the rejection.
var ErrBudget = errors.New("hsf: job exceeds resource budget")

// BudgetError reports an admission-control rejection: the job's estimated
// cost exceeded Options.MemoryBudget or Options.MaxPaths. It is returned
// before any statevector is allocated.
type BudgetError struct {
	// Estimate is the cost model's projection for the rejected job.
	Estimate CostEstimate
	// MemoryBudget and MaxPaths echo the limits that were enforced
	// (zero for the one that did not trigger).
	MemoryBudget int64
	MaxPaths     uint64
	// Reason is a human-readable one-liner ("memory" or "paths" driven).
	Reason string
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("hsf: job exceeds resource budget: %s", e.Reason)
}

// Unwrap makes errors.Is(err, ErrBudget) hold for every BudgetError.
func (e *BudgetError) Unwrap() error { return ErrBudget }

// CostEstimate is the up-front resource projection for executing a plan.
// All byte figures are upper bounds: the engine clones partition states
// lazily (only when more than one Schmidt term remains), so the live
// footprint is usually smaller.
type CostEstimate struct {
	// Paths is the total Feynman path count (saturates at MaxUint64 when
	// PathsExact is false); Log2Paths is exact in log space.
	Paths      uint64
	PathsExact bool
	Log2Paths  float64
	// Workers is the resolved worker count used for the projection.
	Workers int
	// StatePairBytes is one (lower, upper) partition statevector pair.
	StatePairBytes int64
	// PerWorkerBytes bounds one worker's footprint: the clone chain of
	// partition state pairs down the remaining path tree plus the private
	// accumulator scratch.
	PerWorkerBytes int64
	// AccumulatorBytes is the shared output accumulator.
	AccumulatorBytes int64
	// TotalBytes = Workers*PerWorkerBytes + AccumulatorBytes.
	TotalBytes int64
}

const bytesPerAmp = 16 // complex128

// resolveAmplitudes returns the effective accumulator length for a plan.
func resolveAmplitudes(plan *cut.Plan, maxAmplitudes int) int {
	dim := 1 << plan.NumQubits
	if maxAmplitudes <= 0 || maxAmplitudes > dim {
		return dim
	}
	return maxAmplitudes
}

// resolveWorkers returns the effective worker count.
func resolveWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// mulSat multiplies non-negative int64s, saturating at MaxInt64.
func mulSat(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxInt64/b {
		return math.MaxInt64
	}
	return a * b
}

func addSat(a, b int64) int64 {
	if a > math.MaxInt64-b {
		return math.MaxInt64
	}
	return a + b
}

// Cost projects the resources required to execute plan under opts, without
// allocating anything. The memory model mirrors the engine: each worker
// holds at most one partition state pair per remaining cut level (the clone
// chain of runBranch) plus an m-amplitude scratch accumulator, and a single
// m-amplitude global accumulator is shared.
func Cost(plan *cut.Plan, opts Options) CostEstimate {
	nLower := plan.Partition.NumLower()
	nUpper := plan.Partition.NumUpper(plan.NumQubits)
	m := resolveAmplitudes(plan, opts.MaxAmplitudes)
	workers := resolveWorkers(opts.Workers)

	pair := mulSat(bytesPerAmp, int64(1)<<uint(max(nLower, 0)))
	pair = addSat(pair, mulSat(bytesPerAmp, int64(1)<<uint(max(nUpper, 0))))
	accBytes := mulSat(bytesPerAmp, int64(m))
	// Clone chain: the branch recursion may hold one extra pair per cut
	// level, plus the pair owned by the prefix task itself.
	chain := mulSat(pair, int64(len(plan.Cuts)+1))
	perWorker := addSat(chain, accBytes) // scratch accumulator per worker

	paths, exact := plan.NumPaths()
	return CostEstimate{
		Paths:            paths,
		PathsExact:       exact,
		Log2Paths:        plan.Log2Paths(),
		Workers:          workers,
		StatePairBytes:   pair,
		PerWorkerBytes:   perWorker,
		AccumulatorBytes: accBytes,
		TotalBytes:       addSat(mulSat(perWorker, int64(workers)), accBytes),
	}
}

// admit applies the admission-control gate: a zero MemoryBudget selects
// DefaultMemoryBudget, a negative one disables the memory check, and a zero
// MaxPaths disables the path check. It returns a *BudgetError on rejection.
func admit(est CostEstimate, opts Options) error {
	budget := opts.MemoryBudget
	if budget == 0 {
		budget = DefaultMemoryBudget
	}
	if budget > 0 && est.TotalBytes > budget {
		return &BudgetError{
			Estimate:     est,
			MemoryBudget: budget,
			Reason: fmt.Sprintf("estimated %s exceeds memory budget %s",
				fmtBytes(est.TotalBytes), fmtBytes(budget)),
		}
	}
	if opts.MaxPaths > 0 && (!est.PathsExact || est.Paths > opts.MaxPaths) {
		return &BudgetError{
			Estimate: est,
			MaxPaths: opts.MaxPaths,
			Reason: fmt.Sprintf("2^%.1f paths exceed the path budget %d",
				est.Log2Paths, opts.MaxPaths),
		}
	}
	return nil
}

func fmtBytes(b int64) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%d B", b)
	}
	div, exp := int64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(b)/float64(div), "KMGTPE"[exp])
}
