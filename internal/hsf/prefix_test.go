package hsf

import (
	"context"
	"errors"
	"math/cmplx"
	"math/rand"
	"testing"

	"hsfsim/internal/cut"
)

// TestPrefixKeyHighRankNoCollision is the regression test for the byte
// truncation bug: term indices used to be cast to a single byte, so any two
// terms equal mod 256 (possible once a joint block's Schmidt rank exceeds
// 255) produced colliding keys and corrupted checkpoint resume and
// distributed merge dedup.
func TestPrefixKeyHighRankNoCollision(t *testing.T) {
	if PrefixKey([]int{0}) == PrefixKey([]int{256}) {
		t.Fatal("terms 0 and 256 collide: byte truncation regression")
	}
	if PrefixKey([]int{1, 2}) == PrefixKey([]int{257, 2}) {
		t.Fatal("terms 1 and 257 collide in a vector: byte truncation regression")
	}
	// Exhaustive distinctness over a mixed-radix space with a rank-300 level.
	seen := make(map[string][]int)
	for a := 0; a < 300; a += 7 {
		for b := 0; b < 9; b++ {
			p := []int{a, b}
			k := PrefixKey(p)
			if prev, dup := seen[k]; dup {
				t.Fatalf("prefixes %v and %v share key %q", prev, p, k)
			}
			seen[k] = p
		}
	}
}

func TestPrefixKeyRoundTripOrder(t *testing.T) {
	// Same-length vectors with swapped entries must differ.
	if PrefixKey([]int{0, 1}) == PrefixKey([]int{1, 0}) {
		t.Fatal("key ignores term order")
	}
	if PrefixKey(nil) != "" {
		t.Fatal("empty prefix should have empty key")
	}
}

func TestEnumeratePrefixesCoversPathSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := randomQAOAish(rng, 8, 10)
	// Standard cutting: every crossing gate is its own cut, so the plan has
	// several levels to enumerate over.
	plan, err := cut.BuildPlan(c, cut.Options{Partition: cut.Partition{CutPos: 3}, Strategy: cut.StrategyNone})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Cuts) < 2 {
		t.Fatalf("want ≥ 2 cuts, got %d", len(plan.Cuts))
	}
	for sl := 0; sl <= 2; sl++ {
		want := 1
		for l := 0; l < sl; l++ {
			want *= plan.Cuts[l].Rank()
		}
		ps := EnumeratePrefixes(plan, sl)
		if len(ps) != want {
			t.Fatalf("splitLevels=%d: %d prefixes, want %d", sl, len(ps), want)
		}
		keys := make(map[string]bool)
		for _, p := range ps {
			if len(p) != sl {
				t.Fatalf("prefix %v has length %d, want %d", p, len(p), sl)
			}
			keys[PrefixKey(p)] = true
		}
		if len(keys) != want {
			t.Fatalf("splitLevels=%d: %d distinct keys, want %d", sl, len(keys), want)
		}
	}
	if got := ChooseSplitLevels(plan, 1); got != 0 {
		t.Fatalf("ChooseSplitLevels(minTasks=1) = %d, want 0", got)
	}
	if got := ChooseSplitLevels(plan, 1<<40); got != len(plan.Cuts) {
		t.Fatalf("ChooseSplitLevels(huge) = %d, want all %d levels", got, len(plan.Cuts))
	}
}

// TestRunPrefixesShardsMergeToFullRun is the core correctness property the
// distributed coordinator relies on: executing the prefix space in disjoint
// shards and merging the partials reproduces the single-process amplitudes.
func TestRunPrefixesShardsMergeToFullRun(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := randomQAOAish(rng, 9, 12)
	plan, err := cut.BuildPlan(c, cut.Options{Partition: cut.Partition{CutPos: 4}, Strategy: cut.StrategyCascade})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(plan, Options{})
	if err != nil {
		t.Fatal(err)
	}

	splitLevels := ChooseSplitLevels(plan, 8)
	prefixes := EnumeratePrefixes(plan, splitLevels)
	if len(prefixes) < 4 {
		t.Fatalf("want ≥ 4 prefix tasks, got %d", len(prefixes))
	}
	merged := &Checkpoint{
		PlanHash:    PlanHash(plan),
		NumQubits:   plan.NumQubits,
		M:           AccumulatorLen(plan, 0),
		SplitLevels: splitLevels,
		Acc:         make([]complex128, AccumulatorLen(plan, 0)),
	}
	// Three uneven shards, executed independently.
	bounds := []int{0, 1, len(prefixes) / 2, len(prefixes)}
	for i := 0; i+1 < len(bounds); i++ {
		part, err := RunPrefixesContext(context.Background(), plan, Options{}, splitLevels, prefixes[bounds[i]:bounds[i+1]])
		if err != nil {
			t.Fatal(err)
		}
		if len(part.Prefixes) != bounds[i+1]-bounds[i] {
			t.Fatalf("shard %d completed %d prefixes, want %d", i, len(part.Prefixes), bounds[i+1]-bounds[i])
		}
		if err := merged.Merge(part); err != nil {
			t.Fatal(err)
		}
	}
	if merged.PathsSimulated != full.PathsSimulated {
		t.Fatalf("merged %d paths, full run %d", merged.PathsSimulated, full.PathsSimulated)
	}
	for i := range full.Amplitudes {
		if d := cmplx.Abs(merged.Acc[i] - full.Amplitudes[i]); d > 1e-12 {
			t.Fatalf("amplitude %d differs by %g", i, d)
		}
	}
}

func TestMergeRejectsOverlapAndMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := randomQAOAish(rng, 6, 6)
	plan, err := cut.BuildPlan(c, cut.Options{Partition: cut.Partition{CutPos: 2}, Strategy: cut.StrategyCascade})
	if err != nil {
		t.Fatal(err)
	}
	splitLevels := ChooseSplitLevels(plan, 4)
	prefixes := EnumeratePrefixes(plan, splitLevels)
	part, err := RunPrefixesContext(context.Background(), plan, Options{}, splitLevels, prefixes[:1])
	if err != nil {
		t.Fatal(err)
	}
	base := &Checkpoint{PlanHash: part.PlanHash, NumQubits: part.NumQubits, M: part.M,
		SplitLevels: part.SplitLevels, Acc: make([]complex128, part.M)}
	if err := base.Merge(part); err != nil {
		t.Fatal(err)
	}
	paths := base.PathsSimulated
	if err := base.Merge(part); !errors.Is(err, ErrPrefixOverlap) {
		t.Fatalf("duplicate merge: got %v, want ErrPrefixOverlap", err)
	}
	if base.PathsSimulated != paths || len(base.Prefixes) != len(part.Prefixes) {
		t.Fatal("rejected merge mutated the checkpoint")
	}
	bad := *part
	bad.PlanHash++
	if err := base.Merge(&bad); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("plan-hash mismatch: got %v, want ErrCheckpointMismatch", err)
	}
}

func TestRunPrefixesValidatesInput(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := randomQAOAish(rng, 6, 6)
	plan, err := cut.BuildPlan(c, cut.Options{Partition: cut.Partition{CutPos: 2}, Strategy: cut.StrategyCascade})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunPrefixesContext(context.Background(), plan, Options{}, 1, [][]int{{0, 0}}); err == nil {
		t.Fatal("accepted prefix longer than split levels")
	}
	if _, err := RunPrefixesContext(context.Background(), plan, Options{}, 1, [][]int{{plan.Cuts[0].Rank()}}); err == nil {
		t.Fatal("accepted out-of-range term")
	}
	if _, err := RunPrefixesContext(context.Background(), plan, Options{}, len(plan.Cuts)+1, nil); err == nil {
		t.Fatal("accepted split levels beyond the cut depth")
	}
}
