package hsf

import (
	"context"

	"hsfsim/internal/cut"
	"hsfsim/internal/dd"
	"hsfsim/internal/gate"
	"hsfsim/internal/statevec"
)

// ddWorkspace is the decision-diagram backend (Burgholzer/Bauer/Wille, QCE
// 2021 — the paper's ref [10]): partition states are edges into two shared
// DD node stores, so forking a pair copies two edge handles instead of two
// amplitude arrays and the path tree shares whole sub-diagrams. Leaves are
// expanded into dense half-statevector scratch buffers for accumulation.
//
// The node stores are single-threaded, which is why BackendDD caps the run
// at one path worker (backendWorkers). Its value is memory compression and
// the structural comparison with the dense backend, not raw speed.
type ddWorkspace struct {
	e            *engine
	loDD, upDD   *dd.DD
	loBuf, upBuf []complex128
	free         []*ddPair
}

func newDDWorkspace(e *engine) *ddWorkspace {
	return &ddWorkspace{
		e:     e,
		loDD:  dd.New(e.nLower, 0),
		upDD:  dd.New(e.nUpper, 0),
		loBuf: make([]complex128, 1<<e.nLower),
		upBuf: make([]complex128, 1<<e.nUpper),
	}
}

func (ws *ddWorkspace) take() *ddPair {
	if n := len(ws.free); n > 0 {
		p := ws.free[n-1]
		ws.free = ws.free[:n-1]
		return p
	}
	return &ddPair{ws: ws}
}

func (ws *ddWorkspace) newRoot() (pairState, error) {
	p := ws.take()
	p.lo, p.up = ws.loDD.Root(), ws.upDD.Root()
	return p, nil
}

type ddPair struct {
	ws     *ddWorkspace
	lo, up dd.Edge
}

func (p *ddPair) applySegment(seg *segment) error {
	if err := p.applyAll(p.ws.loDD, &p.lo, seg.lower); err != nil {
		return err
	}
	return p.applyAll(p.ws.upDD, &p.up, seg.upper)
}

func (p *ddPair) applyAll(d *dd.DD, root *dd.Edge, gs []gate.Gate) error {
	for i := range gs {
		next, err := d.ApplyGateTo(*root, &gs[i])
		if err != nil {
			return err
		}
		*root = next
	}
	return nil
}

func (p *ddPair) applyCutTerm(c *compiledCut, t int) error {
	lo, err := p.ws.loDD.ApplyGateTo(p.lo, &c.lower[t])
	if err != nil {
		return err
	}
	up, err := p.ws.upDD.ApplyGateTo(p.up, &c.upper[t])
	if err != nil {
		return err
	}
	p.lo, p.up = lo, up
	return nil
}

func (p *ddPair) fork() (pairState, error) {
	f := p.ws.take()
	f.lo, f.up = p.lo, p.up // edges share sub-diagrams; copying is free
	return f, nil
}

func (p *ddPair) release() {
	p.ws.free = append(p.ws.free, p)
}

func (p *ddPair) accumulate(acc statevec.Vector, coeff complex128) {
	p.ws.loDD.FillStatevector(p.lo, p.ws.loBuf)
	p.ws.upDD.FillStatevector(p.up, p.ws.upBuf)
	// The DD expands leaves into interleaved scratch (its natural output);
	// the edge-converting accumulate folds them into the SoA accumulator.
	statevec.AccumulateKronComplex(acc, coeff, p.ws.upBuf, p.ws.loBuf, p.ws.e.nLower)
}

// RunDD executes the plan on the decision-diagram backend. It is shorthand
// for Run with Options.Backend = BackendDD: the DD backend shares the path
// walker with the dense engine, so prefix tasks, checkpoint/resume,
// FailAfterPaths, and cancellation all behave identically. Only Workers > 1
// is rejected (ErrUnsupported) — the DD node store is single-threaded.
func RunDD(plan *cut.Plan, opts Options) (*Result, error) {
	opts.Backend = BackendDD
	return Run(plan, opts)
}

// RunDDContext is RunDD under a caller context; see RunContext for the
// cancellation contract.
func RunDDContext(ctx context.Context, plan *cut.Plan, opts Options) (*Result, error) {
	opts.Backend = BackendDD
	return RunContext(ctx, plan, opts)
}
