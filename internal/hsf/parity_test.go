package hsf

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"hsfsim/internal/circuit"
	"hsfsim/internal/cut"
	"hsfsim/internal/gate"
	"hsfsim/internal/statevec"
)

// The parity suite pins the central refactoring invariant: the dense and DD
// backends run through the identical walker, so for any plan they must agree
// with each other (and with plain Schrödinger simulation) to 1e-12 — through
// plain runs, injected faults, and checkpoint resume alike.

func runBackend(t *testing.T, plan *cut.Plan, b Backend, opts Options) *Result {
	t.Helper()
	opts.Backend = b
	res, err := Run(plan, opts)
	if err != nil {
		t.Fatalf("%v backend: %v", b, err)
	}
	return res
}

func TestParityRandomPlans(t *testing.T) {
	type tc struct {
		name     string
		build    func(rng *rand.Rand) *circuit.Circuit
		cutPos   int
		strategy cut.Strategy
	}
	cases := []tc{
		{"qaoa-cascade", func(rng *rand.Rand) *circuit.Circuit { return randomQAOAish(rng, 8, 16) }, 3, cut.StrategyCascade},
		{"qaoa-window", func(rng *rand.Rand) *circuit.Circuit { return randomQAOAish(rng, 7, 12) }, 3, cut.StrategyWindow},
		{"mixed-standard", func(rng *rand.Rand) *circuit.Circuit { return randomMixed(rng, 7, 14) }, 2, cut.StrategyNone},
		{"mixed-cascade", func(rng *rand.Rand) *circuit.Circuit { return randomMixed(rng, 8, 14) }, 4, cut.StrategyCascade},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				rng := rand.New(rand.NewSource(seed))
				circ := c.build(rng)
				plan, err := cut.BuildPlan(circ, cut.Options{
					Partition: cut.Partition{CutPos: c.cutPos},
					Strategy:  c.strategy,
				})
				if err != nil {
					t.Fatal(err)
				}
				want := schrodinger(circ)
				dense := runBackend(t, plan, BackendDense, Options{Workers: 2})
				dd := runBackend(t, plan, BackendDD, Options{})
				if d := statevec.MaxAbsDiff(dense.Amplitudes, dd.Amplitudes); d > 1e-12 {
					t.Fatalf("seed %d: dense and dd diverge: max diff %g", seed, d)
				}
				if d := statevec.MaxAbsDiff(statevec.State(dense.Amplitudes), want); d > 1e-10 {
					t.Fatalf("seed %d: dense diverges from Schrödinger: max diff %g", seed, d)
				}
				if dense.PathsSimulated != dd.PathsSimulated {
					t.Fatalf("seed %d: paths %d (dense) != %d (dd)", seed, dense.PathsSimulated, dd.PathsSimulated)
				}
			}
		})
	}
}

// kernelZoo builds a circuit exercising every specialized kernel class —
// permutation (X/CNOT/SWAP/CCX), phase-permutation (ISWAP), diagonal with and
// without controls (P/CZ/RZZ/CCZ/CRZ), controlled-dense (CRX), and plain
// dense (H/RX) — with several of them crossing the cut, so the classified
// fast paths in both backends are pitted against each other and against the
// unclassified Schrödinger reference.
func kernelZoo(rng *rand.Rand, n, cutPos int) *circuit.Circuit {
	lo := rng.Intn(cutPos + 1)              // lower-partition qubit
	hi := cutPos + 1 + rng.Intn(n-cutPos-1) // upper-partition qubit
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.Append(gate.H(q))
	}
	c.Append(
		gate.CNOT(lo, hi), // crossing permutation
		gate.SWAP(lo, hi), // crossing permutation (3-cycle free)
		gate.ISWAP(lo, hi),
		gate.CRX(rng.Float64(), lo, hi), // crossing controlled-dense
		gate.CZ(lo, hi),                 // crossing diagonal
		gate.P(rng.Float64(), lo),
		gate.X(hi),
		gate.CRZ(rng.Float64(), lo, (lo+1)%(cutPos+1)),
		gate.RZZ(rng.Float64(), lo, hi), // crossing diagonal
	)
	if cutPos >= 2 {
		c.Append(gate.CCX(0, 1, 2), gate.CCZ(0, 1, 2)) // local 3-qubit kernels
	}
	for q := 0; q < n; q++ {
		c.Append(gate.RX(rng.Float64(), q))
	}
	return c
}

// TestParityKernelZoo runs the kernel-zoo circuit through both backends and
// the Schrödinger reference: the specialized kernels (permutation rotations,
// control-subspace updates, compacted diagonals) must be bit-for-bit
// interchangeable with the dense matvec everywhere in the walker.
func TestParityKernelZoo(t *testing.T) {
	const n, cutPos = 8, 3
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		circ := kernelZoo(rng, n, cutPos)
		for _, strategy := range []cut.Strategy{cut.StrategyNone, cut.StrategyCascade} {
			plan, err := cut.BuildPlan(circ, cut.Options{
				Partition: cut.Partition{CutPos: cutPos},
				Strategy:  strategy,
			})
			if err != nil {
				t.Fatal(err)
			}
			want := schrodinger(circ)
			dense := runBackend(t, plan, BackendDense, Options{Workers: 2})
			dd := runBackend(t, plan, BackendDD, Options{})
			if d := statevec.MaxAbsDiff(dense.Amplitudes, dd.Amplitudes); d > 1e-12 {
				t.Fatalf("seed %d strategy %v: dense and dd diverge: max diff %g", seed, strategy, d)
			}
			if d := statevec.MaxAbsDiff(statevec.State(dense.Amplitudes), want); d > 1e-10 {
				t.Fatalf("seed %d strategy %v: dense diverges from Schrödinger: max diff %g", seed, strategy, d)
			}
		}
	}
}

// TestParityFaultAndResume interrupts a run on each backend with the
// deterministic fault hook, then resumes the checkpoint on the *other*
// backend. Both recoveries must land on the identical amplitudes: the
// checkpoint format, the prefix bookkeeping, and the walker are shared, so
// backends are interchangeable mid-run.
func TestParityFaultAndResume(t *testing.T) {
	c := manyCutCircuit(8, 8) // 2^8 = 256 paths
	plan := buildPlan(t, c, 3, cut.StrategyNone)
	want, err := Run(plan, Options{})
	if err != nil {
		t.Fatal(err)
	}

	for _, failOn := range []Backend{BackendDense, BackendDD} {
		resumeOn := BackendDD
		if failOn == BackendDD {
			resumeOn = BackendDense
		}
		t.Run("fail-"+failOn.String(), func(t *testing.T) {
			var buf bytes.Buffer
			_, err := Run(plan, Options{
				Backend:          failOn,
				CheckpointWriter: &buf,
				FailAfterPaths:   128,
			})
			if !errors.Is(err, ErrInjectedFault) {
				t.Fatalf("err = %v, want ErrInjectedFault", err)
			}
			ck, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if len(ck.Prefixes) == 0 || ck.PathsSimulated == 0 {
				t.Fatalf("checkpoint empty: %d prefixes, %d paths", len(ck.Prefixes), ck.PathsSimulated)
			}
			res, err := Run(plan, Options{Backend: resumeOn, Resume: ck})
			if err != nil {
				t.Fatalf("resume on %v: %v", resumeOn, err)
			}
			if d := statevec.MaxAbsDiff(res.Amplitudes, want.Amplitudes); d > 1e-12 {
				t.Fatalf("resume on %v diverges: max diff %g", resumeOn, d)
			}
			if res.PathsSimulated != want.PathsSimulated {
				t.Fatalf("paths = %d, want %d", res.PathsSimulated, want.PathsSimulated)
			}
		})
	}
}

// TestParityPartialAmplitudes checks the bounded-accumulator mode through
// both backends.
func TestParityPartialAmplitudes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	circ := randomQAOAish(rng, 8, 14)
	plan, err := cut.BuildPlan(circ, cut.Options{
		Partition: cut.Partition{CutPos: 3},
		Strategy:  cut.StrategyCascade,
	})
	if err != nil {
		t.Fatal(err)
	}
	dense := runBackend(t, plan, BackendDense, Options{MaxAmplitudes: 16})
	dd := runBackend(t, plan, BackendDD, Options{MaxAmplitudes: 16})
	if len(dense.Amplitudes) != 16 || len(dd.Amplitudes) != 16 {
		t.Fatalf("lengths %d, %d, want 16", len(dense.Amplitudes), len(dd.Amplitudes))
	}
	if d := statevec.MaxAbsDiff(dense.Amplitudes, dd.Amplitudes); d > 1e-12 {
		t.Fatalf("partial amplitudes diverge: max diff %g", d)
	}
}
