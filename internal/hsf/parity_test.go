package hsf

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"hsfsim/internal/circuit"
	"hsfsim/internal/cut"
	"hsfsim/internal/statevec"
)

// The parity suite pins the central refactoring invariant: the dense and DD
// backends run through the identical walker, so for any plan they must agree
// with each other (and with plain Schrödinger simulation) to 1e-12 — through
// plain runs, injected faults, and checkpoint resume alike.

func runBackend(t *testing.T, plan *cut.Plan, b Backend, opts Options) *Result {
	t.Helper()
	opts.Backend = b
	res, err := Run(plan, opts)
	if err != nil {
		t.Fatalf("%v backend: %v", b, err)
	}
	return res
}

func TestParityRandomPlans(t *testing.T) {
	type tc struct {
		name     string
		build    func(rng *rand.Rand) *circuit.Circuit
		cutPos   int
		strategy cut.Strategy
	}
	cases := []tc{
		{"qaoa-cascade", func(rng *rand.Rand) *circuit.Circuit { return randomQAOAish(rng, 8, 16) }, 3, cut.StrategyCascade},
		{"qaoa-window", func(rng *rand.Rand) *circuit.Circuit { return randomQAOAish(rng, 7, 12) }, 3, cut.StrategyWindow},
		{"mixed-standard", func(rng *rand.Rand) *circuit.Circuit { return randomMixed(rng, 7, 14) }, 2, cut.StrategyNone},
		{"mixed-cascade", func(rng *rand.Rand) *circuit.Circuit { return randomMixed(rng, 8, 14) }, 4, cut.StrategyCascade},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				rng := rand.New(rand.NewSource(seed))
				circ := c.build(rng)
				plan, err := cut.BuildPlan(circ, cut.Options{
					Partition: cut.Partition{CutPos: c.cutPos},
					Strategy:  c.strategy,
				})
				if err != nil {
					t.Fatal(err)
				}
				want := schrodinger(circ)
				dense := runBackend(t, plan, BackendDense, Options{Workers: 2})
				dd := runBackend(t, plan, BackendDD, Options{})
				if d := statevec.MaxAbsDiff(dense.Amplitudes, dd.Amplitudes); d > 1e-12 {
					t.Fatalf("seed %d: dense and dd diverge: max diff %g", seed, d)
				}
				if d := statevec.MaxAbsDiff(statevec.State(dense.Amplitudes), want); d > 1e-10 {
					t.Fatalf("seed %d: dense diverges from Schrödinger: max diff %g", seed, d)
				}
				if dense.PathsSimulated != dd.PathsSimulated {
					t.Fatalf("seed %d: paths %d (dense) != %d (dd)", seed, dense.PathsSimulated, dd.PathsSimulated)
				}
			}
		})
	}
}

// TestParityFaultAndResume interrupts a run on each backend with the
// deterministic fault hook, then resumes the checkpoint on the *other*
// backend. Both recoveries must land on the identical amplitudes: the
// checkpoint format, the prefix bookkeeping, and the walker are shared, so
// backends are interchangeable mid-run.
func TestParityFaultAndResume(t *testing.T) {
	c := manyCutCircuit(8, 8) // 2^8 = 256 paths
	plan := buildPlan(t, c, 3, cut.StrategyNone)
	want, err := Run(plan, Options{})
	if err != nil {
		t.Fatal(err)
	}

	for _, failOn := range []Backend{BackendDense, BackendDD} {
		resumeOn := BackendDD
		if failOn == BackendDD {
			resumeOn = BackendDense
		}
		t.Run("fail-"+failOn.String(), func(t *testing.T) {
			var buf bytes.Buffer
			_, err := Run(plan, Options{
				Backend:          failOn,
				CheckpointWriter: &buf,
				FailAfterPaths:   128,
			})
			if !errors.Is(err, ErrInjectedFault) {
				t.Fatalf("err = %v, want ErrInjectedFault", err)
			}
			ck, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if len(ck.Prefixes) == 0 || ck.PathsSimulated == 0 {
				t.Fatalf("checkpoint empty: %d prefixes, %d paths", len(ck.Prefixes), ck.PathsSimulated)
			}
			res, err := Run(plan, Options{Backend: resumeOn, Resume: ck})
			if err != nil {
				t.Fatalf("resume on %v: %v", resumeOn, err)
			}
			if d := statevec.MaxAbsDiff(res.Amplitudes, want.Amplitudes); d > 1e-12 {
				t.Fatalf("resume on %v diverges: max diff %g", resumeOn, d)
			}
			if res.PathsSimulated != want.PathsSimulated {
				t.Fatalf("paths = %d, want %d", res.PathsSimulated, want.PathsSimulated)
			}
		})
	}
}

// TestParityPartialAmplitudes checks the bounded-accumulator mode through
// both backends.
func TestParityPartialAmplitudes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	circ := randomQAOAish(rng, 8, 14)
	plan, err := cut.BuildPlan(circ, cut.Options{
		Partition: cut.Partition{CutPos: 3},
		Strategy:  cut.StrategyCascade,
	})
	if err != nil {
		t.Fatal(err)
	}
	dense := runBackend(t, plan, BackendDense, Options{MaxAmplitudes: 16})
	dd := runBackend(t, plan, BackendDD, Options{MaxAmplitudes: 16})
	if len(dense.Amplitudes) != 16 || len(dd.Amplitudes) != 16 {
		t.Fatalf("lengths %d, %d, want 16", len(dense.Amplitudes), len(dd.Amplitudes))
	}
	if d := statevec.MaxAbsDiff(dense.Amplitudes, dd.Amplitudes); d > 1e-12 {
		t.Fatalf("partial amplitudes diverge: max diff %g", d)
	}
}
