package hsf

import (
	"context"
	"time"

	"hsfsim/internal/cut"
	"hsfsim/internal/dd"
	"hsfsim/internal/gate"
	"hsfsim/internal/statevec"
)

// RunDD executes an HSF plan with decision-diagram subcircuit states instead
// of dense arrays, reproducing the approach of the authors' earlier work
// (Burgholzer, Bauer, Wille: "Hybrid Schrödinger-Feynman simulation of
// quantum circuits with decision diagrams", QCE 2021 — the paper's ref
// [10]). Branching is free on DDs: the path tree shares whole sub-diagrams
// instead of cloning amplitude arrays.
//
// The engine is single-threaded (the DD node store is shared across all
// paths) and expands each leaf to dense half-statevectors for accumulation,
// so its value is memory compression and the structural comparison with the
// array engine, not raw speed.
func RunDD(plan *cut.Plan, opts Options) (*Result, error) {
	return RunDDContext(context.Background(), plan, opts)
}

// RunDDContext executes the plan on the DD engine under ctx. Cancellation is
// cooperative (checked at every path-tree node) and Options.Timeout maps to
// ErrTimeout exactly as in RunContext. The DD engine does not support
// checkpoint/resume: its path tree shares sub-diagrams across branches, so
// there is no independent prefix-task state to snapshot.
func RunDDContext(ctx context.Context, plan *cut.Plan, opts Options) (*Result, error) {
	nLower := plan.Partition.NumLower()
	nUpper := plan.Partition.NumUpper(plan.NumQubits)
	// The DD engine expands each leaf into dense half-statevectors, so the
	// dense cost model's single-worker footprint is the relevant bound.
	ddOpts := opts
	ddOpts.Workers = 1
	if err := admit(Cost(plan, ddOpts), ddOpts); err != nil {
		return nil, err
	}
	m := resolveAmplitudes(plan, opts.MaxAmplitudes)

	// Reuse the array engine's compilation (segments + cut terms).
	e := &engine{nLower: nLower, nUpper: nUpper, m: m, failAfter: opts.FailAfterPaths}
	e.compile(plan, opts.FusionMaxQubits)

	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, opts.Timeout, ErrTimeout)
		defer cancel()
	}

	start := time.Now()
	loDD := dd.New(nLower, 0)
	upDD := dd.New(nUpper, 0)
	acc := make([]complex128, m)
	loBuf := make([]complex128, 1<<nLower)
	upBuf := make([]complex128, 1<<nUpper)

	var run func(level int, lo, up dd.Edge, coeff complex128) error
	applyAll := func(d *dd.DD, root dd.Edge, gs []gate.Gate) (dd.Edge, error) {
		var err error
		for i := range gs {
			root, err = d.ApplyGateTo(root, &gs[i])
			if err != nil {
				return dd.Edge{}, err
			}
		}
		return root, nil
	}
	run = func(level int, lo, up dd.Edge, coeff complex128) error {
		if err := stopped(ctx); err != nil {
			return err
		}
		var err error
		if lo, err = applyAll(loDD, lo, e.segs[level].lower); err != nil {
			return err
		}
		if up, err = applyAll(upDD, up, e.segs[level].upper); err != nil {
			return err
		}
		if level == len(e.cuts) {
			n := e.leaves.Add(1)
			if e.failAfter > 0 && n > e.failAfter {
				return ErrInjectedFault
			}
			loDD.FillStatevector(lo, loBuf)
			upDD.FillStatevector(up, upBuf)
			e.accumulate(acc, coeff, statevec.State(upBuf), statevec.State(loBuf))
			return nil
		}
		c := &e.cuts[level]
		for t := range c.sigma {
			lo2, err := loDD.ApplyGateTo(lo, &c.lower[t])
			if err != nil {
				return err
			}
			up2, err := upDD.ApplyGateTo(up, &c.upper[t])
			if err != nil {
				return err
			}
			if err := run(level+1, lo2, up2, coeff*c.sigma[t]); err != nil {
				return err
			}
		}
		return nil
	}
	if err := run(0, loDD.Root(), upDD.Root(), 1); err != nil {
		return nil, err
	}

	np, _ := plan.NumPaths()
	return &Result{
		Amplitudes:     acc,
		NumPaths:       np,
		Log2Paths:      plan.Log2Paths(),
		PathsSimulated: e.leaves.Load(),
		NumQubits:      plan.NumQubits,
		Elapsed:        time.Since(start),
	}, nil
}
