package hsf

import (
	"time"

	"hsfsim/internal/cut"
	"hsfsim/internal/dd"
	"hsfsim/internal/gate"
	"hsfsim/internal/statevec"
)

// RunDD executes an HSF plan with decision-diagram subcircuit states instead
// of dense arrays, reproducing the approach of the authors' earlier work
// (Burgholzer, Bauer, Wille: "Hybrid Schrödinger-Feynman simulation of
// quantum circuits with decision diagrams", QCE 2021 — the paper's ref
// [10]). Branching is free on DDs: the path tree shares whole sub-diagrams
// instead of cloning amplitude arrays.
//
// The engine is single-threaded (the DD node store is shared across all
// paths) and expands each leaf to dense half-statevectors for accumulation,
// so its value is memory compression and the structural comparison with the
// array engine, not raw speed.
func RunDD(plan *cut.Plan, opts Options) (*Result, error) {
	nLower := plan.Partition.NumLower()
	nUpper := plan.Partition.NumUpper(plan.NumQubits)
	dim := 1 << plan.NumQubits
	m := opts.MaxAmplitudes
	if m <= 0 || m > dim {
		m = dim
	}

	// Reuse the array engine's compilation (segments + cut terms).
	e := &engine{nLower: nLower, nUpper: nUpper, m: m}
	e.compile(plan, opts.FusionMaxQubits)

	var timer *time.Timer
	if opts.Timeout > 0 {
		timer = time.AfterFunc(opts.Timeout, func() { e.timeout.Store(true) })
		defer timer.Stop()
	}

	start := time.Now()
	loDD := dd.New(nLower, 0)
	upDD := dd.New(nUpper, 0)
	acc := make([]complex128, m)
	loBuf := make([]complex128, 1<<nLower)
	upBuf := make([]complex128, 1<<nUpper)

	var run func(level int, lo, up dd.Edge, coeff complex128) error
	applyAll := func(d *dd.DD, root dd.Edge, gs []gate.Gate) (dd.Edge, error) {
		var err error
		for i := range gs {
			root, err = d.ApplyGateTo(root, &gs[i])
			if err != nil {
				return dd.Edge{}, err
			}
		}
		return root, nil
	}
	run = func(level int, lo, up dd.Edge, coeff complex128) error {
		if e.timeout.Load() {
			return ErrTimeout
		}
		var err error
		if lo, err = applyAll(loDD, lo, e.segs[level].lower); err != nil {
			return err
		}
		if up, err = applyAll(upDD, up, e.segs[level].upper); err != nil {
			return err
		}
		if level == len(e.cuts) {
			loDD.FillStatevector(lo, loBuf)
			upDD.FillStatevector(up, upBuf)
			e.accumulate(acc, coeff, statevec.State(upBuf), statevec.State(loBuf))
			e.paths.Add(1)
			return nil
		}
		c := &e.cuts[level]
		for t := range c.sigma {
			lo2, err := loDD.ApplyGateTo(lo, &c.lower[t])
			if err != nil {
				return err
			}
			up2, err := upDD.ApplyGateTo(up, &c.upper[t])
			if err != nil {
				return err
			}
			if err := run(level+1, lo2, up2, coeff*c.sigma[t]); err != nil {
				return err
			}
		}
		return nil
	}
	if err := run(0, loDD.Root(), upDD.Root(), 1); err != nil {
		return nil, err
	}

	np, _ := plan.NumPaths()
	return &Result{
		Amplitudes:     acc,
		NumPaths:       np,
		Log2Paths:      plan.Log2Paths(),
		PathsSimulated: e.paths.Load(),
		NumQubits:      plan.NumQubits,
		Elapsed:        time.Since(start),
	}, nil
}
