package hsf

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"hsfsim/internal/circuit"
	"hsfsim/internal/gate"
	"hsfsim/internal/qasm"
)

func fpCircuit() *circuit.Circuit {
	c := circuit.New(4)
	c.Append(gate.H(0), gate.H(1), gate.H(2), gate.H(3))
	c.Append(gate.RZZ(0.7, 1, 2), gate.CNOT(0, 1), gate.RX(0.3, 3))
	c.Append(gate.CPhase(1.1, 2, 3))
	return c
}

func TestCircuitFingerprintStable(t *testing.T) {
	a, b := fpCircuit(), fpCircuit()
	if CircuitFingerprint(a) != CircuitFingerprint(b) {
		t.Fatal("identical circuits built twice hash apart")
	}
	if CircuitFingerprint(a) != CircuitFingerprint(a.Clone()) {
		t.Fatal("Clone changed the fingerprint")
	}
}

// TestCircuitFingerprintNearMiss pins that near-identical circuits — one
// gate's angle nudged, two qubits relabeled, two commuting gates swapped, a
// wider register — get distinct cache keys. A collision here would batch
// jobs whose amplitudes differ.
func TestCircuitFingerprintNearMiss(t *testing.T) {
	base := CircuitFingerprint(fpCircuit())

	angle := fpCircuit()
	angle.Gates[4] = gate.RZZ(0.7000001, 1, 2)
	if CircuitFingerprint(angle) == base {
		t.Error("one-ulp-ish angle change collided")
	}

	// Relabel qubits 1<->2 everywhere: same gate multiset, different wiring.
	relabel := circuit.New(4)
	swap := func(q int) int {
		switch q {
		case 1:
			return 2
		case 2:
			return 1
		}
		return q
	}
	for i := range fpCircuit().Gates {
		g := fpCircuit().Gates[i]
		qs := make([]int, len(g.Qubits))
		for j, q := range g.Qubits {
			qs[j] = swap(q)
		}
		g.Qubits = qs
		relabel.Append(g)
	}
	if CircuitFingerprint(relabel) == base {
		t.Error("qubit relabeling collided")
	}

	// Swap two gates that act on disjoint qubits; equivalent circuit, but a
	// fingerprint is a cache key over the written order, not a canonical form.
	reorder := fpCircuit()
	reorder.Gates[0], reorder.Gates[3] = reorder.Gates[3], reorder.Gates[0]
	if CircuitFingerprint(reorder) == base {
		t.Error("gate reorder collided")
	}

	wider := circuit.New(5)
	wider.Gates = fpCircuit().Gates
	if CircuitFingerprint(wider) == base {
		t.Error("register width change collided")
	}

	dropped := fpCircuit()
	dropped.Gates = dropped.Gates[:len(dropped.Gates)-1]
	if CircuitFingerprint(dropped) == base {
		t.Error("dropped gate collided")
	}
}

func TestFingerprintOptionsSeparatesFields(t *testing.T) {
	cfp := CircuitFingerprint(fpCircuit())
	a := FingerprintOptions(cfp, 2, 7, 1)
	b := FingerprintOptions(cfp, 2, 8, 1)
	c := FingerprintOptions(cfp, 2, 7)
	if a == b || a == c || b == c {
		t.Fatalf("option field changes must change the key: %x %x %x", a, b, c)
	}
	if FingerprintOptions(cfp, 2, 7, 1) != a {
		t.Fatal("FingerprintOptions not deterministic")
	}
}

// randRoundTripCircuit draws a circuit from the QASM-exact gate set: every
// gate here is written symbolically (name + 17-significant-digit params) and
// parsed back through the same constructor, so encode/decode must preserve
// the fingerprint bit-for-bit.
func randRoundTripCircuit(rng *rand.Rand) *circuit.Circuit {
	n := 2 + rng.Intn(5)
	c := circuit.New(n)
	gates := rng.Intn(30)
	for i := 0; i < gates; i++ {
		q := rng.Intn(n)
		r := (q + 1 + rng.Intn(n-1)) % n
		theta := (rng.Float64() - 0.5) * 4 * math.Pi
		switch rng.Intn(12) {
		case 0:
			c.Append(gate.H(q))
		case 1:
			c.Append(gate.X(q))
		case 2:
			c.Append(gate.T(q))
		case 3:
			c.Append(gate.SX(q))
		case 4:
			c.Append(gate.RX(theta, q))
		case 5:
			c.Append(gate.RZ(theta, q))
		case 6:
			c.Append(gate.U3(theta, rng.Float64(), -rng.Float64(), q))
		case 7:
			c.Append(gate.CNOT(q, r))
		case 8:
			c.Append(gate.CZ(q, r))
		case 9:
			c.Append(gate.RZZ(theta, q, r))
		case 10:
			c.Append(gate.CPhase(theta, q, r))
		case 11:
			c.Append(gate.SWAP(q, r))
		}
	}
	return c
}

func roundTripFingerprint(t *testing.T, c *circuit.Circuit) {
	t.Helper()
	want := CircuitFingerprint(c)
	var buf bytes.Buffer
	if err := qasm.Write(&buf, c); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := qasm.Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if fp := CircuitFingerprint(got); fp != want {
		t.Fatalf("fingerprint drifted across qasm round trip: %x != %x\n%s", fp, want, buf.String())
	}
	// Second trip: the parsed circuit must also re-encode stably, or a job
	// stored as QASM and resubmitted would miss its own cached plan.
	var buf2 bytes.Buffer
	if err := qasm.Write(&buf2, got); err != nil {
		t.Fatalf("re-write: %v", err)
	}
	again, err := qasm.Parse(bytes.NewReader(buf2.Bytes()))
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if fp := CircuitFingerprint(again); fp != want {
		t.Fatalf("fingerprint drifted on second round trip: %x != %x", fp, want)
	}
}

// FuzzFingerprintQASMRoundTrip pins fingerprint stability across qasm
// encode/decode: the seed drives a deterministic random circuit, and both
// directions of the trip must preserve the hash. `go test` runs the corpus;
// `go test -fuzz=FuzzFingerprintQASMRoundTrip` explores further.
func FuzzFingerprintQASMRoundTrip(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		roundTripFingerprint(t, randRoundTripCircuit(rand.New(rand.NewSource(seed))))
	})
}

func TestFingerprintQASMRoundTripSweep(t *testing.T) {
	for seed := int64(0); seed < 64; seed++ {
		roundTripFingerprint(t, randRoundTripCircuit(rand.New(rand.NewSource(seed))))
	}
}
