package hsf

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"testing"
)

// fuzzSeedCheckpoint builds a small valid checkpoint to seed the corpus.
func fuzzSeedCheckpoint() []byte {
	ck := &Checkpoint{
		PlanHash:       0xdeadbeefcafe,
		NumQubits:      4,
		M:              4,
		SplitLevels:    2,
		Prefixes:       [][]int{{0, 1}, {1, 0}, {300, 2}},
		PathsSimulated: 7,
		Acc:            []complex128{1, 2i, complex(3, 4), -1},
	}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, ck); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzReadCheckpoint drives the untrusted checkpoint decoder with hostile
// input: truncated streams, corrupt headers, and absurd length fields must
// produce an error — never a panic, and never an allocation proportional to a
// declared length instead of the bytes actually present.
func FuzzReadCheckpoint(f *testing.F) {
	valid := fuzzSeedCheckpoint()
	f.Add(valid)
	// Truncations at interesting boundaries.
	for _, n := range []int{0, 4, 8, 16, 28, 36, len(valid) / 2, len(valid) - 1} {
		if n <= len(valid) {
			f.Add(valid[:n])
		}
	}
	// Hostile prefix count: claim 2^24 prefixes with no payload behind it.
	hostile := append([]byte(nil), valid[:32]...)
	hostile = binary.LittleEndian.AppendUint64(hostile, 1<<24)
	f.Add(hostile)
	// Hostile accumulator length.
	bigM := append([]byte(nil), valid[:20]...)
	bigM = binary.LittleEndian.AppendUint64(bigM, 1<<40)
	f.Add(bigM)
	// Corrupt magic.
	bad := append([]byte(nil), valid...)
	bad[0] ^= 0xff
	f.Add(bad)
	// Degenerate but valid shapes the engine can produce: an empty snapshot
	// (no prefixes finished yet, zero split depth) and a truncated-accumulator
	// run (MaxAmplitudes) with non-finite payload values, which the decoder
	// must pass through bit-exactly rather than rejecting or normalizing.
	for _, ck := range []*Checkpoint{
		{PlanHash: 1, NumQubits: 2, M: 0, SplitLevels: 0, Prefixes: [][]int{{}, {}}},
		{PlanHash: 2, NumQubits: 30, M: 3, SplitLevels: 1, Prefixes: [][]int{{5}},
			PathsSimulated: 1,
			Acc: []complex128{
				complex(math.NaN(), math.Inf(1)),
				complex(math.Inf(-1), 0),
				complex(math.Copysign(0, -1), math.SmallestNonzeroFloat64),
			}},
	} {
		var buf bytes.Buffer
		if err := WriteCheckpoint(&buf, ck); err != nil {
			panic(err)
		}
		f.Add(buf.Bytes())
	}
	// A stream whose prefix table is cut mid-vector (not at a record
	// boundary).
	midPrefix := append([]byte(nil), valid[:40+2]...)
	f.Add(midPrefix)

	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := ReadCheckpoint(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully decoded checkpoint must be internally consistent and
		// must round-trip through the writer.
		if len(ck.Acc) != ck.M {
			t.Fatalf("decoded accumulator length %d != header %d", len(ck.Acc), ck.M)
		}
		for _, p := range ck.Prefixes {
			if len(p) != ck.SplitLevels {
				t.Fatalf("decoded prefix length %d != split levels %d", len(p), ck.SplitLevels)
			}
		}
		var buf bytes.Buffer
		if err := WriteCheckpoint(&buf, ck); err != nil {
			t.Fatalf("re-encoding decoded checkpoint: %v", err)
		}
		ck2, err := ReadCheckpoint(&buf)
		if err != nil {
			t.Fatalf("re-decoding: %v", err)
		}
		if ck2.PlanHash != ck.PlanHash || ck2.M != ck.M ||
			ck2.SplitLevels != ck.SplitLevels || len(ck2.Prefixes) != len(ck.Prefixes) ||
			ck2.PathsSimulated != ck.PathsSimulated {
			t.Fatal("checkpoint does not round-trip")
		}
	})
}

// TestReadCheckpointHostileLengths pins the over-allocation guarantees the
// fuzzer relies on, deterministically.
func TestReadCheckpointHostileLengths(t *testing.T) {
	valid := fuzzSeedCheckpoint()

	// Declared prefix count of 2^24 with an empty stream behind it must error
	// on the missing payload (incremental allocation keeps this cheap).
	hostile := append([]byte(nil), valid[:32]...)
	hostile = binary.LittleEndian.AppendUint64(hostile, 1<<24)
	if _, err := ReadCheckpoint(bytes.NewReader(hostile)); err == nil {
		t.Fatal("accepted truncated prefix table")
	}
	// Prefix count beyond the cap is rejected outright.
	overCap := append([]byte(nil), valid[:32]...)
	overCap = binary.LittleEndian.AppendUint64(overCap, (1<<24)+1)
	if _, err := ReadCheckpoint(bytes.NewReader(overCap)); err == nil {
		t.Fatal("accepted prefix count over the cap")
	}
	// Split levels beyond the cap are rejected.
	overSplit := append([]byte(nil), valid[:28]...)
	overSplit = binary.LittleEndian.AppendUint32(overSplit, (1<<16)+1)
	if _, err := ReadCheckpoint(bytes.NewReader(overSplit)); err == nil {
		t.Fatal("accepted split levels over the cap")
	}
	// Truncated accumulator errors instead of returning short data.
	if _, err := ReadCheckpoint(bytes.NewReader(valid[:len(valid)-8])); err == nil {
		t.Fatal("accepted truncated accumulator")
	}
	if _, err := ReadCheckpoint(bytes.NewReader(nil)); err != io.ErrUnexpectedEOF && err == nil {
		t.Fatal("accepted empty stream")
	}
}
