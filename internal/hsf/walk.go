package hsf

import (
	"context"
	"runtime/debug"
	"time"

	"hsfsim/internal/statevec"
	"hsfsim/internal/telemetry"
)

// walkFrame is one node of the explicit-stack depth-first path-tree walk.
// term is the next cut term to descend into; entered records that the
// node's segment has been applied (a frame is re-visited once per term).
type walkFrame struct {
	st      pairState
	level   int
	coeff   complex128
	term    int
	entered bool
}

// walker executes path subtrees for one worker goroutine against a private
// workspace. The frame stack is reused across prefix tasks and forked states
// recycle through the workspace, so steady-state execution allocates
// nothing: live pair states never exceed the remaining tree depth (one per
// frame), exactly the clone-chain bound of the Cost model.
//
// wc is the worker's private telemetry counter block (nil when telemetry is
// disabled). Its methods neither allocate nor lock — counters are plain
// fields flushed once at worker exit, and sampled timings (1 in 64) feed
// atomic histograms — so the zero-allocs-per-leaf guarantee holds with
// telemetry enabled.
type walker struct {
	e     *engine
	ws    workspace
	wc    *telemetry.WorkerCounters
	stack []walkFrame
}

// runPrefixRecover wraps runPrefix with panic recovery: a panicking path
// worker yields a *PanicError instead of tearing the process down.
func (w *walker) runPrefixRecover(ctx context.Context, prefix []int, acc statevec.Vector) (nLeaves int64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return w.runPrefix(ctx, prefix, acc)
}

// runPrefix simulates the fixed term choices of a prefix task, then descends
// into the remaining subtree. It returns the number of path leaves
// accumulated into acc.
func (w *walker) runPrefix(ctx context.Context, prefix []int, acc statevec.Vector) (int64, error) {
	st, err := w.ws.newRoot()
	if err != nil {
		return 0, err
	}
	coeff := complex128(1)
	for l, t := range prefix {
		if err := stopped(ctx); err != nil {
			st.release()
			return 0, err
		}
		var t0 time.Time
		sampled := false
		if w.wc != nil {
			if sampled = w.wc.Sample(); sampled {
				t0 = time.Now()
			}
		}
		if err := st.applySegment(&w.e.segs[l]); err != nil {
			st.release()
			return 0, err
		}
		c := &w.e.cuts[l]
		if err := st.applyCutTerm(c, t); err != nil {
			st.release()
			return 0, err
		}
		if w.wc != nil {
			w.wc.Seg(l, sampled, t0)
			w.wc.CutTerm(l, t)
		}
		coeff *= c.sigma[t]
	}
	return w.walk(ctx, st, len(prefix), coeff, acc)
}

// walk runs the subtree rooted at (root, level) depth-first with an explicit
// stack, taking ownership of root. Cut terms are expanded in ascending
// order, matching the engine's historical recursive order; the last term of
// a cut takes over the parent's state in place of a fork, so a rank-r cut
// forks r-1 times.
func (w *walker) walk(ctx context.Context, root pairState, level int, coeff complex128, acc statevec.Vector) (int64, error) {
	w.stack = append(w.stack[:0], walkFrame{st: root, level: level, coeff: coeff})
	var nLeaves int64
	// fail releases every state still on the stack before propagating err,
	// keeping the release-exactly-once discipline on error paths.
	fail := func(err error) (int64, error) {
		for i := len(w.stack) - 1; i >= 0; i-- {
			w.stack[i].st.release()
		}
		w.stack = w.stack[:0]
		return nLeaves, err
	}
	for len(w.stack) > 0 {
		f := &w.stack[len(w.stack)-1]
		if !f.entered {
			if err := stopped(ctx); err != nil {
				return fail(err)
			}
			var t0 time.Time
			sampled := false
			if w.wc != nil {
				if sampled = w.wc.Sample(); sampled {
					t0 = time.Now()
				}
			}
			if err := f.st.applySegment(&w.e.segs[f.level]); err != nil {
				return fail(err)
			}
			if w.wc != nil {
				w.wc.Seg(f.level, sampled, t0)
			}
			f.entered = true
			if f.level == len(w.e.cuts) {
				n := w.e.leaves.Add(1)
				if w.e.failAfter > 0 && n > w.e.failAfter {
					return fail(ErrInjectedFault)
				}
				f.st.accumulate(acc, f.coeff)
				nLeaves++
				f.st.release()
				w.stack = w.stack[:len(w.stack)-1]
				if w.wc != nil {
					// Leaf latency spans the leaf's final segment sweep
					// through accumulation, sharing the segment's sample.
					w.wc.Leaf(sampled, t0)
				}
				if w.e.hook != nil {
					w.e.hook(n)
				}
				continue
			}
		}
		c := &w.e.cuts[f.level]
		level, coeff := f.level, f.coeff
		t := f.term
		f.term++
		var child pairState
		if t == len(c.sigma)-1 {
			// Last term: the parent state is never needed again, so the
			// child takes it over instead of forking.
			child = f.st
			w.stack = w.stack[:len(w.stack)-1]
		} else {
			var err error
			child, err = f.st.fork()
			if err != nil {
				return fail(err)
			}
			if w.wc != nil {
				w.wc.Fork()
			}
		}
		if err := child.applyCutTerm(c, t); err != nil {
			child.release() // child is not on the stack yet
			return fail(err)
		}
		if w.wc != nil {
			w.wc.CutTerm(level, t)
		}
		w.stack = append(w.stack, walkFrame{st: child, level: level + 1, coeff: coeff * c.sigma[t]})
	}
	return nLeaves, nil
}
