// Package hsf executes HSF (Hybrid Schrödinger-Feynman) simulation plans:
// the two partition statevectors are evolved through the plan's local gates,
// and every cut branches the simulation over its Schmidt terms. Each complete
// branch assignment is one Feynman "path"; the amplitudes of the full state
// are accumulated as ψ[x] += (∏σ) · up[x_a] · lo[x_b] over all paths.
//
// The engine shares path prefixes: cuts are processed in circuit order and a
// branch clones the partition states only when more than one term remains,
// so the exponential path tree re-simulates only suffixes. Independent
// subtrees run on a worker pool.
package hsf

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hsfsim/internal/cut"
	"hsfsim/internal/fuse"
	"hsfsim/internal/gate"
	"hsfsim/internal/statevec"
)

// ErrTimeout is returned when the simulation exceeds Options.Timeout.
var ErrTimeout = errors.New("hsf: simulation timed out")

// Options configures plan execution.
type Options struct {
	// MaxAmplitudes limits the output to the first M amplitudes of the full
	// statevector (the paper computes the first 10^6). 0 means the full
	// 2^n state.
	MaxAmplitudes int
	// Workers is the number of parallel path workers; 0 uses GOMAXPROCS.
	Workers int
	// FusionMaxQubits configures per-segment gate fusion: 0 selects
	// fuse.DefaultMaxQubits, negative disables fusion.
	FusionMaxQubits int
	// Timeout aborts the simulation after the given duration (0: none),
	// mirroring the paper's 1 h limit for standard HSF runs.
	Timeout time.Duration
}

// Result holds the simulated amplitudes and execution statistics.
type Result struct {
	// Amplitudes are the first MaxAmplitudes entries of the statevector.
	Amplitudes []complex128
	// NumPaths is the plan's total path count (saturating at MaxUint64).
	NumPaths uint64
	// Log2Paths is log2 of the path count.
	Log2Paths float64
	// PathsSimulated counts the leaves actually reached.
	PathsSimulated int64
	// NumQubits is the register size.
	NumQubits int
	// Elapsed is the wall-clock simulation time.
	Elapsed time.Duration
}

// segment is the run of local gates between two consecutive cuts, remapped
// to partition-local qubit labels and optionally fused.
type segment struct {
	lower []gate.Gate
	upper []gate.Gate
}

// compiledCut is a cut with its terms lowered to partition-local gates.
type compiledCut struct {
	sigma []complex128
	lower []gate.Gate // one per term
	upper []gate.Gate
}

type engine struct {
	segs    []segment
	cuts    []compiledCut
	nLower  int
	nUpper  int
	m       int // output amplitudes
	timeout atomic.Bool
	paths   atomic.Int64
}

// Run executes the plan.
func Run(plan *cut.Plan, opts Options) (*Result, error) {
	nLower := plan.Partition.NumLower()
	nUpper := plan.Partition.NumUpper(plan.NumQubits)
	if nLower <= 0 || nUpper <= 0 {
		return nil, fmt.Errorf("hsf: degenerate partition %d|%d", nLower, nUpper)
	}
	dim := 1 << plan.NumQubits
	m := opts.MaxAmplitudes
	if m <= 0 || m > dim {
		m = dim
	}

	e := &engine{nLower: nLower, nUpper: nUpper, m: m}
	e.compile(plan, opts.FusionMaxQubits)

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	var timer *time.Timer
	if opts.Timeout > 0 {
		timer = time.AfterFunc(opts.Timeout, func() { e.timeout.Store(true) })
		defer timer.Stop()
	}

	start := time.Now()
	amps, err := e.run(workers)
	elapsed := time.Since(start)
	if err != nil {
		return nil, err
	}

	np, _ := plan.NumPaths()
	return &Result{
		Amplitudes:     amps,
		NumPaths:       np,
		Log2Paths:      plan.Log2Paths(),
		PathsSimulated: e.paths.Load(),
		NumQubits:      plan.NumQubits,
		Elapsed:        elapsed,
	}, nil
}

// compile lowers the plan: local gates are remapped to partition-local
// labels, grouped into segments between cuts, and fused; cut terms become
// partition-local gates.
func (e *engine) compile(plan *cut.Plan, fusionMaxQubits int) {
	upOff := e.nLower
	seg := segment{}
	for _, st := range plan.Steps {
		switch st.Kind {
		case cut.LocalStep:
			g := st.Gate
			if st.Side == cut.Lower {
				seg.lower = append(seg.lower, g)
			} else {
				seg.upper = append(seg.upper, g.Remap(func(q int) int { return q - upOff }))
			}
		case cut.CutStep:
			e.segs = append(e.segs, seg)
			seg = segment{}
			cp := st.Cut
			cc := compiledCut{}
			loQ := append([]int(nil), cp.LowerQubits...)
			upQ := make([]int, len(cp.UpperQubits))
			for i, q := range cp.UpperQubits {
				upQ[i] = q - upOff
			}
			for _, t := range cp.Terms {
				cc.sigma = append(cc.sigma, complex(t.Sigma, 0))
				cc.lower = append(cc.lower, gate.New("cut-term", t.Lower, nil, loQ...))
				cc.upper = append(cc.upper, gate.New("cut-term", t.Upper, nil, upQ...))
			}
			e.cuts = append(e.cuts, cc)
		}
	}
	e.segs = append(e.segs, seg) // trailing segment after the last cut

	if fusionMaxQubits >= 0 {
		if fusionMaxQubits == 0 {
			fusionMaxQubits = fuse.DefaultMaxQubits
		}
		for i := range e.segs {
			e.segs[i].lower = fuse.Fuse(e.segs[i].lower, fusionMaxQubits)
			e.segs[i].upper = fuse.Fuse(e.segs[i].upper, fusionMaxQubits)
		}
	}
}

// run executes the path tree. The first splitLevels cuts are expanded
// breadth-first into independent prefix tasks distributed over the worker
// pool; each worker owns a private accumulator that is merged at the end.
func (e *engine) run(workers int) ([]complex128, error) {
	// Determine how many leading cut levels to expand so that the task count
	// comfortably exceeds the worker count.
	splitLevels := 0
	tasks := 1
	for splitLevels < len(e.cuts) && tasks < 4*workers {
		tasks *= len(e.cuts[splitLevels].sigma)
		splitLevels++
	}

	// Enumerate prefix choice vectors.
	prefixes := [][]int{{}}
	for l := 0; l < splitLevels; l++ {
		r := len(e.cuts[l].sigma)
		next := make([][]int, 0, len(prefixes)*r)
		for _, p := range prefixes {
			for t := 0; t < r; t++ {
				np := make([]int, len(p)+1)
				copy(np, p)
				np[len(p)] = t
				next = append(next, np)
			}
		}
		prefixes = next
	}

	if workers > len(prefixes) {
		workers = len(prefixes)
	}

	taskCh := make(chan []int)
	accs := make([][]complex128, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		accs[w] = make([]complex128, e.m)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for prefix := range taskCh {
				if errs[w] != nil {
					continue // drain
				}
				errs[w] = e.runPrefix(prefix, accs[w])
			}
		}(w)
	}
	for _, p := range prefixes {
		taskCh <- p
	}
	close(taskCh)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := accs[0]
	for w := 1; w < workers; w++ {
		for i, v := range accs[w] {
			out[i] += v
		}
	}
	return out, nil
}

// runPrefix simulates the fixed term choices of a prefix task, then descends
// into the remaining subtree sequentially.
func (e *engine) runPrefix(prefix []int, acc []complex128) error {
	lo := statevec.NewState(e.nLower)
	up := statevec.NewState(e.nUpper)
	coeff := complex128(1)
	for l, t := range prefix {
		if e.timeout.Load() {
			return ErrTimeout
		}
		lo.ApplyAll(e.segs[l].lower)
		up.ApplyAll(e.segs[l].upper)
		c := &e.cuts[l]
		lo.ApplyGate(&c.lower[t])
		up.ApplyGate(&c.upper[t])
		coeff *= c.sigma[t]
	}
	return e.runBranch(len(prefix), lo, up, coeff, acc)
}

// runBranch owns lo and up and may mutate them.
func (e *engine) runBranch(level int, lo, up statevec.State, coeff complex128, acc []complex128) error {
	if e.timeout.Load() {
		return ErrTimeout
	}
	lo.ApplyAll(e.segs[level].lower)
	up.ApplyAll(e.segs[level].upper)
	if level == len(e.cuts) {
		e.accumulate(acc, coeff, up, lo)
		e.paths.Add(1)
		return nil
	}
	c := &e.cuts[level]
	last := len(c.sigma) - 1
	for t := 0; t <= last; t++ {
		lo2, up2 := lo, up
		if t != last {
			lo2, up2 = lo.Clone(), up.Clone()
		}
		lo2.ApplyGate(&c.lower[t])
		up2.ApplyGate(&c.upper[t])
		if err := e.runBranch(level+1, lo2, up2, coeff*c.sigma[t], acc); err != nil {
			return err
		}
	}
	return nil
}

// accumulate adds coeff · (up ⊗ lo) to the first m amplitudes of acc.
func (e *engine) accumulate(acc []complex128, coeff complex128, up, lo statevec.State) {
	dimLo := 1 << e.nLower
	for x0 := 0; x0 < e.m; x0 += dimLo {
		u := coeff * up[x0>>e.nLower]
		if u == 0 {
			continue
		}
		end := x0 + dimLo
		if end > e.m {
			end = e.m
		}
		block := acc[x0:end]
		for i := range block {
			block[i] += u * lo[i]
		}
	}
}
