// Package hsf executes HSF (Hybrid Schrödinger-Feynman) simulation plans:
// the two partition statevectors are evolved through the plan's local gates,
// and every cut branches the simulation over its Schmidt terms. Each complete
// branch assignment is one Feynman "path"; the amplitudes of the full state
// are accumulated as ψ[x] += (∏σ) · up[x_a] · lo[x_b] over all paths.
//
// The engine shares path prefixes: cuts are processed in circuit order and a
// branch clones the partition states only when more than one term remains,
// so the exponential path tree re-simulates only suffixes. Independent
// subtrees run on a worker pool.
//
// Resilience: execution is cooperatively cancellable through a
// context.Context checked at every segment boundary, jobs are admitted
// against a cost model before any statevector is allocated (Cost, ErrBudget),
// completed prefix tasks are checkpointable for crash/cancel recovery
// (Checkpoint), and a panic in a path worker surfaces as a *PanicError
// instead of crashing the process.
package hsf

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hsfsim/internal/cut"
	"hsfsim/internal/fuse"
	"hsfsim/internal/gate"
	"hsfsim/internal/par"
	"hsfsim/internal/statevec"
	"hsfsim/internal/telemetry"
	"hsfsim/internal/telemetry/trace"
)

// ErrTimeout is returned when the simulation exceeds Options.Timeout. A
// cancellation or deadline on the caller's context is reported as
// context.Canceled / context.DeadlineExceeded instead, so callers can tell
// "the job hit its own time budget" apart from "the caller went away".
var ErrTimeout = errors.New("hsf: simulation timed out")

// ErrInjectedFault is returned when Options.FailAfterPaths triggers. It
// exists so checkpoint/resume recovery is testable deterministically,
// without real crashes or timing races.
var ErrInjectedFault = errors.New("hsf: injected fault")

// PanicError wraps a panic recovered from a path worker; the simulation
// reports it as an ordinary error instead of crashing the process.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("hsf: panic in path worker: %v", e.Value)
}

// Options configures plan execution.
type Options struct {
	// MaxAmplitudes limits the output to the first M amplitudes of the full
	// statevector (the paper computes the first 10^6). 0 means the full
	// 2^n state.
	MaxAmplitudes int
	// Backend selects the pair-state representation (dense statevector
	// arrays by default, or decision diagrams). Both run through the same
	// path-tree walker.
	Backend Backend
	// Workers is the number of parallel path workers; 0 uses GOMAXPROCS.
	// Backends without parallel-worker support (BackendDD) reject Workers >
	// 1 with ErrUnsupported.
	Workers int
	// FusionMaxQubits configures per-segment gate fusion: 0 selects
	// fuse.DefaultMaxQubits, negative disables fusion.
	FusionMaxQubits int
	// Timeout aborts the simulation after the given duration (0: none),
	// mirroring the paper's 1 h limit for standard HSF runs.
	Timeout time.Duration
	// MemoryBudget caps the estimated footprint (Cost) in bytes before
	// anything is allocated: 0 selects DefaultMemoryBudget, negative
	// disables the check. Over-budget jobs fail with a *BudgetError.
	MemoryBudget int64
	// MaxPaths rejects plans whose path count exceeds it (0: no limit).
	MaxPaths uint64
	// CheckpointWriter, when non-nil, receives a Checkpoint snapshot if the
	// run stops prematurely (cancellation, timeout, fault, panic): the
	// completed prefix tasks plus their merged partial accumulator.
	CheckpointWriter io.Writer
	// Resume, when non-nil, seeds the run from a prior checkpoint: completed
	// prefixes are skipped and the accumulator continues from the snapshot.
	Resume *Checkpoint
	// FailAfterPaths injects a deterministic fault after roughly that many
	// path leaves have been simulated (0: disabled). Testing hook for
	// checkpoint/resume recovery.
	FailAfterPaths int64
	// OnCheckpoint, when non-nil, runs after every completed prefix task is
	// merged, with the engine's live checkpoint. It is called under the merge
	// lock — the checkpoint is a consistent snapshot, but the callback blocks
	// every other worker's merge, so it must be fast: rate-limit, Clone, and
	// hand off to another goroutine rather than writing to disk inline. Job
	// services use it to flush durable mid-run checkpoints so a killed
	// process resumes instead of restarting.
	OnCheckpoint func(*Checkpoint)
	// Telemetry, when non-nil, records run-level measurements: compile
	// spans, per-segment application counts and sampled sweep timings,
	// leaf-latency histograms, kernel-class attribution, and pool/par
	// statistics. Counters accumulate per worker and merge once at worker
	// exit, so enabling telemetry does not perturb the zero-alloc hot path.
	Telemetry *telemetry.Recorder
	// Progress, when non-nil, is wired to the engine's live leaf counter at
	// run start so callers can render paths-done/total tickers for free.
	Progress *telemetry.Tracker

	// testHookLeaf, when non-nil, runs after every simulated path leaf with
	// the global leaf count. Tests use it to cancel or panic mid-run at a
	// deterministic point.
	testHookLeaf func(leaves int64)
}

// Result holds the simulated amplitudes and execution statistics.
type Result struct {
	// Amplitudes are the first MaxAmplitudes entries of the statevector.
	Amplitudes []complex128
	// NumPaths is the plan's total path count (saturating at MaxUint64).
	NumPaths uint64
	// Log2Paths is log2 of the path count.
	Log2Paths float64
	// PathsSimulated counts the leaves actually reached (including leaves
	// replayed from a resumed checkpoint).
	PathsSimulated int64
	// NumQubits is the register size.
	NumQubits int
	// Elapsed is the wall-clock simulation time.
	Elapsed time.Duration
}

// segment is the run of local gates between two consecutive cuts, remapped
// to partition-local qubit labels and optionally fused. The dense backend
// replays the compiled forms (kernel plans attached, cache-blocked sweep
// grouping); the DD backend walks the gate slices directly.
type segment struct {
	lower []gate.Gate
	upper []gate.Gate
	loSeg *statevec.CompiledSegment
	upSeg *statevec.CompiledSegment
}

// compiledCut is a cut with its terms lowered to partition-local gates.
type compiledCut struct {
	sigma []complex128
	lower []gate.Gate // one per term
	upper []gate.Gate
}

type engine struct {
	backend Backend
	segs    []segment
	cuts    []compiledCut
	ranks   []int // per-cut Schmidt ranks (len(cuts[l].sigma))
	nLower  int
	nUpper  int
	m       int // output amplitudes
	leaves  atomic.Int64

	failAfter int64
	hook      func(int64)
	onCkpt    func(*Checkpoint)

	tel *telemetry.Recorder
	// trc/tsc carry the flight-recorder trace context threaded through the
	// run's context.Context: trc records phase and per-prefix-task spans,
	// tsc is the parent they hang under (the walk-phase span once the walk
	// starts). Both are nil/zero for untraced runs; the recorder is
	// nil-safe, so no call site checks.
	trc *trace.Recorder
	tsc trace.SpanContext
	// parReserved/parInner snapshot the process parallelism budget while the
	// worker pool holds its reservation (written in runTasks before the
	// workers start, read for the telemetry run totals afterwards).
	parReserved int
	parInner    int
}

// spanLeafBudget is the leaf count a lane's coalesced "prefix" span covers
// before it is closed and a fresh one opened. It bounds span overhead on
// plans whose prefix tasks are only a few leaves each (the two clock reads
// plus the ring-buffer copy per span amortize over at least this much leaf
// work) while leaving one span per task on any task at or above the budget.
const spanLeafBudget = 64

// Run executes the plan without external cancellation.
func Run(plan *cut.Plan, opts Options) (*Result, error) {
	return RunContext(context.Background(), plan, opts)
}

// RunContext executes the plan under ctx. Cancellation is cooperative: the
// path workers observe it at segment boundaries, so a canceled run stops
// within one segment of work per worker. The returned error is
// context.Canceled or context.DeadlineExceeded for external cancellation and
// ErrTimeout when Options.Timeout fires.
func RunContext(ctx context.Context, plan *cut.Plan, opts Options) (*Result, error) {
	nLower := plan.Partition.NumLower()
	nUpper := plan.Partition.NumUpper(plan.NumQubits)
	if nLower <= 0 || nUpper <= 0 {
		return nil, fmt.Errorf("hsf: degenerate partition %d|%d", nLower, nUpper)
	}
	workers, err := opts.backendWorkers()
	if err != nil {
		return nil, err
	}
	costOpts := opts
	costOpts.Workers = workers
	if err := admit(Cost(plan, costOpts), costOpts); err != nil {
		return nil, err
	}
	m := resolveAmplitudes(plan, opts.MaxAmplitudes)

	e := &engine{backend: opts.Backend, nLower: nLower, nUpper: nUpper, m: m,
		failAfter: opts.FailAfterPaths, hook: opts.testHookLeaf,
		onCkpt: opts.OnCheckpoint, tel: opts.Telemetry}
	e.trc, e.tsc = trace.FromContext(ctx)
	endCompile := opts.Telemetry.Span("compile")
	csp := e.trc.Start(e.tsc, "compile")
	e.compile(plan, opts.FusionMaxQubits)
	csp.SetInt("segments", int64(len(e.segs)))
	csp.SetInt("cuts", int64(len(e.cuts)))
	csp.End()
	endCompile()

	if opts.Resume != nil {
		if err := opts.Resume.validateFor(plan, m); err != nil {
			return nil, err
		}
	}

	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, opts.Timeout, ErrTimeout)
		defer cancel()
	}

	np, _ := plan.NumPaths()
	var resumedPaths int64
	if opts.Resume != nil {
		resumedPaths = opts.Resume.PathsSimulated
	}
	opts.Progress.Start(saturateInt64(np), resumedPaths, &e.leaves)

	start := time.Now()
	wsp := e.trc.Start(e.tsc, "walk")
	e.tsc = wsp.Context() // prefix-task spans parent to the walk phase
	amps, ck, err := e.run(ctx, workers, opts.Resume, plan)
	if ck != nil {
		wsp.SetInt("paths", ck.PathsSimulated)
	}
	wsp.End()
	elapsed := time.Since(start)
	if ck != nil {
		e.finishTelemetry(opts.Telemetry, np, plan.Log2Paths(), ck.PathsSimulated, resumedPaths, workers, elapsed)
	}
	if err != nil {
		if ck != nil && opts.CheckpointWriter != nil {
			if werr := WriteCheckpoint(opts.CheckpointWriter, ck); werr != nil {
				return nil, errors.Join(err, fmt.Errorf("hsf: writing checkpoint: %w", werr))
			}
		}
		return nil, err
	}
	return &Result{
		Amplitudes:     amps,
		NumPaths:       np,
		Log2Paths:      plan.Log2Paths(),
		PathsSimulated: ck.PathsSimulated,
		NumQubits:      plan.NumQubits,
		Elapsed:        elapsed,
	}, nil
}

// compile lowers the plan: local gates are remapped to partition-local
// labels, grouped into segments between cuts, and fused; cut terms become
// partition-local gates.
func (e *engine) compile(plan *cut.Plan, fusionMaxQubits int) {
	upOff := e.nLower
	seg := segment{}
	for _, st := range plan.Steps {
		switch st.Kind {
		case cut.LocalStep:
			g := st.Gate
			if st.Side == cut.Lower {
				seg.lower = append(seg.lower, g)
			} else {
				seg.upper = append(seg.upper, g.Remap(func(q int) int { return q - upOff }))
			}
		case cut.CutStep:
			e.segs = append(e.segs, seg)
			seg = segment{}
			cp := st.Cut
			cc := compiledCut{}
			loQ := append([]int(nil), cp.LowerQubits...)
			upQ := make([]int, len(cp.UpperQubits))
			for i, q := range cp.UpperQubits {
				upQ[i] = q - upOff
			}
			for _, t := range cp.Terms {
				cc.sigma = append(cc.sigma, complex(t.Sigma, 0))
				cc.lower = append(cc.lower, gate.New("cut-term", t.Lower, nil, loQ...))
				cc.upper = append(cc.upper, gate.New("cut-term", t.Upper, nil, upQ...))
			}
			e.cuts = append(e.cuts, cc)
		}
	}
	e.segs = append(e.segs, seg) // trailing segment after the last cut

	if fusionMaxQubits >= 0 {
		if fusionMaxQubits == 0 {
			fusionMaxQubits = fuse.DefaultMaxQubits
		}
		for i := range e.segs {
			e.segs[i].lower = fuse.Fuse(e.segs[i].lower, fusionMaxQubits)
			e.segs[i].upper = fuse.Fuse(e.segs[i].upper, fusionMaxQubits)
		}
	}

	// Compile the segments now, while the gates are still owned by this
	// goroutine: the walker replays these gates once per path, and the
	// compiled form attaches every kernel plan (no per-call index
	// precomputation) and groups low gates into cache-blocked sweeps.
	for i := range e.segs {
		e.segs[i].loSeg = statevec.CompileSegment(e.segs[i].lower, e.nLower)
		e.segs[i].upSeg = statevec.CompileSegment(e.segs[i].upper, e.nUpper)
	}
	for i := range e.cuts {
		statevec.PrepareGates(e.cuts[i].lower)
		statevec.PrepareGates(e.cuts[i].upper)
	}

	e.ranks = make([]int, len(e.cuts))
	for i := range e.cuts {
		e.ranks[i] = len(e.cuts[i].sigma)
	}
	if e.tel != nil {
		e.tel.SetStructure(kernelClassNames(), e.segClassTable(), e.cutClassTable())
	}
}

// numKinds is the number of kernel classes the gate package distinguishes.
const numKinds = int(gate.KindControlled) + 1

// kernelClassNames returns the class names indexed by gate.Kind, so the
// telemetry package needs no gate dependency.
func kernelClassNames() []string {
	names := make([]string, numKinds)
	for k := range names {
		names[k] = gate.Kind(k).String()
	}
	return names
}

// countClasses tallies gate kernel classes into a fresh per-kind vector.
func countClasses(gss ...[]gate.Gate) []int64 {
	counts := make([]int64, numKinds)
	for _, gs := range gss {
		for i := range gs {
			counts[gs[i].Class()]++
		}
	}
	return counts
}

// segClassTable returns, per segment, the kernel-class census of the gates
// one application of that segment executes (both partitions, post-fusion).
// The walker then only counts segment applications; per-class totals are a
// dot product taken at report time, costing the hot path nothing.
func (e *engine) segClassTable() [][]int64 {
	t := make([][]int64, len(e.segs))
	for i := range e.segs {
		t[i] = countClasses(e.segs[i].lower, e.segs[i].upper)
	}
	return t
}

// cutClassTable returns, per cut level and term, the kernel-class census of
// one cut-term application (the lower and upper term gates).
func (e *engine) cutClassTable() [][][]int64 {
	t := make([][][]int64, len(e.cuts))
	for l := range e.cuts {
		t[l] = make([][]int64, len(e.cuts[l].sigma))
		for term := range t[l] {
			t[l][term] = countClasses(
				e.cuts[l].lower[term:term+1], e.cuts[l].upper[term:term+1])
		}
	}
	return t
}

// saturateInt64 clamps a uint64 path count into int64 range.
func saturateInt64(v uint64) int64 {
	if v > 1<<63-1 {
		return 1<<63 - 1
	}
	return int64(v)
}

// finishTelemetry records the run's final totals (nil-safe via Recorder).
func (e *engine) finishTelemetry(rec *telemetry.Recorder, np uint64, log2 float64, simulated, resumed int64, workers int, elapsed time.Duration) {
	rec.FinishRun(telemetry.RunTotals{
		TotalPaths: saturateInt64(np),
		Log2Paths:  log2,
		Simulated:  simulated,
		Resumed:    resumed,
		Workers:    workers,
		Gomaxprocs: runtime.GOMAXPROCS(0),
		Reserved:   e.parReserved,
		Inner:      e.parInner,
		Elapsed:    elapsed,
	})
}

// stopped returns the cancellation cause if ctx is done.
func stopped(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return context.Cause(ctx)
	default:
		return nil
	}
}

// run executes the path tree. The first splitLevels cuts are expanded
// breadth-first into independent prefix tasks distributed over the worker
// pool; each worker simulates one prefix subtree into a private scratch
// accumulator and merges it into the shared global accumulator on
// completion, so the set of merged prefixes is always a consistent,
// checkpointable state. On error the partial checkpoint is returned
// alongside the error.
func (e *engine) run(ctx context.Context, workers int, resume *Checkpoint, plan *cut.Plan) ([]complex128, *Checkpoint, error) {
	// Determine how many leading cut levels to expand so that the task count
	// comfortably exceeds the worker count. A resumed run reuses the
	// checkpoint's split depth so prefix vectors stay comparable.
	splitLevels := 0
	if resume != nil {
		splitLevels = resume.SplitLevels
	} else {
		splitLevels = ChooseSplitLevels(plan, 4*workers)
	}
	prefixes := EnumeratePrefixes(plan, splitLevels)

	ck := &Checkpoint{
		PlanHash:    PlanHash(plan),
		NumQubits:   plan.NumQubits,
		M:           e.m,
		SplitLevels: splitLevels,
		Acc:         make([]complex128, e.m),
	}
	pending := prefixes
	if resume != nil {
		copy(ck.Acc, resume.Acc)
		ck.PathsSimulated = resume.PathsSimulated
		ck.Prefixes = append(ck.Prefixes, resume.Prefixes...)
		done := make(map[string]bool, len(resume.Prefixes))
		for _, p := range resume.Prefixes {
			done[PrefixKey(p)] = true
		}
		pending = pending[:0:0]
		for _, p := range prefixes {
			if !done[PrefixKey(p)] {
				pending = append(pending, p)
			}
		}
	}

	if err := e.runTasks(ctx, workers, pending, ck); err != nil {
		return nil, ck, err
	}
	return ck.Acc, ck, nil
}

// runTasks executes the pending prefix tasks on a worker pool, merging each
// completed subtree into ck under the mutex so ck is always a consistent,
// checkpointable state. It returns the first error encountered (workers that
// drained without running anything report the external cancellation cause).
//
// Each worker owns a private workspace (backend state pools) and a reusable
// walker, and the pool's worker count is reserved against the process-wide
// parallelism budget so gate kernels inside the workers do not oversubscribe
// the cores the pool already occupies.
func (e *engine) runTasks(ctx context.Context, workers int, pending [][]int, ck *Checkpoint) error {
	if workers > len(pending) {
		workers = len(pending)
	}
	if workers == 0 { // nothing left to simulate
		return stopped(ctx)
	}
	releaseBudget := par.Reserve(workers)
	defer releaseBudget()
	e.parReserved, e.parInner = par.Reserved(), par.Inner()

	// The first failing worker cancels runCtx so its peers stop at the next
	// segment boundary instead of burning through their whole subtree.
	runCtx, cancelRun := context.WithCancelCause(ctx)
	defer cancelRun(nil)

	var (
		mu       sync.Mutex // guards ck and firstErr
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancelRun(err)
	}

	taskCh := make(chan []int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			ws, err := e.newWorkspace()
			if err != nil {
				fail(err)
				return
			}
			walk := &walker{e: e, ws: ws, wc: e.tel.Worker(len(e.segs), e.ranks)}
			// The worker accumulates its subtrees into private SoA scratch;
			// the interleaved checkpoint accumulator is only touched at the
			// merge below (the layout's edge-conversion boundary).
			scratch := statevec.MakeVector(e.m)
			// Prefix spans coalesce adjacent small tasks: the lane keeps one
			// span open and folds tasks into it until the span has covered
			// spanLeafBudget leaves, so tiny tasks (a handful of leaves
			// each) don't pay a Start/End per task. Tasks at or above the
			// budget still get a span each — the granularity that matters
			// when reading a timeline. The leaf loop inside runPrefix
			// records nothing, keeping the zero-allocations-per-leaf guard
			// intact.
			var (
				sp       trace.Span
				spTasks  int64
				spLeaves int64
			)
			closeSpan := func() {
				if spTasks == 0 {
					return
				}
				sp.SetInt("leaves", spLeaves)
				sp.SetInt("tasks", spTasks)
				sp.End()
				spTasks, spLeaves = 0, 0
			}
			for prefix := range taskCh {
				if stopped(runCtx) != nil {
					continue // drain
				}
				scratch.Clear()
				if spTasks == 0 {
					sp = e.trc.Start(e.tsc, "prefix")
					sp.SetLane(lane + 1)
				}
				nLeaves, err := walk.runPrefixRecover(runCtx, prefix, scratch)
				spTasks++
				spLeaves += nLeaves
				if err != nil {
					sp.SetStr("err", "failed")
					closeSpan()
					fail(err)
					continue
				}
				if spLeaves >= spanLeafBudget {
					closeSpan()
				}
				mu.Lock()
				scratch.AddToComplex(ck.Acc)
				ck.Prefixes = append(ck.Prefixes, prefix)
				ck.PathsSimulated += nLeaves
				if e.onCkpt != nil {
					e.onCkpt(ck)
				}
				mu.Unlock()
			}
			closeSpan()
			if walk.wc != nil {
				if ps, ok := ws.(interface{ poolStats() (int, int) }); ok {
					walk.wc.AddPool(ps.poolStats())
				}
				e.tel.Flush(walk.wc)
			}
		}(w)
	}
	for _, p := range pending {
		taskCh <- p
	}
	close(taskCh)
	wg.Wait()

	if firstErr == nil {
		firstErr = stopped(ctx)
	}
	return firstErr
}
