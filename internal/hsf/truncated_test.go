package hsf

import (
	"math/rand"
	"testing"

	"hsfsim/internal/circuit"
	"hsfsim/internal/cut"
	"hsfsim/internal/gate"
	"hsfsim/internal/statevec"
)

// TestTruncatedCutApproximation exercises the MaxCutRank extension end to
// end: dropping the weakest Schmidt terms yields an approximate state whose
// fidelity with the exact result degrades gracefully with the kept weight.
func TestTruncatedCutApproximation(t *testing.T) {
	rng := rand.New(rand.NewSource(300))
	c := circuit.New(6)
	for q := 0; q < 6; q++ {
		c.Append(gate.H(q))
	}
	// Weakly entangling crossing gates: small RZZ angles put most Schmidt
	// weight on the first term.
	for u := 3; u < 6; u++ {
		c.Append(gate.RZZ(0.25+0.05*rng.Float64(), 2, u))
	}
	p := cut.Partition{CutPos: 2}

	exactPlan, err := cut.BuildPlan(c, cut.Options{Partition: p, Strategy: cut.StrategyCascade})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Run(exactPlan, Options{})
	if err != nil {
		t.Fatal(err)
	}

	truncPlan, err := cut.BuildPlan(c, cut.Options{Partition: p, Strategy: cut.StrategyCascade, MaxCutRank: 1})
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := truncPlan.NumPaths(); n != 1 {
		t.Fatalf("rank-1 truncation should give 1 path, got %d", n)
	}
	approx, err := Run(truncPlan, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// The truncated state is sub-normalized but strongly aligned with the
	// exact state for weak entanglers.
	ns := statevec.State(approx.Amplitudes).Norm()
	if ns >= 1.0001 {
		t.Fatalf("truncated norm %g exceeds 1", ns)
	}
	if ns < 0.5 {
		t.Fatalf("truncated norm %g collapsed", ns)
	}
	// Normalize and compare fidelity.
	normed := statevec.State(approx.Amplitudes).Clone()
	inv := complex(1/ns, 0)
	for i := range normed {
		normed[i] *= inv
	}
	f := statevec.Fidelity(normed, exact.Amplitudes)
	if f < 0.9 {
		t.Fatalf("truncated fidelity %g too low for weak entanglers", f)
	}
}
