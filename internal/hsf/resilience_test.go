package hsf

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"hsfsim/internal/circuit"
	"hsfsim/internal/cut"
	"hsfsim/internal/gate"
	"hsfsim/internal/statevec"
)

// manyCutCircuit builds a circuit whose standard plan has many separate
// rank-2 cuts (≥ 2^cuts paths), so runs take long enough to interrupt at a
// deterministic path count.
func manyCutCircuit(n, cuts int) *circuit.Circuit {
	rng := rand.New(rand.NewSource(99))
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.Append(gate.H(q))
	}
	for i := 0; i < cuts; i++ {
		a := rng.Intn(n / 2)
		b := n/2 + rng.Intn(n-n/2)
		c.Append(gate.RZZ(rng.Float64(), a, b))
		c.Append(gate.RX(rng.Float64(), a)) // break cascades apart
	}
	return c
}

func buildPlan(t *testing.T, c *circuit.Circuit, cutPos int, strategy cut.Strategy) *cut.Plan {
	t.Helper()
	plan, err := cut.BuildPlan(c, cut.Options{Partition: cut.Partition{CutPos: cutPos}, Strategy: strategy})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestRunContextPreCanceled(t *testing.T) {
	plan := buildPlan(t, manyCutCircuit(8, 6), 3, cut.StrategyNone)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, plan, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := RunDDContext(ctx, plan, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("dd: err = %v, want context.Canceled", err)
	}
}

func TestRunContextMidRunCancel(t *testing.T) {
	plan := buildPlan(t, manyCutCircuit(8, 10), 3, cut.StrategyNone)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The leaf hook cancels deterministically partway through the tree.
	opts := Options{Workers: 2, testHookLeaf: func(n int64) {
		if n == 8 {
			cancel()
		}
	}}
	res, err := RunContext(ctx, plan, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v (res %v), want context.Canceled", err, res)
	}
}

func TestRunContextParentDeadlineDistinctFromTimeout(t *testing.T) {
	plan := buildPlan(t, manyCutCircuit(10, 24), 4, cut.StrategyNone)
	// Parent deadline, no Options.Timeout: must surface DeadlineExceeded.
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	if _, err := RunContext(ctx, plan, Options{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// Options.Timeout with a healthy parent: must surface ErrTimeout.
	if _, err := RunContext(context.Background(), plan, Options{Timeout: time.Microsecond}); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if _, err := RunDDContext(context.Background(), plan, Options{Timeout: time.Microsecond}); !errors.Is(err, ErrTimeout) {
		t.Fatalf("dd: err = %v, want ErrTimeout", err)
	}
}

func TestWorkerPanicBecomesError(t *testing.T) {
	plan := buildPlan(t, manyCutCircuit(8, 8), 3, cut.StrategyNone)
	opts := Options{Workers: 2, testHookLeaf: func(n int64) {
		if n == 5 {
			panic("injected worker panic")
		}
	}}
	_, err := Run(plan, opts)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Value != "injected worker panic" || len(pe.Stack) == 0 {
		t.Fatalf("panic error missing payload: %+v", pe)
	}
}

func TestAdmissionControl(t *testing.T) {
	plan := buildPlan(t, manyCutCircuit(8, 8), 3, cut.StrategyNone)

	_, err := Run(plan, Options{MemoryBudget: 1})
	var be *BudgetError
	if !errors.As(err, &be) || !errors.Is(err, ErrBudget) {
		t.Fatalf("memory: err = %v, want *BudgetError wrapping ErrBudget", err)
	}
	if be.Estimate.TotalBytes <= 0 {
		t.Fatalf("estimate missing: %+v", be.Estimate)
	}

	if _, err := Run(plan, Options{MaxPaths: 4}); !errors.Is(err, ErrBudget) {
		t.Fatalf("paths: err = %v, want ErrBudget", err)
	}
	if _, err := RunDD(plan, Options{MaxPaths: 4}); !errors.Is(err, ErrBudget) {
		t.Fatalf("dd paths: err = %v, want ErrBudget", err)
	}

	// A negative budget disables the memory check.
	if _, err := Run(plan, Options{MemoryBudget: -1}); err != nil {
		t.Fatalf("unlimited: %v", err)
	}
}

func TestCostModelShape(t *testing.T) {
	plan := buildPlan(t, manyCutCircuit(8, 6), 3, cut.StrategyNone)
	est := Cost(plan, Options{Workers: 4, MaxAmplitudes: 64})
	if est.Workers != 4 {
		t.Fatalf("workers = %d", est.Workers)
	}
	if est.Paths != 1<<6 || !est.PathsExact {
		t.Fatalf("paths = %d exact=%v, want 64 exact", est.Paths, est.PathsExact)
	}
	// pair = 16·(2^4 + 2^4) = 512 B; chain = pair·(cuts+1); scratch = 16·64.
	wantPair := int64(512)
	if est.StatePairBytes != wantPair {
		t.Fatalf("pair bytes = %d, want %d", est.StatePairBytes, wantPair)
	}
	wantPerWorker := wantPair*int64(len(plan.Cuts)+1) + 16*64
	if est.PerWorkerBytes != wantPerWorker {
		t.Fatalf("per-worker bytes = %d, want %d", est.PerWorkerBytes, wantPerWorker)
	}
	if est.TotalBytes != 4*wantPerWorker+16*64 {
		t.Fatalf("total bytes = %d", est.TotalBytes)
	}
}

// TestCheckpointResumeMatchesUninterrupted is the core recovery property:
// a run killed by the deterministic fault hook at ~50% of its paths must,
// after resuming from its checkpoint, reproduce the uninterrupted
// amplitudes to 1e-12.
func TestCheckpointResumeMatchesUninterrupted(t *testing.T) {
	c := manyCutCircuit(8, 8) // 2^8 = 256 paths
	plan := buildPlan(t, c, 3, cut.StrategyNone)
	want, err := Run(plan, Options{})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	_, err = Run(plan, Options{
		Workers:          2,
		CheckpointWriter: &buf,
		FailAfterPaths:   128, // kill at ~50% of 256 leaves
	})
	if !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("err = %v, want ErrInjectedFault", err)
	}
	if buf.Len() == 0 {
		t.Fatal("no checkpoint written")
	}

	ck, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(ck.Prefixes) == 0 || ck.PathsSimulated == 0 {
		t.Fatalf("checkpoint empty: %d prefixes, %d paths", len(ck.Prefixes), ck.PathsSimulated)
	}

	res, err := Run(plan, Options{Workers: 3, Resume: ck})
	if err != nil {
		t.Fatal(err)
	}
	if d := statevec.MaxAbsDiff(res.Amplitudes, want.Amplitudes); d > 1e-12 {
		t.Fatalf("resumed amplitudes diverge: max diff %g", d)
	}
	if res.PathsSimulated != want.PathsSimulated {
		t.Fatalf("paths = %d, want %d", res.PathsSimulated, want.PathsSimulated)
	}
}

// TestCheckpointResumeAfterCancel covers the cancel-then-resume flow with a
// joint plan (blocks, rank > 2 cuts possible).
func TestCheckpointResumeAfterCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := randomQAOAish(rng, 8, 20)
	plan := buildPlan(t, c, 3, cut.StrategyCascade)
	want, err := Run(plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	np, _ := plan.NumPaths()
	if np < 4 {
		t.Fatalf("plan too small to interrupt: %d paths", np)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var buf bytes.Buffer
	_, err = RunContext(ctx, plan, Options{
		Workers:          2,
		CheckpointWriter: &buf,
		testHookLeaf: func(n int64) {
			if n == int64(np/2) {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	ck, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(plan, Options{Resume: ck})
	if err != nil {
		t.Fatal(err)
	}
	if d := statevec.MaxAbsDiff(res.Amplitudes, want.Amplitudes); d > 1e-12 {
		t.Fatalf("resumed amplitudes diverge: max diff %g", d)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	ck := &Checkpoint{
		PlanHash:       0xdeadbeefcafef00d,
		NumQubits:      8,
		M:              4,
		SplitLevels:    2,
		Prefixes:       [][]int{{0, 1}, {1, 0}, {1, 1}},
		PathsSimulated: 42,
		Acc:            []complex128{1, 2i, complex(3, 4), -1},
	}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.PlanHash != ck.PlanHash || got.NumQubits != ck.NumQubits || got.M != ck.M ||
		got.SplitLevels != ck.SplitLevels || got.PathsSimulated != ck.PathsSimulated {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Prefixes) != 3 || got.Prefixes[1][0] != 1 || got.Prefixes[1][1] != 0 {
		t.Fatalf("prefixes mismatch: %v", got.Prefixes)
	}
	for i := range ck.Acc {
		if got.Acc[i] != ck.Acc[i] {
			t.Fatalf("acc[%d] = %v, want %v", i, got.Acc[i], ck.Acc[i])
		}
	}
}

func TestCheckpointMismatchRejected(t *testing.T) {
	planA := buildPlan(t, manyCutCircuit(8, 6), 3, cut.StrategyNone)
	planB := buildPlan(t, manyCutCircuit(8, 7), 3, cut.StrategyNone)

	var buf bytes.Buffer
	_, err := Run(planA, Options{CheckpointWriter: &buf, FailAfterPaths: 16, Workers: 2})
	if !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("err = %v", err)
	}
	ck, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(planB, Options{Resume: ck}); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("err = %v, want ErrCheckpointMismatch", err)
	}
	// Mismatched MaxAmplitudes is rejected too.
	if _, err := Run(planA, Options{Resume: ck, MaxAmplitudes: 8}); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("err = %v, want ErrCheckpointMismatch", err)
	}
}

func TestReadCheckpointGarbage(t *testing.T) {
	if _, err := ReadCheckpoint(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadCheckpoint(bytes.NewReader(checkpointMagic[:])); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestPlanHashStability(t *testing.T) {
	c := manyCutCircuit(8, 6)
	a := PlanHash(buildPlan(t, c, 3, cut.StrategyNone))
	b := PlanHash(buildPlan(t, c, 3, cut.StrategyNone))
	if a != b {
		t.Fatalf("hash not deterministic: %x vs %x", a, b)
	}
	other := PlanHash(buildPlan(t, c, 3, cut.StrategyCascade))
	if a == other {
		t.Fatal("different strategies hash equal")
	}
}
