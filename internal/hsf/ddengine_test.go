package hsf

import (
	"math/rand"
	"testing"
	"time"

	"hsfsim/internal/circuit"
	"hsfsim/internal/cut"
	"hsfsim/internal/gate"
	"hsfsim/internal/statevec"
)

func runDDHSF(t *testing.T, c *circuit.Circuit, cutPos int, strategy cut.Strategy, opts Options) *Result {
	t.Helper()
	plan, err := cut.BuildPlan(c, cut.Options{Partition: cut.Partition{CutPos: cutPos}, Strategy: strategy})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunDD(plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDDEngineMatchesSchrodinger(t *testing.T) {
	rng := rand.New(rand.NewSource(200))
	for trial := 0; trial < 5; trial++ {
		n := 4 + rng.Intn(3)
		c := randomQAOAish(rng, n, 8)
		want := schrodinger(c)
		for _, strategy := range []cut.Strategy{cut.StrategyNone, cut.StrategyCascade} {
			res := runDDHSF(t, c, n/2-1, strategy, Options{})
			if d := statevec.MaxAbsDiff(res.Amplitudes, want); d > 1e-8 {
				t.Fatalf("trial %d strategy %v: DD engine diverges by %g", trial, strategy, d)
			}
		}
	}
}

func TestDDEngineMatchesArrayEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	c := randomMixed(rng, 6, 10)
	plan, err := cut.BuildPlan(c, cut.Options{Partition: cut.Partition{CutPos: 2}, Strategy: cut.StrategyWindow})
	if err != nil {
		t.Fatal(err)
	}
	arr, err := Run(plan, Options{MaxAmplitudes: 32})
	if err != nil {
		t.Fatal(err)
	}
	ddRes, err := RunDD(plan, Options{MaxAmplitudes: 32})
	if err != nil {
		t.Fatal(err)
	}
	if arr.PathsSimulated != ddRes.PathsSimulated {
		t.Fatalf("path counts differ: %d vs %d", arr.PathsSimulated, ddRes.PathsSimulated)
	}
	if d := statevec.MaxAbsDiff(arr.Amplitudes, ddRes.Amplitudes); d > 1e-8 {
		t.Fatalf("engines disagree by %g", d)
	}
}

func TestDDEngineGHZ(t *testing.T) {
	n := 8
	c := circuit.New(n)
	c.Append(gate.H(0))
	for q := 1; q < n; q++ {
		c.Append(gate.CNOT(q-1, q))
	}
	want := schrodinger(c)
	res := runDDHSF(t, c, 3, cut.StrategyNone, Options{})
	if res.NumPaths != 2 {
		t.Fatalf("paths = %d, want 2", res.NumPaths)
	}
	if d := statevec.MaxAbsDiff(res.Amplitudes, want); d > 1e-9 {
		t.Fatalf("GHZ diverges by %g", d)
	}
}

func TestDDEngineTimeout(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	c := circuit.New(10)
	for i := 0; i < 20; i++ {
		a := rng.Intn(5)
		b := 5 + rng.Intn(5)
		c.Append(gate.RZZ(rng.Float64(), a, b), gate.RX(0.3, a))
	}
	plan, err := cut.BuildPlan(c, cut.Options{Partition: cut.Partition{CutPos: 4}, Strategy: cut.StrategyNone})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunDD(plan, Options{Timeout: time.Microsecond}); err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}
