package hsf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hsfsim/internal/circuit"
	"hsfsim/internal/cut"
	"hsfsim/internal/gate"
	"hsfsim/internal/grcs"
	"hsfsim/internal/statevec"
)

func TestHSFCrossingThreeQubitGate(t *testing.T) {
	// A Toffoli with controls below and target above the cut: the general
	// block decomposition must handle k>2 crossing gates.
	c := circuit.New(5)
	c.Append(gate.H(0), gate.H(1), gate.CCX(0, 1, 3), gate.H(4), gate.CCZ(1, 3, 4))
	want := schrodinger(c)
	for _, strategy := range []cut.Strategy{cut.StrategyNone, cut.StrategyWindow} {
		res := runHSF(t, c, 1, strategy, Options{})
		if d := statevec.MaxAbsDiff(res.Amplitudes, want); d > 1e-9 {
			t.Fatalf("strategy %v: max diff %g", strategy, d)
		}
	}
}

func TestHSFWindowBlocksWithLocalGates(t *testing.T) {
	// Supremacy-style grid with mid-row cut: window blocks absorb local
	// single-qubit gates; the result must still match Schrödinger exactly.
	opts := grcs.Options{Rows: 3, Cols: 3, Depth: 6, Entangler: grcs.ISwap, Seed: 21}
	c, err := grcs.Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	want := schrodinger(c)
	plan, err := cut.BuildPlan(c, cut.Options{
		Partition: cut.Partition{CutPos: 4}, // mid-row cut
		Strategy:  cut.StrategyWindow, MaxBlockQubits: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := statevec.MaxAbsDiff(res.Amplitudes, want); d > 1e-8 {
		t.Fatalf("window blocks with locals diverge by %g (blocks=%d)", d, plan.NumBlocks())
	}
}

func TestHSFCPhaseCascadeAnalytic(t *testing.T) {
	c := circuit.New(5)
	for q := 0; q < 5; q++ {
		c.Append(gate.H(q))
	}
	c.Append(gate.CPhase(0.3, 1, 2), gate.CPhase(0.9, 1, 3), gate.CPhase(-0.4, 1, 4))
	want := schrodinger(c)
	plan, err := cut.BuildPlan(c, cut.Options{
		Partition: cut.Partition{CutPos: 1}, Strategy: cut.StrategyCascade, UseAnalytic: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Cuts) != 1 || !plan.Cuts[0].Analytic || plan.Cuts[0].Rank() != 2 {
		t.Fatalf("cp cascade not analytically decomposed: cuts=%d", len(plan.Cuts))
	}
	res, err := Run(plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := statevec.MaxAbsDiff(res.Amplitudes, want); d > 1e-9 {
		t.Fatalf("analytic cp cascade diverges by %g", d)
	}
}

// TestHSFPropertyAgainstSchrodinger is the central property test: for random
// seeds, circuits, cut positions, and strategies, HSF must reproduce the
// Schrödinger amplitudes.
func TestHSFPropertyAgainstSchrodinger(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(4)
		c := circuit.New(n)
		gates := 6 + rng.Intn(10)
		for i := 0; i < gates; i++ {
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			switch rng.Intn(7) {
			case 0:
				c.Append(gate.H(a))
			case 1:
				c.Append(gate.T(a))
			case 2:
				c.Append(gate.RX(rng.Float64()*3, a))
			case 3:
				c.Append(gate.RZZ(rng.Float64()*2, a, b))
			case 4:
				c.Append(gate.CNOT(a, b))
			case 5:
				c.Append(gate.ISWAP(a, b))
			default:
				c.Append(gate.FSim(rng.Float64(), rng.Float64(), a, b))
			}
		}
		want := schrodinger(c)
		cutPos := rng.Intn(n - 1)
		strategy := []cut.Strategy{cut.StrategyNone, cut.StrategyCascade, cut.StrategyWindow}[rng.Intn(3)]
		plan, err := cut.BuildPlan(c, cut.Options{Partition: cut.Partition{CutPos: cutPos}, Strategy: strategy})
		if err != nil {
			return false
		}
		res, err := Run(plan, Options{Workers: 1 + rng.Intn(4)})
		if err != nil {
			return false
		}
		return statevec.MaxAbsDiff(res.Amplitudes, want) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestHSFUnbalancedCuts(t *testing.T) {
	// Extreme cut positions (1 vs n-1 qubits per side) must still work.
	rng := rand.New(rand.NewSource(77))
	c := randomQAOAish(rng, 6, 9)
	want := schrodinger(c)
	for _, cutPos := range []int{0, 4} {
		res := runHSF(t, c, cutPos, cut.StrategyCascade, Options{})
		if d := statevec.MaxAbsDiff(res.Amplitudes, want); d > 1e-8 {
			t.Fatalf("cut %d: max diff %g", cutPos, d)
		}
	}
}

func TestHSFEmptyCircuit(t *testing.T) {
	c := circuit.New(4)
	res := runHSF(t, c, 1, cut.StrategyNone, Options{})
	if res.NumPaths != 1 {
		t.Fatalf("paths = %d", res.NumPaths)
	}
	if res.Amplitudes[0] != 1 {
		t.Fatalf("empty circuit state wrong: %v", res.Amplitudes[:4])
	}
}

func TestHSFSingleAmplitude(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	c := randomQAOAish(rng, 6, 8)
	full := runHSF(t, c, 2, cut.StrategyCascade, Options{})
	one := runHSF(t, c, 2, cut.StrategyCascade, Options{MaxAmplitudes: 1})
	if len(one.Amplitudes) != 1 {
		t.Fatalf("amplitudes = %d", len(one.Amplitudes))
	}
	if d := one.Amplitudes[0] - full.Amplitudes[0]; real(d)*real(d)+imag(d)*imag(d) > 1e-18 {
		t.Fatal("single amplitude mismatch")
	}
}
