package hsf

import (
	"bytes"
	"context"
	"encoding/binary"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"hsfsim/internal/cut"
)

// encodeInterleavedCheckpoint serializes ck with the pre-SoA on-disk layout,
// written out field by field here rather than through WriteCheckpoint: the
// accumulator is m interleaved (re, im) float64 pairs, little-endian. The
// engine now keeps amplitudes in split real/imag planes in memory, but the
// wire format is frozen — this independent encoder is the byte-level pin.
func encodeInterleavedCheckpoint(ck *Checkpoint) []byte {
	var buf bytes.Buffer
	buf.WriteString("HSFCKP1\n")
	le := binary.LittleEndian
	b := make([]byte, 8)
	wu64 := func(v uint64) { le.PutUint64(b, v); buf.Write(b[:8]) }
	wu32 := func(v uint32) { le.PutUint32(b, v); buf.Write(b[:4]) }
	wu64(ck.PlanHash)
	wu32(uint32(ck.NumQubits))
	wu64(uint64(ck.M))
	wu32(uint32(ck.SplitLevels))
	wu64(uint64(len(ck.Prefixes)))
	for _, p := range ck.Prefixes {
		for _, t := range p {
			wu32(uint32(t))
		}
	}
	wu64(uint64(ck.PathsSimulated))
	for _, a := range ck.Acc {
		wu64(math.Float64bits(real(a)))
		wu64(math.Float64bits(imag(a)))
	}
	return buf.Bytes()
}

// TestCheckpointCrossLayoutResume is the cross-layout regression for the SoA
// refactor: a checkpoint serialized in the interleaved complex128 layout (as
// any pre-refactor build wrote it) must load on this build and resume to the
// uninterrupted amplitudes at 1e-12. The checkpoint bytes come from the
// independent encoder above, not from WriteCheckpoint, so a format drift in
// either the reader or the writer fails the test.
func TestCheckpointCrossLayoutResume(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	c := randomQAOAish(rng, 9, 12)
	plan, err := cut.BuildPlan(c, cut.Options{Partition: cut.Partition{CutPos: 4}, Strategy: cut.StrategyCascade})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(plan, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Simulate an interrupted run: execute roughly half the prefix space and
	// snapshot it through the legacy byte layout.
	splitLevels := ChooseSplitLevels(plan, 8)
	prefixes := EnumeratePrefixes(plan, splitLevels)
	if len(prefixes) < 4 {
		t.Fatalf("want ≥ 4 prefix tasks, got %d", len(prefixes))
	}
	part, err := RunPrefixesContext(context.Background(), plan, Options{}, splitLevels, prefixes[:len(prefixes)/2])
	if err != nil {
		t.Fatal(err)
	}
	legacy := encodeInterleavedCheckpoint(part)

	// The current writer must still produce those exact bytes.
	var cur bytes.Buffer
	if err := WriteCheckpoint(&cur, part); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cur.Bytes(), legacy) {
		t.Fatalf("WriteCheckpoint drifted from the frozen interleaved layout (%d vs %d bytes)",
			cur.Len(), len(legacy))
	}

	// And the legacy bytes must resume to the uninterrupted result.
	ck, err := ReadCheckpoint(bytes.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(plan, Options{Resume: ck})
	if err != nil {
		t.Fatal(err)
	}
	if res.PathsSimulated != full.PathsSimulated {
		t.Fatalf("resumed run simulated %d paths, full run %d", res.PathsSimulated, full.PathsSimulated)
	}
	for i := range full.Amplitudes {
		if d := cmplx.Abs(res.Amplitudes[i] - full.Amplitudes[i]); d > 1e-12 {
			t.Fatalf("amplitude %d differs by %g after cross-layout resume", i, d)
		}
	}
}
