package hsf

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"hsfsim/internal/circuit"
	"hsfsim/internal/cut"
	"hsfsim/internal/gate"
	"hsfsim/internal/statevec"
)

// schrodinger runs the plain statevector simulation for reference.
func schrodinger(c *circuit.Circuit) statevec.State {
	s := statevec.NewState(c.NumQubits)
	s.ApplyAll(c.Gates)
	return s
}

// runHSF builds a plan and executes it with the given strategy.
func runHSF(t *testing.T, c *circuit.Circuit, cutPos int, strategy cut.Strategy, opts Options) *Result {
	t.Helper()
	plan, err := cut.BuildPlan(c, cut.Options{Partition: cut.Partition{CutPos: cutPos}, Strategy: strategy})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// randomQAOAish builds a random circuit with RZZ entanglers and RX mixers.
func randomQAOAish(rng *rand.Rand, n, edges int) *circuit.Circuit {
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.Append(gate.H(q))
	}
	for i := 0; i < edges; i++ {
		a := rng.Intn(n)
		b := (a + 1 + rng.Intn(n-1)) % n
		c.Append(gate.RZZ(rng.Float64()*2, a, b))
	}
	for q := 0; q < n; q++ {
		c.Append(gate.RX(rng.Float64(), q))
	}
	return c
}

// randomMixed builds circuits that include high-rank crossing gates.
func randomMixed(rng *rand.Rand, n, gates int) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < gates; i++ {
		a := rng.Intn(n)
		b := (a + 1 + rng.Intn(n-1)) % n
		switch rng.Intn(5) {
		case 0:
			c.Append(gate.CNOT(a, b))
		case 1:
			c.Append(gate.SWAP(a, b))
		case 2:
			c.Append(gate.RZZ(rng.Float64(), a, b))
		case 3:
			c.Append(gate.H(a))
		default:
			c.Append(gate.ISWAP(a, b))
		}
	}
	return c
}

func TestHSFMatchesSchrodingerGHZ(t *testing.T) {
	n := 6
	c := circuit.New(n)
	c.Append(gate.H(0))
	for q := 1; q < n; q++ {
		c.Append(gate.CNOT(q-1, q))
	}
	want := schrodinger(c)
	for _, strategy := range []cut.Strategy{cut.StrategyNone, cut.StrategyCascade, cut.StrategyWindow} {
		res := runHSF(t, c, 2, strategy, Options{})
		if d := statevec.MaxAbsDiff(res.Amplitudes, want); d > 1e-9 {
			t.Errorf("strategy %v: max diff %g", strategy, d)
		}
	}
}

func TestHSFMatchesSchrodingerRandomQAOA(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for trial := 0; trial < 8; trial++ {
		n := 4 + rng.Intn(4)
		c := randomQAOAish(rng, n, 6+rng.Intn(8))
		want := schrodinger(c)
		cutPos := n/2 - 1
		for _, strategy := range []cut.Strategy{cut.StrategyNone, cut.StrategyCascade} {
			res := runHSF(t, c, cutPos, strategy, Options{})
			if d := statevec.MaxAbsDiff(res.Amplitudes, want); d > 1e-8 {
				t.Fatalf("trial %d strategy %v: max diff %g (paths %d)", trial, strategy, d, res.NumPaths)
			}
		}
	}
}

func TestHSFMatchesSchrodingerMixedGates(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 6; trial++ {
		n := 4 + rng.Intn(3)
		c := randomMixed(rng, n, 8)
		want := schrodinger(c)
		cutPos := n/2 - 1
		for _, strategy := range []cut.Strategy{cut.StrategyNone, cut.StrategyWindow} {
			res := runHSF(t, c, cutPos, strategy, Options{})
			if d := statevec.MaxAbsDiff(res.Amplitudes, want); d > 1e-8 {
				t.Fatalf("trial %d strategy %v: max diff %g", trial, strategy, d)
			}
		}
	}
}

func TestHSFAnalyticCascadeMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	c := randomQAOAish(rng, 6, 9)
	want := schrodinger(c)
	plan, err := cut.BuildPlan(c, cut.Options{
		Partition: cut.Partition{CutPos: 2}, Strategy: cut.StrategyCascade, UseAnalytic: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := statevec.MaxAbsDiff(res.Amplitudes, want); d > 1e-8 {
		t.Fatalf("analytic cascade: max diff %g", d)
	}
}

func TestHSFPartialAmplitudes(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	c := randomQAOAish(rng, 6, 8)
	full := runHSF(t, c, 2, cut.StrategyCascade, Options{})
	m := 10
	part := runHSF(t, c, 2, cut.StrategyCascade, Options{MaxAmplitudes: m})
	if len(part.Amplitudes) != m {
		t.Fatalf("got %d amplitudes, want %d", len(part.Amplitudes), m)
	}
	for i := 0; i < m; i++ {
		if d := part.Amplitudes[i] - full.Amplitudes[i]; real(d)*real(d)+imag(d)*imag(d) > 1e-18 {
			t.Fatalf("partial amplitude %d differs", i)
		}
	}
}

func TestHSFPathCountsSimulated(t *testing.T) {
	// Two separate rank-2 cuts: exactly 4 paths simulated.
	c := circuit.New(4)
	c.Append(gate.H(0), gate.RZZ(0.4, 1, 2), gate.H(3), gate.RZZ(0.8, 0, 3))
	res := runHSF(t, c, 1, cut.StrategyNone, Options{})
	if res.NumPaths != 4 || res.PathsSimulated != 4 {
		t.Fatalf("paths = %d, simulated = %d, want 4/4", res.NumPaths, res.PathsSimulated)
	}
	if math.Abs(res.Log2Paths-2) > 1e-9 {
		t.Fatalf("log2 paths = %g", res.Log2Paths)
	}
}

func TestHSFNoCrossingGates(t *testing.T) {
	c := circuit.New(4)
	c.Append(gate.H(0), gate.CNOT(0, 1), gate.H(2), gate.CNOT(2, 3))
	want := schrodinger(c)
	res := runHSF(t, c, 1, cut.StrategyNone, Options{})
	if res.NumPaths != 1 {
		t.Fatalf("paths = %d, want 1", res.NumPaths)
	}
	if d := statevec.MaxAbsDiff(res.Amplitudes, want); d > 1e-9 {
		t.Fatalf("max diff %g", d)
	}
}

func TestHSFWorkerCountsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	c := randomQAOAish(rng, 7, 12)
	r1 := runHSF(t, c, 3, cut.StrategyCascade, Options{Workers: 1})
	r8 := runHSF(t, c, 3, cut.StrategyCascade, Options{Workers: 8})
	if d := statevec.MaxAbsDiff(r1.Amplitudes, r8.Amplitudes); d > 1e-9 {
		t.Fatalf("worker counts disagree: %g", d)
	}
}

func TestHSFFusionOnOffAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	c := randomMixed(rng, 6, 14)
	on := runHSF(t, c, 2, cut.StrategyWindow, Options{FusionMaxQubits: 3})
	off := runHSF(t, c, 2, cut.StrategyWindow, Options{FusionMaxQubits: -1})
	if d := statevec.MaxAbsDiff(on.Amplitudes, off.Amplitudes); d > 1e-9 {
		t.Fatalf("fusion changed amplitudes: %g", d)
	}
}

func TestHSFTimeout(t *testing.T) {
	// A circuit with many separate cuts and an immediate timeout.
	rng := rand.New(rand.NewSource(56))
	c := circuit.New(10)
	for i := 0; i < 24; i++ {
		a := rng.Intn(5)
		b := 5 + rng.Intn(5)
		c.Append(gate.RZZ(rng.Float64(), a, b))
		c.Append(gate.RX(rng.Float64(), a)) // break cascades apart
	}
	plan, err := cut.BuildPlan(c, cut.Options{Partition: cut.Partition{CutPos: 4}, Strategy: cut.StrategyNone})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(plan, Options{Timeout: time.Microsecond})
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestHSFNormalization(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	c := randomQAOAish(rng, 6, 10)
	res := runHSF(t, c, 2, cut.StrategyCascade, Options{})
	norm := statevec.State(res.Amplitudes).Norm()
	if math.Abs(norm-1) > 1e-9 {
		t.Fatalf("HSF state norm = %g, want 1", norm)
	}
}

func BenchmarkHSFJointQAOA12(b *testing.B) {
	rng := rand.New(rand.NewSource(60))
	c := randomQAOAish(rng, 12, 18)
	plan, err := cut.BuildPlan(c, cut.Options{Partition: cut.Partition{CutPos: 5}, Strategy: cut.StrategyCascade})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(plan, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHSFStandardQAOA12(b *testing.B) {
	rng := rand.New(rand.NewSource(60))
	c := randomQAOAish(rng, 12, 18)
	plan, err := cut.BuildPlan(c, cut.Options{Partition: cut.Partition{CutPos: 5}, Strategy: cut.StrategyNone})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(plan, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
