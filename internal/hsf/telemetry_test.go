package hsf

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"hsfsim/internal/cut"
	"hsfsim/internal/statevec"
	"hsfsim/internal/telemetry"
)

// telemetryAllocHarness mirrors allocHarness with telemetry enabled: the
// walker carries a live WorkerCounters block feeding a shared Recorder.
func telemetryAllocHarness(tb testing.TB) (*walker, statevec.Vector, *telemetry.Recorder) {
	tb.Helper()
	c := manyCutCircuit(8, 6)
	plan, err := cut.BuildPlan(c, cut.Options{Partition: cut.Partition{CutPos: 3}})
	if err != nil {
		tb.Fatal(err)
	}
	rec := telemetry.New()
	e := &engine{
		backend: BackendDense,
		nLower:  plan.Partition.NumLower(),
		nUpper:  plan.Partition.NumUpper(plan.NumQubits),
		m:       resolveAmplitudes(plan, 0),
		tel:     rec,
	}
	e.compile(plan, 0)
	ws, err := e.newWorkspace()
	if err != nil {
		tb.Fatal(err)
	}
	walk := &walker{e: e, ws: ws, wc: rec.Worker(len(e.segs), e.ranks)}
	scratch := statevec.MakeVector(e.m)
	for i := 0; i < 2; i++ { // warm the pools
		scratch.Clear()
		if _, err := walk.runPrefix(context.Background(), nil, scratch); err != nil {
			tb.Fatal(err)
		}
	}
	return walk, scratch, rec
}

// TestZeroAllocsPerLeafWithTelemetry is the telemetry half of the allocation
// guard: the counter block and sampled histogram observations must not cost
// a single heap allocation on the steady-state walk.
func TestZeroAllocsPerLeafWithTelemetry(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	walk, scratch, rec := telemetryAllocHarness(t)
	ctx := context.Background()
	var leaves int64
	allocs := testing.AllocsPerRun(10, func() {
		scratch.Clear()
		n, err := walk.runPrefix(ctx, nil, scratch)
		if err != nil {
			t.Fatal(err)
		}
		leaves += n
	})
	if allocs != 0 {
		t.Fatalf("telemetry-enabled walk allocated %.1f times per replay (%d leaves), want 0", allocs, leaves)
	}
	// The walk must actually have been measured: flush and check counters.
	rec.Flush(walk.wc)
	rep := rec.Report()
	if rep.Counters.Leaves == 0 || rep.Counters.SegmentApplications == 0 {
		t.Fatalf("telemetry saw nothing: %+v", rep.Counters)
	}
}

// BenchmarkRunBranchSteadyStateTelemetry is BenchmarkRunBranchSteadyState
// with telemetry enabled; comparing the two quantifies the recorder's
// overhead (budget: ≤2%, tracked in BENCH_telemetry.json).
func BenchmarkRunBranchSteadyStateTelemetry(b *testing.B) {
	walk, scratch, _ := telemetryAllocHarness(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch.Clear()
		if _, err := walk.runPrefix(ctx, nil, scratch); err != nil {
			b.Fatal(err)
		}
	}
}

// checkReportMatchesResult asserts the reconciliation invariants between a
// run's Report and its Result.
func checkReportMatchesResult(t *testing.T, rep *telemetry.Report, res *Result) {
	t.Helper()
	if rep == nil {
		t.Fatal("nil report")
	}
	if rep.Paths.Simulated != res.PathsSimulated {
		t.Fatalf("report paths simulated = %d, Result.PathsSimulated = %d",
			rep.Paths.Simulated, res.PathsSimulated)
	}
	if rep.Paths.Total != int64(res.NumPaths) {
		t.Fatalf("report paths total = %d, Result.NumPaths = %d", rep.Paths.Total, res.NumPaths)
	}
	if rep.Counters.Leaves != res.PathsSimulated-rep.Paths.Resumed {
		t.Fatalf("leaves counted = %d, want simulated-resumed = %d",
			rep.Counters.Leaves, res.PathsSimulated-rep.Paths.Resumed)
	}
	if rep.Counters.SegmentApplications < rep.Counters.Leaves {
		t.Fatalf("segment applications %d < leaves %d", rep.Counters.SegmentApplications, rep.Counters.Leaves)
	}
	var classTotal int64
	for _, c := range rep.KernelClasses {
		classTotal += c
	}
	if classTotal == 0 {
		t.Fatalf("no kernel classes attributed: %+v", rep.KernelClasses)
	}
	if len(rep.Segments) == 0 {
		t.Fatalf("no per-segment stats")
	}
}

// TestTelemetryCountsMatchResult runs the same plan on both backends with a
// recorder attached and checks the report reconciles with the Result.
func TestTelemetryCountsMatchResult(t *testing.T) {
	plan := buildPlan(t, manyCutCircuit(8, 5), 3, cut.StrategyNone)
	for _, backend := range []Backend{BackendDense, BackendDD} {
		rec := telemetry.New()
		res, err := Run(plan, Options{Backend: backend, Telemetry: rec})
		if err != nil {
			t.Fatalf("%v: %v", backend, err)
		}
		rep := rec.Report()
		checkReportMatchesResult(t, rep, res)
		if res.PathsSimulated != int64(res.NumPaths) {
			t.Fatalf("%v: incomplete run: %d of %d paths", backend, res.PathsSimulated, res.NumPaths)
		}
		if backend == BackendDense && rep.Counters.PoolGets == 0 {
			t.Fatalf("dense backend reported no pool activity")
		}
		if rep.Par.Gomaxprocs == 0 || rep.Par.Workers == 0 {
			t.Fatalf("%v: par stats missing: %+v", backend, rep.Par)
		}
	}
}

// TestTelemetryAcrossFaultAndResume interrupts a run with an injected fault
// and resumes it from the checkpoint: the resumed run's report must account
// for every path as resumed + freshly walked.
func TestTelemetryAcrossFaultAndResume(t *testing.T) {
	plan := buildPlan(t, manyCutCircuit(8, 8), 3, cut.StrategyNone)

	var buf bytes.Buffer
	rec1 := telemetry.New()
	_, err := Run(plan, Options{Workers: 2, FailAfterPaths: 40,
		CheckpointWriter: &buf, Telemetry: rec1})
	if !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("err = %v, want ErrInjectedFault", err)
	}
	rep1 := rec1.Report()
	if rep1.Paths.Simulated == 0 {
		t.Fatalf("faulted run recorded no progress")
	}

	ck, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rec2 := telemetry.New()
	var tr telemetry.Tracker
	res, err := Run(plan, Options{Workers: 2, Resume: ck, Telemetry: rec2, Progress: &tr})
	if err != nil {
		t.Fatal(err)
	}
	rep2 := rec2.Report()
	checkReportMatchesResult(t, rep2, res)
	if rep2.Paths.Resumed != ck.PathsSimulated {
		t.Fatalf("resumed = %d, checkpoint had %d", rep2.Paths.Resumed, ck.PathsSimulated)
	}
	if res.PathsSimulated != int64(res.NumPaths) {
		t.Fatalf("resumed run incomplete: %d of %d", res.PathsSimulated, res.NumPaths)
	}
	if got := tr.Done(); got != int64(res.NumPaths) {
		t.Fatalf("tracker done = %d, want %d", got, res.NumPaths)
	}
	if tr.Total() != int64(res.NumPaths) {
		t.Fatalf("tracker total = %d, want %d", tr.Total(), res.NumPaths)
	}
}

// TestTelemetryPrefixRun checks RunPrefixesContext (the distributed worker
// entry point) feeds the same recorder machinery.
func TestTelemetryPrefixRun(t *testing.T) {
	plan := buildPlan(t, manyCutCircuit(8, 5), 3, cut.StrategyNone)
	splitLevels := ChooseSplitLevels(plan, 4)
	prefixes := EnumeratePrefixes(plan, splitLevels)

	rec := telemetry.New()
	ck, err := RunPrefixesContext(context.Background(), plan, Options{Telemetry: rec},
		splitLevels, prefixes[:len(prefixes)/2])
	if err != nil {
		t.Fatal(err)
	}
	rep := rec.Report()
	if rep.Paths.Simulated != ck.PathsSimulated {
		t.Fatalf("report simulated = %d, checkpoint = %d", rep.Paths.Simulated, ck.PathsSimulated)
	}
	if rep.Counters.Leaves != ck.PathsSimulated {
		t.Fatalf("leaves = %d, want %d", rep.Counters.Leaves, ck.PathsSimulated)
	}
}
