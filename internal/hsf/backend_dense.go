package hsf

import "hsfsim/internal/statevec"

// denseWorkspace is the dense-array backend: partition states are
// statevec.Vector buffers (split real/imag planes) recycled through a
// size-keyed per-worker pool, and the pair structs themselves recycle through
// a free list, so steady-state walking allocates nothing. Segments, cut
// terms, and the leaf accumulate all run on the SoA planes — a path never
// round-trips through an interleaved []complex128.
type denseWorkspace struct {
	e    *engine
	pool *statevec.Pool
	free []*densePair
}

func newDenseWorkspace(e *engine) *denseWorkspace {
	return &denseWorkspace{e: e, pool: statevec.NewPool()}
}

// poolStats exposes the buffer pool's get/reuse counters for telemetry
// (queried once, at worker exit).
func (ws *denseWorkspace) poolStats() (gets, reuses int) { return ws.pool.Stats() }

// take returns a pair with fresh buffers of the partition sizes attached
// (contents unspecified).
func (ws *denseWorkspace) take() *densePair {
	var p *densePair
	if n := len(ws.free); n > 0 {
		p = ws.free[n-1]
		ws.free = ws.free[:n-1]
	} else {
		p = &densePair{ws: ws}
	}
	p.lo = ws.pool.Get(1 << ws.e.nLower)
	p.up = ws.pool.Get(1 << ws.e.nUpper)
	return p
}

func (ws *denseWorkspace) newRoot() (pairState, error) {
	p := ws.take()
	p.lo.SetBasis()
	p.up.SetBasis()
	return p, nil
}

type densePair struct {
	ws     *denseWorkspace
	lo, up statevec.Vector
}

func (p *densePair) applySegment(seg *segment) error {
	seg.loSeg.Apply(p.lo)
	seg.upSeg.Apply(p.up)
	return nil
}

func (p *densePair) applyCutTerm(c *compiledCut, t int) error {
	p.lo.ApplyGate(&c.lower[t])
	p.up.ApplyGate(&c.upper[t])
	return nil
}

func (p *densePair) fork() (pairState, error) {
	f := p.ws.take()
	f.lo.CopyFrom(p.lo)
	f.up.CopyFrom(p.up)
	return f, nil
}

func (p *densePair) release() {
	p.ws.pool.Put(p.lo)
	p.ws.pool.Put(p.up)
	p.lo, p.up = statevec.Vector{}, statevec.Vector{}
	p.ws.free = append(p.ws.free, p)
}

func (p *densePair) accumulate(acc statevec.Vector, coeff complex128) {
	statevec.AccumulateKron(acc, coeff, p.up, p.lo, p.ws.e.nLower)
}
