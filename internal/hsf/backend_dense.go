package hsf

import "hsfsim/internal/statevec"

// denseWorkspace is the dense-array backend: partition states are
// statevec.State buffers recycled through a size-keyed per-worker pool, and
// the pair structs themselves recycle through a free list, so steady-state
// walking allocates nothing.
type denseWorkspace struct {
	e    *engine
	pool *statevec.Pool
	free []*densePair
}

func newDenseWorkspace(e *engine) *denseWorkspace {
	return &denseWorkspace{e: e, pool: statevec.NewPool()}
}

// poolStats exposes the buffer pool's get/reuse counters for telemetry
// (queried once, at worker exit).
func (ws *denseWorkspace) poolStats() (gets, reuses int) { return ws.pool.Stats() }

// take returns a pair with fresh buffers of the partition sizes attached
// (contents unspecified).
func (ws *denseWorkspace) take() *densePair {
	var p *densePair
	if n := len(ws.free); n > 0 {
		p = ws.free[n-1]
		ws.free = ws.free[:n-1]
	} else {
		p = &densePair{ws: ws}
	}
	p.lo = ws.pool.Get(1 << ws.e.nLower)
	p.up = ws.pool.Get(1 << ws.e.nUpper)
	return p
}

func (ws *denseWorkspace) newRoot() (pairState, error) {
	p := ws.take()
	clear(p.lo)
	p.lo[0] = 1
	clear(p.up)
	p.up[0] = 1
	return p, nil
}

type densePair struct {
	ws     *denseWorkspace
	lo, up statevec.State
}

func (p *densePair) applySegment(seg *segment) error {
	seg.loSeg.Apply(p.lo)
	seg.upSeg.Apply(p.up)
	return nil
}

func (p *densePair) applyCutTerm(c *compiledCut, t int) error {
	p.lo.ApplyGate(&c.lower[t])
	p.up.ApplyGate(&c.upper[t])
	return nil
}

func (p *densePair) fork() (pairState, error) {
	f := p.ws.take()
	copy(f.lo, p.lo)
	copy(f.up, p.up)
	return f, nil
}

func (p *densePair) release() {
	p.ws.pool.Put(p.lo)
	p.ws.pool.Put(p.up)
	p.lo, p.up = nil, nil
	p.ws.free = append(p.ws.free, p)
}

func (p *densePair) accumulate(acc []complex128, coeff complex128) {
	accumulate(acc, coeff, p.up, p.lo, p.ws.e.nLower)
}

// accumulate adds coeff · (up ⊗ lo) to the first len(acc) amplitudes of acc.
func accumulate(acc []complex128, coeff complex128, up, lo statevec.State, nLower int) {
	m := len(acc)
	dimLo := 1 << nLower
	for x0 := 0; x0 < m; x0 += dimLo {
		u := coeff * up[x0>>nLower]
		if u == 0 {
			continue
		}
		end := x0 + dimLo
		if end > m {
			end = m
		}
		block := acc[x0:end]
		for i := range block {
			block[i] += u * lo[i]
		}
	}
}
