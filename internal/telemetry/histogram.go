package telemetry

import (
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket exponential latency histogram safe for
// concurrent use. Observations are recorded with atomic adds only — no
// locks, no allocation — so it can sit on the sampled hot path of the
// walker without disturbing the zero-alloc guarantee.
//
// Bucket bounds are shared by every histogram in the process (they are
// latency histograms; one geometry fits leaf latencies, segment sweeps,
// and lease durations alike): powers of 4 starting at 250ns, which spans
// sub-microsecond kernel applications up to minute-scale leases in 14
// buckets plus +Inf.
type Histogram struct {
	counts [numBuckets + 1]atomic.Int64 // last slot is +Inf
	sumNs  atomic.Int64
	n      atomic.Int64
}

const numBuckets = 14

// bucketBoundsNs holds the inclusive upper bound of each bucket in
// nanoseconds: 250ns * 4^i for i in [0, numBuckets).
var bucketBoundsNs = func() [numBuckets]int64 {
	var b [numBuckets]int64
	v := int64(250)
	for i := range b {
		b[i] = v
		v *= 4
	}
	return b
}()

// Observe records one duration. Safe for concurrent use; never allocates.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	i := 0
	for i < numBuckets && ns > bucketBoundsNs[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNs.Add(ns)
	h.n.Add(1)
}

// HistogramSnapshot is a point-in-time copy of a Histogram, in seconds,
// suitable for JSON reports and Prometheus exposition.
type HistogramSnapshot struct {
	// BoundsSeconds are the inclusive upper bounds of each finite bucket.
	BoundsSeconds []float64 `json:"bounds_seconds"`
	// Counts holds per-bucket (non-cumulative) observation counts; its
	// length is len(BoundsSeconds)+1, the last entry being the +Inf bucket.
	Counts     []int64 `json:"counts"`
	Count      int64   `json:"count"`
	SumSeconds float64 `json:"sum_seconds"`
}

// Snapshot returns a copy of the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		BoundsSeconds: make([]float64, numBuckets),
		Counts:        make([]int64, numBuckets+1),
	}
	for i := range bucketBoundsNs {
		s.BoundsSeconds[i] = float64(bucketBoundsNs[i]) / 1e9
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Count = h.n.Load()
	s.SumSeconds = float64(h.sumNs.Load()) / 1e9
	return s
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) in seconds by linear
// interpolation within the containing bucket. Exponential buckets make this
// an order-of-magnitude estimate — good enough for Retry-After hints and
// p50/p99 latency reporting, which is what it exists for. Returns 0 on an
// empty snapshot; observations in the +Inf bucket report the last finite
// bound.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.BoundsSeconds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			hi := s.BoundsSeconds[len(s.BoundsSeconds)-1]
			lo := 0.0
			if i < len(s.BoundsSeconds) {
				hi = s.BoundsSeconds[i]
			}
			if i > 0 {
				lo = s.BoundsSeconds[i-1]
			}
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return s.BoundsSeconds[len(s.BoundsSeconds)-1]
}

// Merge folds a snapshot produced by another Histogram into this one.
// Snapshots with a different bucket geometry are merged by count and sum
// only (their bucket shape is lost); in practice every histogram in the
// process shares the fixed geometry above.
func (h *Histogram) Merge(s HistogramSnapshot) {
	if len(s.Counts) == numBuckets+1 {
		for i, c := range s.Counts {
			h.counts[i].Add(c)
		}
	} else if s.Count > 0 {
		h.counts[numBuckets].Add(s.Count)
	}
	h.n.Add(s.Count)
	h.sumNs.Add(int64(s.SumSeconds * 1e9))
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }
