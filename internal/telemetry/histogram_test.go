package telemetry

import (
	"bufio"
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramObserveAndSnapshot(t *testing.T) {
	var h Histogram
	h.Observe(100 * time.Nanosecond) // bucket 0 (≤250ns)
	h.Observe(250 * time.Nanosecond) // bucket 0 (inclusive bound)
	h.Observe(300 * time.Nanosecond) // bucket 1 (≤1µs)
	h.Observe(time.Hour)             // +Inf
	h.Observe(-time.Second)          // clamped to 0 → bucket 0

	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if s.Counts[0] != 3 {
		t.Fatalf("bucket 0 = %d, want 3", s.Counts[0])
	}
	if s.Counts[1] != 1 {
		t.Fatalf("bucket 1 = %d, want 1", s.Counts[1])
	}
	if inf := s.Counts[len(s.Counts)-1]; inf != 1 {
		t.Fatalf("+Inf bucket = %d, want 1", inf)
	}
	wantSum := (100 + 250 + 300 + int64(time.Hour)) // negative clamped to 0
	if got := int64(s.SumSeconds * 1e9); got < wantSum-1000 || got > wantSum+1000 {
		t.Fatalf("sum = %d ns, want ≈%d", got, wantSum)
	}
	if len(s.BoundsSeconds) != numBuckets || len(s.Counts) != numBuckets+1 {
		t.Fatalf("geometry: %d bounds, %d counts", len(s.BoundsSeconds), len(s.Counts))
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(time.Microsecond)
	b.Observe(time.Millisecond)
	b.Observe(time.Second)
	a.Merge(b.Snapshot())
	if got := a.Count(); got != 3 {
		t.Fatalf("merged count = %d, want 3", got)
	}
	s := a.Snapshot()
	var total int64
	for _, c := range s.Counts {
		total += c
	}
	if total != 3 {
		t.Fatalf("bucket total = %d, want 3", total)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(time.Duration(j) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}

// TestPrometheusExposition writes every metric type and re-parses the text
// format, checking the invariants a Prometheus scraper relies on: TYPE/HELP
// lines precede samples, histogram buckets are cumulative and end at +Inf,
// and _count matches the +Inf bucket.
func TestPrometheusExposition(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(1+i) * time.Microsecond)
	}
	var buf bytes.Buffer
	WriteCounter(&buf, "test_requests_total", "Requests.", 42)
	WriteGauge(&buf, "test_in_flight", "In flight.", 3.5)
	WriteHistogram(&buf, "test_latency_seconds", "Latency.", &h)

	metrics, err := parseExposition(&buf)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got := metrics["test_requests_total"]; got.typ != "counter" || got.samples["test_requests_total"] != 42 {
		t.Fatalf("counter: %+v", got)
	}
	if got := metrics["test_in_flight"]; got.typ != "gauge" || got.samples["test_in_flight"] != 3.5 {
		t.Fatalf("gauge: %+v", got)
	}
	hist, ok := metrics["test_latency_seconds"]
	if !ok || hist.typ != "histogram" {
		t.Fatalf("histogram missing or mistyped: %+v", hist)
	}
	if got := hist.samples["test_latency_seconds_count"]; got != 100 {
		t.Fatalf("_count = %v, want 100", got)
	}
	inf, ok := hist.samples[`test_latency_seconds_bucket{le="+Inf"}`]
	if !ok || inf != 100 {
		t.Fatalf("+Inf bucket = %v, want 100", inf)
	}
	// Buckets must be cumulative (non-decreasing in bound order).
	prev := -1.0
	for _, kv := range hist.orderedBuckets {
		if kv.value < prev {
			t.Fatalf("bucket %q not cumulative: %v < %v", kv.key, kv.value, prev)
		}
		prev = kv.value
	}
	if hist.samples["test_latency_seconds_sum"] <= 0 {
		t.Fatalf("_sum should be positive")
	}
}

type parsedMetric struct {
	typ            string
	help           bool
	samples        map[string]float64
	orderedBuckets []bucketSample
}

type bucketSample struct {
	key   string
	value float64
}

// parseExposition is a minimal Prometheus text-format v0.0.4 parser: it
// understands # HELP / # TYPE comments and name{labels} value samples, and
// rejects samples whose metric family was never typed.
func parseExposition(r *bytes.Buffer) (map[string]*parsedMetric, error) {
	metrics := map[string]*parsedMetric{}
	family := func(name string) string {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name {
				if m, ok := metrics[base]; ok && m.typ == "histogram" {
					return base
				}
			}
		}
		return name
	}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(line[len("# HELP "):], " ", 2)
			m := metrics[parts[0]]
			if m == nil {
				m = &parsedMetric{samples: map[string]float64{}}
				metrics[parts[0]] = m
			}
			m.help = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line[len("# TYPE "):])
			if len(parts) != 2 {
				return nil, fmt.Errorf("bad TYPE line: %q", line)
			}
			m := metrics[parts[0]]
			if m == nil {
				m = &parsedMetric{samples: map[string]float64{}}
				metrics[parts[0]] = m
			}
			m.typ = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// Sample line: name{labels} value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("bad sample line: %q", line)
		}
		key, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value in %q: %v", line, err)
		}
		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		fam := family(name)
		m, ok := metrics[fam]
		if !ok || m.typ == "" {
			return nil, fmt.Errorf("sample %q has no TYPE", line)
		}
		m.samples[key] = val
		if strings.Contains(key, "_bucket{") {
			m.orderedBuckets = append(m.orderedBuckets, bucketSample{key, val})
		}
	}
	return metrics, sc.Err()
}
