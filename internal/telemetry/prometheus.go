package telemetry

import (
	"fmt"
	"io"
	"strconv"
)

// Prometheus text exposition (format version 0.0.4) writers. The daemon's
// /metrics endpoint composes these; keeping the format logic here lets the
// scrape-parsing test live next to it.

// PrometheusContentType is the Content-Type for the text exposition format.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteCounter emits one counter-typed metric.
func WriteCounter(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

// WriteGauge emits one gauge-typed metric.
func WriteGauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
		name, help, name, name, formatFloat(v))
}

// WriteInfoGauge emits one gauge-typed metric with constant value 1 and the
// given label pairs — the Prometheus "info metric" idiom (build_info and
// friends), where the payload lives in the labels. Label values are quoted
// with strconv.Quote, which matches the exposition format's escaping rules.
func WriteInfoGauge(w io.Writer, name, help string, labels [][2]string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s{", name, help, name, name)
	for i, kv := range labels {
		if i > 0 {
			io.WriteString(w, ",")
		}
		fmt.Fprintf(w, "%s=%s", kv[0], strconv.Quote(kv[1]))
	}
	io.WriteString(w, "} 1\n")
}

// LabeledValue is one series of a labelled metric family: the label value
// and the sample. Values render with full float precision, which is exact
// for integer counters as well.
type LabeledValue struct {
	Label string
	Value float64
}

// writeLabeledFamily emits one metric family with a single label key and
// one series per value. Families must be bounded-cardinality at the call
// site (e.g. the jobs manager caps distinct tenant labels).
func writeLabeledFamily(w io.Writer, name, help, typ, labelKey string, series []LabeledValue) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	for _, s := range series {
		fmt.Fprintf(w, "%s{%s=%s} %s\n", name, labelKey, strconv.Quote(s.Label), formatFloat(s.Value))
	}
}

// WriteLabeledCounter emits one counter family with a label per series.
func WriteLabeledCounter(w io.Writer, name, help, labelKey string, series []LabeledValue) {
	writeLabeledFamily(w, name, help, "counter", labelKey, series)
}

// WriteLabeledGauge emits one gauge family with a label per series.
func WriteLabeledGauge(w io.Writer, name, help, labelKey string, series []LabeledValue) {
	writeLabeledFamily(w, name, help, "gauge", labelKey, series)
}

// WriteHistogramSnapshot emits one histogram-typed metric with cumulative
// le-labelled buckets, _sum, and _count series.
func WriteHistogramSnapshot(w io.Writer, name, help string, s HistogramSnapshot) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum int64
	for i, bound := range s.BoundsSeconds {
		if i < len(s.Counts) {
			cum += s.Counts[i]
		}
		fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, formatFloat(bound), cum)
	}
	if n := len(s.BoundsSeconds); n < len(s.Counts) {
		for _, c := range s.Counts[n:] {
			cum += c
		}
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(s.SumSeconds))
	fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
}

// WriteHistogram emits a live Histogram via a snapshot.
func WriteHistogram(w io.Writer, name, help string, h *Histogram) {
	WriteHistogramSnapshot(w, name, help, h.Snapshot())
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
