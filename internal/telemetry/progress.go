package telemetry

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// Tracker publishes path-tree progress with zero hot-path cost. The engine
// already maintains an atomic leaf counter for FailAfterPaths and result
// accounting; Start hands the Tracker a pointer to that same counter, so
// reading progress costs the walker nothing at all. Distributed runs, which
// have no live local counter, advance the base count with Add as batches
// merge.
//
// All methods are safe on a nil receiver and safe for concurrent use.
type Tracker struct {
	total     atomic.Int64
	base      atomic.Int64
	live      atomic.Pointer[atomic.Int64]
	startNano atomic.Int64
}

// Start sets the run's total path count, seeds the base with paths already
// done (resume), and optionally publishes the engine's live leaf counter.
func (t *Tracker) Start(total, base int64, live *atomic.Int64) {
	if t == nil {
		return
	}
	t.total.Store(total)
	t.base.Store(base)
	t.live.Store(live)
	t.startNano.CompareAndSwap(0, time.Now().UnixNano())
}

// Add advances the base count by n (e.g. one merged distributed batch).
func (t *Tracker) Add(n int64) {
	if t == nil {
		return
	}
	t.base.Add(n)
}

// Done returns the number of paths completed so far.
func (t *Tracker) Done() int64 {
	if t == nil {
		return 0
	}
	d := t.base.Load()
	if live := t.live.Load(); live != nil {
		d += live.Load()
	}
	return d
}

// Total returns the run's total path count (0 before Start).
func (t *Tracker) Total() int64 {
	if t == nil {
		return 0
	}
	return t.total.Load()
}

// Go starts a goroutine printing a progress line to w every interval, and
// returns the function that stops it (printing one final line). The line is
// carriage-return rewritten, so it renders as a live ticker on a terminal
// and as successive lines when piped through a line buffer.
func (t *Tracker) Go(w io.Writer, every time.Duration) (stop func()) {
	if t == nil || w == nil {
		return func() {}
	}
	if every <= 0 {
		every = time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				fmt.Fprintf(w, "\r%s", t.Line())
			case <-done:
				fmt.Fprintf(w, "\r%s\n", t.Line())
				return
			}
		}
	}()
	var once atomic.Bool
	return func() {
		if once.CompareAndSwap(false, true) {
			close(done)
			<-finished
		}
	}
}

// Line formats the current progress as a single status line:
// "paths 12345/65536 (18.8%)  1.2e+06 paths/s  eta 43ms".
func (t *Tracker) Line() string {
	if t == nil {
		return ""
	}
	done, total := t.Done(), t.Total()
	start := t.startNano.Load()
	var rate float64
	if start != 0 {
		if el := time.Since(time.Unix(0, start)).Seconds(); el > 0 {
			rate = float64(done) / el
		}
	}
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(done) / float64(total)
	}
	eta := "?"
	if rate > 0 && total > done {
		d := time.Duration(float64(total-done) / rate * 1e9)
		eta = d.Round(etaRound(d)).String()
	} else if total > 0 && done >= total {
		eta = "0s"
	}
	return fmt.Sprintf("paths %d/%d (%.1f%%)  %.3g paths/s  eta %s", done, total, pct, rate, eta)
}

// etaRound picks a display granularity proportional to the remaining time.
func etaRound(d time.Duration) time.Duration {
	switch {
	case d > time.Hour:
		return time.Minute
	case d > time.Minute:
		return time.Second
	case d > time.Second:
		return 100 * time.Millisecond
	default:
		return time.Millisecond
	}
}
