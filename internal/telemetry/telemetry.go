// Package telemetry is the run-level measurement layer: spans around plan
// compilation, per-segment sweep timings, per-worker path counters, pool and
// parallelism statistics, and distributed lease timelines, assembled into a
// JSON Report and Prometheus-compatible histograms.
//
// Naming note: internal/obs is quantum *observables* (operators measured on
// the final state); this package is *observability* (measurements of the
// simulator itself). The short name "telemetry" keeps the two apart.
//
// The design constraint is the hot path: the walker executes millions of
// leaves per second with zero heap allocations per leaf, and telemetry must
// not change that. Counters are therefore accumulated in per-worker
// WorkerCounters structs with plain (non-atomic) fields, flushed into the
// Recorder exactly once when the worker exits. Timings are sampled (1 in 64)
// so the time.Now() cost disappears into the noise, and the shared
// histograms they feed use atomic adds only. Kernel-class attribution costs
// nothing at runtime: the engine records, at compile time, how many gates of
// each class every segment and cut term contains, and the walker only counts
// segment/term applications — the per-class totals are a dot product taken
// at Report() time.
package telemetry

import (
	"sync"
	"time"
)

// sampleMask selects 1 in 64 operations for wall-clock timing.
const sampleMask = 63

// Recorder aggregates telemetry for one run (or one process, for the
// daemon's service-level histograms). All methods are safe on a nil
// receiver, so call sites can thread an optional *Recorder without guards.
type Recorder struct {
	mu    sync.Mutex
	start time.Time

	spans []SpanRecord

	// Compile-time structure tables (SetStructure).
	classNames []string
	segClasses [][]int64   // [segment][class] gate counts
	cutClasses [][][]int64 // [level][term][class] gate counts

	// Merged worker totals.
	leaves      int64
	segApps     []int64 // [segment] application counts
	segSampleNs []int64
	segSamples  []int64
	cutApps     [][]int64 // [level][term] application counts
	cutTerms    int64
	forks       int64
	poolGets    int64
	poolReuses  int64
	workers     int

	// Directly-attributed kernel classes (Schrödinger path, which has no
	// walker and counts its gates up front).
	extraClasses map[string]int64

	leases []LeaseEvent
	totals RunTotals

	// Shared histograms; observed from worker goroutines via atomics.
	LeafLatency    Histogram
	SegmentSweep   Histogram
	LeaseDurations Histogram
}

// New returns a Recorder with its start time pinned to now.
func New() *Recorder {
	return &Recorder{start: time.Now()}
}

// SpanRecord is one named, timed phase of a run (e.g. "plan", "compile").
type SpanRecord struct {
	Name    string  `json:"name"`
	StartMs float64 `json:"start_ms"`
	DurMs   float64 `json:"dur_ms"`
}

// Span starts a named span and returns the function that closes it.
//
//	defer rec.Span("compile")()
func (r *Recorder) Span(name string) func() {
	if r == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() {
		d := time.Since(t0)
		r.mu.Lock()
		r.spans = append(r.spans, SpanRecord{
			Name:    name,
			StartMs: float64(t0.Sub(r.start)) / 1e6,
			DurMs:   float64(d) / 1e6,
		})
		r.mu.Unlock()
	}
}

// SetStructure installs the compile-time class tables: classNames[k] names
// kernel class k, segClasses[s][k] counts class-k gates in segment s, and
// cutClasses[l][t][k] counts class-k gates in term t of cut level l.
func (r *Recorder) SetStructure(classNames []string, segClasses [][]int64, cutClasses [][][]int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.classNames = classNames
	r.segClasses = segClasses
	r.cutClasses = cutClasses
	r.mu.Unlock()
}

// AddKernelClasses adds directly-counted class totals (used by the
// Schrödinger baseline, which applies every gate exactly once).
func (r *Recorder) AddKernelClasses(names []string, counts []int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.extraClasses == nil {
		r.extraClasses = make(map[string]int64, len(names))
	}
	for i, n := range names {
		if counts[i] != 0 {
			r.extraClasses[n] += counts[i]
		}
	}
	r.mu.Unlock()
}

// ObserveSegment records one un-sampled segment application of duration d
// (Schrödinger path: tens of applications per run, so the mutex is fine).
func (r *Recorder) ObserveSegment(seg int, d time.Duration) {
	if r == nil {
		return
	}
	r.SegmentSweep.Observe(d)
	r.mu.Lock()
	r.growSegs(seg + 1)
	r.segApps[seg]++
	r.segSampleNs[seg] += int64(d)
	r.segSamples[seg]++
	r.mu.Unlock()
}

// growSegs must be called with r.mu held.
func (r *Recorder) growSegs(n int) {
	for len(r.segApps) < n {
		r.segApps = append(r.segApps, 0)
		r.segSampleNs = append(r.segSampleNs, 0)
		r.segSamples = append(r.segSamples, 0)
	}
}

// LeaseEvent is one coordinator→worker lease: a batch of prefix tasks
// granted, executed (or failed), and merged. Defined here rather than in
// internal/dist so dist can depend on telemetry without a cycle.
type LeaseEvent struct {
	Worker   string  `json:"worker"`
	Batch    int     `json:"batch"`
	Prefixes int     `json:"prefixes"`
	StartMs  float64 `json:"start_ms"`
	DurMs    float64 `json:"dur_ms"`
	Paths    int64   `json:"paths,omitempty"`
	Err      string  `json:"err,omitempty"`
	// Stolen marks a lease created by re-splitting another worker's
	// in-flight lease; Partial marks a reply covering fewer prefixes than
	// leased (a draining or deadline-bound worker handing work back).
	Stolen  bool `json:"stolen,omitempty"`
	Partial bool `json:"partial,omitempty"`
}

// Lease records one lease event and its duration.
func (r *Recorder) Lease(ev LeaseEvent) {
	if r == nil {
		return
	}
	r.LeaseDurations.Observe(time.Duration(ev.DurMs * 1e6))
	r.mu.Lock()
	r.leases = append(r.leases, ev)
	r.mu.Unlock()
}

// SinceStartMs reports milliseconds elapsed since the Recorder was created
// (0 on a nil receiver). Used to timestamp LeaseEvents consistently.
func (r *Recorder) SinceStartMs() float64 {
	if r == nil {
		return 0
	}
	return float64(time.Since(r.start)) / 1e6
}

// RunTotals is the end-of-run summary handed to FinishRun.
type RunTotals struct {
	TotalPaths int64
	Log2Paths  float64
	Simulated  int64
	Resumed    int64
	Workers    int
	Gomaxprocs int
	Reserved   int
	Inner      int
	Elapsed    time.Duration
}

// FinishRun records the run's final totals. Later calls overwrite earlier
// ones except that Simulated/Resumed accumulate, so a distributed
// coordinator and its in-process workers can both report.
func (r *Recorder) FinishRun(t RunTotals) {
	if r == nil {
		return
	}
	r.mu.Lock()
	prevSim, prevRes := r.totals.Simulated, r.totals.Resumed
	r.totals = t
	if t.Simulated < prevSim {
		r.totals.Simulated = prevSim
	}
	if t.Resumed < prevRes {
		r.totals.Resumed = prevRes
	}
	r.mu.Unlock()
}

// WorkerCounters accumulates one worker goroutine's counters with plain
// (non-atomic, unshared) fields. The walker owns it exclusively until the
// worker exits and Flush folds it into the Recorder; nothing on this struct
// allocates or locks, preserving the zero-allocs-per-leaf guarantee.
type WorkerCounters struct {
	rec         *Recorder
	tick        uint64
	leaves      int64
	segCount    []int64
	segSampleNs []int64
	segSamples  []int64
	cutCount    [][]int64
	cutTerms    int64
	forks       int64
	poolGets    int64
	poolReuses  int64
}

// Worker allocates the per-worker counter block for a plan with nSegs
// segments and the given per-level cut ranks. Returns nil on a nil
// Recorder (telemetry disabled).
func (r *Recorder) Worker(nSegs int, cutRanks []int) *WorkerCounters {
	if r == nil {
		return nil
	}
	w := &WorkerCounters{
		rec:         r,
		segCount:    make([]int64, nSegs),
		segSampleNs: make([]int64, nSegs),
		segSamples:  make([]int64, nSegs),
		cutCount:    make([][]int64, len(cutRanks)),
	}
	for i, rank := range cutRanks {
		w.cutCount[i] = make([]int64, rank)
	}
	return w
}

// Sample advances the sampling tick and reports whether this operation
// should be wall-clock timed (1 in 64).
func (w *WorkerCounters) Sample() bool {
	w.tick++
	return w.tick&sampleMask == 0
}

// Seg counts one application of segment seg; if sampled, t0 is its start
// time and the duration feeds the per-segment sums and the sweep histogram.
func (w *WorkerCounters) Seg(seg int, sampled bool, t0 time.Time) {
	w.segCount[seg]++
	if sampled {
		d := time.Since(t0)
		w.segSampleNs[seg] += int64(d)
		w.segSamples[seg]++
		w.rec.SegmentSweep.Observe(d)
	}
}

// Leaf counts one completed leaf; if sampled, t0 is the start of the leaf's
// segment application and the span feeds the leaf-latency histogram.
func (w *WorkerCounters) Leaf(sampled bool, t0 time.Time) {
	w.leaves++
	if sampled {
		w.rec.LeafLatency.Observe(time.Since(t0))
	}
}

// CutTerm counts one application of term t at cut level l.
func (w *WorkerCounters) CutTerm(l, t int) {
	w.cutCount[l][t]++
	w.cutTerms++
}

// Fork counts one pair-state fork.
func (w *WorkerCounters) Fork() { w.forks++ }

// AddPool records statevector pool statistics gathered at worker exit.
func (w *WorkerCounters) AddPool(gets, reuses int) {
	w.poolGets += int64(gets)
	w.poolReuses += int64(reuses)
}

// Flush folds the worker's counters into the Recorder. Call exactly once,
// after the worker goroutine has finished using w.
func (r *Recorder) Flush(w *WorkerCounters) {
	if r == nil || w == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.workers++
	r.leaves += w.leaves
	r.cutTerms += w.cutTerms
	r.forks += w.forks
	r.poolGets += w.poolGets
	r.poolReuses += w.poolReuses
	r.growSegs(len(w.segCount))
	for i := range w.segCount {
		r.segApps[i] += w.segCount[i]
		r.segSampleNs[i] += w.segSampleNs[i]
		r.segSamples[i] += w.segSamples[i]
	}
	for len(r.cutApps) < len(w.cutCount) {
		r.cutApps = append(r.cutApps, nil)
	}
	for l := range w.cutCount {
		for len(r.cutApps[l]) < len(w.cutCount[l]) {
			r.cutApps[l] = append(r.cutApps[l], 0)
		}
		for t := range w.cutCount[l] {
			r.cutApps[l][t] += w.cutCount[l][t]
		}
	}
}

// PathStats summarizes path-tree progress for the Report.
type PathStats struct {
	Total     int64   `json:"total"`
	Log2Total float64 `json:"log2_total,omitempty"`
	Simulated int64   `json:"simulated"`
	Resumed   int64   `json:"resumed,omitempty"`
	PerSecond float64 `json:"per_second,omitempty"`
}

// Counters is the flat counter block of the Report.
type Counters struct {
	Leaves              int64 `json:"leaves"`
	SegmentApplications int64 `json:"segment_applications"`
	CutTermApplications int64 `json:"cut_term_applications"`
	Forks               int64 `json:"forks"`
	PoolGets            int64 `json:"pool_gets"`
	PoolReuses          int64 `json:"pool_reuses"`
}

// SegmentStats is one segment's application count and sampled timing.
type SegmentStats struct {
	Index        int   `json:"index"`
	Applications int64 `json:"applications"`
	Samples      int64 `json:"samples,omitempty"`
	AvgNs        int64 `json:"avg_ns,omitempty"`
}

// ParStats snapshots the process parallelism budget during the run.
type ParStats struct {
	Gomaxprocs int `json:"gomaxprocs"`
	Workers    int `json:"workers"`
	Reserved   int `json:"reserved"`
	Inner      int `json:"inner"`
}

// Report is the JSON-serializable summary of everything the Recorder saw.
type Report struct {
	StartTime      time.Time         `json:"start_time"`
	WallMs         float64           `json:"wall_ms"`
	KernelISA      string            `json:"kernel_isa,omitempty"`
	Spans          []SpanRecord      `json:"spans,omitempty"`
	Paths          PathStats         `json:"paths"`
	Counters       Counters          `json:"counters"`
	KernelClasses  map[string]int64  `json:"kernel_classes,omitempty"`
	Segments       []SegmentStats    `json:"segments,omitempty"`
	LeafLatency    HistogramSnapshot `json:"leaf_latency"`
	SegmentSweep   HistogramSnapshot `json:"segment_sweep"`
	LeaseDurations HistogramSnapshot `json:"lease_durations"`
	Leases         []LeaseEvent      `json:"leases,omitempty"`
	Par            ParStats          `json:"par"`
}

// Report assembles the final report. Safe to call more than once; returns
// nil on a nil receiver.
func (r *Recorder) Report() *Report {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	rep := &Report{
		StartTime: r.start,
		WallMs:    float64(time.Since(r.start)) / 1e6,
		Spans:     append([]SpanRecord(nil), r.spans...),
		Leases:    append([]LeaseEvent(nil), r.leases...),
		Paths: PathStats{
			Total:     r.totals.TotalPaths,
			Log2Total: r.totals.Log2Paths,
			Simulated: r.totals.Simulated,
			Resumed:   r.totals.Resumed,
		},
		Counters: Counters{
			Leaves:              r.leaves,
			CutTermApplications: r.cutTerms,
			Forks:               r.forks,
			PoolGets:            r.poolGets,
			PoolReuses:          r.poolReuses,
		},
		LeafLatency:    r.LeafLatency.Snapshot(),
		SegmentSweep:   r.SegmentSweep.Snapshot(),
		LeaseDurations: r.LeaseDurations.Snapshot(),
		Par: ParStats{
			Gomaxprocs: r.totals.Gomaxprocs,
			Workers:    r.totals.Workers,
			Reserved:   r.totals.Reserved,
			Inner:      r.totals.Inner,
		},
	}
	if r.totals.Elapsed > 0 && r.totals.Simulated > 0 {
		rep.Paths.PerSecond = float64(r.totals.Simulated) / r.totals.Elapsed.Seconds()
	}

	for i, n := range r.segApps {
		rep.Counters.SegmentApplications += n
		s := SegmentStats{Index: i, Applications: n, Samples: r.segSamples[i]}
		if s.Samples > 0 {
			s.AvgNs = r.segSampleNs[i] / s.Samples
		}
		rep.Segments = append(rep.Segments, s)
	}

	// Kernel-class totals: dot product of application counts with the
	// compile-time class tables, plus any directly-attributed classes.
	classes := make(map[string]int64, len(r.classNames))
	for s, n := range r.segApps {
		if s >= len(r.segClasses) {
			break
		}
		for k, c := range r.segClasses[s] {
			if c != 0 {
				classes[r.classNames[k]] += n * c
			}
		}
	}
	for l := range r.cutApps {
		if l >= len(r.cutClasses) {
			break
		}
		for t := range r.cutApps[l] {
			if t >= len(r.cutClasses[l]) {
				break
			}
			for k, c := range r.cutClasses[l][t] {
				if c != 0 {
					classes[r.classNames[k]] += r.cutApps[l][t] * c
				}
			}
		}
	}
	for n, c := range r.extraClasses {
		classes[n] += c
	}
	for n, c := range classes {
		if c == 0 {
			delete(classes, n)
		}
	}
	if len(classes) > 0 {
		rep.KernelClasses = classes
	}
	return rep
}
