// Package trace is a dependency-free, allocation-bounded tracing layer for
// the simulator: 128-bit trace IDs, span start/end events with a fixed
// number of inline attributes, recorded into a per-process lock-sharded
// ring-buffer flight recorder (fixed memory, oldest events evicted).
//
// The design constraints come from the execution core: the walker's leaf
// loop is guarded to zero allocations per leaf, so spans are only recorded
// at prefix-batch granularity and above, and starting/ending a span must
// itself be allocation-free in steady state. Span is therefore a value
// type whose event is assembled on the caller's stack and copied into the
// ring under a shard mutex at End; attribute storage is a fixed inline
// array, and IDs come from a seeded splitmix64 counter rather than
// crypto/rand (uniqueness, not unpredictability, is the requirement).
//
// Trace context crosses process boundaries as a W3C-style traceparent
// header (see traceparent.go) and crosses API layers inside a
// context.Context (see context.go). Recorded events export as Chrome
// trace-event JSON loadable in chrome://tracing (see chrome.go).
package trace

import (
	"encoding/binary"
	"encoding/hex"
	"os"
	"sync/atomic"
	"time"
)

// TraceID identifies one logical run end-to-end: 128 bits, hex-encoded as
// 32 lowercase digits in traceparent headers and trace dumps.
type TraceID [16]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String returns the 32-digit lowercase hex form.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// UnmarshalHex parses the 32-digit hex form (the String inverse); a
// malformed or all-zero input leaves the receiver untouched and errors.
func (t *TraceID) UnmarshalHex(s string) error {
	var id TraceID
	if len(s) != 32 {
		return errTraceparent
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil || id.IsZero() {
		return errTraceparent
	}
	*t = id
	return nil
}

// SpanID identifies one span within a trace: 64 bits, 16 hex digits.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String returns the 16-digit lowercase hex form.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// SpanContext is the propagated half of a span: enough to parent a child
// span locally or across a traceparent hop.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether both halves are non-zero.
func (sc SpanContext) Valid() bool { return !sc.Trace.IsZero() && !sc.Span.IsZero() }

// idState is the process-wide splitmix64 counter behind ID generation.
// Seeded once from the clock and pid so concurrent processes on one
// machine (a coordinator plus its loopback or localhost workers) draw
// from distinct streams.
var idState atomic.Uint64

func init() {
	seed := uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<32 ^ 0x2545f4914f6cdd1d
	idState.Store(seed)
}

// nextID advances the splitmix64 stream. Weyl-sequence increment plus the
// finalizer gives 64 well-mixed bits per call with a single atomic add.
func nextID() uint64 {
	x := idState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1 // the all-zero ID is reserved as invalid
	}
	return x
}

// NewTraceID returns a fresh non-zero 128-bit trace ID.
func NewTraceID() TraceID {
	var t TraceID
	binary.BigEndian.PutUint64(t[:8], nextID())
	binary.BigEndian.PutUint64(t[8:], nextID())
	return t
}

// NewSpanID returns a fresh non-zero 64-bit span ID.
func NewSpanID() SpanID {
	var s SpanID
	binary.BigEndian.PutUint64(s[:], nextID())
	return s
}
