package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// maxAttrs bounds the inline attribute array; setters beyond it drop the
// attribute rather than allocate.
const maxAttrs = 4

// numShards is the lock-shard count of the flight recorder; a power of
// two so shard selection is a mask.
const numShards = 8

// DefaultCapacity is the event capacity NewRecorder(0) selects: at ~250
// bytes per event the recorder then holds ~4 MiB, enough for several
// minutes of prefix-batch-granularity spans.
const DefaultCapacity = 16384

// Attr is one span attribute. A non-empty Str makes it a string
// attribute; otherwise it is the integer Val.
type Attr struct {
	Key string
	Str string
	Val int64
}

// Event is one completed span as stored in the flight recorder. Events
// are fixed-size values: copying one into the ring allocates nothing.
type Event struct {
	Trace  TraceID
	Span   SpanID
	Parent SpanID
	// Link references a causally related span in possibly another lease:
	// a steal lease links the victim lease it re-split.
	Link SpanContext
	Name string
	// Start is wall-clock Unix nanoseconds; Dur is the span length in
	// nanoseconds. Durations are measured on the monotonic clock when
	// both ends came from time.Now.
	Start int64
	Dur   int64
	// Lane is the visualization row (Chrome tid): worker index for fleet
	// timelines, walker goroutine index for engine spans, 0 otherwise.
	Lane   int32
	nattrs int32
	Attrs  [maxAttrs]Attr
}

// AttrList returns the populated prefix of the attribute array.
func (e *Event) AttrList() []Attr { return e.Attrs[:e.nattrs] }

// Int returns the integer attribute named key, or def when absent.
func (e *Event) Int(key string, def int64) int64 {
	for i := int32(0); i < e.nattrs; i++ {
		if e.Attrs[i].Key == key && e.Attrs[i].Str == "" {
			return e.Attrs[i].Val
		}
	}
	return def
}

// Str returns the string attribute named key, or "" when absent.
func (e *Event) Str(key string) string {
	for i := int32(0); i < e.nattrs; i++ {
		if e.Attrs[i].Key == key {
			return e.Attrs[i].Str
		}
	}
	return ""
}

// End returns the span's end time in Unix nanoseconds.
func (e *Event) End() int64 { return e.Start + e.Dur }

// shard is one lock-striped ring. next counts writes ever; the live
// window is the last min(next, len(buf)) events, so a full ring evicts
// its oldest event on every write.
type shard struct {
	mu   sync.Mutex
	buf  []Event
	next uint64
	_    [24]byte // keep neighboring shard headers off one cache line
}

// Recorder is the flight recorder: a fixed-memory, lock-sharded ring of
// completed span events, oldest-evicted. All methods are safe for
// concurrent use and safe on a nil receiver (no-ops), so callers thread
// an optional *Recorder without nil checks.
type Recorder struct {
	shards []shard
	sel    atomic.Uint64
}

// NewRecorder returns a recorder holding about capacity events
// (rounded up to a multiple of the shard count). capacity <= 0 selects
// DefaultCapacity.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	per := (capacity + numShards - 1) / numShards
	r := &Recorder{shards: make([]shard, numShards)}
	for i := range r.shards {
		r.shards[i].buf = make([]Event, per)
	}
	return r
}

// add copies one completed event into a ring shard. Shards are chosen
// round-robin so a burst from one goroutine spreads across locks.
func (r *Recorder) add(ev *Event) {
	if r == nil {
		return
	}
	sh := &r.shards[r.sel.Add(1)&(numShards-1)]
	sh.mu.Lock()
	sh.buf[sh.next%uint64(len(sh.buf))] = *ev
	sh.next++
	sh.mu.Unlock()
}

// Len reports the number of live (not yet evicted) events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	n := 0
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		if sh.next < uint64(len(sh.buf)) {
			n += int(sh.next)
		} else {
			n += len(sh.buf)
		}
		sh.mu.Unlock()
	}
	return n
}

// Evicted reports how many events have been overwritten by newer ones —
// the flight recorder's only loss mode.
func (r *Recorder) Evicted() uint64 {
	if r == nil {
		return 0
	}
	var n uint64
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		if sh.next > uint64(len(sh.buf)) {
			n += sh.next - uint64(len(sh.buf))
		}
		sh.mu.Unlock()
	}
	return n
}

// Capacity reports the total event capacity across shards.
func (r *Recorder) Capacity() int {
	if r == nil {
		return 0
	}
	n := 0
	for i := range r.shards {
		n += len(r.shards[i].buf)
	}
	return n
}

// Snapshot copies the live events out of the rings, ordered by start
// time. The copy is independent of the recorder, which keeps recording.
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, r.Capacity())
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		live := sh.next
		if live > uint64(len(sh.buf)) {
			live = uint64(len(sh.buf))
		}
		out = append(out, sh.buf[:live]...)
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Start < out[k].Start })
	return out
}

// SnapshotTrace is Snapshot filtered to one trace ID.
func (r *Recorder) SnapshotTrace(id TraceID) []Event {
	all := r.Snapshot()
	out := all[:0]
	for _, ev := range all {
		if ev.Trace == id {
			out = append(out, ev)
		}
	}
	return out
}

// Span is an in-flight span: a value handle whose event lives on the
// caller's stack until End copies it into the recorder. The zero Span
// (and any span started on a nil recorder) is a no-op.
type Span struct {
	rec *Recorder
	t0  time.Time
	ev  Event
}

// Start begins a span under parent. An invalid parent roots a fresh
// trace. Safe on a nil recorder: the returned no-op span still carries a
// zero context, and all its methods do nothing.
func (r *Recorder) Start(parent SpanContext, name string) Span {
	return r.StartAt(parent, name, time.Now())
}

// StartAt is Start with an explicit start time, for spans reconstructed
// from measurements taken elsewhere (worker execution windows shifted by
// the estimated clock offset, queue waits dated from enqueue time).
func (r *Recorder) StartAt(parent SpanContext, name string, start time.Time) Span {
	var s Span
	if r == nil {
		return s
	}
	s.rec = r
	s.t0 = start
	s.ev.Name = name
	s.ev.Start = start.UnixNano()
	if parent.Valid() {
		s.ev.Trace = parent.Trace
		s.ev.Parent = parent.Span
	} else {
		s.ev.Trace = NewTraceID()
	}
	s.ev.Span = NewSpanID()
	return s
}

// Context returns the span's propagation context (zero for no-op spans).
func (s *Span) Context() SpanContext {
	if s.rec == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.ev.Trace, Span: s.ev.Span}
}

// SetInt attaches an integer attribute; past the inline capacity the
// attribute is dropped rather than allocated.
func (s *Span) SetInt(key string, v int64) {
	if s.rec == nil || s.ev.nattrs >= maxAttrs {
		return
	}
	s.ev.Attrs[s.ev.nattrs] = Attr{Key: key, Val: v}
	s.ev.nattrs++
}

// SetStr attaches a string attribute (same capacity rule as SetInt).
func (s *Span) SetStr(key, v string) {
	if s.rec == nil || s.ev.nattrs >= maxAttrs {
		return
	}
	s.ev.Attrs[s.ev.nattrs] = Attr{Key: key, Str: v}
	s.ev.nattrs++
}

// SetLane assigns the visualization row (Chrome tid).
func (s *Span) SetLane(lane int) {
	if s.rec == nil {
		return
	}
	s.ev.Lane = int32(lane)
}

// Link records a causal reference to another span (a steal lease links
// the victim lease it was re-split from).
func (s *Span) Link(sc SpanContext) {
	if s.rec == nil {
		return
	}
	s.ev.Link = sc
}

// End completes the span and records it. Idempotent: a second End is a
// no-op.
func (s *Span) End() { s.EndAt(time.Now()) }

// EndAt is End with an explicit end time (paired with StartAt).
func (s *Span) EndAt(end time.Time) {
	if s.rec == nil {
		return
	}
	d := end.Sub(s.t0)
	if d < 0 {
		d = 0
	}
	s.ev.Dur = int64(d)
	s.rec.add(&s.ev)
	s.rec = nil
}
