package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event JSON format
// (chrome://tracing, also readable by Perfetto). Timestamps and
// durations are microseconds; ph "X" is a complete (start+duration)
// event, ph "M" a metadata record naming processes and threads.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	// DisplayTimeUnit keeps chrome://tracing in ms mode, the readable
	// scale for lease-length spans.
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// WriteChromeTrace serializes events as Chrome trace-event JSON. All
// events share pid 1; Event.Lane becomes the tid (the timeline row), so
// a fleet timeline shows one row per worker. Timestamps are rebased to
// the earliest event so the viewer opens at t=0.
func WriteChromeTrace(w io.Writer, events []Event) error {
	var base int64
	lanes := map[int32]bool{}
	for i := range events {
		if base == 0 || events[i].Start < base {
			base = events[i].Start
		}
		lanes[events[i].Lane] = true
	}
	out := chromeTrace{DisplayTimeUnit: "ms"}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1, Tid: 0,
		Args: map[string]any{"name": "hsfsim"},
	})
	laneList := make([]int32, 0, len(lanes))
	for l := range lanes {
		laneList = append(laneList, l)
	}
	sort.Slice(laneList, func(i, k int) bool { return laneList[i] < laneList[k] })
	for _, l := range laneList {
		name := "main"
		if l > 0 {
			name = fmt.Sprintf("lane %d", l)
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: int64(l),
			Args: map[string]any{"name": name},
		})
	}
	for i := range events {
		ev := &events[i]
		args := map[string]any{
			"trace": ev.Trace.String(),
			"span":  ev.Span.String(),
		}
		if !ev.Parent.IsZero() {
			args["parent"] = ev.Parent.String()
		}
		if ev.Link.Valid() {
			args["link"] = ev.Link.Trace.String() + "/" + ev.Link.Span.String()
		}
		for _, a := range ev.AttrList() {
			if a.Str != "" {
				args[a.Key] = a.Str
			} else {
				args[a.Key] = a.Val
			}
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: ev.Name,
			Cat:  "hsfsim",
			Ph:   "X",
			Ts:   float64(ev.Start-base) / 1e3,
			Dur:  float64(ev.Dur) / 1e3,
			Pid:  1,
			Tid:  int64(ev.Lane),
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
