package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestIDsUniqueAndNonZero(t *testing.T) {
	seen := map[TraceID]bool{}
	for i := 0; i < 10000; i++ {
		id := NewTraceID()
		if id.IsZero() {
			t.Fatal("zero trace ID")
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %s after %d draws", id, i)
		}
		seen[id] = true
	}
	spans := map[SpanID]bool{}
	for i := 0; i < 10000; i++ {
		id := NewSpanID()
		if id.IsZero() {
			t.Fatal("zero span ID")
		}
		if spans[id] {
			t.Fatalf("duplicate span ID %s after %d draws", id, i)
		}
		spans[id] = true
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{Trace: NewTraceID(), Span: NewSpanID()}
	h := FormatTraceparent(sc)
	if len(h) != 55 || !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("bad traceparent shape %q", h)
	}
	got, err := ParseTraceparent(h)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got != sc {
		t.Fatalf("round trip: got %+v want %+v", got, sc)
	}
}

func TestTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-short",
		"ff-0123456789abcdef0123456789abcdef-0123456789abcdef-01",
		"00-00000000000000000000000000000000-0123456789abcdef-01",
		"00-0123456789abcdef0123456789abcdef-0000000000000000-01",
		"00-0123456789abcdef0123456789abcdeX-0123456789abcdef-01",
		"00x0123456789abcdef0123456789abcdef-0123456789abcdef-01",
	}
	for _, s := range bad {
		if _, err := ParseTraceparent(s); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted malformed input", s)
		}
	}
	// Future versions with the 00 layout must parse (W3C forward compat).
	ok := "42-0123456789abcdef0123456789abcdef-0123456789abcdef-01"
	if _, err := ParseTraceparent(ok); err != nil {
		t.Errorf("ParseTraceparent rejected future version: %v", err)
	}
}

func TestSpanParentingAndAttrs(t *testing.T) {
	r := NewRecorder(64)
	root := r.Start(SpanContext{}, "root")
	rc := root.Context()
	if !rc.Valid() {
		t.Fatal("root context invalid")
	}
	child := r.Start(rc, "child")
	child.SetInt("batch", 7)
	child.SetStr("worker", "w3")
	child.SetLane(3)
	victim := SpanContext{Trace: rc.Trace, Span: NewSpanID()}
	child.Link(victim)
	child.End()
	root.End()

	evs := r.Snapshot()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	var ce *Event
	for i := range evs {
		if evs[i].Name == "child" {
			ce = &evs[i]
		}
	}
	if ce == nil {
		t.Fatal("child event missing")
	}
	if ce.Trace != rc.Trace || ce.Parent != rc.Span {
		t.Fatalf("child not parented to root: %+v", ce)
	}
	if ce.Int("batch", -1) != 7 || ce.Str("worker") != "w3" || ce.Lane != 3 {
		t.Fatalf("attributes lost: %+v", ce)
	}
	if ce.Link != victim {
		t.Fatalf("link lost: %+v", ce.Link)
	}
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	sp := r.Start(SpanContext{}, "x")
	sp.SetInt("a", 1)
	sp.SetStr("b", "c")
	sp.Link(SpanContext{})
	sp.SetLane(2)
	if sp.Context().Valid() {
		t.Fatal("nil recorder span has valid context")
	}
	sp.End()
	sp.End() // double End stays a no-op
	if r.Len() != 0 || r.Evicted() != 0 || r.Snapshot() != nil || r.Capacity() != 0 {
		t.Fatal("nil recorder not empty")
	}
}

func TestRingEvictionUnderOverflow(t *testing.T) {
	r := NewRecorder(numShards * 4) // 4 events per shard
	capTotal := r.Capacity()
	total := capTotal * 3
	for i := 0; i < total; i++ {
		sp := r.Start(SpanContext{}, "ev")
		sp.SetInt("seq", int64(i))
		sp.End()
	}
	if got := r.Len(); got != capTotal {
		t.Fatalf("Len = %d, want capacity %d", got, capTotal)
	}
	if got := r.Evicted(); got != uint64(total-capTotal) {
		t.Fatalf("Evicted = %d, want %d", got, total-capTotal)
	}
	// The survivors must be the newest events: round-robin sharding keeps
	// per-shard order, so every surviving seq must be from the newest
	// 2*capacity writes (exact set depends on shard interleaving, but
	// nothing from the oldest third may survive).
	for _, ev := range r.Snapshot() {
		if seq := ev.Int("seq", -1); seq < int64(total-2*capTotal) {
			t.Fatalf("stale event survived eviction: seq=%d", seq)
		}
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRecorder(1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			parent := SpanContext{Trace: NewTraceID(), Span: NewSpanID()}
			for i := 0; i < 500; i++ {
				sp := r.Start(parent, "work")
				sp.SetInt("g", int64(g))
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 1024 {
		t.Fatalf("Len = %d, want full capacity 1024", r.Len())
	}
	if r.Evicted() != 8*500-1024 {
		t.Fatalf("Evicted = %d, want %d", r.Evicted(), 8*500-1024)
	}
}

func TestSnapshotTraceFilters(t *testing.T) {
	r := NewRecorder(128)
	a := r.Start(SpanContext{}, "a")
	at := a.Context().Trace
	a.End()
	b := r.Start(SpanContext{}, "b")
	b.End()
	evs := r.SnapshotTrace(at)
	if len(evs) != 1 || evs[0].Name != "a" {
		t.Fatalf("SnapshotTrace = %+v, want only span a", evs)
	}
}

func TestStartAtEndAtExplicitTimes(t *testing.T) {
	r := NewRecorder(16)
	start := time.Unix(100, 0)
	sp := r.StartAt(SpanContext{}, "reconstructed", start)
	sp.EndAt(start.Add(250 * time.Millisecond))
	ev := r.Snapshot()[0]
	if ev.Start != start.UnixNano() {
		t.Fatalf("Start = %d, want %d", ev.Start, start.UnixNano())
	}
	if ev.Dur != int64(250*time.Millisecond) {
		t.Fatalf("Dur = %d, want 250ms", ev.Dur)
	}
}

func TestContextThreading(t *testing.T) {
	r := NewRecorder(16)
	sc := SpanContext{Trace: NewTraceID(), Span: NewSpanID()}
	ctx := NewContext(context.Background(), r, sc)
	ctx = WithRequestID(ctx, "req-42")
	gr, gsc := FromContext(ctx)
	if gr != r || gsc != sc {
		t.Fatal("trace context lost")
	}
	if RequestID(ctx) != "req-42" {
		t.Fatal("request ID lost")
	}
	gr2, gsc2 := FromContext(context.Background())
	if gr2 != nil || gsc2.Valid() {
		t.Fatal("empty context not empty")
	}
}

func TestChromeTraceOutput(t *testing.T) {
	r := NewRecorder(64)
	root := r.Start(SpanContext{}, "dist-run")
	lease := r.Start(root.Context(), "lease")
	lease.SetStr("worker", "w1")
	lease.SetLane(1)
	time.Sleep(time.Millisecond)
	lease.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r.Snapshot()); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output not JSON: %v", err)
	}
	var leases, roots, meta int
	for _, ev := range out.TraceEvents {
		switch ev["name"] {
		case "lease":
			leases++
			if ev["ph"] != "X" {
				t.Fatalf("lease ph = %v", ev["ph"])
			}
			if ev["tid"] != float64(1) {
				t.Fatalf("lease tid = %v, want lane 1", ev["tid"])
			}
			args := ev["args"].(map[string]any)
			if args["worker"] != "w1" {
				t.Fatalf("lease args = %v", args)
			}
			if args["parent"] == nil || args["trace"] == nil {
				t.Fatalf("lease missing trace linkage: %v", args)
			}
			if ev["dur"].(float64) <= 0 {
				t.Fatal("lease has no duration")
			}
		case "dist-run":
			roots++
		case "process_name", "thread_name":
			meta++
		}
	}
	if leases != 1 || roots != 1 || meta < 2 {
		t.Fatalf("event mix: leases=%d roots=%d meta=%d", leases, roots, meta)
	}
}

// TestSpanZeroAlloc guards the recorder's core promise: starting,
// annotating, and ending a span allocates nothing in steady state.
func TestSpanZeroAlloc(t *testing.T) {
	r := NewRecorder(256)
	parent := SpanContext{Trace: NewTraceID(), Span: NewSpanID()}
	allocs := testing.AllocsPerRun(1000, func() {
		sp := r.Start(parent, "leaf-batch")
		sp.SetInt("prefixes", 32)
		sp.SetStr("worker", "w0")
		sp.SetLane(1)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("span lifecycle allocates %.1f objects per op, want 0", allocs)
	}
}

func BenchmarkSpan(b *testing.B) {
	r := NewRecorder(4096)
	parent := SpanContext{Trace: NewTraceID(), Span: NewSpanID()}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := r.Start(parent, "bench")
		sp.SetInt("i", int64(i))
		sp.End()
	}
}
