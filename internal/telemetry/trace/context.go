package trace

import "context"

// ctxKey keys the trace values inside a context.Context.
type ctxKey int

const (
	traceKey ctxKey = iota
	requestIDKey
)

// ctxVal bundles the recorder and current span context so layer
// boundaries pay one context lookup, not two.
type ctxVal struct {
	rec *Recorder
	sc  SpanContext
}

// NewContext returns ctx carrying the recorder and the current span
// context. Child layers derive spans under sc and record into rec.
func NewContext(ctx context.Context, rec *Recorder, sc SpanContext) context.Context {
	return context.WithValue(ctx, traceKey, ctxVal{rec: rec, sc: sc})
}

// FromContext returns the recorder and current span context threaded
// through ctx, or (nil, zero) when the request is untraced. The nil
// recorder is safe to use directly: every method no-ops.
func FromContext(ctx context.Context) (*Recorder, SpanContext) {
	v, _ := ctx.Value(traceKey).(ctxVal)
	return v.rec, v.sc
}

// WithRequestID returns ctx carrying the request correlation ID (the
// X-Request-Id value). It lives here, not in the server package, so the
// dist coordinator can forward it to workers without an import cycle.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestID returns the request correlation ID threaded through ctx,
// or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}
