package trace

import (
	"encoding/hex"
	"errors"
)

// Header is the HTTP header name carrying trace context between the
// coordinator and its workers, W3C Trace Context style.
const Header = "traceparent"

var errTraceparent = errors.New("trace: malformed traceparent")

// FormatTraceparent renders a W3C-style traceparent header value:
// version 00, the 32-hex trace ID, the 16-hex span ID of the caller's
// current span, and flags 01 (sampled — the flight recorder records
// everything it is handed).
func FormatTraceparent(sc SpanContext) string {
	var b [55]byte
	b[0], b[1], b[2] = '0', '0', '-'
	hex.Encode(b[3:35], sc.Trace[:])
	b[35] = '-'
	hex.Encode(b[36:52], sc.Span[:])
	b[52], b[53], b[54] = '-', '0', '1'
	return string(b[:])
}

// ParseTraceparent parses a traceparent header value. Unknown versions
// are accepted as long as the 00-version prefix layout holds (the W3C
// forward-compatibility rule); zero IDs are rejected.
func ParseTraceparent(s string) (SpanContext, error) {
	var sc SpanContext
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return sc, errTraceparent
	}
	if s[0] == 'f' && s[1] == 'f' {
		return sc, errTraceparent // version 0xff is explicitly invalid
	}
	if _, err := hex.Decode(sc.Trace[:], []byte(s[3:35])); err != nil {
		return SpanContext{}, errTraceparent
	}
	if _, err := hex.Decode(sc.Span[:], []byte(s[36:52])); err != nil {
		return SpanContext{}, errTraceparent
	}
	if !sc.Valid() {
		return SpanContext{}, errTraceparent
	}
	return sc, nil
}
