package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Span("x")()
	r.SetStructure(nil, nil, nil)
	r.AddKernelClasses([]string{"dense"}, []int64{1})
	r.ObserveSegment(0, time.Millisecond)
	r.Lease(LeaseEvent{})
	r.FinishRun(RunTotals{})
	r.Flush(nil)
	if wc := r.Worker(3, []int{2}); wc != nil {
		t.Fatalf("nil recorder returned non-nil worker counters")
	}
	if rep := r.Report(); rep != nil {
		t.Fatalf("nil recorder returned non-nil report")
	}
}

func TestWorkerCountersFlushAndReport(t *testing.T) {
	r := New()
	classNames := []string{"dense", "diagonal"}
	// Two segments: segment 0 has 3 dense gates, segment 1 has 1 dense +
	// 2 diagonal. One cut level of rank 2; each term has 1 diagonal gate.
	r.SetStructure(classNames,
		[][]int64{{3, 0}, {1, 2}},
		[][][]int64{{{0, 1}, {0, 1}}},
	)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wc := r.Worker(2, []int{2})
			for i := 0; i < 100; i++ {
				sampled := wc.Sample()
				t0 := time.Now()
				wc.Seg(0, sampled, t0)
				wc.CutTerm(0, i%2)
				wc.Seg(1, sampled, t0)
				wc.Leaf(sampled, t0)
				if i%2 == 0 {
					wc.Fork()
				}
			}
			wc.AddPool(10, 7)
			r.Flush(wc)
		}()
	}
	wg.Wait()
	r.FinishRun(RunTotals{TotalPaths: 400, Simulated: 400, Workers: 4, Elapsed: time.Second})

	rep := r.Report()
	if rep.Counters.Leaves != 400 {
		t.Fatalf("leaves = %d, want 400", rep.Counters.Leaves)
	}
	if rep.Counters.SegmentApplications != 800 {
		t.Fatalf("segment applications = %d, want 800", rep.Counters.SegmentApplications)
	}
	if rep.Counters.CutTermApplications != 400 {
		t.Fatalf("cut-term applications = %d, want 400", rep.Counters.CutTermApplications)
	}
	if rep.Counters.Forks != 200 {
		t.Fatalf("forks = %d, want 200", rep.Counters.Forks)
	}
	if rep.Counters.PoolGets != 40 || rep.Counters.PoolReuses != 28 {
		t.Fatalf("pool = %d/%d, want 40/28", rep.Counters.PoolGets, rep.Counters.PoolReuses)
	}
	// Classes: seg0 applied 400 times * 3 dense; seg1 400 * (1 dense + 2
	// diagonal); 400 cut terms * 1 diagonal each.
	if got := rep.KernelClasses["dense"]; got != 400*3+400*1 {
		t.Fatalf("dense class = %d, want %d", got, 400*3+400)
	}
	if got := rep.KernelClasses["diagonal"]; got != 400*2+400 {
		t.Fatalf("diagonal class = %d, want %d", got, 400*2+400)
	}
	if rep.Paths.Simulated != 400 || rep.Paths.PerSecond != 400 {
		t.Fatalf("paths = %+v", rep.Paths)
	}
	if rep.LeafLatency.Count == 0 {
		t.Fatalf("expected sampled leaf latency observations")
	}
	// 1-in-64 sampling of 100 leaf ticks per worker: each worker ticks
	// Sample() 100 times, so expect exactly one sample per worker.
	if got := rep.LeafLatency.Count; got != 4 {
		t.Fatalf("leaf latency samples = %d, want 4", got)
	}
	if len(rep.Segments) != 2 || rep.Segments[0].Applications != 400 {
		t.Fatalf("segments = %+v", rep.Segments)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	r := New()
	defer r.Span("plan")()
	r.Lease(LeaseEvent{Worker: "w1", Batch: 0, Prefixes: 8, DurMs: 12.5, Paths: 64})
	r.FinishRun(RunTotals{TotalPaths: 64, Simulated: 64})
	b, err := json.Marshal(r.Report())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var rep Report
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(rep.Leases) != 1 || rep.Leases[0].Worker != "w1" {
		t.Fatalf("leases did not round-trip: %+v", rep.Leases)
	}
	if rep.LeaseDurations.Count != 1 {
		t.Fatalf("lease histogram count = %d, want 1", rep.LeaseDurations.Count)
	}
}

func TestFinishRunAccumulatesSimulated(t *testing.T) {
	r := New()
	r.FinishRun(RunTotals{TotalPaths: 100, Simulated: 60, Resumed: 10})
	r.FinishRun(RunTotals{TotalPaths: 100, Simulated: 40})
	rep := r.Report()
	if rep.Paths.Simulated != 60 {
		t.Fatalf("simulated = %d, want max(60,40)=60", rep.Paths.Simulated)
	}
	if rep.Paths.Resumed != 10 {
		t.Fatalf("resumed = %d, want 10", rep.Paths.Resumed)
	}
}

func TestTrackerLiveCounterAndLine(t *testing.T) {
	var tr Tracker
	var live atomic.Int64
	tr.Start(1000, 100, &live)
	live.Store(50)
	if got := tr.Done(); got != 150 {
		t.Fatalf("done = %d, want 150", got)
	}
	tr.Add(25)
	if got := tr.Done(); got != 175 {
		t.Fatalf("done = %d, want 175", got)
	}
	line := tr.Line()
	if !strings.Contains(line, "paths 175/1000") {
		t.Fatalf("line = %q", line)
	}
	var nilT *Tracker
	nilT.Start(1, 0, nil)
	nilT.Add(1)
	if nilT.Done() != 0 || nilT.Line() != "" {
		t.Fatalf("nil tracker should be inert")
	}
}

func TestTrackerGoPrintsAndStops(t *testing.T) {
	var tr Tracker
	tr.Start(10, 10, nil)
	var buf bytes.Buffer
	stop := tr.Go(&buf, time.Millisecond)
	time.Sleep(10 * time.Millisecond)
	stop()
	stop() // idempotent
	out := buf.String()
	if !strings.Contains(out, "paths 10/10 (100.0%)") {
		t.Fatalf("progress output = %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("final line should end with newline: %q", out)
	}
}

func TestSamplingRate(t *testing.T) {
	r := New()
	wc := r.Worker(1, nil)
	n := 0
	for i := 0; i < 64*10; i++ {
		if wc.Sample() {
			n++
		}
	}
	if n != 10 {
		t.Fatalf("sampled %d of %d, want exactly %d", n, 64*10, 10)
	}
}
