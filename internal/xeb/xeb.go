// Package xeb provides bitstring sampling and cross-entropy benchmarking
// (XEB) utilities. Google's supremacy experiment — the origin of the qsim
// HSF code the paper builds on — validates simulators by the linear XEB
// fidelity of sampled bitstrings; this package closes that loop for the
// grid-circuit extension experiment.
package xeb

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Probabilities converts amplitudes to probabilities.
func Probabilities(amps []complex128) []float64 {
	p := make([]float64, len(amps))
	for i, a := range amps {
		p[i] = real(a)*real(a) + imag(a)*imag(a)
	}
	return p
}

// Sampler draws bitstrings from a probability distribution using inverse
// transform sampling over the cumulative distribution.
type Sampler struct {
	cum []float64
}

// NewSampler builds a sampler from (possibly unnormalized, e.g. truncated)
// probabilities. The distribution is renormalized; an all-zero input is
// rejected.
func NewSampler(probs []float64) (*Sampler, error) {
	if len(probs) == 0 {
		return nil, fmt.Errorf("xeb: empty distribution")
	}
	cum := make([]float64, len(probs))
	total := 0.0
	for i, p := range probs {
		if p < 0 {
			return nil, fmt.Errorf("xeb: negative probability at %d", i)
		}
		total += p
		cum[i] = total
	}
	if total == 0 {
		return nil, fmt.Errorf("xeb: zero total probability")
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Sampler{cum: cum}, nil
}

// Sample draws n basis-state indices.
func (s *Sampler) Sample(n int, rng *rand.Rand) []int {
	out := make([]int, n)
	for i := range out {
		u := rng.Float64()
		out[i] = sort.SearchFloat64s(s.cum, u)
		if out[i] >= len(s.cum) {
			out[i] = len(s.cum) - 1
		}
	}
	return out
}

// LinearXEB computes the linear cross-entropy fidelity estimate
//
//	F = D · <p(x_i)> − 1
//
// where D is the Hilbert-space dimension the probabilities cover, p is the
// ideal distribution, and x_i are the samples. Ideal samples give F ≈ 1 for
// Porter-Thomas distributed circuits; uniform samples give F ≈ 0.
//
// probs must span the full space (D = len(probs)); for a truncated
// amplitude prefix — the HSF partial-amplitude setting — use
// LinearXEBWithDim with the true dimension.
func LinearXEB(probs []float64, samples []int) (float64, error) {
	return LinearXEBWithDim(probs, samples, len(probs))
}

// LinearXEBWithDim computes the linear XEB fidelity when probs covers only
// the first len(probs) basis states of a dim-dimensional space: probs must
// hold *true* (unrenormalized) probabilities, and the samples must be drawn
// conditioned on landing inside the window (which is what sampling from the
// renormalized slice produces).
func LinearXEBWithDim(probs []float64, samples []int, dim int) (float64, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("xeb: no samples")
	}
	if dim < len(probs) {
		return 0, fmt.Errorf("xeb: dimension %d smaller than the probability window %d", dim, len(probs))
	}
	var mean float64
	for _, x := range samples {
		if x < 0 || x >= len(probs) {
			return 0, fmt.Errorf("xeb: sample %d out of range", x)
		}
		mean += probs[x]
	}
	mean /= float64(len(samples))
	return float64(dim)*mean - 1, nil
}

// PorterThomasKL computes the Kullback-Leibler divergence between the
// empirical distribution of D·p values and the ideal Porter-Thomas law
// P(Dp) = e^{-Dp}, binned logarithmically — a standard check that a random
// circuit's output is chaotically distributed.
func PorterThomasKL(probs []float64, bins int) float64 {
	if bins <= 0 {
		bins = 20
	}
	d := float64(len(probs))
	// Bin edges in units of D·p over [0, 8].
	const maxX = 8.0
	width := maxX / float64(bins)
	emp := make([]float64, bins)
	for _, p := range probs {
		x := d * p
		b := int(x / width)
		if b >= bins {
			b = bins - 1
		}
		emp[b]++
	}
	var kl float64
	for b := 0; b < bins; b++ {
		pEmp := emp[b] / d
		if pEmp == 0 {
			continue
		}
		lo := float64(b) * width
		hi := lo + width
		pTheo := math.Exp(-lo) - math.Exp(-hi)
		if b == bins-1 {
			pTheo = math.Exp(-lo)
		}
		if pTheo <= 0 {
			continue
		}
		kl += pEmp * math.Log(pEmp/pTheo)
	}
	return kl
}
