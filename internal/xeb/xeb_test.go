package xeb

import (
	"math"
	"math/rand"
	"testing"

	"hsfsim/internal/grcs"
	"hsfsim/internal/statevec"
)

func TestProbabilitiesNormalized(t *testing.T) {
	amps := []complex128{complex(math.Sqrt2/2, 0), 0, 0, complex(0, math.Sqrt2/2)}
	p := Probabilities(amps)
	if math.Abs(p[0]-0.5) > 1e-12 || math.Abs(p[3]-0.5) > 1e-12 {
		t.Fatalf("probs = %v", p)
	}
}

func TestSamplerValidation(t *testing.T) {
	if _, err := NewSampler(nil); err == nil {
		t.Fatal("empty distribution accepted")
	}
	if _, err := NewSampler([]float64{0, 0}); err == nil {
		t.Fatal("zero distribution accepted")
	}
	if _, err := NewSampler([]float64{0.5, -0.1}); err == nil {
		t.Fatal("negative probability accepted")
	}
}

func TestSamplerFrequencies(t *testing.T) {
	s, err := NewSampler([]float64{0.7, 0.2, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	const n = 100000
	counts := make([]int, 3)
	for _, x := range s.Sample(n, rng) {
		counts[x]++
	}
	for i, want := range []float64{0.7, 0.2, 0.1} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("freq[%d] = %g, want %g", i, got, want)
		}
	}
}

func TestLinearXEBIdealVsUniform(t *testing.T) {
	// A chaotic random-circuit distribution: ideal samples score F ≈ 1,
	// uniform samples F ≈ 0.
	c, err := grcs.Generate(grcs.Options{Rows: 3, Cols: 4, Depth: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	s := statevec.NewState(c.NumQubits)
	s.ApplyAll(c.Gates)
	probs := Probabilities(s)

	rng := rand.New(rand.NewSource(2))
	sampler, err := NewSampler(probs)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	ideal := sampler.Sample(n, rng)
	fIdeal, err := LinearXEB(probs, ideal)
	if err != nil {
		t.Fatal(err)
	}
	if fIdeal < 0.8 || fIdeal > 1.3 {
		t.Fatalf("ideal XEB = %g, want ~1", fIdeal)
	}
	uniform := make([]int, n)
	for i := range uniform {
		uniform[i] = rng.Intn(len(probs))
	}
	fUniform, err := LinearXEB(probs, uniform)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fUniform) > 0.15 {
		t.Fatalf("uniform XEB = %g, want ~0", fUniform)
	}
	if fIdeal < fUniform+0.5 {
		t.Fatal("XEB cannot distinguish ideal from uniform sampling")
	}
}

func TestLinearXEBErrors(t *testing.T) {
	if _, err := LinearXEB([]float64{1}, nil); err == nil {
		t.Fatal("no samples accepted")
	}
	if _, err := LinearXEB([]float64{1}, []int{4}); err == nil {
		t.Fatal("out-of-range sample accepted")
	}
}

func TestPorterThomasOnRandomCircuit(t *testing.T) {
	// A deep random circuit's output follows Porter-Thomas closely; a
	// computational basis state does not.
	c, err := grcs.Generate(grcs.Options{Rows: 3, Cols: 4, Depth: 12, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	s := statevec.NewState(c.NumQubits)
	s.ApplyAll(c.Gates)
	klChaotic := PorterThomasKL(Probabilities(s), 20)

	basis := make([]float64, 1<<12)
	basis[0] = 1
	klBasis := PorterThomasKL(basis, 20)

	if klChaotic > 0.05 {
		t.Fatalf("chaotic circuit KL = %g, want < 0.05", klChaotic)
	}
	if klBasis < 10*klChaotic {
		t.Fatalf("basis state KL = %g not clearly worse than chaotic %g", klBasis, klChaotic)
	}
}

func TestLinearXEBWithDimTruncatedWindow(t *testing.T) {
	// Sampling from a renormalized window of an exact Porter-Thomas
	// distribution must score F ≈ 1 when the true dimension is supplied —
	// and be badly biased when it is not (the HSF partial-amplitude
	// pitfall). A synthetic PT distribution isolates the estimator math
	// from circuit-depth effects.
	rng := rand.New(rand.NewSource(15))
	const dim = 1 << 14
	full := make([]float64, dim)
	var total float64
	for i := range full {
		full[i] = rng.ExpFloat64()
		total += full[i]
	}
	for i := range full {
		full[i] /= total // exact PT: p ~ Exp(1)/D in distribution
	}
	window := full[:2048]
	sampler, err := NewSampler(window)
	if err != nil {
		t.Fatal(err)
	}
	samples := sampler.Sample(40000, rng)
	f, err := LinearXEBWithDim(window, samples, dim)
	if err != nil {
		t.Fatal(err)
	}
	if f < 0.8 || f > 1.2 {
		t.Fatalf("windowed XEB = %g, want ~1", f)
	}
	wrong, err := LinearXEB(window, samples)
	if err != nil {
		t.Fatal(err)
	}
	if wrong > 0 {
		t.Fatalf("naive windowed XEB should be negatively biased, got %g", wrong)
	}
	if _, err := LinearXEBWithDim(window, samples, 10); err == nil {
		t.Fatal("dimension smaller than window accepted")
	}
}
