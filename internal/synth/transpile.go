package synth

import (
	"fmt"
	"math"

	"hsfsim/internal/circuit"
	"hsfsim/internal/cmat"
	"hsfsim/internal/gate"
)

// Transpile rewrites a circuit over the {single-qubit, CNOT} basis. The
// output reproduces the input unitary exactly (global phase included:
// residual phases are realized with P/RZ pairs). Gates handled:
//
//   - all single-qubit gates (via ZYZ);
//   - cx passes through; any diagonal multi-qubit gate (cz, cp, rzz, ccz,
//     fused diagonal blocks, …) via the Walsh phase network;
//   - swap (3 CNOTs) and any two-qubit gate with controlled structure in
//     either orientation (ABC);
//   - iswap/fsim/rxx/ryy via basis-change conjugation onto diagonals;
//   - ccx via the 6-CNOT Toffoli network;
//   - any remaining dense two-qubit unitary (e.g. a fusion cluster) via the
//     Cartan (KAK) decomposition.
//
// Dense non-diagonal unitaries on three or more qubits are not supported
// and return an error.
func Transpile(c *circuit.Circuit) (*circuit.Circuit, error) {
	out := circuit.New(c.NumQubits)
	for i := range c.Gates {
		gs, err := transpileGate(&c.Gates[i])
		if err != nil {
			return nil, fmt.Errorf("synth: gate %d (%s): %w", i, c.Gates[i].Name, err)
		}
		out.Append(gs...)
	}
	return out, nil
}

func transpileGate(g *gate.Gate) ([]gate.Gate, error) {
	switch g.NumQubits() {
	case 1:
		z, err := ZYZDecompose(g.Matrix)
		if err != nil {
			return nil, err
		}
		return z.GatesWithPhase(g.Qubits[0]), nil
	case 2:
		return transpileTwoQubit(g)
	default:
		if g.Name == "ccx" {
			return SynthesizeToffoli(g.Qubits[0], g.Qubits[1], g.Qubits[2]), nil
		}
		if g.Diagonal {
			return diagonalWithPhase(g.Matrix, g.Qubits)
		}
		return nil, fmt.Errorf("unsupported %d-qubit gate", g.NumQubits())
	}
}

func transpileTwoQubit(g *gate.Gate) ([]gate.Gate, error) {
	a, b := g.Qubits[0], g.Qubits[1]
	if g.Name == "cx" {
		return []gate.Gate{*g}, nil
	}
	if g.Diagonal {
		return diagonalWithPhase(g.Matrix, g.Qubits)
	}
	switch g.Name {
	case "swap":
		return []gate.Gate{gate.CNOT(a, b), gate.CNOT(b, a), gate.CNOT(a, b)}, nil
	case "rxx":
		// RXX(θ) = (H⊗H)·RZZ(θ)·(H⊗H).
		inner, err := diagonalWithPhase(gate.RZZ(g.Params[0], 0, 1).Matrix, g.Qubits)
		if err != nil {
			return nil, err
		}
		out := []gate.Gate{gate.H(a), gate.H(b)}
		out = append(out, inner...)
		out = append(out, gate.H(a), gate.H(b))
		return out, nil
	case "ryy":
		// RYY(θ) = (SH ⊗ SH)·RZZ(θ)·(SH ⊗ SH)† with the Y-basis change
		// V = S·H mapping Z ↦ Y (V Z V† = Y).
		inner, err := diagonalWithPhase(gate.RZZ(g.Params[0], 0, 1).Matrix, g.Qubits)
		if err != nil {
			return nil, err
		}
		// Circuit order: V† first, then RZZ, then V: V† = H·Sdg.
		out := []gate.Gate{gate.Sdg(a), gate.H(a), gate.Sdg(b), gate.H(b)}
		out = append(out, inner...)
		out = append(out, gate.H(a), gate.S(a), gate.H(b), gate.S(b))
		return out, nil
	case "iswap":
		// iSWAP = SWAP · CZ · (S⊗S) (circuit order: S⊗S, CZ, SWAP).
		out := []gate.Gate{gate.S(a), gate.S(b)}
		cz, err := diagonalWithPhase(gate.CZ(0, 1).Matrix, g.Qubits)
		if err != nil {
			return nil, err
		}
		out = append(out, cz...)
		out = append(out, gate.CNOT(a, b), gate.CNOT(b, a), gate.CNOT(a, b))
		return out, nil
	case "fsim":
		// fSim(θ, φ) = CPhase(-φ) · R_{XX+YY}(θ) with
		// R_{XX+YY}(θ) = RXX(θ)·RYY(θ) restricted to the single-excitation
		// block — verified exactly in tests. Circuit order: RXX, RYY, CP.
		theta, phi := g.Params[0], g.Params[1]
		rxx := gate.RXX(theta, a, b)
		ryy := gate.RYY(theta, a, b)
		xs, err := transpileTwoQubit(&rxx)
		if err != nil {
			return nil, err
		}
		ys, err := transpileTwoQubit(&ryy)
		if err != nil {
			return nil, err
		}
		out := append(xs, ys...)
		cp, err := diagonalWithPhase(gate.CPhase(-phi, 0, 1).Matrix, g.Qubits)
		if err != nil {
			return nil, err
		}
		return append(out, cp...), nil
	}
	// Controlled structure in either orientation (cheaper than KAK).
	if u, ok := ControlledMatrixOf(g.Matrix, 1e-10); ok {
		return SynthesizeControlled(u, a, b)
	}
	swapped := conjugateBySwap(g.Matrix)
	if u, ok := ControlledMatrixOf(swapped, 1e-10); ok {
		return SynthesizeControlled(u, b, a)
	}
	// Generic dense two-qubit unitary: Cartan decomposition.
	return SynthesizeKAK(g.Matrix, a, b)
}

// diagonalWithPhase synthesizes a diagonal operator including its global
// phase (folded into a P/RZ pair on the first qubit).
func diagonalWithPhase(m *cmat.Matrix, qubits []int) ([]gate.Gate, error) {
	gs, phase, err := SynthesizeDiagonal(m, qubits, 0)
	if err != nil {
		return nil, err
	}
	if math.Abs(phase) > 1e-12 {
		q := qubits[0]
		gs = append(gs, gate.P(2*phase, q), gate.RZ(-2*phase, q))
	}
	return gs, nil
}

// conjugateBySwap returns SWAP·m·SWAP, exchanging the two qubit roles.
func conjugateBySwap(m *cmat.Matrix) *cmat.Matrix {
	sw := gate.SWAP(0, 1).Matrix
	return cmat.Mul(sw, cmat.Mul(m, sw))
}

// CXCount counts the CNOT gates of a circuit — the standard cost metric for
// synthesized networks.
func CXCount(c *circuit.Circuit) int {
	n := 0
	for i := range c.Gates {
		if c.Gates[i].Name == "cx" {
			n++
		}
	}
	return n
}
