package synth

import (
	"fmt"
	"math"
	"math/cmplx"

	"hsfsim/internal/cmat"
	"hsfsim/internal/gate"
)

// SynthesizeDiagonal expands a diagonal k-qubit operator
// diag(e^{iθ_0}, …, e^{iθ_{2^k-1}}) on the given qubits into a CNOT + RZ
// phase network via the Walsh-Hadamard transform of the phase vector: the
// coefficient of every Z-parity term P_S = Π_{q∈S} Z_q becomes one RZ
// rotation on a CNOT parity chain. The residual global phase is returned
// separately (it is unobservable but callers tracking exact matrices apply
// it via a P/RZ pair, cf. ZYZ.GatesWithPhase).
func SynthesizeDiagonal(m *cmat.Matrix, qubits []int, tol float64) ([]gate.Gate, float64, error) {
	k := len(qubits)
	dim := 1 << k
	if m.Rows != dim || m.Cols != dim {
		return nil, 0, fmt.Errorf("synth: diagonal matrix is %dx%d, want %dx%d", m.Rows, m.Cols, dim, dim)
	}
	if tol <= 0 {
		tol = 1e-10
	}
	if !m.IsDiagonal(tol) {
		return nil, 0, fmt.Errorf("synth: matrix is not diagonal")
	}
	thetas := make([]float64, dim)
	for x := 0; x < dim; x++ {
		v := m.At(x, x)
		if d := cmplx.Abs(v) - 1; d > 1e-8 || d < -1e-8 {
			return nil, 0, fmt.Errorf("synth: diagonal entry %d has modulus %g (not unitary)", x, cmplx.Abs(v))
		}
		thetas[x] = cmplx.Phase(v)
	}
	// Walsh coefficients a_S = (1/2^k) Σ_x (-1)^{popcount(S&x)} θ_x, so that
	// θ_x = Σ_S a_S (-1)^{S·x}; the S-term is exp(i a_S P_S).
	coeff := make([]float64, dim)
	for s := 0; s < dim; s++ {
		var sum float64
		for x := 0; x < dim; x++ {
			if parityBits(s&x) == 0 {
				sum += thetas[x]
			} else {
				sum -= thetas[x]
			}
		}
		coeff[s] = sum / float64(dim)
	}

	var out []gate.Gate
	for s := 1; s < dim; s++ {
		if math.Abs(coeff[s]) < tol {
			continue
		}
		// exp(i a P_S) = parity-chain · RZ(-2a) on the chain head · unchain.
		var members []int
		for b := 0; b < k; b++ {
			if s>>b&1 == 1 {
				members = append(members, qubits[b])
			}
		}
		head := members[len(members)-1]
		for i := 0; i+1 < len(members); i++ {
			out = append(out, gate.CNOT(members[i], head))
		}
		out = append(out, gate.RZ(-2*coeff[s], head))
		for i := len(members) - 2; i >= 0; i-- {
			out = append(out, gate.CNOT(members[i], head))
		}
	}
	return out, coeff[0], nil
}

func parityBits(x int) int {
	p := 0
	for x != 0 {
		p ^= x & 1
		x >>= 1
	}
	return p
}
