package synth

import (
	"fmt"
	"math"

	"hsfsim/internal/cmat"
	"hsfsim/internal/gate"
)

// SynthesizeControlled expands a controlled single-qubit gate C-U (control
// c, target t) into single-qubit rotations and CNOTs using the standard ABC
// construction:
//
//	C-U = P(α)_c · A_t · CX(c,t) · B_t · CX(c,t) · C_t
//
// with A·B·C = I and A·X·B·X·C = e^{-iα}·U for the ZYZ angles of U.
func SynthesizeControlled(u *cmat.Matrix, c, t int) ([]gate.Gate, error) {
	z, err := ZYZDecompose(u)
	if err != nil {
		return nil, fmt.Errorf("synth: controlled: %w", err)
	}
	var out []gate.Gate
	// Circuit order: C, CX, B, CX, A, then the control phase.
	// C = Rz((δ-β)/2)
	if d := (z.Delta - z.Beta) / 2; d != 0 {
		out = append(out, gate.RZ(d, t))
	}
	out = append(out, gate.CNOT(c, t))
	// B = Ry(-γ/2) · Rz(-(δ+β)/2)  → circuit order: Rz then Ry.
	if d := -(z.Delta + z.Beta) / 2; d != 0 {
		out = append(out, gate.RZ(d, t))
	}
	if z.Gamma != 0 {
		out = append(out, gate.RY(-z.Gamma/2, t))
	}
	out = append(out, gate.CNOT(c, t))
	// A = Rz(β) · Ry(γ/2) → circuit order: Ry then Rz.
	if z.Gamma != 0 {
		out = append(out, gate.RY(z.Gamma/2, t))
	}
	if z.Beta != 0 {
		out = append(out, gate.RZ(z.Beta, t))
	}
	if z.Alpha != 0 {
		out = append(out, gate.P(z.Alpha, c))
	}
	return out, nil
}

// ControlledMatrixOf extracts U from a 4×4 matrix of the form
// |0><0|⊗I + |1><1|⊗U (control = bit 0, target = bit 1) and reports whether
// the matrix has that structure within tol.
func ControlledMatrixOf(m *cmat.Matrix, tol float64) (*cmat.Matrix, bool) {
	if m.Rows != 4 || m.Cols != 4 {
		return nil, false
	}
	// Basis index = control | target<<1. Control-0 block: indices {0, 2}
	// must act as identity; control-1 block: indices {1, 3} hold U.
	id := [][2]int{{0, 0}, {2, 2}}
	for _, ij := range id {
		if d := m.At(ij[0], ij[1]) - 1; math.Abs(real(d)) > tol || math.Abs(imag(d)) > tol {
			return nil, false
		}
	}
	// All couplings between the blocks and off-identity terms must vanish.
	zero := [][2]int{
		{0, 1}, {0, 2}, {0, 3}, {1, 0}, {1, 2}, {2, 0}, {2, 1}, {2, 3}, {3, 0}, {3, 2},
	}
	for _, ij := range zero {
		v := m.At(ij[0], ij[1])
		if math.Abs(real(v)) > tol || math.Abs(imag(v)) > tol {
			return nil, false
		}
	}
	u := cmat.FromSlice(2, 2, []complex128{
		m.At(1, 1), m.At(1, 3),
		m.At(3, 1), m.At(3, 3),
	})
	if !u.IsUnitary(1e-8) {
		return nil, false
	}
	return u, true
}

// SynthesizeToffoli expands CCX(c1, c2, t) into the textbook 6-CNOT network
// of H, T, and T† gates.
func SynthesizeToffoli(c1, c2, t int) []gate.Gate {
	return []gate.Gate{
		gate.H(t),
		gate.CNOT(c2, t), gate.Tdg(t),
		gate.CNOT(c1, t), gate.T(t),
		gate.CNOT(c2, t), gate.Tdg(t),
		gate.CNOT(c1, t), gate.T(c2), gate.T(t),
		gate.H(t),
		gate.CNOT(c1, c2), gate.T(c1), gate.Tdg(c2),
		gate.CNOT(c1, c2),
	}
}
