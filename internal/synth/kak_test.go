package synth

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hsfsim/internal/circuit"
	"hsfsim/internal/cmat"
	"hsfsim/internal/gate"
)

// randomU4 builds a random two-qubit unitary as a product of library gates
// (dense with overwhelming probability).
func randomU4(rng *rand.Rand) *cmat.Matrix {
	c := circuit.New(2)
	for i := 0; i < 6; i++ {
		c.Append(
			gate.U3(rng.Float64()*3, rng.Float64()*6-3, rng.Float64()*6-3, rng.Intn(2)),
			gate.FSim(rng.Float64()*2, rng.Float64()*2, 0, 1),
		)
	}
	return c.Unitary()
}

func checkKAK(t *testing.T, u *cmat.Matrix, label string) {
	t.Helper()
	r, err := KAK(u)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if d := cmat.MaxAbsDiff(r.Matrix(), u); d > 1e-7 {
		t.Fatalf("%s: KAK reconstruction off by %g", label, d)
	}
	for _, f := range []*cmat.Matrix{r.A1, r.A0, r.B1, r.B0} {
		if !f.IsUnitary(1e-7) {
			t.Fatalf("%s: non-unitary local factor", label)
		}
	}
}

func TestKAKLibraryGates(t *testing.T) {
	cases := map[string]*cmat.Matrix{
		"identity": cmat.Identity(4),
		"cnot":     gate.CNOT(0, 1).Matrix,
		"cz":       gate.CZ(0, 1).Matrix,
		"swap":     gate.SWAP(0, 1).Matrix,
		"iswap":    gate.ISWAP(0, 1).Matrix,
		"fsim":     gate.FSim(0.7, 0.3, 0, 1).Matrix,
		"rzz":      gate.RZZ(0.9, 0, 1).Matrix,
		"rxx":      gate.RXX(-1.2, 0, 1).Matrix,
		"cphase":   gate.CPhase(2.1, 0, 1).Matrix,
		"hxh":      cmat.Kron(gate.H(0).Matrix, gate.SW(0).Matrix),
	}
	for label, u := range cases {
		checkKAK(t, u, label)
	}
}

func TestKAKRandomProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := randomU4(rng)
		r, err := KAK(u)
		if err != nil {
			return false
		}
		return cmat.MaxAbsDiff(r.Matrix(), u) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestKAKRejects(t *testing.T) {
	if _, err := KAK(cmat.Identity(2)); err == nil {
		t.Fatal("wrong size accepted")
	}
	bad := cmat.New(4, 4)
	bad.Set(0, 0, 2)
	if _, err := KAK(bad); err == nil {
		t.Fatal("non-unitary accepted")
	}
}

func TestSynthesizeKAKExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		u := randomU4(rng)
		gs, err := SynthesizeKAK(u, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		c := circuit.New(2)
		c.Append(gs...)
		if d := cmat.MaxAbsDiff(c.Unitary(), u); d > 1e-7 {
			t.Fatalf("trial %d: synthesized network off by %g", trial, d)
		}
		// Basis check.
		for i := range c.Gates {
			g := &c.Gates[i]
			if g.NumQubits() == 2 && g.Name != "cx" {
				t.Fatalf("trial %d: non-CX two-qubit gate %s", trial, g.Name)
			}
		}
	}
}

func TestTranspileFusedBlocksViaKAK(t *testing.T) {
	// A dense fused two-qubit block (previously rejected) now transpiles.
	rng := rand.New(rand.NewSource(12))
	u := randomU4(rng)
	src := circuit.New(2)
	src.Append(gate.New("fused", u, nil, 0, 1))
	out, err := Transpile(src)
	if err != nil {
		t.Fatal(err)
	}
	if d := cmat.MaxAbsDiff(src.Unitary(), out.Unitary()); d > 1e-7 {
		t.Fatalf("fused transpile off by %g", d)
	}
}

func TestKAKCanonicalAnglesConsistent(t *testing.T) {
	// For RZZ(θ) the canonical class is (0, 0, -θ/2) up to local-equivalence
	// symmetries; at minimum the reconstruction must match and Tx/Ty vanish
	// for a diagonal interaction when the local factors are diagonal-free.
	u := gate.RZZ(0.8, 0, 1).Matrix
	r, err := KAK(u)
	if err != nil {
		t.Fatal(err)
	}
	// Weyl-chamber invariant: |Tx|+|Ty|+|Tz| for RZZ(0.8) is 0.4 modulo the
	// chamber symmetries; check the total interaction strength is nonzero
	// and bounded.
	total := math.Abs(r.Tx) + math.Abs(r.Ty) + math.Abs(r.Tz)
	if total < 0.39 || total > 3*math.Pi {
		t.Fatalf("interaction strength %g implausible for RZZ(0.8)", total)
	}
}

func TestEigSymReal(t *testing.T) {
	a := [][]float64{
		{2, 1, 0},
		{1, 2, 0},
		{0, 0, 5},
	}
	vals, vecs, err := cmat.EigSymReal(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, 5}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-10 {
			t.Fatalf("vals = %v, want %v", vals, want)
		}
	}
	// Check A·v = λ·v for each eigenpair.
	for j := 0; j < 3; j++ {
		for i := 0; i < 3; i++ {
			var av float64
			for k := 0; k < 3; k++ {
				av += a[i][k] * vecs[k][j]
			}
			if math.Abs(av-vals[j]*vecs[i][j]) > 1e-9 {
				t.Fatalf("eigenpair %d violated", j)
			}
		}
	}
}

func TestSimDiagSymReal(t *testing.T) {
	// X has a degenerate eigenvalue; Y resolves it.
	x := [][]float64{
		{1, 0, 0},
		{0, 1, 0},
		{0, 0, 2},
	}
	y := [][]float64{
		{0, 1, 0},
		{1, 0, 0},
		{0, 0, 7},
	}
	o, err := cmat.SimDiagSymReal(x, y)
	if err != nil {
		t.Fatal(err)
	}
	// Check OᵀYO diagonal.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i == j {
				continue
			}
			var v float64
			for r := 0; r < 3; r++ {
				var yr float64
				for c := 0; c < 3; c++ {
					yr += y[r][c] * o[c][j]
				}
				v += o[r][i] * yr
			}
			if math.Abs(v) > 1e-9 {
				t.Fatalf("OᵀYO not diagonal at (%d,%d): %g", i, j, v)
			}
		}
	}
}
