// Package synth decomposes gates into the {single-qubit, CNOT} basis:
// ZYZ Euler angles for arbitrary single-qubit unitaries, the ABC
// construction for controlled single-qubit gates, Walsh-Hadamard phase
// networks for arbitrary diagonal operators, and exact expansions of every
// two- and three-qubit gate in the library. Transpile rewrites whole
// circuits, which in particular makes any library circuit expressible in
// the OpenQASM subset.
package synth

import (
	"fmt"
	"math"
	"math/cmplx"

	"hsfsim/internal/cmat"
	"hsfsim/internal/gate"
)

// ZYZ holds the Euler decomposition of a single-qubit unitary:
//
//	U = e^{iAlpha} · Rz(Beta) · Ry(Gamma) · Rz(Delta).
type ZYZ struct {
	Alpha, Beta, Gamma, Delta float64
}

// ZYZDecompose computes the Euler angles of a 2×2 unitary.
func ZYZDecompose(u *cmat.Matrix) (ZYZ, error) {
	if u.Rows != 2 || u.Cols != 2 {
		return ZYZ{}, fmt.Errorf("synth: ZYZ needs a 2x2 matrix, got %dx%d", u.Rows, u.Cols)
	}
	if !u.IsUnitary(1e-9) {
		return ZYZ{}, fmt.Errorf("synth: ZYZ input is not unitary")
	}
	// Make det(U') = 1: U = e^{iα}·U' with α = arg(det U)/2.
	det := u.At(0, 0)*u.At(1, 1) - u.At(0, 1)*u.At(1, 0)
	alpha := cmplx.Phase(det) / 2
	phase := cmplx.Exp(complex(0, -alpha))
	a := phase * u.At(0, 0)
	c := phase * u.At(1, 0)
	// SU(2): U' = [[cos(γ/2)e^{-i(β+δ)/2}, -sin(γ/2)e^{-i(β-δ)/2}],
	//              [sin(γ/2)e^{ i(β-δ)/2},  cos(γ/2)e^{ i(β+δ)/2}]]
	// When |a| ≈ 0 we have |c| ≈ 1 and vice versa, so each phase is read
	// off whichever entry is nonzero; the vanishing entry's phase is free.
	gamma := 2 * math.Atan2(cmplx.Abs(c), cmplx.Abs(a))
	var betaPlusDelta, betaMinusDelta float64
	if cmplx.Abs(a) > 1e-12 {
		betaPlusDelta = -2 * cmplx.Phase(a)
	}
	if cmplx.Abs(c) > 1e-12 {
		betaMinusDelta = 2 * cmplx.Phase(c)
	}
	z := ZYZ{
		Alpha: alpha,
		Beta:  (betaPlusDelta + betaMinusDelta) / 2,
		Gamma: gamma,
		Delta: (betaPlusDelta - betaMinusDelta) / 2,
	}
	return z, nil
}

// Matrix reconstructs the unitary from the Euler angles.
func (z ZYZ) Matrix() *cmat.Matrix {
	rz := func(t float64) *cmat.Matrix {
		return cmat.FromSlice(2, 2, []complex128{
			cmplx.Exp(complex(0, -t/2)), 0,
			0, cmplx.Exp(complex(0, t/2)),
		})
	}
	ry := func(t float64) *cmat.Matrix {
		c, s := math.Cos(t/2), math.Sin(t/2)
		return cmat.FromSlice(2, 2, []complex128{
			complex(c, 0), complex(-s, 0),
			complex(s, 0), complex(c, 0),
		})
	}
	m := cmat.Mul(rz(z.Beta), cmat.Mul(ry(z.Gamma), rz(z.Delta)))
	return cmat.Scale(cmplx.Exp(complex(0, z.Alpha)), m)
}

// Gates returns the ZYZ rotation sequence on qubit q in circuit order
// (Rz(δ) first). The global phase e^{iα} is NOT representable as gates on q
// alone and is returned separately for callers that track it.
func (z ZYZ) Gates(q int) ([]gate.Gate, float64) {
	var out []gate.Gate
	if z.Delta != 0 {
		out = append(out, gate.RZ(z.Delta, q))
	}
	if z.Gamma != 0 {
		out = append(out, gate.RY(z.Gamma, q))
	}
	if z.Beta != 0 {
		out = append(out, gate.RZ(z.Beta, q))
	}
	return out, z.Alpha
}

// GatesWithPhase returns the sequence including the global phase folded into
// a P gate plus an RZ correction: e^{iα} = P(α)·RZ(-α)·... — concretely,
// e^{iα}I = P(2α)·RZ(-2α) up to nothing else, since P(φ)=diag(1,e^{iφ}) and
// RZ(-φ)=diag(e^{iφ/2},e^{-iφ/2}) give diag(e^{iφ/2},e^{iφ/2}).
func (z ZYZ) GatesWithPhase(q int) []gate.Gate {
	gs, alpha := z.Gates(q)
	if alpha != 0 {
		gs = append(gs, gate.P(2*alpha, q), gate.RZ(-2*alpha, q))
	}
	return gs
}
