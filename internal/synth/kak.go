package synth

import (
	"fmt"
	"math"
	"math/cmplx"

	"hsfsim/internal/cmat"
	"hsfsim/internal/gate"
)

// KAKResult is the Cartan decomposition of a two-qubit unitary:
//
//	U = e^{iPhase} · (A1 ⊗ A0) · exp(i(Tx·XX + Ty·YY + Tz·ZZ)) · (B1 ⊗ B0)
//
// with A1/B1 acting on the high matrix bit and A0/B0 on the low one. The
// canonical interaction exponent is realized exactly by the commuting
// rotations RXX(-2Tx)·RYY(-2Ty)·RZZ(-2Tz).
type KAKResult struct {
	Phase          float64
	A1, A0, B1, B0 *cmat.Matrix
	Tx, Ty, Tz     float64
}

// magicBasis is the transformation into the Bell-like "magic" basis, in
// which SU(2)⊗SU(2) becomes SO(4) and XX/YY/ZZ are simultaneously diagonal.
var magicBasis = func() *cmat.Matrix {
	s := complex(1/math.Sqrt2, 0)
	i := complex(0, 1/math.Sqrt2)
	return cmat.FromSlice(4, 4, []complex128{
		s, 0, 0, i,
		0, i, s, 0,
		0, i, -s, 0,
		s, 0, 0, -i,
	})
}()

// KAK computes the Cartan decomposition of a 4×4 unitary.
func KAK(u *cmat.Matrix) (*KAKResult, error) {
	if u.Rows != 4 || u.Cols != 4 {
		return nil, fmt.Errorf("synth: KAK needs a 4x4 matrix")
	}
	if !u.IsUnitary(1e-8) {
		return nil, fmt.Errorf("synth: KAK input is not unitary")
	}
	m := magicBasis
	mh := m.Dagger()
	v := cmat.Mul(mh, cmat.Mul(u, m))

	// P = Vᵀ·V is unitary symmetric: P = O·D·Oᵀ with O ∈ SO(4) and D a
	// diagonal of phases, found by simultaneously diagonalizing Re(P) and
	// Im(P) (they commute).
	p := cmat.Mul(v.Transpose(), v)
	x := make([][]float64, 4)
	y := make([][]float64, 4)
	for i := 0; i < 4; i++ {
		x[i] = make([]float64, 4)
		y[i] = make([]float64, 4)
		for j := 0; j < 4; j++ {
			x[i][j] = real(p.At(i, j))
			y[i][j] = imag(p.At(i, j))
		}
	}
	// Symmetrize against round-off.
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			x[i][j] = (x[i][j] + x[j][i]) / 2
			x[j][i] = x[i][j]
			y[i][j] = (y[i][j] + y[j][i]) / 2
			y[j][i] = y[i][j]
		}
	}
	oCols, err := cmat.SimDiagSymReal(x, y)
	if err != nil {
		return nil, fmt.Errorf("synth: KAK: %w", err)
	}
	o := cmat.New(4, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			o.Set(i, j, complex(oCols[i][j], 0))
		}
	}
	// Ensure det(O) = +1 (flip one column if needed) so K2 = Oᵀ ∈ SO(4).
	if real(det4(o)) < 0 {
		for i := 0; i < 4; i++ {
			o.Set(i, 0, -o.At(i, 0))
		}
	}

	// D = Oᵀ·P·O (diagonal of unit-modulus entries); Δ = D^{1/2}.
	d := cmat.Mul(o.Transpose(), cmat.Mul(p, o))
	thetas := make([]float64, 4)
	for k := 0; k < 4; k++ {
		thetas[k] = cmplx.Phase(d.At(k, k)) / 2
	}
	// K1 = V·O·Δ⁻¹ must land in SO(4); if det(K1) = -1, shift one θ by π.
	k1 := cmat.Mul(v, cmat.Mul(o, deltaInv(thetas)))
	if real(det4(k1)) < 0 {
		thetas[0] += math.Pi
		k1 = cmat.Mul(v, cmat.Mul(o, deltaInv(thetas)))
	}
	k2 := o.Transpose()

	// Back to the computational basis.
	g1 := cmat.Mul(m, cmat.Mul(k1, mh))
	g2 := cmat.Mul(m, cmat.Mul(k2, mh))

	a1, a0, err := kronFactor(g1)
	if err != nil {
		return nil, fmt.Errorf("synth: KAK left factor: %w", err)
	}
	b1, b0, err := kronFactor(g2)
	if err != nil {
		return nil, fmt.Errorf("synth: KAK right factor: %w", err)
	}

	// The canonical part M·Δ·M† equals exp(i(φI + Tx·XX + Ty·YY + Tz·ZZ)):
	// all four generators are diagonal in the magic basis, so solve the 4×4
	// linear system mapping (φ, Tx, Ty, Tz) to the magic-basis phases θ_k.
	phase, tx, ty, tz, err := canonicalAngles(thetas)
	if err != nil {
		return nil, err
	}
	return &KAKResult{Phase: phase, A1: a1, A0: a0, B1: b1, B0: b0, Tx: tx, Ty: ty, Tz: tz}, nil
}

func deltaInv(thetas []float64) *cmat.Matrix {
	dm := cmat.New(4, 4)
	for k := 0; k < 4; k++ {
		dm.Set(k, k, cmplx.Exp(complex(0, -thetas[k])))
	}
	return dm
}

// det4 computes the determinant of a 4×4 complex matrix by cofactor
// expansion on Gaussian elimination.
func det4(m *cmat.Matrix) complex128 {
	a := m.Clone()
	det := complex128(1)
	for col := 0; col < 4; col++ {
		// Pivot.
		pivot := col
		for r := col; r < 4; r++ {
			if cmplx.Abs(a.At(r, col)) > cmplx.Abs(a.At(pivot, col)) {
				pivot = r
			}
		}
		if cmplx.Abs(a.At(pivot, col)) < 1e-14 {
			return 0
		}
		if pivot != col {
			for c := 0; c < 4; c++ {
				tmp := a.At(col, c)
				a.Set(col, c, a.At(pivot, c))
				a.Set(pivot, c, tmp)
			}
			det = -det
		}
		det *= a.At(col, col)
		for r := col + 1; r < 4; r++ {
			f := a.At(r, col) / a.At(col, col)
			for c := col; c < 4; c++ {
				a.Set(r, c, a.At(r, c)-f*a.At(col, c))
			}
		}
	}
	return det
}

// kronFactor splits an exact tensor product G = A⊗B (A on the high bit)
// into its unitary factors via the rank-1 SVD of the reshaped matrix.
func kronFactor(g *cmat.Matrix) (*cmat.Matrix, *cmat.Matrix, error) {
	// R[(ia,ja), (ib,jb)] = G[ia*2+ib, ja*2+jb].
	r := cmat.New(4, 4)
	for ia := 0; ia < 2; ia++ {
		for ja := 0; ja < 2; ja++ {
			for ib := 0; ib < 2; ib++ {
				for jb := 0; jb < 2; jb++ {
					r.Set(ia*2+ja, ib*2+jb, g.At(ia*2+ib, ja*2+jb))
				}
			}
		}
	}
	svd, err := cmat.SVD(r)
	if err != nil {
		return nil, nil, err
	}
	if svd.S[0] < 1e-9 {
		return nil, nil, fmt.Errorf("zero tensor factor")
	}
	if len(svd.S) > 1 && svd.S[1] > 1e-7*svd.S[0] {
		return nil, nil, fmt.Errorf("matrix is not a tensor product (second singular value %g)", svd.S[1])
	}
	s := math.Sqrt(svd.S[0])
	a := cmat.New(2, 2)
	b := cmat.New(2, 2)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			a.Set(i, j, svd.U.At(i*2+j, 0)*complex(s, 0))
			b.Set(i, j, cmplx.Conj(svd.V.At(i*2+j, 0))*complex(s, 0))
		}
	}
	if !a.IsUnitary(1e-7) || !b.IsUnitary(1e-7) {
		return nil, nil, fmt.Errorf("tensor factors are not unitary")
	}
	return a, b, nil
}

// canonicalAngles solves θ_k = φ·1 + Tx·dx_k + Ty·dy_k + Tz·dz_k where the
// d-vectors are the magic-basis diagonals of XX, YY, ZZ. Because θ_k are
// only defined modulo 2π, the residual of the solve is folded back into the
// nearest multiple of π; an inconsistent system is reported.
func canonicalAngles(thetas []float64) (phase, tx, ty, tz float64, err error) {
	xx, yy, zz := magicDiagonals()
	// Build and solve the 4×4 real system with Gaussian elimination.
	a := [4][5]float64{}
	for k := 0; k < 4; k++ {
		a[k][0] = 1
		a[k][1] = xx[k]
		a[k][2] = yy[k]
		a[k][3] = zz[k]
		a[k][4] = thetas[k]
	}
	for col := 0; col < 4; col++ {
		pivot := col
		for r := col; r < 4; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return 0, 0, 0, 0, fmt.Errorf("synth: singular canonical system")
		}
		a[col], a[pivot] = a[pivot], a[col]
		for r := 0; r < 4; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			for c := col; c < 5; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	phase = a[0][4] / a[0][0]
	tx = a[1][4] / a[1][1]
	ty = a[2][4] / a[2][2]
	tz = a[3][4] / a[3][3]
	return phase, tx, ty, tz, nil
}

// magicDiagonals returns the diagonals of M†·(XX|YY|ZZ)·M.
func magicDiagonals() (xx, yy, zz [4]float64) {
	paulis := func(p *cmat.Matrix) [4]float64 {
		full := cmat.Kron(p, p)
		d := cmat.Mul(magicBasis.Dagger(), cmat.Mul(full, magicBasis))
		var out [4]float64
		for k := 0; k < 4; k++ {
			out[k] = real(d.At(k, k))
		}
		return out
	}
	x := cmat.FromSlice(2, 2, []complex128{0, 1, 1, 0})
	y := cmat.FromSlice(2, 2, []complex128{0, -1i, 1i, 0})
	z := cmat.FromSlice(2, 2, []complex128{1, 0, 0, -1})
	return paulis(x), paulis(y), paulis(z)
}

// Matrix reconstructs the unitary from the decomposition.
func (r *KAKResult) Matrix() *cmat.Matrix {
	canon := canonicalMatrix(r.Tx, r.Ty, r.Tz)
	out := cmat.Mul(cmat.Kron(r.A1, r.A0), cmat.Mul(canon, cmat.Kron(r.B1, r.B0)))
	return cmat.Scale(cmplx.Exp(complex(0, r.Phase)), out)
}

// canonicalMatrix computes exp(i(Tx·XX + Ty·YY + Tz·ZZ)) as the product of
// the commuting rotations RXX(-2Tx)·RYY(-2Ty)·RZZ(-2Tz).
func canonicalMatrix(tx, ty, tz float64) *cmat.Matrix {
	rxx := gate.RXX(-2*tx, 0, 1).Matrix
	ryy := gate.RYY(-2*ty, 0, 1).Matrix
	rzz := gate.RZZ(-2*tz, 0, 1).Matrix
	return cmat.Mul(rxx, cmat.Mul(ryy, rzz))
}

// SynthesizeKAK expands an arbitrary two-qubit unitary on qubits (a, b)
// — a the low matrix bit — into single-qubit gates and CNOTs through the
// Cartan decomposition. The construction uses up to 6 CNOTs (two per
// commuting interaction rotation); it favors exactness over CNOT-count
// optimality.
func SynthesizeKAK(u *cmat.Matrix, a, b int) ([]gate.Gate, error) {
	r, err := KAK(u)
	if err != nil {
		return nil, err
	}
	var out []gate.Gate
	appendLocal := func(m *cmat.Matrix, q int) error {
		z, err := ZYZDecompose(m)
		if err != nil {
			return err
		}
		out = append(out, z.GatesWithPhase(q)...)
		return nil
	}
	// Circuit order: B (right factor) first.
	if err := appendLocal(r.B0, a); err != nil {
		return nil, err
	}
	if err := appendLocal(r.B1, b); err != nil {
		return nil, err
	}
	for _, rot := range []gate.Gate{
		gate.RZZ(-2*r.Tz, a, b),
		gate.RYY(-2*r.Ty, a, b),
		gate.RXX(-2*r.Tx, a, b),
	} {
		gs, err := transpileTwoQubit(&rot)
		if err != nil {
			return nil, err
		}
		out = append(out, gs...)
	}
	if err := appendLocal(r.A0, a); err != nil {
		return nil, err
	}
	if err := appendLocal(r.A1, b); err != nil {
		return nil, err
	}
	if r.Phase != 0 {
		out = append(out, gate.P(2*r.Phase, a), gate.RZ(-2*r.Phase, a))
	}
	return out, nil
}
