package synth

import (
	"math"
	"math/rand"
	"testing"

	"hsfsim/internal/circuit"
	"hsfsim/internal/cmat"
	"hsfsim/internal/gate"
)

func TestWeylInvariantKnownClasses(t *testing.T) {
	// CNOT and CZ are locally equivalent (invariant (π/4, 0, 0)); SWAP and
	// iSWAP are in different classes; a product of locals has zero invariant.
	kak := func(m *cmat.Matrix) *KAKResult {
		r, err := KAK(m)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	cnot := kak(gate.CNOT(0, 1).Matrix).Weyl()
	cz := kak(gate.CZ(0, 1).Matrix).Weyl()
	for i := 0; i < 3; i++ {
		if math.Abs(cnot[i]-cz[i]) > 1e-7 {
			t.Fatalf("CNOT %v vs CZ %v invariants differ", cnot, cz)
		}
	}
	if math.Abs(cnot[0]-math.Pi/4) > 1e-7 || cnot[1] > 1e-7 {
		t.Fatalf("CNOT invariant %v, want (π/4, 0, 0)", cnot)
	}
	swap := kak(gate.SWAP(0, 1).Matrix).Weyl()
	if math.Abs(swap[0]-math.Pi/4) > 1e-7 || math.Abs(swap[2]-math.Pi/4) > 1e-7 {
		t.Fatalf("SWAP invariant %v, want (π/4, π/4, π/4)", swap)
	}
	local := kak(cmat.Kron(gate.H(0).Matrix, gate.T(0).Matrix))
	if local.EntanglingPower() {
		t.Fatal("local product reported entangling")
	}
	if !kak(gate.CNOT(0, 1).Matrix).EntanglingPower() {
		t.Fatal("CNOT reported non-entangling")
	}
}

func TestLocallyEquivalent(t *testing.T) {
	eq, err := LocallyEquivalent(gate.CNOT(0, 1).Matrix, gate.CZ(0, 1).Matrix, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("CNOT and CZ must be locally equivalent")
	}
	eq, err = LocallyEquivalent(gate.CNOT(0, 1).Matrix, gate.SWAP(0, 1).Matrix, 0)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("CNOT and SWAP must not be locally equivalent")
	}
}

func TestLocalConjugationPreservesInvariant(t *testing.T) {
	// (A⊗B)·U·(C⊗D) has the same invariant as U, for random locals.
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 8; trial++ {
		u := gate.FSim(0.6, 0.9, 0, 1).Matrix
		c := circuit.New(2)
		c.Append(
			gate.U3(rng.Float64()*3, rng.Float64(), rng.Float64(), 0),
			gate.U3(rng.Float64()*3, rng.Float64(), rng.Float64(), 1),
		)
		pre := c.Unitary()
		c2 := circuit.New(2)
		c2.Append(
			gate.U3(rng.Float64()*3, rng.Float64(), rng.Float64(), 0),
			gate.U3(rng.Float64()*3, rng.Float64(), rng.Float64(), 1),
		)
		post := c2.Unitary()
		conj := cmat.Mul(post, cmat.Mul(u, pre))
		eq, err := LocallyEquivalent(u, conj, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatalf("trial %d: local conjugation changed the invariant", trial)
		}
	}
}
