package synth

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"hsfsim/internal/circuit"
	"hsfsim/internal/cmat"
	"hsfsim/internal/gate"
)

// randomU2 builds a Haar-ish random single-qubit unitary.
func randomU2(rng *rand.Rand) *cmat.Matrix {
	// U = e^{iα} Rz(β)Ry(γ)Rz(δ) with random angles covers U(2).
	z := ZYZ{
		Alpha: rng.Float64()*2*math.Pi - math.Pi,
		Beta:  rng.Float64()*4*math.Pi - 2*math.Pi,
		Gamma: rng.Float64() * math.Pi,
		Delta: rng.Float64()*4*math.Pi - 2*math.Pi,
	}
	return z.Matrix()
}

func TestZYZReconstructsLibraryGates(t *testing.T) {
	for _, g := range []gate.Gate{
		gate.I(0), gate.X(0), gate.Y(0), gate.Z(0), gate.H(0), gate.S(0),
		gate.T(0), gate.SX(0), gate.SY(0), gate.SW(0),
		gate.RX(0.7, 0), gate.RY(-1.1, 0), gate.RZ(2.2, 0), gate.P(0.4, 0),
		gate.U3(0.3, 1.2, -0.5, 0),
	} {
		z, err := ZYZDecompose(g.Matrix)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if !cmat.EqualTol(z.Matrix(), g.Matrix, 1e-9) {
			t.Errorf("%s: ZYZ reconstruction failed", g.Name)
		}
	}
}

func TestZYZPropertyRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := randomU2(rng)
		z, err := ZYZDecompose(u)
		if err != nil {
			return false
		}
		return cmat.EqualTol(z.Matrix(), u, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestZYZRejectsNonUnitary(t *testing.T) {
	if _, err := ZYZDecompose(cmat.FromSlice(2, 2, []complex128{1, 1, 1, 1})); err == nil {
		t.Fatal("non-unitary accepted")
	}
	if _, err := ZYZDecompose(cmat.Identity(4)); err == nil {
		t.Fatal("wrong size accepted")
	}
}

func TestZYZGatesWithPhaseExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		u := randomU2(rng)
		z, err := ZYZDecompose(u)
		if err != nil {
			t.Fatal(err)
		}
		c := circuit.New(1)
		c.Append(z.GatesWithPhase(0)...)
		if !cmat.EqualTol(c.Unitary(), u, 1e-9) {
			t.Fatalf("trial %d: phase-exact gate sequence wrong", trial)
		}
	}
}

func TestSynthesizeControlledExact(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 12; trial++ {
		u := randomU2(rng)
		gs, err := SynthesizeControlled(u, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		c := circuit.New(2)
		c.Append(gs...)
		// Reference: |0><0|⊗I + |1><1|⊗U with control = bit 0.
		want := cmat.New(4, 4)
		want.Set(0, 0, 1)
		want.Set(2, 2, 1)
		want.Set(1, 1, u.At(0, 0))
		want.Set(1, 3, u.At(0, 1))
		want.Set(3, 1, u.At(1, 0))
		want.Set(3, 3, u.At(1, 1))
		if !cmat.EqualTol(c.Unitary(), want, 1e-9) {
			t.Fatalf("trial %d: controlled synthesis wrong", trial)
		}
	}
}

func TestControlledMatrixOf(t *testing.T) {
	u := gate.RZ(0.7, 0).Matrix
	m := cmat.New(4, 4)
	m.Set(0, 0, 1)
	m.Set(2, 2, 1)
	m.Set(1, 1, u.At(0, 0))
	m.Set(3, 3, u.At(1, 1))
	got, ok := ControlledMatrixOf(m, 1e-10)
	if !ok || !cmat.EqualTol(got, u, 1e-10) {
		t.Fatal("controlled structure not recognized")
	}
	if _, ok := ControlledMatrixOf(gate.SWAP(0, 1).Matrix, 1e-10); ok {
		t.Fatal("SWAP misidentified as controlled")
	}
	if _, ok := ControlledMatrixOf(cmat.Identity(2), 1e-10); ok {
		t.Fatal("wrong size accepted")
	}
}

func TestSynthesizeDiagonalExact(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, k := range []int{1, 2, 3} {
		dim := 1 << k
		m := cmat.New(dim, dim)
		for x := 0; x < dim; x++ {
			m.Set(x, x, cmplx.Exp(complex(0, rng.Float64()*2*math.Pi-math.Pi)))
		}
		qs := make([]int, k)
		for i := range qs {
			qs[i] = i
		}
		gs, phase, err := SynthesizeDiagonal(m, qs, 0)
		if err != nil {
			t.Fatal(err)
		}
		c := circuit.New(k)
		c.Append(gs...)
		got := cmat.Scale(cmplx.Exp(complex(0, phase)), c.Unitary())
		if !cmat.EqualTol(got, m, 1e-9) {
			t.Fatalf("k=%d: diagonal synthesis wrong", k)
		}
	}
}

func TestSynthesizeDiagonalRejects(t *testing.T) {
	if _, _, err := SynthesizeDiagonal(gate.H(0).Matrix, []int{0}, 0); err == nil {
		t.Fatal("non-diagonal accepted")
	}
	bad := cmat.New(2, 2)
	bad.Set(0, 0, 2)
	bad.Set(1, 1, 1)
	if _, _, err := SynthesizeDiagonal(bad, []int{0}, 0); err == nil {
		t.Fatal("non-unitary diagonal accepted")
	}
	if _, _, err := SynthesizeDiagonal(cmat.Identity(4), []int{0}, 0); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestSynthesizeToffoliExact(t *testing.T) {
	c := circuit.New(3)
	c.Append(SynthesizeToffoli(0, 1, 2)...)
	want := circuit.New(3)
	want.Append(gate.CCX(0, 1, 2))
	if !cmat.EqualTol(c.Unitary(), want.Unitary(), 1e-9) {
		t.Fatal("Toffoli network wrong")
	}
	if CXCount(c) != 6 {
		t.Fatalf("Toffoli uses %d CNOTs, want 6", CXCount(c))
	}
}

func TestTranspileAllLibraryGates(t *testing.T) {
	src := circuit.New(3)
	src.Append(
		gate.H(0), gate.SW(1), gate.T(2), gate.U3(0.2, 0.9, -0.3, 0),
		gate.CNOT(0, 1), gate.CZ(1, 2), gate.CPhase(0.7, 0, 2),
		gate.RZZ(0.5, 0, 1), gate.RXX(0.8, 1, 2), gate.RYY(-0.6, 0, 2),
		gate.SWAP(0, 2), gate.ISWAP(1, 2), gate.FSim(0.4, 0.9, 0, 1),
		gate.CCX(0, 1, 2), gate.CCZ(0, 1, 2),
	)
	out, err := Transpile(src)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out.Gates {
		g := &out.Gates[i]
		if g.NumQubits() > 2 || (g.NumQubits() == 2 && g.Name != "cx") {
			t.Fatalf("gate %d (%s) outside the {1q, cx} basis", i, g.Name)
		}
	}
	if !cmat.EqualTol(src.Unitary(), out.Unitary(), 1e-8) {
		t.Fatalf("transpile changed the unitary (diff %g)",
			cmat.MaxAbsDiff(src.Unitary(), out.Unitary()))
	}
}

func TestTranspilePropertyRandomCircuits(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(2)
		c := circuit.New(n)
		for i := 0; i < 8; i++ {
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			switch rng.Intn(8) {
			case 0:
				c.Append(gate.H(a))
			case 1:
				c.Append(gate.SW(a))
			case 2:
				c.Append(gate.RZZ(rng.Float64()*3, a, b))
			case 3:
				c.Append(gate.ISWAP(a, b))
			case 4:
				c.Append(gate.FSim(rng.Float64(), rng.Float64(), a, b))
			case 5:
				c.Append(gate.SWAP(a, b))
			case 6:
				c.Append(gate.CPhase(rng.Float64(), a, b))
			default:
				c.Append(gate.RYY(rng.Float64(), a, b))
			}
		}
		out, err := Transpile(c)
		if err != nil {
			return false
		}
		return cmat.EqualTol(c.Unitary(), out.Unitary(), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTranspileControlledOrientation(t *testing.T) {
	// A controlled-RY with the control on the high bit exercises the
	// swapped-orientation path.
	u := gate.RY(0.9, 0).Matrix
	m := cmat.New(4, 4)
	// control = bit 1: identity on indices {0,1}, U on {2,3}.
	m.Set(0, 0, 1)
	m.Set(1, 1, 1)
	m.Set(2, 2, u.At(0, 0))
	m.Set(2, 3, u.At(0, 1))
	m.Set(3, 2, u.At(1, 0))
	m.Set(3, 3, u.At(1, 1))
	g := gate.New("cry", m, nil, 0, 1)
	src := circuit.New(2)
	src.Append(g)
	out, err := Transpile(src)
	if err != nil {
		t.Fatal(err)
	}
	if !cmat.EqualTol(src.Unitary(), out.Unitary(), 1e-9) {
		t.Fatal("swapped-control transpile wrong")
	}
}

func TestTranspileGenericDenseViaKAK(t *testing.T) {
	// A fused 2-qubit block with no controlled/diagonal structure falls
	// through to the Cartan decomposition and still transpiles exactly.
	c := circuit.New(2)
	c.Append(gate.RXX(0.3, 0, 1), gate.H(0))
	u := c.Unitary()
	g := gate.New("fused", u, nil, 0, 1)
	src := circuit.New(2)
	src.Append(g)
	out, err := Transpile(src)
	if err != nil {
		t.Fatal(err)
	}
	if d := cmat.MaxAbsDiff(src.Unitary(), out.Unitary()); d > 1e-7 {
		t.Fatalf("dense transpile off by %g", d)
	}
}

func TestRZZTranspilesToTwoCNOTs(t *testing.T) {
	src := circuit.New(2)
	src.Append(gate.RZZ(0.7, 0, 1))
	out, err := Transpile(src)
	if err != nil {
		t.Fatal(err)
	}
	if CXCount(out) != 2 {
		t.Fatalf("RZZ uses %d CNOTs, want 2", CXCount(out))
	}
}
