package synth

import (
	"math"

	"hsfsim/internal/cmat"
)

// WeylInvariant characterizes a two-qubit gate up to single-qubit (local)
// operations: the sorted absolute interaction coefficients folded into the
// fundamental region. Two gates with equal invariants are locally
// equivalent (interconvertible with single-qubit gates alone).
type WeylInvariant [3]float64

// weylFold maps an interaction coefficient into [0, π/4] using the
// symmetries t ↦ t + π/2 and t ↦ -t of the canonical class.
func weylFold(t float64) float64 {
	t = math.Mod(t, math.Pi/2)
	if t < 0 {
		t += math.Pi / 2
	}
	if t > math.Pi/4 {
		t = math.Pi/2 - t
	}
	return t
}

// Weyl returns the local-equivalence invariant of the decomposition: the
// folded coefficients sorted descending.
func (r *KAKResult) Weyl() WeylInvariant {
	w := WeylInvariant{weylFold(r.Tx), weylFold(r.Ty), weylFold(r.Tz)}
	// Sort descending (3 elements).
	if w[0] < w[1] {
		w[0], w[1] = w[1], w[0]
	}
	if w[1] < w[2] {
		w[1], w[2] = w[2], w[1]
	}
	if w[0] < w[1] {
		w[0], w[1] = w[1], w[0]
	}
	return w
}

// LocallyEquivalent reports whether two two-qubit unitaries differ only by
// single-qubit gates (and global phase), by comparing Weyl invariants.
func LocallyEquivalent(u, v *cmat.Matrix, tol float64) (bool, error) {
	if tol <= 0 {
		tol = 1e-6
	}
	ru, err := KAK(u)
	if err != nil {
		return false, err
	}
	rv, err := KAK(v)
	if err != nil {
		return false, err
	}
	wu, wv := ru.Weyl(), rv.Weyl()
	for i := 0; i < 3; i++ {
		if math.Abs(wu[i]-wv[i]) > tol {
			return false, nil
		}
	}
	return true, nil
}

// EntanglingPower reports whether the gate can create entanglement from
// some product state: true unless the Weyl invariant vanishes (the gate is
// a product of single-qubit gates).
func (r *KAKResult) EntanglingPower() bool {
	w := r.Weyl()
	return w[0] > 1e-9
}
