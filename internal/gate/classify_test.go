package gate

import (
	"math/cmplx"
	"testing"

	"hsfsim/internal/cmat"
)

// TestClassificationAudit walks every library constructor and asserts the
// kernel classification lattice: the dispatch class (Class) plus the raw
// flags it derives from. A gate may satisfy several structures at once — CZ
// is simultaneously diagonal, controlled on both bits, and a
// phase-permutation — so the table pins the flags, not just the winner.
func TestClassificationAudit(t *testing.T) {
	type want struct {
		class    Kind
		controls int  // expected Controls bitmask
		perm     bool // Perm != nil
		pure     bool // Perm != nil && PermPhase == nil
	}
	cases := []struct {
		g Gate
		w want
	}{
		// Single-qubit.
		{I(0), want{class: KindDiagonal, controls: 1, perm: true, pure: true}},
		{X(0), want{class: KindPermutation, perm: true, pure: true}},
		{Y(0), want{class: KindPhasePermutation, perm: true}},
		{Z(0), want{class: KindDiagonal, controls: 1, perm: true}},
		{H(0), want{class: KindDense}},
		{S(0), want{class: KindDiagonal, controls: 1, perm: true}},
		{Sdg(0), want{class: KindDiagonal, controls: 1, perm: true}},
		{T(0), want{class: KindDiagonal, controls: 1, perm: true}},
		{Tdg(0), want{class: KindDiagonal, controls: 1, perm: true}},
		{SX(0), want{class: KindDense}},
		{SY(0), want{class: KindDense}},
		{SW(0), want{class: KindDense}},
		{RX(0.7, 0), want{class: KindDense}},
		{RY(0.7, 0), want{class: KindDense}},
		{RZ(0.7, 0), want{class: KindDiagonal, perm: true}}, // no identity entry: not a control
		{P(0.7, 0), want{class: KindDiagonal, controls: 1, perm: true}},
		{U3(0.3, 0.4, 0.5, 0), want{class: KindDense}},
		// Two-qubit.
		{CNOT(0, 1), want{class: KindPermutation, controls: 1, perm: true, pure: true}},
		{CZ(0, 1), want{class: KindDiagonal, controls: 3, perm: true}},
		{CPhase(0.4, 0, 1), want{class: KindDiagonal, controls: 3, perm: true}},
		{SWAP(0, 1), want{class: KindPermutation, perm: true, pure: true}},
		{ISWAP(0, 1), want{class: KindPhasePermutation, perm: true}},
		{RZZ(0.4, 0, 1), want{class: KindDiagonal, perm: true}},
		{RXX(0.4, 0, 1), want{class: KindDense}},
		{RYY(0.4, 0, 1), want{class: KindDense}},
		{FSim(0.4, 0.2, 0, 1), want{class: KindDense}},
		{CRX(0.4, 0, 1), want{class: KindControlled, controls: 1}},
		{CRY(0.4, 0, 1), want{class: KindControlled, controls: 1}},
		{CRZ(0.4, 0, 1), want{class: KindDiagonal, controls: 1, perm: true}},
		// Three-qubit.
		{CCX(0, 1, 2), want{class: KindPermutation, controls: 3, perm: true, pure: true}},
		{CCZ(0, 1, 2), want{class: KindDiagonal, controls: 7, perm: true}},
	}
	for _, c := range cases {
		g := c.g
		if got := g.Class(); got != c.w.class {
			t.Errorf("%s: class %v, want %v", g.Name, got, c.w.class)
		}
		if g.Controls != c.w.controls {
			t.Errorf("%s: controls %04b, want %04b", g.Name, g.Controls, c.w.controls)
		}
		if (g.Perm != nil) != c.w.perm {
			t.Errorf("%s: perm presence %v, want %v", g.Name, g.Perm != nil, c.w.perm)
		}
		if c.w.perm && (g.PermPhase == nil) != c.w.pure {
			t.Errorf("%s: pure-permutation %v, want %v", g.Name, g.PermPhase == nil, c.w.pure)
		}
	}
}

// TestPermConsistency checks that the recorded permutation reproduces the
// matrix exactly: column c has its single nonzero at row Perm[c] with value
// PermPhase[c] (1 when PermPhase is nil).
func TestPermConsistency(t *testing.T) {
	for _, g := range []Gate{X(0), Y(0), Z(0), CNOT(0, 1), SWAP(0, 1), ISWAP(0, 1), CCX(0, 1, 2), CZ(0, 1)} {
		if g.Perm == nil {
			t.Fatalf("%s: expected permutation structure", g.Name)
		}
		dim := g.Matrix.Rows
		for c := 0; c < dim; c++ {
			ph := complex128(1)
			if g.PermPhase != nil {
				ph = g.PermPhase[c]
			}
			for r := 0; r < dim; r++ {
				want := complex128(0)
				if r == g.Perm[c] {
					want = ph
				}
				if cmplx.Abs(g.Matrix.At(r, c)-want) > 1e-14 {
					t.Fatalf("%s: entry (%d,%d) = %v, want %v", g.Name, r, c, g.Matrix.At(r, c), want)
				}
			}
		}
	}
}

// TestRemapPreservesClassification: the flags live in matrix-index space, so
// relabeling qubits must carry them over verbatim.
func TestRemapPreservesClassification(t *testing.T) {
	for _, g := range []Gate{CNOT(2, 5), CRX(0.3, 1, 4), CCZ(0, 3, 6), ISWAP(2, 7)} {
		r := g.Remap(func(q int) int { return q + 10 })
		if r.Class() != g.Class() || r.Controls != g.Controls || (r.Perm == nil) != (g.Perm == nil) {
			t.Errorf("%s: remap changed classification (%v→%v)", g.Name, g.Class(), r.Class())
		}
	}
}

// TestDaggerRecomputesClassification: the adjoint of a permutation is the
// inverse permutation with conjugated phases; diagonality and controls are
// preserved; and a dense gate stays dense.
func TestDaggerRecomputesClassification(t *testing.T) {
	g := ISWAP(0, 1)
	d := g.Dagger()
	if d.Class() != KindPhasePermutation {
		t.Fatalf("iswap†: class %v", d.Class())
	}
	for c := 0; c < 4; c++ {
		if d.Perm[g.Perm[c]] != c {
			t.Fatalf("iswap†: permutation not inverted")
		}
	}
	if d.PermPhase[g.Perm[0]] != cmplx.Conj(g.PermPhase[0]) {
		t.Fatalf("iswap†: phases not conjugated")
	}
	crx := CRX(0.9, 0, 1)
	dcrx := crx.Dagger()
	if dcrx.Class() != KindControlled || dcrx.Controls != 1 {
		t.Fatalf("crx†: class %v controls %b", dcrx.Class(), dcrx.Controls)
	}
	hg := H(0)
	if h := hg.Dagger(); h.Class() != KindDense {
		t.Fatalf("h†: class %v", h.Class())
	}
	sg := S(0)
	if s := sg.Dagger(); s.Class() != KindDiagonal || s.Controls != 1 {
		t.Fatalf("s†: class %v", s.Class())
	}
}

// TestReclassifyAfterMatrixMutation: mutating the matrix in place and
// reclassifying must refresh every flag and drop the kernel cache.
func TestReclassifyAfterMatrixMutation(t *testing.T) {
	g := Z(0) // diagonal
	g.SetKernelCache("stale")
	g.Matrix = cmat.FromSlice(2, 2, []complex128{0, 1, 1, 0}) // now X
	g.Reclassify()
	if g.Class() != KindPermutation || g.Diagonal || g.PermPhase != nil {
		t.Fatalf("reclassify: class %v diagonal %v", g.Class(), g.Diagonal)
	}
	if g.KernelCache() != nil {
		t.Fatal("reclassify kept a stale kernel cache")
	}
}

// TestClassificationRejectsNearMisses: matrices one entry away from a
// structure must fall back to the safe class.
func TestClassificationRejectsNearMisses(t *testing.T) {
	// A "controlled" matrix whose control-0 row couples into the control-1
	// block: columns look like identity but rows do not.
	m := cmat.Identity(4)
	m.Set(0, 3, 0.5)
	g := New("bad-ctrl", m, nil, 0, 1)
	if g.Controls&1 != 0 {
		t.Fatal("bit 0 flagged as control despite row coupling")
	}
	// Two nonzeros in one column: not a permutation.
	m2 := cmat.New(2, 2)
	m2.Set(0, 0, 1)
	m2.Set(1, 0, 1e-3)
	m2.Set(1, 1, 1)
	g2 := New("bad-perm", m2, nil, 0)
	if g2.Perm != nil {
		t.Fatal("near-diagonal matrix classified as permutation")
	}
	// A zero column: not a permutation either (projector).
	m3 := cmat.New(2, 2)
	m3.Set(0, 0, 1)
	g3 := New("proj", m3, nil, 0)
	if g3.Perm != nil {
		t.Fatal("projector classified as permutation")
	}
	if !g3.Diagonal {
		t.Fatal("projector should still be diagonal")
	}
}
