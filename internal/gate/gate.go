// Package gate defines the quantum gate library used throughout the
// simulator: a Gate couples a unitary matrix with the circuit qubits it acts
// on and bookkeeping (name, parameters, diagonality) needed by the cut
// planner and the fusion pass.
//
// Bit convention: Qubits[k] supplies bit k of the matrix index, i.e.
// Qubits[0] is the least significant bit. A gate on qubits [c, t] therefore
// has a 4×4 matrix indexed by (t<<1 | c).
package gate

import (
	"fmt"
	"math/cmplx"
	"strings"

	"hsfsim/internal/cmat"
)

// Gate is a k-qubit operation. The matrix is 2^k × 2^k with k = len(Qubits).
// Gates need not be unitary: the Schmidt-decomposed cut terms produced by HSF
// simulation (e.g. the projectors of a CNOT decomposition) reuse this type.
type Gate struct {
	// Name identifies the gate family (e.g. "h", "rzz", "fused", "cut-term").
	Name string
	// Qubits lists the circuit qubits the gate acts on; Qubits[k] is bit k of
	// the matrix index.
	Qubits []int
	// Params holds gate parameters (rotation angles), if any.
	Params []float64
	// Matrix is the 2^k×2^k operator in the bit convention above.
	Matrix *cmat.Matrix
	// Diagonal records that Matrix is diagonal, enabling cheap commutation
	// checks and faster application.
	Diagonal bool

	// kernel caches a simulator-kernel precomputation for this gate (see
	// statevec.PrepareGate). It must be attached before the gate is shared
	// across goroutines — attachment is not synchronized — and is dropped by
	// Clone/Remap because it may depend on the qubit labels.
	kernel any
}

// KernelCache returns the precomputation attached with SetKernelCache, or nil.
func (g *Gate) KernelCache() any { return g.kernel }

// SetKernelCache attaches a simulator-kernel precomputation to the gate. Call
// it only while the gate is still owned by a single goroutine.
func (g *Gate) SetKernelCache(v any) { g.kernel = v }

// NumQubits returns the number of qubits the gate acts on.
func (g *Gate) NumQubits() int { return len(g.Qubits) }

// Validate checks internal consistency: matching matrix size, distinct
// qubits, and non-negative indices.
func (g *Gate) Validate() error {
	k := len(g.Qubits)
	if k == 0 {
		return fmt.Errorf("gate %q: no qubits", g.Name)
	}
	dim := 1 << k
	if g.Matrix == nil || g.Matrix.Rows != dim || g.Matrix.Cols != dim {
		return fmt.Errorf("gate %q: matrix is not %dx%d", g.Name, dim, dim)
	}
	seen := make(map[int]bool, k)
	for _, q := range g.Qubits {
		if q < 0 {
			return fmt.Errorf("gate %q: negative qubit %d", g.Name, q)
		}
		if seen[q] {
			return fmt.Errorf("gate %q: duplicate qubit %d", g.Name, q)
		}
		seen[q] = true
	}
	return nil
}

// MaxQubit returns the largest qubit index the gate touches.
func (g *Gate) MaxQubit() int {
	m := 0
	for _, q := range g.Qubits {
		if q > m {
			m = q
		}
	}
	return m
}

// Touches reports whether the gate acts on qubit q.
func (g *Gate) Touches(q int) bool {
	for _, x := range g.Qubits {
		if x == q {
			return true
		}
	}
	return false
}

// SharesQubit reports whether g and h act on at least one common qubit.
func (g *Gate) SharesQubit(h *Gate) bool {
	for _, q := range g.Qubits {
		if h.Touches(q) {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the gate.
func (g *Gate) Clone() Gate {
	c := Gate{
		Name:     g.Name,
		Qubits:   append([]int(nil), g.Qubits...),
		Diagonal: g.Diagonal,
		Matrix:   g.Matrix.Clone(),
	}
	if g.Params != nil {
		c.Params = append([]float64(nil), g.Params...)
	}
	return c
}

// Remap returns a copy of the gate with each qubit q replaced by f(q).
// Used when extracting partition-local subcircuits in HSF simulation.
func (g *Gate) Remap(f func(int) int) Gate {
	c := g.Clone()
	for i, q := range c.Qubits {
		c.Qubits[i] = f(q)
	}
	return c
}

// IsUnitary reports whether the gate matrix is unitary within tol.
func (g *Gate) IsUnitary(tol float64) bool { return g.Matrix.IsUnitary(tol) }

// String renders a compact description like "rzz(0.500)[2 5]".
func (g Gate) String() string {
	var sb strings.Builder
	sb.WriteString(g.Name)
	if len(g.Params) > 0 {
		sb.WriteString("(")
		for i, p := range g.Params {
			if i > 0 {
				sb.WriteString(",")
			}
			fmt.Fprintf(&sb, "%.3f", p)
		}
		sb.WriteString(")")
	}
	fmt.Fprintf(&sb, "%v", g.Qubits)
	return sb.String()
}

// checkDiagonal computes the Diagonal flag from the matrix.
func checkDiagonal(m *cmat.Matrix) bool {
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if i != j && cmplx.Abs(m.At(i, j)) > 1e-14 {
				return false
			}
		}
	}
	return true
}

// New builds a gate from an explicit matrix, computing the diagonal flag.
func New(name string, matrix *cmat.Matrix, params []float64, qubits ...int) Gate {
	return Gate{
		Name:     name,
		Qubits:   qubits,
		Params:   params,
		Matrix:   matrix,
		Diagonal: checkDiagonal(matrix),
	}
}
