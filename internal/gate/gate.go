// Package gate defines the quantum gate library used throughout the
// simulator: a Gate couples a unitary matrix with the circuit qubits it acts
// on and bookkeeping (name, parameters, diagonality) needed by the cut
// planner and the fusion pass.
//
// Bit convention: Qubits[k] supplies bit k of the matrix index, i.e.
// Qubits[0] is the least significant bit. A gate on qubits [c, t] therefore
// has a 4×4 matrix indexed by (t<<1 | c).
package gate

import (
	"fmt"
	"math/cmplx"
	"strings"

	"hsfsim/internal/cmat"
)

// Gate is a k-qubit operation. The matrix is 2^k × 2^k with k = len(Qubits).
// Gates need not be unitary: the Schmidt-decomposed cut terms produced by HSF
// simulation (e.g. the projectors of a CNOT decomposition) reuse this type.
type Gate struct {
	// Name identifies the gate family (e.g. "h", "rzz", "fused", "cut-term").
	Name string
	// Qubits lists the circuit qubits the gate acts on; Qubits[k] is bit k of
	// the matrix index.
	Qubits []int
	// Params holds gate parameters (rotation angles), if any.
	Params []float64
	// Matrix is the 2^k×2^k operator in the bit convention above.
	Matrix *cmat.Matrix
	// Diagonal records that Matrix is diagonal, enabling cheap commutation
	// checks and faster application.
	Diagonal bool

	// Perm, when non-nil, records that Matrix is a (phase-)permutation:
	// exactly one nonzero entry per row and column, so column c maps basis
	// state |c> to PermPhase[c]·|Perm[c]> and the simulator can move
	// amplitudes instead of running a matvec. Like Diagonal it lives in
	// matrix-index space, so it is independent of qubit labels and survives
	// Clone/Remap unchanged.
	Perm []int
	// PermPhase holds the nonzero entry of each column when Perm is non-nil
	// and at least one entry differs from 1. A pure permutation (X, CNOT,
	// CCX, SWAP) has PermPhase == nil, letting kernels skip the multiply.
	PermPhase []complex128
	// Controls is a bitmask of matrix bit positions b on which the gate acts
	// as a control: the operator is the identity on the subspace where bit b
	// is 0 (both the columns and the rows of that subspace match the
	// identity). Kernels iterate only the control-satisfied amplitudes.
	Controls int

	// kernel caches a simulator-kernel precomputation for this gate (see
	// statevec.PrepareGate). It must be attached before the gate is shared
	// across goroutines — attachment is not synchronized — and is dropped by
	// Clone/Remap because it may depend on the qubit labels.
	kernel any
}

// KernelCache returns the precomputation attached with SetKernelCache, or nil.
func (g *Gate) KernelCache() any { return g.kernel }

// SetKernelCache attaches a simulator-kernel precomputation to the gate. Call
// it only while the gate is still owned by a single goroutine.
func (g *Gate) SetKernelCache(v any) { g.kernel = v }

// NumQubits returns the number of qubits the gate acts on.
func (g *Gate) NumQubits() int { return len(g.Qubits) }

// Validate checks internal consistency: matching matrix size, distinct
// qubits, and non-negative indices.
func (g *Gate) Validate() error {
	k := len(g.Qubits)
	if k == 0 {
		return fmt.Errorf("gate %q: no qubits", g.Name)
	}
	dim := 1 << k
	if g.Matrix == nil || g.Matrix.Rows != dim || g.Matrix.Cols != dim {
		return fmt.Errorf("gate %q: matrix is not %dx%d", g.Name, dim, dim)
	}
	seen := make(map[int]bool, k)
	for _, q := range g.Qubits {
		if q < 0 {
			return fmt.Errorf("gate %q: negative qubit %d", g.Name, q)
		}
		if seen[q] {
			return fmt.Errorf("gate %q: duplicate qubit %d", g.Name, q)
		}
		seen[q] = true
	}
	return nil
}

// MaxQubit returns the largest qubit index the gate touches.
func (g *Gate) MaxQubit() int {
	m := 0
	for _, q := range g.Qubits {
		if q > m {
			m = q
		}
	}
	return m
}

// Touches reports whether the gate acts on qubit q.
func (g *Gate) Touches(q int) bool {
	for _, x := range g.Qubits {
		if x == q {
			return true
		}
	}
	return false
}

// SharesQubit reports whether g and h act on at least one common qubit.
func (g *Gate) SharesQubit(h *Gate) bool {
	for _, q := range g.Qubits {
		if h.Touches(q) {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the gate.
func (g *Gate) Clone() Gate {
	c := Gate{
		Name:     g.Name,
		Qubits:   append([]int(nil), g.Qubits...),
		Diagonal: g.Diagonal,
		Controls: g.Controls,
		Matrix:   g.Matrix.Clone(),
	}
	if g.Params != nil {
		c.Params = append([]float64(nil), g.Params...)
	}
	if g.Perm != nil {
		c.Perm = append([]int(nil), g.Perm...)
	}
	if g.PermPhase != nil {
		c.PermPhase = append([]complex128(nil), g.PermPhase...)
	}
	return c
}

// Remap returns a copy of the gate with each qubit q replaced by f(q).
// Used when extracting partition-local subcircuits in HSF simulation.
func (g *Gate) Remap(f func(int) int) Gate {
	c := g.Clone()
	for i, q := range c.Qubits {
		c.Qubits[i] = f(q)
	}
	return c
}

// Dagger returns the adjoint gate: the conjugate-transposed matrix with the
// kernel classification recomputed (a permutation inverts and its phases
// conjugate; diagonality and the control mask are preserved, but recomputing
// from the new matrix keeps the flags trustworthy by construction).
func (g *Gate) Dagger() Gate {
	c := g.Clone()
	c.Matrix = c.Matrix.Dagger()
	c.Reclassify()
	return c
}

// Reclassify recomputes Diagonal, Perm, PermPhase, and Controls from the
// current matrix and drops any attached kernel cache. Call it after mutating
// Matrix in place; constructors going through New never need it.
func (g *Gate) Reclassify() {
	g.Diagonal = checkDiagonal(g.Matrix)
	g.Perm, g.PermPhase = checkPermutation(g.Matrix)
	g.Controls = checkControls(g.Matrix)
	g.kernel = nil
}

// IsUnitary reports whether the gate matrix is unitary within tol.
func (g *Gate) IsUnitary(tol float64) bool { return g.Matrix.IsUnitary(tol) }

// Kind names the most specific simulator kernel class the gate's matrix
// structure admits; see Class.
type Kind int

const (
	// KindDense is the fallback: a full k-qubit matvec.
	KindDense Kind = iota
	// KindDiagonal multiplies each amplitude by a diagonal entry (CZ, RZZ,
	// CCZ, CRZ). Gates that are also controlled (nontrivial Controls mask)
	// touch only the control-satisfied amplitudes.
	KindDiagonal
	// KindPermutation moves amplitudes without arithmetic (X, CNOT, CCX,
	// SWAP).
	KindPermutation
	// KindPhasePermutation moves amplitudes with one multiply per move
	// (ISWAP, Y).
	KindPhasePermutation
	// KindControlled applies a dense sub-matrix on the non-control qubits,
	// iterating only the control-satisfied subspace (CRX, CRY, controlled-U).
	KindControlled
)

func (k Kind) String() string {
	switch k {
	case KindDiagonal:
		return "diagonal"
	case KindPermutation:
		return "permutation"
	case KindPhasePermutation:
		return "phase-permutation"
	case KindControlled:
		return "controlled"
	}
	return "dense"
}

// Class reports the kernel class the classification flags select, in
// dispatch priority order: diagonal beats permutation beats controlled beats
// dense. A gate may satisfy several structures at once (CZ is diagonal,
// controlled, and a phase-permutation); Class names the one the simulator's
// cheapest kernel uses.
func (g *Gate) Class() Kind {
	switch {
	case g.Diagonal:
		return KindDiagonal
	case g.Perm != nil && g.PermPhase == nil:
		return KindPermutation
	case g.Perm != nil:
		return KindPhasePermutation
	case g.Controls != 0:
		return KindControlled
	}
	return KindDense
}

// String renders a compact description like "rzz(0.500)[2 5]".
func (g Gate) String() string {
	var sb strings.Builder
	sb.WriteString(g.Name)
	if len(g.Params) > 0 {
		sb.WriteString("(")
		for i, p := range g.Params {
			if i > 0 {
				sb.WriteString(",")
			}
			fmt.Fprintf(&sb, "%.3f", p)
		}
		sb.WriteString(")")
	}
	fmt.Fprintf(&sb, "%v", g.Qubits)
	return sb.String()
}

// classifyTol is the entry threshold below which classification treats a
// matrix element as zero (and within which it treats an element as 1). It
// matches the tolerance the diagonal flag has always used, so specialized
// kernels drop exactly the entries the diagonal kernel already dropped.
const classifyTol = 1e-14

// checkDiagonal computes the Diagonal flag from the matrix.
func checkDiagonal(m *cmat.Matrix) bool {
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if i != j && cmplx.Abs(m.At(i, j)) > classifyTol {
				return false
			}
		}
	}
	return true
}

// checkPermutation detects a (phase-)permutation matrix: exactly one nonzero
// per column landing on pairwise-distinct rows. It returns the column→row map
// and, when any nonzero differs from exactly 1, the per-column values.
func checkPermutation(m *cmat.Matrix) ([]int, []complex128) {
	n := m.Rows
	perm := make([]int, n)
	phase := make([]complex128, n)
	rowUsed := make([]bool, n)
	pure := true
	for c := 0; c < n; c++ {
		found := -1
		for r := 0; r < n; r++ {
			if cmplx.Abs(m.At(r, c)) > classifyTol {
				if found >= 0 {
					return nil, nil
				}
				found = r
			}
		}
		if found < 0 || rowUsed[found] {
			return nil, nil
		}
		rowUsed[found] = true
		perm[c] = found
		v := m.At(found, c)
		phase[c] = v
		if v != 1 {
			pure = false
		}
	}
	if pure {
		phase = nil
	}
	return perm, phase
}

// checkControls returns the bitmask of matrix bit positions b on which the
// gate is a control: every row and column whose bit b is 0 must match the
// identity, so the operator leaves the bit-b=0 subspace untouched and never
// couples into it.
func checkControls(m *cmat.Matrix) int {
	n := m.Rows
	k := 0
	for 1<<k < n {
		k++
	}
	mask := 0
	for b := 0; b < k; b++ {
		bit := 1 << b
		ok := true
	scan:
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				if r&bit != 0 && c&bit != 0 {
					continue // both in the control-on block: unconstrained
				}
				want := complex128(0)
				if r == c {
					want = 1
				}
				if cmplx.Abs(m.At(r, c)-want) > classifyTol {
					ok = false
					break scan
				}
			}
		}
		if ok {
			mask |= bit
		}
	}
	return mask
}

// New builds a gate from an explicit matrix, computing the kernel
// classification (diagonal flag, permutation structure, control mask).
func New(name string, matrix *cmat.Matrix, params []float64, qubits ...int) Gate {
	g := Gate{
		Name:   name,
		Qubits: qubits,
		Params: params,
		Matrix: matrix,
	}
	g.Reclassify()
	return g
}
