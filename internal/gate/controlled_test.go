package gate

import (
	"math/cmplx"
	"testing"

	"hsfsim/internal/cmat"
)

func TestControlledRotationsUnitary(t *testing.T) {
	for _, g := range []Gate{CRX(0.7, 0, 1), CRY(-1.1, 0, 1), CRZ(2.3, 0, 1)} {
		if !g.IsUnitary(1e-12) {
			t.Errorf("%s not unitary", g.Name)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
	}
}

func TestControlledRotationBlockStructure(t *testing.T) {
	theta := 0.9
	g := CRX(theta, 0, 1)
	u := RX(theta, 0).Matrix
	// Control off (bit 0 = 0): identity on indices {0, 2}.
	if cmplx.Abs(g.Matrix.At(0, 0)-1) > 1e-12 || cmplx.Abs(g.Matrix.At(2, 2)-1) > 1e-12 {
		t.Fatal("control-off block not identity")
	}
	// Control on: U on indices {1, 3}.
	if cmplx.Abs(g.Matrix.At(1, 1)-u.At(0, 0)) > 1e-12 ||
		cmplx.Abs(g.Matrix.At(1, 3)-u.At(0, 1)) > 1e-12 ||
		cmplx.Abs(g.Matrix.At(3, 3)-u.At(1, 1)) > 1e-12 {
		t.Fatal("control-on block wrong")
	}
}

func TestCRZIsDiagonal(t *testing.T) {
	if !CRZ(0.4, 0, 1).Diagonal {
		t.Fatal("CRZ should be diagonal")
	}
	if CRX(0.4, 0, 1).Diagonal {
		t.Fatal("CRX should not be diagonal")
	}
}

func TestCRZRelatesToCPhase(t *testing.T) {
	// CRZ(θ) = e^{-iθ/4}-twisted CPhase: CP(θ) = e^{iθ/2}·CRZ(θ) on the
	// control-on block; verify via matrix identity CP(θ) = P(θ/2)_c · CRZ(θ).
	theta := 1.3
	crz := CRZ(theta, 0, 1).Matrix
	pc := cmat.Kron(cmat.Identity(2), P(theta/2, 0).Matrix) // P on control=bit0
	got := cmat.Mul(pc, crz)
	want := CPhase(theta, 0, 1).Matrix
	if !cmat.EqualTol(got, want, 1e-12) {
		t.Fatal("P(θ/2)_c · CRZ(θ) != CP(θ)")
	}
}
