package gate

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"hsfsim/internal/cmat"
)

const tol = 1e-12

// allUnitaryGates builds one instance of every unitary gate in the library.
func allUnitaryGates() []Gate {
	return []Gate{
		I(0), X(0), Y(0), Z(0), H(0), S(0), Sdg(0), T(0), Tdg(0),
		SX(0), SY(0), SW(0),
		RX(0.7, 0), RY(1.3, 0), RZ(-0.4, 0), P(2.1, 0), U3(0.3, 1.1, -0.8, 0),
		CNOT(0, 1), CZ(0, 1), CPhase(0.9, 0, 1), SWAP(0, 1), ISWAP(0, 1),
		RZZ(0.5, 0, 1), RXX(0.8, 0, 1), RYY(-1.2, 0, 1), FSim(0.5, 0.3, 0, 1),
		CCX(0, 1, 2), CCZ(0, 1, 2),
	}
}

func TestAllGatesUnitary(t *testing.T) {
	for _, g := range allUnitaryGates() {
		if !g.IsUnitary(tol) {
			t.Errorf("%s is not unitary", g.Name)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
	}
}

func TestPauliAlgebra(t *testing.T) {
	x, y, z := X(0).Matrix, Y(0).Matrix, Z(0).Matrix
	// XY = iZ
	if !cmat.EqualTol(cmat.Mul(x, y), cmat.Scale(1i, z), tol) {
		t.Error("XY != iZ")
	}
	// X² = Y² = Z² = I
	id := cmat.Identity(2)
	for n, m := range map[string]*cmat.Matrix{"X": x, "Y": y, "Z": z} {
		if !cmat.EqualTol(cmat.Mul(m, m), id, tol) {
			t.Errorf("%s^2 != I", n)
		}
	}
}

func TestHadamardConjugation(t *testing.T) {
	h := H(0).Matrix
	// H X H = Z
	if !cmat.EqualTol(cmat.Mul(cmat.Mul(h, X(0).Matrix), h), Z(0).Matrix, tol) {
		t.Error("HXH != Z")
	}
}

func TestSquareRootGates(t *testing.T) {
	cases := []struct {
		name string
		half Gate
		full *cmat.Matrix
	}{
		{"sx", SX(0), X(0).Matrix},
		{"sy", SY(0), Y(0).Matrix},
		{"s", S(0), Z(0).Matrix},
	}
	for _, c := range cases {
		sq := cmat.Mul(c.half.Matrix, c.half.Matrix)
		if !cmat.EqualTol(sq, c.full, tol) {
			t.Errorf("%s squared != full gate", c.name)
		}
	}
	// SW² = (X+Y)/√2
	w := cmat.Scale(complex(math.Sqrt2/2, 0), cmat.Add(X(0).Matrix, Y(0).Matrix))
	if !cmat.EqualTol(cmat.Mul(SW(0).Matrix, SW(0).Matrix), w, tol) {
		t.Error("SW squared != (X+Y)/sqrt2")
	}
}

func TestRotationsComposition(t *testing.T) {
	// RZ(a)·RZ(b) = RZ(a+b)
	a, b := 0.7, -1.2
	got := cmat.Mul(RZ(a, 0).Matrix, RZ(b, 0).Matrix)
	if !cmat.EqualTol(got, RZ(a+b, 0).Matrix, tol) {
		t.Error("RZ(a)RZ(b) != RZ(a+b)")
	}
	// RX(2π) = -I
	if !cmat.EqualTol(RX(2*math.Pi, 0).Matrix, cmat.Scale(-1, cmat.Identity(2)), 1e-9) {
		t.Error("RX(2pi) != -I")
	}
}

func TestCNOTAction(t *testing.T) {
	g := CNOT(0, 1) // bit0 = control, bit1 = target
	// |c=1,t=0> = index 1 maps to |c=1,t=1> = index 3.
	v := []complex128{0, 1, 0, 0}
	out := cmat.MulVec(g.Matrix, v)
	want := []complex128{0, 0, 0, 1}
	for i := range want {
		if cmplx.Abs(out[i]-want[i]) > tol {
			t.Fatalf("CNOT|01> -> %v, want %v", out, want)
		}
	}
	// |c=0,t=1> = index 2 unchanged.
	v = []complex128{0, 0, 1, 0}
	out = cmat.MulVec(g.Matrix, v)
	if cmplx.Abs(out[2]-1) > tol {
		t.Fatalf("CNOT|10> changed control-off state: %v", out)
	}
}

func TestSWAPAction(t *testing.T) {
	g := SWAP(0, 1)
	v := []complex128{0, 1, 0, 0} // |q1=0 q0=1>
	out := cmat.MulVec(g.Matrix, v)
	if cmplx.Abs(out[2]-1) > tol { // |q1=1 q0=0>
		t.Fatalf("SWAP|01> -> %v", out)
	}
}

func TestRZZDiagonalAndSymmetric(t *testing.T) {
	g := RZZ(0.9, 0, 1)
	if !g.Diagonal {
		t.Error("RZZ should be flagged diagonal")
	}
	// ZZ eigenvalue structure: entries 00 and 11 equal, 01 and 10 equal.
	m := g.Matrix
	if cmplx.Abs(m.At(0, 0)-m.At(3, 3)) > tol || cmplx.Abs(m.At(1, 1)-m.At(2, 2)) > tol {
		t.Error("RZZ diagonal structure wrong")
	}
	// RZZ(θ) equals exp of sum: RZZ(a)RZZ(b) = RZZ(a+b)
	got := cmat.Mul(RZZ(0.4, 0, 1).Matrix, RZZ(0.3, 0, 1).Matrix)
	if !cmat.EqualTol(got, RZZ(0.7, 0, 1).Matrix, tol) {
		t.Error("RZZ(a)RZZ(b) != RZZ(a+b)")
	}
}

func TestDiagonalFlags(t *testing.T) {
	diag := []Gate{Z(0), S(0), Sdg(0), T(0), Tdg(0), RZ(0.3, 0), P(0.4, 0), CZ(0, 1), CPhase(0.2, 0, 1), RZZ(0.1, 0, 1), CCZ(0, 1, 2)}
	for _, g := range diag {
		if !g.Diagonal {
			t.Errorf("%s should be diagonal", g.Name)
		}
	}
	nondiag := []Gate{X(0), H(0), RX(0.3, 0), CNOT(0, 1), SWAP(0, 1), ISWAP(0, 1), FSim(0.2, 0.3, 0, 1)}
	for _, g := range nondiag {
		if g.Diagonal {
			t.Errorf("%s should not be diagonal", g.Name)
		}
	}
}

func TestCCXAction(t *testing.T) {
	g := CCX(0, 1, 2)
	// |c1=1,c2=1,t=0> = index 3 -> index 7.
	v := make([]complex128, 8)
	v[3] = 1
	out := cmat.MulVec(g.Matrix, v)
	if cmplx.Abs(out[7]-1) > tol {
		t.Fatalf("CCX|011> -> %v", out)
	}
	// Single control set: unchanged.
	v = make([]complex128, 8)
	v[1] = 1
	out = cmat.MulVec(g.Matrix, v)
	if cmplx.Abs(out[1]-1) > tol {
		t.Fatalf("CCX|001> changed: %v", out)
	}
}

func TestFSimSpecialCases(t *testing.T) {
	// FSim(π/2, 0) acts like an iSWAP up to the phase convention (-i vs i).
	f := FSim(math.Pi/2, 0, 0, 1).Matrix
	if cmplx.Abs(f.At(1, 2)+1i) > tol || cmplx.Abs(f.At(2, 1)+1i) > tol {
		t.Error("FSim(pi/2,0) off-diagonal should be -i")
	}
	// FSim(0, -φ) equals CPhase(φ).
	if !cmat.EqualTol(FSim(0, -0.8, 0, 1).Matrix, CPhase(0.8, 0, 1).Matrix, tol) {
		t.Error("FSim(0,-phi) != CPhase(phi)")
	}
}

func TestRemapAndClone(t *testing.T) {
	g := RZZ(0.5, 2, 7)
	r := g.Remap(func(q int) int { return q - 2 })
	if r.Qubits[0] != 0 || r.Qubits[1] != 5 {
		t.Fatalf("Remap gave %v", r.Qubits)
	}
	if g.Qubits[0] != 2 {
		t.Fatal("Remap mutated the original")
	}
	c := g.Clone()
	c.Matrix.Set(0, 0, 99)
	if g.Matrix.At(0, 0) == 99 {
		t.Fatal("Clone shares matrix storage")
	}
}

func TestValidateRejectsBadGates(t *testing.T) {
	g := Gate{Name: "bad", Qubits: []int{0, 0}, Matrix: cmat.Identity(4)}
	if err := g.Validate(); err == nil {
		t.Error("duplicate qubits not rejected")
	}
	g = Gate{Name: "bad", Qubits: []int{0}, Matrix: cmat.Identity(4)}
	if err := g.Validate(); err == nil {
		t.Error("wrong matrix size not rejected")
	}
	g = Gate{Name: "bad", Qubits: []int{-1}, Matrix: cmat.Identity(2)}
	if err := g.Validate(); err == nil {
		t.Error("negative qubit not rejected")
	}
	g = Gate{Name: "bad"}
	if err := g.Validate(); err == nil {
		t.Error("empty gate not rejected")
	}
}

func TestTouchesAndShares(t *testing.T) {
	g := CNOT(1, 3)
	h := CZ(3, 5)
	k := X(0)
	if !g.Touches(1) || !g.Touches(3) || g.Touches(2) {
		t.Error("Touches wrong")
	}
	if !g.SharesQubit(&h) || g.SharesQubit(&k) {
		t.Error("SharesQubit wrong")
	}
	if g.MaxQubit() != 3 {
		t.Error("MaxQubit wrong")
	}
}

func TestU3Generality(t *testing.T) {
	// U3(π,0,π) = X, U3(π/2,0,π) = H up to global phase conventions.
	if !cmat.EqualTol(U3(math.Pi, 0, math.Pi, 0).Matrix, X(0).Matrix, 1e-12) {
		t.Error("U3(pi,0,pi) != X")
	}
	if !cmat.EqualTol(U3(math.Pi/2, 0, math.Pi, 0).Matrix, H(0).Matrix, 1e-12) {
		t.Error("U3(pi/2,0,pi) != H")
	}
}

func TestRotationUnitaryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		theta := rng.Float64()*8 - 4
		phi := rng.Float64()*8 - 4
		gates := []Gate{
			RX(theta, 0), RY(theta, 0), RZ(theta, 0),
			RZZ(theta, 0, 1), RXX(theta, 0, 1), RYY(theta, 0, 1),
			FSim(theta, phi, 0, 1), CPhase(phi, 0, 1), U3(theta, phi, theta*phi, 0),
		}
		for _, g := range gates {
			if !g.IsUnitary(1e-10) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGateString(t *testing.T) {
	s := RZZ(0.5, 0, 1).String()
	if s != "rzz(0.500)[0 1]" {
		t.Errorf("String() = %q", s)
	}
	if H(3).String() != "h[3]" {
		t.Errorf("String() = %q", H(3).String())
	}
}
