package gate

import (
	"math"
	"math/cmplx"

	"hsfsim/internal/cmat"
)

// sqrt1_2 is 1/√2.
const sqrt1_2 = math.Sqrt2 / 2

func m2(a, b, c, d complex128) *cmat.Matrix {
	return cmat.FromSlice(2, 2, []complex128{a, b, c, d})
}

// --- single-qubit gates ---

// I returns the identity gate on q (occasionally useful as a placeholder).
func I(q int) Gate { return New("id", cmat.Identity(2), nil, q) }

// X returns the Pauli-X (NOT) gate.
func X(q int) Gate { return New("x", m2(0, 1, 1, 0), nil, q) }

// Y returns the Pauli-Y gate.
func Y(q int) Gate { return New("y", m2(0, -1i, 1i, 0), nil, q) }

// Z returns the Pauli-Z gate.
func Z(q int) Gate { return New("z", m2(1, 0, 0, -1), nil, q) }

// H returns the Hadamard gate.
func H(q int) Gate { return New("h", m2(sqrt1_2, sqrt1_2, sqrt1_2, -sqrt1_2), nil, q) }

// S returns the phase gate diag(1, i).
func S(q int) Gate { return New("s", m2(1, 0, 0, 1i), nil, q) }

// Sdg returns S†.
func Sdg(q int) Gate { return New("sdg", m2(1, 0, 0, -1i), nil, q) }

// T returns the T gate diag(1, e^{iπ/4}).
func T(q int) Gate { return New("t", m2(1, 0, 0, cmplx.Exp(1i*math.Pi/4)), nil, q) }

// Tdg returns T†.
func Tdg(q int) Gate { return New("tdg", m2(1, 0, 0, cmplx.Exp(-1i*math.Pi/4)), nil, q) }

// SX returns the square root of X, used in supremacy-style circuits.
func SX(q int) Gate {
	return New("sx", m2(0.5+0.5i, 0.5-0.5i, 0.5-0.5i, 0.5+0.5i), nil, q)
}

// SY returns the square root of Y, used in supremacy-style circuits.
func SY(q int) Gate {
	return New("sy", m2(0.5+0.5i, -0.5-0.5i, 0.5+0.5i, 0.5+0.5i), nil, q)
}

// SW returns the square root of W = (X+Y)/√2, the third single-qubit gate of
// Google's random-circuit gate set. For an involution A the square root is
// e^{iπ/4}/√2 · (I - iA).
func SW(q int) Gate {
	phase := complex(0.5, 0.5) // e^{iπ/4}/√2
	w01 := complex(sqrt1_2, -sqrt1_2)
	w10 := complex(sqrt1_2, sqrt1_2)
	return New("sw", m2(
		phase, phase*(-1i)*w01,
		phase*(-1i)*w10, phase,
	), nil, q)
}

// RX returns exp(-iθX/2).
func RX(theta float64, q int) Gate {
	c := complex(math.Cos(theta/2), 0)
	s := complex(0, -math.Sin(theta/2))
	return New("rx", m2(c, s, s, c), []float64{theta}, q)
}

// RY returns exp(-iθY/2).
func RY(theta float64, q int) Gate {
	c := complex(math.Cos(theta/2), 0)
	s := complex(math.Sin(theta/2), 0)
	return New("ry", m2(c, -s, s, c), []float64{theta}, q)
}

// RZ returns exp(-iθZ/2) = diag(e^{-iθ/2}, e^{iθ/2}).
func RZ(theta float64, q int) Gate {
	return New("rz", m2(cmplx.Exp(complex(0, -theta/2)), 0, 0, cmplx.Exp(complex(0, theta/2))), []float64{theta}, q)
}

// P returns the phase gate diag(1, e^{iφ}).
func P(phi float64, q int) Gate {
	return New("p", m2(1, 0, 0, cmplx.Exp(complex(0, phi))), []float64{phi}, q)
}

// U3 returns the generic single-qubit rotation with Euler angles (θ, φ, λ).
func U3(theta, phi, lambda float64, q int) Gate {
	ct := complex(math.Cos(theta/2), 0)
	st := complex(math.Sin(theta/2), 0)
	return New("u3", m2(
		ct, -cmplx.Exp(complex(0, lambda))*st,
		cmplx.Exp(complex(0, phi))*st, cmplx.Exp(complex(0, phi+lambda))*ct,
	), []float64{theta, phi, lambda}, q)
}

// --- two-qubit gates ---

// permutationMatrix builds a 2^k×2^k matrix from a classical bit permutation
// f: input basis index -> output basis index.
func permutationMatrix(k int, f func(int) int) *cmat.Matrix {
	dim := 1 << k
	m := cmat.New(dim, dim)
	for in := 0; in < dim; in++ {
		m.Set(f(in), in, 1)
	}
	return m
}

// CNOT returns the controlled-X gate with the given control and target.
// Matrix bit 0 is the control, bit 1 the target.
func CNOT(control, target int) Gate {
	m := permutationMatrix(2, func(in int) int {
		c := in & 1
		t := (in >> 1) & 1
		if c == 1 {
			t ^= 1
		}
		return c | t<<1
	})
	return New("cx", m, nil, control, target)
}

// CZ returns the controlled-Z gate (symmetric in its qubits).
func CZ(a, b int) Gate {
	m := cmat.Identity(4)
	m.Set(3, 3, -1)
	return New("cz", m, nil, a, b)
}

// CPhase returns the controlled-phase gate diag(1,1,1,e^{iφ}).
func CPhase(phi float64, a, b int) Gate {
	m := cmat.Identity(4)
	m.Set(3, 3, cmplx.Exp(complex(0, phi)))
	return New("cp", m, []float64{phi}, a, b)
}

// SWAP returns the swap gate; its Schmidt rank across any bipartition
// separating its qubits is 4.
func SWAP(a, b int) Gate {
	m := permutationMatrix(2, func(in int) int {
		return (in&1)<<1 | (in>>1)&1
	})
	return New("swap", m, nil, a, b)
}

// ISWAP returns the iSWAP gate (swap with an i phase on the exchanged
// states); Schmidt rank 4.
func ISWAP(a, b int) Gate {
	m := cmat.New(4, 4)
	m.Set(0, 0, 1)
	m.Set(3, 3, 1)
	m.Set(1, 2, 1i)
	m.Set(2, 1, 1i)
	return New("iswap", m, nil, a, b)
}

// RZZ returns exp(-iθ Z⊗Z / 2), the entangler of QAOA problem layers. It is
// diagonal, commutes with every other RZZ/RZ/CZ gate, and has Schmidt rank 2
// for any θ that is not a multiple of π.
func RZZ(theta float64, a, b int) Gate {
	em := cmplx.Exp(complex(0, -theta/2))
	ep := cmplx.Exp(complex(0, theta/2))
	m := cmat.New(4, 4)
	m.Set(0, 0, em) // |00>: ZZ=+1
	m.Set(1, 1, ep) // |01>: ZZ=-1
	m.Set(2, 2, ep) // |10>: ZZ=-1
	m.Set(3, 3, em) // |11>: ZZ=+1
	return New("rzz", m, []float64{theta}, a, b)
}

// RXX returns exp(-iθ X⊗X / 2).
func RXX(theta float64, a, b int) Gate {
	c := complex(math.Cos(theta/2), 0)
	s := complex(0, -math.Sin(theta/2))
	m := cmat.New(4, 4)
	for i := 0; i < 4; i++ {
		m.Set(i, i, c)
		m.Set(i, 3-i, s)
	}
	return New("rxx", m, []float64{theta}, a, b)
}

// RYY returns exp(-iθ Y⊗Y / 2).
func RYY(theta float64, a, b int) Gate {
	c := complex(math.Cos(theta/2), 0)
	s := complex(0, -math.Sin(theta/2))
	m := cmat.New(4, 4)
	m.Set(0, 0, c)
	m.Set(1, 1, c)
	m.Set(2, 2, c)
	m.Set(3, 3, c)
	m.Set(0, 3, -s)
	m.Set(3, 0, -s)
	m.Set(1, 2, s)
	m.Set(2, 1, s)
	return New("ryy", m, []float64{theta}, a, b)
}

// FSim returns the fermionic-simulation gate used by Google's processors:
// a partial iSWAP by angle θ plus a conditional phase φ on |11>.
func FSim(theta, phi float64, a, b int) Gate {
	m := cmat.New(4, 4)
	m.Set(0, 0, 1)
	m.Set(1, 1, complex(math.Cos(theta), 0))
	m.Set(2, 2, complex(math.Cos(theta), 0))
	m.Set(1, 2, complex(0, -math.Sin(theta)))
	m.Set(2, 1, complex(0, -math.Sin(theta)))
	m.Set(3, 3, cmplx.Exp(complex(0, -phi)))
	return New("fsim", m, []float64{theta, phi}, a, b)
}

// CRX returns the controlled-RX gate: RX(θ) on the target when the control
// (bit 0) is set.
func CRX(theta float64, control, target int) Gate {
	return controlled1q("crx", RX(theta, 0).Matrix, []float64{theta}, control, target)
}

// CRY returns the controlled-RY gate.
func CRY(theta float64, control, target int) Gate {
	return controlled1q("cry", RY(theta, 0).Matrix, []float64{theta}, control, target)
}

// CRZ returns the controlled-RZ gate.
func CRZ(theta float64, control, target int) Gate {
	return controlled1q("crz", RZ(theta, 0).Matrix, []float64{theta}, control, target)
}

// controlled1q embeds |0><0|⊗I + |1><1|⊗U with the control on bit 0.
func controlled1q(name string, u *cmat.Matrix, params []float64, control, target int) Gate {
	m := cmat.New(4, 4)
	m.Set(0, 0, 1)
	m.Set(2, 2, 1)
	m.Set(1, 1, u.At(0, 0))
	m.Set(1, 3, u.At(0, 1))
	m.Set(3, 1, u.At(1, 0))
	m.Set(3, 3, u.At(1, 1))
	return New(name, m, params, control, target)
}

// --- three-qubit gates ---

// CCX returns the Toffoli gate; bits 0 and 1 are controls, bit 2 the target.
func CCX(c1, c2, target int) Gate {
	m := permutationMatrix(3, func(in int) int {
		if in&1 == 1 && in&2 == 2 {
			return in ^ 4
		}
		return in
	})
	return New("ccx", m, nil, c1, c2, target)
}

// CCZ returns the doubly-controlled Z gate.
func CCZ(a, b, c int) Gate {
	m := cmat.Identity(8)
	m.Set(7, 7, -1)
	return New("ccz", m, nil, a, b, c)
}
