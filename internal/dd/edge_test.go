package dd

import (
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"hsfsim/internal/gate"
	"hsfsim/internal/statevec"
)

func TestApplyGateToIsFunctional(t *testing.T) {
	// ApplyGateTo must leave the source state intact — the property that
	// makes Feynman-path branching free on DDs.
	d := New(3, 0)
	h := gate.H(0)
	if err := d.ApplyGate(&h); err != nil {
		t.Fatal(err)
	}
	before := d.Root()
	beforeAmp := d.AmplitudeOf(before, 0)

	x := gate.X(1)
	after, err := d.ApplyGateTo(before, &x)
	if err != nil {
		t.Fatal(err)
	}
	// The old root still denotes the pre-gate state.
	if got := d.AmplitudeOf(before, 0); cmplx.Abs(got-beforeAmp) > 1e-12 {
		t.Fatal("source state mutated by ApplyGateTo")
	}
	// The new root has the gate applied: |0> component moved to qubit-1=1.
	if got := d.AmplitudeOf(after, 0b010); cmplx.Abs(got-beforeAmp) > 1e-12 {
		t.Fatalf("new state wrong: %v", got)
	}
	if got := d.AmplitudeOf(after, 0); cmplx.Abs(got) > 1e-12 {
		t.Fatal("new state kept old component")
	}
}

func TestBranchingSharesNodes(t *testing.T) {
	// Applying two different gates to the same root must keep both results
	// addressable — the DD analogue of cloning the statevector.
	d := New(4, 0)
	for q := 0; q < 4; q++ {
		h := gate.H(q)
		if err := d.ApplyGate(&h); err != nil {
			t.Fatal(err)
		}
	}
	root := d.Root()
	z := gate.Z(2)
	x := gate.X(2)
	bz, err := d.ApplyGateTo(root, &z)
	if err != nil {
		t.Fatal(err)
	}
	bx, err := d.ApplyGateTo(root, &x)
	if err != nil {
		t.Fatal(err)
	}
	// |+>⊗4 under X on qubit 2 is unchanged; under Z the qubit-2=1 branch
	// flips sign.
	if cmplx.Abs(d.AmplitudeOf(bx, 0)-0.25) > 1e-10 {
		t.Fatal("X branch wrong")
	}
	if cmplx.Abs(d.AmplitudeOf(bz, 0b0100)+0.25) > 1e-10 {
		t.Fatal("Z branch wrong")
	}
	if cmplx.Abs(d.AmplitudeOf(root, 0b0100)-0.25) > 1e-10 {
		t.Fatal("root branch mutated")
	}
}

func TestAmplitudeMatchesExpansionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		c := randomCircuit(rng, n, 8)
		d := New(n, 0)
		if err := d.ApplyCircuit(c); err != nil {
			return false
		}
		dense := d.ToStatevector()
		for x := 0; x < len(dense); x++ {
			if cmplx.Abs(dense[x]-d.Amplitude(uint64(x))) > 1e-10 {
				return false
			}
		}
		// FillStatevector agrees too.
		buf := make([]complex128, len(dense))
		d.FillStatevector(d.Root(), buf)
		return statevec.MaxAbsDiff(statevec.State(buf), dense) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSetRoot(t *testing.T) {
	d := New(2, 0)
	h := gate.H(0)
	branch, err := d.ApplyGateTo(d.Root(), &h)
	if err != nil {
		t.Fatal(err)
	}
	d.SetRoot(branch)
	if cmplx.Abs(d.Amplitude(1)) < 0.5 {
		t.Fatal("SetRoot did not switch states")
	}
}
