// Package dd implements a decision-diagram statevector backend in the style
// of the QMDD packages from the EDA community that the paper's background
// surveys (refs [9]-[15], including the authors' decision-diagram-based HSF
// predecessor). Statevectors are stored as quasi-reduced, edge-weighted
// binary decision diagrams with a unique table for node sharing; structured
// states (GHZ, stabilizer-like, product states) compress from 2^n amplitudes
// to O(n) nodes.
//
// Gates of any arity are applied uniformly through the outer-product
// expansion U = Σ_{t,u} M[t,u]·|t><u| on the touched qubits: each (t,u) term
// selects the u-branches and re-embeds them at t, and the weighted terms are
// summed with the DD add operation.
package dd

import (
	"fmt"
	"math"
	"math/cmplx"

	"hsfsim/internal/circuit"
	"hsfsim/internal/gate"
	"hsfsim/internal/statevec"
)

// node is a DD vertex at a qubit level; children live one level below.
// level -1 is the terminal.
type node struct {
	level int
	e     [2]edge
	id    uint64
}

// edge is a weighted pointer to a node.
type edge struct {
	w complex128
	n *node
}

func (e edge) isZero() bool { return e.w == 0 }

// DD is a decision-diagram statevector on N qubits. The zero value is not
// usable; construct with New.
type DD struct {
	N        int
	root     edge
	terminal *node
	unique   map[nodeKey]*node
	nextID   uint64
}

// nodeKey canonicalizes a node for the unique table. Edge weights are
// quantized; a missed match only reduces sharing, never correctness.
type nodeKey struct {
	level              int
	id0, id1           uint64
	w0r, w0i, w1r, w1i int64
}

const weightQuantum = 1e-10

func quantize(w complex128) (int64, int64) {
	return int64(math.Round(real(w) / weightQuantum)), int64(math.Round(imag(w) / weightQuantum))
}

// New returns the basis state |x> on n qubits as a DD.
func New(n int, x uint64) *DD {
	if n <= 0 || n > 62 {
		panic(fmt.Sprintf("dd: invalid qubit count %d", n))
	}
	d := &DD{N: n, unique: make(map[nodeKey]*node)}
	d.terminal = &node{level: -1}
	e := edge{w: 1, n: d.terminal}
	for level := 0; level < n; level++ {
		bit := int((x >> uint(level)) & 1)
		var children [2]edge
		children[bit] = e
		children[1-bit] = d.zeroEdge(level - 1)
		e = d.makeNode(level, children[0], children[1])
	}
	d.root = e
	return d
}

// zeroEdge returns the canonical zero edge (any terminal works: weight 0).
func (d *DD) zeroEdge(int) edge { return edge{w: 0, n: d.terminal} }

// makeNode normalizes and deduplicates a node with the given children.
func (d *DD) makeNode(level int, e0, e1 edge) edge {
	if e0.isZero() && e1.isZero() {
		return edge{w: 0, n: d.terminal}
	}
	// Normalize by the larger-magnitude child weight (ties: child 0), so
	// structurally equal subtrees share nodes.
	var norm complex128
	if cmplx.Abs(e0.w) >= cmplx.Abs(e1.w) {
		norm = e0.w
	} else {
		norm = e1.w
	}
	e0.w /= norm
	e1.w /= norm
	if e0.isZero() {
		e0.n = d.terminal
	}
	if e1.isZero() {
		e1.n = d.terminal
	}
	w0r, w0i := quantize(e0.w)
	w1r, w1i := quantize(e1.w)
	key := nodeKey{level: level, id0: e0.n.id, id1: e1.n.id, w0r: w0r, w0i: w0i, w1r: w1r, w1i: w1i}
	if n, ok := d.unique[key]; ok {
		return edge{w: norm, n: n}
	}
	d.nextID++
	n := &node{level: level, e: [2]edge{e0, e1}, id: d.nextID}
	d.unique[key] = n
	return edge{w: norm, n: n}
}

// addKey caches vector additions.
type addKey struct {
	a, b   uint64
	wr, wi int64 // quantized ratio b.w/a.w
}

// add computes a + b for two edges at the same level.
func (d *DD) add(a, b edge, cache map[addKey]edge) edge {
	if a.isZero() {
		return b
	}
	if b.isZero() {
		return a
	}
	if a.n.level == -1 {
		return edge{w: a.w + b.w, n: d.terminal}
	}
	// Factor out a.w so the cache keys on the weight ratio.
	ratio := b.w / a.w
	rr, ri := quantize(ratio)
	key := addKey{a: a.n.id, b: b.n.id, wr: rr, wi: ri}
	if r, ok := cache[key]; ok {
		return edge{w: r.w * a.w, n: r.n}
	}
	level := a.n.level
	e0 := d.add(
		edge{w: a.n.e[0].w, n: a.n.e[0].n},
		edge{w: ratio * b.n.e[0].w, n: b.n.e[0].n},
		cache,
	)
	e1 := d.add(
		edge{w: a.n.e[1].w, n: a.n.e[1].n},
		edge{w: ratio * b.n.e[1].w, n: b.n.e[1].n},
		cache,
	)
	res := d.makeNode(level, e0, e1)
	cache[key] = res
	return edge{w: res.w * a.w, n: res.n}
}

// selectEmbed returns the DD term |t-pattern><u-pattern| ψ for the touched
// qubits: descending the diagram, at a touched level the u-child is selected
// and re-attached at position t; untouched levels recurse on both children.
// qubitBit maps a level to its index in the gate's qubit list (-1 if
// untouched).
func (d *DD) selectEmbed(e edge, qubitBit []int, t, u int, cache map[uint64]edge) edge {
	if e.isZero() {
		return e
	}
	if e.n.level == -1 {
		return e
	}
	if r, ok := cache[e.n.id]; ok {
		return edge{w: r.w * e.w, n: r.n}
	}
	level := e.n.level
	var res edge
	if k := qubitBit[level]; k >= 0 {
		uBit := (u >> k) & 1
		tBit := (t >> k) & 1
		sub := d.selectEmbed(e.n.e[uBit], qubitBit, t, u, cache)
		var children [2]edge
		children[tBit] = sub
		children[1-tBit] = d.zeroEdge(level - 1)
		res = d.makeNode(level, children[0], children[1])
	} else {
		e0 := d.selectEmbed(e.n.e[0], qubitBit, t, u, cache)
		e1 := d.selectEmbed(e.n.e[1], qubitBit, t, u, cache)
		res = d.makeNode(level, e0, e1)
	}
	cache[e.n.id] = res
	return edge{w: res.w * e.w, n: res.n}
}

// ApplyGate applies a gate of any arity via the outer-product expansion.
func (d *DD) ApplyGate(g *gate.Gate) error {
	for _, q := range g.Qubits {
		if q < 0 || q >= d.N {
			return fmt.Errorf("dd: qubit %d out of range", q)
		}
	}
	k := g.NumQubits()
	dim := 1 << k
	qubitBit := make([]int, d.N)
	for i := range qubitBit {
		qubitBit[i] = -1
	}
	for bit, q := range g.Qubits {
		qubitBit[q] = bit
	}
	result := d.zeroEdge(d.N - 1)
	addCache := make(map[addKey]edge)
	for t := 0; t < dim; t++ {
		for u := 0; u < dim; u++ {
			m := g.Matrix.At(t, u)
			if m == 0 {
				continue
			}
			term := d.selectEmbed(d.root, qubitBit, t, u, make(map[uint64]edge))
			term.w *= m
			result = d.add(result, term, addCache)
		}
	}
	d.root = result
	return nil
}

// Edge is an opaque handle to a DD-represented statevector sharing this
// DD's node store. Edges enable the Feynman-path style usage of decision
// diagrams (the authors' ref [10]): "cloning" a state is free because apply
// operations are purely functional over the shared unique table.
type Edge struct{ e edge }

// Root returns the current state as an Edge handle.
func (d *DD) Root() Edge { return Edge{e: d.root} }

// SetRoot replaces the current state by the given handle.
func (d *DD) SetRoot(r Edge) { d.root = r.e }

// ApplyGateTo applies a gate to the state denoted by root and returns the
// new state, leaving root intact (functional update over shared nodes).
func (d *DD) ApplyGateTo(root Edge, g *gate.Gate) (Edge, error) {
	saved := d.root
	d.root = root.e
	err := d.ApplyGate(g)
	res := d.root
	d.root = saved
	if err != nil {
		return Edge{}, err
	}
	return Edge{e: res}, nil
}

// AmplitudeOf returns <x|ψ> for the state denoted by root.
func (d *DD) AmplitudeOf(root Edge, x uint64) complex128 {
	saved := d.root
	d.root = root.e
	a := d.Amplitude(x)
	d.root = saved
	return a
}

// FillStatevector writes the dense expansion of root into out, which must
// have length 2^N.
func (d *DD) FillStatevector(root Edge, out []complex128) {
	saved := d.root
	d.root = root.e
	s := d.ToStatevector()
	copy(out, s)
	d.root = saved
}

// ApplyCircuit applies every gate of the circuit.
func (d *DD) ApplyCircuit(c *circuit.Circuit) error {
	if c.NumQubits != d.N {
		return fmt.Errorf("dd: circuit has %d qubits, state has %d", c.NumQubits, d.N)
	}
	for i := range c.Gates {
		if err := d.ApplyGate(&c.Gates[i]); err != nil {
			return fmt.Errorf("dd: gate %d: %w", i, err)
		}
	}
	return nil
}

// Amplitude returns <x|ψ>.
func (d *DD) Amplitude(x uint64) complex128 {
	e := d.root
	w := e.w
	n := e.n
	for n.level >= 0 {
		bit := (x >> uint(n.level)) & 1
		c := n.e[bit]
		w *= c.w
		if w == 0 {
			return 0
		}
		n = c.n
	}
	return w
}

// Norm returns sqrt(<ψ|ψ>) via a cached recursive contraction.
func (d *DD) Norm() float64 {
	cache := make(map[uint64]float64)
	var rec func(n *node) float64
	rec = func(n *node) float64 {
		if n.level == -1 {
			return 1
		}
		if v, ok := cache[n.id]; ok {
			return v
		}
		var s float64
		for _, c := range n.e {
			if c.isZero() {
				continue
			}
			aw := real(c.w)*real(c.w) + imag(c.w)*imag(c.w)
			s += aw * rec(c.n)
		}
		cache[n.id] = s
		return s
	}
	if d.root.isZero() {
		return 0
	}
	aw := real(d.root.w)*real(d.root.w) + imag(d.root.w)*imag(d.root.w)
	return math.Sqrt(aw * rec(d.root.n))
}

// NumNodes counts the distinct nodes reachable from the root (excluding the
// terminal) — the DD's memory footprint measure used by refs [13]-[15].
func (d *DD) NumNodes() int {
	seen := make(map[uint64]bool)
	var rec func(n *node)
	rec = func(n *node) {
		if n.level == -1 || seen[n.id] {
			return
		}
		seen[n.id] = true
		for _, c := range n.e {
			if !c.isZero() {
				rec(c.n)
			}
		}
	}
	if !d.root.isZero() {
		rec(d.root.n)
	}
	return len(seen)
}

// ToStatevector expands the DD to a dense statevector (exponential in N;
// for verification on small systems).
func (d *DD) ToStatevector() statevec.State {
	out := make(statevec.State, 1<<d.N)
	var rec func(e edge, level int, prefix uint64)
	rec = func(e edge, level int, prefix uint64) {
		if e.isZero() {
			return
		}
		if level < 0 {
			out[prefix] = e.w
			return
		}
		n := e.n
		rec(edge{w: e.w * n.e[0].w, n: n.e[0].n}, level-1, prefix)
		rec(edge{w: e.w * n.e[1].w, n: n.e[1].n}, level-1, prefix|1<<uint(level))
	}
	rec(d.root, d.N-1, 0)
	return out
}
