package dd

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"hsfsim/internal/circuit"
	"hsfsim/internal/gate"
	"hsfsim/internal/statevec"
)

func randomCircuit(rng *rand.Rand, n, gates int) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < gates; i++ {
		a := rng.Intn(n)
		b := (a + 1 + rng.Intn(n-1)) % n
		switch rng.Intn(7) {
		case 0:
			c.Append(gate.H(a))
		case 1:
			c.Append(gate.T(a))
		case 2:
			c.Append(gate.RX(rng.Float64()*3, a))
		case 3:
			c.Append(gate.CNOT(a, b))
		case 4:
			c.Append(gate.CZ(a, b))
		case 5:
			c.Append(gate.RZZ(rng.Float64(), a, b))
		default:
			c.Append(gate.SWAP(a, b))
		}
	}
	return c
}

func TestBasisStateConstruction(t *testing.T) {
	d := New(4, 0b1010)
	if cmplx.Abs(d.Amplitude(0b1010)-1) > 1e-12 {
		t.Fatal("basis amplitude != 1")
	}
	if cmplx.Abs(d.Amplitude(0b1011)) > 1e-12 {
		t.Fatal("other amplitude != 0")
	}
	if math.Abs(d.Norm()-1) > 1e-12 {
		t.Fatal("norm != 1")
	}
	// A basis state needs exactly one node per level.
	if n := d.NumNodes(); n != 4 {
		t.Fatalf("basis state nodes = %d, want 4", n)
	}
}

func TestBellState(t *testing.T) {
	d := New(2, 0)
	h := gate.H(0)
	cx := gate.CNOT(0, 1)
	if err := d.ApplyGate(&h); err != nil {
		t.Fatal(err)
	}
	if err := d.ApplyGate(&cx); err != nil {
		t.Fatal(err)
	}
	want := complex(math.Sqrt2/2, 0)
	if cmplx.Abs(d.Amplitude(0)-want) > 1e-10 || cmplx.Abs(d.Amplitude(3)-want) > 1e-10 {
		t.Fatalf("Bell amplitudes %v %v", d.Amplitude(0), d.Amplitude(3))
	}
	if cmplx.Abs(d.Amplitude(1)) > 1e-12 || cmplx.Abs(d.Amplitude(2)) > 1e-12 {
		t.Fatal("Bell cross terms nonzero")
	}
}

func TestGHZCompression(t *testing.T) {
	// The defining DD property (refs [13]-[15]): a GHZ state on n qubits
	// needs O(n) nodes, not O(2^n) amplitudes.
	n := 16
	d := New(n, 0)
	h := gate.H(0)
	if err := d.ApplyGate(&h); err != nil {
		t.Fatal(err)
	}
	for q := 1; q < n; q++ {
		cx := gate.CNOT(q-1, q)
		if err := d.ApplyGate(&cx); err != nil {
			t.Fatal(err)
		}
	}
	if nodes := d.NumNodes(); nodes > 2*n {
		t.Fatalf("GHZ-%d uses %d nodes, want O(n)", n, nodes)
	}
	want := complex(math.Sqrt2/2, 0)
	if cmplx.Abs(d.Amplitude(0)-want) > 1e-9 || cmplx.Abs(d.Amplitude((1<<uint(n))-1)-want) > 1e-9 {
		t.Fatal("GHZ amplitudes wrong")
	}
	if math.Abs(d.Norm()-1) > 1e-9 {
		t.Fatalf("GHZ norm %g", d.Norm())
	}
}

func TestProductStateCompression(t *testing.T) {
	n := 12
	d := New(n, 0)
	for q := 0; q < n; q++ {
		h := gate.H(q)
		if err := d.ApplyGate(&h); err != nil {
			t.Fatal(err)
		}
	}
	// |+>^n shares one node per level.
	if nodes := d.NumNodes(); nodes != n {
		t.Fatalf("|+>^%d uses %d nodes, want %d", n, nodes, n)
	}
}

func TestMatchesStatevectorRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(110))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(5)
		c := randomCircuit(rng, n, 6+rng.Intn(14))
		ref := statevec.NewState(n)
		ref.ApplyAll(c.Gates)
		d := New(n, 0)
		if err := d.ApplyCircuit(c); err != nil {
			t.Fatal(err)
		}
		if diff := statevec.MaxAbsDiff(d.ToStatevector(), ref); diff > 1e-8 {
			t.Fatalf("trial %d: DD diverges by %g", trial, diff)
		}
	}
}

func TestThreeQubitGate(t *testing.T) {
	// The outer-product expansion handles arbitrary arity: Toffoli.
	c := circuit.New(3)
	c.Append(gate.H(0), gate.H(1), gate.CCX(0, 1, 2))
	ref := statevec.NewState(3)
	ref.ApplyAll(c.Gates)
	d := New(3, 0)
	if err := d.ApplyCircuit(c); err != nil {
		t.Fatal(err)
	}
	if diff := statevec.MaxAbsDiff(d.ToStatevector(), ref); diff > 1e-9 {
		t.Fatalf("CCX diverges by %g", diff)
	}
}

func TestNormPreservedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		c := randomCircuit(rng, n, 12)
		d := New(n, 0)
		if err := d.ApplyCircuit(c); err != nil {
			return false
		}
		return math.Abs(d.Norm()-1) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyErrors(t *testing.T) {
	d := New(2, 0)
	g := gate.H(5)
	if err := d.ApplyGate(&g); err == nil {
		t.Fatal("out-of-range qubit accepted")
	}
	c := circuit.New(3)
	if err := d.ApplyCircuit(c); err == nil {
		t.Fatal("qubit mismatch accepted")
	}
}

func TestNodeSharingAcrossBranches(t *testing.T) {
	// Two identical uncorrelated halves: the lower half's structure is
	// shared under both upper branches.
	n := 8
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.Append(gate.H(q))
	}
	c.Append(gate.RZZ(0.4, 0, 1), gate.RZZ(0.4, 4, 5))
	d := New(n, 0)
	if err := d.ApplyCircuit(c); err != nil {
		t.Fatal(err)
	}
	ref := statevec.NewState(n)
	ref.ApplyAll(c.Gates)
	if diff := statevec.MaxAbsDiff(d.ToStatevector(), ref); diff > 1e-9 {
		t.Fatalf("diverges by %g", diff)
	}
	if nodes := d.NumNodes(); nodes >= 1<<n {
		t.Fatalf("no compression: %d nodes", nodes)
	}
}

func BenchmarkDDGHZ20(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := New(20, 0)
		h := gate.H(0)
		if err := d.ApplyGate(&h); err != nil {
			b.Fatal(err)
		}
		for q := 1; q < 20; q++ {
			cx := gate.CNOT(q-1, q)
			if err := d.ApplyGate(&cx); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkDDRandom10(b *testing.B) {
	rng := rand.New(rand.NewSource(111))
	c := randomCircuit(rng, 10, 30)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := New(10, 0)
		if err := d.ApplyCircuit(c); err != nil {
			b.Fatal(err)
		}
	}
}
