// Package reorder implements the qubit-order optimization the paper's
// conclusion names as future work: "in addition to regrouping the gates,
// adjusting the qubit order itself may help further to identify beneficial
// blocks". It relabels qubits so that (a) fewer gates cross the cut and
// (b) the crossing gates that remain form cascades the joint-cut planner can
// exploit.
//
// The optimization runs in two stages:
//
//  1. a Kernighan-Lin pass on the interaction graph (edge weight = number
//     of multi-qubit gates between two qubits) minimizes the crossing gate
//     count for the fixed partition sizes;
//  2. a bounded local search over cross-partition swaps scores candidate
//     orders with the actual joint-cut planner (log2 path count), catching
//     cases where a slightly larger cut yields better cascades.
package reorder

import (
	"fmt"
	"math/rand"

	"hsfsim/internal/circuit"
	"hsfsim/internal/cut"
)

// Options configures the search.
type Options struct {
	// Strategy is the joint-cut grouping used for scoring; the zero value
	// selects the cascade strategy.
	Strategy cut.Strategy
	// MaxBlockQubits is passed through to the planner (0: default).
	MaxBlockQubits int
	// SwapTrials bounds stage-2 planner evaluations (0: 24).
	SwapTrials int
	// Seed drives the stage-2 randomized swap proposals.
	Seed int64
}

// Result reports the found order.
type Result struct {
	// Perm maps old qubit labels to new ones: new = Perm[old].
	Perm []int
	// Circuit is the relabeled circuit.
	Circuit *circuit.Circuit
	// Log2PathsBefore/After are the joint-cut path counts under the
	// original and the optimized order.
	Log2PathsBefore float64
	Log2PathsAfter  float64
	// CrossingBefore/After count crossing gates.
	CrossingBefore int
	CrossingAfter  int
}

// ApplyPermutation relabels every gate qubit q to perm[q].
func ApplyPermutation(c *circuit.Circuit, perm []int) (*circuit.Circuit, error) {
	if len(perm) != c.NumQubits {
		return nil, fmt.Errorf("reorder: permutation length %d for %d qubits", len(perm), c.NumQubits)
	}
	seen := make([]bool, c.NumQubits)
	for _, p := range perm {
		if p < 0 || p >= c.NumQubits || seen[p] {
			return nil, fmt.Errorf("reorder: invalid permutation %v", perm)
		}
		seen[p] = true
	}
	out := circuit.New(c.NumQubits)
	for i := range c.Gates {
		out.Append(c.Gates[i].Remap(func(q int) int { return perm[q] }))
	}
	return out, nil
}

// PermuteIndex maps a basis-state index from the original labeling to the
// permuted one: bit q of x moves to bit perm[q].
func PermuteIndex(x uint64, perm []int) uint64 {
	var y uint64
	for q, p := range perm {
		y |= ((x >> uint(q)) & 1) << uint(p)
	}
	return y
}

// PermuteState rearranges a full statevector from the permuted labeling
// back to the original one: out[x] = amps[PermuteIndex(x, perm)].
func PermuteState(amps []complex128, perm []int) []complex128 {
	out := make([]complex128, len(amps))
	for x := range out {
		out[x] = amps[PermuteIndex(uint64(x), perm)]
	}
	return out
}

// interactionWeights builds the symmetric qubit-interaction matrix.
func interactionWeights(c *circuit.Circuit) [][]int {
	w := make([][]int, c.NumQubits)
	for i := range w {
		w[i] = make([]int, c.NumQubits)
	}
	for i := range c.Gates {
		g := &c.Gates[i]
		for a := 0; a < len(g.Qubits); a++ {
			for b := a + 1; b < len(g.Qubits); b++ {
				w[g.Qubits[a]][g.Qubits[b]]++
				w[g.Qubits[b]][g.Qubits[a]]++
			}
		}
	}
	return w
}

// Optimize searches for a qubit order that minimizes the joint-cut path
// count for the given cut position.
func Optimize(c *circuit.Circuit, cutPos int, opts Options) (*Result, error) {
	if err := (cut.Partition{CutPos: cutPos}).Validate(c.NumQubits); err != nil {
		return nil, err
	}
	strategy := opts.Strategy
	if strategy == cut.StrategyNone {
		strategy = cut.StrategyCascade
	}
	trials := opts.SwapTrials
	if trials <= 0 {
		trials = 24
	}

	score := func(cc *circuit.Circuit) (float64, int, error) {
		p := cut.Partition{CutPos: cutPos}
		plan, err := cut.BuildPlan(cc, cut.Options{
			Partition: p, Strategy: strategy, MaxBlockQubits: opts.MaxBlockQubits,
		})
		if err != nil {
			return 0, 0, err
		}
		return plan.Log2Paths(), len(cut.CrossingGateIndices(cc, p)), nil
	}

	baseLog, baseCross, err := score(c)
	if err != nil {
		return nil, err
	}

	// Stage 1: Kernighan-Lin on the interaction graph. side[q] = true for
	// the lower partition; start from the current labeling.
	w := interactionWeights(c)
	n := c.NumQubits
	lower := make([]bool, n)
	for q := 0; q <= cutPos; q++ {
		lower[q] = true
	}
	gain := func(a, b int) int {
		// Benefit of swapping a (lower) with b (upper).
		da, db := 0, 0
		for q := 0; q < n; q++ {
			if q == a || q == b {
				continue
			}
			if lower[q] {
				da -= w[a][q]
				db += w[b][q]
			} else {
				da += w[a][q]
				db -= w[b][q]
			}
		}
		return da + db - 2*w[a][b]
	}
	for pass := 0; pass < n; pass++ {
		bestA, bestB, bestGain := -1, -1, 0
		for a := 0; a < n; a++ {
			if !lower[a] {
				continue
			}
			for b := 0; b < n; b++ {
				if lower[b] {
					continue
				}
				if g := gain(a, b); g > bestGain {
					bestA, bestB, bestGain = a, b, g
				}
			}
		}
		if bestA < 0 {
			break
		}
		lower[bestA], lower[bestB] = false, true
	}

	// Translate side assignment into a permutation: lower qubits keep
	// ascending order in 0..cutPos, upper in cutPos+1..n-1.
	perm := make([]int, n)
	lo, up := 0, cutPos+1
	for q := 0; q < n; q++ {
		if lower[q] {
			perm[q] = lo
			lo++
		} else {
			perm[q] = up
			up++
		}
	}
	best := perm
	bestC, err := ApplyPermutation(c, best)
	if err != nil {
		return nil, err
	}
	bestLog, bestCross, err := score(bestC)
	if err != nil {
		return nil, err
	}
	if bestLog > baseLog {
		// KL made things worse under the true cost model; keep the original.
		best = identity(n)
		bestC = c
		bestLog, bestCross = baseLog, baseCross
	}

	// Stage 2: randomized cross-partition swaps scored by the planner.
	rng := rand.New(rand.NewSource(opts.Seed))
	for t := 0; t < trials; t++ {
		a := rng.Intn(cutPos + 1)
		b := cutPos + 1 + rng.Intn(n-cutPos-1)
		cand := make([]int, n)
		copy(cand, best)
		// Swap the qubits currently labeled a and b.
		for q := range cand {
			switch cand[q] {
			case a:
				cand[q] = b
			case b:
				cand[q] = a
			}
		}
		candC, err := ApplyPermutation(c, cand)
		if err != nil {
			return nil, err
		}
		candLog, candCross, err := score(candC)
		if err != nil {
			return nil, err
		}
		if candLog < bestLog {
			best, bestC, bestLog, bestCross = cand, candC, candLog, candCross
		}
	}

	return &Result{
		Perm:            best,
		Circuit:         bestC,
		Log2PathsBefore: baseLog,
		Log2PathsAfter:  bestLog,
		CrossingBefore:  baseCross,
		CrossingAfter:   bestCross,
	}, nil
}

func identity(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}
