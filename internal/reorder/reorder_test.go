package reorder

import (
	"math/rand"
	"testing"

	"hsfsim/internal/circuit"
	"hsfsim/internal/cut"
	"hsfsim/internal/gate"
	"hsfsim/internal/statevec"
)

func TestApplyPermutationValidation(t *testing.T) {
	c := circuit.New(3)
	c.Append(gate.CNOT(0, 1))
	if _, err := ApplyPermutation(c, []int{0, 1}); err == nil {
		t.Fatal("short permutation accepted")
	}
	if _, err := ApplyPermutation(c, []int{0, 0, 1}); err == nil {
		t.Fatal("duplicate permutation accepted")
	}
	if _, err := ApplyPermutation(c, []int{0, 1, 5}); err == nil {
		t.Fatal("out-of-range permutation accepted")
	}
}

func TestApplyPermutationRelabels(t *testing.T) {
	c := circuit.New(3)
	c.Append(gate.CNOT(0, 2), gate.H(1))
	out, err := ApplyPermutation(c, []int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.Gates[0].Qubits[0] != 2 || out.Gates[0].Qubits[1] != 1 {
		t.Fatalf("CNOT relabeled to %v", out.Gates[0].Qubits)
	}
	if out.Gates[1].Qubits[0] != 0 {
		t.Fatalf("H relabeled to %v", out.Gates[1].Qubits)
	}
}

func TestPermuteIndexRoundTrip(t *testing.T) {
	perm := []int{2, 0, 3, 1}
	inv := make([]int, len(perm))
	for q, p := range perm {
		inv[p] = q
	}
	for x := uint64(0); x < 16; x++ {
		y := PermuteIndex(x, perm)
		if PermuteIndex(y, inv) != x {
			t.Fatalf("round trip failed for %d", x)
		}
	}
	// Bit q of x must land at bit perm[q].
	if PermuteIndex(1, perm) != 1<<2 {
		t.Fatal("bit 0 should move to bit 2")
	}
}

func TestPermuteStateMatchesSimulation(t *testing.T) {
	// Simulating a permuted circuit and permuting the state back must equal
	// simulating the original circuit.
	rng := rand.New(rand.NewSource(5))
	c := circuit.New(4)
	for i := 0; i < 10; i++ {
		a := rng.Intn(4)
		b := (a + 1 + rng.Intn(3)) % 4
		c.Append(gate.H(a), gate.RZZ(rng.Float64(), a, b))
	}
	perm := []int{3, 1, 0, 2}
	pc, err := ApplyPermutation(c, perm)
	if err != nil {
		t.Fatal(err)
	}
	orig := statevec.NewState(4)
	orig.ApplyAll(c.Gates)
	permuted := statevec.NewState(4)
	permuted.ApplyAll(pc.Gates)
	back := PermuteState(permuted, perm)
	if d := statevec.MaxAbsDiff(orig, statevec.State(back)); d > 1e-12 {
		t.Fatalf("permuted simulation differs by %g", d)
	}
}

// shuffledCascade builds a circuit whose natural qubit order hides an
// obvious cascade: an anchor couples to partners that the initial labeling
// scatters across both partitions.
func shuffledCascade() *circuit.Circuit {
	c := circuit.New(8)
	// Anchor 0 couples to 4,5,6,7 — with cut at 3 every gate crosses, but
	// they already form a cascade. Scatter instead: anchor 2 couples to
	// 0,1,3 (same side mostly) while pairs (4,5),(6,7) stay local. Then
	// couple 3<->4 heavily so the initial cut at 3 separates them.
	c.Append(
		gate.RZZ(0.1, 3, 4), gate.RZZ(0.2, 3, 5), gate.RZZ(0.3, 3, 6),
		gate.RZZ(0.4, 2, 4), gate.RZZ(0.5, 2, 5),
		gate.RZZ(0.6, 0, 1), gate.RZZ(0.7, 6, 7),
	)
	return c
}

func TestOptimizeNeverWorse(t *testing.T) {
	c := shuffledCascade()
	res, err := Optimize(c, 3, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Log2PathsAfter > res.Log2PathsBefore {
		t.Fatalf("optimization made paths worse: %.1f -> %.1f",
			res.Log2PathsBefore, res.Log2PathsAfter)
	}
	// The returned circuit must score exactly Log2PathsAfter.
	plan, err := cut.BuildPlan(res.Circuit, cut.Options{
		Partition: cut.Partition{CutPos: 3}, Strategy: cut.StrategyCascade,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Log2Paths() != res.Log2PathsAfter {
		t.Fatalf("reported %.2f, recomputed %.2f", res.Log2PathsAfter, plan.Log2Paths())
	}
}

func TestOptimizeFindsBetterOrder(t *testing.T) {
	// Two clusters {0,2,4,6} and {1,3,5,7} densely coupled internally and
	// weakly across; the interleaved labeling makes the naive cut terrible.
	c := circuit.New(8)
	even := []int{0, 2, 4, 6}
	odd := []int{1, 3, 5, 7}
	for i := 0; i < len(even); i++ {
		for j := i + 1; j < len(even); j++ {
			c.Append(gate.RZZ(0.3, even[i], even[j]))
			c.Append(gate.RZZ(0.4, odd[i], odd[j]))
		}
	}
	c.Append(gate.RZZ(0.5, 0, 1)) // single weak cross link
	res, err := Optimize(c, 3, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.CrossingAfter >= res.CrossingBefore {
		t.Fatalf("crossing gates not reduced: %d -> %d", res.CrossingBefore, res.CrossingAfter)
	}
	if res.Log2PathsAfter >= res.Log2PathsBefore {
		t.Fatalf("paths not reduced: %.1f -> %.1f", res.Log2PathsBefore, res.Log2PathsAfter)
	}
	// The ideal order cuts exactly the one weak link.
	if res.CrossingAfter != 1 {
		t.Fatalf("crossing after = %d, want 1", res.CrossingAfter)
	}
}

func TestOptimizePreservesSemantics(t *testing.T) {
	c := shuffledCascade()
	for q := 0; q < 8; q++ {
		c.Gates = append([]gate.Gate{gate.H(q)}, c.Gates...)
	}
	res, err := Optimize(c, 3, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	orig := statevec.NewState(8)
	orig.ApplyAll(c.Gates)
	permuted := statevec.NewState(8)
	permuted.ApplyAll(res.Circuit.Gates)
	back := PermuteState(permuted, res.Perm)
	if d := statevec.MaxAbsDiff(orig, statevec.State(back)); d > 1e-12 {
		t.Fatalf("optimized circuit is not equivalent: %g", d)
	}
}

func TestOptimizeValidation(t *testing.T) {
	c := circuit.New(4)
	c.Append(gate.H(0))
	if _, err := Optimize(c, 3, Options{}); err == nil {
		t.Fatal("degenerate cut accepted")
	}
}
