// Package fuse implements qsim-style greedy gate fusion: adjacent gates are
// merged into clusters of at most MaxQubits qubits, replacing many small
// matrix applications by fewer, larger ones. The paper's Table I notes that
// the preprocessing time of both the Schrödinger baseline and the HSF runs
// includes gate fusion; this package is used by both code paths.
package fuse

import (
	"sort"

	"hsfsim/internal/circuit"
	"hsfsim/internal/cmat"
	"hsfsim/internal/gate"
)

// DefaultMaxQubits is the default fusion cluster size. Two-qubit clusters
// capture the dominant win (absorbing single-qubit gates into the unrolled
// two-qubit kernel); larger clusters fall back to the general gather/scatter
// kernel, which measurably loses on these pure-Go kernels (see
// BenchmarkFusionBudget*: budget 2 ≈ 70 ms vs budget 3 ≈ 103 ms on the q18-1
// Schrödinger baseline). qsim's AVX kernels favour larger clusters; this
// implementation does not.
const DefaultMaxQubits = 2

// cluster is an open fusion group under construction.
type cluster struct {
	qubits []int       // sorted
	gates  []gate.Gate // original order
}

func (c *cluster) unionSize(qs []int) int {
	seen := make(map[int]bool, len(c.qubits)+len(qs))
	for _, q := range c.qubits {
		seen[q] = true
	}
	for _, q := range qs {
		seen[q] = true
	}
	return len(seen)
}

func (c *cluster) absorb(g gate.Gate) {
	seen := make(map[int]bool, len(c.qubits))
	for _, q := range c.qubits {
		seen[q] = true
	}
	for _, q := range g.Qubits {
		if !seen[q] {
			c.qubits = append(c.qubits, q)
			seen[q] = true
		}
	}
	sort.Ints(c.qubits)
	c.gates = append(c.gates, g)
}

// emit builds the fused gate for the cluster. Single-gate clusters pass
// through unchanged to keep names and diagonal flags intact.
func (c *cluster) emit() gate.Gate {
	if len(c.gates) == 1 {
		return c.gates[0]
	}
	// Multiply the member gates on the cluster's qubit space.
	dim := 1 << len(c.qubits)
	u := cmat.Identity(dim)
	pos := make(map[int]int, len(c.qubits))
	for k, q := range c.qubits {
		pos[q] = k
	}
	for i := range c.gates {
		local := c.gates[i].Remap(func(q int) int { return pos[q] })
		u = cmat.Mul(circuit.EmbedOnQubits(&local, localRange(len(c.qubits))), u)
	}
	return gate.New("fused", u, nil, append([]int(nil), c.qubits...)...)
}

func localRange(n int) []int {
	r := make([]int, n)
	for i := range r {
		r[i] = i
	}
	return r
}

// Fuse rewrites the gate list of c into fused clusters of at most maxQubits
// qubits. The circuit unitary is preserved exactly: gates are only merged
// with neighbours on their own qubits, never reordered.
func Fuse(gates []gate.Gate, maxQubits int) []gate.Gate {
	if maxQubits < 1 {
		maxQubits = DefaultMaxQubits
	}
	var out []gate.Gate
	// active[q] is the open cluster currently owning qubit q.
	active := make(map[int]*cluster)

	closeCluster := func(cl *cluster) {
		out = append(out, cl.emit())
		for _, q := range cl.qubits {
			if active[q] == cl {
				delete(active, q)
			}
		}
	}

	for i := range gates {
		g := gates[i]
		// Find the distinct open clusters touching g's qubits.
		var touched []*cluster
		seen := make(map[*cluster]bool)
		for _, q := range g.Qubits {
			if cl, ok := active[q]; ok && !seen[cl] {
				seen[cl] = true
				touched = append(touched, cl)
			}
		}
		// Compute the union size if all touched clusters and g merge.
		union := make(map[int]bool)
		for _, q := range g.Qubits {
			union[q] = true
		}
		for _, cl := range touched {
			for _, q := range cl.qubits {
				union[q] = true
			}
		}
		if len(union) <= maxQubits {
			// Merge everything into the first touched cluster (or a new one).
			var target *cluster
			if len(touched) > 0 {
				target = touched[0]
				for _, cl := range touched[1:] {
					// Merging preserves order: all member gates of cl come
					// after target's only if... both are open and disjoint;
					// their gates act on disjoint qubits so interleaving is
					// irrelevant. Concatenate in original order.
					target.gates = append(target.gates, cl.gates...)
					for _, q := range cl.qubits {
						if active[q] == cl {
							active[q] = target
						}
					}
					target.qubits = append(target.qubits, cl.qubits...)
				}
				if len(touched) > 1 {
					sort.Ints(target.qubits)
					target.qubits = dedupSorted(target.qubits)
				}
			} else {
				target = &cluster{}
			}
			target.absorb(g)
			for _, q := range target.qubits {
				active[q] = target
			}
			continue
		}
		// Cannot merge: close the touched clusters and start fresh with g.
		for _, cl := range touched {
			closeCluster(cl)
		}
		if g.NumQubits() <= maxQubits {
			cl := &cluster{}
			cl.absorb(g)
			for _, q := range cl.qubits {
				active[q] = cl
			}
		} else {
			// Gate larger than the fusion budget passes through unchanged.
			out = append(out, g)
		}
	}
	// Close remaining clusters in order of their first gate's position to
	// keep the output deterministic. Open clusters are pairwise independent,
	// so any order is correct.
	var rest []*cluster
	seen := make(map[*cluster]bool)
	for _, cl := range active {
		if !seen[cl] {
			seen[cl] = true
			rest = append(rest, cl)
		}
	}
	sort.Slice(rest, func(i, j int) bool {
		return rest[i].qubits[0] < rest[j].qubits[0]
	})
	for _, cl := range rest {
		out = append(out, cl.emit())
	}
	return out
}

func dedupSorted(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// FuseCircuit applies Fuse to a circuit, returning a new circuit.
func FuseCircuit(c *circuit.Circuit, maxQubits int) *circuit.Circuit {
	out := circuit.New(c.NumQubits)
	out.Gates = Fuse(c.Gates, maxQubits)
	return out
}
