package fuse_test

import (
	"testing"

	"hsfsim"
	"hsfsim/internal/qaoa"
)

// The fusion-budget benchmark behind fuse.DefaultMaxQubits: with the pure-Go
// kernels, 2-qubit clusters (unrolled kernel) are the sweet spot; 3-qubit
// and larger clusters fall back to the general gather/scatter kernel and
// lose to unfused application.
func benchBudget(b *testing.B, fq int) {
	spec := qaoa.ScaledInstances()[3] // q18-1
	inst, err := spec.Generate(qaoa.SingleLayer())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hsfsim.Simulate(inst.Circuit, hsfsim.Options{
			Method: hsfsim.Schrodinger, MaxAmplitudes: 1 << 14, FusionMaxQubits: fq,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFusionBudgetOff(b *testing.B)   { benchBudget(b, -1) }
func BenchmarkFusionBudgetTwo(b *testing.B)   { benchBudget(b, 2) }
func BenchmarkFusionBudgetThree(b *testing.B) { benchBudget(b, 3) }
func BenchmarkFusionBudgetFour(b *testing.B)  { benchBudget(b, 4) }
