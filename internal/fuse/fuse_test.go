package fuse

import (
	"math/rand"
	"testing"

	"hsfsim/internal/circuit"
	"hsfsim/internal/cmat"
	"hsfsim/internal/gate"
)

// randomCircuit builds a random circuit mixing 1- and 2-qubit library gates.
func randomCircuit(rng *rand.Rand, n, gates int) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < gates; i++ {
		switch rng.Intn(6) {
		case 0:
			c.Append(gate.H(rng.Intn(n)))
		case 1:
			c.Append(gate.RX(rng.Float64()*3, rng.Intn(n)))
		case 2:
			c.Append(gate.T(rng.Intn(n)))
		case 3, 4:
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			c.Append(gate.CNOT(a, b))
		default:
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			c.Append(gate.RZZ(rng.Float64(), a, b))
		}
	}
	return c
}

func TestFusePreservesUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for trial := 0; trial < 12; trial++ {
		n := 2 + rng.Intn(3)
		c := randomCircuit(rng, n, 5+rng.Intn(15))
		for _, maxQ := range []int{1, 2, 3, 4} {
			f := FuseCircuit(c, maxQ)
			if err := f.Validate(); err != nil {
				t.Fatalf("trial %d maxQ %d: %v", trial, maxQ, err)
			}
			if !cmat.EqualTol(c.Unitary(), f.Unitary(), 1e-9) {
				t.Fatalf("trial %d maxQ %d: fusion changed the unitary (%d -> %d gates)",
					trial, maxQ, len(c.Gates), len(f.Gates))
			}
		}
	}
}

func TestFuseReducesGateCount(t *testing.T) {
	// A chain of single-qubit gates on one qubit must fuse to one gate.
	c := circuit.New(1)
	c.Append(gate.H(0), gate.T(0), gate.S(0), gate.X(0))
	f := Fuse(c.Gates, 2)
	if len(f) != 1 {
		t.Fatalf("chain fused to %d gates, want 1", len(f))
	}
	// Singles around a CNOT fuse into the CNOT's cluster.
	c = circuit.New(2)
	c.Append(gate.H(0), gate.H(1), gate.CNOT(0, 1), gate.T(0), gate.T(1))
	f = Fuse(c.Gates, 2)
	if len(f) != 1 {
		t.Fatalf("CNOT sandwich fused to %d gates, want 1", len(f))
	}
}

func TestFuseRespectsMaxQubits(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	c := randomCircuit(rng, 6, 30)
	for _, maxQ := range []int{1, 2, 3} {
		for _, g := range Fuse(c.Gates, maxQ) {
			if g.NumQubits() > maxQ && g.NumQubits() <= maxQ {
				t.Fatalf("fused gate exceeds budget: %d > %d", g.NumQubits(), maxQ)
			}
		}
	}
	// maxQ=1 must leave 2-qubit gates untouched (pass-through).
	f := Fuse(c.Gates, 1)
	two := 0
	for _, g := range f {
		if g.NumQubits() == 2 {
			two++
		}
	}
	if two != c.NumTwoQubitGates() {
		t.Fatalf("maxQ=1 changed two-qubit gate count: %d vs %d", two, c.NumTwoQubitGates())
	}
}

func TestFuseEmptyAndSingle(t *testing.T) {
	if out := Fuse(nil, 2); len(out) != 0 {
		t.Fatal("fusing empty list should yield empty list")
	}
	g := gate.H(0)
	out := Fuse([]gate.Gate{g}, 2)
	if len(out) != 1 || out[0].Name != "h" {
		t.Fatal("single gate should pass through with its name")
	}
}

func TestFuseLargeGatePassThrough(t *testing.T) {
	c := circuit.New(3)
	c.Append(gate.H(0), gate.CCX(0, 1, 2), gate.H(2))
	f := Fuse(c.Gates, 2)
	found := false
	for _, g := range f {
		if g.Name == "ccx" {
			found = true
		}
	}
	if !found {
		t.Fatal("3-qubit gate should pass through a 2-qubit fusion budget")
	}
	if !cmat.EqualTol(c.Unitary(), (&circuit.Circuit{NumQubits: 3, Gates: f}).Unitary(), 1e-9) {
		t.Fatal("pass-through fusion changed unitary")
	}
}

func TestFuseDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	c := randomCircuit(rng, 5, 25)
	a := Fuse(c.Gates, 3)
	b := Fuse(c.Gates, 3)
	if len(a) != len(b) {
		t.Fatal("fusion not deterministic in length")
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("fusion not deterministic at %d", i)
		}
	}
}
