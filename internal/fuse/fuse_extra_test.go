package fuse

import (
	"testing"

	"hsfsim/internal/circuit"
	"hsfsim/internal/cmat"
	"hsfsim/internal/gate"
)

func TestFuseBridgingGateMergesClusters(t *testing.T) {
	// Two independent single-qubit clusters bridged by a CNOT: with a
	// 2-qubit budget everything collapses into one cluster.
	c := circuit.New(2)
	c.Append(gate.H(0), gate.T(0), gate.H(1), gate.S(1), gate.CNOT(0, 1))
	f := Fuse(c.Gates, 2)
	if len(f) != 1 {
		t.Fatalf("fused to %d gates, want 1", len(f))
	}
	if !cmat.EqualTol(c.Unitary(), (&circuit.Circuit{NumQubits: 2, Gates: f}).Unitary(), 1e-9) {
		t.Fatal("bridged fusion changed the unitary")
	}
}

func TestFuseClosesWhenBudgetExceeded(t *testing.T) {
	// A chain of CNOTs over 4 qubits with a 2-qubit budget must close
	// clusters instead of growing them.
	c := circuit.New(4)
	c.Append(gate.CNOT(0, 1), gate.CNOT(1, 2), gate.CNOT(2, 3))
	f := Fuse(c.Gates, 2)
	for _, g := range f {
		if g.NumQubits() > 2 {
			t.Fatalf("cluster exceeds budget: %d qubits", g.NumQubits())
		}
	}
	if !cmat.EqualTol(c.Unitary(), (&circuit.Circuit{NumQubits: 4, Gates: f}).Unitary(), 1e-9) {
		t.Fatal("budget-limited fusion changed the unitary")
	}
}

func TestFuseKeepsDiagonalRunsCorrect(t *testing.T) {
	// Diagonal-heavy circuits (QAOA problem layers) must fuse exactly.
	c := circuit.New(3)
	c.Append(
		gate.RZZ(0.2, 0, 1), gate.RZ(0.3, 0), gate.RZZ(0.4, 0, 1),
		gate.CZ(1, 2), gate.RZ(0.5, 2),
	)
	for _, maxQ := range []int{2, 3} {
		f := FuseCircuit(c, maxQ)
		if !cmat.EqualTol(c.Unitary(), f.Unitary(), 1e-9) {
			t.Fatalf("maxQ=%d: diagonal fusion changed the unitary", maxQ)
		}
	}
}
