package cmat

import (
	"errors"
	"math"
	"sort"
)

// ErrEigNoConvergence is returned when the Jacobi eigensolver fails to
// converge.
var ErrEigNoConvergence = errors.New("cmat: eigendecomposition did not converge")

// EigSymReal computes the eigendecomposition of a real symmetric matrix
// given as row-major data: A = V·diag(vals)·Vᵀ with V orthogonal (columns
// are eigenvectors) and eigenvalues sorted ascending. Uses cyclic Jacobi
// rotations.
func EigSymReal(a [][]float64) (vals []float64, vecs [][]float64, err error) {
	n := len(a)
	// Working copies.
	b := make([][]float64, n)
	v := make([][]float64, n)
	for i := range b {
		b[i] = append([]float64(nil), a[i]...)
		if len(b[i]) != n {
			return nil, nil, errors.New("cmat: EigSymReal needs a square matrix")
		}
		v[i] = make([]float64, n)
		v[i][i] = 1
	}

	off := func() float64 {
		var s float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += b[i][j] * b[i][j]
			}
		}
		return s
	}
	var norm float64
	for i := range a {
		for j := range a[i] {
			norm += a[i][j] * a[i][j]
		}
	}
	tol := 1e-28 * (norm + 1)

	for sweep := 0; sweep < 64; sweep++ {
		if off() <= tol {
			vals = make([]float64, n)
			for i := range vals {
				vals[i] = b[i][i]
			}
			// Sort ascending, permuting eigenvector columns.
			idx := make([]int, n)
			for i := range idx {
				idx[i] = i
			}
			sort.SliceStable(idx, func(x, y int) bool { return vals[idx[x]] < vals[idx[y]] })
			sv := make([]float64, n)
			sw := make([][]float64, n)
			for i := range sw {
				sw[i] = make([]float64, n)
			}
			for newJ, oldJ := range idx {
				sv[newJ] = vals[oldJ]
				for i := 0; i < n; i++ {
					sw[i][newJ] = v[i][oldJ]
				}
			}
			return sv, sw, nil
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := b[p][q]
				if math.Abs(apq) < 1e-300 {
					continue
				}
				theta := (b[q][q] - b[p][p]) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(1+theta*theta))
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Rotate rows/columns p, q of b.
				for i := 0; i < n; i++ {
					bip, biq := b[i][p], b[i][q]
					b[i][p] = c*bip - s*biq
					b[i][q] = s*bip + c*biq
				}
				for j := 0; j < n; j++ {
					bpj, bqj := b[p][j], b[q][j]
					b[p][j] = c*bpj - s*bqj
					b[q][j] = s*bpj + c*bqj
				}
				for i := 0; i < n; i++ {
					vip, viq := v[i][p], v[i][q]
					v[i][p] = c*vip - s*viq
					v[i][q] = s*vip + c*viq
				}
			}
		}
	}
	return nil, nil, ErrEigNoConvergence
}

// SimDiagSymReal simultaneously diagonalizes two commuting real symmetric
// matrices: returns an orthogonal O (as column vectors) with Oᵀ·X·O and
// Oᵀ·Y·O both diagonal. Degenerate eigenspaces of X are resolved by
// diagonalizing Y within them.
func SimDiagSymReal(x, y [][]float64) ([][]float64, error) {
	n := len(x)
	valsX, o, err := EigSymReal(x)
	if err != nil {
		return nil, err
	}
	// Group near-equal eigenvalues of X.
	const degTol = 1e-7
	start := 0
	for start < n {
		end := start + 1
		for end < n && math.Abs(valsX[end]-valsX[start]) < degTol {
			end++
		}
		if end-start > 1 {
			// Diagonalize the Y block restricted to columns [start, end).
			k := end - start
			block := make([][]float64, k)
			for i := 0; i < k; i++ {
				block[i] = make([]float64, k)
				for j := 0; j < k; j++ {
					// block[i][j] = o_{:,start+i}ᵀ · Y · o_{:,start+j}
					var s float64
					for r := 0; r < n; r++ {
						var yr float64
						for c := 0; c < n; c++ {
							yr += y[r][c] * o[c][start+j]
						}
						s += o[r][start+i] * yr
					}
					block[i][j] = s
				}
			}
			_, w, err := EigSymReal(block)
			if err != nil {
				return nil, err
			}
			// Rotate the group columns: o' = o_group · w.
			rotated := make([][]float64, n)
			for r := 0; r < n; r++ {
				rotated[r] = make([]float64, k)
				for j := 0; j < k; j++ {
					var s float64
					for i := 0; i < k; i++ {
						s += o[r][start+i] * w[i][j]
					}
					rotated[r][j] = s
				}
			}
			for r := 0; r < n; r++ {
				for j := 0; j < k; j++ {
					o[r][start+j] = rotated[r][j]
				}
			}
		}
		start = end
	}
	return o, nil
}
