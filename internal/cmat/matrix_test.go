package cmat

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-10

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return m
}

// randomUnitary builds a Haar-ish random unitary by Gram-Schmidt on a random
// Gaussian matrix.
func randomUnitary(rng *rand.Rand, n int) *Matrix {
	m := randomMatrix(rng, n, n)
	// Modified Gram-Schmidt over columns.
	for j := 0; j < n; j++ {
		for k := 0; k < j; k++ {
			var dot complex128
			for i := 0; i < n; i++ {
				dot += cmplx.Conj(m.At(i, k)) * m.At(i, j)
			}
			for i := 0; i < n; i++ {
				m.Set(i, j, m.At(i, j)-dot*m.At(i, k))
			}
		}
		var norm float64
		for i := 0; i < n; i++ {
			norm += real(m.At(i, j))*real(m.At(i, j)) + imag(m.At(i, j))*imag(m.At(i, j))
		}
		inv := complex(1/math.Sqrt(norm), 0)
		for i := 0; i < n; i++ {
			m.Set(i, j, m.At(i, j)*inv)
		}
	}
	return m
}

func TestIdentityMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, 5, 7)
	if !EqualTol(Mul(Identity(5), a), a, tol) {
		t.Fatal("I·A != A")
	}
	if !EqualTol(Mul(a, Identity(7)), a, tol) {
		t.Fatal("A·I != A")
	}
}

func TestMulAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomMatrix(rng, 3, 4)
	b := randomMatrix(rng, 4, 5)
	c := randomMatrix(rng, 5, 2)
	left := Mul(Mul(a, b), c)
	right := Mul(a, Mul(b, c))
	if !EqualTol(left, right, 1e-9) {
		t.Fatalf("(AB)C != A(BC), diff %g", MaxAbsDiff(left, right))
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomMatrix(rng, 6, 4)
	v := randomMatrix(rng, 4, 1)
	got := MulVec(a, v.Data)
	want := Mul(a, v)
	for i := range got {
		if cmplx.Abs(got[i]-want.Data[i]) > tol {
			t.Fatalf("MulVec[%d] = %v, want %v", i, got[i], want.Data[i])
		}
	}
}

func TestKronDimensionsAndEntries(t *testing.T) {
	a := FromSlice(2, 2, []complex128{1, 2, 3, 4})
	b := FromSlice(2, 2, []complex128{0, 5, 6, 7})
	k := Kron(a, b)
	if k.Rows != 4 || k.Cols != 4 {
		t.Fatalf("Kron shape %dx%d, want 4x4", k.Rows, k.Cols)
	}
	// (a⊗b)[ia*2+ib, ja*2+jb] = a[ia,ja]*b[ib,jb]
	for ia := 0; ia < 2; ia++ {
		for ja := 0; ja < 2; ja++ {
			for ib := 0; ib < 2; ib++ {
				for jb := 0; jb < 2; jb++ {
					want := a.At(ia, ja) * b.At(ib, jb)
					got := k.At(ia*2+ib, ja*2+jb)
					if got != want {
						t.Fatalf("Kron[%d%d,%d%d] = %v, want %v", ia, ib, ja, jb, got, want)
					}
				}
			}
		}
	}
}

func TestKronMixedProduct(t *testing.T) {
	// (A⊗B)(C⊗D) = (AC)⊗(BD)
	rng := rand.New(rand.NewSource(4))
	a := randomMatrix(rng, 2, 2)
	b := randomMatrix(rng, 3, 3)
	c := randomMatrix(rng, 2, 2)
	d := randomMatrix(rng, 3, 3)
	lhs := Mul(Kron(a, b), Kron(c, d))
	rhs := Kron(Mul(a, c), Mul(b, d))
	if !EqualTol(lhs, rhs, 1e-9) {
		t.Fatalf("mixed product rule violated, diff %g", MaxAbsDiff(lhs, rhs))
	}
}

func TestDaggerInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomMatrix(rng, 4, 6)
	if !EqualTol(a.Dagger().Dagger(), a, tol) {
		t.Fatal("(A†)† != A")
	}
}

func TestDaggerOfProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randomMatrix(rng, 3, 4)
	b := randomMatrix(rng, 4, 5)
	lhs := Mul(a, b).Dagger()
	rhs := Mul(b.Dagger(), a.Dagger())
	if !EqualTol(lhs, rhs, 1e-9) {
		t.Fatal("(AB)† != B†A†")
	}
}

func TestRandomUnitaryIsUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{2, 4, 8} {
		u := randomUnitary(rng, n)
		if !u.IsUnitary(1e-9) {
			t.Fatalf("randomUnitary(%d) not unitary", n)
		}
	}
}

func TestTraceCyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randomMatrix(rng, 4, 4)
	b := randomMatrix(rng, 4, 4)
	d := Mul(a, b).Trace() - Mul(b, a).Trace()
	if cmplx.Abs(d) > 1e-9 {
		t.Fatalf("tr(AB) != tr(BA): diff %v", d)
	}
}

func TestCommutatorDiagonal(t *testing.T) {
	// Diagonal matrices commute.
	a := FromSlice(3, 3, []complex128{1, 0, 0, 0, 2i, 0, 0, 0, -3})
	b := FromSlice(3, 3, []complex128{7, 0, 0, 0, 1i, 0, 0, 0, 2})
	if Commutator(a, b).FrobeniusNorm() > tol {
		t.Fatal("diagonal matrices should commute")
	}
	if !a.IsDiagonal(tol) {
		t.Fatal("IsDiagonal false for diagonal matrix")
	}
}

func TestScaleAddSub(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomMatrix(rng, 3, 3)
	twoA := Scale(2, a)
	if !EqualTol(Add(a, a), twoA, tol) {
		t.Fatal("A+A != 2A")
	}
	if Sub(a, a).FrobeniusNorm() > tol {
		t.Fatal("A-A != 0")
	}
}

func TestKronIdentityProperty(t *testing.T) {
	// Property: Frobenius norm is multiplicative under Kronecker products.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomMatrix(rng, 2, 2)
		b := randomMatrix(rng, 2, 2)
		got := Kron(a, b).FrobeniusNorm()
		want := a.FrobeniusNorm() * b.FrobeniusNorm()
		return math.Abs(got-want) < 1e-9*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeVsDagger(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randomMatrix(rng, 3, 5)
	if !EqualTol(a.Transpose().Conj(), a.Dagger(), tol) {
		t.Fatal("conj(transpose) != dagger")
	}
}

func TestFromSlicePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched data length")
		}
	}()
	FromSlice(2, 2, []complex128{1, 2, 3})
}

func TestMulPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for dimension mismatch")
		}
	}()
	Mul(New(2, 3), New(2, 3))
}
