package cmat

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// checkSVD verifies the three defining properties of an SVD: reconstruction,
// descending singular values, and orthonormal columns (for columns with
// nonzero singular values).
func checkSVD(t *testing.T, a *Matrix, res *SVDResult) {
	t.Helper()
	rec := res.Reconstruct()
	if d := MaxAbsDiff(a, rec); d > 1e-8 {
		t.Fatalf("reconstruction error %g", d)
	}
	for i := 1; i < len(res.S); i++ {
		if res.S[i] > res.S[i-1]+1e-12 {
			t.Fatalf("singular values not descending: S[%d]=%g > S[%d]=%g", i, res.S[i], i-1, res.S[i-1])
		}
	}
	for _, s := range res.S {
		if s < -1e-15 {
			t.Fatalf("negative singular value %g", s)
		}
	}
	checkOrthonormalColumns(t, res.U, res.S)
	checkOrthonormalColumns(t, res.V, res.S)
}

func checkOrthonormalColumns(t *testing.T, m *Matrix, s []float64) {
	t.Helper()
	for j := 0; j < m.Cols; j++ {
		if s[j] <= 1e-12 {
			continue
		}
		for k := j; k < m.Cols; k++ {
			if s[k] <= 1e-12 {
				continue
			}
			var dot complex128
			for i := 0; i < m.Rows; i++ {
				dot += cmplx.Conj(m.At(i, j)) * m.At(i, k)
			}
			want := complex128(0)
			if j == k {
				want = 1
			}
			if cmplx.Abs(dot-want) > 1e-8 {
				t.Fatalf("columns %d,%d not orthonormal: dot=%v", j, k, dot)
			}
		}
	}
}

func TestSVDSquare(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 3, 4, 8, 16} {
		a := randomMatrix(rng, n, n)
		res, err := SVD(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		checkSVD(t, a, res)
	}
}

func TestSVDTall(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randomMatrix(rng, 16, 4)
	res, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if res.U.Rows != 16 || res.U.Cols != 4 || res.V.Rows != 4 {
		t.Fatalf("unexpected shapes U %dx%d V %dx%d", res.U.Rows, res.U.Cols, res.V.Rows, res.V.Cols)
	}
	checkSVD(t, a, res)
}

func TestSVDWide(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randomMatrix(rng, 4, 16)
	res, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if res.U.Rows != 4 || res.V.Rows != 16 || len(res.S) != 4 {
		t.Fatalf("unexpected shapes U %dx%d V %dx%d S %d", res.U.Rows, res.U.Cols, res.V.Rows, res.V.Cols, len(res.S))
	}
	checkSVD(t, a, res)
}

func TestSVDUnitaryHasUnitSingularValues(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	u := randomUnitary(rng, 8)
	res, err := SVD(u)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.S {
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("S[%d]=%g, want 1 for unitary input", i, s)
		}
	}
}

func TestSVDRankDeficient(t *testing.T) {
	// Build a rank-2 4x4 matrix as the sum of two outer products.
	rng := rand.New(rand.NewSource(15))
	u1 := randomMatrix(rng, 4, 1)
	v1 := randomMatrix(rng, 4, 1)
	u2 := randomMatrix(rng, 4, 1)
	v2 := randomMatrix(rng, 4, 1)
	a := Add(Mul(u1, v1.Dagger()), Mul(u2, v2.Dagger()))
	res, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	checkSVD(t, a, res)
	if r := res.Rank(1e-10); r != 2 {
		t.Fatalf("Rank = %d, want 2 (S=%v)", r, res.S)
	}
}

func TestSVDZeroMatrix(t *testing.T) {
	a := New(4, 4)
	res, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if r := res.Rank(1e-10); r != 0 {
		t.Fatalf("Rank of zero matrix = %d, want 0", r)
	}
}

func TestSVDDiagonal(t *testing.T) {
	a := New(3, 3)
	a.Set(0, 0, 3)
	a.Set(1, 1, complex(0, 5)) // complex diagonal entry: singular value is |.|=5
	a.Set(2, 2, 1)
	res, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 3, 1}
	for i := range want {
		if math.Abs(res.S[i]-want[i]) > 1e-9 {
			t.Fatalf("S = %v, want %v", res.S, want)
		}
	}
	checkSVD(t, a, res)
}

func TestSVDSingularValuesMatchFrobenius(t *testing.T) {
	// Property: Σ s_i² = ||A||_F² for random matrices of random small shapes.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(12)
		cols := 1 + rng.Intn(12)
		a := randomMatrix(rng, rows, cols)
		res, err := SVD(a)
		if err != nil {
			return false
		}
		var sum float64
		for _, s := range res.S {
			sum += s * s
		}
		f2 := a.FrobeniusNorm()
		return math.Abs(sum-f2*f2) < 1e-8*(1+f2*f2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSVDReconstructProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(10)
		cols := 1 + rng.Intn(10)
		a := randomMatrix(rng, rows, cols)
		res, err := SVD(a)
		if err != nil {
			return false
		}
		return MaxAbsDiff(a, res.Reconstruct()) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSVDEmpty(t *testing.T) {
	res, err := SVD(New(0, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.S) != 0 {
		t.Fatalf("expected no singular values, got %v", res.S)
	}
}

func BenchmarkSVD16x16(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	a := randomMatrix(rng, 16, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SVD(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSVD64x64(b *testing.B) {
	rng := rand.New(rand.NewSource(43))
	a := randomMatrix(rng, 64, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SVD(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMul64(b *testing.B) {
	rng := rand.New(rand.NewSource(44))
	x := randomMatrix(rng, 64, 64)
	y := randomMatrix(rng, 64, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}
