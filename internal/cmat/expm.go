package cmat

import "math"

// Expm computes the matrix exponential e^{A} by scaling-and-squaring with a
// Taylor expansion: A is scaled by 2^{-k} until its Frobenius norm is small,
// the series is summed to machine precision, and the result is squared k
// times. Intended for the small operators used in tests and Hamiltonian
// diagnostics (dimension ≲ 2^10).
func Expm(a *Matrix) *Matrix {
	if !a.IsSquare() {
		panic("cmat: Expm of non-square matrix")
	}
	norm := a.FrobeniusNorm()
	k := 0
	for norm > 0.25 {
		norm /= 2
		k++
	}
	scale := complex(1/math.Pow(2, float64(k)), 0)
	scaled := Scale(scale, a)

	u := Identity(a.Rows)
	term := Identity(a.Rows)
	for m := 1; m <= 24; m++ {
		term = Scale(complex(1/float64(m), 0), Mul(term, scaled))
		u = Add(u, term)
		if term.FrobeniusNorm() < 1e-18 {
			break
		}
	}
	for i := 0; i < k; i++ {
		u = Mul(u, u)
	}
	return u
}

// ExpmHermitian computes e^{iθH} for Hermitian H — the time-evolution
// helper used by the Trotter validation and the Hamiltonian diagnostics.
func ExpmHermitian(h *Matrix, theta float64) *Matrix {
	return Expm(Scale(complex(0, theta), h))
}
