package cmat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSym(rng *rand.Rand, n int) [][]float64 {
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a[i][j] = v
			a[j][i] = v
		}
	}
	return a
}

func checkEigenpairs(t *testing.T, a [][]float64, vals []float64, vecs [][]float64) {
	t.Helper()
	n := len(a)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			var av float64
			for k := 0; k < n; k++ {
				av += a[i][k] * vecs[k][j]
			}
			if math.Abs(av-vals[j]*vecs[i][j]) > 1e-8 {
				t.Fatalf("eigenpair %d residual %g", j, av-vals[j]*vecs[i][j])
			}
		}
	}
	// Orthonormal columns.
	for p := 0; p < n; p++ {
		for q := p; q < n; q++ {
			var dot float64
			for i := 0; i < n; i++ {
				dot += vecs[i][p] * vecs[i][q]
			}
			want := 0.0
			if p == q {
				want = 1
			}
			if math.Abs(dot-want) > 1e-9 {
				t.Fatalf("columns %d,%d dot %g", p, q, dot)
			}
		}
	}
	// Ascending order.
	for j := 1; j < n; j++ {
		if vals[j] < vals[j-1]-1e-12 {
			t.Fatalf("eigenvalues not ascending: %v", vals)
		}
	}
}

func TestEigSymRealProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		a := randomSym(rng, n)
		vals, vecs, err := EigSymReal(a)
		if err != nil {
			return false
		}
		// Trace preserved.
		var trA, sumV float64
		for i := 0; i < n; i++ {
			trA += a[i][i]
			sumV += vals[i]
		}
		if math.Abs(trA-sumV) > 1e-8 {
			return false
		}
		checkEigenpairs(t, a, vals, vecs)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEigSymRealRejectsNonSquare(t *testing.T) {
	if _, _, err := EigSymReal([][]float64{{1, 2}}); err == nil {
		t.Fatal("ragged input accepted")
	}
}

func TestEigSymRealIdentityAndDiagonal(t *testing.T) {
	a := [][]float64{{3, 0}, {0, -1}}
	vals, _, err := EigSymReal(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]+1) > 1e-12 || math.Abs(vals[1]-3) > 1e-12 {
		t.Fatalf("vals = %v", vals)
	}
}

func TestSimDiagCommutingFromSharedBasis(t *testing.T) {
	// Build X = O D1 Oᵀ, Y = O D2 Oᵀ with a shared random orthogonal basis
	// and DEGENERATE D1 so the grouping logic is exercised; the returned
	// basis must diagonalize both.
	rng := rand.New(rand.NewSource(33))
	n := 4
	// Random orthogonal O from EigSymReal of a random symmetric matrix.
	_, o, err := EigSymReal(randomSym(rng, n))
	if err != nil {
		t.Fatal(err)
	}
	d1 := []float64{2, 2, 2, 5} // triple degeneracy
	d2 := []float64{1, 3, -1, 7}
	build := func(d []float64) [][]float64 {
		m := make([][]float64, n)
		for i := range m {
			m[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				for k := 0; k < n; k++ {
					m[i][j] += o[i][k] * d[k] * o[j][k]
				}
			}
		}
		return m
	}
	x := build(d1)
	y := build(d2)
	q, err := SimDiagSymReal(x, y)
	if err != nil {
		t.Fatal(err)
	}
	offDiag := func(m [][]float64) float64 {
		var worst float64
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				var v float64
				for r := 0; r < n; r++ {
					var mr float64
					for c := 0; c < n; c++ {
						mr += m[r][c] * q[c][j]
					}
					v += q[r][i] * mr
				}
				if math.Abs(v) > worst {
					worst = math.Abs(v)
				}
			}
		}
		return worst
	}
	if d := offDiag(x); d > 1e-8 {
		t.Fatalf("X not diagonalized: %g", d)
	}
	if d := offDiag(y); d > 1e-8 {
		t.Fatalf("Y not diagonalized: %g", d)
	}
}
