package cmat

import (
	"errors"
	"math"
	"math/cmplx"
	"sort"
)

// SVDResult holds a (thin) singular value decomposition A = U · diag(S) · V†.
// U is Rows×k, V is Cols×k with k = min(Rows, Cols), and S is sorted in
// descending order. Columns of U and V corresponding to singular values that
// are numerically zero may be zero vectors; callers interested only in the
// numerical rank (all of this repository) never touch them.
type SVDResult struct {
	U *Matrix
	S []float64
	V *Matrix
}

// maxJacobiSweeps bounds the one-sided Jacobi iteration. Convergence for the
// small, well-conditioned matrices produced by gate reshaping is typically
// reached in fewer than ten sweeps.
const maxJacobiSweeps = 64

// ErrSVDNoConvergence is returned when the Jacobi iteration fails to converge
// within maxJacobiSweeps sweeps.
var ErrSVDNoConvergence = errors.New("cmat: SVD did not converge")

// SVD computes the singular value decomposition of a using one-sided Jacobi
// rotations. The input matrix is not modified.
func SVD(a *Matrix) (*SVDResult, error) {
	if a.Rows == 0 || a.Cols == 0 {
		return &SVDResult{U: New(a.Rows, 0), S: nil, V: New(a.Cols, 0)}, nil
	}
	if a.Rows >= a.Cols {
		return svdTall(a)
	}
	// For wide matrices decompose the conjugate transpose:
	// A† = U'ΣV'† implies A = V'ΣU'†.
	res, err := svdTall(a.Dagger())
	if err != nil {
		return nil, err
	}
	return &SVDResult{U: res.V, S: res.S, V: res.U}, nil
}

// svdTall handles Rows >= Cols via one-sided Jacobi: columns of a working
// copy B are rotated pairwise until mutually orthogonal; then B = U·diag(S)
// and the accumulated rotations form V.
func svdTall(a *Matrix) (*SVDResult, error) {
	m, n := a.Rows, a.Cols
	b := a.Clone()
	v := Identity(n)

	// Column access helpers over the row-major layout.
	colDot := func(mat *Matrix, p, q int) complex128 { // mat[:,p]† · mat[:,q]
		var s complex128
		for i := 0; i < mat.Rows; i++ {
			s += cmplx.Conj(mat.Data[i*mat.Cols+p]) * mat.Data[i*mat.Cols+q]
		}
		return s
	}
	colNorm2 := func(mat *Matrix, p int) float64 {
		var s float64
		for i := 0; i < mat.Rows; i++ {
			x := mat.Data[i*mat.Cols+p]
			s += real(x)*real(x) + imag(x)*imag(x)
		}
		return s
	}

	const eps = 1e-14
	// Columns whose norm is negligible relative to the matrix norm are
	// treated as zero: rotating against them would chase round-off noise
	// forever on rank-deficient inputs.
	zeroCol := eps * a.FrobeniusNorm()
	zeroCol2 := zeroCol * zeroCol
	converged := false
	for sweep := 0; sweep < maxJacobiSweeps && !converged; sweep++ {
		converged = true
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				alpha := colNorm2(b, p)
				beta := colNorm2(b, q)
				if alpha <= zeroCol2 || beta <= zeroCol2 {
					continue
				}
				gamma := colDot(b, p, q)
				ga := cmplx.Abs(gamma)
				if ga <= eps*math.Sqrt(alpha*beta) || ga == 0 {
					continue
				}
				converged = false
				// Phase so that the effective off-diagonal element is real:
				// with ṽ_q = e^{-iφ}·b_q we have b_p†·ṽ_q = |γ| ∈ ℝ.
				phase := gamma / complex(ga, 0)
				// Real 2x2 symmetric Jacobi on [[α,|γ|],[|γ|,β]].
				zeta := (beta - alpha) / (2 * ga)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				cs := 1 / math.Sqrt(1+t*t)
				sn := cs * t
				// Column update matrix J (unitary):
				//   new_p = cs·b_p - sn·conj(phase)·b_q
				//   new_q = sn·phase·b_p + cs·b_q
				cP := complex(cs, 0)
				sP := complex(sn, 0) * cmplx.Conj(phase)
				sQ := complex(sn, 0) * phase
				rotateCols(b, p, q, cP, sP, sQ)
				rotateCols(v, p, q, cP, sP, sQ)
			}
		}
	}
	if !converged {
		return nil, ErrSVDNoConvergence
	}

	// Extract singular values (column norms) and normalize U.
	s := make([]float64, n)
	u := New(m, n)
	for j := 0; j < n; j++ {
		s[j] = math.Sqrt(colNorm2(b, j))
		if s[j] > 0 {
			inv := complex(1/s[j], 0)
			for i := 0; i < m; i++ {
				u.Data[i*n+j] = b.Data[i*n+j] * inv
			}
		}
	}

	// Sort descending by singular value, permuting U and V consistently.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool { return s[idx[i]] > s[idx[j]] })
	us := New(m, n)
	vs := New(n, n)
	ss := make([]float64, n)
	for newJ, oldJ := range idx {
		ss[newJ] = s[oldJ]
		for i := 0; i < m; i++ {
			us.Data[i*n+newJ] = u.Data[i*n+oldJ]
		}
		for i := 0; i < n; i++ {
			vs.Data[i*n+newJ] = v.Data[i*n+oldJ]
		}
	}
	return &SVDResult{U: us, S: ss, V: vs}, nil
}

// rotateCols applies the unitary column rotation
//
//	new_p = cP·col_p - sP·col_q
//	new_q = sQ·col_p + cP·col_q
//
// in place.
func rotateCols(mat *Matrix, p, q int, cP, sP, sQ complex128) {
	for i := 0; i < mat.Rows; i++ {
		rp := i*mat.Cols + p
		rq := i*mat.Cols + q
		bp, bq := mat.Data[rp], mat.Data[rq]
		mat.Data[rp] = cP*bp - sP*bq
		mat.Data[rq] = sQ*bp + cP*bq
	}
}

// Rank returns the numerical rank: the number of singular values exceeding
// tol·S[0]. A non-positive tol selects a default of 1e-10.
func (r *SVDResult) Rank(tol float64) int {
	if len(r.S) == 0 || r.S[0] == 0 {
		return 0
	}
	if tol <= 0 {
		tol = 1e-10
	}
	cut := tol * r.S[0]
	n := 0
	for _, s := range r.S {
		if s > cut {
			n++
		}
	}
	return n
}

// Reconstruct recomputes U·diag(S)·V† — useful for verifying the
// factorization in tests.
func (r *SVDResult) Reconstruct() *Matrix {
	m := r.U.Rows
	n := r.V.Rows
	k := len(r.S)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for t := 0; t < k; t++ {
			uv := r.U.Data[i*r.U.Cols+t] * complex(r.S[t], 0)
			if uv == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				out.Data[i*n+j] += uv * cmplx.Conj(r.V.Data[j*r.V.Cols+t])
			}
		}
	}
	return out
}
