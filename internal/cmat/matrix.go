// Package cmat provides dense complex linear algebra for quantum circuit
// simulation: matrices over complex128, Kronecker products, and a complex
// singular value decomposition built from scratch on the standard library.
//
// Matrices are stored in row-major order. Dimensions in this package are
// typically powers of two (operators on qubit registers), but nothing in the
// package requires that.
package cmat

import (
	"fmt"
	"math"
	"math/cmplx"
	"strings"
)

// Matrix is a dense, row-major complex matrix.
type Matrix struct {
	Rows, Cols int
	Data       []complex128
}

// New returns a zero matrix with the given shape.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("cmat: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// FromSlice builds a matrix from a row-major slice. The slice is copied.
func FromSlice(rows, cols int, data []complex128) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("cmat: data length %d does not match %dx%d", len(data), rows, cols))
	}
	m := New(rows, cols)
	copy(m.Data, data)
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// IsSquare reports whether m has equal row and column counts.
func (m *Matrix) IsSquare() bool { return m.Rows == m.Cols }

// Mul returns the matrix product a·b.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("cmat: dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		crow := c.Data[i*b.Cols : (i+1)*b.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}

// MulVec returns the matrix-vector product m·v.
func MulVec(m *Matrix, v []complex128) []complex128 {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("cmat: dimension mismatch %dx%d · vec(%d)", m.Rows, m.Cols, len(v)))
	}
	out := make([]complex128, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s complex128
		for j, rv := range row {
			s += rv * v[j]
		}
		out[i] = s
	}
	return out
}

// Kron returns the Kronecker product a ⊗ b.
// The result has entry (a⊗b)[i_a·Rb+i_b, j_a·Cb+j_b] = a[i_a,j_a]·b[i_b,j_b],
// i.e. a occupies the high-order index bits.
func Kron(a, b *Matrix) *Matrix {
	c := New(a.Rows*b.Rows, a.Cols*b.Cols)
	for ia := 0; ia < a.Rows; ia++ {
		for ja := 0; ja < a.Cols; ja++ {
			av := a.At(ia, ja)
			if av == 0 {
				continue
			}
			for ib := 0; ib < b.Rows; ib++ {
				ci := (ia*b.Rows + ib) * c.Cols
				bi := ib * b.Cols
				for jb := 0; jb < b.Cols; jb++ {
					c.Data[ci+ja*b.Cols+jb] = av * b.Data[bi+jb]
				}
			}
		}
	}
	return c
}

// Add returns a + b.
func Add(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("cmat: Add dimension mismatch")
	}
	c := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		c.Data[i] = v + b.Data[i]
	}
	return c
}

// Sub returns a - b.
func Sub(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("cmat: Sub dimension mismatch")
	}
	c := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		c.Data[i] = v - b.Data[i]
	}
	return c
}

// Scale returns s·m.
func Scale(s complex128, m *Matrix) *Matrix {
	c := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		c.Data[i] = s * v
	}
	return c
}

// Dagger returns the conjugate transpose m†.
func (m *Matrix) Dagger() *Matrix {
	c := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			c.Data[j*m.Rows+i] = cmplx.Conj(m.Data[i*m.Cols+j])
		}
	}
	return c
}

// Transpose returns the (non-conjugated) transpose of m.
func (m *Matrix) Transpose() *Matrix {
	c := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			c.Data[j*m.Rows+i] = m.Data[i*m.Cols+j]
		}
	}
	return c
}

// Conj returns the element-wise complex conjugate of m.
func (m *Matrix) Conj() *Matrix {
	c := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		c.Data[i] = cmplx.Conj(v)
	}
	return c
}

// Trace returns the trace of a square matrix.
func (m *Matrix) Trace() complex128 {
	if !m.IsSquare() {
		panic("cmat: Trace of non-square matrix")
	}
	var t complex128
	for i := 0; i < m.Rows; i++ {
		t += m.Data[i*m.Cols+i]
	}
	return t
}

// FrobeniusNorm returns the Frobenius norm sqrt(Σ|m_ij|²).
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return math.Sqrt(s)
}

// MaxAbsDiff returns max_ij |a_ij - b_ij|.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("cmat: MaxAbsDiff dimension mismatch")
	}
	var d float64
	for i, v := range a.Data {
		if e := cmplx.Abs(v - b.Data[i]); e > d {
			d = e
		}
	}
	return d
}

// EqualTol reports whether all entries of a and b agree within tol.
func EqualTol(a, b *Matrix, tol float64) bool {
	return a.Rows == b.Rows && a.Cols == b.Cols && MaxAbsDiff(a, b) <= tol
}

// IsUnitary reports whether m†m = I within tol.
func (m *Matrix) IsUnitary(tol float64) bool {
	if !m.IsSquare() {
		return false
	}
	return EqualTol(Mul(m.Dagger(), m), Identity(m.Rows), tol)
}

// IsDiagonal reports whether all off-diagonal entries are below tol in
// magnitude.
func (m *Matrix) IsDiagonal(tol float64) bool {
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if i != j && cmplx.Abs(m.Data[i*m.Cols+j]) > tol {
				return false
			}
		}
	}
	return true
}

// Commutator returns ab - ba for square matrices of equal size.
func Commutator(a, b *Matrix) *Matrix {
	return Sub(Mul(a, b), Mul(b, a))
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%dx%d [\n", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		sb.WriteString("  ")
		for j := 0; j < m.Cols; j++ {
			v := m.Data[i*m.Cols+j]
			fmt.Fprintf(&sb, "(%+.3f%+.3fi) ", real(v), imag(v))
		}
		sb.WriteString("\n")
	}
	sb.WriteString("]")
	return sb.String()
}
